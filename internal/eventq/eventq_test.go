package eventq

import (
	"math/rand"
	"sort"
	"testing"
)

// refQueue is the naive reference: a slice of (handle, key, seq) scanned and
// sorted on every query. Equal keys order by insertion sequence, matching
// Queue's FIFO buckets.
type refEntry struct {
	h, key int
	seq    int
}

type refQueue struct {
	entries []refEntry
	seq     int
}

func (r *refQueue) find(h int) int {
	for i, e := range r.entries {
		if e.h == h {
			return i
		}
	}
	return -1
}

func (r *refQueue) insert(h, key int) {
	r.entries = append(r.entries, refEntry{h, key, r.seq})
	r.seq++
}

func (r *refQueue) remove(h int) {
	if i := r.find(h); i >= 0 {
		r.entries = append(r.entries[:i], r.entries[i+1:]...)
	}
}

func (r *refQueue) update(h, key int) {
	if i := r.find(h); i >= 0 {
		if r.entries[i].key == key {
			return
		}
		r.remove(h)
	}
	r.insert(h, key)
}

func (r *refQueue) peekMin() (h, key int, ok bool) {
	if len(r.entries) == 0 {
		return 0, 0, false
	}
	sorted := append([]refEntry(nil), r.entries...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].key != sorted[j].key {
			return sorted[i].key < sorted[j].key
		}
		return sorted[i].seq < sorted[j].seq
	})
	return sorted[0].h, sorted[0].key, true
}

func (r *refQueue) contains(h int) bool { return r.find(h) >= 0 }

func (r *refQueue) keyOf(h int) int {
	if i := r.find(h); i >= 0 {
		return r.entries[i].key
	}
	return -1
}

// checkAgree cross-checks every observable between Queue and the reference.
func checkAgree(t *testing.T, q *Queue, ref *refQueue, capacity int, step int) {
	t.Helper()
	if q.Len() != len(ref.entries) {
		t.Fatalf("step %d: Len=%d want %d", step, q.Len(), len(ref.entries))
	}
	h, k, ok := q.PeekMin()
	rh, rk, rok := ref.peekMin()
	if ok != rok || (ok && (h != rh || k != rk)) {
		t.Fatalf("step %d: PeekMin=(%d,%d,%v) want (%d,%d,%v)", step, h, k, ok, rh, rk, rok)
	}
	for i := 0; i < capacity; i++ {
		if q.Contains(i) != ref.contains(i) {
			t.Fatalf("step %d: Contains(%d)=%v want %v", step, i, q.Contains(i), ref.contains(i))
		}
		if q.Key(i) != ref.keyOf(i) {
			t.Fatalf("step %d: Key(%d)=%d want %d", step, i, q.Key(i), ref.keyOf(i))
		}
	}
}

// runDifferential drives both implementations with one op stream.
func runDifferential(t *testing.T, rng *rand.Rand, capacity, keyRange, steps int) {
	t.Helper()
	q := NewQueue(capacity)
	ref := &refQueue{}
	for step := 0; step < steps; step++ {
		h := rng.Intn(capacity)
		key := rng.Intn(keyRange)
		switch op := rng.Intn(10); {
		case op < 3: // insert (skip if queued; Queue panics by contract)
			if !q.Contains(h) {
				q.Insert(h, key)
				ref.insert(h, key)
			}
		case op < 5:
			q.Remove(h)
			ref.remove(h)
		case op < 8:
			q.Update(h, key)
			ref.update(h, key)
		default:
			gh, gk, gok := q.PopMin()
			rh, rk, rok := ref.peekMin()
			if gok != rok || (gok && (gh != rh || gk != rk)) {
				t.Fatalf("step %d: PopMin=(%d,%d,%v) want (%d,%d,%v)", step, gh, gk, gok, rh, rk, rok)
			}
			if rok {
				ref.remove(rh)
			}
		}
		checkAgree(t, q, ref, capacity, step)
	}
}

func TestQueueDifferentialSmallKeys(t *testing.T) {
	// Narrow key range forces deep FIFO buckets and exercises tie order.
	runDifferential(t, rand.New(rand.NewSource(1)), 16, 4, 4000)
}

func TestQueueDifferentialWideKeys(t *testing.T) {
	runDifferential(t, rand.New(rand.NewSource(2)), 64, NumKeys, 4000)
}

func TestQueueDifferentialGroupBoundaries(t *testing.T) {
	// Keys straddling level-1 word boundaries (63/64, 127/128, ...).
	rng := rand.New(rand.NewSource(3))
	q := NewQueue(8)
	ref := &refQueue{}
	keys := []int{0, 1, 63, 64, 65, 127, 128, NumKeys - 2, NumKeys - 1}
	for step := 0; step < 3000; step++ {
		h := rng.Intn(8)
		key := keys[rng.Intn(len(keys))]
		if q.Contains(h) {
			q.Remove(h)
			ref.remove(h)
		} else {
			q.Insert(h, key)
			ref.insert(h, key)
		}
		checkAgree(t, q, ref, 8, step)
	}
}

func TestQueueSingleElement(t *testing.T) {
	q := NewQueue(1)
	if _, _, ok := q.PeekMin(); ok {
		t.Fatal("empty queue PeekMin ok")
	}
	q.Insert(0, 77)
	if h, k, ok := q.PeekMin(); !ok || h != 0 || k != 77 {
		t.Fatalf("PeekMin=(%d,%d,%v)", h, k, ok)
	}
	q.Update(0, 12)
	if h, k, ok := q.PopMin(); !ok || h != 0 || k != 12 {
		t.Fatalf("PopMin=(%d,%d,%v)", h, k, ok)
	}
	if !q.Empty() {
		t.Fatal("queue not empty after PopMin")
	}
	q.Remove(0) // no-op on unqueued handle
	if q.Len() != 0 {
		t.Fatal("Remove on empty changed size")
	}
}

func TestQueueFullOccupancy(t *testing.T) {
	// Every handle queued, then drained; pops must come out in (key, FIFO)
	// order and leave pristine state.
	const capacity = 512
	q := NewQueue(capacity)
	ref := &refQueue{}
	rng := rand.New(rand.NewSource(4))
	for h := 0; h < capacity; h++ {
		key := rng.Intn(NumKeys)
		q.Insert(h, key)
		ref.insert(h, key)
	}
	if q.Len() != capacity {
		t.Fatalf("Len=%d want %d", q.Len(), capacity)
	}
	for i := 0; i < capacity; i++ {
		gh, gk, gok := q.PopMin()
		rh, rk, rok := ref.peekMin()
		if !gok || !rok || gh != rh || gk != rk {
			t.Fatalf("drain %d: got (%d,%d,%v) want (%d,%d,%v)", i, gh, gk, gok, rh, rk, rok)
		}
		ref.remove(rh)
	}
	if !q.Empty() || q.summary != 0 {
		t.Fatalf("residual state after drain: len=%d summary=%#x", q.Len(), q.summary)
	}
	for g, w := range q.groups {
		if w != 0 {
			t.Fatalf("residual group word %d: %#x", g, w)
		}
	}
}

func TestQueueInsertPanics(t *testing.T) {
	q := NewQueue(4)
	q.Insert(1, 10)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"double insert", func() { q.Insert(1, 11) }},
		{"key too large", func() { q.Insert(2, NumKeys) }},
		{"negative key", func() { q.Insert(2, -1) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

// FuzzQueueDifferential replays arbitrary op streams against the reference.
// Each byte pair encodes (op, handle/key material).
func FuzzQueueDifferential(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 2, 2, 3, 3})
	f.Add([]byte{0, 63, 0, 64, 3, 0, 3, 0, 3, 0})
	f.Add([]byte{0, 5, 2, 5, 1, 5, 0, 5, 3, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const capacity = 32
		q := NewQueue(capacity)
		ref := &refQueue{}
		for i := 0; i+1 < len(data); i += 2 {
			op, v := data[i]%4, data[i+1]
			h := int(v) % capacity
			key := int(v) * 37 % NumKeys
			switch op {
			case 0:
				if !q.Contains(h) {
					q.Insert(h, key)
					ref.insert(h, key)
				}
			case 1:
				q.Remove(h)
				ref.remove(h)
			case 2:
				q.Update(h, key)
				ref.update(h, key)
			case 3:
				gh, gk, gok := q.PopMin()
				rh, rk, rok := ref.peekMin()
				if gok != rok || (gok && (gh != rh || gk != rk)) {
					t.Fatalf("op %d: PopMin=(%d,%d,%v) want (%d,%d,%v)", i, gh, gk, gok, rh, rk, rok)
				}
				if rok {
					ref.remove(rh)
				}
			}
			checkAgree(t, q, ref, capacity, i)
		}
	})
}

func TestWheelScheduleAndPeek(t *testing.T) {
	w := NewWheel(8)
	if _, ok := w.PeekMin(); ok {
		t.Fatal("empty wheel PeekMin ok")
	}
	w.Schedule(3, 100)
	w.Schedule(5, 40)
	w.Schedule(1, 40) // FIFO behind 5, same deadline
	if at, ok := w.PeekMin(); !ok || at != 40 {
		t.Fatalf("PeekMin=%d,%v want 40", at, ok)
	}
	if d := w.Deadline(3); d != 100 {
		t.Fatalf("Deadline(3)=%d", d)
	}
	w.Cancel(5)
	w.Cancel(1)
	if at, ok := w.PeekMin(); !ok || at != 100 {
		t.Fatalf("PeekMin=%d,%v want 100", at, ok)
	}
	w.Schedule(3, 7) // reschedule earlier
	if at, ok := w.PeekMin(); !ok || at != 7 {
		t.Fatalf("PeekMin=%d,%v want 7", at, ok)
	}
	w.Schedule(3, NoDeadline) // schedule-with-sentinel cancels
	if w.Scheduled(3) || w.Len() != 0 {
		t.Fatal("NoDeadline schedule did not cancel")
	}
	if d := w.Deadline(3); d != NoDeadline {
		t.Fatalf("Deadline(3)=%d after cancel", d)
	}
}

func TestWheelFarBucketConservative(t *testing.T) {
	w := NewWheel(4)
	far := uint64(10 * Horizon)
	w.Schedule(0, far)
	at, ok := w.PeekMin()
	if !ok {
		t.Fatal("PeekMin not ok")
	}
	// Far events report the clamped lower bound, never later than truth.
	if at > far {
		t.Fatalf("far bound %d exceeds true deadline %d", at, far)
	}
	if at != uint64(Horizon) {
		t.Fatalf("far bound %d want %d", at, Horizon)
	}
	// After rebasing near the deadline the value becomes exact.
	if !w.NeedRebase(far - 100) {
		t.Fatal("NeedRebase false far from base")
	}
	w.Rebase(far - 100)
	if at, ok = w.PeekMin(); !ok || at != far {
		t.Fatalf("post-rebase PeekMin=%d,%v want %d", at, ok, far)
	}
}

func TestWheelPastDueStaysConservative(t *testing.T) {
	w := NewWheel(4)
	w.Rebase(1000)
	w.Schedule(0, 500) // already past the base
	at, ok := w.PeekMin()
	if !ok || at > 500 {
		t.Fatalf("past-due PeekMin=%d,%v; must not exceed true deadline", at, ok)
	}
}

func TestWheelRebasePreservesSet(t *testing.T) {
	w := NewWheel(64)
	rng := rand.New(rand.NewSource(9))
	want := map[int]uint64{}
	for h := 0; h < 64; h += 2 {
		at := uint64(rng.Intn(3 * Horizon))
		w.Schedule(h, at)
		want[h] = at
	}
	w.Rebase(uint64(Horizon))
	if w.Len() != len(want) {
		t.Fatalf("Len=%d want %d", w.Len(), len(want))
	}
	for h, at := range want {
		if !w.Scheduled(h) || w.Deadline(h) != at {
			t.Fatalf("handle %d: deadline %d want %d", h, w.Deadline(h), at)
		}
	}
	// The minimum must match a naive scan (conservatively: never later).
	min := NoDeadline
	for _, at := range want {
		if at < min {
			min = at
		}
	}
	if at, ok := w.PeekMin(); !ok || at > min {
		t.Fatalf("PeekMin=%d,%v exceeds naive min %d", at, ok, min)
	}
}
