// Package eventq provides the allocation-free priority structures behind
// the simulator's O(1) scheduling and idle-skip machinery: a hierarchical
// bitmap priority queue (Queue) and a cycle-keyed event wheel built on top
// of it (Wheel).
//
// Queue follows the pooled quantum-queue shape: a two-level radix of
// summary words — one level-0 word whose bit g marks group g non-empty,
// and 64 level-1 words whose bit b marks bucket g*64+b non-empty — over
// NumKeys = 4096 FIFO buckets. Finding the minimum occupied bucket is two
// bits.TrailingZeros64 calls; membership is intrusive (per-handle next/prev
// links in preallocated arrays), so Insert, Remove, Update, PeekMin and
// PopMin are all O(1) and never allocate after New.
//
// Handles are small dense integers chosen by the caller — flat bank indices
// for the controller engine, source indices for the system-level wheel —
// which makes them directly compatible with the pooled Access objects from
// PR 1: the pool index is the handle, and no per-entry storage is ever
// allocated or freed.
package eventq

import "math/bits"

const (
	groupBits = 6
	groupSize = 1 << groupBits // 64 buckets per level-1 word
	// NumKeys is the number of priority buckets: one level-0 summary word
	// fanning out to 64 level-1 words of 64 buckets each.
	NumKeys = groupSize * groupSize // 4096
	none    = int32(-1)
)

// Queue is a hierarchical bitmap priority queue over integer keys in
// [0, NumKeys). Entries with equal keys pop in insertion order (FIFO), which
// keeps every consumer deterministic. The zero value is not usable; call
// NewQueue.
type Queue struct {
	summary uint64   // level 0: bit g set ⇔ groups[g] != 0
	groups  []uint64 // level 1: bit b of word g set ⇔ bucket g*64+b non-empty
	head    []int32  // per bucket: first handle, or none
	tail    []int32  // per bucket: last handle, or none
	next    []int32  // per handle: next in bucket FIFO
	prev    []int32  // per handle: previous in bucket FIFO
	key     []int32  // per handle: current bucket, or none when not queued
	size    int
}

// NewQueue returns a queue accepting handles in [0, capacity). All storage
// is allocated here; no later operation allocates.
func NewQueue(capacity int) *Queue {
	if capacity <= 0 {
		panic("eventq: capacity must be positive")
	}
	q := &Queue{
		groups: make([]uint64, groupSize),
		head:   make([]int32, NumKeys),
		tail:   make([]int32, NumKeys),
		next:   make([]int32, capacity),
		prev:   make([]int32, capacity),
		key:    make([]int32, capacity),
	}
	for i := range q.head {
		q.head[i] = none
		q.tail[i] = none
	}
	for i := range q.key {
		q.key[i] = none
	}
	return q
}

// Len returns the number of queued handles.
func (q *Queue) Len() int { return q.size }

// Empty reports whether no handle is queued.
func (q *Queue) Empty() bool { return q.size == 0 }

// Contains reports whether handle h is currently queued.
//
//burstmem:hotpath
func (q *Queue) Contains(h int) bool { return q.key[h] != none }

// Key returns handle h's current bucket, or -1 when h is not queued.
//
//burstmem:hotpath
func (q *Queue) Key(h int) int { return int(q.key[h]) }

// Insert queues handle h under key, at the back of the key's FIFO bucket.
// It panics if h is already queued or key is out of range.
//
//burstmem:hotpath
func (q *Queue) Insert(h, key int) {
	if q.key[h] != none {
		panic("eventq: handle already queued")
	}
	if key < 0 || key >= NumKeys {
		panic("eventq: key out of range")
	}
	q.key[h] = int32(key)
	q.next[h] = none
	t := q.tail[key]
	q.prev[h] = t
	if t == none {
		q.head[key] = int32(h)
		g := key >> groupBits
		q.groups[g] |= 1 << uint(key&(groupSize-1))
		q.summary |= 1 << uint(g)
	} else {
		q.next[t] = int32(h)
	}
	q.tail[key] = int32(h)
	q.size++
}

// Remove unlinks handle h if queued; it is a no-op otherwise.
//
//burstmem:hotpath
func (q *Queue) Remove(h int) {
	k := q.key[h]
	if k == none {
		return
	}
	n, p := q.next[h], q.prev[h]
	if p == none {
		q.head[k] = n
	} else {
		q.next[p] = n
	}
	if n == none {
		q.tail[k] = p
	} else {
		q.prev[n] = p
	}
	if q.head[k] == none {
		g := int(k) >> groupBits
		q.groups[g] &^= 1 << uint(int(k)&(groupSize-1))
		if q.groups[g] == 0 {
			q.summary &^= 1 << uint(g)
		}
	}
	q.key[h] = none
	q.size--
}

// Update moves handle h to key. If h already sits in that bucket it keeps
// its FIFO position; otherwise it is removed and re-inserted at the new
// bucket's back. Updating an unqueued handle is an insert.
//
//burstmem:hotpath
func (q *Queue) Update(h, key int) {
	if q.key[h] == int32(key) {
		return
	}
	q.Remove(h)
	q.Insert(h, key)
}

// PeekMin returns the front handle of the lowest occupied bucket without
// removing it. ok is false when the queue is empty.
//
//burstmem:hotpath
func (q *Queue) PeekMin() (h, key int, ok bool) {
	if q.summary == 0 {
		return 0, 0, false
	}
	g := bits.TrailingZeros64(q.summary)
	b := bits.TrailingZeros64(q.groups[g])
	key = g<<groupBits | b
	return int(q.head[key]), key, true
}

// PopMin removes and returns the front handle of the lowest occupied
// bucket. ok is false when the queue is empty.
//
//burstmem:hotpath
func (q *Queue) PopMin() (h, key int, ok bool) {
	h, key, ok = q.PeekMin()
	if ok {
		q.Remove(h)
	}
	return h, key, ok
}
