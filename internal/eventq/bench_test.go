package eventq

import "testing"

// Depths probed by every microbenchmark: single element, one full level-1
// word, and full occupancy of the bucket space.
var benchDepths = []struct {
	name  string
	depth int
}{
	{"depth1", 1},
	{"depth64", 64},
	{"depth4096", 4096},
}

// fillKeys spreads depth entries over the key space deterministically.
func fillKeys(depth int) []int {
	keys := make([]int, depth)
	for i := range keys {
		keys[i] = (i*2654435761 + 17) % NumKeys
	}
	return keys
}

func BenchmarkEventQueueInsert(b *testing.B) {
	for _, d := range benchDepths {
		b.Run(d.name, func(b *testing.B) {
			q := NewQueue(d.depth)
			keys := fillKeys(d.depth)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h := i % d.depth
				if h == 0 && i > 0 {
					// Drain before refilling so inserts dominate.
					b.StopTimer()
					for !q.Empty() {
						q.PopMin()
					}
					b.StartTimer()
				}
				q.Insert(h, keys[h])
			}
		})
	}
}

func BenchmarkEventQueuePeek(b *testing.B) {
	for _, d := range benchDepths {
		b.Run(d.name, func(b *testing.B) {
			q := NewQueue(d.depth)
			for h, k := range fillKeys(d.depth) {
				q.Insert(h, k)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, ok := q.PeekMin(); !ok {
					b.Fatal("empty")
				}
			}
		})
	}
}

func BenchmarkEventQueuePop(b *testing.B) {
	for _, d := range benchDepths {
		b.Run(d.name, func(b *testing.B) {
			q := NewQueue(d.depth)
			keys := fillKeys(d.depth)
			for h, k := range keys {
				q.Insert(h, k)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h, _, ok := q.PopMin()
				if !ok {
					b.Fatal("empty")
				}
				// Reinsert to hold the depth steady; pop+insert per iter.
				q.Insert(h, keys[h])
			}
		})
	}
}

func BenchmarkEventQueueUpdate(b *testing.B) {
	for _, d := range benchDepths {
		b.Run(d.name, func(b *testing.B) {
			q := NewQueue(d.depth)
			keys := fillKeys(d.depth)
			for h, k := range keys {
				q.Insert(h, k)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h := i % d.depth
				q.Update(h, (keys[h]+i)%NumKeys)
			}
		})
	}
}

func BenchmarkEventWheelSchedulePeek(b *testing.B) {
	for _, d := range benchDepths {
		b.Run(d.name, func(b *testing.B) {
			w := NewWheel(d.depth)
			for h := 0; h < d.depth; h++ {
				w.Schedule(h, uint64(h%Horizon)+1)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h := i % d.depth
				w.Schedule(h, uint64((h+i)%Horizon)+1)
				if _, ok := w.PeekMin(); !ok {
					b.Fatal("empty")
				}
			}
		})
	}
}
