package eventq

// NoDeadline is the Wheel's "no event scheduled" sentinel, matching the
// convention used by the controller's NextEventCycle hints.
const NoDeadline = ^uint64(0)

// Horizon is the exact range of a Wheel: deadlines up to base+Horizon-1
// land in their own bucket; anything further shares the far bucket and is
// reported conservatively as base+Horizon until a Rebase pulls it closer.
const Horizon = NumKeys - 1

// Wheel is an event wheel keyed by absolute memory cycle, built on Queue.
// Each handle carries one pending deadline. Deadlines are bucketed by their
// offset from the wheel's base cycle: offsets within the horizon get exact
// buckets, later ones share the far bucket. PeekMin therefore returns the
// exact earliest deadline when it is near, and a conservative lower bound
// (base+Horizon) when every pending event is far — callers that use the
// bound to skip idle cycles can never skip past a real event, only stop
// short of one.
type Wheel struct {
	q        *Queue
	deadline []uint64 // per handle; valid while scheduled
	scratch  []int32  // rebase staging, capacity handles
	base     uint64
}

// NewWheel returns a wheel accepting handles in [0, capacity). All storage
// is allocated here; no later operation allocates.
func NewWheel(capacity int) *Wheel {
	return &Wheel{
		q:        NewQueue(capacity),
		deadline: make([]uint64, capacity),
		scratch:  make([]int32, 0, capacity),
	}
}

// Len returns the number of scheduled handles.
func (w *Wheel) Len() int { return w.q.Len() }

// Base returns the wheel's current base cycle.
func (w *Wheel) Base() uint64 { return w.base }

// Scheduled reports whether handle h has a pending deadline.
//
//burstmem:hotpath
func (w *Wheel) Scheduled(h int) bool { return w.q.Contains(h) }

// Deadline returns handle h's pending deadline; NoDeadline if unscheduled.
//
//burstmem:hotpath
func (w *Wheel) Deadline(h int) uint64 {
	if !w.q.Contains(h) {
		return NoDeadline
	}
	return w.deadline[h]
}

// bucket maps an absolute deadline to its bucket under the current base.
//
//burstmem:hotpath
func (w *Wheel) bucket(at uint64) int {
	if at <= w.base {
		return 0
	}
	if off := at - w.base; off < Horizon {
		return int(off)
	}
	return Horizon
}

// Schedule sets handle h's deadline to the absolute cycle at, replacing any
// previous deadline. Scheduling NoDeadline cancels instead.
//
//burstmem:hotpath
func (w *Wheel) Schedule(h int, at uint64) {
	if at == NoDeadline {
		w.q.Remove(h)
		return
	}
	w.deadline[h] = at
	w.q.Update(h, w.bucket(at))
}

// Cancel drops handle h's pending deadline, if any.
//
//burstmem:hotpath
func (w *Wheel) Cancel(h int) { w.q.Remove(h) }

// PeekMin returns the earliest pending deadline. The value is exact while
// the earliest event is within the horizon; when only far-bucket events
// remain it is the conservative lower bound base+Horizon (never later than
// any real deadline). ok is false when nothing is scheduled.
//
//burstmem:hotpath
func (w *Wheel) PeekMin() (at uint64, ok bool) {
	h, key, ok := w.q.PeekMin()
	if !ok {
		return NoDeadline, false
	}
	if key == Horizon {
		return w.base + Horizon, true
	}
	// Near buckets hold exactly one deadline value each, so the FIFO head's
	// stored deadline is the bucket minimum (bucket 0 holds past-due entries
	// whose exact deadline no longer matters to any caller).
	if key == 0 {
		return w.deadline[h], true
	}
	return w.base + uint64(key), true
}

// Rebase advances the wheel's base to now, re-bucketing every pending
// deadline so far-bucket entries regain exact buckets. O(pending); call it
// when now has drifted far past the base (see NeedRebase), not per cycle.
func (w *Wheel) Rebase(now uint64) {
	w.scratch = w.scratch[:0]
	for {
		h, _, ok := w.q.PopMin()
		if !ok {
			break
		}
		//lint:ignore hotalloc scratch capacity equals the handle count, set at NewWheel
		w.scratch = append(w.scratch, int32(h))
	}
	w.base = now
	for _, h := range w.scratch {
		w.q.Insert(int(h), w.bucket(w.deadline[h]))
	}
}

// NeedRebase reports whether now has drifted past half the horizon, the
// point where fresh deadlines start losing bucket resolution.
//
//burstmem:hotpath
func (w *Wheel) NeedRebase(now uint64) bool { return now-w.base > Horizon/2 }
