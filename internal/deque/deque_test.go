package deque

import "testing"

// TestFIFOOrder pushes enough elements to force several growths and checks
// strict FIFO order on the way out.
func TestFIFOOrder(t *testing.T) {
	var d Deque[int]
	const n = 1000
	for i := 0; i < n; i++ {
		d.PushBack(i)
	}
	if d.Len() != n {
		t.Fatalf("Len = %d, want %d", d.Len(), n)
	}
	for i := 0; i < n; i++ {
		if got := d.PopFront(); got != i {
			t.Fatalf("PopFront #%d = %d, want %d", i, got, i)
		}
	}
	if d.Len() != 0 {
		t.Fatalf("Len after drain = %d, want 0", d.Len())
	}
}

// TestWrapAround interleaves pushes and pops so head circles the ring many
// times without growing, exercising the modular index arithmetic.
func TestWrapAround(t *testing.T) {
	var d Deque[int]
	next, expect := 0, 0
	for i := 0; i < 4; i++ {
		d.PushBack(next)
		next++
	}
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			d.PushBack(next)
			next++
		}
		for i := 0; i < 3; i++ {
			if got := d.PopFront(); got != expect {
				t.Fatalf("round %d: PopFront = %d, want %d", round, got, expect)
			}
			expect++
		}
	}
	if d.Len() != 4 {
		t.Fatalf("steady-state Len = %d, want 4", d.Len())
	}
}

// TestGrowRelinearizes fills the ring with head mid-buffer, then grows: the
// copy must preserve order across the old wrap point.
func TestGrowRelinearizes(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 8; i++ { // initial capacity
		d.PushBack(i)
	}
	for i := 0; i < 5; i++ { // advance head past the midpoint
		if got := d.PopFront(); got != i {
			t.Fatalf("PopFront = %d, want %d", got, i)
		}
	}
	for i := 8; i < 20; i++ { // wraps, then grows
		d.PushBack(i)
	}
	for i := 5; i < 20; i++ {
		if got := d.PopFront(); got != i {
			t.Fatalf("after grow: PopFront = %d, want %d", got, i)
		}
	}
}

// TestPushFront checks the double-ended path, including pushing onto a
// fresh deque (head wraps backward from 0) and mixing with PushBack.
func TestPushFront(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 20; i++ {
		d.PushFront(i)
	}
	for i := 19; i >= 0; i-- {
		if got := d.PopFront(); got != i {
			t.Fatalf("PopFront = %d, want %d", got, i)
		}
	}
	d.PushFront(1)
	d.PushBack(2)
	d.PushFront(0)
	for want := 0; want <= 2; want++ {
		if got := d.PopFront(); got != want {
			t.Fatalf("mixed: PopFront = %d, want %d", got, want)
		}
	}
}

// TestFrontAndAt checks the pointer accessors against the logical order,
// and that writes through them are visible to later pops.
func TestFrontAndAt(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 12; i++ {
		d.PushBack(i)
	}
	for i := 0; i < 4; i++ { // move head so At spans the wrap point
		d.PopFront()
	}
	for i := 12; i < 16; i++ {
		d.PushBack(i)
	}
	if got := *d.Front(); got != 4 {
		t.Fatalf("Front = %d, want 4", got)
	}
	for i := 0; i < d.Len(); i++ {
		if got := *d.At(i); got != 4+i {
			t.Fatalf("At(%d) = %d, want %d", i, got, 4+i)
		}
	}
	*d.At(2) = 99
	d.PopFront()
	d.PopFront()
	if got := d.PopFront(); got != 99 {
		t.Fatalf("write through At not observed: got %d", got)
	}
}

// TestEmptyPanics: the accessors panic on an empty deque like indexing an
// empty slice would.
func TestEmptyPanics(t *testing.T) {
	for name, f := range map[string]func(d *Deque[int]){
		"Front":    func(d *Deque[int]) { d.Front() },
		"PopFront": func(d *Deque[int]) { d.PopFront() },
		"At":       func(d *Deque[int]) { d.At(0) },
		"AtNeg":    func(d *Deque[int]) { d.PushBack(1); d.At(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty deque did not panic", name)
				}
			}()
			var d Deque[int]
			f(&d)
		}()
	}
}

// TestPopZeroesSlot: PopFront must clear the vacated slot so popped
// pointer-typed elements become collectable.
func TestPopZeroesSlot(t *testing.T) {
	var d Deque[*int]
	v := new(int)
	d.PushBack(v)
	d.PopFront()
	if d.buf[0] != nil {
		t.Fatal("PopFront left a live reference in the ring")
	}
}

// TestSteadyStateAllocs: once grown to the high-water mark, queue traffic
// must not allocate — the property the package exists for.
func TestSteadyStateAllocs(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 64; i++ {
		d.PushBack(i)
	}
	for i := 0; i < 64; i++ {
		d.PopFront()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			d.PushBack(i)
		}
		for i := 0; i < 64; i++ {
			d.PopFront()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state traffic allocates %.1f/op, want 0", allocs)
	}
}
