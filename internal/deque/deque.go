// Package deque provides a growable ring-buffer FIFO. Unlike the
// append/q[1:] slice idiom, popping the front does not strand capacity or
// force reallocation, so steady-state queue traffic allocates nothing once
// the ring has grown to the high-water mark.
package deque

// Deque is a double-ended queue over a ring buffer. The zero value is
// ready to use.
type Deque[T any] struct {
	buf  []T
	head int
	n    int
}

// Len returns the number of queued elements.
func (d *Deque[T]) Len() int { return d.n }

// grow doubles the ring, relinearizing the elements.
func (d *Deque[T]) grow() {
	c := len(d.buf) * 2
	if c == 0 {
		c = 8
	}
	buf := make([]T, c)
	for i := 0; i < d.n; i++ {
		buf[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = buf
	d.head = 0
}

// Reserve grows the ring so at least n elements fit without reallocating,
// letting constructors prewarm queues to their expected high-water mark so
// the steady-state loop never pays the doubling growth.
func (d *Deque[T]) Reserve(n int) {
	if n <= len(d.buf) {
		return
	}
	buf := make([]T, n)
	for i := 0; i < d.n; i++ {
		buf[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = buf
	d.head = 0
}

// PushBack appends v at the tail.
func (d *Deque[T]) PushBack(v T) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)%len(d.buf)] = v
	d.n++
}

// PushFront prepends v at the head.
func (d *Deque[T]) PushFront(v T) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = v
	d.n++
}

// Front returns a pointer to the head element. It panics on an empty
// deque, like indexing an empty slice.
func (d *Deque[T]) Front() *T {
	if d.n == 0 {
		panic("deque: Front on empty deque")
	}
	return &d.buf[d.head]
}

// At returns a pointer to the i-th element from the head.
func (d *Deque[T]) At(i int) *T {
	if i < 0 || i >= d.n {
		panic("deque: index out of range")
	}
	return &d.buf[(d.head+i)%len(d.buf)]
}

// PopFront removes and returns the head element.
func (d *Deque[T]) PopFront() T {
	if d.n == 0 {
		panic("deque: PopFront on empty deque")
	}
	v := d.buf[d.head]
	var zero T
	d.buf[d.head] = zero // drop references for GC
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	return v
}
