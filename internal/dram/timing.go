// Package dram implements a cycle-accurate SDRAM device timing model: banks,
// ranks and channels with the full set of DDR2 timing constraints, command
// legality checks, data-bus contention (including DDR2 rank-to-rank
// turnaround), auto-refresh, and bus-utilization accounting.
//
// The model is command-driven: a memory controller asks CanIssue whether a
// command is unblocked this cycle and then Issue-s it. All times are in
// memory (command clock) cycles; for DDR2-800 one cycle is 2.5 ns and the
// data bus moves two beats per cycle.
package dram

import "fmt"

// Timing holds SDRAM timing constraints, all in memory clock cycles.
type Timing struct {
	TCL   int // CAS (read) latency: column read command to first data beat
	TRCD  int // row activate to column command
	TRP   int // precharge to activate
	TRAS  int // activate to precharge (row must stay open this long)
	TRC   int // activate to activate, same bank (usually TRAS+TRP)
	TWR   int // write recovery: last write data beat to precharge
	TWTR  int // write-to-read turnaround, same rank (from last write data beat)
	TRTP  int // read to precharge
	TRRD  int // activate to activate, different banks of one rank
	TFAW  int // four-activate window per rank (0 disables)
	TCWD  int // write latency: column write command to first data beat
	TRTRS int // rank-to-rank data bus turnaround (DDR2)
	TRTW  int // read-to-write data bus turnaround (any rank)
	TREFI int // average refresh interval per rank (0 disables refresh)
	TRFC  int // refresh cycle time
	BL    int // burst length in beats; data occupies BL/2 cycles (DDR)
}

// DataCycles returns how many command-clock cycles one column access
// occupies on the data bus.
func (t Timing) DataCycles() int { return t.BL / 2 }

// Validate reports an error for non-physical parameter combinations.
func (t Timing) Validate() error {
	switch {
	case t.TCL < 1 || t.TRCD < 1 || t.TRP < 1:
		return fmt.Errorf("dram: tCL/tRCD/tRP must be >= 1 (got %d-%d-%d)", t.TCL, t.TRCD, t.TRP)
	case t.BL < 2 || t.BL%2 != 0:
		return fmt.Errorf("dram: burst length must be a positive even beat count, got %d", t.BL)
	case t.TRAS < t.TRCD:
		return fmt.Errorf("dram: tRAS (%d) must cover tRCD (%d)", t.TRAS, t.TRCD)
	case t.TRC < t.TRAS:
		return fmt.Errorf("dram: tRC (%d) must cover tRAS (%d)", t.TRC, t.TRAS)
	case t.TCWD < 0 || t.TWR < 0 || t.TWTR < 0 || t.TRTP < 0 || t.TRRD < 0 || t.TFAW < 0:
		return fmt.Errorf("dram: negative timing parameter")
	case t.TREFI < 0 || t.TRFC < 0:
		return fmt.Errorf("dram: negative refresh parameter")
	case t.TREFI > 0 && t.TRFC >= t.TREFI:
		return fmt.Errorf("dram: tRFC (%d) must be < tREFI (%d)", t.TRFC, t.TREFI)
	}
	return nil
}

// DDR2_800 returns the paper's simulated device: DDR2 PC2-6400 with 5-5-5
// (tCL-tRCD-tRP) timing at 400 MHz command clock (2.5 ns), burst length 8.
// Secondary constraints follow Micron 512Mb DDR2-800 datasheet values
// rounded to cycles.
func DDR2_800() Timing {
	return Timing{
		TCL:   5,
		TRCD:  5,
		TRP:   5,
		TRAS:  18, // 45 ns
		TRC:   23, // 57.5 ns
		TWR:   6,  // 15 ns
		TWTR:  3,  // 7.5 ns
		TRTP:  3,  // 7.5 ns
		TRRD:  3,  // 7.5 ns
		TFAW:  18, // 45 ns
		TCWD:  4,  // tCL-1 for DDR2
		TRTRS: 2,  // ODT settling makes DDR2 rank switches costly
		TRTW:  2,
		TREFI: 3120, // 7.8 us
		TRFC:  51,   // 127.5 ns
		BL:    8,
	}
}

// DDR_400 returns a DDR PC-2100 style device with 2-2-2 timing (the older
// generation the paper's conclusion compares against: same nanosecond
// latencies, one third the bus frequency).
func DDR_400() Timing {
	return Timing{
		TCL:   2,
		TRCD:  2,
		TRP:   2,
		TRAS:  6,
		TRC:   8,
		TWR:   2,
		TWTR:  1,
		TRTP:  1,
		TRRD:  1,
		TFAW:  0,
		TCWD:  1,
		TRTRS: 1,
		TRTW:  1,
		TREFI: 1040,
		TRFC:  17,
		BL:    8,
	}
}

// DDR3_1600 returns a DDR3-1600-class device (8-8-8 at an 800 MHz command
// clock, 1.25 ns cycles). The paper's conclusion predicts that as timing
// parameters grow in cycles while bandwidth scales, access reordering's
// advantage widens; this preset extrapolates one more generation for that
// experiment (cmd/experiments -exp scaling).
func DDR3_1600() Timing {
	return Timing{
		TCL:   8,
		TRCD:  8,
		TRP:   8,
		TRAS:  28, // 35 ns
		TRC:   36,
		TWR:   12, // 15 ns
		TWTR:  6,  // 7.5 ns
		TRTP:  6,
		TRRD:  5,  // 6.25 ns
		TFAW:  24, // 30 ns
		TCWD:  6,
		TRTRS: 2,
		TRTW:  2,
		TREFI: 6240, // 7.8 us
		TRFC:  128,  // 160 ns
		BL:    8,
	}
}

// Figure1Timing returns the pedagogical device of the paper's Figure 1:
// 2-2-2 timing with burst length 4 (two data cycles), no secondary
// constraints and no refresh, so hand-computed schedules match exactly.
func Figure1Timing() Timing {
	return Timing{
		TCL:   2,
		TRCD:  2,
		TRP:   2,
		TRAS:  4,
		TRC:   6,
		TWR:   1,
		TWTR:  1,
		TRTP:  1,
		TRRD:  1,
		TFAW:  0,
		TCWD:  1,
		TRTRS: 1,
		TRTW:  1,
		TREFI: 0,
		TRFC:  0,
		BL:    4,
	}
}
