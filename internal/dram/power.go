package dram

import "fmt"

// Power modeling follows the Micron DDR2 system-power methodology: command
// energies (activate/precharge pairs, read and write bursts, refreshes)
// plus state-dependent background power (active vs precharged standby),
// computed from the channel's activity counters. Scheduling mechanisms
// change both terms — row hits save activate energy, higher bus
// utilization amortizes background power over more work — so the report
// exposes energy per access as the comparable figure of merit.

// PowerParams holds per-rank energy/power coefficients for a 64-bit rank
// built from eight x8 devices. Defaults approximate Micron 512 Mb DDR2-800
// datasheet IDD values at 1.8 V.
type PowerParams struct {
	// Per-event energies in nanojoules (whole rank).
	EActivate float64 // one activate/precharge pair
	ERead     float64 // one BL8 read burst, including I/O
	EWrite    float64 // one BL8 write burst, including ODT
	ERefresh  float64 // one all-bank refresh

	// Background power in watts (whole rank).
	PActiveStandby    float64 // at least one bank open
	PPrechargeStandby float64 // all banks closed
}

// DefaultPowerParams returns DDR2-800 coefficients for one rank.
func DefaultPowerParams() PowerParams {
	return PowerParams{
		EActivate:         3.8,
		ERead:             2.1,
		EWrite:            2.3,
		ERefresh:          25.0,
		PActiveStandby:    0.55,
		PPrechargeStandby: 0.30,
	}
}

// Validate reports non-physical coefficients.
func (p PowerParams) Validate() error {
	if p.EActivate < 0 || p.ERead < 0 || p.EWrite < 0 || p.ERefresh < 0 ||
		p.PActiveStandby < 0 || p.PPrechargeStandby < 0 {
		return fmt.Errorf("dram: negative power coefficient: %+v", p)
	}
	return nil
}

// PowerReport summarizes channel energy over an elapsed window.
type PowerReport struct {
	ActivateEnergyNJ   float64
	ReadEnergyNJ       float64
	WriteEnergyNJ      float64
	RefreshEnergyNJ    float64
	BackgroundEnergyNJ float64

	TotalEnergyNJ float64
	// AveragePowerW is total energy over the window's wall time.
	AveragePowerW float64
	// EnergyPerAccessNJ is total energy divided by column accesses.
	EnergyPerAccessNJ float64
}

// PowerReport computes the channel's energy breakdown over elapsed memory
// cycles at the given command clock (Hz). Background power splits between
// active and precharged standby using the open-bank occupancy the channel
// tracked each cycle.
func (c *Channel) PowerReport(p PowerParams, elapsed uint64, clockHz float64) (PowerReport, error) {
	if err := p.Validate(); err != nil {
		return PowerReport{}, err
	}
	if clockHz <= 0 {
		return PowerReport{}, fmt.Errorf("dram: clock must be positive, got %v", clockHz)
	}
	var r PowerReport
	s := c.Stats
	r.ActivateEnergyNJ = float64(s.Activates) * p.EActivate
	r.ReadEnergyNJ = float64(s.Reads) * p.ERead
	r.WriteEnergyNJ = float64(s.Writes) * p.EWrite
	r.RefreshEnergyNJ = float64(s.Refreshes) * p.ERefresh

	cycleSeconds := 1 / clockHz
	totalRankCycles := float64(elapsed) * float64(len(c.ranks))
	activeCycles := float64(s.ActiveRankCycles)
	if activeCycles > totalRankCycles {
		activeCycles = totalRankCycles
	}
	idleCycles := totalRankCycles - activeCycles
	r.BackgroundEnergyNJ = (activeCycles*p.PActiveStandby + idleCycles*p.PPrechargeStandby) *
		cycleSeconds * 1e9

	r.TotalEnergyNJ = r.ActivateEnergyNJ + r.ReadEnergyNJ + r.WriteEnergyNJ +
		r.RefreshEnergyNJ + r.BackgroundEnergyNJ
	if elapsed > 0 {
		r.AveragePowerW = r.TotalEnergyNJ * 1e-9 / (float64(elapsed) * cycleSeconds)
	}
	if n := s.Reads + s.Writes; n > 0 {
		r.EnergyPerAccessNJ = r.TotalEnergyNJ / float64(n)
	}
	return r, nil
}
