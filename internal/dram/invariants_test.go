package dram

import (
	"testing"

	"burstmem/internal/xrand"
)

// TestBusInvariantUnderRandomScheduling drives a channel with a random
// (but legality-gated) command stream and asserts the physical invariants
// the legality checks are supposed to guarantee:
//
//   - data-bus windows never overlap, and cross-rank back-to-back
//     transfers keep at least tRTRS of separation;
//   - a bank never activates while open, never precharges while closed;
//   - reads/writes only target the open row.
func TestBusInvariantUnderRandomScheduling(t *testing.T) {
	tm := DDR2_800() // refresh enabled: the refresh engine participates
	ch, err := NewChannel(tm, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(1234)

	type window struct {
		start, end uint64
		rank       int
	}
	var lastWin window
	haveWin := false

	openRow := map[[2]int]int64{} // (rank,bank) -> row or -1
	for r := 0; r < 2; r++ {
		for b := 0; b < 4; b++ {
			openRow[[2]int{r, b}] = -1
		}
	}

	for cyc := uint64(0); cyc < 50_000; cyc++ {
		refreshUsed := ch.Tick(cyc)
		// Refresh may close banks behind our back; resync our shadow
		// state from the channel itself.
		for rb := range openRow {
			if row, open := ch.OpenRow(rb[0], rb[1]); open {
				openRow[rb] = int64(row)
			} else {
				openRow[rb] = -1
			}
		}
		if refreshUsed {
			continue
		}
		// Try a few random commands; issue the first legal one.
		for attempt := 0; attempt < 8; attempt++ {
			cmd := Cmd(rng.Intn(4))
			tg := Target{
				Rank: rng.Intn(2),
				Bank: rng.Intn(4),
				Row:  uint32(rng.Intn(8)),
				Col:  uint32(rng.Intn(16)),
			}
			// Column commands must target the open row to be legal;
			// aim half of them correctly.
			if (cmd == CmdRead || cmd == CmdWrite) && rng.Intn(2) == 0 {
				if row := openRow[[2]int{tg.Rank, tg.Bank}]; row >= 0 {
					tg.Row = uint32(row)
				}
			}
			if !ch.CanIssue(cmd, tg) {
				continue
			}
			rb := [2]int{tg.Rank, tg.Bank}
			switch cmd {
			case CmdActivate:
				if openRow[rb] >= 0 {
					t.Fatalf("cycle %d: activate on open bank %v", cyc, rb)
				}
			case CmdPrecharge:
				if openRow[rb] < 0 {
					t.Fatalf("cycle %d: precharge on closed bank %v", cyc, rb)
				}
			case CmdRead, CmdWrite:
				if openRow[rb] != int64(tg.Row) {
					t.Fatalf("cycle %d: column to row %d but open row is %d", cyc, tg.Row, openRow[rb])
				}
			}
			res := ch.Issue(cmd, tg, false)
			switch cmd {
			case CmdActivate:
				openRow[rb] = int64(tg.Row)
			case CmdPrecharge:
				openRow[rb] = -1
			case CmdRead, CmdWrite:
				w := window{start: res.DataStart, end: res.DataEnd, rank: tg.Rank}
				if haveWin {
					if w.start < lastWin.end {
						t.Fatalf("cycle %d: data windows overlap: [%d,%d) then [%d,%d)",
							cyc, lastWin.start, lastWin.end, w.start, w.end)
					}
					if w.rank != lastWin.rank && w.start < lastWin.end+uint64(tm.TRTRS) {
						t.Fatalf("cycle %d: rank turnaround violated: gap %d < tRTRS %d",
							cyc, w.start-lastWin.end, tm.TRTRS)
					}
				}
				lastWin = w
				haveWin = true
			}
			break
		}
	}
	if ch.Stats.Reads == 0 || ch.Stats.Writes == 0 || ch.Stats.Refreshes == 0 {
		t.Fatalf("soak did not exercise all command types: %+v", ch.Stats)
	}
}
