package dram

import (
	"fmt"

	"burstmem/internal/trace"
)

// Cmd is an SDRAM command type.
type Cmd int

// SDRAM commands issued by the memory controller. Refresh is issued
// internally by the channel's refresh engine.
const (
	CmdPrecharge Cmd = iota
	CmdActivate
	CmdRead
	CmdWrite
	CmdRefresh
)

// String implements fmt.Stringer.
func (c Cmd) String() string {
	switch c {
	case CmdPrecharge:
		return "PRE"
	case CmdActivate:
		return "ACT"
	case CmdRead:
		return "READ"
	case CmdWrite:
		return "WRITE"
	case CmdRefresh:
		return "REF"
	}
	return fmt.Sprintf("Cmd(%d)", int(c))
}

// Target identifies the destination of a command within a channel.
type Target struct {
	Rank int
	Bank int
	Row  uint32 // used by Activate
	Col  uint32 // used by Read/Write (line-granularity column)
}

// RowOutcome classifies an access by the bank state it encountered
// (paper Section 2).
type RowOutcome int

// Row outcomes: a hit needs only a column access, an empty needs activate +
// column, a conflict needs precharge + activate + column.
const (
	RowHit RowOutcome = iota
	RowEmpty
	RowConflict
)

// String implements fmt.Stringer.
func (o RowOutcome) String() string {
	switch o {
	case RowHit:
		return "hit"
	case RowEmpty:
		return "empty"
	case RowConflict:
		return "conflict"
	}
	return fmt.Sprintf("RowOutcome(%d)", int(o))
}

// bank holds per-bank state and earliest-issue constraints.
//
//burstmem:chanlocal
type bank struct {
	open bool
	row  uint32
	// ver increments whenever this bank's state or timers change; the
	// controller engine uses it to invalidate cached per-bank hints.
	ver uint32

	nextActivate  uint64
	nextPrecharge uint64
	nextRead      uint64
	nextWrite     uint64
}

// rank holds per-rank state: activate pacing, write-to-read turnaround and
// the refresh engine.
//
//burstmem:chanlocal
type rank struct {
	banks []bank

	// Activate timestamps are stored as cycle+1 so the zero value means
	// "never activated".
	lastActivate uint64 // for tRRD
	actWindow    [4]uint64
	actIdx       int

	writeDataEnd uint64 // for tWTR (same-rank write-to-read)

	nextRefresh  uint64 // cycle the next refresh becomes due
	refreshUntil uint64 // busy refreshing until this cycle (exclusive)

	// ver increments whenever rank-wide constraint state changes (activate
	// pacing, write turnaround, refresh schedule).
	ver uint32
	// openBanks counts open banks, for O(1) active-rank sampling.
	openBanks int
}

// Stats accumulates channel activity for utilization reporting.
//
//burstmem:chanlocal
type Stats struct {
	Commands      uint64 // address/command bus busy cycles
	DataBusCycles uint64 // data bus busy cycles
	Reads         uint64
	Writes        uint64
	Activates     uint64
	Precharges    uint64
	Refreshes     uint64
	Outcomes      [3]uint64 // indexed by RowOutcome, counted at Classify-on-issue time
	// ActiveRankCycles counts rank-cycles with at least one open bank
	// (sampled in Tick), for background power accounting.
	ActiveRankCycles uint64
}

// Channel models one independent memory channel: a command/address bus, a
// shared data bus and a set of ranks each with internal banks.
//
//burstmem:chanlocal
type Channel struct {
	T     Timing
	Stats Stats

	ranks []rank
	now   uint64

	// data bus bookkeeping
	busBusyUntil uint64 // first cycle the data bus is free
	busLastRank  int
	busLastWrite bool
	busUsed      bool

	cmdThisCycle bool

	// Monotone version counters for the controller's cached scheduling
	// hints: stateVer bumps on every device-state mutation, busVer on every
	// data-bus occupation, per-bank and per-rank counters live in their
	// structs. Time passing is not a mutation — the engine's cached
	// constraint bounds stay valid until one of these moves.
	stateVer uint64
	busVer   uint32

	// openRanks counts ranks with at least one open bank (incrementally
	// maintained), so per-cycle background-power sampling is O(1).
	openRanks int

	// refreshWake is a lower bound on the next cycle the refresh engine
	// could act; Tick skips the per-rank refresh scan before it.
	refreshWake uint64

	// san is the build-tag-gated protocol sanitizer (see sanitize_on.go);
	// zero-size with no-op methods unless built with -tags invariants.
	san sanState

	// tr observes the command stream when attached (nil = tracing off;
	// every emit is then an inlined nil check). chIdx labels events with
	// this channel's index in the controller.
	tr    *trace.Tracer
	chIdx int
}

// NewChannel builds a channel with the given timing and organization.
// Timing must validate.
func NewChannel(t Timing, ranks, banksPerRank int) (*Channel, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if ranks < 1 || banksPerRank < 1 {
		return nil, fmt.Errorf("dram: need at least one rank and bank (got %d, %d)", ranks, banksPerRank)
	}
	c := &Channel{T: t, busLastRank: -1}
	c.ranks = make([]rank, ranks)
	for i := range c.ranks {
		c.ranks[i].banks = make([]bank, banksPerRank)
		if t.TREFI > 0 {
			// Stagger rank refreshes to avoid lock-step channel stalls.
			c.ranks[i].nextRefresh = uint64(t.TREFI) + uint64(i*t.TREFI/ranks)
		}
	}
	c.refreshWake = NoEvent
	for i := range c.ranks {
		if t.TREFI > 0 && c.ranks[i].nextRefresh < c.refreshWake {
			c.refreshWake = c.ranks[i].nextRefresh
		}
	}
	return c, nil
}

// SetTracer attaches (or, with nil, detaches) a command-stream tracer.
// chIdx is the channel's index in the controller, used to label events.
func (c *Channel) SetTracer(tr *trace.Tracer, chIdx int) {
	c.tr = tr
	c.chIdx = chIdx
}

// Ranks returns the number of ranks on the channel.
func (c *Channel) Ranks() int { return len(c.ranks) }

// Banks returns the number of banks per rank.
func (c *Channel) Banks() int { return len(c.ranks[0].banks) }

// Now returns the current cycle as last set by Tick.
func (c *Channel) Now() uint64 { return c.now }

// Tick advances the channel to the given cycle and runs the refresh engine.
// It returns true when the refresh engine consumed this cycle's command
// slot (the controller must not issue a command this cycle).
//
// Refresh is all-bank auto-refresh per rank: when a rank's tREFI deadline
// passes, the engine blocks new activates to the rank, closes any open
// banks by issuing precharges itself (one command per cycle), and then
// holds the rank busy for tRFC. Afterwards every bank is precharged, which
// is why most row-empty accesses trail refreshes (paper Section 5.2).
//
//burstmem:hotpath
func (c *Channel) Tick(now uint64) bool {
	c.now = now
	c.cmdThisCycle = false
	c.Stats.ActiveRankCycles += uint64(c.openRanks)
	if c.T.TREFI == 0 || now < c.refreshWake {
		return false
	}
	for r := range c.ranks {
		rk := &c.ranks[r]
		if rk.refreshUntil > now || now < rk.nextRefresh {
			continue
		}
		// Refresh due. Close open banks first.
		allClosed := true
		for b := range rk.banks {
			bk := &rk.banks[b]
			if !bk.open {
				continue
			}
			allClosed = false
			if now >= bk.nextPrecharge && !c.cmdThisCycle {
				c.issuePrecharge(r, b)
				c.cmdThisCycle = true
			}
		}
		if allClosed && !c.cmdThisCycle {
			c.san.refresh(c, r, now)
			rk.refreshUntil = now + uint64(c.T.TRFC)
			rk.nextRefresh += uint64(c.T.TREFI)
			rk.ver++
			c.stateVer++
			c.Stats.Refreshes++
			c.Stats.Commands++
			c.cmdThisCycle = true
			c.tr.Command(now, trace.EvRefresh, c.chIdx, r, 0, 0, 0, 0)
		}
	}
	// Recompute the wake bound: a due rank keeps the engine active every
	// cycle until its refresh starts; otherwise nothing happens before the
	// earliest tREFI deadline.
	wake := NoEvent
	for r := range c.ranks {
		rk := &c.ranks[r]
		if rk.refreshUntil <= now && rk.nextRefresh <= now {
			wake = now + 1
			break
		}
		if rk.nextRefresh < wake {
			wake = rk.nextRefresh
		}
	}
	c.refreshWake = wake
	return c.cmdThisCycle
}

// CommandSlotFree reports whether the controller may issue a command this
// cycle (the refresh engine may have consumed the slot during Tick).
func (c *Channel) CommandSlotFree() bool { return !c.cmdThisCycle }

// NoEvent is the "no scheduled event" sentinel returned by the next-event
// queries used for idle-cycle skipping.
const NoEvent = ^uint64(0)

// NextEventCycle returns the next cycle at which the channel's refresh
// engine will act on its own (close banks or start a refresh), or NoEvent.
// It returns now+1 while a refresh is due and draining, because the engine
// may issue a precharge on any coming cycle; command-blocking effects of an
// in-progress refresh (refreshUntil) are accounted per command by
// EarliestIssue instead.
//
//burstmem:hotpath
func (c *Channel) NextEventCycle(now uint64) uint64 {
	if c.T.TREFI == 0 {
		return NoEvent
	}
	next := NoEvent
	for r := range c.ranks {
		rk := &c.ranks[r]
		if rk.refreshUntil <= now && rk.nextRefresh <= now {
			return now + 1 // refresh due: the engine is actively draining
		}
		if rk.nextRefresh > now && rk.nextRefresh < next {
			next = rk.nextRefresh
		}
	}
	return next
}

// EarliestIssue returns the earliest cycle >= now+1 at which the command
// could satisfy CanIssue, assuming device state stays frozen until then (no
// other commands issue and no refresh starts — the skip logic guarantees
// both by also waking at NextEventCycle). The cmdThisCycle slot is ignored:
// the caller only asks about future cycles.
//
//burstmem:hotpath
func (c *Channel) EarliestIssue(cmd Cmd, t Target) uint64 {
	at := maxU64(c.now+1, c.EarliestReady(cmd, t))
	return maxU64(at, c.ColumnBusReady(cmd, t.Rank))
}

// EarliestReady returns the first cycle at which the command's bank and
// rank timing constraints hold (including an in-progress refresh), with no
// current-cycle floor and no data-bus term. The value depends only on state
// covered by the target's bank version and rank version, never on c.now, so
// the controller engine can cache it until one of those versions moves.
//
//burstmem:hotpath
func (c *Channel) EarliestReady(cmd Cmd, t Target) uint64 {
	rk := &c.ranks[t.Rank]
	bk := &rk.banks[t.Bank]
	at := rk.refreshUntil
	switch cmd {
	case CmdPrecharge:
		at = maxU64(at, bk.nextPrecharge)
	case CmdActivate:
		at = maxU64(at, bk.nextActivate)
		if c.T.TRRD > 0 && rk.lastActivate > 0 {
			// CanIssue at cycle x requires x+1 >= lastActivate+tRRD.
			at = maxU64(at, rk.lastActivate+uint64(c.T.TRRD)-1)
		}
		if c.T.TFAW > 0 {
			if oldest := rk.actWindow[rk.actIdx]; oldest > 0 {
				at = maxU64(at, oldest+uint64(c.T.TFAW)-1)
			}
		}
	case CmdRead:
		at = maxU64(at, bk.nextRead)
		if c.T.TWTR > 0 && rk.writeDataEnd > 0 {
			at = maxU64(at, rk.writeDataEnd+uint64(c.T.TWTR))
		}
	case CmdWrite:
		at = maxU64(at, bk.nextWrite)
	case CmdRefresh:
		// Refresh is issued by the channel's own engine on its tREFI
		// schedule; the controller never asks when it could issue one.
	}
	return at
}

// ColumnBusReady returns the first cycle the data bus lets the column
// command launch for the rank (0 when unconstrained; non-column commands
// are never bus-constrained). The value depends only on data-bus state, so
// it can be cached against the channel's bus version.
//
//burstmem:hotpath
func (c *Channel) ColumnBusReady(cmd Cmd, rankIdx int) uint64 {
	switch cmd {
	case CmdRead:
		if need, busy := c.busNeed(rankIdx, false); busy && need > uint64(c.T.TCL) {
			return need - uint64(c.T.TCL)
		}
	case CmdWrite:
		if need, busy := c.busNeed(rankIdx, true); busy && need > uint64(c.T.TCWD) {
			return need - uint64(c.T.TCWD)
		}
	case CmdPrecharge, CmdActivate, CmdRefresh:
		// Row commands and refreshes never touch the data bus.
	}
	return 0
}

// StateVersion returns a counter that increments on every device-state
// mutation (command issue, auto-precharge, refresh start). While it is
// unchanged — and only commands the caller itself issues could change it —
// every cached EarliestReady/ColumnBusReady bound remains exact.
//
//burstmem:hotpath
func (c *Channel) StateVersion() uint64 { return c.stateVer }

// BankVersion returns the bank's mutation counter (see StateVersion).
//
//burstmem:hotpath
func (c *Channel) BankVersion(rankIdx, bankIdx int) uint32 {
	return c.ranks[rankIdx].banks[bankIdx].ver
}

// RankVersion returns the rank's mutation counter (see StateVersion).
//
//burstmem:hotpath
func (c *Channel) RankVersion(rankIdx int) uint32 { return c.ranks[rankIdx].ver }

// BusVersion returns the data-bus mutation counter (see StateVersion).
//
//burstmem:hotpath
func (c *Channel) BusVersion() uint32 { return c.busVer }

// busNeed returns the first cycle the data bus could start a new transfer
// for the rank (including turnaround gaps), and whether the bus has been
// used at all.
//
//burstmem:hotpath
func (c *Channel) busNeed(rankIdx int, isWrite bool) (uint64, bool) {
	if !c.busUsed {
		return 0, false
	}
	need := c.busBusyUntil
	if rankIdx != c.busLastRank {
		need += uint64(c.T.TRTRS)
	} else if !c.busLastWrite && isWrite {
		need += uint64(c.T.TRTW)
	}
	return need, true
}

// AccountSkipped attributes k skipped idle cycles to the per-cycle sampled
// channel statistics (bank state cannot change during a skip, so the sample
// is constant).
//
//burstmem:hotpath
func (c *Channel) AccountSkipped(k uint64) {
	c.Stats.ActiveRankCycles += k * uint64(c.openRanks)
}

// OpenRow returns the open row of a bank, if any.
func (c *Channel) OpenRow(rankIdx, bankIdx int) (uint32, bool) {
	b := &c.ranks[rankIdx].banks[bankIdx]
	return b.row, b.open
}

// Classify reports the row outcome an access to (rank, bank, row) would see
// in the current bank state.
//
//burstmem:hotpath
func (c *Channel) Classify(t Target) RowOutcome {
	b := &c.ranks[t.Rank].banks[t.Bank]
	switch {
	case !b.open:
		return RowEmpty
	case b.row == t.Row:
		return RowHit
	default:
		return RowConflict
	}
}

// NextCommand returns the command an access to the target needs next, given
// current bank state: CmdPrecharge for a row conflict, CmdActivate for a
// closed bank, or the column command itself (read=true selects CmdRead).
//
//burstmem:hotpath
func (c *Channel) NextCommand(t Target, read bool) Cmd {
	switch c.Classify(t) {
	case RowConflict:
		return CmdPrecharge
	case RowEmpty:
		return CmdActivate
	case RowHit:
		if read {
			return CmdRead
		}
		return CmdWrite
	}
	panic("dram: unreachable row outcome in NextCommand")
}

// refreshBlocked reports whether commands to the rank are blocked by an
// in-progress or pending refresh. Precharges stay allowed while a refresh
// is pending so the rank can drain.
//
//burstmem:hotpath
func (c *Channel) refreshBlocked(rankIdx int, cmd Cmd) bool {
	rk := &c.ranks[rankIdx]
	if rk.refreshUntil > c.now {
		return true
	}
	if c.T.TREFI > 0 && c.now >= rk.nextRefresh && cmd == CmdActivate {
		return true
	}
	return false
}

// CanIssue reports whether the command is unblocked at the current cycle:
// all bank, rank and bus timing constraints are met and the command slot is
// free.
//
//burstmem:hotpath
func (c *Channel) CanIssue(cmd Cmd, t Target) bool {
	if c.cmdThisCycle {
		return false
	}
	if t.Rank < 0 || t.Rank >= len(c.ranks) || t.Bank < 0 || t.Bank >= len(c.ranks[t.Rank].banks) {
		return false
	}
	if c.refreshBlocked(t.Rank, cmd) {
		return false
	}
	rk := &c.ranks[t.Rank]
	bk := &rk.banks[t.Bank]
	now := c.now
	switch cmd {
	case CmdPrecharge:
		return bk.open && now >= bk.nextPrecharge
	case CmdActivate:
		if bk.open || now < bk.nextActivate {
			return false
		}
		if c.T.TRRD > 0 && rk.lastActivate > 0 && now+1 < rk.lastActivate+uint64(c.T.TRRD) {
			return false
		}
		if c.T.TFAW > 0 {
			oldest := rk.actWindow[rk.actIdx]
			if oldest > 0 && now+1 < oldest+uint64(c.T.TFAW) {
				return false
			}
		}
		return true
	case CmdRead:
		if !bk.open || bk.row != t.Row || now < bk.nextRead {
			return false
		}
		// Same-rank write-to-read turnaround (tWTR) is measured from
		// the last write data beat to the read command.
		if c.T.TWTR > 0 && rk.writeDataEnd > 0 && now < rk.writeDataEnd+uint64(c.T.TWTR) {
			return false
		}
		return c.busAvailable(t.Rank, false, now+uint64(c.T.TCL))
	case CmdWrite:
		if !bk.open || bk.row != t.Row || now < bk.nextWrite {
			return false
		}
		return c.busAvailable(t.Rank, true, now+uint64(c.T.TCWD))
	case CmdRefresh:
		// Only the channel's refresh engine issues refreshes.
		return false
	}
	return false
}

// busAvailable checks data-bus occupancy and turnaround gaps for a transfer
// that would start at dataStart.
//
//burstmem:hotpath
func (c *Channel) busAvailable(rankIdx int, isWrite bool, dataStart uint64) bool {
	if !c.busUsed {
		return true
	}
	need := c.busBusyUntil
	if rankIdx != c.busLastRank {
		need += uint64(c.T.TRTRS)
	} else if !c.busLastWrite && isWrite {
		// read -> write on the same rank still turns the bus around
		need += uint64(c.T.TRTW)
	}
	return dataStart >= need
}

// IssueResult describes the effect of an issued command.
type IssueResult struct {
	Cmd       Cmd
	DataStart uint64 // first data-bus cycle (column commands only)
	DataEnd   uint64 // first cycle after the last data beat
	Outcome   RowOutcome
}

// Issue executes an unblocked command, updating all device state. It
// panics if the command is blocked: the controller must gate on CanIssue.
// For column commands, autoPrecharge closes the bank automatically after
// the access (the Close Page Autoprecharge controller policy).
//
//burstmem:hotpath
func (c *Channel) Issue(cmd Cmd, t Target, autoPrecharge bool) IssueResult {
	if !c.CanIssue(cmd, t) {
		panic(fmt.Sprintf("dram: Issue of blocked command %v %+v at cycle %d", cmd, t, c.now))
	}
	c.san.checkIssue(c, cmd, t, c.now)
	c.cmdThisCycle = true
	c.Stats.Commands++
	rk := &c.ranks[t.Rank]
	bk := &rk.banks[t.Bank]
	now := c.now
	res := IssueResult{Cmd: cmd, Outcome: c.Classify(t)}
	switch cmd {
	case CmdPrecharge:
		c.issuePrecharge(t.Rank, t.Bank)
	case CmdActivate:
		c.Stats.Activates++
		c.tr.Command(now, trace.EvActivate, c.chIdx, t.Rank, t.Bank, t.Row, 0, 0)
		bk.open = true
		bk.ver++
		rk.ver++
		c.stateVer++
		if rk.openBanks++; rk.openBanks == 1 {
			c.openRanks++
		}
		bk.row = t.Row
		bk.nextRead = now + uint64(c.T.TRCD)
		bk.nextWrite = now + uint64(c.T.TRCD)
		bk.nextPrecharge = maxU64(bk.nextPrecharge, now+uint64(c.T.TRAS))
		bk.nextActivate = maxU64(bk.nextActivate, now+uint64(c.T.TRC))
		rk.lastActivate = now + 1
		if c.T.TFAW > 0 {
			rk.actWindow[rk.actIdx] = now + 1
			rk.actIdx = (rk.actIdx + 1) % len(rk.actWindow)
		}
	case CmdRead:
		c.Stats.Reads++
		res.DataStart = now + uint64(c.T.TCL)
		res.DataEnd = res.DataStart + uint64(c.T.DataCycles())
		c.tr.Command(now, trace.EvRead, c.chIdx, t.Rank, t.Bank, t.Row, res.DataStart, res.DataEnd)
		c.occupyBus(t.Rank, false, res)
		bk.ver++
		c.stateVer++
		gap := uint64(c.T.DataCycles())
		bk.nextRead = now + gap
		bk.nextWrite = now + gap
		bk.nextPrecharge = maxU64(bk.nextPrecharge, now+uint64(c.T.TRTP)+gap)
		if autoPrecharge {
			c.autoClose(t.Rank, t.Bank, bk.nextPrecharge)
		}
	case CmdWrite:
		c.Stats.Writes++
		res.DataStart = now + uint64(c.T.TCWD)
		res.DataEnd = res.DataStart + uint64(c.T.DataCycles())
		c.tr.Command(now, trace.EvWrite, c.chIdx, t.Rank, t.Bank, t.Row, res.DataStart, res.DataEnd)
		c.occupyBus(t.Rank, true, res)
		rk.writeDataEnd = res.DataEnd
		bk.ver++
		rk.ver++
		c.stateVer++
		gap := uint64(c.T.DataCycles())
		bk.nextRead = now + gap
		bk.nextWrite = now + gap
		bk.nextPrecharge = maxU64(bk.nextPrecharge, res.DataEnd+uint64(c.T.TWR))
		if autoPrecharge {
			c.autoClose(t.Rank, t.Bank, bk.nextPrecharge)
		}
	default:
		panic(fmt.Sprintf("dram: cannot issue %v", cmd))
	}
	return res
}

// RecordOutcome counts an access-level row outcome for Figure 9 style
// statistics. Controllers call this exactly once per access, with the
// outcome observed when the access's first transaction issued (so a
// preempting read that finds a bank precharged by an interrupted write is
// counted as a row empty, as in the paper's Section 5.2).
func (c *Channel) RecordOutcome(o RowOutcome) {
	c.Stats.Outcomes[o]++
}

//burstmem:hotpath
func (c *Channel) issuePrecharge(rankIdx, bankIdx int) {
	c.san.precharge(c, rankIdx, bankIdx, c.now)
	bk := &c.ranks[rankIdx].banks[bankIdx]
	c.Stats.Precharges++
	c.tr.Command(c.now, trace.EvPrecharge, c.chIdx, rankIdx, bankIdx, bk.row, 0, 0)
	bk.open = false
	bk.nextActivate = maxU64(bk.nextActivate, c.now+uint64(c.T.TRP))
	bk.ver++
	c.stateVer++
	c.closeBankAccounting(rankIdx)
}

// autoClose models a column access with auto-precharge: the bank closes as
// soon as its precharge constraint allows, without an explicit command.
//
//burstmem:hotpath
func (c *Channel) autoClose(rankIdx, bankIdx int, preAt uint64) {
	c.san.autoPrecharge(c, rankIdx, bankIdx, preAt)
	bk := &c.ranks[rankIdx].banks[bankIdx]
	// Emitted at the issuing cycle (the stream must stay cycle-monotone);
	// the effective close cycle preAt rides in the data args.
	c.tr.Command(c.now, trace.EvAutoPrecharge, c.chIdx, rankIdx, bankIdx, bk.row, preAt, preAt)
	bk.open = false
	bk.nextActivate = maxU64(bk.nextActivate, preAt+uint64(c.T.TRP))
	bk.ver++
	c.stateVer++
	c.closeBankAccounting(rankIdx)
}

// closeBankAccounting updates the open-bank counters after a bank closes.
//
//burstmem:hotpath
func (c *Channel) closeBankAccounting(rankIdx int) {
	rk := &c.ranks[rankIdx]
	if rk.openBanks--; rk.openBanks == 0 {
		c.openRanks--
	}
}

//burstmem:hotpath
func (c *Channel) occupyBus(rankIdx int, isWrite bool, res IssueResult) {
	c.busBusyUntil = res.DataEnd
	c.busLastRank = rankIdx
	c.busLastWrite = isWrite
	c.busUsed = true
	c.busVer++
	c.stateVer++
	c.Stats.DataBusCycles += uint64(c.T.DataCycles())
}

// DataBusUtilization returns the fraction of cycles (0..1) the data bus was
// transferring over an elapsed-cycle window.
func (s Stats) DataBusUtilization(elapsed uint64) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(s.DataBusCycles) / float64(elapsed)
}

// AddressBusUtilization returns the fraction of cycles the command/address
// bus carried a command.
func (s Stats) AddressBusUtilization(elapsed uint64) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(s.Commands) / float64(elapsed)
}

// RowHitRate returns access-level {hit, empty, conflict} fractions.
func (s Stats) RowHitRate() (hit, empty, conflict float64) {
	total := s.Outcomes[RowHit] + s.Outcomes[RowEmpty] + s.Outcomes[RowConflict]
	if total == 0 {
		return 0, 0, 0
	}
	f := func(o RowOutcome) float64 { return float64(s.Outcomes[o]) / float64(total) }
	return f(RowHit), f(RowEmpty), f(RowConflict)
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
