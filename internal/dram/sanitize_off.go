//go:build !invariants

package dram

// sanState is the disabled build of the DDR2 protocol sanitizer: a zero-size
// field on Channel whose no-op methods inline away, so the hooks in the issue
// path cost nothing. Build with -tags invariants to enable the shadow checker
// in sanitize_on.go.
type sanState struct{}

func (sanState) checkIssue(c *Channel, cmd Cmd, t Target, now uint64)         {}
func (sanState) precharge(c *Channel, rankIdx, bankIdx int, now uint64)       {}
func (sanState) autoPrecharge(c *Channel, rankIdx, bankIdx int, preAt uint64) {}
func (sanState) refresh(c *Channel, rankIdx int, now uint64)                  {}
