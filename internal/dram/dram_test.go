package dram

import "testing"

// noRefresh disables refresh so single-access latency tests see idle busses.
func noRefresh(t Timing) Timing {
	t.TREFI = 0
	return t
}

// stepper drives a channel cycle by cycle in tests.
type stepper struct {
	t   *testing.T
	ch  *Channel
	cyc uint64
}

func newStepper(t *testing.T, timing Timing, ranks, banks int) *stepper {
	t.Helper()
	ch, err := NewChannel(timing, ranks, banks)
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	s := &stepper{t: t, ch: ch}
	s.ch.Tick(0)
	return s
}

// tick advances one cycle.
func (s *stepper) tick() {
	s.cyc++
	s.ch.Tick(s.cyc)
}

// issue advances cycles until cmd is unblocked (bounded), then issues it.
func (s *stepper) issue(cmd Cmd, tg Target, ap bool) (uint64, IssueResult) {
	s.t.Helper()
	for i := 0; i < 100000; i++ {
		if s.ch.CanIssue(cmd, tg) {
			res := s.ch.Issue(cmd, tg, ap)
			at := s.cyc
			s.tick()
			return at, res
		}
		s.tick()
	}
	s.t.Fatalf("command %v %+v never unblocked", cmd, tg)
	return 0, IssueResult{}
}

// access performs a full access (precharge/activate as needed + column) and
// returns the cycle of the first command, the data window and the outcome.
func (s *stepper) access(tg Target, read, ap bool) (first uint64, res IssueResult, outcome RowOutcome) {
	s.t.Helper()
	outcome = s.ch.Classify(tg)
	first = ^uint64(0)
	for {
		cmd := s.ch.NextCommand(tg, read)
		at, r := s.issue(cmd, tg, ap && (cmd == CmdRead || cmd == CmdWrite))
		if first == ^uint64(0) {
			first = at
		}
		if cmd == CmdRead || cmd == CmdWrite {
			return first, r, outcome
		}
	}
}

func TestTimingValidate(t *testing.T) {
	if err := DDR2_800().Validate(); err != nil {
		t.Fatalf("DDR2_800 invalid: %v", err)
	}
	if err := DDR_400().Validate(); err != nil {
		t.Fatalf("DDR_400 invalid: %v", err)
	}
	if err := Figure1Timing().Validate(); err != nil {
		t.Fatalf("Figure1Timing invalid: %v", err)
	}
	bad := DDR2_800()
	bad.TCL = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for tCL=0")
	}
	bad = DDR2_800()
	bad.BL = 3
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for odd burst length")
	}
	bad = DDR2_800()
	bad.TRAS = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for tRAS < tRCD")
	}
	bad = DDR2_800()
	bad.TRFC = bad.TREFI
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for tRFC >= tREFI")
	}
}

// TestTable1Latencies reproduces paper Table 1: with idle busses and the
// Open Page policy, a row hit costs tCL to first data, a row empty costs
// tRCD+tCL and a row conflict costs tRP+tRCD+tCL. Under Close Page
// Autoprecharge every access is a row empty costing tRCD+tCL.
func TestTable1Latencies(t *testing.T) {
	for _, tc := range []struct {
		name   string
		timing Timing
	}{
		{"DDR2-800", noRefresh(DDR2_800())},
		{"Fig1-2-2-2", Figure1Timing()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tm := tc.timing
			wantHit := uint64(tm.TCL)
			wantEmpty := uint64(tm.TRCD + tm.TCL)
			wantConflict := uint64(tm.TRP + tm.TRCD + tm.TCL)

			// Open Page: row empty, then row hit, then row conflict.
			s := newStepper(t, tm, 1, 1)
			first, res, out := s.access(Target{Row: 0, Col: 0}, true, false)
			if out != RowEmpty || res.DataStart-first != wantEmpty {
				t.Errorf("row empty: outcome=%v latency=%d want %d", out, res.DataStart-first, wantEmpty)
			}
			first, res, out = s.access(Target{Row: 0, Col: 1}, true, false)
			if out != RowHit || res.DataStart-first != wantHit {
				t.Errorf("row hit: outcome=%v latency=%d want %d", out, res.DataStart-first, wantHit)
			}
			first, res, out = s.access(Target{Row: 1, Col: 0}, true, false)
			if out != RowConflict || res.DataStart-first != wantConflict {
				t.Errorf("row conflict: outcome=%v latency=%d want %d", out, res.DataStart-first, wantConflict)
			}

			// Close Page Autoprecharge: every access is a row empty.
			s = newStepper(t, tm, 1, 1)
			s.access(Target{Row: 0, Col: 0}, true, true)
			first, res, out = s.access(Target{Row: 0, Col: 1}, true, true)
			if out != RowEmpty || res.DataStart-first != wantEmpty {
				t.Errorf("CPA same row: outcome=%v latency=%d want %d (row empty)", out, res.DataStart-first, wantEmpty)
			}
			first, res, out = s.access(Target{Row: 1, Col: 0}, true, true)
			if out != RowEmpty || res.DataStart-first != wantEmpty {
				t.Errorf("CPA other row: outcome=%v latency=%d want %d (row empty)", out, res.DataStart-first, wantEmpty)
			}
		})
	}
}

// TestFigure1InOrder reproduces paper Figure 1(a): four reads (two row
// empties, two row conflicts) scheduled strictly in order without
// interleaving on the 2-2-2 BL4 device complete in exactly 28 cycles.
func TestFigure1InOrder(t *testing.T) {
	s := newStepper(t, Figure1Timing(), 1, 2)
	seq := []Target{
		{Bank: 0, Row: 0}, // access0: row empty
		{Bank: 1, Row: 0}, // access1: row empty
		{Bank: 0, Row: 1}, // access2: row conflict
		{Bank: 0, Row: 0}, // access3: row conflict
	}
	var end uint64
	for _, tg := range seq {
		// Strictly sequential: do not start the next access until the
		// previous access's data has drained.
		for s.cyc < end {
			s.tick()
		}
		_, res, _ := s.access(tg, true, false)
		end = res.DataEnd
	}
	if end != 28 {
		t.Fatalf("in-order completion = %d cycles, paper Figure 1(a) says 28", end)
	}
}

func TestBankConstraints(t *testing.T) {
	tm := noRefresh(DDR2_800())
	s := newStepper(t, tm, 1, 4)

	at, _ := s.issue(CmdActivate, Target{Bank: 0, Row: 5}, false)
	if at != 0 {
		t.Fatalf("first activate at %d, want 0", at)
	}
	// Activate on an open bank is illegal.
	if s.ch.CanIssue(CmdActivate, Target{Bank: 0, Row: 6}) {
		t.Fatal("activate allowed on open bank")
	}
	// Read to the wrong row is illegal.
	if s.ch.CanIssue(CmdRead, Target{Bank: 0, Row: 6}) {
		t.Fatal("read allowed to non-open row")
	}
	// tRRD paces activates to other banks in the rank.
	at, _ = s.issue(CmdActivate, Target{Bank: 1, Row: 0}, false)
	if at != uint64(tm.TRRD) {
		t.Fatalf("second activate at %d, want tRRD=%d", at, tm.TRRD)
	}
	// tRAS holds the row open: precharge of bank 0 cannot beat act+tRAS.
	at, _ = s.issue(CmdPrecharge, Target{Bank: 0}, false)
	if at != uint64(tm.TRAS) {
		t.Fatalf("precharge at %d, want tRAS=%d", at, tm.TRAS)
	}
	// tRP then gates the next activate; tRC from the first activate is
	// already satisfied by then.
	at, _ = s.issue(CmdActivate, Target{Bank: 0, Row: 7}, false)
	if want := uint64(tm.TRAS + tm.TRP); at != want {
		t.Fatalf("re-activate at %d, want tRAS+tRP=%d", at, want)
	}
}

func TestFourActivateWindow(t *testing.T) {
	tm := noRefresh(DDR2_800())
	s := newStepper(t, tm, 1, 8)
	var times []uint64
	for b := 0; b < 5; b++ {
		at, _ := s.issue(CmdActivate, Target{Bank: b, Row: 0}, false)
		times = append(times, at)
	}
	// First four pace at tRRD; the fifth must wait for the tFAW window.
	for i := 1; i < 4; i++ {
		if times[i]-times[i-1] != uint64(tm.TRRD) {
			t.Fatalf("activate %d at %d, want tRRD spacing", i, times[i])
		}
	}
	if want := times[0] + uint64(tm.TFAW); times[4] != want {
		t.Fatalf("fifth activate at %d, want tFAW-gated %d", times[4], want)
	}
}

func TestDataBusContention(t *testing.T) {
	tm := noRefresh(DDR2_800())
	t.Run("same rank back-to-back", func(t *testing.T) {
		s := newStepper(t, tm, 1, 2)
		s.issue(CmdActivate, Target{Bank: 0, Row: 0}, false)
		s.issue(CmdActivate, Target{Bank: 1, Row: 0}, false)
		_, r0 := s.issue(CmdRead, Target{Bank: 0, Row: 0}, false)
		_, r1 := s.issue(CmdRead, Target{Bank: 1, Row: 0}, false)
		if r1.DataStart != r0.DataEnd {
			t.Fatalf("same-rank reads: second data at %d, want back-to-back at %d", r1.DataStart, r0.DataEnd)
		}
	})
	t.Run("rank turnaround", func(t *testing.T) {
		s := newStepper(t, tm, 2, 1)
		s.issue(CmdActivate, Target{Rank: 0, Bank: 0, Row: 0}, false)
		s.issue(CmdActivate, Target{Rank: 1, Bank: 0, Row: 0}, false)
		_, r0 := s.issue(CmdRead, Target{Rank: 0, Bank: 0, Row: 0}, false)
		_, r1 := s.issue(CmdRead, Target{Rank: 1, Bank: 0, Row: 0}, false)
		if want := r0.DataEnd + uint64(tm.TRTRS); r1.DataStart != want {
			t.Fatalf("cross-rank reads: second data at %d, want turnaround-gapped %d", r1.DataStart, want)
		}
	})
}

func TestWriteToReadTurnaround(t *testing.T) {
	tm := noRefresh(DDR2_800())
	s := newStepper(t, tm, 1, 2)
	s.issue(CmdActivate, Target{Bank: 0, Row: 0}, false)
	s.issue(CmdActivate, Target{Bank: 1, Row: 0}, false)
	_, w := s.issue(CmdWrite, Target{Bank: 0, Row: 0}, false)
	at, _ := s.issue(CmdRead, Target{Bank: 1, Row: 0}, false)
	if want := w.DataEnd + uint64(tm.TWTR); at != want {
		t.Fatalf("read command at %d after write, want tWTR-gated %d", at, want)
	}
}

func TestWriteRecoveryGatesPrecharge(t *testing.T) {
	tm := noRefresh(DDR2_800())
	s := newStepper(t, tm, 1, 1)
	s.issue(CmdActivate, Target{Bank: 0, Row: 0}, false)
	_, w := s.issue(CmdWrite, Target{Bank: 0, Row: 0}, false)
	at, _ := s.issue(CmdPrecharge, Target{Bank: 0}, false)
	if want := w.DataEnd + uint64(tm.TWR); at != want {
		t.Fatalf("precharge at %d after write, want tWR-gated %d", at, want)
	}
}

func TestRefreshClosesRows(t *testing.T) {
	tm := DDR2_800()
	tm.TREFI = 100 // refresh quickly so the test is short
	s := newStepper(t, tm, 1, 2)
	s.issue(CmdActivate, Target{Bank: 0, Row: 3}, false)
	if _, open := s.ch.OpenRow(0, 0); !open {
		t.Fatal("bank should be open after activate")
	}
	// Run well past the refresh deadline; the refresh engine must
	// precharge the bank and complete a refresh on its own.
	for s.cyc < uint64(tm.TREFI+tm.TRFC+tm.TRP+10) {
		s.tick()
	}
	if _, open := s.ch.OpenRow(0, 0); open {
		t.Fatal("bank still open after refresh")
	}
	if s.ch.Stats.Refreshes == 0 {
		t.Fatal("no refresh recorded")
	}
	// The next access to the old row is now a row empty.
	if out := s.ch.Classify(Target{Bank: 0, Row: 3}); out != RowEmpty {
		t.Fatalf("post-refresh outcome %v, want row empty", out)
	}
}

func TestRefreshBlocksCommands(t *testing.T) {
	tm := DDR2_800()
	tm.TREFI = 60
	s := newStepper(t, tm, 1, 1)
	// Step straight to the refresh window with everything idle.
	for s.cyc < uint64(tm.TREFI) {
		s.tick()
	}
	// Refresh fires at tREFI; activates must stay blocked until tRFC ends.
	blockedSeen := false
	for s.cyc < uint64(tm.TREFI+tm.TRFC) {
		if !s.ch.CanIssue(CmdActivate, Target{Bank: 0, Row: 0}) {
			blockedSeen = true
		}
		s.tick()
	}
	if !blockedSeen {
		t.Fatal("activate never blocked during refresh")
	}
	at, _ := s.issue(CmdActivate, Target{Bank: 0, Row: 0}, false)
	if at < uint64(tm.TREFI+tm.TRFC) {
		t.Fatalf("activate at %d, inside refresh window ending %d", at, tm.TREFI+tm.TRFC)
	}
}

func TestIssueBlockedPanics(t *testing.T) {
	ch, err := NewChannel(noRefresh(DDR2_800()), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ch.Tick(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Issue of blocked command did not panic")
		}
	}()
	ch.Issue(CmdRead, Target{Bank: 0, Row: 0}, false) // bank closed: blocked
}

func TestOneCommandPerCycle(t *testing.T) {
	ch, err := NewChannel(noRefresh(DDR2_800()), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	ch.Tick(0)
	if !ch.CanIssue(CmdActivate, Target{Bank: 0, Row: 0}) {
		t.Fatal("first activate blocked")
	}
	ch.Issue(CmdActivate, Target{Bank: 0, Row: 0}, false)
	if ch.CanIssue(CmdActivate, Target{Bank: 1, Row: 0}) {
		t.Fatal("second command allowed in the same cycle")
	}
	if ch.CommandSlotFree() {
		t.Fatal("command slot should be consumed")
	}
}

func TestStatsUtilization(t *testing.T) {
	tm := noRefresh(DDR2_800())
	s := newStepper(t, tm, 1, 1)
	s.issue(CmdActivate, Target{Bank: 0, Row: 0}, false)
	for i := 0; i < 4; i++ {
		s.issue(CmdRead, Target{Bank: 0, Row: 0, Col: uint32(i)}, false)
	}
	elapsed := s.cyc
	st := s.ch.Stats
	if st.Reads != 4 || st.Activates != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if got := st.DataBusCycles; got != 16 {
		t.Fatalf("data bus cycles = %d, want 4 accesses x BL/2=4", got)
	}
	if u := st.DataBusUtilization(elapsed); u <= 0 || u > 1 {
		t.Fatalf("data bus utilization out of range: %v", u)
	}
	if u := st.AddressBusUtilization(elapsed); u <= 0 || u > 1 {
		t.Fatalf("address bus utilization out of range: %v", u)
	}
}

func TestRowOutcomeRecording(t *testing.T) {
	ch, err := NewChannel(noRefresh(DDR2_800()), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ch.RecordOutcome(RowHit)
	ch.RecordOutcome(RowHit)
	ch.RecordOutcome(RowConflict)
	ch.RecordOutcome(RowEmpty)
	hit, empty, conflict := ch.Stats.RowHitRate()
	if hit != 0.5 || empty != 0.25 || conflict != 0.25 {
		t.Fatalf("rates = %v/%v/%v", hit, empty, conflict)
	}
}
