//go:build invariants

package dram

import (
	"fmt"
	"strings"
	"testing"
)

// These tests prove the -tags invariants sanitizer actually fires. Each case
// simulates a timing-bookkeeping bug by corrupting the channel's primary
// bank/bus state so CanIssue wrongly approves a command, then drives the
// public Issue path and asserts the shadow checker panics with the expected
// cycle-stamped message.

func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not contain %q", msg, want)
		}
		if !strings.Contains(msg, "sanitizer: cycle") {
			t.Fatalf("panic %q is not cycle-stamped", msg)
		}
	}()
	f()
}

func newTestChannel(t *testing.T) *Channel {
	t.Helper()
	c, err := NewChannel(DDR2_800(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSanitizerTriggers(t *testing.T) {
	// DDR2_800: tCL=5 tRCD=5 tRP=5 tRAS=18 tWR=6 tWTR=3 tRTP=3 tRRD=3
	// tFAW=18 tCWD=4 tRTRS=2, 4 data cycles per column access.
	tests := []struct {
		name string
		want string
		run  func(t *testing.T, c *Channel)
	}{
		{
			name: "read before tRCD",
			want: "before tRCD expires",
			run: func(t *testing.T, c *Channel) {
				c.Tick(10)
				c.Issue(CmdActivate, Target{Row: 7}, false)
				c.Tick(11)
				// Bug: the bank forgot its activate-to-column constraint.
				c.ranks[0].banks[0].nextRead = 0
				c.Issue(CmdRead, Target{Row: 7}, false) // legal only from cycle 15
			},
		},
		{
			name: "column to closed bank",
			want: "no row open (activate-before-read violated)",
			run: func(t *testing.T, c *Channel) {
				c.Tick(10)
				// Bug: the bank believes row 3 is open without any activate.
				c.ranks[0].banks[0].open = true
				c.ranks[0].banks[0].row = 3
				c.Issue(CmdRead, Target{Row: 3}, false)
			},
		},
		{
			name: "precharge before tWR",
			want: "PRE to rank 0 bank 0 violates tRAS/tWR/tRTP",
			run: func(t *testing.T, c *Channel) {
				c.Tick(10)
				c.Issue(CmdActivate, Target{Row: 7}, false)
				c.Tick(15)
				c.Issue(CmdWrite, Target{Row: 7}, false) // data ends 15+4+4=23, +tWR=29
				c.Tick(16)
				// Bug: write recovery (and tRAS) constraint lost.
				c.ranks[0].banks[0].nextPrecharge = 0
				c.Issue(CmdPrecharge, Target{}, false)
			},
		},
		{
			name: "activate to open bank",
			want: "row 7 already open",
			run: func(t *testing.T, c *Channel) {
				c.Tick(10)
				c.Issue(CmdActivate, Target{Row: 7}, false)
				c.Tick(13) // past tRRD so only the corruption lets this through
				// Bug: the bank believes it is closed and activatable.
				c.ranks[0].banks[0].open = false
				c.ranks[0].banks[0].nextActivate = 0
				c.Issue(CmdActivate, Target{Row: 9}, false)
			},
		},
		{
			name: "data bus overlap",
			want: "overlaps the data bus",
			run: func(t *testing.T, c *Channel) {
				c.Tick(10)
				c.Issue(CmdActivate, Target{Bank: 0, Row: 7}, false)
				c.Tick(13)
				c.Issue(CmdActivate, Target{Bank: 1, Row: 7}, false)
				c.Tick(17)
				c.Issue(CmdRead, Target{Bank: 0, Row: 7}, false) // bus busy [22,26)
				c.Tick(18)
				// Bug: the bus bookkeeping lost the in-flight transfer.
				c.busUsed = false
				c.Issue(CmdRead, Target{Bank: 1, Row: 7}, false) // data would start at 23
			},
		},
		{
			name: "write-to-read turnaround",
			want: "violates tWTR",
			run: func(t *testing.T, c *Channel) {
				c.Tick(10)
				c.Issue(CmdActivate, Target{Bank: 0, Row: 7}, false)
				c.Tick(13)
				c.Issue(CmdActivate, Target{Bank: 1, Row: 7}, false)
				c.Tick(18)
				c.Issue(CmdWrite, Target{Bank: 0, Row: 7}, false) // data ends 18+4+4=26
				c.Tick(25)
				// Bug: rank turnaround and bus state both lost; a read this
				// early violates tWTR (legal only from 26+3=29).
				c.ranks[0].writeDataEnd = 0
				c.busUsed = false
				c.Issue(CmdRead, Target{Bank: 1, Row: 7}, false)
			},
		},
		{
			name: "refresh with open bank",
			want: "REF to rank 0 with bank 0 still open",
			run: func(t *testing.T, c *Channel) {
				c.Tick(10)
				c.Issue(CmdActivate, Target{Row: 7}, false)
				// Bug: the refresh engine thinks every bank is precharged.
				c.ranks[0].banks[0].open = false
				c.ranks[0].nextRefresh = 11
				c.refreshWake = 11 // keep the wake cache consistent with the poke
				c.Tick(11) // engine starts the refresh immediately
			},
		},
		{
			name: "command during refresh",
			want: "during refresh (rank busy until cycle",
			run: func(t *testing.T, c *Channel) {
				c.ranks[0].nextRefresh = 5
				c.refreshWake = 5 // keep the wake cache consistent with the poke
				c.Tick(5)         // refresh starts; rank busy until 5+51=56
				c.Tick(6)
				// Bug: the rank forgot it is mid-refresh.
				c.ranks[0].refreshUntil = 0
				c.Issue(CmdActivate, Target{Row: 7}, false)
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c := newTestChannel(t)
			mustPanic(t, tc.want, func() { tc.run(t, c) })
		})
	}
}
