package dram

import (
	"testing"
)

func TestPowerParamsValidate(t *testing.T) {
	if err := DefaultPowerParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultPowerParams()
	bad.ERead = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative coefficient accepted")
	}
}

func TestPowerReportIdleChannel(t *testing.T) {
	ch, err := NewChannel(noRefresh(DDR2_800()), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for cyc := uint64(0); cyc < 1000; cyc++ {
		ch.Tick(cyc)
	}
	rep, err := ch.PowerReport(DefaultPowerParams(), 1000, 400e6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ActivateEnergyNJ != 0 || rep.ReadEnergyNJ != 0 || rep.WriteEnergyNJ != 0 {
		t.Fatalf("idle channel has command energy: %+v", rep)
	}
	// All background, all precharged: 2 ranks * 1000 cycles * 2.5ns * 0.30 W.
	want := 2 * 1000 * 2.5e-9 * 0.30 * 1e9
	if diff := rep.BackgroundEnergyNJ - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("background energy %v, want %v", rep.BackgroundEnergyNJ, want)
	}
	if rep.EnergyPerAccessNJ != 0 {
		t.Fatal("energy per access nonzero with no accesses")
	}
}

func TestPowerReportCountsCommands(t *testing.T) {
	s := newStepper(t, noRefresh(DDR2_800()), 1, 2)
	s.issue(CmdActivate, Target{Bank: 0, Row: 0}, false)
	s.issue(CmdRead, Target{Bank: 0, Row: 0}, false)
	s.issue(CmdWrite, Target{Bank: 0, Row: 0, Col: 1}, false)
	p := DefaultPowerParams()
	rep, err := s.ch.PowerReport(p, s.cyc, 400e6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ActivateEnergyNJ != p.EActivate || rep.ReadEnergyNJ != p.ERead || rep.WriteEnergyNJ != p.EWrite {
		t.Fatalf("command energies wrong: %+v", rep)
	}
	if rep.EnergyPerAccessNJ <= 0 || rep.TotalEnergyNJ <= rep.ActivateEnergyNJ {
		t.Fatalf("report totals: %+v", rep)
	}
	if rep.AveragePowerW <= 0 {
		t.Fatal("zero average power")
	}
}

// TestRowHitsSaveActivateEnergy: serving N accesses as row hits costs less
// activate energy than as conflicts.
func TestRowHitsSaveActivateEnergy(t *testing.T) {
	run := func(rows []uint32) PowerReport {
		s := newStepper(t, noRefresh(DDR2_800()), 1, 1)
		for i, row := range rows {
			s.access(Target{Row: row, Col: uint32(i)}, true, false)
		}
		rep, err := s.ch.PowerReport(DefaultPowerParams(), s.cyc, 400e6)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	hits := run([]uint32{0, 0, 0, 0})
	conflicts := run([]uint32{0, 1, 0, 1})
	if hits.ActivateEnergyNJ >= conflicts.ActivateEnergyNJ {
		t.Fatalf("row hits did not save activate energy: %v vs %v",
			hits.ActivateEnergyNJ, conflicts.ActivateEnergyNJ)
	}
	if hits.EnergyPerAccessNJ >= conflicts.EnergyPerAccessNJ {
		t.Fatalf("row hits did not lower energy per access: %v vs %v",
			hits.EnergyPerAccessNJ, conflicts.EnergyPerAccessNJ)
	}
}

func TestPowerReportRejectsBadInputs(t *testing.T) {
	ch, _ := NewChannel(noRefresh(DDR2_800()), 1, 1)
	if _, err := ch.PowerReport(DefaultPowerParams(), 100, 0); err == nil {
		t.Fatal("zero clock accepted")
	}
	bad := DefaultPowerParams()
	bad.PActiveStandby = -1
	if _, err := ch.PowerReport(bad, 100, 400e6); err == nil {
		t.Fatal("bad params accepted")
	}
}
