//go:build invariants

package dram

import "fmt"

// This file is the enabled build of the DDR2 protocol sanitizer (build with
// -tags invariants). It maintains a shadow copy of every per-bank and
// per-rank earliest-issue constraint, derived only from the observed command
// stream and the Timing parameters — independent of the bank-state fields the
// scheduler consults. Every issued command is re-validated against the
// shadow; a mismatch means a timing-bookkeeping bug corrupted the primary
// state, and the sanitizer panics with a cycle-stamped description of the
// violated constraint.

// sanBank is the shadow per-bank state.
type sanBank struct {
	open bool
	row  uint32

	nextActivate  uint64 // tRP after precharge, tRC after activate
	nextPrecharge uint64 // tRAS after activate, tWR/tRTP after columns
	nextRead      uint64 // column-to-column gap
	nextWrite     uint64
	// rcdUntil is when tRCD expires after the last activate, kept apart
	// from the column-gap bounds so violations name the right constraint.
	rcdUntil uint64
}

// sanRank is the shadow per-rank state.
type sanRank struct {
	banks []sanBank

	lastActivate uint64 // cycle+1 of the last activate (tRRD; 0 = never)
	actWindow    [4]uint64
	actIdx       int

	writeDataEnd uint64 // last write data beat (tWTR)

	refreshUntil uint64 // rank busy refreshing until this cycle (tRFC)
	lastRefresh  uint64 // cycle+1 of the last refresh start (0 = never)
}

// sanRefreshSlack is how many tREFI intervals a rank may run past its
// refresh deadline before the sanitizer objects (DDR2 allows postponing up
// to eight refreshes, so nine intervals between refreshes is the limit).
const sanRefreshSlack = 9

// sanState is the enabled protocol sanitizer.
type sanState struct {
	ranks []sanRank

	busBusyUntil uint64
	busLastRank  int
	busLastWrite bool
	busUsed      bool
}

func (s *sanState) init(c *Channel) {
	if s.ranks != nil {
		return
	}
	s.ranks = make([]sanRank, len(c.ranks))
	for i := range s.ranks {
		s.ranks[i].banks = make([]sanBank, len(c.ranks[i].banks))
	}
	s.busLastRank = -1
}

func sanFail(now uint64, format string, args ...any) {
	panic(fmt.Sprintf("dram sanitizer: cycle %d: %s", now, fmt.Sprintf(format, args...)))
}

// checkIssue validates and records an activate or column command. Precharge
// and refresh have dedicated hooks because the refresh engine issues them
// outside Issue.
func (s *sanState) checkIssue(c *Channel, cmd Cmd, t Target, now uint64) {
	s.init(c)
	if cmd == CmdPrecharge || cmd == CmdRefresh {
		return
	}
	rk := &s.ranks[t.Rank]
	bk := &rk.banks[t.Bank]
	if now < rk.refreshUntil {
		sanFail(now, "%v to rank %d during refresh (rank busy until cycle %d, tRFC=%d)",
			cmd, t.Rank, rk.refreshUntil, c.T.TRFC)
	}
	switch cmd {
	case CmdActivate:
		if bk.open {
			sanFail(now, "ACT to rank %d bank %d with row %d already open",
				t.Rank, t.Bank, bk.row)
		}
		if now < bk.nextActivate {
			sanFail(now, "ACT to rank %d bank %d violates tRP/tRC: earliest legal cycle %d",
				t.Rank, t.Bank, bk.nextActivate)
		}
		if c.T.TRRD > 0 && rk.lastActivate > 0 && now+1 < rk.lastActivate+uint64(c.T.TRRD) {
			sanFail(now, "ACT to rank %d bank %d violates tRRD: last activate at cycle %d",
				t.Rank, t.Bank, rk.lastActivate-1)
		}
		if c.T.TFAW > 0 {
			if oldest := rk.actWindow[rk.actIdx]; oldest > 0 && now+1 < oldest+uint64(c.T.TFAW) {
				sanFail(now, "ACT to rank %d bank %d violates tFAW: fourth-last activate at cycle %d",
					t.Rank, t.Bank, oldest-1)
			}
		}
		bk.open = true
		bk.row = t.Row
		bk.rcdUntil = now + uint64(c.T.TRCD)
		bk.nextRead = now + uint64(c.T.TRCD)
		bk.nextWrite = now + uint64(c.T.TRCD)
		bk.nextPrecharge = maxU64(bk.nextPrecharge, now+uint64(c.T.TRAS))
		bk.nextActivate = maxU64(bk.nextActivate, now+uint64(c.T.TRC))
		rk.lastActivate = now + 1
		if c.T.TFAW > 0 {
			rk.actWindow[rk.actIdx] = now + 1
			rk.actIdx = (rk.actIdx + 1) % len(rk.actWindow)
		}
	case CmdRead:
		if !bk.open {
			sanFail(now, "READ to rank %d bank %d with no row open (activate-before-read violated)",
				t.Rank, t.Bank)
		}
		if bk.row != t.Row {
			sanFail(now, "READ to rank %d bank %d row %d but row %d is open",
				t.Rank, t.Bank, t.Row, bk.row)
		}
		if now < bk.rcdUntil {
			sanFail(now, "READ to rank %d bank %d before tRCD expires: activate completes at cycle %d",
				t.Rank, t.Bank, bk.rcdUntil)
		}
		if now < bk.nextRead {
			sanFail(now, "READ to rank %d bank %d violates the column-to-column gap: earliest legal cycle %d",
				t.Rank, t.Bank, bk.nextRead)
		}
		if c.T.TWTR > 0 && rk.writeDataEnd > 0 && now < rk.writeDataEnd+uint64(c.T.TWTR) {
			sanFail(now, "READ to rank %d violates tWTR write-to-read turnaround: write data ended at cycle %d",
				t.Rank, rk.writeDataEnd)
		}
		s.checkBus(c, t.Rank, false, now+uint64(c.T.TCL), now)
		s.recordColumn(c, rk, bk, t.Rank, false, now)
	case CmdWrite:
		if !bk.open {
			sanFail(now, "WRITE to rank %d bank %d with no row open (activate-before-write violated)",
				t.Rank, t.Bank)
		}
		if bk.row != t.Row {
			sanFail(now, "WRITE to rank %d bank %d row %d but row %d is open",
				t.Rank, t.Bank, t.Row, bk.row)
		}
		if now < bk.rcdUntil {
			sanFail(now, "WRITE to rank %d bank %d before tRCD expires: activate completes at cycle %d",
				t.Rank, t.Bank, bk.rcdUntil)
		}
		if now < bk.nextWrite {
			sanFail(now, "WRITE to rank %d bank %d violates the column-to-column gap: earliest legal cycle %d",
				t.Rank, t.Bank, bk.nextWrite)
		}
		s.checkBus(c, t.Rank, true, now+uint64(c.T.TCWD), now)
		s.recordColumn(c, rk, bk, t.Rank, true, now)
	}
}

// checkBus validates data-bus exclusivity and turnaround gaps for a transfer
// starting at dataStart.
func (s *sanState) checkBus(c *Channel, rankIdx int, isWrite bool, dataStart, now uint64) {
	if !s.busUsed {
		return
	}
	if dataStart < s.busBusyUntil {
		sanFail(now, "data transfer starting at cycle %d overlaps the data bus, busy until cycle %d (exclusivity violated)",
			dataStart, s.busBusyUntil)
	}
	need := s.busBusyUntil
	switch {
	case rankIdx != s.busLastRank:
		need += uint64(c.T.TRTRS)
	case !s.busLastWrite && isWrite:
		need += uint64(c.T.TRTW)
	}
	if dataStart < need {
		sanFail(now, "data transfer starting at cycle %d violates the bus turnaround gap: earliest legal start %d",
			dataStart, need)
	}
}

// recordColumn updates the shadow for an issued column command.
func (s *sanState) recordColumn(c *Channel, rk *sanRank, bk *sanBank, rankIdx int, isWrite bool, now uint64) {
	gap := uint64(c.T.DataCycles())
	var dataStart uint64
	if isWrite {
		dataStart = now + uint64(c.T.TCWD)
	} else {
		dataStart = now + uint64(c.T.TCL)
	}
	dataEnd := dataStart + gap
	bk.nextRead = now + gap
	bk.nextWrite = now + gap
	if isWrite {
		rk.writeDataEnd = dataEnd
		bk.nextPrecharge = maxU64(bk.nextPrecharge, dataEnd+uint64(c.T.TWR))
	} else {
		bk.nextPrecharge = maxU64(bk.nextPrecharge, now+uint64(c.T.TRTP)+gap)
	}
	s.busBusyUntil = dataEnd
	s.busLastRank = rankIdx
	s.busLastWrite = isWrite
	s.busUsed = true
}

// precharge validates and records a precharge, whether issued by the
// controller (Issue) or by the refresh engine's drain (Tick).
func (s *sanState) precharge(c *Channel, rankIdx, bankIdx int, now uint64) {
	s.init(c)
	bk := &s.ranks[rankIdx].banks[bankIdx]
	if !bk.open {
		sanFail(now, "PRE to rank %d bank %d which has no open row", rankIdx, bankIdx)
	}
	if now < bk.nextPrecharge {
		sanFail(now, "PRE to rank %d bank %d violates tRAS/tWR/tRTP: earliest legal cycle %d",
			rankIdx, bankIdx, bk.nextPrecharge)
	}
	bk.open = false
	bk.nextActivate = maxU64(bk.nextActivate, now+uint64(c.T.TRP))
}

// autoPrecharge records the implicit bank closure of a column access with
// auto-precharge, effective at preAt.
func (s *sanState) autoPrecharge(c *Channel, rankIdx, bankIdx int, preAt uint64) {
	s.init(c)
	bk := &s.ranks[rankIdx].banks[bankIdx]
	bk.open = false
	bk.nextActivate = maxU64(bk.nextActivate, preAt+uint64(c.T.TRP))
}

// refresh validates and records an all-bank auto-refresh starting now.
func (s *sanState) refresh(c *Channel, rankIdx int, now uint64) {
	s.init(c)
	rk := &s.ranks[rankIdx]
	for b := range rk.banks {
		if rk.banks[b].open {
			sanFail(now, "REF to rank %d with bank %d still open (all banks must be precharged)",
				rankIdx, b)
		}
	}
	if now < rk.refreshUntil {
		sanFail(now, "REF to rank %d during refresh (rank busy until cycle %d)", rankIdx, rk.refreshUntil)
	}
	if c.T.TREFI > 0 && rk.lastRefresh > 0 {
		if limit := uint64(c.T.TREFI) * sanRefreshSlack; now-(rk.lastRefresh-1) > limit {
			sanFail(now, "refresh interval violated on rank %d: last refresh at cycle %d, more than %d*tREFI ago",
				rankIdx, rk.lastRefresh-1, sanRefreshSlack)
		}
	}
	rk.lastRefresh = now + 1
	rk.refreshUntil = now + uint64(c.T.TRFC)
}
