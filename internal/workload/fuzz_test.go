package workload

import (
	"bytes"
	"testing"
)

// FuzzTraceRoundTrip throws arbitrary bytes at the trace-file parser and
// checks that (1) it never panics or allocates without bound, (2) any
// accepted trace survives WriteTrace -> ParseTrace with an op-identical
// stream (the tracegen -record contract), and (3) accepted ops respect the
// format's invariants (dependence flags only on loads).
//
// Run with: go test -fuzz FuzzTraceRoundTrip ./internal/workload/
func FuzzTraceRoundTrip(f *testing.F) {
	seeds := []string{
		"# burstmem trace: seed (5 ops)\nL 0x1000\nLD 0x1040\nS 2048\nN 2\n",
		"l 10\ns 0x10\nn 0\nL 0xffffffffffffffff\n",
		"N 3\n\n  # indented comment\nN 4\nLd 0X7f\n",
		"",
		"L\n",
		"L zz\n",
		"N -1\n",
		"X 5\n",
		"N 99999999999999999999\n",
		"N 16777216\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		gen, err := ParseTrace("fuzz", bytes.NewReader(data))
		if err != nil {
			if gen != nil {
				t.Fatal("ParseTrace returned both a generator and an error")
			}
			return
		}
		n := gen.Len()
		if n == 0 {
			t.Fatal("accepted trace has zero ops")
		}
		if n > maxTraceOps {
			t.Fatalf("accepted trace has %d ops, over the %d cap", n, maxTraceOps)
		}
		if n > 1<<16 {
			t.Skip("round trip cost unbounded; parser properties already checked")
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, gen, n); err != nil {
			t.Fatalf("WriteTrace of accepted trace failed: %v", err)
		}
		// WriteTrace consumed exactly one loop, so gen's cyclic position is
		// back at the start and the two streams can be compared directly.
		back, err := ParseTrace("fuzz-rt", bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of serialized trace failed: %v\n%s", err, buf.Bytes())
		}
		if back.Len() != n {
			t.Fatalf("round trip changed length: %d -> %d\n%s", n, back.Len(), buf.Bytes())
		}
		for i := 0; i < n; i++ {
			a, b := gen.Next(), back.Next()
			if a != b {
				t.Fatalf("op %d changed in round trip: %+v -> %+v", i, a, b)
			}
			if a.DepOnPrevLoad && a.Type != OpLoad {
				t.Fatalf("op %d: dependence flag on non-load %+v", i, a)
			}
			if a.Type == OpNonMem && a.Addr != 0 {
				t.Fatalf("op %d: non-memory op with address %#x", i, a.Addr)
			}
		}
	})
}
