// Package workload generates the deterministic synthetic instruction
// streams the simulator runs in place of SPEC CPU2000 reference traces
// (see DESIGN.md, substitutions).
//
// A stream is a sequence of Ops: non-memory instructions, loads and stores.
// Streams are produced by composing four kernels that span the access
// patterns the paper's benchmarks exhibit:
//
//   - stream: concurrent sequential array walks (swim, lucas, applu —
//     high spatial locality, deep row hits, heavy write streams),
//   - random: uniform accesses over a large working set (low locality),
//   - chase: dependent loads, each address derived from the previous
//     load's value (mcf, parser — latency-bound, low MLP),
//   - loop: a small cache-resident footprint (compute phases that filter
//     out at the caches).
//
// Everything is seeded; the same profile always yields the same trace.
package workload

import (
	"fmt"
	"sort"

	"burstmem/internal/xrand"
)

// OpType classifies an instruction.
type OpType uint8

// Instruction classes produced by generators.
const (
	OpNonMem OpType = iota
	OpLoad
	OpStore
)

// String implements fmt.Stringer.
func (t OpType) String() string {
	switch t {
	case OpNonMem:
		return "nonmem"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	}
	return fmt.Sprintf("OpType(%d)", uint8(t))
}

// Op is one instruction of the synthetic trace.
type Op struct {
	Type OpType
	Addr uint64
	// DepOnPrevLoad marks a load whose address depends on the previous
	// load's data (pointer chasing): it cannot issue until that load
	// completes.
	DepOnPrevLoad bool
}

// Generator produces an endless deterministic instruction stream.
type Generator interface {
	Name() string
	Next() Op
}

// Profile parameterizes a synthetic benchmark.
type Profile struct {
	Name string

	// MemFraction is the fraction of instructions that access memory.
	MemFraction float64
	// StoreFraction is the store share of memory instructions.
	StoreFraction float64

	// Kernel mix weights (need not sum to 1; they are normalized).
	StreamWeight float64
	RandomWeight float64
	ChaseWeight  float64
	LoopWeight   float64

	// Streams is the number of concurrent sequential streams.
	Streams int
	// StrideBytes is the stream advance per access. Word-sized strides
	// (8, the default when 0) touch each cache line eight times, as in
	// scans of contiguous arrays; line-sized strides (64) model
	// higher-dimensional array sweeps where every access misses — the
	// pattern that fills the controller with outstanding reads (paper
	// Fig. 8 shows up to 35 for swim).
	StrideBytes int
	// WorkingSet is the footprint, in bytes, of the random/chase/stream
	// regions.
	WorkingSet uint64
	// Burstiness in [0,1] modulates arrival clustering: real programs
	// alternate memory-intensive phases (loop bodies sweeping arrays)
	// with compute phases, so misses arrive in clumps that build up the
	// controller queues access reordering works on. 0 produces a smooth
	// Bernoulli arrival process; higher values concentrate the same
	// average memory fraction into denser phases.
	Burstiness float64
	// Seed drives all random choices for this profile.
	Seed uint64
}

// Validate reports profile errors.
func (p Profile) Validate() error {
	if p.MemFraction < 0 || p.MemFraction > 1 {
		return fmt.Errorf("workload %s: MemFraction %v out of [0,1]", p.Name, p.MemFraction)
	}
	if p.StoreFraction < 0 || p.StoreFraction > 1 {
		return fmt.Errorf("workload %s: StoreFraction %v out of [0,1]", p.Name, p.StoreFraction)
	}
	if p.StreamWeight < 0 || p.RandomWeight < 0 || p.ChaseWeight < 0 || p.LoopWeight < 0 {
		return fmt.Errorf("workload %s: negative kernel weight", p.Name)
	}
	if p.StreamWeight+p.RandomWeight+p.ChaseWeight+p.LoopWeight <= 0 {
		return fmt.Errorf("workload %s: all kernel weights zero", p.Name)
	}
	if p.WorkingSet < 1<<20 {
		return fmt.Errorf("workload %s: working set %d too small", p.Name, p.WorkingSet)
	}
	if p.Streams < 1 {
		return fmt.Errorf("workload %s: need at least one stream", p.Name)
	}
	if p.Burstiness < 0 || p.Burstiness > 1 {
		return fmt.Errorf("workload %s: Burstiness %v out of [0,1]", p.Name, p.Burstiness)
	}
	if p.StrideBytes < 0 {
		return fmt.Errorf("workload %s: negative stride", p.Name)
	}
	return nil
}

const (
	lineBytes  = 64
	wordBytes  = 8       // sequential kernels advance by words, so a line is touched 8 times
	loopBytes  = 1 << 16 // cache-resident loop footprint
	chaseAlign = lineBytes
)

// generator implements Generator for a Profile.
type generator struct {
	p   Profile
	rng *xrand.RNG

	// cumulative kernel weights for selection
	wStream, wRandom, wChase float64 // wLoop implied

	streamPos  []uint64 // current address per stream
	streamBase []uint64
	streamSpan uint64
	nextStream int

	chasePos uint64
	loopPos  uint64
	loopBase uint64

	randomBase uint64

	// phase state for bursty arrivals
	memFracHi   float64 // memory fraction inside a memory phase
	memFracLo   float64 // memory fraction inside a compute phase
	memPhaseLen int     // mean ops per memory phase
	cmpPhaseLen int     // mean ops per compute phase
	phaseOps    int     // remaining ops in the current phase
	inMemPhase  bool
}

// New builds a generator for the profile. The profile must validate.
func New(p Profile) (Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &generator{p: p, rng: xrand.New(p.Seed)}
	total := p.StreamWeight + p.RandomWeight + p.ChaseWeight + p.LoopWeight
	g.wStream = p.StreamWeight / total
	g.wRandom = g.wStream + p.RandomWeight/total
	g.wChase = g.wRandom + p.ChaseWeight/total

	// Carve the working set: streams get the bottom half, random/chase
	// the top half, the loop a small region of its own.
	g.streamSpan = p.WorkingSet / 2 / uint64(p.Streams)
	if g.streamSpan == 0 {
		g.streamSpan = lineBytes
	}
	for i := 0; i < p.Streams; i++ {
		base := uint64(i) * g.streamSpan
		g.streamBase = append(g.streamBase, base)
		g.streamPos = append(g.streamPos, base)
	}
	g.randomBase = p.WorkingSet / 2
	g.loopBase = p.WorkingSet
	g.chasePos = g.randomBase

	// Phase modulation: concentrate the average memory fraction into
	// denser memory phases, preserving the overall mean. With hi the
	// in-phase fraction and lo the compute-phase fraction, the share of
	// ops spent in memory phases is f = (avg-lo)/(hi-lo).
	g.memFracHi = p.MemFraction + (0.92-p.MemFraction)*p.Burstiness
	g.memFracLo = p.MemFraction * (1 - p.Burstiness)
	g.memPhaseLen = 600
	if g.memFracHi > g.memFracLo {
		f := (p.MemFraction - g.memFracLo) / (g.memFracHi - g.memFracLo)
		if f > 0 && f < 1 {
			g.cmpPhaseLen = int(float64(g.memPhaseLen) * (1 - f) / f)
		}
	}
	g.inMemPhase = true
	g.phaseOps = g.memPhaseLen
	return g, nil
}

// MustNew is New, panicking on invalid profiles (for table-driven setup of
// the built-in profiles, which are validated by tests).
func MustNew(p Profile) Generator {
	g, err := New(p)
	if err != nil {
		panic(err)
	}
	return g
}

// Name implements Generator.
func (g *generator) Name() string { return g.p.Name }

// Next implements Generator.
func (g *generator) Next() Op {
	frac := g.p.MemFraction
	if g.cmpPhaseLen > 0 {
		if g.phaseOps <= 0 {
			// Geometric-ish phase lengths around the configured means.
			g.inMemPhase = !g.inMemPhase
			mean := g.memPhaseLen
			if !g.inMemPhase {
				mean = g.cmpPhaseLen
			}
			g.phaseOps = mean/2 + g.rng.Intn(mean+1)
		}
		g.phaseOps--
		if g.inMemPhase {
			frac = g.memFracHi
		} else {
			frac = g.memFracLo
		}
	}
	if !g.rng.Bool(frac) {
		return Op{Type: OpNonMem}
	}
	k := g.rng.Float64()
	switch {
	case k < g.wStream:
		return g.stream()
	case k < g.wRandom:
		return g.random()
	case k < g.wChase:
		return g.chase()
	default:
		return g.loop()
	}
}

func (g *generator) kind() OpType {
	if g.rng.Bool(g.p.StoreFraction) {
		return OpStore
	}
	return OpLoad
}

// stream walks the next stream sequentially at word granularity (eight
// touches per cache line, like a real array walk); streams rotate round
// robin so several rows stay live at once.
func (g *generator) stream() Op {
	i := g.nextStream
	g.nextStream = (g.nextStream + 1) % len(g.streamPos)
	addr := g.streamPos[i]
	stride := uint64(g.p.StrideBytes)
	if stride == 0 {
		stride = wordBytes
	}
	g.streamPos[i] += stride
	if g.streamPos[i] >= g.streamBase[i]+g.streamSpan {
		g.streamPos[i] = g.streamBase[i]
	}
	// Dedicate the last stream to stores when stores are configured, so
	// write traffic has the spatial locality write piggybacking exploits.
	t := OpLoad
	if g.p.StoreFraction > 0 && i == len(g.streamPos)-1 {
		t = OpStore
	} else if g.rng.Bool(g.p.StoreFraction / 2) {
		t = OpStore
	}
	return Op{Type: t, Addr: addr}
}

// random picks a uniform line in the upper half of the working set.
func (g *generator) random() Op {
	span := g.p.WorkingSet / 2
	addr := g.randomBase + g.rng.Uint64n(span/lineBytes)*lineBytes
	return Op{Type: g.kind(), Addr: addr}
}

// chase emits a dependent load: the next address is a hash of the current
// one (standing in for following a pointer), so consecutive chase loads
// serialize.
func (g *generator) chase() Op {
	span := g.p.WorkingSet / 2
	h := g.chasePos*0x9E3779B97F4A7C15 + 0x7F4A7C15
	h ^= h >> 29
	g.chasePos = g.randomBase + (h % (span / chaseAlign) * chaseAlign)
	return Op{Type: OpLoad, Addr: g.chasePos, DepOnPrevLoad: true}
}

// loop walks a small footprint that stays cache resident.
func (g *generator) loop() Op {
	addr := g.loopBase + g.loopPos
	g.loopPos += wordBytes
	if g.loopPos >= loopBytes {
		g.loopPos = 0
	}
	return Op{Type: g.kind(), Addr: addr}
}

// profiles are the 16 SPEC CPU2000 benchmarks of the paper's Figure 10,
// parameterized to reproduce each benchmark's qualitative stream class:
// streaming codes (swim, lucas, applu, mgrid, art) expose deep row
// locality and heavy write streams; latency-bound codes (mcf, parser)
// pointer-chase with low MLP; the integer codes mix moderate-locality
// traffic with cache-resident compute.
var profiles = []Profile{
	{Name: "gzip", MemFraction: 0.20, StoreFraction: 0.30, StreamWeight: 0.4, RandomWeight: 0.1, ChaseWeight: 0.0, LoopWeight: 0.5, Streams: 2, WorkingSet: 192 << 20, Burstiness: 0.85, Seed: 101},
	{Name: "gcc", MemFraction: 0.32, StoreFraction: 0.45, StreamWeight: 0.45, RandomWeight: 0.2, ChaseWeight: 0.05, LoopWeight: 0.3, Streams: 3, WorkingSet: 256 << 20, Burstiness: 0.7, Seed: 102},
	{Name: "mcf", MemFraction: 0.36, StoreFraction: 0.12, StreamWeight: 0.05, RandomWeight: 0.25, ChaseWeight: 0.6, LoopWeight: 0.1, Streams: 1, WorkingSet: 512 << 20, Burstiness: 0.5, Seed: 103},
	{Name: "parser", MemFraction: 0.30, StoreFraction: 0.15, StreamWeight: 0.1, RandomWeight: 0.3, ChaseWeight: 0.45, LoopWeight: 0.15, Streams: 1, WorkingSet: 256 << 20, Burstiness: 0.6, Seed: 104},
	{Name: "perlbmk", MemFraction: 0.30, StoreFraction: 0.25, StreamWeight: 0.1, RandomWeight: 0.4, ChaseWeight: 0.3, LoopWeight: 0.2, Streams: 2, WorkingSet: 256 << 20, Burstiness: 0.7, Seed: 105},
	{Name: "gap", MemFraction: 0.30, StoreFraction: 0.30, StreamWeight: 0.45, RandomWeight: 0.2, ChaseWeight: 0.05, LoopWeight: 0.3, Streams: 2, WorkingSet: 192 << 20, Burstiness: 0.7, Seed: 106},
	{Name: "bzip2", MemFraction: 0.30, StoreFraction: 0.32, StreamWeight: 0.45, RandomWeight: 0.15, ChaseWeight: 0.0, LoopWeight: 0.4, Streams: 2, WorkingSet: 192 << 20, Burstiness: 0.75, Seed: 107},
	{Name: "apsi", MemFraction: 0.06, StoreFraction: 0.30, StreamWeight: 0.55, RandomWeight: 0.1, ChaseWeight: 0.0, LoopWeight: 0.35, StrideBytes: 32, Streams: 3, WorkingSet: 192 << 20, Burstiness: 0.7, Seed: 108},
	{Name: "wupwise", MemFraction: 0.14, StoreFraction: 0.28, StreamWeight: 0.55, RandomWeight: 0.1, ChaseWeight: 0.0, LoopWeight: 0.35, StrideBytes: 32, Streams: 3, WorkingSet: 256 << 20, Burstiness: 0.5, Seed: 109},
	{Name: "mgrid", MemFraction: 0.10, StoreFraction: 0.30, StreamWeight: 0.8, RandomWeight: 0.05, ChaseWeight: 0.0, LoopWeight: 0.15, StrideBytes: 64, Streams: 4, WorkingSet: 384 << 20, Burstiness: 0.65, Seed: 110},
	{Name: "swim", MemFraction: 0.22, StoreFraction: 0.35, StreamWeight: 0.85, RandomWeight: 0.03, ChaseWeight: 0.0, LoopWeight: 0.12, StrideBytes: 64, Streams: 5, WorkingSet: 512 << 20, Burstiness: 0.0, Seed: 111},
	{Name: "applu", MemFraction: 0.10, StoreFraction: 0.32, StreamWeight: 0.8, RandomWeight: 0.05, ChaseWeight: 0.0, LoopWeight: 0.15, StrideBytes: 64, Streams: 4, WorkingSet: 384 << 20, Burstiness: 0.65, Seed: 112},
	{Name: "mesa", MemFraction: 0.28, StoreFraction: 0.30, StreamWeight: 0.4, RandomWeight: 0.2, ChaseWeight: 0.05, LoopWeight: 0.35, Streams: 2, WorkingSet: 192 << 20, Burstiness: 0.7, Seed: 113},
	{Name: "art", MemFraction: 0.14, StoreFraction: 0.18, StreamWeight: 0.7, RandomWeight: 0.15, ChaseWeight: 0.0, LoopWeight: 0.15, StrideBytes: 64, Streams: 3, WorkingSet: 256 << 20, Burstiness: 0.4, Seed: 114},
	{Name: "facerec", MemFraction: 0.10, StoreFraction: 0.15, StreamWeight: 0.45, RandomWeight: 0.15, ChaseWeight: 0.25, LoopWeight: 0.15, StrideBytes: 64, Streams: 2, WorkingSet: 256 << 20, Burstiness: 0.6, Seed: 115},
	{Name: "lucas", MemFraction: 0.10, StoreFraction: 0.42, StreamWeight: 0.8, RandomWeight: 0.05, ChaseWeight: 0.0, LoopWeight: 0.15, StrideBytes: 64, Streams: 3, WorkingSet: 384 << 20, Burstiness: 0.65, Seed: 116},
}

// Profiles returns the 16 built-in benchmark profiles in the paper's
// Figure 10 order.
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// Names returns the benchmark names, sorted as in Figure 10.
func Names() []string {
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}
	return names
}

// ByName returns the named built-in profile.
func ByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	available := Names()
	sort.Strings(available)
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q (available: %v)", name, available)
}
