package workload

import (
	"testing"
)

func TestBuiltinProfilesValidate(t *testing.T) {
	ps := Profiles()
	if len(ps) != 16 {
		t.Fatalf("%d profiles, want the paper's 16", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s: %v", p.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("ByName(%q).Name = %q", name, p.Name)
		}
	}
	if _, err := ByName("specjbb"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	base, _ := ByName("swim")
	cases := []func(*Profile){
		func(p *Profile) { p.MemFraction = 1.5 },
		func(p *Profile) { p.StoreFraction = -0.1 },
		func(p *Profile) { p.StreamWeight = -1 },
		func(p *Profile) { p.StreamWeight, p.RandomWeight, p.ChaseWeight, p.LoopWeight = 0, 0, 0, 0 },
		func(p *Profile) { p.WorkingSet = 1024 },
		func(p *Profile) { p.Streams = 0 },
		func(p *Profile) { p.Burstiness = 2 },
	}
	for i, mutate := range cases {
		p := base
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
		if _, err := New(p); err == nil {
			t.Errorf("case %d: New accepted invalid profile", i)
		}
	}
}

// TestDeterminism: identical profiles yield identical streams.
func TestDeterminism(t *testing.T) {
	p, _ := ByName("gcc")
	a := MustNew(p)
	b := MustNew(p)
	for i := 0; i < 100000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams diverged at op %d", i)
		}
	}
}

// TestSeedChangesStream: a different seed produces a different stream.
func TestSeedChangesStream(t *testing.T) {
	p, _ := ByName("gcc")
	a := MustNew(p)
	p.Seed++
	b := MustNew(p)
	same := 0
	for i := 0; i < 10000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 9500 {
		t.Fatalf("streams nearly identical across seeds (%d/10000 equal)", same)
	}
}

// TestMemFractionHonored: the long-run memory-op fraction approximates the
// profile's MemFraction despite phase modulation.
func TestMemFractionHonored(t *testing.T) {
	for _, name := range []string{"swim", "mcf", "gzip"} {
		p, _ := ByName(name)
		g := MustNew(p)
		const n = 400000
		mem := 0
		for i := 0; i < n; i++ {
			if g.Next().Type != OpNonMem {
				mem++
			}
		}
		got := float64(mem) / n
		if got < p.MemFraction*0.85 || got > p.MemFraction*1.15 {
			t.Errorf("%s: memory fraction %.3f, profile says %.3f", name, got, p.MemFraction)
		}
	}
}

// TestStoreFraction: store share of memory ops tracks the profile.
func TestStoreFraction(t *testing.T) {
	p, _ := ByName("swim")
	g := MustNew(p)
	var loads, stores int
	for i := 0; i < 400000; i++ {
		switch g.Next().Type {
		case OpLoad:
			loads++
		case OpStore:
			stores++
		}
	}
	got := float64(stores) / float64(loads+stores)
	if got < p.StoreFraction*0.6 || got > p.StoreFraction*1.4 {
		t.Errorf("store fraction %.3f, profile says %.3f", got, p.StoreFraction)
	}
}

// TestChaseDependencies: mcf (chase-heavy) emits dependent loads; swim
// (stream-only) emits none.
func TestChaseDependencies(t *testing.T) {
	count := func(name string) int {
		p, _ := ByName(name)
		g := MustNew(p)
		dep := 0
		for i := 0; i < 100000; i++ {
			if g.Next().DepOnPrevLoad {
				dep++
			}
		}
		return dep
	}
	if got := count("mcf"); got == 0 {
		t.Error("mcf produced no dependent loads")
	}
	if got := count("swim"); got != 0 {
		t.Errorf("swim produced %d dependent loads, want 0", got)
	}
}

// TestAddressesWithinFootprint: all generated addresses stay inside the
// working set plus the loop region.
func TestAddressesWithinFootprint(t *testing.T) {
	p, _ := ByName("gcc")
	g := MustNew(p)
	limit := p.WorkingSet + loopBytes
	for i := 0; i < 200000; i++ {
		op := g.Next()
		if op.Type == OpNonMem {
			continue
		}
		if op.Addr >= limit {
			t.Fatalf("op %d address %#x outside footprint %#x", i, op.Addr, limit)
		}
	}
}

// TestStreamSpatialLocality: consecutive accesses of one stream advance by
// one word, so a line is touched multiple times before moving on.
func TestStreamSpatialLocality(t *testing.T) {
	p := Profile{
		Name: "streams", MemFraction: 1, StoreFraction: 0,
		StreamWeight: 1, Streams: 1, WorkingSet: 64 << 20, Seed: 7,
	}
	g := MustNew(p)
	prev := g.Next().Addr
	for i := 0; i < 1000; i++ {
		cur := g.Next().Addr
		if cur != prev+wordBytes && cur != 0 { // wraparound allowed
			t.Fatalf("stream stride broken: %#x -> %#x", prev, cur)
		}
		prev = cur
	}
}

// TestBurstinessPhases: with high burstiness the stream alternates dense
// and sparse memory phases.
func TestBurstinessPhases(t *testing.T) {
	p := Profile{
		Name: "bursty", MemFraction: 0.3, StoreFraction: 0.2,
		StreamWeight: 1, Streams: 2, WorkingSet: 64 << 20,
		Burstiness: 0.9, Seed: 9,
	}
	g := MustNew(p)
	// Measure windowed memory fraction; expect high variance across
	// windows when bursty.
	const win = 500
	var fracs []float64
	for w := 0; w < 100; w++ {
		mem := 0
		for i := 0; i < win; i++ {
			if g.Next().Type != OpNonMem {
				mem++
			}
		}
		fracs = append(fracs, float64(mem)/win)
	}
	lo, hi := 1.0, 0.0
	for _, f := range fracs {
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if hi-lo < 0.3 {
		t.Errorf("bursty stream too smooth: window fractions span [%.2f, %.2f]", lo, hi)
	}
}

func TestOpTypeString(t *testing.T) {
	if OpNonMem.String() != "nonmem" || OpLoad.String() != "load" || OpStore.String() != "store" {
		t.Fatal("OpType.String broken")
	}
}
