package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trace-file support: users who have real program traces (e.g. from a
// binary-instrumentation tool) can run them instead of the synthetic
// profiles. The format is line-oriented text:
//
//	# comment
//	L <hex-or-dec address>     load
//	LD <address>               load dependent on the previous load
//	S <address>                store
//	N <count>                  <count> non-memory instructions
//
// A trace replays in a loop, so short traces still drive long simulations
// (document the loop length when reporting results from looped traces).

// maxTraceOps bounds a parsed trace's expanded length so a short
// run-length line ("N 1000000000000") cannot make the parser allocate
// without bound. 16M ops per loop is far beyond any simulated instruction
// budget; longer recordings should be split.
const maxTraceOps = 1 << 24

// TraceGenerator replays a parsed op sequence cyclically.
type TraceGenerator struct {
	name string
	ops  []Op
	pos  int
}

// ParseTrace reads the text trace format. It returns an error with the
// offending line number for malformed input.
func ParseTrace(name string, r io.Reader) (*TraceGenerator, error) {
	var ops []Op
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("trace %s:%d: want `OP value`, got %q", name, lineNo, line)
		}
		op := strings.ToUpper(fields[0])
		switch op {
		case "L", "LD", "S":
			addr, err := parseAddr(fields[1])
			if err != nil {
				return nil, fmt.Errorf("trace %s:%d: %v", name, lineNo, err)
			}
			if len(ops) >= maxTraceOps {
				return nil, fmt.Errorf("trace %s:%d: trace exceeds %d ops", name, lineNo, maxTraceOps)
			}
			t := OpLoad
			if op == "S" {
				t = OpStore
			}
			ops = append(ops, Op{Type: t, Addr: addr, DepOnPrevLoad: op == "LD"})
		case "N":
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("trace %s:%d: bad count %q", name, lineNo, fields[1])
			}
			if n > maxTraceOps-len(ops) {
				return nil, fmt.Errorf("trace %s:%d: trace exceeds %d ops", name, lineNo, maxTraceOps)
			}
			for i := 0; i < n; i++ {
				ops = append(ops, Op{Type: OpNonMem})
			}
		default:
			return nil, fmt.Errorf("trace %s:%d: unknown op %q", name, lineNo, op)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace %s: %v", name, err)
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("trace %s: empty", name)
	}
	return &TraceGenerator{name: name, ops: ops}, nil
}

// Name implements Generator.
func (t *TraceGenerator) Name() string { return t.name }

// Next implements Generator, replaying the trace cyclically.
func (t *TraceGenerator) Next() Op {
	op := t.ops[t.pos]
	t.pos++
	if t.pos == len(t.ops) {
		t.pos = 0
	}
	return op
}

// Len returns the trace length in ops (one loop).
func (t *TraceGenerator) Len() int { return len(t.ops) }

func parseAddr(s string) (uint64, error) {
	base := 10
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		s, base = s[2:], 16
	}
	v, err := strconv.ParseUint(s, base, 64)
	if err != nil {
		return 0, fmt.Errorf("bad address %q", s)
	}
	return v, nil
}

// WriteTrace serializes ops from a generator into the trace format —
// the inverse of ParseTrace, used by tracegen -record to snapshot a
// synthetic profile into an editable file. Consecutive non-memory ops are
// run-length encoded.
func WriteTrace(w io.Writer, gen Generator, n int) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# burstmem trace: %s (%d ops)\n", gen.Name(), n); err != nil {
		return err
	}
	nonMem := 0
	flush := func() error {
		if nonMem == 0 {
			return nil
		}
		_, err := fmt.Fprintf(bw, "N %d\n", nonMem)
		nonMem = 0
		return err
	}
	for i := 0; i < n; i++ {
		op := gen.Next()
		switch op.Type {
		case OpNonMem:
			nonMem++
		case OpLoad:
			if err := flush(); err != nil {
				return err
			}
			mn := "L"
			if op.DepOnPrevLoad {
				mn = "LD"
			}
			if _, err := fmt.Fprintf(bw, "%s 0x%x\n", mn, op.Addr); err != nil {
				return err
			}
		case OpStore:
			if err := flush(); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(bw, "S 0x%x\n", op.Addr); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	return bw.Flush()
}
