package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseTrace(t *testing.T) {
	src := `# a tiny trace
L 0x1000
LD 0x2000
S 4096
N 3
L 0x1008
`
	g, err := ParseTrace("tiny", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 7 {
		t.Fatalf("len %d, want 7 (3 mem + 3 nonmem + 1 mem)", g.Len())
	}
	want := []Op{
		{Type: OpLoad, Addr: 0x1000},
		{Type: OpLoad, Addr: 0x2000, DepOnPrevLoad: true},
		{Type: OpStore, Addr: 4096},
		{Type: OpNonMem},
		{Type: OpNonMem},
		{Type: OpNonMem},
		{Type: OpLoad, Addr: 0x1008},
	}
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Fatalf("op %d = %+v, want %+v", i, got, w)
		}
	}
	// Cyclic replay.
	if got := g.Next(); got != want[0] {
		t.Fatalf("trace did not loop: %+v", got)
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []string{
		"",             // empty
		"X 0x10",       // unknown op
		"L",            // missing operand
		"L zz",         // bad address
		"N -1",         // bad count
		"L 0x10 extra", // too many fields
		"N notanumber", // bad count
	}
	for _, src := range cases {
		if _, err := ParseTrace("bad", strings.NewReader(src)); err == nil {
			t.Errorf("trace %q accepted", src)
		}
	}
}

// TestTraceRoundTrip: WriteTrace then ParseTrace reproduces the stream.
func TestTraceRoundTrip(t *testing.T) {
	p, _ := ByName("gcc")
	src := MustNew(p)
	var buf bytes.Buffer
	const n = 5000
	if err := WriteTrace(&buf, src, n); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTrace("roundtrip", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != n {
		t.Fatalf("round-trip length %d, want %d", parsed.Len(), n)
	}
	ref := MustNew(p)
	for i := 0; i < n; i++ {
		if got, want := parsed.Next(), ref.Next(); got != want {
			t.Fatalf("op %d = %+v, want %+v", i, got, want)
		}
	}
}
