// Package xrand provides a tiny deterministic xorshift64* pseudo-random
// generator. Every stochastic choice in the simulator flows through a
// seeded instance of this generator, so identical configurations always
// produce identical simulations — a property the experiment harness and the
// regression tests rely on.
package xrand

// RNG is an xorshift64* generator. The zero value is not valid; use New.
type RNG struct{ s uint64 }

// New seeds a generator. Seed 0 is remapped to a fixed nonzero constant
// (xorshift state must never be zero).
func New(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{s: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Intn returns a uniformly distributed value in [0, n); 0 when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniformly distributed value in [0, n); 0 when n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.Uint64() % n
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}
