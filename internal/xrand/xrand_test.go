package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("diverged at %d", i)
		}
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	f := func(n uint16) bool {
		v := r.Intn(int(n))
		if n == 0 {
			return v == 0
		}
		return v >= 0 && v < int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(4)
	f := func(n uint32) bool {
		v := r.Uint64n(uint64(n))
		if n == 0 {
			return v == 0
		}
		return v < uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(6)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.28 || got > 0.32 {
		t.Fatalf("Bool(0.3) frequency %v", got)
	}
}

// TestUniformity: a rough chi-squared style check over 16 buckets.
func TestUniformity(t *testing.T) {
	r := New(8)
	var buckets [16]int
	const n = 160000
	for i := 0; i < n; i++ {
		buckets[r.Intn(16)]++
	}
	for i, c := range buckets {
		if c < n/16*9/10 || c > n/16*11/10 {
			t.Fatalf("bucket %d count %d far from expected %d", i, c, n/16)
		}
	}
}
