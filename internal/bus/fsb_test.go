package bus

import (
	"testing"

	"burstmem/internal/addrmap"
	"burstmem/internal/core"
	"burstmem/internal/dram"
	"burstmem/internal/memctrl"
)

func testController(t *testing.T) *memctrl.Controller {
	t.Helper()
	cfg := memctrl.DefaultConfig()
	cfg.Timing = dram.DDR2_800()
	cfg.Timing.TREFI = 0
	cfg.Geometry = addrmap.Geometry{
		Channels: 1, Ranks: 1, Banks: 4, Rows: 64, ColumnLines: 32, LineBytes: 64,
	}
	cfg.PoolSize = 8
	cfg.MaxWrites = 4
	ctrl, err := memctrl.New(cfg, core.Burst())
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

func newFSB(t *testing.T, cfg Config, ctrl *memctrl.Controller) *FSB {
	t.Helper()
	f, err := New(cfg, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.DataCycles = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero data cycles accepted")
	}
	bad = DefaultConfig()
	bad.QueueDepth = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero queue depth accepted")
	}
}

// TestReadRoundTrip: a read traverses request flight, DRAM service and
// response flight, and the latency includes both flight times.
func TestReadRoundTrip(t *testing.T) {
	ctrl := testController(t)
	cfg := DefaultConfig()
	f := newFSB(t, cfg, ctrl)
	doneAt := uint64(0)
	var cyc uint64
	ctrl.Tick(0)
	f.Tick(0)
	if !f.ReadLine(0, func() { doneAt = cyc }) {
		t.Fatal("read refused")
	}
	for cyc = 1; cyc < 200 && doneAt == 0; cyc++ {
		ctrl.Tick(cyc)
		f.Tick(cyc)
	}
	if doneAt == 0 {
		t.Fatal("read never completed")
	}
	// Idle round trip: req flight + row empty service + resp flight.
	tm := ctrl.Config().Timing
	minLatency := uint64(cfg.ReqLatency + tm.TRCD + tm.TCL + tm.DataCycles() + cfg.RespLatency)
	if doneAt < minLatency {
		t.Fatalf("completed at %d, faster than physical minimum %d", doneAt, minLatency)
	}
}

// TestWriteFireAndForget: writebacks need no callback and drain.
func TestWriteFireAndForget(t *testing.T) {
	ctrl := testController(t)
	f := newFSB(t, DefaultConfig(), ctrl)
	ctrl.Tick(0)
	f.Tick(0)
	if !f.WriteLine(64) {
		t.Fatal("write refused")
	}
	for cyc := uint64(1); cyc < 300; cyc++ {
		ctrl.Tick(cyc)
		f.Tick(cyc)
		if ctrl.Drained() && !f.Busy() {
			return
		}
	}
	t.Fatal("write never drained")
}

// TestQueueDepthBound: the FSB refuses past QueueDepth.
func TestQueueDepthBound(t *testing.T) {
	ctrl := testController(t)
	cfg := DefaultConfig()
	cfg.QueueDepth = 2
	f := newFSB(t, cfg, ctrl)
	if !f.ReadLine(0, func() {}) || !f.ReadLine(64, func() {}) {
		t.Fatal("reads refused early")
	}
	if f.ReadLine(128, func() {}) {
		t.Fatal("third read accepted beyond depth 2")
	}
	if f.Stats.Rejected != 1 {
		t.Fatalf("rejected = %d", f.Stats.Rejected)
	}
}

// TestPoolBackpressure: when the controller write pool is full, writes
// queue in the FSB and drain only as the pool frees.
func TestPoolBackpressure(t *testing.T) {
	ctrl := testController(t) // MaxWrites 4
	f := newFSB(t, DefaultConfig(), ctrl)
	ctrl.Tick(0)
	f.Tick(0)
	// All writes hit one bank on different rows: each drains through a
	// full precharge/activate/write sequence, keeping the pool full.
	for i := 0; i < 8; i++ {
		if !f.WriteLine(uint64(i) << 13) {
			t.Fatalf("write %d refused by FSB", i)
		}
	}
	// Writes arrive every 4 cycles (request occupancy) but each needs a
	// ~23-cycle conflict service in the single bank, so the pool fills
	// and the FSB head stalls.
	for cyc := uint64(1); cyc < 60; cyc++ {
		ctrl.Tick(cyc)
		f.Tick(cyc)
		if ctrl.OutstandingWrites() > 4 {
			t.Fatalf("pool overfilled: %d writes", ctrl.OutstandingWrites())
		}
	}
	if f.Stats.PoolStalled == 0 {
		t.Fatal("pool stall never recorded")
	}
	for cyc := uint64(60); cyc < 2000; cyc++ {
		ctrl.Tick(cyc)
		f.Tick(cyc)
		if ctrl.Drained() && !f.Busy() {
			return
		}
	}
	t.Fatal("writes never fully drained")
}

// TestRequestBusOccupancy: writes occupy the request path longer than
// reads, spacing out readyAt times.
func TestRequestBusOccupancy(t *testing.T) {
	ctrl := testController(t)
	cfg := DefaultConfig()
	f := newFSB(t, cfg, ctrl)
	ctrl.Tick(0)
	f.Tick(0)
	f.WriteLine(0)
	f.WriteLine(4096)
	if got := f.Stats.ReqBusyCycles; got != uint64(2*cfg.DataCycles) {
		t.Fatalf("request bus busy %d, want %d", got, 2*cfg.DataCycles)
	}
	f2 := newFSB(t, cfg, ctrl)
	f2.ReadLine(0, func() {})
	f2.ReadLine(64, func() {})
	if got := f2.Stats.ReqBusyCycles; got != 2 {
		t.Fatalf("read request occupancy %d, want 2", got)
	}
}
