// Package bus models the front-side bus of the baseline machine (paper
// Table 3): 64-bit, 800 MHz DDR, connecting the L2 cache to the memory
// controller. It adapts the cache hierarchy's Backend interface onto
// memctrl.Controller, crossing from the CPU clock domain into the memory
// clock domain.
//
// The model charges a fixed flight latency each way plus bus occupancy:
// a read request occupies one address-bus slot, while transfers that carry
// a 64-byte line (write requests, read responses) occupy the data path for
// DataCycles memory cycles (4 at PC2-6400 rates, matching the DRAM data
// bus bandwidth). Controller pool rejections hold requests at the head of
// the FSB queue, propagating back-pressure up the hierarchy.
package bus

import (
	"fmt"

	"burstmem/internal/deque"
	"burstmem/internal/memctrl"
	"burstmem/internal/u64map"
)

// Config describes the FSB.
type Config struct {
	// ReqLatency and RespLatency are flight times in memory cycles.
	ReqLatency  int
	RespLatency int
	// DataCycles is the occupancy of one cache-line transfer.
	DataCycles int
	// QueueDepth bounds requests accepted from the L2 but not yet handed
	// to the controller.
	QueueDepth int
}

// DefaultConfig returns an 800 MHz DDR 64-bit FSB: 64 B / (16 B per memory
// cycle) = 4 cycles of occupancy, 2 cycles of flight each way.
func DefaultConfig() Config {
	return Config{ReqLatency: 2, RespLatency: 2, DataCycles: 4, QueueDepth: 32}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.ReqLatency < 0 || c.RespLatency < 0 {
		return fmt.Errorf("bus: negative latency")
	}
	if c.DataCycles < 1 {
		return fmt.Errorf("bus: DataCycles must be >= 1, got %d", c.DataCycles)
	}
	if c.QueueDepth < 1 {
		return fmt.Errorf("bus: QueueDepth must be >= 1, got %d", c.QueueDepth)
	}
	return nil
}

// Stats counts FSB activity.
type Stats struct {
	Reads         uint64
	Writes        uint64
	Rejected      uint64 // requests refused at the L2 interface (queue full)
	PoolStalled   uint64 // cycles the head request waited for controller pool space
	ReqBusyCycles uint64
}

type request struct {
	kind    memctrl.Kind
	addr    uint64
	readyAt uint64 // flight time elapsed
	done    func()
}

type response struct {
	at   uint64
	done func()
}

// FSB is the front-side bus instance. It implements cache.Backend.
type FSB struct {
	cfg  Config
	ctrl *memctrl.Controller

	reqQ  deque.Deque[request]
	respQ deque.Deque[response]

	// inflight maps a submitted read's access ID to its upstream response
	// callback; completeFn is the single controller completion callback
	// shared by every submission, so the submit path allocates nothing.
	inflight   *u64map.Map[func()]
	completeFn func(*memctrl.Access, uint64)

	memNow      uint64
	nextReqFree uint64
	poolBlocked bool // last Tick left the head request stalled on pool space

	Stats Stats
}

// New builds an FSB in front of a controller.
func New(cfg Config, ctrl *memctrl.Controller) (*FSB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &FSB{cfg: cfg, ctrl: ctrl, inflight: u64map.New[func()](cfg.QueueDepth)}
	f.completeFn = f.complete
	// QueueDepth bounds the request queue and (with the controller pool)
	// the responses in flight; prewarming both rings keeps the steady-state
	// loop allocation-free from the first cycle.
	f.reqQ.Reserve(cfg.QueueDepth)
	f.respQ.Reserve(cfg.QueueDepth)
	return f, nil
}

// complete is the controller's completion callback for reads submitted by
// this FSB. Completion times from the controller are nondecreasing within
// a run, so the response queue stays sorted.
func (f *FSB) complete(a *memctrl.Access, at uint64) {
	done, ok := f.inflight.Get(a.ID)
	if !ok {
		return
	}
	f.inflight.Delete(a.ID)
	f.respQ.PushBack(response{at: at + uint64(f.cfg.RespLatency), done: done})
}

// ReadLine implements cache.Backend: an L2 miss requesting a line from
// main memory.
func (f *FSB) ReadLine(addr uint64, done func()) bool {
	return f.enqueue(memctrl.KindRead, addr, done)
}

// WriteLine implements cache.Backend: an L2 dirty writeback.
func (f *FSB) WriteLine(addr uint64) bool {
	return f.enqueue(memctrl.KindWrite, addr, nil)
}

func (f *FSB) enqueue(kind memctrl.Kind, addr uint64, done func()) bool {
	if f.reqQ.Len() >= f.cfg.QueueDepth {
		f.Stats.Rejected++
		return false
	}
	occupancy := uint64(1)
	if kind == memctrl.KindWrite {
		occupancy = uint64(f.cfg.DataCycles) // writes carry the line
	}
	start := f.memNow
	if start < f.nextReqFree {
		start = f.nextReqFree
	}
	f.nextReqFree = start + occupancy
	f.Stats.ReqBusyCycles += occupancy
	f.reqQ.PushBack(request{
		kind:    kind,
		addr:    addr,
		readyAt: start + uint64(f.cfg.ReqLatency),
		done:    done,
	})
	if kind == memctrl.KindRead {
		f.Stats.Reads++
	} else {
		f.Stats.Writes++
	}
	return true
}

// Tick advances the FSB to the given memory cycle: deliver responses, then
// hand arrived requests to the controller (in order; a pool rejection
// blocks the head).
func (f *FSB) Tick(memNow uint64) {
	f.memNow = memNow
	f.poolBlocked = false
	for f.respQ.Len() > 0 && f.respQ.Front().at <= memNow {
		done := f.respQ.PopFront().done
		if done != nil {
			done()
		}
	}
	for f.reqQ.Len() > 0 && f.reqQ.Front().readyAt <= memNow {
		r := f.reqQ.Front()
		if !f.ctrl.CanAccept(r.kind) {
			f.Stats.PoolStalled++
			f.poolBlocked = true
			return
		}
		var onComplete func(*memctrl.Access, uint64)
		if r.done != nil {
			onComplete = f.completeFn
		}
		a, ok := f.ctrl.Submit(r.kind, r.addr, onComplete)
		if !ok {
			f.Stats.PoolStalled++
			f.poolBlocked = true
			return
		}
		if r.done != nil {
			f.inflight.Put(a.ID, r.done)
		}
		f.reqQ.PopFront()
	}
}

// NoEvent mirrors memctrl.NoEvent: no internally scheduled FSB event.
const NoEvent = ^uint64(0)

// NextEventCycle returns the earliest future memory cycle at which the FSB
// will act on its own (deliver a response or hand over a newly arrived
// request), or NoEvent. A pool-blocked head request contributes no event:
// it unblocks only on a controller completion, which the controller's own
// event hint covers. Anything already due but not yet processed this cycle
// (possible only in zero-latency configurations) forces now+1.
func (f *FSB) NextEventCycle(now uint64) uint64 {
	next := NoEvent
	if f.respQ.Len() > 0 {
		if at := f.respQ.Front().at; at <= now {
			return now + 1
		} else {
			next = at
		}
	}
	if f.reqQ.Len() > 0 {
		if at := f.reqQ.Front().readyAt; at <= now {
			if !f.poolBlocked {
				return now + 1
			}
		} else if at < next {
			next = at
		}
	}
	return next
}

// AccountSkipped folds k skipped idle memory cycles into the statistics:
// the only counter a no-op Tick would have bumped is the pool-stall count
// for a head request held back by controller pool exhaustion (pool
// occupancy cannot change during a skip, so each skipped cycle would have
// re-tried and re-counted the stall).
func (f *FSB) AccountSkipped(k uint64) {
	if f.poolBlocked {
		f.Stats.PoolStalled += k
	}
	f.memNow += k
}

// Busy reports in-flight FSB work.
func (f *FSB) Busy() bool { return f.reqQ.Len() > 0 || f.respQ.Len() > 0 }

// ResetStats zeroes the statistics counters.
func (f *FSB) ResetStats() { f.Stats = Stats{} }
