// Package addrmap implements SDRAM address mapping: the translation of flat
// physical addresses into DRAM coordinates (channel, rank, bank, row,
// column).
//
// The mapping determines how much row locality and bank parallelism a given
// access stream exposes to the memory controller, so the paper's baseline
// (page interleaving, Table 3) and several alternatives from its related
// work (cache-line interleaving, bit reversal [Shao & Davis, SCOPES'05],
// permutation-based interleaving [Zhang et al., MICRO'00]) are provided.
//
// All mappers are exact bijections between the physical address space and
// the coordinate space; Encode is the inverse of Decode.
package addrmap

import "fmt"

// Loc is a fully decoded DRAM coordinate. Col is in units of cache lines
// (one column access transfers one line).
type Loc struct {
	Channel uint8
	Rank    uint8
	Bank    uint8
	Row     uint32
	Col     uint32
}

// String renders the coordinate for debugging and traces.
func (l Loc) String() string {
	return fmt.Sprintf("ch%d/rk%d/bk%d/row%d/col%d", l.Channel, l.Rank, l.Bank, l.Row, l.Col)
}

// Geometry describes the memory organization. The paper's baseline (Table 3)
// is 4 GB DDR2: 2 channels x 4 ranks x 4 banks, 8 KB rows, 64 B lines.
type Geometry struct {
	Channels    int // independent channels with private busses
	Ranks       int // ranks per channel
	Banks       int // banks per rank
	Rows        int // rows per bank
	ColumnLines int // cache lines per row
	LineBytes   int // bytes per cache line / column access
}

// DefaultGeometry returns the paper's Table 3 organization: 4 GB total,
// 2 channels, 4 ranks/channel, 4 banks/rank (32 banks), 8 KB rows, 64 B
// lines => 16384 rows per bank.
func DefaultGeometry() Geometry {
	return Geometry{
		Channels:    2,
		Ranks:       4,
		Banks:       4,
		Rows:        16384,
		ColumnLines: 128,
		LineBytes:   64,
	}
}

// TotalBytes returns the capacity described by the geometry.
func (g Geometry) TotalBytes() uint64 {
	return uint64(g.Channels) * uint64(g.Ranks) * uint64(g.Banks) *
		uint64(g.Rows) * uint64(g.ColumnLines) * uint64(g.LineBytes)
}

// TotalBanks returns the number of independently schedulable banks.
func (g Geometry) TotalBanks() int { return g.Channels * g.Ranks * g.Banks }

// RowBytes returns the size of one DRAM row (page).
func (g Geometry) RowBytes() int { return g.ColumnLines * g.LineBytes }

// Validate reports an error when any field is not a positive power of two.
func (g Geometry) Validate() error {
	check := func(name string, v int) error {
		if v <= 0 || v&(v-1) != 0 {
			return fmt.Errorf("addrmap: %s must be a positive power of two, got %d", name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"Channels", g.Channels}, {"Ranks", g.Ranks}, {"Banks", g.Banks},
		{"Rows", g.Rows}, {"ColumnLines", g.ColumnLines}, {"LineBytes", g.LineBytes},
	} {
		if err := check(f.name, f.v); err != nil {
			return err
		}
	}
	return nil
}

// Mapper translates between physical addresses and DRAM coordinates.
type Mapper interface {
	Name() string
	Geometry() Geometry
	// Decode maps a physical byte address to its DRAM coordinate. The
	// low line-offset bits are ignored.
	Decode(addr uint64) Loc
	// Encode is the exact inverse of Decode (line-aligned).
	Encode(loc Loc) uint64
}

func log2(v int) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// bits extracts width bits of addr starting at offset.
func bits(addr uint64, offset, width uint) uint64 {
	return (addr >> offset) & ((1 << width) - 1)
}

// fieldWidths caches the per-field bit widths of a geometry.
type fieldWidths struct {
	off, col, ch, bank, rank, row uint
	g                             Geometry
}

func widthsOf(g Geometry) fieldWidths {
	return fieldWidths{
		off:  log2(g.LineBytes),
		col:  log2(g.ColumnLines),
		ch:   log2(g.Channels),
		bank: log2(g.Banks),
		rank: log2(g.Ranks),
		row:  log2(g.Rows),
		g:    g,
	}
}

// PageInterleave is the paper's baseline mapping (Table 3). Bit layout, low
// to high: [line offset][column][channel][bank][rank][row]. Consecutive
// addresses stay within one DRAM row (maximizing open-page hits for
// sequential streams) and consecutive rows spread over channels, banks and
// ranks.
type PageInterleave struct{ w fieldWidths }

// NewPageInterleave builds the baseline mapper for the given geometry.
func NewPageInterleave(g Geometry) *PageInterleave {
	return &PageInterleave{w: widthsOf(g)}
}

// Name implements Mapper.
func (m *PageInterleave) Name() string { return "page-interleave" }

// Geometry implements Mapper.
func (m *PageInterleave) Geometry() Geometry { return m.w.g }

// Decode implements Mapper.
func (m *PageInterleave) Decode(addr uint64) Loc {
	w := m.w
	p := w.off
	col := bits(addr, p, w.col)
	p += w.col
	ch := bits(addr, p, w.ch)
	p += w.ch
	bank := bits(addr, p, w.bank)
	p += w.bank
	rank := bits(addr, p, w.rank)
	p += w.rank
	row := bits(addr, p, w.row)
	return Loc{Channel: uint8(ch), Rank: uint8(rank), Bank: uint8(bank), Row: uint32(row), Col: uint32(col)}
}

// Encode implements Mapper.
func (m *PageInterleave) Encode(l Loc) uint64 {
	w := m.w
	addr := uint64(l.Col)
	p := w.col
	addr |= uint64(l.Channel) << p
	p += w.ch
	addr |= uint64(l.Bank) << p
	p += w.bank
	addr |= uint64(l.Rank) << p
	p += w.rank
	addr |= uint64(l.Row) << p
	return addr << w.off
}

// LineInterleave spreads consecutive cache lines across channels and banks:
// [line offset][channel][bank][rank][column][row]. It maximizes bank
// parallelism for streams at the cost of row locality.
type LineInterleave struct{ w fieldWidths }

// NewLineInterleave builds a cache-line-interleaved mapper.
func NewLineInterleave(g Geometry) *LineInterleave {
	return &LineInterleave{w: widthsOf(g)}
}

// Name implements Mapper.
func (m *LineInterleave) Name() string { return "line-interleave" }

// Geometry implements Mapper.
func (m *LineInterleave) Geometry() Geometry { return m.w.g }

// Decode implements Mapper.
func (m *LineInterleave) Decode(addr uint64) Loc {
	w := m.w
	p := w.off
	ch := bits(addr, p, w.ch)
	p += w.ch
	bank := bits(addr, p, w.bank)
	p += w.bank
	rank := bits(addr, p, w.rank)
	p += w.rank
	col := bits(addr, p, w.col)
	p += w.col
	row := bits(addr, p, w.row)
	return Loc{Channel: uint8(ch), Rank: uint8(rank), Bank: uint8(bank), Row: uint32(row), Col: uint32(col)}
}

// Encode implements Mapper.
func (m *LineInterleave) Encode(l Loc) uint64 {
	w := m.w
	addr := uint64(l.Channel)
	p := w.ch
	addr |= uint64(l.Bank) << p
	p += w.bank
	addr |= uint64(l.Rank) << p
	p += w.rank
	addr |= uint64(l.Col) << p
	p += w.col
	addr |= uint64(l.Row) << p
	return addr << w.off
}

// BitReversal implements the bit-reversal mapping of Shao & Davis
// (SCOPES'05): the bits above the column field are reversed before the
// page-interleave field split, so addresses that differ in high-order bits
// (distinct data structures) land in different banks while sequential pages
// also rotate through banks.
type BitReversal struct {
	w     fieldWidths
	upper uint // number of bits above the column field that get reversed
}

// NewBitReversal builds a bit-reversal mapper.
func NewBitReversal(g Geometry) *BitReversal {
	w := widthsOf(g)
	return &BitReversal{w: w, upper: w.ch + w.bank + w.rank + w.row}
}

// Name implements Mapper.
func (m *BitReversal) Name() string { return "bit-reversal" }

// Geometry implements Mapper.
func (m *BitReversal) Geometry() Geometry { return m.w.g }

func reverseBits(v uint64, width uint) uint64 {
	var r uint64
	for i := uint(0); i < width; i++ {
		r = r<<1 | (v>>i)&1
	}
	return r
}

// Decode implements Mapper.
func (m *BitReversal) Decode(addr uint64) Loc {
	w := m.w
	col := bits(addr, w.off, w.col)
	hi := reverseBits(bits(addr, w.off+w.col, m.upper), m.upper)
	p := uint(0)
	ch := bits(hi, p, w.ch)
	p += w.ch
	bank := bits(hi, p, w.bank)
	p += w.bank
	rank := bits(hi, p, w.rank)
	p += w.rank
	row := bits(hi, p, w.row)
	return Loc{Channel: uint8(ch), Rank: uint8(rank), Bank: uint8(bank), Row: uint32(row), Col: uint32(col)}
}

// Encode implements Mapper.
func (m *BitReversal) Encode(l Loc) uint64 {
	w := m.w
	hi := uint64(l.Channel)
	p := w.ch
	hi |= uint64(l.Bank) << p
	p += w.bank
	hi |= uint64(l.Rank) << p
	p += w.rank
	hi |= uint64(l.Row) << p
	addr := reverseBits(hi, m.upper)<<w.col | uint64(l.Col)
	return addr << w.off
}

// Permutation implements the permutation-based page interleaving of Zhang,
// Zhu & Zhang (MICRO'00): the bank index of the page-interleave layout is
// XORed with the low bits of the row index, so rows that would conflict in
// one bank are spread across banks while row locality is preserved.
type Permutation struct{ w fieldWidths }

// NewPermutation builds a permutation-based mapper.
func NewPermutation(g Geometry) *Permutation {
	return &Permutation{w: widthsOf(g)}
}

// Name implements Mapper.
func (m *Permutation) Name() string { return "permutation" }

// Geometry implements Mapper.
func (m *Permutation) Geometry() Geometry { return m.w.g }

// Decode implements Mapper.
func (m *Permutation) Decode(addr uint64) Loc {
	base := NewPageInterleave(m.w.g).Decode(addr)
	mask := uint32(m.w.g.Banks - 1)
	base.Bank = uint8(uint32(base.Bank) ^ (base.Row & mask))
	return base
}

// Encode implements Mapper.
func (m *Permutation) Encode(l Loc) uint64 {
	mask := uint32(m.w.g.Banks - 1)
	l.Bank = uint8(uint32(l.Bank) ^ (l.Row & mask))
	return NewPageInterleave(m.w.g).Encode(l)
}

// ByName returns the named mapper for a geometry. Valid names:
// page-interleave, line-interleave, bit-reversal, permutation.
func ByName(name string, g Geometry) (Mapper, error) {
	switch name {
	case "page-interleave", "page", "":
		return NewPageInterleave(g), nil
	case "line-interleave", "line":
		return NewLineInterleave(g), nil
	case "bit-reversal", "bitrev":
		return NewBitReversal(g), nil
	case "permutation", "perm":
		return NewPermutation(g), nil
	}
	return nil, fmt.Errorf("addrmap: unknown mapping %q", name)
}

// Names lists the available mapping names.
func Names() []string {
	return []string{"page-interleave", "line-interleave", "bit-reversal", "permutation"}
}
