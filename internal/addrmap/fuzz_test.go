package addrmap

import "testing"

// fuzzGeometries are the organizations the fuzzer decodes against: the
// paper's Table 3 baseline plus a skewed shape (single channel, wide rank and
// bank fields, short rows) so field-boundary bugs that cancel out in the
// symmetric default still surface.
func fuzzGeometries() []Geometry {
	return []Geometry{
		DefaultGeometry(),
		{Channels: 1, Ranks: 8, Banks: 8, Rows: 512, ColumnLines: 32, LineBytes: 64},
	}
}

// FuzzMapperRoundTrip checks, for every mapper and geometry, that Decode is
// inverted exactly by Encode (at line granularity), that decoded coordinates
// stay inside the geometry, and that the mapping is injective: two addresses
// in distinct lines never decode to the same coordinate.
//
// Run with: go test -fuzz FuzzMapperRoundTrip ./internal/addrmap/
func FuzzMapperRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(64))
	f.Add(uint64(0xdeadbeef), uint64(0x1234567))
	f.Add(uint64(1)<<31, uint64(1)<<31+4096)
	f.Add(^uint64(0), uint64(0))
	f.Fuzz(func(t *testing.T, addrA, addrB uint64) {
		for _, g := range fuzzGeometries() {
			// Addresses beyond the capacity alias back into it; clamp so
			// Encode(Decode(a)) can be compared against a itself.
			a := addrA % g.TotalBytes()
			b := addrB % g.TotalBytes()
			lineMask := ^uint64(g.LineBytes - 1)
			for _, name := range Names() {
				m, err := ByName(name, g)
				if err != nil {
					t.Fatal(err)
				}
				la, lb := m.Decode(a), m.Decode(b)
				for _, dl := range []struct {
					addr uint64
					loc  Loc
				}{{a, la}, {b, lb}} {
					if int(dl.loc.Channel) >= g.Channels || int(dl.loc.Rank) >= g.Ranks ||
						int(dl.loc.Bank) >= g.Banks || int(dl.loc.Row) >= g.Rows ||
						int(dl.loc.Col) >= g.ColumnLines {
						t.Fatalf("%s/%+v: Decode(%#x) = %s outside geometry", name, g, dl.addr, dl.loc)
					}
					if back := m.Encode(dl.loc); back != dl.addr&lineMask {
						t.Fatalf("%s/%+v: Encode(Decode(%#x)) = %#x, want %#x",
							name, g, dl.addr, back, dl.addr&lineMask)
					}
				}
				if a&lineMask != b&lineMask && la == lb {
					t.Fatalf("%s/%+v: injectivity broken: %#x and %#x both decode to %s",
						name, g, a, b, la)
				}
			}
		}
	})
}
