package addrmap

import (
	"testing"
	"testing/quick"
)

func TestDefaultGeometry(t *testing.T) {
	g := DefaultGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := g.TotalBytes(), uint64(4)<<30; got != want {
		t.Fatalf("capacity = %d, want 4 GB (Table 3)", got)
	}
	if got := g.TotalBanks(); got != 32 {
		t.Fatalf("banks = %d, want 32 (Table 3: 2/4/4)", got)
	}
	if got := g.RowBytes(); got != 8192 {
		t.Fatalf("row = %d bytes, want 8 KB", got)
	}
}

func TestGeometryValidate(t *testing.T) {
	g := DefaultGeometry()
	g.Banks = 3
	if err := g.Validate(); err == nil {
		t.Fatal("non-power-of-two banks accepted")
	}
	g = DefaultGeometry()
	g.Channels = 0
	if err := g.Validate(); err == nil {
		t.Fatal("zero channels accepted")
	}
}

func allMappers(g Geometry) []Mapper {
	return []Mapper{
		NewPageInterleave(g),
		NewLineInterleave(g),
		NewBitReversal(g),
		NewPermutation(g),
	}
}

// TestRoundTrip checks Encode(Decode(a)) == a (line aligned) for every
// mapper, by property-based testing over random addresses.
func TestRoundTrip(t *testing.T) {
	g := DefaultGeometry()
	mask := g.TotalBytes() - 1
	lineMask := ^uint64(g.LineBytes - 1)
	for _, m := range allMappers(g) {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			f := func(raw uint64) bool {
				addr := raw & mask & lineMask
				return m.Encode(m.Decode(addr)) == addr
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDecodeInRange checks decoded coordinates stay inside the geometry.
func TestDecodeInRange(t *testing.T) {
	g := DefaultGeometry()
	mask := g.TotalBytes() - 1
	for _, m := range allMappers(g) {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			f := func(raw uint64) bool {
				l := m.Decode(raw & mask)
				return int(l.Channel) < g.Channels &&
					int(l.Rank) < g.Ranks &&
					int(l.Bank) < g.Banks &&
					int(l.Row) < g.Rows &&
					int(l.Col) < g.ColumnLines
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBijection verifies distinct line addresses decode to distinct
// coordinates over a dense window (no aliasing).
func TestBijection(t *testing.T) {
	g := Geometry{Channels: 2, Ranks: 2, Banks: 4, Rows: 8, ColumnLines: 4, LineBytes: 64}
	for _, m := range allMappers(g) {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			seen := make(map[Loc]uint64)
			for a := uint64(0); a < g.TotalBytes(); a += uint64(g.LineBytes) {
				l := m.Decode(a)
				if prev, dup := seen[l]; dup {
					t.Fatalf("addresses %#x and %#x both map to %v", prev, a, l)
				}
				seen[l] = a
			}
		})
	}
}

// TestPageInterleaveLocality: consecutive lines stay in the same row until
// the row boundary, then move to another channel/bank (open-page friendly).
func TestPageInterleaveLocality(t *testing.T) {
	g := DefaultGeometry()
	m := NewPageInterleave(g)
	base := m.Decode(0)
	for i := 1; i < g.ColumnLines; i++ {
		l := m.Decode(uint64(i * g.LineBytes))
		if l.Row != base.Row || l.Bank != base.Bank || l.Rank != base.Rank || l.Channel != base.Channel {
			t.Fatalf("line %d left the row: %v vs %v", i, l, base)
		}
		if l.Col != uint32(i) {
			t.Fatalf("line %d col = %d", i, l.Col)
		}
	}
	next := m.Decode(uint64(g.RowBytes()))
	if next.Channel == base.Channel && next.Bank == base.Bank && next.Rank == base.Rank && next.Row == base.Row {
		t.Fatal("next page did not move to a different bank/channel")
	}
}

// TestLineInterleaveParallelism: consecutive lines alternate channels.
func TestLineInterleaveParallelism(t *testing.T) {
	g := DefaultGeometry()
	m := NewLineInterleave(g)
	a := m.Decode(0)
	b := m.Decode(uint64(g.LineBytes))
	if a.Channel == b.Channel {
		t.Fatal("consecutive lines did not alternate channels")
	}
}

// TestPermutationSpreadsConflicts: addresses that differ only in low row
// bits (same bank under page interleave) land in different banks.
func TestPermutationSpreadsConflicts(t *testing.T) {
	g := DefaultGeometry()
	pi := NewPageInterleave(g)
	pm := NewPermutation(g)
	loc := Loc{Channel: 0, Rank: 0, Bank: 0, Row: 0, Col: 0}
	a0 := pi.Encode(loc)
	loc.Row = 1
	a1 := pi.Encode(loc)
	if pi.Decode(a0).Bank != pi.Decode(a1).Bank {
		t.Fatal("setup: page interleave should map both rows to one bank")
	}
	if pm.Decode(a0).Bank == pm.Decode(a1).Bank {
		t.Fatal("permutation mapping did not spread conflicting rows")
	}
}

// TestBitReversalSpreadsHighBits: addresses differing only in the top bit
// (e.g. two large data structures) use different banks under bit reversal.
func TestBitReversalSpreadsHighBits(t *testing.T) {
	g := DefaultGeometry()
	br := NewBitReversal(g)
	half := g.TotalBytes() / 2
	a := br.Decode(0)
	b := br.Decode(half)
	if a.Channel == b.Channel && a.Rank == b.Rank && a.Bank == b.Bank {
		t.Fatalf("high-bit-separated addresses share a bank: %v vs %v", a, b)
	}
}

func TestByName(t *testing.T) {
	g := DefaultGeometry()
	for _, name := range Names() {
		m, err := ByName(name, g)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, m.Name())
		}
	}
	if m, err := ByName("", g); err != nil || m.Name() != "page-interleave" {
		t.Fatalf("empty name should default to page interleaving, got %v, %v", m, err)
	}
	if _, err := ByName("nope", g); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestLocString(t *testing.T) {
	l := Loc{Channel: 1, Rank: 2, Bank: 3, Row: 4, Col: 5}
	if got, want := l.String(), "ch1/rk2/bk3/row4/col5"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
