package sched

import (
	"testing"

	"burstmem/internal/addrmap"
	"burstmem/internal/dram"
	"burstmem/internal/mctest"
	"burstmem/internal/memctrl"
)

func noRefresh(t dram.Timing) dram.Timing {
	t.TREFI = 0
	return t
}

func cfg() memctrl.Config { return mctest.SmallConfig(noRefresh(dram.DDR2_800())) }

// TestBkInOrderStrictPerBank: accesses to one bank complete in arrival
// order even when reordering would help.
func TestBkInOrderStrictPerBank(t *testing.T) {
	r, err := mctest.NewRunner(cfg(), BkInOrder())
	if err != nil {
		t.Fatal(err)
	}
	// Interleaved rows: in-order makes every access a conflict.
	var accs []*memctrl.Access
	rows := []uint32{1, 2, 1, 2}
	for i, row := range rows {
		a, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: row, Col: uint32(i)})
		if err != nil {
			t.Fatal(err)
		}
		accs = append(accs, a)
	}
	if _, err := r.RunUntilDrained(10000); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(accs); i++ {
		if r.DoneAt[accs[i].ID] <= r.DoneAt[accs[i-1].ID] {
			t.Fatalf("access %d (done %d) overtook access %d (done %d)",
				i, r.DoneAt[accs[i].ID], i-1, r.DoneAt[accs[i-1].ID])
		}
	}
	// Accesses 2 and 3 must be row conflicts (no reordering).
	if accs[2].Outcome != dram.RowConflict || accs[3].Outcome != dram.RowConflict {
		t.Errorf("outcomes %v/%v, want conflicts under in-order scheduling",
			accs[2].Outcome, accs[3].Outcome)
	}
}

// TestBkInOrderBankParallelism: accesses to different banks overlap.
func TestBkInOrderBankParallelism(t *testing.T) {
	run := func(banks []int) uint64 {
		r, err := mctest.NewRunner(cfg(), BkInOrder())
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range banks {
			if _, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: uint8(b), Row: uint32(1 + i), Col: 0}); err != nil {
				t.Fatal(err)
			}
		}
		end, err := r.RunUntilDrained(10000)
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	sameBank := run([]int{0, 0, 0, 0})
	diffBank := run([]int{0, 1, 2, 3})
	if diffBank >= sameBank {
		t.Fatalf("bank-parallel run (%d cycles) not faster than single-bank run (%d cycles)",
			diffBank, sameBank)
	}
}

// TestRowHitFirst: RowHit reorders a younger same-row access ahead of an
// older conflicting access.
func TestRowHitFirst(t *testing.T) {
	r, err := mctest.NewRunner(cfg(), RowHit())
	if err != nil {
		t.Fatal(err)
	}
	// Open row 1.
	first, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 1, Col: 0})
	if err != nil {
		t.Fatal(err)
	}
	conflict, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 2, Col: 0})
	if err != nil {
		t.Fatal(err)
	}
	hit, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 1, Col: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunUntilDrained(10000); err != nil {
		t.Fatal(err)
	}
	if r.DoneAt[hit.ID] >= r.DoneAt[conflict.ID] {
		t.Fatalf("row-hit access (done %d) not reordered before conflict (done %d)",
			r.DoneAt[hit.ID], r.DoneAt[conflict.ID])
	}
	if hit.Outcome != dram.RowHit {
		t.Errorf("outcome %v, want row hit", hit.Outcome)
	}
	_ = first
}

// TestRowHitTreatsWritesEqually: a row-hit write is selected ahead of an
// older row-conflict read (reads get no special priority under RowHit).
func TestRowHitTreatsWritesEqually(t *testing.T) {
	r, err := mctest.NewRunner(cfg(), RowHit())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 1, Col: 0}); err != nil {
		t.Fatal(err)
	}
	rd, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 2, Col: 0})
	if err != nil {
		t.Fatal(err)
	}
	wr, err := r.SubmitLoc(memctrl.KindWrite, addrmap.Loc{Bank: 0, Row: 1, Col: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunUntilDrained(10000); err != nil {
		t.Fatal(err)
	}
	if r.DoneAt[wr.ID] >= r.DoneAt[rd.ID] {
		t.Fatalf("row-hit write (done %d) not selected before conflicting read (done %d)",
			r.DoneAt[wr.ID], r.DoneAt[rd.ID])
	}
}

// TestIntelPostponesWrites: writes wait while any reads are pending in the
// channel, even reads to other banks.
func TestIntelPostponesWrites(t *testing.T) {
	r, err := mctest.NewRunner(cfg(), Intel())
	if err != nil {
		t.Fatal(err)
	}
	wr, err := r.SubmitLoc(memctrl.KindWrite, addrmap.Loc{Bank: 0, Row: 1, Col: 0})
	if err != nil {
		t.Fatal(err)
	}
	var reads []*memctrl.Access
	for i := 0; i < 3; i++ {
		a, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: uint8(1 + i), Row: 2, Col: 0})
		if err != nil {
			t.Fatal(err)
		}
		reads = append(reads, a)
	}
	if _, err := r.RunUntilDrained(10000); err != nil {
		t.Fatal(err)
	}
	for i, rd := range reads {
		if r.DoneAt[rd.ID] >= r.DoneAt[wr.ID] {
			t.Fatalf("read %d (done %d) did not beat the older write (done %d)",
				i, r.DoneAt[rd.ID], r.DoneAt[wr.ID])
		}
	}
}

// TestIntelWriteQueueFullDrains: when the write queue saturates, writes run
// even with reads pending.
func TestIntelWriteQueueFullDrains(t *testing.T) {
	c := cfg()
	c.MaxWrites = 4
	r, err := mctest.NewRunner(c, Intel())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := r.SubmitLoc(memctrl.KindWrite, addrmap.Loc{Bank: 0, Row: uint32(1 + i), Col: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if !r.Ctrl.CanAccept(memctrl.KindRead) {
		t.Fatal("pool should still accept reads")
	}
	if r.Ctrl.CanAccept(memctrl.KindWrite) {
		t.Fatal("write queue should be saturated")
	}
	// A stream of reads to another bank; the full write queue must still
	// drain (not starve forever).
	for i := 0; i < 4; i++ {
		if _, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 1, Row: 2, Col: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.RunUntilDrained(20000); err != nil {
		t.Fatal(err)
	}
	if r.Ctrl.OutstandingWrites() != 0 {
		t.Fatal("writes not drained")
	}
}

// TestIntelRowHitReadSelection: Intel searches its read queues for row
// hits.
func TestIntelRowHitReadSelection(t *testing.T) {
	r, err := mctest.NewRunner(cfg(), Intel())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 1, Col: 0}); err != nil {
		t.Fatal(err)
	}
	conflict, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 2, Col: 0})
	if err != nil {
		t.Fatal(err)
	}
	hit, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 1, Col: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunUntilDrained(10000); err != nil {
		t.Fatal(err)
	}
	if r.DoneAt[hit.ID] >= r.DoneAt[conflict.ID] {
		t.Fatalf("Intel did not pick the row-hit read first (%d vs %d)",
			r.DoneAt[hit.ID], r.DoneAt[conflict.ID])
	}
}

// TestIntelRPPreempts: Intel_RP lets a read interrupt an ongoing write;
// plain Intel does not.
func TestIntelRPPreempts(t *testing.T) {
	run := func(factory memctrl.Factory) (readDone, writeDone uint64) {
		r, err := mctest.NewRunner(cfg(), factory)
		if err != nil {
			t.Fatal(err)
		}
		wr, err := r.SubmitLoc(memctrl.KindWrite, addrmap.Loc{Bank: 0, Row: 1, Col: 0})
		if err != nil {
			t.Fatal(err)
		}
		r.Step(3) // write becomes ongoing, activate in flight
		rd, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 2, Col: 0})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.RunUntilDrained(10000); err != nil {
			t.Fatal(err)
		}
		return r.DoneAt[rd.ID], r.DoneAt[wr.ID]
	}
	rpRead, rpWrite := run(IntelRP())
	if rpRead >= rpWrite {
		t.Fatalf("Intel_RP: read (done %d) did not preempt the write (done %d)", rpRead, rpWrite)
	}
	plainRead, _ := run(Intel())
	if rpRead >= plainRead {
		t.Fatalf("preemption did not reduce read latency (%d vs %d)", rpRead, plainRead)
	}
}

// TestNames checks Table 4 naming.
func TestNames(t *testing.T) {
	for _, tc := range []struct {
		f    memctrl.Factory
		want string
	}{
		{BkInOrder(), "BkInOrder"},
		{RowHit(), "RowHit"},
		{Intel(), "Intel"},
		{IntelRP(), "Intel_RP"},
	} {
		r, err := mctest.NewRunner(cfg(), tc.f)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.Ctrl.MechanismName(); got != tc.want {
			t.Errorf("name = %q, want %q", got, tc.want)
		}
	}
}

// TestAllMechanismsDrainRandomStream is a cross-mechanism soak test: a
// deterministic random mix of reads and writes must drain completely with
// every access completing exactly once, for every mechanism.
func TestAllMechanismsDrainRandomStream(t *testing.T) {
	factories := map[string]memctrl.Factory{
		"BkInOrder": BkInOrder(),
		"RowHit":    RowHit(),
		"Intel":     Intel(),
		"Intel_RP":  IntelRP(),
	}
	for name, f := range factories {
		f := f
		t.Run(name, func(t *testing.T) {
			c := cfg()
			c.Timing = dram.DDR2_800() // refresh enabled: soak the refresh engine too
			r, err := mctest.NewRunner(c, f)
			if err != nil {
				t.Fatal(err)
			}
			rng := mctest.NewRNG(42)
			submitted := 0
			for i := 0; i < 3000; i++ {
				r.Step(1)
				if rng.Intn(3) != 0 {
					continue
				}
				kind := memctrl.KindRead
				if rng.Intn(4) == 0 {
					kind = memctrl.KindWrite
				}
				loc := addrmap.Loc{
					Bank: uint8(rng.Intn(4)),
					Row:  uint32(rng.Intn(8)),
					Col:  uint32(rng.Intn(32)),
				}
				if !r.Ctrl.CanAccept(kind) {
					continue
				}
				if _, err := r.SubmitLoc(kind, loc); err != nil {
					t.Fatal(err)
				}
				submitted++
			}
			if _, err := r.RunUntilDrained(200000); err != nil {
				t.Fatal(err)
			}
			if len(r.Completed) != submitted {
				t.Fatalf("completed %d of %d accesses", len(r.Completed), submitted)
			}
			seen := map[uint64]bool{}
			for _, a := range r.Completed {
				if seen[a.ID] {
					t.Fatalf("access %d completed twice", a.ID)
				}
				seen[a.ID] = true
			}
		})
	}
}
