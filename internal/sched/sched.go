// Package sched implements the access scheduling mechanisms the paper
// compares burst scheduling against (Table 4):
//
//   - BkInOrder: conventional bank in-order scheduling — accesses within a
//     bank issue in arrival order, banks are served round robin.
//   - RowHit: the row-hit-first policy of Rixner et al. (ISCA'00) — a
//     unified queue per bank, oldest same-row access first, column
//     transactions preferred on the busses. Reads and writes are treated
//     equally.
//   - Intel: Intel's patented out-of-order scheduling (US 7,127,574) —
//     per-bank read queues and a single write queue, reads prioritized
//     over writes, and a started access runs to completion at highest
//     priority to limit the reordering degree.
//   - Intel_RP: Intel scheduling plus read preemption (not in the patent;
//     added by the paper for comparison).
//
// RowHit and Intel are "best effort" row-hit groupers: unlike burst
// scheduling's Table 2 transaction priority, neither accounts for DDR2
// rank-to-rank turnaround when picking among ready columns, so bubble
// cycles appear on the data bus (paper Section 4.2).
//
// Queues are intrusive per-bank lists (memctrl.BankQueues) with
// nonempty-bank bitmaps, so the steady-state arbitration path performs no
// allocation and no full rank×bank scans.
package sched

import (
	"math/bits"

	"burstmem/internal/memctrl"
	"burstmem/internal/trace"
)

// BkInOrder returns the conventional in-order baseline factory: accesses
// within a bank issue strictly in arrival order, banks take round-robin
// turns on the command bus, and transactions of different banks' accesses
// pipeline (precharges and activates overlap other banks' data transfers).
func BkInOrder() memctrl.Factory {
	return func(h *memctrl.Host) memctrl.Mechanism { return newBankInOrder(h, true) }
}

// InOrder returns the fully serial scheduler of paper Figure 1(a): one
// access at a time, no transaction interleaving at all. It is not part of
// the paper's Table 4 comparison (BkInOrder is the baseline there) but
// quantifies how much of the baseline's performance comes from bank
// pipelining alone — see the ablation benchmarks.
func InOrder() memctrl.Factory {
	return func(h *memctrl.Host) memctrl.Mechanism { return newBankInOrder(h, false) }
}

// RowHit returns the row-hit-first mechanism factory.
func RowHit() memctrl.Factory {
	return func(h *memctrl.Host) memctrl.Mechanism { return newRowHit(h) }
}

// Intel returns the patent mechanism factory.
func Intel() memctrl.Factory {
	return func(h *memctrl.Host) memctrl.Mechanism { return newIntel(h, false) }
}

// IntelRP returns the patent mechanism with read preemption.
func IntelRP() memctrl.Factory {
	return func(h *memctrl.Host) memctrl.Mechanism { return newIntel(h, true) }
}

// bankInOrder: per-bank FIFO over reads and writes together; banks are
// served round robin. With pipelining (the Table 4 BkInOrder baseline),
// every bank may have an access in flight and their transactions
// interleave round robin; without it (the Figure 1(a) InOrder reference),
// a single access is serviced at a time with no overlap beyond the
// precharge/activate of the next access starting under the current data
// tail.
//
//burstmem:chanlocal
type bankInOrder struct {
	host      *memctrl.Host
	engine    *memctrl.Engine
	queues    *memctrl.BankQueues
	ranks     int
	banks     int
	pipelined bool
	rr        *roundRobin
	rrNext    int // flattened bank index after the last served bank (serial mode)

	current                     *memctrl.Access // serial mode: the single in-service access
	curRank                     int
	curBank                     int
	pendingReads, pendingWrites int
}

func newBankInOrder(h *memctrl.Host, pipelined bool) *bankInOrder {
	s := &bankInOrder{host: h, pipelined: pipelined}
	s.engine = memctrl.NewEngine(h, s.onColumn)
	ch := h.Channel()
	s.ranks, s.banks = ch.Ranks(), ch.Banks()
	s.queues = memctrl.NewBankQueues(s.ranks, s.banks)
	s.rr = newRoundRobin(ch.Ranks(), ch.Banks())
	return s
}

// Name implements memctrl.Mechanism.
func (s *bankInOrder) Name() string {
	if s.pipelined {
		return "BkInOrder"
	}
	return "InOrder"
}

// ForwardsWrites implements memctrl.Mechanism: strictly in-order per bank,
// no bypassing, so no forwarding.
func (s *bankInOrder) ForwardsWrites() bool { return false }

// Pending implements memctrl.Mechanism.
func (s *bankInOrder) Pending() (int, int) { return s.pendingReads, s.pendingWrites }

// Enqueue implements memctrl.Mechanism.
func (s *bankInOrder) Enqueue(a *memctrl.Access, now uint64) {
	s.queues.PushBack(a)
	if a.Kind == memctrl.KindRead {
		s.pendingReads++
	} else {
		s.pendingWrites++
	}
}

//burstmem:hotpath
func (s *bankInOrder) onColumn(a *memctrl.Access, now uint64) {
	if a.Kind == memctrl.KindRead {
		s.pendingReads--
	} else {
		s.pendingWrites--
	}
	s.current = nil
}

// Tick implements memctrl.Mechanism.
//
//burstmem:hotpath
func (s *bankInOrder) Tick(now uint64) {
	ch := s.host.Channel()
	if s.pipelined {
		for r := 0; r < s.ranks; r++ {
			// Banks with queued work and a free ongoing slot.
			for m := s.queues.Mask(r) &^ s.engine.OccupiedMask(r); m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m)
				s.engine.SetOngoing(r, b, s.queues.PopFront(r, b))
			}
		}
		if ch.CommandSlotFree() {
			s.rr.issue(s.engine, now)
		}
		return
	}
	if s.current == nil {
		// Round-robin bank selection, FIFO within the bank.
		total := s.ranks * s.banks
		for i := 0; i < total; i++ {
			idx := (s.rrNext + i) % total
			r, b := idx/s.banks, idx%s.banks
			if s.queues.List(r, b).Empty() {
				continue
			}
			s.current = s.queues.PopFront(r, b)
			s.curRank, s.curBank = r, b
			s.engine.SetOngoing(r, b, s.current)
			s.rrNext = idx + 1
			break
		}
		if s.current == nil {
			return
		}
	}
	if !ch.CommandSlotFree() {
		return
	}
	for _, c := range s.engine.Candidates() {
		if c.Rank == s.curRank && c.Bank == s.curBank && c.Unblocked {
			s.engine.Issue(c, now)
			return
		}
	}
}

// rowHit: unified per-bank queues; oldest row-hit access first, else oldest
// access; column transactions take precedence on the busses.
//
//burstmem:chanlocal
type rowHit struct {
	host   *memctrl.Host
	engine *memctrl.Engine
	queues *memctrl.BankQueues
	ranks  int

	pendingReads, pendingWrites int
}

func newRowHit(h *memctrl.Host) *rowHit {
	s := &rowHit{host: h}
	s.engine = memctrl.NewEngine(h, s.onColumn)
	ch := h.Channel()
	s.ranks = ch.Ranks()
	s.queues = memctrl.NewBankQueues(ch.Ranks(), ch.Banks())
	return s
}

// Name implements memctrl.Mechanism.
func (s *rowHit) Name() string { return "RowHit" }

// ForwardsWrites implements memctrl.Mechanism. RowHit treats reads and
// writes equally in one queue; same-line accesses are same-row, and the
// oldest-first row-hit rule preserves their order, so no forwarding is
// needed for correctness and none is modeled (matching Rixner's design).
func (s *rowHit) ForwardsWrites() bool { return false }

// Pending implements memctrl.Mechanism.
func (s *rowHit) Pending() (int, int) { return s.pendingReads, s.pendingWrites }

// Enqueue implements memctrl.Mechanism.
func (s *rowHit) Enqueue(a *memctrl.Access, now uint64) {
	s.queues.PushBack(a)
	if a.Kind == memctrl.KindRead {
		s.pendingReads++
	} else {
		s.pendingWrites++
	}
}

//burstmem:hotpath
func (s *rowHit) onColumn(a *memctrl.Access, now uint64) {
	if a.Kind == memctrl.KindRead {
		s.pendingReads--
	} else {
		s.pendingWrites--
	}
}

// Tick implements memctrl.Mechanism. Transaction selection follows
// Rixner's column/precharge/activate manager precedence: among unblocked
// transactions, column accesses go first (oldest first, round-robin across
// banks at equal age), then precharges and activates — keeping the data
// bus busy while row operations overlap underneath.
//
//burstmem:hotpath
func (s *rowHit) Tick(now uint64) {
	ch := s.host.Channel()
	for r := 0; r < s.ranks; r++ {
		for m := s.queues.Mask(r) &^ s.engine.OccupiedMask(r); m != 0; m &= m - 1 {
			b := bits.TrailingZeros64(m)
			q := s.queues.List(r, b)
			pick := q.Front()
			if row, open := ch.OpenRow(r, b); open {
				for a := q.Front(); a != nil; a = a.Next() {
					if a.Loc.Row == row {
						pick = a
						break
					}
				}
			}
			s.queues.Remove(pick)
			s.engine.SetOngoing(r, b, pick)
		}
	}
	if !ch.CommandSlotFree() {
		return
	}
	// Column transactions beat row transactions; oldest access breaks
	// ties. The engine's class masks hand both categories over directly.
	cl, any := s.engine.Unblocked(now)
	if !any {
		return
	}
	r, b, ok := oldestInMasks(s.engine, cl.ColRead, cl.ColWrite)
	if !ok {
		r, b, _ = oldestInMasks(s.engine, cl.RowRead, cl.RowWrite)
	}
	s.engine.Issue(s.engine.CandidateAt(r, b), now)
}

// oldestInMasks returns the bank holding the oldest ongoing access among
// the union of the two per-rank class masks (rank-major scan; arrival ties
// go to the lowest rank/bank, like the candidate scan it replaces).
//
//burstmem:hotpath
func oldestInMasks(e *memctrl.Engine, a, b []uint64) (int, int, bool) {
	bestR, bestB := -1, -1
	var bestArrival uint64
	for r := range a {
		for m := a[r] | b[r]; m != 0; m &= m - 1 {
			bk := bits.TrailingZeros64(m)
			if acc := e.Ongoing(r, bk); bestR < 0 || acc.Arrival < bestArrival {
				bestR, bestB, bestArrival = r, bk, acc.Arrival
			}
		}
	}
	return bestR, bestB, bestR >= 0
}

// intel: per-bank read queues (row-hit read first, else oldest), one write
// queue (held as per-bank FIFOs with a global occupancy view). Writes run
// only when the channel has no reads at all or the write queue is full. A
// started access has the highest transaction priority.
//
//burstmem:chanlocal
type intel struct {
	host       *memctrl.Host
	engine     *memctrl.Engine
	reads      *memctrl.BankQueues
	writes     *memctrl.BankQueues
	ranks      int
	preemption bool

	pendingReads, pendingWrites int
	ongoingIsWrite              [][]bool
}

func newIntel(h *memctrl.Host, preemption bool) *intel {
	s := &intel{host: h, preemption: preemption}
	s.engine = memctrl.NewEngine(h, s.onColumn)
	ch := h.Channel()
	s.ranks = ch.Ranks()
	s.reads = memctrl.NewBankQueues(ch.Ranks(), ch.Banks())
	s.writes = memctrl.NewBankQueues(ch.Ranks(), ch.Banks())
	s.ongoingIsWrite = make([][]bool, ch.Ranks())
	for r := range s.ongoingIsWrite {
		s.ongoingIsWrite[r] = make([]bool, ch.Banks())
	}
	return s
}

// Name implements memctrl.Mechanism.
func (s *intel) Name() string {
	if s.preemption {
		return "Intel_RP"
	}
	return "Intel"
}

// ForwardsWrites implements memctrl.Mechanism: reads bypass the write
// queue, so matching reads must be satisfied from it.
func (s *intel) ForwardsWrites() bool { return true }

// Pending implements memctrl.Mechanism.
func (s *intel) Pending() (int, int) { return s.pendingReads, s.pendingWrites }

// Enqueue implements memctrl.Mechanism.
func (s *intel) Enqueue(a *memctrl.Access, now uint64) {
	if a.Kind == memctrl.KindRead {
		s.reads.PushBack(a)
		s.pendingReads++
	} else {
		s.writes.PushBack(a)
		s.pendingWrites++
	}
}

//burstmem:hotpath
func (s *intel) onColumn(a *memctrl.Access, now uint64) {
	if a.Kind == memctrl.KindRead {
		s.pendingReads--
	} else {
		s.pendingWrites--
	}
}

// Tick implements memctrl.Mechanism.
//
//burstmem:hotpath
func (s *intel) Tick(now uint64) {
	ch := s.host.Channel()
	for r := 0; r < s.ranks; r++ {
		// Snapshot the occupied mask before installing: a bank gets
		// exactly one arbitration visit per tick (vacant banks install,
		// occupied banks check preemption), mirroring the single
		// arbitrate(r, b) call per bank of the scan-based arbiter.
		occ := s.engine.OccupiedMask(r)
		for m := (s.reads.Mask(r) | s.writes.Mask(r)) &^ occ; m != 0; m &= m - 1 {
			s.arbitrateVacant(r, bits.TrailingZeros64(m))
		}
		if s.preemption {
			for m := occ; m != 0; m &= m - 1 {
				s.arbitrateOngoing(r, bits.TrailingZeros64(m), now)
			}
		}
	}
	if !ch.CommandSlotFree() {
		return
	}
	// Transaction selection: started accesses first (oldest first), then
	// unstarted (oldest first). No bus-timing awareness — the "best
	// effort" behaviour the paper contrasts with Table 2.
	cands := s.engine.Candidates()
	best := -1
	for i, c := range cands {
		if !c.Unblocked {
			continue
		}
		if best < 0 || betterIntel(c, cands[best]) {
			best = i
		}
	}
	if best >= 0 {
		s.engine.Issue(cands[best], now)
	}
}

//burstmem:hotpath
func betterIntel(a, b memctrl.Candidate) bool {
	if a.Access.Started() != b.Access.Started() {
		return a.Access.Started()
	}
	return a.Access.Arrival < b.Access.Arrival
}

// arbitrateVacant picks the bank's next ongoing access when no access is
// in flight there.
//
//burstmem:hotpath
func (s *intel) arbitrateVacant(r, b int) {
	switch {
	case s.host.WriteQueueFull() && !s.writes.List(r, b).Empty():
		// Drain the oldest write that no queued read still wants
		// (WAR guard; younger same-line reads were forwarded).
		if w := s.oldestSafeWrite(r, b); w != nil {
			s.installWrite(r, b, w)
		} else if !s.reads.List(r, b).Empty() {
			// Every write is behind a queued read; drain reads.
			s.installRead(r, b)
		}
	case !s.reads.List(r, b).Empty():
		s.installRead(r, b)
	case !s.writes.List(r, b).Empty() && s.pendingReads == 0:
		// Writes are postponed until the channel has no reads
		// at all (minimizing read latency, per the patent).
		s.installWrite(r, b, s.writes.List(r, b).Front())
	}
}

// arbitrateOngoing handles read preemption of an in-flight write.
//
//burstmem:hotpath
func (s *intel) arbitrateOngoing(r, b int, now uint64) {
	ongoing := s.engine.Ongoing(r, b)
	if s.ongoingIsWrite[r][b] && !s.reads.List(r, b).Empty() && !s.host.WriteQueueFull() {
		// Read preemption: push the write back and start the read.
		s.engine.ClearOngoing(r, b)
		s.writes.PushFront(ongoing)
		s.host.Tracer().Mark(now, trace.EvPreempt, s.host.ChannelIndex(),
			r, b, ongoing.Loc.Row, ongoing.ID, 0)
		s.installRead(r, b)
	}
}

// installRead picks the oldest row-hit read if the bank row is open, else
// the oldest read.
//
//burstmem:hotpath
func (s *intel) installRead(r, b int) {
	q := s.reads.List(r, b)
	pick := q.Front()
	if row, open := s.host.Channel().OpenRow(r, b); open {
		for a := q.Front(); a != nil; a = a.Next() {
			if a.Loc.Row == row {
				pick = a
				break
			}
		}
	}
	s.reads.Remove(pick)
	s.engine.SetOngoing(r, b, pick)
	s.ongoingIsWrite[r][b] = false
}

//burstmem:hotpath
func (s *intel) installWrite(r, b int, w *memctrl.Access) {
	s.writes.Remove(w)
	s.engine.SetOngoing(r, b, w)
	s.ongoingIsWrite[r][b] = true
}

// oldestSafeWrite returns the oldest write whose line no queued read
// targets, or nil.
//
//burstmem:hotpath
func (s *intel) oldestSafeWrite(r, b int) *memctrl.Access {
	lineBytes := s.host.Config().Geometry.LineBytes
	for w := s.writes.List(r, b).Front(); w != nil; w = w.Next() {
		line := w.LineAddr(lineBytes)
		hazard := false
		for rd := s.reads.List(r, b).Front(); rd != nil; rd = rd.Next() {
			if rd.LineAddr(lineBytes) == line {
				hazard = true
				break
			}
		}
		if !hazard {
			return w
		}
	}
	return nil
}

// roundRobin issues one unblocked transaction per cycle, visiting banks in
// rotating order so every bank gets an equal share of the command bus.
//
//burstmem:chanlocal
type roundRobin struct {
	ranks, banks int
	next         int
}

func newRoundRobin(ranks, banks int) *roundRobin {
	return &roundRobin{ranks: ranks, banks: banks}
}

//burstmem:hotpath
func (rr *roundRobin) issue(e *memctrl.Engine, now uint64) {
	cl, any := e.Unblocked(now)
	if !any {
		return
	}
	total := rr.ranks * rr.banks
	for i := 0; i < total; i++ {
		idx := (rr.next + i) % total
		r, b := idx/rr.banks, idx%rr.banks
		if cl.Rank(r)&(1<<uint(b)) != 0 {
			e.Issue(e.CandidateAt(r, b), now)
			rr.next = idx + 1
			return
		}
	}
}

// NextEventCycle implements memctrl.EventHinter. None of the baseline
// mechanisms have internal timers: with no submissions or completions, the
// only thing that can happen is an ongoing access's next transaction
// becoming issuable, which the engine bounds.
//
//burstmem:hotpath
func (s *bankInOrder) NextEventCycle(now uint64) uint64 { return s.engine.NextEventCycle(now) }

// NextEventCycle implements memctrl.EventHinter.
//
//burstmem:hotpath
func (s *rowHit) NextEventCycle(now uint64) uint64 { return s.engine.NextEventCycle(now) }

// NextEventCycle implements memctrl.EventHinter. Read preemption needs no
// extra hint: it triggers only on state that submissions and completions
// change, both of which already wake the controller.
//
//burstmem:hotpath
func (s *intel) NextEventCycle(now uint64) uint64 { return s.engine.NextEventCycle(now) }

// PrewarmRanks implementations (memctrl.RankPrewarmer): the baseline
// mechanisms keep no per-bank caches beyond the engine's, so rank-shard
// prewarming delegates straight to it.

//burstmem:hotpath
func (s *bankInOrder) PrewarmRanks(lo, hi int) { s.engine.PrewarmRanks(lo, hi) }

//burstmem:hotpath
func (s *rowHit) PrewarmRanks(lo, hi int) { s.engine.PrewarmRanks(lo, hi) }

//burstmem:hotpath
func (s *intel) PrewarmRanks(lo, hi int) { s.engine.PrewarmRanks(lo, hi) }

var (
	_ memctrl.Mechanism   = (*bankInOrder)(nil)
	_ memctrl.Mechanism   = (*rowHit)(nil)
	_ memctrl.Mechanism   = (*intel)(nil)
	_ memctrl.EventHinter = (*bankInOrder)(nil)
	_ memctrl.EventHinter = (*rowHit)(nil)
	_ memctrl.EventHinter = (*intel)(nil)
)
