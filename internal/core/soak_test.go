package core

import (
	"testing"

	"burstmem/internal/addrmap"
	"burstmem/internal/dram"
	"burstmem/internal/mctest"
	"burstmem/internal/memctrl"
	"burstmem/internal/xrand"
)

// TestBurstVariantsDrainRandomStream soaks every burst variant (including
// the naive-priority ablation) with a deterministic random read/write mix
// under refresh: every accepted access must complete exactly once, and
// forwarded reads must never outnumber reads.
func TestBurstVariantsDrainRandomStream(t *testing.T) {
	variants := map[string]memctrl.Factory{
		"Burst":       Burst(),
		"Burst_RP":    BurstRP(),
		"Burst_WP":    BurstWP(),
		"Burst_TH8":   BurstTH(8),
		"Burst_Naive": BurstNaive(),
	}
	for name, f := range variants {
		f := f
		t.Run(name, func(t *testing.T) {
			cfg := mctest.SmallConfig(dram.DDR2_800()) // refresh enabled
			cfg.MaxWrites = 12
			r, err := mctest.NewRunner(cfg, f)
			if err != nil {
				t.Fatal(err)
			}
			rng := xrand.New(99)
			submitted := 0
			forwarded := 0
			for i := 0; i < 4000; i++ {
				r.Step(1)
				if rng.Intn(2) == 0 {
					continue
				}
				kind := memctrl.KindRead
				if rng.Intn(3) == 0 {
					kind = memctrl.KindWrite
				}
				if !r.Ctrl.CanAccept(kind) {
					continue
				}
				loc := addrmap.Loc{
					Bank: uint8(rng.Intn(4)),
					Row:  uint32(rng.Intn(6)),
					Col:  uint32(rng.Intn(32)),
				}
				a, err := r.SubmitLoc(kind, loc)
				if err != nil {
					t.Fatal(err)
				}
				if a.Forwarded {
					forwarded++
				}
				submitted++
			}
			if _, err := r.RunUntilDrained(300000); err != nil {
				t.Fatal(err)
			}
			if len(r.Completed) != submitted {
				t.Fatalf("completed %d of %d", len(r.Completed), submitted)
			}
			seen := map[uint64]bool{}
			for _, a := range r.Completed {
				if seen[a.ID] {
					t.Fatalf("access %d completed twice", a.ID)
				}
				seen[a.ID] = true
				if !a.Forwarded && a.DataEnd <= a.Arrival {
					t.Fatalf("access %d completed at %d before arrival %d", a.ID, a.DataEnd, a.Arrival)
				}
			}
			if forwarded == 0 {
				t.Log("note: no forwarded reads in this stream (acceptable)")
			}
		})
	}
}

// TestBurstNaiveSlower: the Table 2 priority should outperform naive
// oldest-first transaction selection under multi-rank pressure.
func TestBurstNaiveSlower(t *testing.T) {
	run := func(f memctrl.Factory) uint64 {
		cfg := mctest.SmallConfig(noRefresh(dram.DDR2_800()))
		g := cfg.Geometry
		g.Ranks = 2
		cfg.Geometry = g
		r, err := mctest.NewRunner(cfg, f)
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(5)
		for i := 0; i < 64; i++ {
			loc := addrmap.Loc{
				Rank: uint8(rng.Intn(2)),
				Bank: uint8(rng.Intn(4)),
				Row:  uint32(rng.Intn(4)),
				Col:  uint32(rng.Intn(32)),
			}
			if !r.Ctrl.CanAccept(memctrl.KindRead) {
				r.Step(20)
			}
			if _, err := r.SubmitLoc(memctrl.KindRead, loc); err != nil {
				t.Fatal(err)
			}
		}
		end, err := r.RunUntilDrained(100000)
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	table2 := run(Burst())
	naive := run(BurstNaive())
	if table2 > naive {
		t.Fatalf("Table 2 priority (%d cycles) slower than naive oldest-first (%d cycles)", table2, naive)
	}
}
