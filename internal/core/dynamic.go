package core

import (
	"burstmem/internal/memctrl"
)

// Dynamic threshold — the paper's first future-work item (Section 7):
// "A dynamical threshold, which is calculated on the fly based on some
// critical parameters such as read write ratios, will match access
// patterns of different benchmarks for further performance improvement."
//
// The implementation recomputes the read-preemption/write-piggybacking
// pivot every AdaptInterval memory cycles from the write share of accesses
// that arrived during the interval: write-heavy phases lower the threshold
// (piggyback early, keep the queue clear), read-heavy phases raise it
// (preempt aggressively, writes can wait). The mapping is linear:
//
//	threshold = MaxWrites * (1 - slope * writeShare)
//
// clamped to [minThreshold, MaxWrites]. With slope 1.5 a 10% write stream
// runs near Burst_RP behaviour and a 50% write stream near Burst_WP.
const (
	// AdaptInterval is the reclassification period in memory cycles.
	AdaptInterval = 1024
	// adaptSlope scales how strongly the write share depresses the
	// threshold.
	adaptSlope = 1.5
	// minDynamicThreshold keeps a little preemption headroom even in
	// write-storms, so a truly critical read is never forced to wait for
	// a full burst of piggybacked writes.
	minDynamicThreshold = 4
)

// NameBurstDyn is the mechanism name of the dynamic-threshold variant.
const NameBurstDyn = "Burst_DYN"

// BurstDynTH returns burst scheduling with the adaptive threshold.
func BurstDynTH() memctrl.Factory {
	return func(h *memctrl.Host) memctrl.Mechanism {
		s := newBurst(h, NameBurstDyn, Options{
			ReadPreemption: true,
			WritePiggyback: true,
			// Start balanced; the first interval will recalibrate.
			Threshold: h.Config().MaxWrites / 2,
		})
		s.dynamic = true
		return s
	}
}

// adaptThreshold recomputes the threshold from the last interval's arrival
// mix. Called from Tick on interval boundaries.
//
//burstmem:hotpath
func (s *burstSched) adaptThreshold(now uint64) {
	if now < s.nextAdapt {
		return
	}
	s.nextAdapt = now + AdaptInterval
	total := s.intervalReads + s.intervalWrites
	if total == 0 {
		return // idle interval: keep the current threshold
	}
	writeShare := float64(s.intervalWrites) / float64(total)
	maxW := s.host.Config().MaxWrites
	th := int(float64(maxW) * (1 - adaptSlope*writeShare))
	if th < minDynamicThreshold {
		th = minDynamicThreshold
	}
	if th > maxW {
		th = maxW
	}
	s.opt.Threshold = th
	s.Stats.ThresholdAdaptations++
	s.intervalReads, s.intervalWrites = 0, 0
}

// CurrentThreshold returns the threshold in force (fixed for the static
// variants, evolving for Burst_DYN).
func (s *burstSched) CurrentThreshold() int { return s.opt.Threshold }
