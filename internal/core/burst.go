// Package core implements the paper's primary contribution: the burst
// scheduling access reordering mechanism (Section 3).
//
// Burst scheduling is a two-level scheduler. At the access level, per-bank
// arbiters cluster reads to the same row of the same bank into bursts and
// decide when writes may run (never before reads, except when the write
// queue fills, when piggybacking after a burst, or when there is nothing
// else to do). At the transaction level, a global per-channel transaction
// scheduler picks one unblocked SDRAM transaction per cycle using the
// static priority of paper Table 2, which keeps row hits back to back on
// the data bus while overlapping precharges and activates underneath.
//
// Two options are controlled by a static threshold on write-queue
// occupancy (Section 3.2): read preemption below the threshold, write
// piggybacking above it. The paper's Burst, Burst_RP, Burst_WP and
// Burst_TH(52) variants are all configurations of the one mechanism here.
package core

import (
	"fmt"
	"math/bits"

	"burstmem/internal/dram"
	"burstmem/internal/memctrl"
	"burstmem/internal/trace"
)

// Options selects a burst scheduling variant.
//
//burstmem:chanlocal
type Options struct {
	// ReadPreemption lets newly arrived reads interrupt an ongoing write
	// whose column transaction has not issued yet (the write restarts
	// later; correctness is unaffected).
	ReadPreemption bool
	// WritePiggyback appends qualified writes (same row) at the end of
	// bursts to exploit write row locality and avoid write queue
	// saturation.
	WritePiggyback bool
	// Threshold is the write-queue occupancy pivot: read preemption is
	// enabled while occupancy < Threshold, write piggybacking while
	// occupancy > Threshold. Only meaningful for the variant with both
	// options enabled (Burst_TH).
	Threshold int
	// NaivePriority replaces the Table 2 transaction priority with plain
	// oldest-first selection among unblocked transactions. It exists for
	// the ablation study quantifying how much of burst scheduling's win
	// comes from timing-aware transaction interleaving (the "bubble
	// cycles" the paper attributes to best-effort mechanisms).
	NaivePriority bool
	// LargestBurstFirst changes inter-burst order within a bank from
	// arrival order to largest-burst-first (the paper's Section 7 future
	// work), with StarvationLimit as the aging guard the paper calls
	// for: a burst whose first access has waited longer goes first
	// regardless of size.
	LargestBurstFirst bool
	// StarvationLimit is the age, in memory cycles, at which the oldest
	// burst overrides size order (0 picks a default).
	StarvationLimit uint64
}

// defaultStarvationLimit bounds how long a small burst can be bypassed by
// larger ones under LargestBurstFirst.
const defaultStarvationLimit = 2000

// Variant name constants as used in the paper's Table 4.
const (
	NameBurst   = "Burst"
	NameBurstRP = "Burst_RP"
	NameBurstWP = "Burst_WP"
	NameBurstTH = "Burst_TH"
)

// Burst returns a factory for plain burst scheduling: bursts plus the
// Table 2 transaction priority, no read preemption, no write piggybacking.
func Burst() memctrl.Factory {
	return func(h *memctrl.Host) memctrl.Mechanism {
		return newBurst(h, NameBurst, Options{})
	}
}

// BurstRP returns burst scheduling with read preemption (equivalent to a
// threshold of the full write-queue size; paper Section 5.4).
func BurstRP() memctrl.Factory {
	return func(h *memctrl.Host) memctrl.Mechanism {
		return newBurst(h, NameBurstRP, Options{
			ReadPreemption: true,
			Threshold:      h.Config().MaxWrites,
		})
	}
}

// BurstWP returns burst scheduling with write piggybacking (equivalent to a
// threshold of zero).
func BurstWP() memctrl.Factory {
	return func(h *memctrl.Host) memctrl.Mechanism {
		return newBurst(h, NameBurstWP, Options{WritePiggyback: true, Threshold: 0})
	}
}

// BurstNaive returns the ablation variant: burst clustering and arbiters
// intact, but transactions selected oldest-first instead of by the Table 2
// priority.
func BurstNaive() memctrl.Factory {
	return func(h *memctrl.Host) memctrl.Mechanism {
		return newBurst(h, "Burst_Naive", Options{NaivePriority: true})
	}
}

// BurstSized returns the Section 7 inter-burst variant: Burst_TH(52) with
// largest-burst-first ordering inside banks (aging-guarded).
func BurstSized() memctrl.Factory {
	return func(h *memctrl.Host) memctrl.Mechanism {
		return newBurst(h, "Burst_SZ", Options{
			ReadPreemption:    true,
			WritePiggyback:    true,
			Threshold:         52,
			LargestBurstFirst: true,
		})
	}
}

// BurstTH returns burst scheduling with both options switched by the static
// threshold. The paper's experimentally determined best value is 52 (of a
// 64-entry write queue).
func BurstTH(threshold int) memctrl.Factory {
	return func(h *memctrl.Host) memctrl.Mechanism {
		return newBurst(h, fmt.Sprintf("%s%d", NameBurstTH, threshold), Options{
			ReadPreemption: true,
			WritePiggyback: true,
			Threshold:      threshold,
		})
	}
}

// burstGroup is a cluster of reads to one row of one bank. All accesses
// after the first are guaranteed row hits. Groups are pooled on the
// scheduler's free list, and the reads ride an intrusive list, so burst
// formation allocates nothing in steady state.
//
//burstmem:chanlocal
type burstGroup struct {
	row     uint32
	arrival uint64 // arrival of the first access, for inter-burst ordering
	reads   memctrl.AccessList
}

// bankState holds one bank's burst queue and piggyback context (writes
// live in the scheduler-wide memctrl.BankQueues).
//
//burstmem:chanlocal
type bankState struct {
	bursts []*burstGroup // FIFO by first-access arrival

	// endOfBurst marks the piggyback window: the last column issued on
	// this bank finished a burst (or was itself a piggybacked write) to
	// lastRow.
	endOfBurst bool
	lastRow    uint32

	// activeRow is the row of the burst currently draining (-1 when
	// none): inter-burst reordering never switches away from a
	// partially drained burst, preserving its back-to-back row hits.
	activeRow int64

	// ongoingIsWrite / ongoingPiggyback describe the installed ongoing
	// access so preemption and end-of-burst bookkeeping can tell reads,
	// forced writes and piggybacked writes apart.
	ongoingIsWrite   bool
	ongoingPiggyback bool

	// preemptPending is set when a read ARRIVES while a write is ongoing
	// (paper Section 3.2: "read preemption allows a newly arrived read
	// to interrupt an ongoing write"); the arbiter acts on it next
	// cycle. Queued reads never retro-preempt, which avoids thrashing
	// forced writes near write-queue saturation.
	preemptPending bool
}

// burstSched is the mechanism instance for one channel.
//
//burstmem:chanlocal
type burstSched struct {
	name   string
	opt    Options
	host   *memctrl.Host
	engine *memctrl.Engine

	banks    [][]*bankState      // [rank][bank]
	writes   *memctrl.BankQueues // per-bank write FIFOs + nonempty bitmaps
	burstsNE []uint64            // per-rank banks-with-bursts bitmaps

	freeGroups []*burstGroup // burstGroup pool

	pendingReads  int
	pendingWrites int

	lastBank int // flattened bank index of the last scheduled transaction
	lastRank int

	// preemptCount tracks how many banks currently have preemptPending
	// set. A pending flag always belongs to an occupied bank (it is set
	// only while a write is ongoing and consumed by the next tick's
	// arbitration pass, before any transaction can vacate the bank), so
	// this count equals what a scan of occupied banks would find — which
	// is exactly the scan NextEventCycle used to do.
	preemptCount int

	// dynamic-threshold state (see dynamic.go)
	dynamic        bool
	nextAdapt      uint64
	intervalReads  uint64
	intervalWrites uint64

	// Stats counts burst-level events for analysis and ablation.
	Stats BurstStats
}

// BurstStats counts scheduling events specific to burst scheduling.
//
//burstmem:chanlocal
type BurstStats struct {
	BurstsFormed      uint64
	ReadsJoinedBursts uint64 // reads appended to an existing burst
	Preemptions       uint64
	PiggybackedWrites uint64
	ForcedWrites      uint64 // writes issued due to a full write queue
	IdleWrites        uint64 // writes issued because no reads were pending
	MaxBurstLen       int
	// ThresholdAdaptations counts dynamic-threshold recalculations
	// (Burst_DYN only).
	ThresholdAdaptations uint64
}

func newBurst(h *memctrl.Host, name string, opt Options) *burstSched {
	s := &burstSched{name: name, opt: opt, host: h, lastBank: -1, lastRank: -1}
	s.engine = memctrl.NewEngine(h, s.onColumn)
	ch := h.Channel()
	s.banks = make([][]*bankState, ch.Ranks())
	for r := range s.banks {
		s.banks[r] = make([]*bankState, ch.Banks())
		for b := range s.banks[r] {
			s.banks[r][b] = &bankState{activeRow: -1, bursts: make([]*burstGroup, 0, 8)}
		}
	}
	s.writes = memctrl.NewBankQueues(ch.Ranks(), ch.Banks())
	s.burstsNE = make([]uint64, ch.Ranks())
	// Prewarm the group pool to two groups per bank (row-spread workloads
	// like mcf's pointer chase hold several open bursts per bank) so
	// steady-state burst formation starts allocation-free instead of
	// ramping the pool to its high-water mark mid-run.
	n := 2 * ch.Ranks() * ch.Banks()
	s.freeGroups = make([]*burstGroup, 0, 2*n)
	for i := 0; i < n; i++ {
		s.freeGroups = append(s.freeGroups, &burstGroup{})
	}
	return s
}

// acquireGroup pops a pooled burst group (or allocates one) and starts it
// with its first read.
//
//burstmem:hotpath
func (s *burstSched) acquireGroup(row uint32, arrival uint64, first *memctrl.Access) *burstGroup {
	var bg *burstGroup
	if n := len(s.freeGroups); n > 0 {
		bg = s.freeGroups[n-1]
		s.freeGroups = s.freeGroups[:n-1]
	} else {
		//lint:ignore hotalloc pool refill: allocates only until the group pool warms up
		bg = &burstGroup{}
	}
	bg.row = row
	bg.arrival = arrival
	bg.reads.PushBack(first)
	return bg
}

// Name implements memctrl.Mechanism.
func (s *burstSched) Name() string { return s.name }

// ForwardsWrites implements memctrl.Mechanism: burst scheduling forwards
// write data to matching reads (paper Fig. 4).
func (s *burstSched) ForwardsWrites() bool { return true }

// Pending implements memctrl.Mechanism.
func (s *burstSched) Pending() (reads, writes int) { return s.pendingReads, s.pendingWrites }

// Enqueue implements the access enter queue subroutine (paper Fig. 4).
// Write-queue hits were already forwarded by the controller, so a read
// either joins an existing burst to its row or opens a new single-access
// burst at the tail of the bank's burst queue. Writes append to the bank's
// write queue in order.
//
//burstmem:hotpath
func (s *burstSched) Enqueue(a *memctrl.Access, now uint64) {
	r, b := int(a.Loc.Rank), int(a.Loc.Bank)
	st := s.bank(r, b)
	if a.Kind == memctrl.KindWrite {
		s.writes.PushBack(a)
		s.pendingWrites++
		s.intervalWrites++
		return
	}
	s.pendingReads++
	s.intervalReads++
	if s.opt.ReadPreemption && !st.preemptPending && st.ongoingIsWrite &&
		s.engine.Ongoing(r, b) != nil && s.host.GlobalWrites() < s.opt.Threshold {
		st.preemptPending = true
		s.preemptCount++
	}
	for _, bg := range st.bursts {
		if bg.row == a.Loc.Row {
			bg.reads.PushBack(a)
			s.Stats.ReadsJoinedBursts++
			if n := bg.reads.Len(); n > s.Stats.MaxBurstLen {
				s.Stats.MaxBurstLen = n
			}
			s.host.Tracer().Mark(now, trace.EvBurstJoin, s.host.ChannelIndex(), r, b,
				a.Loc.Row, a.ID, uint64(bg.reads.Len()))
			return
		}
	}
	//lint:ignore hotalloc per-bank burst slice keeps its capacity across bursts
	st.bursts = append(st.bursts, s.acquireGroup(a.Loc.Row, now, a))
	s.burstsNE[r] |= 1 << uint(b)
	s.Stats.BurstsFormed++
	if s.Stats.MaxBurstLen == 0 {
		s.Stats.MaxBurstLen = 1
	}
	s.host.Tracer().Mark(now, trace.EvBurstForm, s.host.ChannelIndex(), r, b, a.Loc.Row, a.ID, 1)
}

func (s *burstSched) bank(rank, bank int) *bankState { return s.banks[rank][bank] }

// Tick implements memctrl.Mechanism: adapt the threshold if dynamic, run
// every bank arbiter, then the global transaction scheduler.
//
//burstmem:hotpath
func (s *burstSched) Tick(now uint64) {
	if s.dynamic {
		s.adaptThreshold(now)
	}
	for r := range s.burstsNE {
		// Snapshot the occupied mask before installing: each bank gets
		// exactly one arbitration visit per tick (vacant banks with
		// queued work install, occupied banks check preemption), matching
		// the single arbitrate(r, b) call per bank of the scan-based
		// arbiter. A bank installed this pass is not preempt-checked the
		// same tick, and its preemptPending (if any) lingers — exactly as
		// when the scan found it vacant.
		occ := s.engine.OccupiedMask(r)
		for m := (s.burstsNE[r] | s.writes.Mask(r)) &^ occ; m != 0; m &= m - 1 {
			s.arbitrateVacant(r, bits.TrailingZeros64(m), now)
		}
		if s.opt.ReadPreemption {
			for m := occ; m != 0; m &= m - 1 {
				s.arbitrateOngoing(r, bits.TrailingZeros64(m), now)
			}
		}
	}
	if s.host.Channel().CommandSlotFree() {
		s.schedule(now)
	}
}

var _ memctrl.EventHinter = (*burstSched)(nil)

// NextEventCycle implements memctrl.EventHinter: the earliest future cycle
// at which, absent submissions and completions, this mechanism could act.
// Beyond the engine's transaction-release bound, burst scheduling has two
// internal timers: a pending read-preemption decision (resolved next tick)
// and the dynamic-threshold adaptation deadline.
//
//burstmem:hotpath
func (s *burstSched) NextEventCycle(now uint64) uint64 {
	if s.preemptCount > 0 {
		return now + 1
	}
	next := s.engine.NextEventCycle(now)
	if s.dynamic && s.nextAdapt < next {
		next = s.nextAdapt
	}
	return next
}

// PrewarmRanks implements memctrl.RankPrewarmer: burst scheduling keeps no
// per-bank caches of its own beyond the engine's hint cache, so rank-shard
// prewarming delegates straight to it.
//
//burstmem:hotpath
func (s *burstSched) PrewarmRanks(lo, hi int) { s.engine.PrewarmRanks(lo, hi) }

// arbitrateVacant is the bank arbiter subroutine (paper Fig. 5) for a bank
// with no ongoing access.
//
//burstmem:hotpath
func (s *burstSched) arbitrateVacant(rank, bank int, now uint64) {
	st := s.bank(rank, bank)
	occupancy := s.host.GlobalWrites()
	wq := s.writes.List(rank, bank)

	// Evaluated once for both the piggyback guard and its body
	// (rowHitWrite is a pure scan).
	var piggyW *memctrl.Access
	if s.opt.WritePiggyback && occupancy > s.opt.Threshold && st.endOfBurst {
		piggyW = s.rowHitWrite(st, wq)
	}

	switch {
	case s.host.WriteQueueFull() && !wq.Empty():
		// Fig. 5 line 2: the pool can accept no more writes;
		// drain the oldest write. A write whose line is still
		// wanted by a queued (necessarily older — younger reads
		// were forwarded) read must not pass it: that would be a
		// WAR hazard the paper's Section 3.4 argument does not
		// cover for forced writes. Skip to the oldest safe write;
		// if every write is behind a queued read, serve reads so
		// the hazards clear.
		if w := s.oldestSafeWrite(st, wq); w != nil {
			s.installWrite(rank, bank, w, false)
			s.Stats.ForcedWrites++
			s.host.Tracer().Mark(now, trace.EvForcedWrite, s.host.ChannelIndex(),
				rank, bank, w.Loc.Row, w.ID, 0)
		} else if len(st.bursts) > 0 {
			s.installRead(rank, bank, now)
		}
	case piggyW != nil:
		// Fig. 5 line 4: piggyback the oldest qualified write at
		// the end of the burst.
		w := piggyW
		s.installWrite(rank, bank, w, true)
		s.Stats.PiggybackedWrites++
		s.host.Tracer().Mark(now, trace.EvPiggyback, s.host.ChannelIndex(),
			rank, bank, w.Loc.Row, w.ID, 0)
	case !wq.Empty() && s.pendingReads == 0 && len(st.bursts) == 0:
		// Fig. 5 line 6: "write queue is not empty and read queue
		// is empty" — reads are prioritized channel-wide, so
		// writes drain only when no reads are outstanding at all.
		// This aggressive read priority is what lets the write
		// queue approach saturation (paper Section 5.1).
		w := wq.Front()
		s.installWrite(rank, bank, w, false)
		s.Stats.IdleWrites++
		s.host.Tracer().Mark(now, trace.EvIdleWrite, s.host.ChannelIndex(),
			rank, bank, w.Loc.Row, w.ID, 0)
	case len(st.bursts) > 0:
		// Fig. 5 line 8: first read in the next burst.
		s.installRead(rank, bank, now)
	}
}

// arbitrateOngoing handles Fig. 5 line 9: read preemption, triggered by a
// read's arrival while this write was ongoing. Only writes whose column
// has not issued can be interrupted (a completed transfer cannot be
// undone); the engine clears ongoing slots at column issue, so any write
// still installed here is interruptible.
//
//burstmem:hotpath
func (s *burstSched) arbitrateOngoing(rank, bank int, now uint64) {
	st := s.bank(rank, bank)
	if st.preemptPending {
		st.preemptPending = false
		s.preemptCount--
		if st.ongoingIsWrite && len(st.bursts) > 0 && s.host.GlobalWrites() < s.opt.Threshold {
			s.preempt(rank, bank, s.engine.Ongoing(rank, bank), now)
		}
	}
}

// installWrite removes w from the bank's write queue and makes it the
// bank's ongoing access.
//
//burstmem:hotpath
func (s *burstSched) installWrite(rank, bank int, w *memctrl.Access, piggyback bool) {
	st := s.bank(rank, bank)
	s.writes.Remove(w)
	st.ongoingIsWrite = true
	st.ongoingPiggyback = piggyback
	s.engine.SetOngoing(rank, bank, w)
}

// installRead pops the head read of the bank's next burst and makes it
// ongoing. The next burst is the draining one if any; otherwise the oldest
// burst (or, under LargestBurstFirst, the largest burst subject to the
// aging guard).
//
//burstmem:hotpath
func (s *burstSched) installRead(rank, bank int, now uint64) {
	st := s.bank(rank, bank)
	bg := s.selectBurst(st, now)
	rd := bg.reads.PopFront()
	st.activeRow = int64(bg.row)
	st.ongoingIsWrite = false
	st.ongoingPiggyback = false
	// Leaving the burst in the queue lets newly arrived same-row reads
	// keep joining it while it drains (paper Section 3).
	s.engine.SetOngoing(rank, bank, rd)
}

// selectBurst picks the bank's next burst per the inter-burst policy.
//
//burstmem:hotpath
func (s *burstSched) selectBurst(st *bankState, now uint64) *burstGroup {
	if st.activeRow >= 0 {
		for _, bg := range st.bursts {
			if int64(bg.row) == st.activeRow && bg.reads.Len() > 0 {
				return bg
			}
		}
		// The draining burst is exhausted or gone; fall through.
	}
	if !s.opt.LargestBurstFirst {
		return st.bursts[0]
	}
	limit := s.opt.StarvationLimit
	if limit == 0 {
		limit = defaultStarvationLimit
	}
	oldest := st.bursts[0]
	if now-oldest.arrival >= limit {
		return oldest // aging guard: the paper's starvation consideration
	}
	best := oldest
	for _, bg := range st.bursts[1:] {
		if bg.reads.Len() > best.reads.Len() {
			best = bg
		}
	}
	return best
}

// preempt resets an ongoing write back to the front of the bank's write
// queue and installs the first read of the next burst (Fig. 5 lines 10-11).
// The write keeps any precharge/activate progress in the bank state — which
// is how a preempting read can observe a row empty (paper Section 5.2).
//
//burstmem:hotpath
func (s *burstSched) preempt(rank, bank int, w *memctrl.Access, now uint64) {
	s.engine.ClearOngoing(rank, bank)
	s.writes.PushFront(w)
	s.Stats.Preemptions++
	s.host.Tracer().Mark(now, trace.EvPreempt, s.host.ChannelIndex(),
		rank, bank, w.Loc.Row, w.ID, 0)
	s.installRead(rank, bank, now)
}

// onColumn runs when an access's column transaction issues: maintain
// pending counts and the end-of-burst piggyback window.
//
//burstmem:hotpath
func (s *burstSched) onColumn(a *memctrl.Access, now uint64) {
	rank, bank := int(a.Loc.Rank), int(a.Loc.Bank)
	st := s.bank(rank, bank)
	if a.Kind == memctrl.KindWrite {
		s.pendingWrites--
		// Any completed write leaves its row open and opens a piggyback
		// window on that row: queued same-row writes follow back to
		// back, which is how piggybacking "exploits the locality of row
		// hits from writes" (Section 3.2) — L2 writebacks of
		// sequentially filled lines cluster by row.
		st.endOfBurst = true
		st.lastRow = a.Loc.Row
		return
	}
	s.pendingReads--
	for i, bg := range st.bursts {
		if bg.row != a.Loc.Row {
			continue
		}
		if bg.reads.Len() == 0 {
			// The burst is exhausted: remove it, recycle the group and
			// open the piggyback window on its row.
			copy(st.bursts[i:], st.bursts[i+1:])
			st.bursts[len(st.bursts)-1] = nil
			st.bursts = st.bursts[:len(st.bursts)-1]
			if len(st.bursts) == 0 {
				s.burstsNE[rank] &^= 1 << uint(bank)
			}
			//lint:ignore hotalloc pool return: capacity is bounded by peak live groups
			s.freeGroups = append(s.freeGroups, bg)
			st.endOfBurst = true
			st.lastRow = a.Loc.Row
			st.activeRow = -1
			return
		}
		break
	}
	st.endOfBurst = false
}

// oldestSafeWrite returns the oldest write in the bank whose line is not
// wanted by any queued read, or nil when every write is hazardous (the
// reads will drain first).
//
//burstmem:hotpath
func (s *burstSched) oldestSafeWrite(st *bankState, wq *memctrl.AccessList) *memctrl.Access {
	lineBytes := s.host.Config().Geometry.LineBytes
	for w := wq.Front(); w != nil; w = w.Next() {
		if !s.lineHasQueuedRead(st, w.LineAddr(lineBytes), lineBytes) {
			return w
		}
	}
	return nil
}

// lineHasQueuedRead reports whether any queued read in the bank targets
// the line.
//
//burstmem:hotpath
func (s *burstSched) lineHasQueuedRead(st *bankState, line uint64, lineBytes int) bool {
	for _, bg := range st.bursts {
		for rd := bg.reads.Front(); rd != nil; rd = rd.Next() {
			if rd.LineAddr(lineBytes) == line {
				return true
			}
		}
	}
	return false
}

// rowHitWrite returns the oldest write to the bank's piggyback row, or
// nil. Writes whose line a queued read still wants are skipped (a read to
// the same row may have formed a fresh burst after the piggyback window
// opened; letting the write pass it would be a WAR hazard).
//
//burstmem:hotpath
func (s *burstSched) rowHitWrite(st *bankState, wq *memctrl.AccessList) *memctrl.Access {
	lineBytes := s.host.Config().Geometry.LineBytes
	for w := wq.Front(); w != nil; w = w.Next() {
		if w.Loc.Row != st.lastRow {
			continue
		}
		if s.lineHasQueuedRead(st, w.LineAddr(lineBytes), lineBytes) {
			continue
		}
		return w
	}
	return nil
}

// schedule is the transaction scheduler subroutine (paper Fig. 6) driven by
// the static priority of paper Table 2. The engine classifies every
// unblocked bank into the four (column/row)×(read/write) masks; walking
// them from priority 1 to 8 finds the winner without computing a priority
// value per candidate — the first nonempty class holds it, and only the
// oldest-arrival tie-break within that class needs per-bank work. When
// nothing is unblocked, last bank/rank move to the bank holding the oldest
// access so its burst starts next (Fig. 6 lines 14-15).
//
//burstmem:hotpath
func (s *burstSched) schedule(now uint64) {
	cl, any := s.engine.Unblocked(now)
	if !any {
		if r, b, ok := s.engine.OldestOngoing(); ok {
			s.lastRank = r
			s.lastBank = s.flatBank(r, b)
		}
		return
	}
	var rank, bank, pri int
	if s.opt.NaivePriority {
		rank, bank = s.oldestUnblocked(cl)
	} else {
		rank, bank, pri = s.pickTable2(cl)
	}
	c := s.engine.CandidateAt(rank, bank)
	s.engine.Issue(c, now)
	s.host.Tracer().SchedPick(now, s.host.ChannelIndex(), c.Rank, c.Bank,
		c.Access.ID, pri, cmdEventKind(c.Cmd))
	s.lastRank = c.Rank
	s.lastBank = s.flatBank(c.Rank, c.Bank)
}

// pickTable2 walks the Table 2 classes from priority 1 (column read, same
// bank) to 8 (column write, other rank) and picks the first nonempty one's
// oldest bank. Same-priority arrival ties resolve to the lowest rank/bank,
// matching the rank-major candidate scan this replaces.
//
//burstmem:hotpath
func (s *burstSched) pickTable2(cl *memctrl.BankClasses) (rank, bank, pri int) {
	if lr := s.lastRank; lr >= 0 {
		lastBit := uint64(1) << uint(s.lastBank-lr*s.host.Channel().Banks())
		if cl.ColRead[lr]&lastBit != 0 {
			return lr, bits.TrailingZeros64(lastBit), 1
		}
		if m := cl.ColRead[lr] &^ lastBit; m != 0 {
			return lr, s.oldestInMask(lr, m), 2
		}
		if cl.ColWrite[lr]&lastBit != 0 {
			return lr, bits.TrailingZeros64(lastBit), 3
		}
		if m := cl.ColWrite[lr] &^ lastBit; m != 0 {
			return lr, s.oldestInMask(lr, m), 4
		}
	}
	// Row transactions rank 5/6 wherever they are — precharge and
	// activate overlap freely, no data bus needed.
	if r, b, ok := s.oldestInClass(cl.RowRead, -1); ok {
		return r, b, 5
	}
	if r, b, ok := s.oldestInClass(cl.RowWrite, -1); ok {
		return r, b, 6
	}
	// Columns on other ranks pay the rank-to-rank turnaround: last.
	if r, b, ok := s.oldestInClass(cl.ColRead, s.lastRank); ok {
		return r, b, 7
	}
	if r, b, ok := s.oldestInClass(cl.ColWrite, s.lastRank); ok {
		return r, b, 8
	}
	panic("core: class walk found no unblocked bank despite Unblocked reporting one")
}

// oldestUnblocked picks the oldest unblocked bank regardless of class (the
// NaivePriority ablation).
//
//burstmem:hotpath
func (s *burstSched) oldestUnblocked(cl *memctrl.BankClasses) (int, int) {
	bestR, bestB := -1, -1
	var bestArrival uint64
	for r := range cl.ColRead {
		for m := cl.Rank(r); m != 0; m &= m - 1 {
			b := bits.TrailingZeros64(m)
			if a := s.engine.Ongoing(r, b); bestR < 0 || a.Arrival < bestArrival {
				bestR, bestB, bestArrival = r, b, a.Arrival
			}
		}
	}
	return bestR, bestB
}

// oldestInMask returns the rank's bank with the oldest ongoing access among
// the mask's banks (the mask must be nonempty).
//
//burstmem:hotpath
func (s *burstSched) oldestInMask(rank int, mask uint64) int {
	best := -1
	var bestArrival uint64
	for m := mask; m != 0; m &= m - 1 {
		b := bits.TrailingZeros64(m)
		if a := s.engine.Ongoing(rank, b); best < 0 || a.Arrival < bestArrival {
			best, bestArrival = b, a.Arrival
		}
	}
	return best
}

// oldestInClass returns the class's oldest bank across ranks (skipRank
// excluded; pass -1 to scan every rank).
//
//burstmem:hotpath
func (s *burstSched) oldestInClass(masks []uint64, skipRank int) (int, int, bool) {
	bestR, bestB := -1, -1
	var bestArrival uint64
	for r, mask := range masks {
		if r == skipRank {
			continue
		}
		for m := mask; m != 0; m &= m - 1 {
			b := bits.TrailingZeros64(m)
			if a := s.engine.Ongoing(r, b); bestR < 0 || a.Arrival < bestArrival {
				bestR, bestB, bestArrival = r, b, a.Arrival
			}
		}
	}
	return bestR, bestB, bestR >= 0
}

// cmdEventKind maps a DRAM command to its trace event kind.
//
//burstmem:hotpath
func cmdEventKind(c dram.Cmd) trace.Kind {
	switch c {
	case dram.CmdPrecharge:
		return trace.EvPrecharge
	case dram.CmdActivate:
		return trace.EvActivate
	case dram.CmdRead:
		return trace.EvRead
	case dram.CmdWrite:
		return trace.EvWrite
	case dram.CmdRefresh:
		return trace.EvRefresh
	}
	panic("core: unreachable command in cmdEventKind")
}

func (s *burstSched) flatBank(rank, bank int) int {
	return rank*s.host.Channel().Banks() + bank
}

