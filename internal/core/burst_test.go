package core

import (
	"testing"

	"burstmem/internal/addrmap"
	"burstmem/internal/dram"
	"burstmem/internal/mctest"
	"burstmem/internal/memctrl"
)

func fig1Config() memctrl.Config {
	cfg := mctest.SmallConfig(dram.Figure1Timing())
	g := cfg.Geometry
	g.Banks = 2
	cfg.Geometry = g
	return cfg
}

// TestFigure1OutOfOrder reproduces paper Figure 1(b): the same four reads
// that take 28 cycles strictly in order (see the dram package test) finish
// in about 16 cycles under burst scheduling, because access3 is reordered
// ahead of access2 (turning its row conflict into a row hit) and
// transactions interleave across banks.
func TestFigure1OutOfOrder(t *testing.T) {
	r, err := mctest.NewRunner(fig1Config(), Burst())
	if err != nil {
		t.Fatal(err)
	}
	seq := []addrmap.Loc{
		{Bank: 0, Row: 0}, // access0: row empty
		{Bank: 1, Row: 0}, // access1: row empty
		{Bank: 0, Row: 1}, // access2: row conflict
		{Bank: 0, Row: 0}, // access3: joins access0's burst -> row hit
	}
	var accs []*memctrl.Access
	for _, loc := range seq {
		a, err := r.SubmitLoc(memctrl.KindRead, loc)
		if err != nil {
			t.Fatal(err)
		}
		accs = append(accs, a)
	}
	end, err := r.RunUntilDrained(1000)
	if err != nil {
		t.Fatal(err)
	}
	if end > 17 {
		t.Errorf("out-of-order completion = %d cycles, paper Figure 1(b) shows ~16", end)
	}
	// Access3 must be reordered before access2 and become a row hit.
	if r.DoneAt[accs[3].ID] >= r.DoneAt[accs[2].ID] {
		t.Errorf("access3 (%d) not reordered ahead of access2 (%d)",
			r.DoneAt[accs[3].ID], r.DoneAt[accs[2].ID])
	}
	if accs[3].Outcome != dram.RowHit {
		t.Errorf("access3 outcome = %v, want row hit via burst clustering", accs[3].Outcome)
	}
	if accs[2].Outcome != dram.RowConflict {
		t.Errorf("access2 outcome = %v, want row conflict", accs[2].Outcome)
	}
}

// TestBurstClustering: reads to one row form a single burst whose data
// transfers are back to back on the data bus.
func TestBurstClustering(t *testing.T) {
	cfg := mctest.SmallConfig(noRefresh(dram.DDR2_800()))
	r, err := mctest.NewRunner(cfg, Burst())
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	var accs []*memctrl.Access
	for i := 0; i < n; i++ {
		a, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 1, Row: 7, Col: uint32(i)})
		if err != nil {
			t.Fatal(err)
		}
		accs = append(accs, a)
	}
	if _, err := r.RunUntilDrained(10000); err != nil {
		t.Fatal(err)
	}
	// First access is a row empty; the rest are hits.
	if accs[0].Outcome != dram.RowEmpty {
		t.Errorf("first access outcome %v, want row empty", accs[0].Outcome)
	}
	gap := uint64(cfg.Timing.DataCycles())
	for i := 1; i < n; i++ {
		if accs[i].Outcome != dram.RowHit {
			t.Errorf("access %d outcome %v, want row hit", i, accs[i].Outcome)
		}
		if accs[i].DataEnd != accs[i-1].DataEnd+gap {
			t.Errorf("access %d data end %d, want back-to-back %d",
				i, accs[i].DataEnd, accs[i-1].DataEnd+gap)
		}
	}
}

func noRefresh(t dram.Timing) dram.Timing {
	t.TREFI = 0
	return t
}

// TestWritesWaitForReads: with no piggybacking and an unsaturated write
// queue, queued writes to a bank run only after that bank's reads drain.
func TestWritesWaitForReads(t *testing.T) {
	cfg := mctest.SmallConfig(noRefresh(dram.DDR2_800()))
	r, err := mctest.NewRunner(cfg, Burst())
	if err != nil {
		t.Fatal(err)
	}
	w, err := r.SubmitLoc(memctrl.KindWrite, addrmap.Loc{Bank: 0, Row: 1, Col: 0})
	if err != nil {
		t.Fatal(err)
	}
	var reads []*memctrl.Access
	for i := 0; i < 4; i++ {
		a, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 2, Col: uint32(i)})
		if err != nil {
			t.Fatal(err)
		}
		reads = append(reads, a)
	}
	if _, err := r.RunUntilDrained(10000); err != nil {
		t.Fatal(err)
	}
	for i, rd := range reads {
		if r.DoneAt[rd.ID] >= r.DoneAt[w.ID] {
			t.Errorf("read %d completed at %d, after the older write at %d",
				i, r.DoneAt[rd.ID], r.DoneAt[w.ID])
		}
	}
}

// TestReadPreemption: an ongoing write is interrupted by a newly arrived
// read under Burst_RP, and the preempted write still completes correctly.
func TestReadPreemption(t *testing.T) {
	cfg := mctest.SmallConfig(noRefresh(dram.DDR2_800()))
	r, err := mctest.NewRunner(cfg, BurstRP())
	if err != nil {
		t.Fatal(err)
	}
	w, err := r.SubmitLoc(memctrl.KindWrite, addrmap.Loc{Bank: 0, Row: 1, Col: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Let the write become ongoing and issue its activate, but arrive
	// with the read before its column can issue (tRCD window).
	r.Step(3)
	rd, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 2, Col: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunUntilDrained(10000); err != nil {
		t.Fatal(err)
	}
	mech := mechOf(t, r)
	if mech.Stats.Preemptions == 0 {
		t.Fatal("no preemption recorded")
	}
	if r.DoneAt[rd.ID] >= r.DoneAt[w.ID] {
		t.Errorf("read at %d did not beat preempted write at %d", r.DoneAt[rd.ID], r.DoneAt[w.ID])
	}
}

// TestPreemptedWriteMakesRowEmpty reproduces the paper's Section 5.2
// observation: a write interrupted after precharging but before activating
// leaves the bank closed, so the preempting read observes a row empty.
func TestPreemptedWriteMakesRowEmpty(t *testing.T) {
	cfg := mctest.SmallConfig(noRefresh(dram.DDR2_800()))
	r, err := mctest.NewRunner(cfg, BurstRP())
	if err != nil {
		t.Fatal(err)
	}
	// Open row 5 with a read, then send a conflicting write which must
	// precharge first.
	if _, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 5, Col: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunUntilDrained(10000); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SubmitLoc(memctrl.KindWrite, addrmap.Loc{Bank: 0, Row: 1, Col: 0}); err != nil {
		t.Fatal(err)
	}
	// Step until the write's precharge has closed the bank (its activate
	// is still tRP away), then arrive with the read.
	for i := 0; ; i++ {
		if _, open := r.Ctrl.Channel(0).OpenRow(0, 0); !open {
			break
		}
		if i > 100 {
			t.Fatal("write never precharged the bank")
		}
		r.Step(1)
	}
	rd, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 6, Col: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunUntilDrained(10000); err != nil {
		t.Fatal(err)
	}
	if rd.Outcome != dram.RowEmpty {
		t.Errorf("preempting read outcome = %v, want row empty (bank precharged by interrupted write)", rd.Outcome)
	}
}

// TestWritePiggybacking: with Burst_WP, a write to the burst's row runs
// immediately after the burst as a row hit, ahead of reads to other rows.
func TestWritePiggybacking(t *testing.T) {
	cfg := mctest.SmallConfig(noRefresh(dram.DDR2_800()))
	r, err := mctest.NewRunner(cfg, BurstWP())
	if err != nil {
		t.Fatal(err)
	}
	// A burst of two reads to row 3, a write to row 3 (qualified) and a
	// read to row 9 (next burst).
	for i := 0; i < 2; i++ {
		if _, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 3, Col: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	w, err := r.SubmitLoc(memctrl.KindWrite, addrmap.Loc{Bank: 0, Row: 3, Col: 7})
	if err != nil {
		t.Fatal(err)
	}
	other, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 9, Col: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunUntilDrained(10000); err != nil {
		t.Fatal(err)
	}
	mech := mechOf(t, r)
	if mech.Stats.PiggybackedWrites == 0 {
		t.Fatal("no write piggybacked")
	}
	if w.Outcome != dram.RowHit {
		t.Errorf("piggybacked write outcome = %v, want row hit", w.Outcome)
	}
	if r.DoneAt[w.ID] >= r.DoneAt[other.ID] {
		t.Errorf("piggybacked write at %d should finish before the next burst's read at %d",
			r.DoneAt[w.ID], r.DoneAt[other.ID])
	}
}

// TestBurstOrderingFIFO: bursts within a bank are served in arrival order
// of their first access, preventing starvation of small bursts.
func TestBurstOrderingFIFO(t *testing.T) {
	cfg := mctest.SmallConfig(noRefresh(dram.DDR2_800()))
	r, err := mctest.NewRunner(cfg, Burst())
	if err != nil {
		t.Fatal(err)
	}
	small, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 1, Col: 0})
	if err != nil {
		t.Fatal(err)
	}
	r.Step(1)
	// A bigger, younger burst to another row of the same bank.
	var big []*memctrl.Access
	for i := 0; i < 4; i++ {
		a, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 2, Col: uint32(i)})
		if err != nil {
			t.Fatal(err)
		}
		big = append(big, a)
	}
	if _, err := r.RunUntilDrained(10000); err != nil {
		t.Fatal(err)
	}
	for _, a := range big {
		if r.DoneAt[small.ID] >= r.DoneAt[a.ID] {
			t.Fatalf("older single-access burst (done %d) starved by younger burst (done %d)",
				r.DoneAt[small.ID], r.DoneAt[a.ID])
		}
	}
}

// TestRAWForwarding: a read to a pending write's line is satisfied from the
// write queue and completes in ForwardLatency cycles.
func TestRAWForwarding(t *testing.T) {
	cfg := mctest.SmallConfig(noRefresh(dram.DDR2_800()))
	r, err := mctest.NewRunner(cfg, Burst())
	if err != nil {
		t.Fatal(err)
	}
	loc := addrmap.Loc{Bank: 2, Row: 4, Col: 9}
	// Keep the bank busy so the write stays queued.
	for i := 0; i < 8; i++ {
		if _, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 2, Row: 1, Col: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.SubmitLoc(memctrl.KindWrite, loc); err != nil {
		t.Fatal(err)
	}
	rd, err := r.SubmitLoc(memctrl.KindRead, loc)
	if err != nil {
		t.Fatal(err)
	}
	if !rd.Forwarded {
		t.Fatal("read to pending write line was not forwarded")
	}
	if _, err := r.RunUntilDrained(10000); err != nil {
		t.Fatal(err)
	}
	if got, want := rd.DataEnd-rd.Arrival, uint64(cfg.ForwardLatency); got != want {
		t.Errorf("forwarded read latency = %d, want %d", got, want)
	}
	if r.Ctrl.Stats.ForwardedReads != 1 {
		t.Errorf("forwarded reads = %d, want 1", r.Ctrl.Stats.ForwardedReads)
	}
}

// TestThresholdSwitch: under Burst_TH, preemption happens below the
// threshold and piggybacking above it.
func TestThresholdSwitch(t *testing.T) {
	cfg := mctest.SmallConfig(noRefresh(dram.DDR2_800()))
	cfg.MaxWrites = 8
	r, err := mctest.NewRunner(cfg, BurstTH(4))
	if err != nil {
		t.Fatal(err)
	}
	// Fill the write queue beyond the threshold with same-row writes.
	for i := 0; i < 6; i++ {
		if _, err := r.SubmitLoc(memctrl.KindWrite, addrmap.Loc{Bank: 0, Row: 3, Col: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// One read burst to the same bank and row.
	if _, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 3, Col: 30}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunUntilDrained(20000); err != nil {
		t.Fatal(err)
	}
	mech := mechOf(t, r)
	if mech.Stats.PiggybackedWrites == 0 {
		t.Errorf("above threshold: expected piggybacked writes, stats = %+v", mech.Stats)
	}
}

// TestBurstStatsCounts sanity-checks the burst statistics counters.
func TestBurstStatsCounts(t *testing.T) {
	cfg := mctest.SmallConfig(noRefresh(dram.DDR2_800()))
	r, err := mctest.NewRunner(cfg, Burst())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 1, Col: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 2, Col: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunUntilDrained(10000); err != nil {
		t.Fatal(err)
	}
	mech := mechOf(t, r)
	if mech.Stats.BurstsFormed != 2 {
		t.Errorf("bursts formed = %d, want 2", mech.Stats.BurstsFormed)
	}
	if mech.Stats.ReadsJoinedBursts != 2 {
		t.Errorf("reads joined = %d, want 2", mech.Stats.ReadsJoinedBursts)
	}
	if mech.Stats.MaxBurstLen != 3 {
		t.Errorf("max burst length = %d, want 3", mech.Stats.MaxBurstLen)
	}
}

// TestVariantNames checks Table 4 naming.
func TestVariantNames(t *testing.T) {
	cfg := mctest.SmallConfig(noRefresh(dram.DDR2_800()))
	for _, tc := range []struct {
		factory memctrl.Factory
		want    string
	}{
		{Burst(), "Burst"},
		{BurstRP(), "Burst_RP"},
		{BurstWP(), "Burst_WP"},
		{BurstTH(52), "Burst_TH52"},
	} {
		r, err := mctest.NewRunner(cfg, tc.factory)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.Ctrl.MechanismName(); got != tc.want {
			t.Errorf("name = %q, want %q", got, tc.want)
		}
	}
}

// mechOf extracts the burst mechanism from a single-channel test runner.
func mechOf(t *testing.T, r *mctest.Runner) *burstSched {
	t.Helper()
	m, ok := r.Ctrl.Mechanism(0).(*burstSched)
	if !ok {
		t.Fatalf("mechanism is %T, want *burstSched", r.Ctrl.Mechanism(0))
	}
	return m
}
