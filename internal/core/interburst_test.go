package core

import (
	"testing"

	"burstmem/internal/addrmap"
	"burstmem/internal/dram"
	"burstmem/internal/mctest"
	"burstmem/internal/memctrl"
)

// TestLargestBurstFirst: under the size policy, a younger large burst is
// served before an older single-access burst (within the aging limit).
func TestLargestBurstFirst(t *testing.T) {
	cfg := mctest.SmallConfig(noRefresh(dram.DDR2_800()))
	r, err := mctest.NewRunner(cfg, BurstSized())
	if err != nil {
		t.Fatal(err)
	}
	// Hold the bank busy so both bursts are queued before any read
	// installs: a write occupies the bank first (no reads pending yet).
	if _, err := r.SubmitLoc(memctrl.KindWrite, addrmap.Loc{Bank: 0, Row: 9, Col: 0}); err != nil {
		t.Fatal(err)
	}
	r.Step(1) // the write becomes ongoing
	small, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 1, Col: 0})
	if err != nil {
		t.Fatal(err)
	}
	var big []*memctrl.Access
	for i := 0; i < 4; i++ {
		a, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 2, Col: uint32(i)})
		if err != nil {
			t.Fatal(err)
		}
		big = append(big, a)
	}
	if _, err := r.RunUntilDrained(100000); err != nil {
		t.Fatal(err)
	}
	for i, a := range big {
		if r.DoneAt[a.ID] >= r.DoneAt[small.ID] {
			t.Fatalf("large burst access %d (done %d) did not beat the older single burst (done %d)",
				i, r.DoneAt[a.ID], r.DoneAt[small.ID])
		}
	}
}

// TestLargestBurstFirstAgingGuard: a burst older than the starvation limit
// goes first even when a larger burst exists.
func TestLargestBurstFirstAgingGuard(t *testing.T) {
	cfg := mctest.SmallConfig(noRefresh(dram.DDR2_800()))
	factory := func(h *memctrl.Host) memctrl.Mechanism {
		return newBurst(h, "Burst_SZ_test", Options{
			ReadPreemption:    true,
			WritePiggyback:    true,
			Threshold:         cfg.MaxWrites,
			LargestBurstFirst: true,
			StarvationLimit:   50,
		})
	}
	r, err := mctest.NewRunner(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.SubmitLoc(memctrl.KindWrite, addrmap.Loc{Bank: 0, Row: 9, Col: 0}); err != nil {
		t.Fatal(err)
	}
	r.Step(1)
	old, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 1, Col: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Age the single burst past the limit while the bank drains the
	// write (no other reads yet, so the old burst starts; make the bank
	// busy with writes to keep it queued).
	for i := 0; i < 3; i++ {
		if _, err := r.SubmitLoc(memctrl.KindWrite, addrmap.Loc{Bank: 0, Row: 9, Col: uint32(1 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	r.Step(60) // exceed the starvation limit
	var big []*memctrl.Access
	for i := 0; i < 4; i++ {
		a, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 2, Col: uint32(i)})
		if err != nil {
			t.Fatal(err)
		}
		big = append(big, a)
	}
	if _, err := r.RunUntilDrained(100000); err != nil {
		t.Fatal(err)
	}
	if r.DoneAt[old.ID] >= r.DoneAt[big[0].ID] {
		t.Fatalf("aged burst (done %d) was starved by the larger burst (first done %d)",
			r.DoneAt[old.ID], r.DoneAt[big[0].ID])
	}
}

// TestBurstDrainNotInterrupted: once a burst starts draining, a larger
// burst arriving does not steal the bank mid-burst (row hits stay back to
// back).
func TestBurstDrainNotInterrupted(t *testing.T) {
	cfg := mctest.SmallConfig(noRefresh(dram.DDR2_800()))
	r, err := mctest.NewRunner(cfg, BurstSized())
	if err != nil {
		t.Fatal(err)
	}
	var first []*memctrl.Access
	for i := 0; i < 3; i++ {
		a, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 1, Col: uint32(i)})
		if err != nil {
			t.Fatal(err)
		}
		first = append(first, a)
	}
	r.Step(8) // burst 1 starts draining
	var second []*memctrl.Access
	for i := 0; i < 6; i++ {
		a, err := r.SubmitLoc(memctrl.KindRead, addrmap.Loc{Bank: 0, Row: 2, Col: uint32(i)})
		if err != nil {
			t.Fatal(err)
		}
		second = append(second, a)
	}
	if _, err := r.RunUntilDrained(100000); err != nil {
		t.Fatal(err)
	}
	for _, a := range first {
		if r.DoneAt[a.ID] >= r.DoneAt[second[0].ID] {
			t.Fatalf("draining burst interrupted: first-burst access done %d after second burst began %d",
				r.DoneAt[a.ID], r.DoneAt[second[0].ID])
		}
	}
}
