package core

import (
	"testing"

	"burstmem/internal/addrmap"
	"burstmem/internal/dram"
	"burstmem/internal/mctest"
	"burstmem/internal/memctrl"
	"burstmem/internal/xrand"
)

func dynMech(t *testing.T, r *mctest.Runner) *burstSched {
	t.Helper()
	m, ok := r.Ctrl.Mechanism(0).(*burstSched)
	if !ok {
		t.Fatalf("mechanism is %T", r.Ctrl.Mechanism(0))
	}
	return m
}

// feed drives a runner with a read/write mix at the given write share for
// n submissions.
func feed(t *testing.T, r *mctest.Runner, writeShare float64, n int, seed uint64) {
	t.Helper()
	rng := xrand.New(seed)
	for i := 0; i < n; i++ {
		r.Step(4)
		kind := memctrl.KindRead
		if rng.Bool(writeShare) {
			kind = memctrl.KindWrite
		}
		if !r.Ctrl.CanAccept(kind) {
			continue
		}
		loc := addrmap.Loc{
			Bank: uint8(rng.Intn(4)),
			Row:  uint32(rng.Intn(16)),
			Col:  uint32(rng.Intn(32)),
		}
		if _, err := r.SubmitLoc(kind, loc); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDynamicThresholdAdapts: a write-heavy phase lowers the threshold, a
// read-heavy phase raises it back.
func TestDynamicThresholdAdapts(t *testing.T) {
	cfg := mctest.SmallConfig(noRefresh(dram.DDR2_800()))
	cfg.MaxWrites = 32
	r, err := mctest.NewRunner(cfg, BurstDynTH())
	if err != nil {
		t.Fatal(err)
	}
	m := dynMech(t, r)
	start := m.CurrentThreshold()
	if start != cfg.MaxWrites/2 {
		t.Fatalf("initial threshold %d, want %d", start, cfg.MaxWrites/2)
	}

	// Write-heavy phase: threshold must drop below the start value.
	feed(t, r, 0.7, 800, 1)
	if _, err := r.RunUntilDrained(1_000_000); err != nil {
		t.Fatal(err)
	}
	low := m.CurrentThreshold()
	if low >= start {
		t.Fatalf("threshold %d did not drop under write-heavy traffic (start %d)", low, start)
	}
	if m.Stats.ThresholdAdaptations == 0 {
		t.Fatal("no adaptations recorded")
	}

	// Read-heavy phase: threshold must rise again.
	feed(t, r, 0.02, 800, 2)
	if _, err := r.RunUntilDrained(1_000_000); err != nil {
		t.Fatal(err)
	}
	high := m.CurrentThreshold()
	if high <= low {
		t.Fatalf("threshold %d did not rise under read-heavy traffic (low was %d)", high, low)
	}
}

// TestDynamicThresholdBounds: the adapted threshold stays within
// [minDynamicThreshold, MaxWrites] under extreme mixes.
func TestDynamicThresholdBounds(t *testing.T) {
	cfg := mctest.SmallConfig(noRefresh(dram.DDR2_800()))
	cfg.MaxWrites = 16
	for _, writeShare := range []float64{0, 1} {
		r, err := mctest.NewRunner(cfg, BurstDynTH())
		if err != nil {
			t.Fatal(err)
		}
		m := dynMech(t, r)
		feed(t, r, writeShare, 600, 3)
		if _, err := r.RunUntilDrained(1_000_000); err != nil {
			t.Fatal(err)
		}
		th := m.CurrentThreshold()
		if th < minDynamicThreshold || th > cfg.MaxWrites {
			t.Fatalf("writeShare %v: threshold %d out of [%d, %d]",
				writeShare, th, minDynamicThreshold, cfg.MaxWrites)
		}
	}
}

// TestDynamicIdleIntervalKeepsThreshold: with no arrivals, the threshold
// stays put instead of decaying on empty statistics.
func TestDynamicIdleIntervalKeepsThreshold(t *testing.T) {
	cfg := mctest.SmallConfig(noRefresh(dram.DDR2_800()))
	r, err := mctest.NewRunner(cfg, BurstDynTH())
	if err != nil {
		t.Fatal(err)
	}
	m := dynMech(t, r)
	feed(t, r, 0.6, 400, 4)
	if _, err := r.RunUntilDrained(1_000_000); err != nil {
		t.Fatal(err)
	}
	adapted := m.CurrentThreshold()
	r.Step(3 * AdaptInterval) // idle
	if got := m.CurrentThreshold(); got != adapted {
		t.Fatalf("idle interval changed threshold %d -> %d", adapted, got)
	}
}
