package cpu

import (
	"testing"

	"burstmem/internal/cache"
	"burstmem/internal/workload"
)

// scriptGen replays a fixed op sequence, then pads with non-memory ops.
type scriptGen struct {
	ops []workload.Op
	i   int
}

func (g *scriptGen) Name() string { return "script" }
func (g *scriptGen) Next() workload.Op {
	if g.i < len(g.ops) {
		op := g.ops[g.i]
		g.i++
		return op
	}
	return workload.Op{Type: workload.OpNonMem}
}

// stubMem is a scriptable memory port: every access misses and completes
// when the test calls release (or hits immediately when latency == 0).
type stubMem struct {
	pending []func()
	blocked bool
	hitAll  bool

	loads, stores int
}

func (m *stubMem) Access(addr uint64, isWrite bool, done func()) cache.Result {
	if m.blocked {
		return cache.Blocked
	}
	if isWrite {
		m.stores++
	} else {
		m.loads++
	}
	if m.hitAll {
		return cache.Hit
	}
	m.pending = append(m.pending, done)
	return cache.Miss
}

func (m *stubMem) release() {
	p := m.pending
	m.pending = nil
	for _, fn := range p {
		if fn != nil {
			fn()
		}
	}
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.L1Latency = 0
	return cfg
}

func newCPU(t *testing.T, cfg Config, gen workload.Generator, mem Mem) *CPU {
	t.Helper()
	c, err := New(cfg, gen, mem)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.ROBSize = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero ROB accepted")
	}
	if _, err := New(bad, &scriptGen{}, &stubMem{}); err == nil {
		t.Fatal("New accepted invalid config")
	}
}

// TestNonMemThroughput: pure compute retires at full width.
func TestNonMemThroughput(t *testing.T) {
	c := newCPU(t, testConfig(), &scriptGen{}, &stubMem{hitAll: true})
	for i := 0; i < 100; i++ {
		c.Tick()
	}
	// Width 8, 100 cycles, minus pipeline fill.
	if c.Retired() < 8*99-16 {
		t.Fatalf("retired %d of ~%d", c.Retired(), 8*100)
	}
	if got := c.Stats.IPC(); got < 7.5 {
		t.Fatalf("IPC %v, want ~8 on pure compute", got)
	}
}

// TestLoadMissBlocksRetirement: an incomplete load at the ROB head stalls
// retirement until the miss returns.
func TestLoadMissBlocksRetirement(t *testing.T) {
	mem := &stubMem{}
	gen := &scriptGen{ops: []workload.Op{{Type: workload.OpLoad, Addr: 0x1000}}}
	c := newCPU(t, testConfig(), gen, mem)
	for i := 0; i < 50; i++ {
		c.Tick()
	}
	// The load is at the head, incomplete: only instructions before it
	// retired (none), so retirement is stuck at 0.
	if c.Retired() != 0 {
		t.Fatalf("retired %d with load outstanding", c.Retired())
	}
	if c.Stats.HeadLoadStalls == 0 {
		t.Fatal("head-load stalls not counted")
	}
	mem.release()
	for i := 0; i < 10; i++ {
		c.Tick()
	}
	if c.Retired() == 0 {
		t.Fatal("retirement did not resume after fill")
	}
}

// TestMLP: independent load misses issue concurrently (ROB window exposes
// memory-level parallelism).
func TestMLP(t *testing.T) {
	mem := &stubMem{}
	var ops []workload.Op
	for i := 0; i < 16; i++ {
		ops = append(ops, workload.Op{Type: workload.OpLoad, Addr: uint64(i) << 12})
	}
	c := newCPU(t, testConfig(), &scriptGen{ops: ops}, mem)
	for i := 0; i < 10; i++ {
		c.Tick()
	}
	if len(mem.pending) < 16 {
		t.Fatalf("%d concurrent misses, want 16 (no MLP)", len(mem.pending))
	}
}

// TestDependentLoadsSerialize: chase loads wait for the previous load.
func TestDependentLoadsSerialize(t *testing.T) {
	mem := &stubMem{}
	ops := []workload.Op{
		{Type: workload.OpLoad, Addr: 0x1000},
		{Type: workload.OpLoad, Addr: 0x2000, DepOnPrevLoad: true},
		{Type: workload.OpLoad, Addr: 0x3000, DepOnPrevLoad: true},
	}
	c := newCPU(t, testConfig(), &scriptGen{ops: ops}, mem)
	for i := 0; i < 20; i++ {
		c.Tick()
	}
	if len(mem.pending) != 1 {
		t.Fatalf("%d outstanding, want 1 (chain serialized)", len(mem.pending))
	}
	mem.release()
	for i := 0; i < 20; i++ {
		c.Tick()
	}
	if len(mem.pending) != 1 {
		t.Fatalf("%d outstanding after first fill, want 1 (second link)", len(mem.pending))
	}
}

// TestLSQBoundsOutstandingFetches: distinct outstanding misses are capped
// by LSQSize.
func TestLSQBoundsOutstandingFetches(t *testing.T) {
	mem := &stubMem{}
	cfg := testConfig()
	cfg.LSQSize = 4
	cfg.ROBSize = 64
	var ops []workload.Op
	for i := 0; i < 32; i++ {
		ops = append(ops, workload.Op{Type: workload.OpLoad, Addr: uint64(i) << 12})
	}
	c := newCPU(t, cfg, &scriptGen{ops: ops}, mem)
	for i := 0; i < 20; i++ {
		c.Tick()
	}
	if len(mem.pending) != 4 {
		t.Fatalf("%d outstanding fetches, want LSQ limit 4", len(mem.pending))
	}
}

// TestStoreBufferBackpressure: when the memory port blocks stores, the
// store buffer fills and retirement of stores stalls.
func TestStoreBufferBackpressure(t *testing.T) {
	mem := &stubMem{hitAll: true}
	cfg := testConfig()
	cfg.StoreBufSize = 2
	var ops []workload.Op
	for i := 0; i < 32; i++ {
		ops = append(ops, workload.Op{Type: workload.OpStore, Addr: uint64(i) << 12})
	}
	c := newCPU(t, cfg, &scriptGen{ops: ops}, mem)
	c.Tick()
	mem.blocked = true // memory refuses: writeback path saturated
	for i := 0; i < 50; i++ {
		c.Tick()
	}
	if c.Stats.StoreBufFullStalls == 0 {
		t.Fatal("store-buffer stalls not observed under blocked memory")
	}
	before := c.Retired()
	mem.blocked = false
	for i := 0; i < 50; i++ {
		c.Tick()
	}
	if c.Retired() <= before {
		t.Fatal("retirement did not resume after unblocking")
	}
}

// TestROBFullStalls: a never-completing load eventually fills the ROB and
// dispatch stops.
func TestROBFullStalls(t *testing.T) {
	mem := &stubMem{}
	gen := &scriptGen{ops: []workload.Op{{Type: workload.OpLoad, Addr: 0x1000}}}
	cfg := testConfig()
	cfg.ROBSize = 16
	c := newCPU(t, cfg, gen, mem)
	for i := 0; i < 50; i++ {
		c.Tick()
	}
	if c.Stats.ROBFullCycles == 0 {
		t.Fatal("ROB-full stalls not counted")
	}
}

// TestResetStatsKeepsTiming: resetting statistics does not disturb
// in-flight timing.
func TestResetStatsKeepsTiming(t *testing.T) {
	mem := &stubMem{hitAll: true}
	cfg := testConfig()
	cfg.L1Latency = 3
	c := newCPU(t, cfg, &scriptGen{ops: []workload.Op{{Type: workload.OpLoad, Addr: 64}}}, mem)
	c.Tick() // load issues; completion deferred 3 cycles
	c.ResetStats()
	for i := 0; i < 10; i++ {
		c.Tick()
	}
	if c.Retired() == 0 {
		t.Fatal("deferred completion lost across ResetStats")
	}
	if c.Stats.Cycles != 10 {
		t.Fatalf("cycles after reset = %d, want 10", c.Stats.Cycles)
	}
}

// TestQuiesced reports in-flight state correctly.
func TestQuiesced(t *testing.T) {
	mem := &stubMem{}
	c := newCPU(t, testConfig(), &scriptGen{ops: []workload.Op{{Type: workload.OpLoad, Addr: 64}}}, mem)
	if !c.Quiesced() {
		t.Fatal("fresh CPU should be quiesced")
	}
	c.Tick()
	if c.Quiesced() {
		t.Fatal("CPU with outstanding miss reported quiesced")
	}
	mem.release()
	for i := 0; i < 5; i++ {
		c.Tick()
	}
	if !c.Quiesced() {
		t.Fatal("CPU did not quiesce after fill")
	}
}
