// Package cpu implements the trace-driven out-of-order processor model of
// the baseline machine (paper Table 3): 8-wide, 196-entry ROB, 32-entry
// load/store queue, running at 4 GHz (ten CPU cycles per DDR2-800 memory
// cycle).
//
// The model reproduces the processor behaviours that access reordering
// results depend on, without executing an ISA:
//
//   - memory-level parallelism: independent loads in the ROB window issue
//     concurrently through non-blocking caches;
//   - load-latency coupling: an incomplete load at the ROB head blocks
//     retirement, so main-memory read latency translates into stall
//     cycles;
//   - dependent loads: pointer-chase workloads serialize, capping MLP;
//   - store-path back-pressure: stores retire through a bounded store
//     buffer; when cache writebacks saturate the memory controller's
//     write queue, the buffer fills and the pipeline stalls (the paper's
//     Section 5.1 mechanism).
package cpu

import (
	"fmt"

	"burstmem/internal/cache"
	"burstmem/internal/deque"
	"burstmem/internal/workload"
)

// Mem is the CPU's data-memory port (normally the L1 data cache).
type Mem interface {
	Access(addr uint64, isWrite bool, done func()) cache.Result
}

// Config describes the core (defaults per paper Table 3).
type Config struct {
	Width        int // issue/retire width per CPU cycle
	ROBSize      int
	LSQSize      int // outstanding issued-and-incomplete loads
	StoreBufSize int
	L1Latency    int // CPU cycles charged for an L1 hit
}

// DefaultConfig returns the Table 3 core: 4 GHz, 8-way, 196 ROB, 32 LSQ.
func DefaultConfig() Config {
	return Config{Width: 8, ROBSize: 196, LSQSize: 32, StoreBufSize: 32, L1Latency: 3}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Width < 1 || c.ROBSize < 1 || c.LSQSize < 1 || c.StoreBufSize < 1 {
		return fmt.Errorf("cpu: width/ROB/LSQ/store buffer must be positive: %+v", c)
	}
	if c.L1Latency < 0 {
		return fmt.Errorf("cpu: negative L1 latency")
	}
	return nil
}

// Stats reports execution statistics.
type Stats struct {
	Cycles  uint64
	Retired uint64

	LoadsIssued  uint64
	StoresQueued uint64

	ROBFullCycles      uint64 // dispatch stalled: ROB full
	StoreBufFullStalls uint64 // retirement stalled: store buffer full
	HeadLoadStalls     uint64 // retirement stalled: incomplete load at head
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// robEntry is one in-flight instruction.
type robEntry struct {
	typ     workload.OpType
	addr    uint64
	done    bool
	issued  bool
	counted bool // holds an LSQ (outstanding line fetch) slot
	lsqWait bool // last issue attempt failed on a full LSQ
	seq     uint64
	// depIdx/depSeq identify the load this load's address depends on (a
	// ROB slot plus its generation); it may not issue until that load
	// completes or its slot is recycled (which implies retirement).
	depIdx int
	depSeq uint64
}

type storeSlot struct {
	addr    uint64
	waiting bool // store missed; line fill in flight
	filled  bool // fill arrived; slot can pop
}

// CPU is the core model.
type CPU struct {
	cfg Config
	gen workload.Generator
	mem Mem

	rob        []robEntry
	head, tail int
	count      int
	seq        uint64

	// lastLoadIdx/lastLoadSeq identify the most recently dispatched load
	// (dependence target for pointer-chase ops).
	lastLoadIdx int
	lastLoadSeq uint64

	pendingIssue []int // ROB indices of loads awaiting issue
	lsqInFlight  int

	// Store buffer: a fixed ring of StoreBufSize slots. sbIssued counts
	// slots from the head that have already been issued to the cache.
	sb       []storeSlot
	sbHead   int
	sbLen    int
	sbIssued int

	// Prebuilt completion callbacks, one per physical slot, so the hot
	// issue paths never allocate a closure. A ROB slot (or store-buffer
	// slot) has at most one cache callback outstanding at a time: a slot
	// cannot recycle until its occupant completes, and completion requires
	// the callback to have fired. issuedSeq guards against stale firings.
	loadCB    []func()
	sbFillCB  []func()
	issuedSeq []uint64 // rob generation at last issue, per slot

	// replayIdle records that the last replay walk proved every pending
	// load is parked — waiting on a full LSQ or an unresolved dependence —
	// states only completeLoad can change. While set, replay (and the
	// matching SkipEligible walk) skips the list outright. Cleared by
	// completeLoad and by dispatch when it parks a new load.
	replayIdle bool
	// depWaiting counts pending loads parked on an unresolved dependence
	// (recomputed each replay walk). While replayIdle holds, completions
	// that free no LSQ slot can only matter if one of these exists.
	depWaiting int

	// stalled records that the last Tick ended SkipEligible: until an
	// external cache callback arrives, every subsequent Tick is a pure
	// stall whose only effects are the counters SkipCycles accounts, so
	// Tick short-circuits. Cleared by loadReturned and store-fill
	// callbacks (the only external unblock events).
	stalled bool

	// prober is mem's WouldAllocate view, resolved once at construction so
	// the load-issue path avoids a per-call interface assertion (nil when
	// the port does not support the query).
	prober allocProber

	now          uint64                    // internal cycle clock (never reset)
	totalRetired uint64                    // lifetime retirement count (never reset)
	delayQ       deque.Deque[deferredDone] // L1-hit completions (constant latency FIFO)

	Stats Stats
}

type deferredDone struct {
	at  uint64
	idx int
	seq uint64
}

// New builds a CPU over a workload generator and a memory port.
func New(cfg Config, gen workload.Generator, mem Mem) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &CPU{
		cfg:       cfg,
		gen:       gen,
		mem:       mem,
		rob:       make([]robEntry, cfg.ROBSize),
		sb:        make([]storeSlot, cfg.StoreBufSize),
		loadCB:    make([]func(), cfg.ROBSize),
		sbFillCB:  make([]func(), cfg.StoreBufSize),
		issuedSeq: make([]uint64, cfg.ROBSize),
	}
	c.prober, _ = mem.(allocProber)
	for i := range c.loadCB {
		i := i
		c.loadCB[i] = func() { c.loadReturned(i) }
	}
	for i := range c.sbFillCB {
		i := i
		c.sbFillCB[i] = func() {
			c.sb[i].filled = true
			c.stalled = false
		}
	}
	return c, nil
}

// Retired returns the lifetime retired instruction count (unaffected by
// ResetStats; Stats.Retired counts the current measurement window).
func (c *CPU) Retired() uint64 { return c.totalRetired }

// Cycles returns elapsed CPU cycles.
func (c *CPU) Cycles() uint64 { return c.Stats.Cycles }

// Tick advances one CPU cycle: drain the store buffer, fire L1-hit
// completions, retire, replay blocked loads, dispatch.
//
// While stalled (see the field comment), a full Tick provably performs
// exactly the SkipCycles(1) accounting — fireDelayed has nothing queued,
// drainStores has everything issued and no fill at the head, retire blocks
// on the head, replay only compacts already-dead entries, dispatch hits the
// full ROB — so it short-circuits to that.
//
//burstmem:hotpath
func (c *CPU) Tick() {
	if c.stalled {
		c.SkipCycles(1)
		return
	}
	c.now++
	c.Stats.Cycles++
	c.fireDelayed()
	c.drainStores()
	c.retire()
	c.replay()
	c.dispatch()
	c.stalled = c.SkipEligible()
}

func (c *CPU) fireDelayed() {
	for c.delayQ.Len() > 0 && c.delayQ.Front().at <= c.now {
		d := c.delayQ.PopFront()
		e := &c.rob[d.idx]
		if e.seq == d.seq {
			c.completeLoad(e)
		}
	}
}

// completeLoad marks a load done and releases its LSQ slot.
func (c *CPU) completeLoad(e *robEntry) {
	if e.done {
		return
	}
	e.done = true
	if e.counted {
		c.lsqInFlight--
		// An LSQ slot freed: parked loads can issue again.
		c.replayIdle = false
	} else if c.depWaiting > 0 {
		// No slot freed, but this load may be the address dependence some
		// parked load waits on.
		c.replayIdle = false
	}
}

// storeIssueWidth bounds store-buffer cache accesses per cycle. Store
// misses fill in parallel (each holds a cache MSHR), so independent store
// misses overlap instead of serializing behind the buffer head.
const storeIssueWidth = 4

// drainStores retires completed stores from the buffer head and issues
// cache accesses for stores whose lines are not yet in flight. Stores
// issue in order, so sbIssued is a watermark: everything before it is
// already waiting or filled.
func (c *CPU) drainStores() {
	for c.sbLen > 0 && c.sb[c.sbHead].filled {
		c.sb[c.sbHead] = storeSlot{}
		c.sbHead = (c.sbHead + 1) % c.cfg.StoreBufSize
		c.sbLen--
		if c.sbIssued > 0 {
			c.sbIssued--
		}
	}
	issued := 0
	for c.sbIssued < c.sbLen && issued < storeIssueWidth {
		i := (c.sbHead + c.sbIssued) % c.cfg.StoreBufSize
		s := &c.sb[i]
		switch c.mem.Access(s.addr, true, c.sbFillCB[i]) {
		case cache.Hit:
			s.filled = true
			issued++
			c.sbIssued++
		case cache.Miss, cache.MissMerged:
			s.waiting = true // write-allocate fill in flight (merged
			// misses ride the line fetch already outstanding)
			issued++
			c.sbIssued++
		case cache.Blocked:
			// Retry next cycle: this is the back-pressure path from
			// a saturated memory write queue. Stop issuing to
			// preserve ordering pressure at the blocked line.
			return
		}
	}
}

// retire commits up to Width completed instructions from the ROB head.
func (c *CPU) retire() {
	for n := 0; n < c.cfg.Width && c.count > 0; n++ {
		e := &c.rob[c.head]
		if !e.done {
			if e.typ == workload.OpLoad {
				c.Stats.HeadLoadStalls++
			}
			return
		}
		if e.typ == workload.OpStore {
			if c.sbLen >= c.cfg.StoreBufSize {
				c.Stats.StoreBufFullStalls++
				return
			}
			c.sb[(c.sbHead+c.sbLen)%c.cfg.StoreBufSize] = storeSlot{addr: e.addr}
			c.sbLen++
			c.Stats.StoresQueued++
		}
		c.head = (c.head + 1) % c.cfg.ROBSize
		c.count--
		c.Stats.Retired++
		c.totalRetired++
	}
}

// replay retries loads that could not issue earlier (dependence unresolved,
// LSQ full, or cache blocked). Loads known to be waiting on a full LSQ are
// skipped cheaply while it remains full.
func (c *CPU) replay() {
	if c.replayIdle {
		return
	}
	lsqFull := c.lsqInFlight >= c.cfg.LSQSize
	idle := true
	depParked := 0
	remaining := c.pendingIssue[:0]
	for _, idx := range c.pendingIssue {
		e := &c.rob[idx]
		if e.done || e.issued {
			continue
		}
		if e.lsqWait && lsqFull {
			remaining = append(remaining, idx)
			continue
		}
		if !c.tryIssueLoad(idx, e) {
			remaining = append(remaining, idx)
			if c.lsqInFlight >= c.cfg.LSQSize {
				lsqFull = true
			}
			if e.depSeq != 0 {
				depParked++
			} else if !e.lsqWait {
				// Cache-blocked: must retry every cycle (the retry is
				// what the cache's Blocked statistic counts).
				idle = false
			}
		}
	}
	c.pendingIssue = remaining
	c.depWaiting = depParked
	// Entries parked on the LSQ were all (re)checked under lsqFull=true —
	// issues only grow lsqInFlight mid-walk — so with no cache-blocked
	// stragglers the list cannot make progress until a completeLoad.
	c.replayIdle = idle
}

// tryIssueLoad attempts a load's cache access. Returns false if it must be
// replayed later.
func (c *CPU) tryIssueLoad(idx int, e *robEntry) bool {
	if e.depSeq != 0 {
		if dep := &c.rob[e.depIdx]; dep.seq == e.depSeq && !dep.done {
			return false // address not available yet
		}
		e.depSeq = 0
	}
	// The LSQ bounds distinct outstanding line fetches; hits and merged
	// misses ride existing entries. A load that may allocate a new fetch
	// must find a free slot first.
	if c.lsqInFlight >= c.cfg.LSQSize && c.wouldAllocate(e.addr) {
		e.lsqWait = true
		return false
	}
	e.lsqWait = false
	seq := e.seq
	c.issuedSeq[idx] = seq
	switch c.mem.Access(e.addr, false, c.loadCB[idx]) {
	case cache.Hit:
		e.issued = true
		c.Stats.LoadsIssued++
		c.delayQ.PushBack(deferredDone{
			at: c.now + uint64(c.cfg.L1Latency), idx: idx, seq: seq,
		})
		return true
	case cache.Miss:
		e.issued = true
		e.counted = true
		c.lsqInFlight++
		c.Stats.LoadsIssued++
		return true
	case cache.MissMerged:
		e.issued = true
		c.Stats.LoadsIssued++
		return true
	default:
		return false
	}
}

// allocProber is the optional memory-port query wouldAllocate uses.
type allocProber interface{ WouldAllocate(addr uint64) bool }

// wouldAllocate asks the memory port whether a load would start a new line
// fetch, when the port supports the query (the L1 cache does; simple test
// stubs need not).
//
//burstmem:hotpath
func (c *CPU) wouldAllocate(addr uint64) bool {
	if c.prober != nil {
		return c.prober.WouldAllocate(addr)
	}
	return true
}

// loadReturned is the miss-path completion callback. The slot's rob
// generation must still match the generation at issue; a mismatch means
// the slot was recycled, which is only possible after the prior occupant
// completed, so stale firings are impossible in practice but guarded
// anyway.
func (c *CPU) loadReturned(idx int) {
	c.stalled = false
	e := &c.rob[idx]
	if e.seq == c.issuedSeq[idx] {
		c.completeLoad(e)
	}
}

// dispatch brings up to Width new instructions into the ROB.
func (c *CPU) dispatch() {
	for n := 0; n < c.cfg.Width; n++ {
		if c.count >= c.cfg.ROBSize {
			c.Stats.ROBFullCycles++
			return
		}
		op := c.gen.Next()
		c.seq++
		idx := c.tail
		e := &c.rob[idx]
		*e = robEntry{typ: op.Type, addr: op.Addr, seq: c.seq}
		c.tail = (c.tail + 1) % c.cfg.ROBSize
		c.count++
		switch op.Type {
		case workload.OpNonMem, workload.OpStore:
			// Non-memory work executes within the window; stores
			// compute their data by retirement. Both complete
			// immediately for retirement purposes.
			e.done = true
		case workload.OpLoad:
			if op.DepOnPrevLoad && c.lastLoadSeq != 0 {
				if dep := &c.rob[c.lastLoadIdx]; dep.seq == c.lastLoadSeq && !dep.done {
					e.depIdx = c.lastLoadIdx
					e.depSeq = c.lastLoadSeq
				}
			}
			c.lastLoadIdx = idx
			c.lastLoadSeq = c.seq
			if !c.tryIssueLoad(idx, e) {
				c.pendingIssue = append(c.pendingIssue, idx)
				c.replayIdle = false
			}
		}
	}
}

// SkipEligible reports whether Tick is a guaranteed stall until external
// input (a cache callback) arrives: nothing to fire, retire, issue or
// dispatch. When true, each elapsed cycle would only bump the cycle count
// and the stall counters that SkipCycles applies in bulk.
//
// The conditions mirror Tick stage by stage: no deferred L1-hit
// completions; every buffered store already issued and the head slot's
// fill not yet arrived (drainStores idles); the ROB head blocked — an
// incomplete load, or a store facing a full buffer (retire idles; an
// incomplete head is always a load, since non-memory ops and stores
// dispatch completed); every pending load either stale (done/issued),
// parked on a full LSQ, or dependence-blocked (replay idles); and the ROB
// full (dispatch idles).
func (c *CPU) SkipEligible() bool {
	if c.delayQ.Len() != 0 || c.count < c.cfg.ROBSize {
		return false
	}
	if c.sbIssued != c.sbLen || (c.sbLen > 0 && c.sb[c.sbHead].filled) {
		return false
	}
	head := &c.rob[c.head]
	if head.done && !(head.typ == workload.OpStore && c.sbLen >= c.cfg.StoreBufSize) {
		return false
	}
	if !c.replayIdle {
		lsqFull := c.lsqInFlight >= c.cfg.LSQSize
		for _, idx := range c.pendingIssue {
			e := &c.rob[idx]
			if e.done || e.issued {
				continue
			}
			if e.lsqWait && lsqFull {
				continue
			}
			if e.depSeq != 0 {
				if dep := &c.rob[e.depIdx]; dep.seq == e.depSeq && !dep.done {
					continue
				}
			}
			return false
		}
	}
	return true
}

// SkipCycles accounts n skipped stall cycles (caller checked SkipEligible):
// the clock advances and the counters a stalled Tick would have bumped —
// ROB-full at dispatch, plus the head-blocked reason at retire — grow by n.
func (c *CPU) SkipCycles(n uint64) {
	c.now += n
	c.Stats.Cycles += n
	c.Stats.ROBFullCycles += n
	if !c.rob[c.head].done {
		c.Stats.HeadLoadStalls += n
	} else {
		c.Stats.StoreBufFullStalls += n
	}
}

// ResetStats zeroes the statistics counters without disturbing
// architectural or timing state, opening a measurement window after cache
// warmup.
func (c *CPU) ResetStats() { c.Stats = Stats{} }

// Quiesced reports whether the CPU has no in-flight memory activity
// (used to drain simulations cleanly).
func (c *CPU) Quiesced() bool {
	return c.lsqInFlight == 0 && c.sbLen == 0 && c.delayQ.Len() == 0
}
