// Package cpu implements the trace-driven out-of-order processor model of
// the baseline machine (paper Table 3): 8-wide, 196-entry ROB, 32-entry
// load/store queue, running at 4 GHz (ten CPU cycles per DDR2-800 memory
// cycle).
//
// The model reproduces the processor behaviours that access reordering
// results depend on, without executing an ISA:
//
//   - memory-level parallelism: independent loads in the ROB window issue
//     concurrently through non-blocking caches;
//   - load-latency coupling: an incomplete load at the ROB head blocks
//     retirement, so main-memory read latency translates into stall
//     cycles;
//   - dependent loads: pointer-chase workloads serialize, capping MLP;
//   - store-path back-pressure: stores retire through a bounded store
//     buffer; when cache writebacks saturate the memory controller's
//     write queue, the buffer fills and the pipeline stalls (the paper's
//     Section 5.1 mechanism).
//
// Pending loads are event-driven: instead of one linear replay list walked
// every cycle, loads park on wakeup queues keyed by what blocks them
// (dependence, LSQ slot, blocked cache), and a completing load wakes
// exactly its dependent. The replay walk visits only queues that can make
// progress, which also makes SkipEligible O(1) and gives NextEventCycle a
// precise bound for the simulator's cycle-skipping engine.
package cpu

import (
	"fmt"

	"burstmem/internal/cache"
	"burstmem/internal/deque"
	"burstmem/internal/workload"
)

// Mem is the CPU's data-memory port (normally the L1 data cache).
type Mem interface {
	Access(addr uint64, isWrite bool, done func()) cache.Result
}

// Config describes the core (defaults per paper Table 3).
type Config struct {
	Width        int // issue/retire width per CPU cycle
	ROBSize      int
	LSQSize      int // outstanding issued-and-incomplete loads
	StoreBufSize int
	L1Latency    int // CPU cycles charged for an L1 hit
}

// DefaultConfig returns the Table 3 core: 4 GHz, 8-way, 196 ROB, 32 LSQ.
func DefaultConfig() Config {
	return Config{Width: 8, ROBSize: 196, LSQSize: 32, StoreBufSize: 32, L1Latency: 3}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Width < 1 || c.ROBSize < 1 || c.LSQSize < 1 || c.StoreBufSize < 1 {
		return fmt.Errorf("cpu: width/ROB/LSQ/store buffer must be positive: %+v", c)
	}
	if c.L1Latency < 0 {
		return fmt.Errorf("cpu: negative L1 latency")
	}
	return nil
}

// Stats reports execution statistics.
//
//burstmem:chanlocal
type Stats struct {
	Cycles  uint64
	Retired uint64

	LoadsIssued  uint64
	StoresQueued uint64

	ROBFullCycles      uint64 // dispatch stalled: ROB full
	StoreBufFullStalls uint64 // retirement stalled: store buffer full
	HeadLoadStalls     uint64 // retirement stalled: incomplete load at head
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// robEntry is one in-flight instruction.
//
//burstmem:chanlocal
type robEntry struct {
	typ     workload.OpType
	addr    uint64
	done    bool
	issued  bool
	counted bool // holds an LSQ (outstanding line fetch) slot
	lsqWait bool // last issue attempt failed on a full LSQ
	seq     uint64
	// depIdx/depSeq identify the load this load's address depends on (a
	// ROB slot plus its generation); it may not issue until that load
	// completes or its slot is recycled (which implies retirement).
	depIdx int
	depSeq uint64
}

// storeSlot is one store-buffer entry.
//
//burstmem:chanlocal
type storeSlot struct {
	addr    uint64
	waiting bool // store missed; line fill in flight
	filled  bool // fill arrived; slot can pop
}

// Park states for pending (dispatched, not yet issued) loads. A pending
// load sits in exactly one wakeup queue matching its state; psNone marks
// slots with no pending load (unoccupied, issued, or non-load).
const (
	psNone uint8 = iota
	psReady
	psBlocked
	psLsq
	psDep
)

// NoEvent is NextEventCycle's "no internally scheduled event" sentinel:
// only an external cache callback can change the CPU's state.
const NoEvent = ^uint64(0)

// CPU is the core model. One CPU belongs to one core, ticked only by its
// shard's coordinator, so its whole object graph is channel-local — the
// points-to audit (internal/analysis/sharestate) holds this annotation to
// that claim.
//
//burstmem:chanlocal
type CPU struct {
	cfg Config
	gen workload.Generator
	mem Mem

	rob        []robEntry
	head, tail int
	count      int
	seq        uint64

	// lastLoadIdx/lastLoadSeq identify the most recently dispatched load
	// (dependence target for pointer-chase ops).
	lastLoadIdx int
	lastLoadSeq uint64

	// Wakeup queues: ROB indices of pending loads in ascending dispatch
	// (seq) order, partitioned by park reason. The replay walk is a
	// min-seq merge across them, so the visit order is identical to the
	// single-list walk it replaced; the partition only lets the walk skip
	// entries that provably cannot progress.
	//
	//   readyQ   — dependence resolved by a completing load; must retry.
	//   blockedQ — cache refused the access (MSHR/writeback pressure or
	//              saturated memory write queue); must retry every cycle
	//              (each retry is what the cache's Blocked stat counts).
	//   lsqQ     — parked on a full LSQ; visited only while the walk's
	//              bug-compatible lsqFull flag is unset.
	//   depQ     — parked on an unresolved address dependence; woken by
	//              completeLoad via depWaiter, never by the walk. May hold
	//              stale entries already moved to readyQ (pstate disam-
	//              biguates); compacted on each walk.
	readyQ   []int
	blockedQ []int
	lsqQ     []int
	depQ     []int
	// Scratch double-buffers for rebuilding the queues during a walk
	// without allocating. lsqOut is the merge destination for the case
	// where an unvisited lsqQ tail must interleave with re-parked entries.
	scratchB []int
	scratchL []int
	scratchD []int
	lsqOut   []int

	// pstate tracks each ROB slot's park state (psNone when not pending).
	pstate []uint8
	// depWaiter[i] is the ROB index of the (at most one) load whose
	// address depends on the load in slot i, or -1. At most one because
	// the dependence target is always the most recently dispatched load,
	// and dispatching the dependent immediately makes it the new target.
	depWaiter []int

	lsqInFlight int

	// Store buffer: a fixed ring of StoreBufSize slots. sbIssued counts
	// slots from the head that have already been issued to the cache.
	sb       []storeSlot
	sbHead   int
	sbLen    int
	sbIssued int

	// Prebuilt completion callbacks, one per physical slot, so the hot
	// issue paths never allocate a closure. A ROB slot (or store-buffer
	// slot) has at most one cache callback outstanding at a time: a slot
	// cannot recycle until its occupant completes, and completion requires
	// the callback to have fired. issuedSeq guards against stale firings.
	loadCB    []func()
	sbFillCB  []func()
	issuedSeq []uint64 // rob generation at last issue, per slot

	// stalled records that the last Tick ended SkipEligible: until an
	// external cache callback arrives, every subsequent Tick is a pure
	// stall whose only effects are the counters SkipCycles accounts, so
	// Tick short-circuits. Cleared by loadReturned and store-fill
	// callbacks (the only external unblock events).
	stalled bool

	// prober is mem's WouldAllocate view, resolved once at construction so
	// the load-issue path avoids a per-call interface assertion (nil when
	// the port does not support the query).
	prober allocProber
	// lport is mem's fused load-access view (AccessLoad): one address
	// decomposition and set probe decides both LSQ admission and the
	// access itself. Nil when the port does not support it (simple test
	// stubs); the issue path then falls back to WouldAllocate+Access.
	lport loadPort

	now          uint64                    // internal cycle clock (never reset)
	totalRetired uint64                    // lifetime retirement count (never reset)
	delayQ       deque.Deque[deferredDone] // L1-hit completions (constant latency FIFO)

	Stats Stats
}

type deferredDone struct {
	at  uint64
	idx int
	seq uint64
}

// New builds a CPU over a workload generator and a memory port.
func New(cfg Config, gen workload.Generator, mem Mem) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &CPU{
		cfg:       cfg,
		gen:       gen,
		mem:       mem,
		rob:       make([]robEntry, cfg.ROBSize),
		readyQ:    make([]int, 0, cfg.ROBSize),
		blockedQ:  make([]int, 0, cfg.ROBSize),
		lsqQ:      make([]int, 0, cfg.ROBSize),
		depQ:      make([]int, 0, cfg.ROBSize),
		scratchB:  make([]int, 0, cfg.ROBSize),
		scratchL:  make([]int, 0, cfg.ROBSize),
		scratchD:  make([]int, 0, cfg.ROBSize),
		lsqOut:    make([]int, 0, cfg.ROBSize),
		pstate:    make([]uint8, cfg.ROBSize),
		depWaiter: make([]int, cfg.ROBSize),
		sb:        make([]storeSlot, cfg.StoreBufSize),
		loadCB:    make([]func(), cfg.ROBSize),
		sbFillCB:  make([]func(), cfg.StoreBufSize),
		issuedSeq: make([]uint64, cfg.ROBSize),
	}
	c.prober, _ = mem.(allocProber)
	c.lport, _ = mem.(loadPort)
	// L1-hit completions in flight are bounded by the LSQ; prewarm the
	// ring so the steady-state loop never pays its doubling growth.
	c.delayQ.Reserve(cfg.LSQSize)
	for i := range c.depWaiter {
		c.depWaiter[i] = -1
	}
	for i := range c.loadCB {
		i := i
		c.loadCB[i] = func() { c.loadReturned(i) }
	}
	for i := range c.sbFillCB {
		i := i
		c.sbFillCB[i] = func() {
			c.sb[i].filled = true
			c.stalled = false
		}
	}
	return c, nil
}

// Retired returns the lifetime retired instruction count (unaffected by
// ResetStats; Stats.Retired counts the current measurement window).
func (c *CPU) Retired() uint64 { return c.totalRetired }

// Cycles returns elapsed CPU cycles.
func (c *CPU) Cycles() uint64 { return c.Stats.Cycles }

// Tick advances one CPU cycle: drain the store buffer, fire L1-hit
// completions, retire, replay blocked loads, dispatch.
//
// While stalled (see the field comment), a full Tick provably performs
// exactly the SkipCycles(1) accounting — fireDelayed has nothing queued,
// drainStores has everything issued and no fill at the head, retire blocks
// on the head, replay has no runnable queue, dispatch hits the full ROB —
// so it short-circuits to that.
//
//burstmem:hotpath
func (c *CPU) Tick() {
	if c.stalled {
		c.SkipCycles(1)
		return
	}
	c.now++
	c.Stats.Cycles++
	c.fireDelayed()
	c.drainStores()
	c.retire()
	c.replay()
	c.dispatch()
	c.stalled = c.SkipEligible()
}

//burstmem:hotpath
func (c *CPU) fireDelayed() {
	for c.delayQ.Len() > 0 && c.delayQ.Front().at <= c.now {
		d := c.delayQ.PopFront()
		if c.rob[d.idx].seq == d.seq {
			c.completeLoad(d.idx)
		}
	}
}

// completeLoad marks a load done, releases its LSQ slot, and wakes the
// (at most one) load whose address depends on it: the dependent moves
// from depQ to readyQ, so the next replay walk visits exactly it instead
// of rediscovering it by scanning.
//
//burstmem:hotpath
func (c *CPU) completeLoad(idx int) {
	e := &c.rob[idx]
	if e.done {
		return
	}
	e.done = true
	if e.counted {
		c.lsqInFlight--
	}
	if w := c.depWaiter[idx]; w >= 0 {
		c.depWaiter[idx] = -1
		c.pstate[w] = psReady
		c.insertReady(w)
	}
}

// insertReady inserts a woken load into readyQ keeping ascending seq
// order (completions arrive out of order). The queue is near-empty in
// practice, so the linear shift from the back is cheap.
func (c *CPU) insertReady(idx int) {
	s := c.rob[idx].seq
	q := append(c.readyQ, 0)
	i := len(q) - 1
	for i > 0 && c.rob[q[i-1]].seq > s {
		q[i] = q[i-1]
		i--
	}
	q[i] = idx
	c.readyQ = q
}

// storeIssueWidth bounds store-buffer cache accesses per cycle. Store
// misses fill in parallel (each holds a cache MSHR), so independent store
// misses overlap instead of serializing behind the buffer head.
const storeIssueWidth = 4

// drainStores retires completed stores from the buffer head and issues
// cache accesses for stores whose lines are not yet in flight. Stores
// issue in order, so sbIssued is a watermark: everything before it is
// already waiting or filled.
func (c *CPU) drainStores() {
	for c.sbLen > 0 && c.sb[c.sbHead].filled {
		c.sb[c.sbHead] = storeSlot{}
		if c.sbHead++; c.sbHead == c.cfg.StoreBufSize {
			c.sbHead = 0
		}
		c.sbLen--
		if c.sbIssued > 0 {
			c.sbIssued--
		}
	}
	issued := 0
	for c.sbIssued < c.sbLen && issued < storeIssueWidth {
		i := c.sbHead + c.sbIssued
		if i >= c.cfg.StoreBufSize {
			i -= c.cfg.StoreBufSize
		}
		s := &c.sb[i]
		switch c.mem.Access(s.addr, true, c.sbFillCB[i]) {
		case cache.Hit:
			s.filled = true
			issued++
			c.sbIssued++
		case cache.Miss, cache.MissMerged:
			s.waiting = true // write-allocate fill in flight (merged
			// misses ride the line fetch already outstanding)
			issued++
			c.sbIssued++
		case cache.Blocked:
			// Retry next cycle: this is the back-pressure path from
			// a saturated memory write queue. Stop issuing to
			// preserve ordering pressure at the blocked line.
			return
		}
	}
}

// retire commits up to Width completed instructions from the ROB head.
func (c *CPU) retire() {
	for n := 0; n < c.cfg.Width && c.count > 0; n++ {
		e := &c.rob[c.head]
		if !e.done {
			if e.typ == workload.OpLoad {
				c.Stats.HeadLoadStalls++
			}
			return
		}
		if e.typ == workload.OpStore {
			if c.sbLen >= c.cfg.StoreBufSize {
				c.Stats.StoreBufFullStalls++
				return
			}
			slot := c.sbHead + c.sbLen
			if slot >= c.cfg.StoreBufSize {
				slot -= c.cfg.StoreBufSize
			}
			c.sb[slot] = storeSlot{addr: e.addr}
			c.sbLen++
			c.Stats.StoresQueued++
		}
		if c.head++; c.head == c.cfg.ROBSize {
			c.head = 0
		}
		c.count--
		c.Stats.Retired++
		c.totalRetired++
	}
}

// walkNeeded reports whether a replay walk could have any observable
// effect: a woken dependent, a cache-blocked load that must retry, or an
// LSQ-parked load with a free slot. Dep-parked loads never require a walk
// (completeLoad wakes them), and LSQ-parked loads behind a full LSQ would
// only be skipped.
//
//burstmem:hotpath
func (c *CPU) walkNeeded() bool {
	return len(c.readyQ) > 0 || len(c.blockedQ) > 0 ||
		(len(c.lsqQ) > 0 && c.lsqInFlight < c.cfg.LSQSize)
}

// replay retries loads that could not issue earlier. The walk is a
// min-seq merge over the wakeup queues, reproducing exactly the visit
// order (and the per-visit cache accesses) of a linear walk over all
// pending loads in dispatch order, with two refinements that change no
// observable behaviour:
//
//   - dep-parked loads are "visited" without an issue attempt (the
//     attempt would fail at the dependence check with no side effect);
//     the visit still updates the walk-local lsqFull flag, which controls
//     which LSQ-parked loads downstream in seq order get skipped;
//   - the walk runs only when walkNeeded: a skipped walk would have
//     issued no cache access (every load parked on a dependence or a
//     full LSQ, none cache-blocked, none woken).
//
// The lsqFull flag is bug-compatible with the original list walk: it
// initializes from the live LSQ count, flips to true at the first failed
// visit while the LSQ is full, and never flips back — so a load parked on
// the LSQ can still issue mid-walk if its line is already present or in
// flight (WouldAllocate false) and no earlier failure latched the flag.
//
//burstmem:hotpath
func (c *CPU) replay() {
	if !c.walkNeeded() {
		return
	}
	lsqFull := c.lsqInFlight >= c.cfg.LSQSize
	// Fast path: only cache-blocked loads are walkable — the typical
	// streaming steady state, where the L1 MSHRs are saturated and every
	// other queue is empty (or the LSQ-parked queue is wholesale skipped
	// behind a full LSQ). The min-seq merge degenerates to a linear walk
	// over blockedQ, which is already in seq order.
	if len(c.readyQ) == 0 && len(c.depQ) == 0 && (lsqFull || len(c.lsqQ) == 0) {
		newBlocked := c.scratchB[:0]
		newLsq := c.scratchL[:0]
		for _, idx := range c.blockedQ {
			e := &c.rob[idx]
			if c.tryIssueLoad(idx, e) {
				c.pstate[idx] = psNone
				continue
			}
			if c.lsqInFlight >= c.cfg.LSQSize {
				lsqFull = true
			}
			if e.lsqWait {
				// The LSQ filled mid-walk: the load re-parks there.
				c.pstate[idx] = psLsq
				//lint:ignore hotalloc scratch queue keeps its capacity across walks, bounded by ROB size
				newLsq = append(newLsq, idx)
				continue
			}
			//lint:ignore hotalloc scratch queue keeps its capacity across walks, bounded by ROB size
			newBlocked = append(newBlocked, idx)
		}
		c.blockedQ, c.scratchB = newBlocked, c.blockedQ
		c.commitLsq(0, newLsq)
		return
	}
	ri, bi, li, di := 0, 0, 0, 0
	newBlocked := c.scratchB[:0]
	newLsq := c.scratchL[:0]
	newDep := c.scratchD[:0]
	// Cached head seqs, refreshed only when a cursor advances: the merge's
	// per-iteration cost is register compares, not four ROB loads.
	const noSeq = ^uint64(0)
	rs, bs, ls, ds := noSeq, noSeq, noSeq, noSeq
	if len(c.readyQ) > 0 {
		rs = c.rob[c.readyQ[0]].seq
	}
	if len(c.blockedQ) > 0 {
		bs = c.rob[c.blockedQ[0]].seq
	}
	if len(c.lsqQ) > 0 {
		ls = c.rob[c.lsqQ[0]].seq
	}
	// Drop depQ entries already woken into readyQ (lazy deletion).
	for di < len(c.depQ) && c.pstate[c.depQ[di]] != psDep {
		di++
	}
	if di < len(c.depQ) {
		ds = c.rob[c.depQ[di]].seq
	}
walk:
	for {
		best, src := rs, 0
		if bs < best {
			best, src = bs, 1
		}
		if !lsqFull && ls < best {
			best, src = ls, 2
		}
		if ds < best {
			best, src = ds, 3
		}
		if best == noSeq {
			break
		}
		var idx int
		switch src {
		case 0:
			idx = c.readyQ[ri]
			ri++
			rs = noSeq
			if ri < len(c.readyQ) {
				rs = c.rob[c.readyQ[ri]].seq
			}
		case 1:
			idx = c.blockedQ[bi]
			bi++
			bs = noSeq
			if bi < len(c.blockedQ) {
				bs = c.rob[c.blockedQ[bi]].seq
			}
		case 2:
			idx = c.lsqQ[li]
			li++
			ls = noSeq
			if li < len(c.lsqQ) {
				ls = c.rob[c.lsqQ[li]].seq
			}
		default:
			// Dependence still unresolved: the issue attempt would fail
			// with no side effect beyond latching the lsqFull flag.
			if c.lsqInFlight >= c.cfg.LSQSize {
				lsqFull = true
			}
			if rs == noSeq && bs == noSeq && (lsqFull || ls == noSeq) {
				// Only dep-parked loads remain and the flag is settled:
				// the rest of the walk is pure bookkeeping, so keep the
				// tail in bulk (stale entries stay lazily deleted).
				//lint:ignore hotalloc scratch queue keeps its capacity across walks, bounded by ROB size
				newDep = append(newDep, c.depQ[di:]...)
				di = len(c.depQ)
				break walk
			}
			//lint:ignore hotalloc scratch queue keeps its capacity across walks, bounded by ROB size
			newDep = append(newDep, c.depQ[di])
			di++
			for di < len(c.depQ) && c.pstate[c.depQ[di]] != psDep {
				di++
			}
			ds = noSeq
			if di < len(c.depQ) {
				ds = c.rob[c.depQ[di]].seq
			}
			continue
		}
		e := &c.rob[idx]
		if c.tryIssueLoad(idx, e) {
			c.pstate[idx] = psNone
			continue
		}
		if c.lsqInFlight >= c.cfg.LSQSize {
			lsqFull = true
		}
		switch {
		case e.lsqWait:
			c.pstate[idx] = psLsq
			//lint:ignore hotalloc scratch queue keeps its capacity across walks, bounded by ROB size
			newLsq = append(newLsq, idx)
		case e.depSeq != 0:
			c.pstate[idx] = psDep
			//lint:ignore hotalloc scratch queue keeps its capacity across walks, bounded by ROB size
			newDep = append(newDep, idx)
		default:
			// Cache-blocked: must retry every cycle (the retry is what
			// the cache's Blocked statistic counts).
			c.pstate[idx] = psBlocked
			//lint:ignore hotalloc scratch queue keeps its capacity across walks, bounded by ROB size
			newBlocked = append(newBlocked, idx)
		}
	}
	c.readyQ = c.readyQ[:0]
	c.blockedQ, c.scratchB = newBlocked, c.blockedQ
	c.depQ, c.scratchD = newDep, c.depQ
	c.commitLsq(li, newLsq)
}

// commitLsq folds a replay walk's re-parked loads (newLsq, in seq order)
// back into the LSQ-parked queue, given that the walk consumed the first
// li entries of the old queue.
func (c *CPU) commitLsq(li int, newLsq []int) {
	if li == 0 && len(newLsq) == 0 {
		// No LSQ-parked load was visited or re-parked (typical when the
		// flag was latched from the start): the queue is unchanged.
		return
	}
	switch {
	case li >= len(c.lsqQ):
		// Every entry was visited: the rebuilt queue replaces it.
		c.lsqQ, c.scratchL = newLsq, c.lsqQ
	case len(newLsq) == 0:
		// Visited entries all issued; compact the unvisited tail in place.
		n := copy(c.lsqQ, c.lsqQ[li:])
		c.lsqQ = c.lsqQ[:n]
	default:
		// The lsqFull flag latched with entries still unvisited; later
		// visits may have re-parked loads with larger seqs, so the two
		// sorted runs must interleave by seq, not concatenate.
		out := c.lsqOut[:0]
		i := 0
		for i < len(newLsq) && li < len(c.lsqQ) {
			if c.rob[newLsq[i]].seq < c.rob[c.lsqQ[li]].seq {
				out = append(out, newLsq[i])
				i++
			} else {
				out = append(out, c.lsqQ[li])
				li++
			}
		}
		out = append(out, newLsq[i:]...)
		out = append(out, c.lsqQ[li:]...)
		c.lsqQ, c.lsqOut = out, c.lsqQ
	}
}

// tryIssueLoad attempts a load's cache access. Returns false if it must be
// replayed later.
//
//burstmem:hotpath
func (c *CPU) tryIssueLoad(idx int, e *robEntry) bool {
	if e.depSeq != 0 {
		if dep := &c.rob[e.depIdx]; dep.seq == e.depSeq && !dep.done {
			return false // address not available yet
		}
		e.depSeq = 0
	}
	// The LSQ bounds distinct outstanding line fetches; hits and merged
	// misses ride existing entries. A load that may allocate a new fetch
	// must find a free slot first. With a fused port both decisions take
	// one probe: Parked is exactly the WouldAllocate-true park, with no
	// access performed.
	var res cache.Result
	if c.lport != nil {
		res = c.lport.AccessLoad(e.addr, c.lsqInFlight < c.cfg.LSQSize, c.loadCB[idx])
		if res == cache.Parked {
			e.lsqWait = true
			return false
		}
	} else {
		if c.lsqInFlight >= c.cfg.LSQSize && c.wouldAllocate(e.addr) {
			e.lsqWait = true
			return false
		}
		res = c.mem.Access(e.addr, false, c.loadCB[idx])
	}
	e.lsqWait = false
	seq := e.seq
	c.issuedSeq[idx] = seq
	switch res {
	case cache.Hit:
		e.issued = true
		c.Stats.LoadsIssued++
		c.delayQ.PushBack(deferredDone{
			at: c.now + uint64(c.cfg.L1Latency), idx: idx, seq: seq,
		})
		return true
	case cache.Miss:
		e.issued = true
		e.counted = true
		c.lsqInFlight++
		c.Stats.LoadsIssued++
		return true
	case cache.MissMerged:
		e.issued = true
		c.Stats.LoadsIssued++
		return true
	default:
		return false
	}
}

// allocProber is the optional memory-port query wouldAllocate uses.
type allocProber interface{ WouldAllocate(addr uint64) bool }

// loadPort is the optional fused load-access port (the L1 cache): one
// probe decides LSQ admission and performs the access, returning
// cache.Parked — side-effect free — when the load must wait for a slot.
type loadPort interface {
	AccessLoad(addr uint64, mayAllocate bool, done func()) cache.Result
}

// wouldAllocate asks the memory port whether a load would start a new line
// fetch, when the port supports the query (the L1 cache does; simple test
// stubs need not).
//
//burstmem:hotpath
func (c *CPU) wouldAllocate(addr uint64) bool {
	if c.prober != nil {
		return c.prober.WouldAllocate(addr)
	}
	return true
}

// loadReturned is the miss-path completion callback. The slot's rob
// generation must still match the generation at issue; a mismatch means
// the slot was recycled, which is only possible after the prior occupant
// completed, so stale firings are impossible in practice but guarded
// anyway.
func (c *CPU) loadReturned(idx int) {
	c.stalled = false
	if c.rob[idx].seq == c.issuedSeq[idx] {
		c.completeLoad(idx)
	}
}

// dispatch brings up to Width new instructions into the ROB.
func (c *CPU) dispatch() {
	for n := 0; n < c.cfg.Width; n++ {
		if c.count >= c.cfg.ROBSize {
			c.Stats.ROBFullCycles++
			return
		}
		op := c.gen.Next()
		c.seq++
		idx := c.tail
		e := &c.rob[idx]
		*e = robEntry{typ: op.Type, addr: op.Addr, seq: c.seq}
		c.pstate[idx] = psNone
		c.depWaiter[idx] = -1
		if c.tail++; c.tail == c.cfg.ROBSize {
			c.tail = 0
		}
		c.count++
		switch op.Type {
		case workload.OpNonMem, workload.OpStore:
			// Non-memory work executes within the window; stores
			// compute their data by retirement. Both complete
			// immediately for retirement purposes.
			e.done = true
		case workload.OpLoad:
			if op.DepOnPrevLoad && c.lastLoadSeq != 0 {
				if dep := &c.rob[c.lastLoadIdx]; dep.seq == c.lastLoadSeq && !dep.done {
					e.depIdx = c.lastLoadIdx
					e.depSeq = c.lastLoadSeq
				}
			}
			c.lastLoadIdx = idx
			c.lastLoadSeq = c.seq
			if !c.tryIssueLoad(idx, e) {
				// Park by reason; appends keep seq order (new loads have
				// the maximal seq).
				switch {
				case e.depSeq != 0:
					c.depWaiter[e.depIdx] = idx
					c.pstate[idx] = psDep
					c.depQ = append(c.depQ, idx)
				case e.lsqWait:
					c.pstate[idx] = psLsq
					c.lsqQ = append(c.lsqQ, idx)
				default:
					c.pstate[idx] = psBlocked
					c.blockedQ = append(c.blockedQ, idx)
				}
			}
		}
	}
}

// SkipEligible reports whether Tick is a guaranteed stall until external
// input (a cache callback) arrives: nothing to fire, retire, issue or
// dispatch. When true, each elapsed cycle would only bump the cycle count
// and the stall counters that SkipCycles applies in bulk.
//
// The conditions mirror Tick stage by stage: no deferred L1-hit
// completions; every buffered store already issued and the head slot's
// fill not yet arrived (drainStores idles); the ROB head blocked — an
// incomplete load, or a store facing a full buffer (retire idles; an
// incomplete head is always a load, since non-memory ops and stores
// dispatch completed); no wakeup queue runnable (replay idles); and the
// ROB full (dispatch idles). All O(1) — the wakeup queues replace the
// linear pending-load scan the check previously needed.
func (c *CPU) SkipEligible() bool {
	if c.delayQ.Len() != 0 || c.count < c.cfg.ROBSize {
		return false
	}
	if c.sbIssued != c.sbLen || (c.sbLen > 0 && c.sb[c.sbHead].filled) {
		return false
	}
	head := &c.rob[c.head]
	if head.done && !(head.typ == workload.OpStore && c.sbLen >= c.cfg.StoreBufSize) {
		return false
	}
	return !c.walkNeeded()
}

// NextEventCycle returns the next CPU cycle (on the CPU's own clock) at
// which Tick could do anything beyond the bulk accounting SkipCycles
// performs, or NoEvent when only an external cache callback can change
// state. The caller may replace the Ticks strictly before the returned
// cycle with one SkipCycles call; the result is bit-identical because in
// that span every stage idles: nothing in delayQ is due, the store buffer
// is fully issued with no fill at the head, the head is blocked (bumping
// exactly the stall counter SkipCycles bumps), no wakeup queue is
// runnable, and the ROB is full.
func (c *CPU) NextEventCycle() uint64 {
	if c.stalled {
		// SkipEligible held at the last Tick and no callback has arrived
		// since: delayQ is empty, so nothing internal is scheduled.
		return NoEvent
	}
	if c.count >= c.cfg.ROBSize && !c.walkNeeded() &&
		c.sbIssued == c.sbLen && !(c.sbLen > 0 && c.sb[c.sbHead].filled) {
		head := &c.rob[c.head]
		if !head.done || (head.typ == workload.OpStore && c.sbLen >= c.cfg.StoreBufSize) {
			// Active-quiet: identical to the stalled state except for
			// pending L1-hit completions, the earliest of which is the
			// next state change (the delay queue is a constant-latency
			// FIFO, so the front is the minimum).
			if c.delayQ.Len() > 0 {
				return c.delayQ.Front().at
			}
			return NoEvent
		}
	}
	return c.now + 1
}

// InertFor reports whether the next n Ticks are provably equivalent to
// SkipCycles(n): the next event NextEventCycle bounds lies beyond them.
func (c *CPU) InertFor(n uint64) bool {
	next := c.NextEventCycle()
	return next == NoEvent || next > c.now+n
}

// SkipCycles accounts n skipped stall cycles (caller checked SkipEligible
// or a NextEventCycle bound): the clock advances and the counters a
// stalled Tick would have bumped — ROB-full at dispatch, plus the
// head-blocked reason at retire — grow by n.
func (c *CPU) SkipCycles(n uint64) {
	c.now += n
	c.Stats.Cycles += n
	c.Stats.ROBFullCycles += n
	if !c.rob[c.head].done {
		c.Stats.HeadLoadStalls += n
	} else {
		c.Stats.StoreBufFullStalls += n
	}
}

// ResetStats zeroes the statistics counters without disturbing
// architectural or timing state, opening a measurement window after cache
// warmup.
func (c *CPU) ResetStats() { c.Stats = Stats{} }

// Quiesced reports whether the CPU has no in-flight memory activity
// (used to drain simulations cleanly).
func (c *CPU) Quiesced() bool {
	return c.lsqInFlight == 0 && c.sbLen == 0 && c.delayQ.Len() == 0
}
