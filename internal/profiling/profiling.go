// Package profiling gives the repo's commands the conventional
// -cpuprofile/-memprofile behaviour via runtime/pprof, so simulator
// performance work (`go tool pprof`) needs no test harness — any
// experiment or sweep invocation can be profiled directly.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (if cpuPath is non-empty) and returns a stop
// function that ends it and writes a heap profile (if memPath is
// non-empty). Callers defer the returned function from main. Empty paths
// make it a no-op, so it can be wired unconditionally:
//
//	defer profiling.Start(*cpuprofile, *memprofile)()
//
// The stop function is idempotent: profiles are finalized once, and later
// calls do nothing, so a deferred stop composes with an explicit one on an
// early-exit path.
func Start(cpuPath, memPath string) func() {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		check(err)
		check(pprof.StartCPUProfile(f))
		cpuFile = f
	}
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			check(cpuFile.Close())
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			check(err)
			runtime.GC() // materialize the live heap, not allocation churn
			check(pprof.WriteHeapProfile(f))
			check(f.Close())
		}
	}
	active = stop
	return stop
}

// active is the most recent Start's stop function, for Stop.
var active func()

// Stop finalizes any profiling started by Start. It is the early-exit
// companion to the deferred stop: deferred calls do not run across
// os.Exit, so a fatal-error path that just called os.Exit would truncate
// the CPU profile mid-write. Error helpers call Stop before exiting.
// Idempotent, and a no-op when Start never ran.
func Stop() {
	if active != nil {
		active()
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "profiling:", err)
		os.Exit(1)
	}
}
