package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

// TestNoOpWithEmptyPaths: empty paths must create no files and return a
// callable stop, so commands can wire profiling unconditionally.
func TestNoOpWithEmptyPaths(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	stop := Start("", "")
	stop()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("no-op profiling created files: %v", entries)
	}
}

// TestWritesProfiles: both paths set must yield non-empty pprof files after
// stop runs.
func TestWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop := Start(cpu, mem)
	// Burn a little CPU and heap so the profiles have something to record.
	sink := 0
	buf := make([]byte, 1<<16)
	for i := range buf {
		buf[i] = byte(i)
		sink += int(buf[i])
	}
	_ = sink
	stop()
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestStopIdempotent: calling stop repeatedly must not re-finalize (a
// second Close of the CPU profile file or a second heap write would fail
// and exit); the profile written by the first call must survive.
func TestStopIdempotent(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop := Start(cpu, mem)
	stop()
	st1, err := os.Stat(mem)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	stop()
	st2, err := os.Stat(mem)
	if err != nil {
		t.Fatal(err)
	}
	if st1.ModTime() != st2.ModTime() || st1.Size() != st2.Size() {
		t.Fatal("second stop rewrote the heap profile")
	}
}

// TestRestartAfterStop: a fresh Start must work after a previous session
// stopped (pprof allows only one active CPU profile at a time).
func TestRestartAfterStop(t *testing.T) {
	dir := t.TempDir()
	first := Start(filepath.Join(dir, "a.pprof"), "")
	first()
	second := Start(filepath.Join(dir, "b.pprof"), "")
	second()
	for _, p := range []string{"a.pprof", "b.pprof"} {
		if _, err := os.Stat(filepath.Join(dir, p)); err != nil {
			t.Fatalf("profile not written: %v", err)
		}
	}
}
