// Package stats provides the counters, distributions and table rendering
// used by the memory-system simulator to aggregate and report results.
//
// Everything in this package is deterministic and allocation-light: the
// simulator samples distributions every memory cycle, so the hot paths are
// simple integer updates.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean accumulates a running mean of uint64 samples (e.g. access latencies).
type Mean struct {
	sum   float64
	sumSq float64
	n     uint64
	min   uint64
	max   uint64
}

// Add records one sample.
func (m *Mean) Add(v uint64) {
	f := float64(v)
	m.sum += f
	m.sumSq += f * f
	if m.n == 0 || v < m.min {
		m.min = v
	}
	if v > m.max {
		m.max = v
	}
	m.n++
}

// N returns the number of samples recorded.
func (m *Mean) N() uint64 { return m.n }

// Mean returns the arithmetic mean, or 0 when empty.
func (m *Mean) Mean() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Sum returns the total of all samples.
func (m *Mean) Sum() float64 { return m.sum }

// Min returns the smallest sample, or 0 when empty.
func (m *Mean) Min() uint64 { return m.min }

// Max returns the largest sample, or 0 when empty.
func (m *Mean) Max() uint64 { return m.max }

// StdDev returns the population standard deviation, or 0 when empty.
func (m *Mean) StdDev() float64 {
	if m.n == 0 {
		return 0
	}
	mean := m.Mean()
	v := m.sumSq/float64(m.n) - mean*mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Reset clears all accumulated state.
func (m *Mean) Reset() { *m = Mean{} }

// Histogram counts integer-valued samples into unit-width buckets
// [0, size). Samples >= size land in the final overflow bucket.
type Histogram struct {
	buckets []uint64
	total   uint64
}

// NewHistogram returns a histogram with buckets for values 0..size-1 plus
// an overflow bucket at size-1.
func NewHistogram(size int) *Histogram {
	if size < 1 {
		size = 1
	}
	return &Histogram{buckets: make([]uint64, size)}
}

// Add records a sample with weight 1.
func (h *Histogram) Add(v int) { h.AddN(v, 1) }

// AddN records a sample with the given weight. Negative values clamp to 0.
func (h *Histogram) AddN(v int, weight uint64) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.buckets) {
		v = len(h.buckets) - 1
	}
	h.buckets[v] += weight
	h.total += weight
}

// Total returns the sum of all weights recorded.
func (h *Histogram) Total() uint64 { return h.total }

// Count returns the weight recorded in bucket v.
func (h *Histogram) Count(v int) uint64 {
	if v < 0 || v >= len(h.buckets) {
		return 0
	}
	return h.buckets[v]
}

// Fraction returns bucket v's share of the total weight.
func (h *Histogram) Fraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Count(v)) / float64(h.total)
}

// FractionAtLeast returns the share of weight in buckets >= v.
func (h *Histogram) FractionAtLeast(v int) float64 {
	if h.total == 0 {
		return 0
	}
	if v < 0 {
		v = 0
	}
	var s uint64
	for i := v; i < len(h.buckets); i++ {
		s += h.buckets[i]
	}
	return float64(s) / float64(h.total)
}

// Mean returns the weighted mean bucket index.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var s float64
	for i, c := range h.buckets {
		s += float64(i) * float64(c)
	}
	return s / float64(h.total)
}

// Percentile returns the smallest bucket index at or below which at least
// p (0..1) of the weight lies. Returns 0 for an empty histogram.
func (h *Histogram) Percentile(p float64) int {
	if h.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(h.total)
	var cum float64
	for i, c := range h.buckets {
		cum += float64(c)
		if cum >= target {
			return i
		}
	}
	return len(h.buckets) - 1
}

// Peak returns the bucket index with the largest weight (lowest index wins
// ties) and its fraction of the total.
func (h *Histogram) Peak() (bucket int, fraction float64) {
	var best uint64
	for i, c := range h.buckets {
		if c > best {
			best = c
			bucket = i
		}
	}
	return bucket, h.Fraction(bucket)
}

// NonzeroMax returns the highest occupied bucket, or -1 for an empty
// histogram — the natural upper bound when printing a distribution without
// trailing empty rows.
func (h *Histogram) NonzeroMax() int {
	for i := len(h.buckets) - 1; i >= 0; i-- {
		if h.buckets[i] != 0 {
			return i
		}
	}
	return -1
}

// Size returns the number of buckets.
func (h *Histogram) Size() int { return len(h.buckets) }

// Reset clears all buckets.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.total = 0
}

// Ratio is a convenience for hit-rate style statistics.
type Ratio struct {
	Hits  uint64
	Total uint64
}

// Observe records one event and whether it "hit".
func (r *Ratio) Observe(hit bool) {
	r.Total++
	if hit {
		r.Hits++
	}
}

// Value returns Hits/Total, or 0 when no events were observed.
func (r *Ratio) Value() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Total)
}

// Table renders aligned text tables for the experiment harness.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders a float with sensible precision for report tables.
func FormatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (header + rows; cells with
// commas or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// SortRowsBy sorts data rows by the given column, treating cells as strings.
func (t *Table) SortRowsBy(col int) {
	sort.SliceStable(t.rows, func(i, j int) bool {
		if col >= len(t.rows[i]) || col >= len(t.rows[j]) {
			return false
		}
		return t.rows[i][col] < t.rows[j][col]
	})
}
