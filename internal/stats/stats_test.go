package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanBasics(t *testing.T) {
	var m Mean
	if m.Mean() != 0 || m.StdDev() != 0 || m.N() != 0 {
		t.Fatal("empty mean not zero")
	}
	for _, v := range []uint64{2, 4, 6} {
		m.Add(v)
	}
	if m.Mean() != 4 || m.N() != 3 || m.Min() != 2 || m.Max() != 6 || m.Sum() != 12 {
		t.Fatalf("mean stats wrong: %+v", m)
	}
	want := math.Sqrt(8.0 / 3.0)
	if math.Abs(m.StdDev()-want) > 1e-9 {
		t.Fatalf("stddev %v, want %v", m.StdDev(), want)
	}
	m.Reset()
	if m.N() != 0 || m.Mean() != 0 {
		t.Fatal("reset failed")
	}
}

// TestMeanProperty: the mean lies within [min, max].
func TestMeanProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		var m Mean
		for _, v := range vals {
			m.Add(uint64(v))
		}
		return float64(m.Min()) <= m.Mean()+1e-9 && m.Mean() <= float64(m.Max())+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(8)
	h.Add(0)
	h.Add(3)
	h.Add(3)
	h.AddN(100, 2) // overflow clamps to last bucket
	h.Add(-5)      // clamps to 0
	if h.Total() != 6 {
		t.Fatalf("total %d", h.Total())
	}
	if h.Count(3) != 2 || h.Count(7) != 2 || h.Count(0) != 2 {
		t.Fatalf("counts: %d %d %d", h.Count(3), h.Count(7), h.Count(0))
	}
	if h.Fraction(3) != 2.0/6 {
		t.Fatalf("fraction %v", h.Fraction(3))
	}
	if got := h.FractionAtLeast(3); got != 4.0/6 {
		t.Fatalf("fraction at least: %v", got)
	}
	if b, f := h.Peak(); b != 0 || f != 2.0/6 {
		t.Fatalf("peak %d %v", b, f)
	}
	if h.Size() != 8 {
		t.Fatal("size")
	}
	h.Reset()
	if h.Total() != 0 {
		t.Fatal("reset")
	}
}

// TestHistogramMeanProperty: mean of single-value histogram is that value
// (clamped to range).
func TestHistogramMeanProperty(t *testing.T) {
	f := func(v uint8, n uint8) bool {
		if n == 0 {
			return true
		}
		h := NewHistogram(256)
		h.AddN(int(v), uint64(n))
		return h.Mean() == float64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Fatal("empty ratio")
	}
	r.Observe(true)
	r.Observe(false)
	r.Observe(true)
	r.Observe(true)
	if r.Value() != 0.75 {
		t.Fatalf("ratio %v", r.Value())
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("zebra", 3.14159)
	tb.AddRow("ant", 2)
	out := tb.String()
	if !strings.Contains(out, "name") || !strings.Contains(out, "zebra") {
		t.Fatalf("table output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines (header, sep, 2 rows), got %d", len(lines))
	}
	// All lines aligned to equal prefix widths.
	if len(lines[0]) == 0 || lines[1][0] != '-' {
		t.Fatalf("separator missing:\n%s", out)
	}
	tb.SortRowsBy(0)
	sorted := tb.String()
	if strings.Index(sorted, "ant") > strings.Index(sorted, "zebra") {
		t.Fatalf("sort failed:\n%s", sorted)
	}
}

func TestFormatFloat(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{3, "3"},
		{1234.5, "1234.5"},
		{0.123456, "0.123"},
		{150.25, "150.2"},
	} {
		if got := FormatFloat(tc.in); got != tc.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(100)
	if h.Percentile(0.5) != 0 {
		t.Fatal("empty histogram percentile not 0")
	}
	for v := 1; v <= 100; v++ {
		h.Add(v - 1) // values 0..99 uniformly
	}
	if got := h.Percentile(0.5); got != 49 {
		t.Fatalf("p50 = %d, want 49", got)
	}
	if got := h.Percentile(0.99); got != 98 {
		t.Fatalf("p99 = %d, want 98", got)
	}
	if got := h.Percentile(1.0); got != 99 {
		t.Fatalf("p100 = %d, want 99", got)
	}
	if got := h.Percentile(-1); got != 0 {
		t.Fatalf("clamped p = %d, want 0", got)
	}
	if got := h.Percentile(2); got != 99 {
		t.Fatalf("clamped p = %d, want 99", got)
	}
}

// TestPercentileMonotone property: percentiles are nondecreasing in p.
func TestPercentileMonotone(t *testing.T) {
	h := NewHistogram(64)
	for i := 0; i < 500; i++ {
		h.Add(i * 7 % 64)
	}
	prev := 0
	for p := 0.0; p <= 1.0; p += 0.05 {
		v := h.Percentile(p)
		if v < prev {
			t.Fatalf("percentile not monotone at p=%.2f: %d < %d", p, v, prev)
		}
		prev = v
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("plain", 1)
	tb.AddRow("with,comma", `quo"te`)
	got := tb.CSV()
	want := "name,value\nplain,1\n\"with,comma\",\"quo\"\"te\"\n"
	if got != want {
		t.Fatalf("CSV:\n%q\nwant:\n%q", got, want)
	}
}

func TestHistogramNonzeroMax(t *testing.T) {
	h := NewHistogram(16)
	if got := h.NonzeroMax(); got != -1 {
		t.Fatalf("empty NonzeroMax = %d, want -1", got)
	}
	h.Add(0)
	if got := h.NonzeroMax(); got != 0 {
		t.Fatalf("NonzeroMax = %d, want 0", got)
	}
	h.Add(7)
	h.AddN(3, 5)
	if got := h.NonzeroMax(); got != 7 {
		t.Fatalf("NonzeroMax = %d, want 7", got)
	}
	h.Add(99) // clamps into the last bucket
	if got := h.NonzeroMax(); got != h.Size()-1 {
		t.Fatalf("NonzeroMax after clamp = %d, want %d", got, h.Size()-1)
	}
	h.Reset()
	if got := h.NonzeroMax(); got != -1 {
		t.Fatalf("NonzeroMax after Reset = %d, want -1", got)
	}
}
