package parsim

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestRunCoversEveryShardOnce: each barrier round must run every shard
// exactly once, whatever the worker count / shard count ratio.
func TestRunCoversEveryShardOnce(t *testing.T) {
	for _, tc := range []struct{ workers, shards int }{
		{1, 1}, {1, 4}, {2, 2}, {2, 5}, {3, 4}, {4, 4}, {8, 3}, {4, 16},
	} {
		var hits []atomic.Uint64
		hits = make([]atomic.Uint64, tc.shards)
		p := New(tc.workers, tc.shards, func(sh int) { hits[sh].Add(1) })
		const rounds = 200
		for r := 0; r < rounds; r++ {
			p.Run()
			for sh := range hits {
				if got := hits[sh].Load(); got != uint64(r+1) {
					t.Fatalf("workers=%d shards=%d: shard %d ran %d times after %d rounds",
						tc.workers, tc.shards, sh, got, r+1)
				}
			}
		}
		p.Close()
	}
}

// TestSpanPartition: the static partition must cover [0, shards) exactly,
// with no gaps, overlaps, or out-of-range spans.
func TestSpanPartition(t *testing.T) {
	for workers := 1; workers <= 9; workers++ {
		for shards := workers; shards <= 24; shards++ {
			p := &Pool{workers: workers, shards: shards}
			prev := 0
			for w := 0; w < workers; w++ {
				lo, hi := p.span(w)
				if lo != prev {
					t.Fatalf("w=%d/%d shards=%d: span starts at %d, want %d", w, workers, shards, lo, prev)
				}
				if hi < lo {
					t.Fatalf("w=%d/%d shards=%d: inverted span [%d,%d)", w, workers, shards, lo, hi)
				}
				prev = hi
			}
			if prev != shards {
				t.Fatalf("workers=%d shards=%d: partition covers [0,%d), want [0,%d)", workers, shards, prev, shards)
			}
		}
	}
}

// TestWorkersClamped: worker count clamps to [1, shards].
func TestWorkersClamped(t *testing.T) {
	p := New(16, 3, func(int) {})
	defer p.Close()
	if got := p.Workers(); got != 3 {
		t.Fatalf("16 workers over 3 shards: got %d workers, want 3", got)
	}
	q := New(0, 3, func(int) {})
	defer q.Close()
	if got := q.Workers(); got != 1 {
		t.Fatalf("0 workers: got %d, want 1", got)
	}
}

// TestBarrierPublishesWrites: plain (non-atomic) writes made by the caller
// before Run must be visible to shard bodies, and shard writes must be
// visible to the caller after Run — the pool's documented happens-before
// contract. The race detector (ci.sh runs this package under -race)
// verifies the ordering claim; the assertions verify the values.
func TestBarrierPublishesWrites(t *testing.T) {
	const shards = 4
	in := make([]uint64, shards)
	out := make([]uint64, shards)
	p := New(4, shards, func(sh int) { out[sh] = in[sh] * 3 })
	defer p.Close()
	for r := uint64(1); r <= 500; r++ {
		for sh := range in {
			in[sh] = r + uint64(sh)
		}
		p.Run()
		for sh := range out {
			if want := (r + uint64(sh)) * 3; out[sh] != want {
				t.Fatalf("round %d shard %d: out=%d want %d (stale read through the barrier)", r, sh, out[sh], want)
			}
		}
	}
}

// TestParkAndRewake: workers that parked during an idle stretch must pick
// up later rounds. Gosched pressure forces the park path even on one CPU.
func TestParkAndRewake(t *testing.T) {
	var calls atomic.Uint64
	p := New(2, 2, func(int) { calls.Add(1) })
	defer p.Close()
	p.Run()
	// Idle long enough for the worker to exhaust its spin budget and park.
	for i := 0; i < spinBudget*4; i++ {
		runtime.Gosched()
	}
	p.Run()
	if got := calls.Load(); got != 4 {
		t.Fatalf("2 rounds x 2 shards: %d calls, want 4", got)
	}
}

// TestCloseIdempotentAndRunPanics: Close twice is fine; Run after Close
// must panic rather than hang.
func TestCloseIdempotentAndRunPanics(t *testing.T) {
	p := New(2, 2, func(int) {})
	p.Run()
	p.Close()
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Run after Close did not panic")
		}
	}()
	p.Run()
}

// TestManyPoolsStress: rapid create/run/close cycles (the metamorphic
// equivalence test re-arms the pool mid-run) must not leak or deadlock.
func TestManyPoolsStress(t *testing.T) {
	var total atomic.Uint64
	for i := 0; i < 100; i++ {
		workers := 1 + i%4
		p := New(workers, 4, func(int) { total.Add(1) })
		for r := 0; r < 10; r++ {
			p.Run()
		}
		p.Close()
	}
	if got := total.Load(); got != 100*10*4 {
		t.Fatalf("stress total %d, want %d", got, 100*10*4)
	}
}
