// Package parsim is the bounded worker pool behind deterministic parallel
// simulation: a fixed set of shards (one per memory channel) is statically
// partitioned across a fixed set of workers, and Run executes one barrier
// round — every shard's function runs exactly once, and Run returns only
// after all of them finished.
//
// The pool is built for a caller that invokes Run once per simulated memory
// cycle, millions of times per second, so the barrier is a generation
// counter handshake over atomics rather than channels or sync.WaitGroup:
//
//   - Run publishes a new generation (one atomic add), wakes any parked
//     worker, executes the calling goroutine's own shard span inline, and
//     then spin-waits (with runtime.Gosched) until every worker has stamped
//     the generation as done.
//   - Workers spin on the generation counter for a bounded number of
//     yields; if no round arrives they park on a buffered wake channel.
//     The park/wake handshake is a compare-and-swap on the worker's parked
//     flag, so a wake token is sent if and only if the worker committed to
//     parking — no token is ever lost or left behind.
//
// Memory ordering: everything the caller wrote before Run is visible to the
// workers (the generation add is the release, the worker's generation load
// the acquire), and everything a worker wrote during its shards is visible
// to the caller when Run returns (the worker's done store is the release,
// Run's done load the acquire). Callers therefore need no locks around
// shard state — ownership alternates between the caller (between rounds)
// and exactly one worker (inside a round), which is what the sharestate
// gate's chanlocal annotations assert.
//
// Determinism: the pool adds none of its own. Shard functions run in
// nondeterministic order across workers, so bit-identical simulation
// requires (and the sim packages enforce) that shards touch only
// channel-local state and that cross-shard effects are buffered and merged
// in canonical shard order by the caller after Run returns.
package parsim

import (
	"runtime"
	"sync/atomic"
)

// spinBudget is how many scheduler yields a worker spends polling for the
// next round before parking. Rounds arrive back-to-back while the simulator
// is hot (one per memory cycle), so the budget only matters on the way into
// idle stretches — small enough to release the CPU quickly, large enough
// that consecutive cycles never pay the park/wake round trip.
const spinBudget = 256

// closedGen is the generation value that tells workers to exit.
const closedGen = ^uint64(0)

// Pool runs a fixed shard set across a fixed worker set, one barrier round
// per Run call. Construct with New; a Pool must not be copied.
//
//burstmem:shared barrier coordinator: the generation counter and per-worker done/parked slots are the synchronization protocol itself, accessed only through sync/atomic
type Pool struct {
	workers int // total workers, including the calling goroutine
	shards  int
	fn      func(shard int)

	gen     atomic.Uint64 // current round; closedGen after Close
	slots   []workerSlot  // workers 1..workers-1 (worker 0 is the caller)
	closed  bool
	started bool
}

// workerSlot is one spawned worker's synchronization state, padded so the
// done stamps the caller spins on do not false-share one cache line.
//
//burstmem:shared one slot per spawned worker: done/parked cross goroutines through sync/atomic, wake is a buffered handoff channel
type workerSlot struct {
	done   atomic.Uint64 // last generation this worker completed
	parked atomic.Bool   // set by the worker just before blocking on wake
	wake   chan struct{} // buffered(1); one token per committed park
	_      [104]byte     // pad to two cache lines
}

// New builds a pool of `workers` goroutines (including the caller) over
// `shards` shards, running fn(shard) for every shard on each Run. workers
// is clamped to [1, shards]; with one worker Run degenerates to an inline
// loop and nothing is spawned. fn must not call Run or Close.
func New(workers, shards int, fn func(shard int)) *Pool {
	if shards < 1 {
		panic("parsim: shards must be positive")
	}
	if fn == nil {
		panic("parsim: nil shard function")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > shards {
		workers = shards
	}
	p := &Pool{workers: workers, shards: shards, fn: fn}
	if workers > 1 {
		p.slots = make([]workerSlot, workers-1)
		for i := range p.slots {
			p.slots[i].wake = make(chan struct{}, 1)
		}
		for w := 1; w < workers; w++ {
			lo, hi := p.span(w)
			//detlint:allow goroutine channel-shard worker: runs only between Run's generation publish and done-stamp wait, over state the sharestate gate proves channel-local
			go runWorker(p, &p.slots[w-1], lo, hi)
		}
	}
	p.started = true
	return p
}

// Workers returns the pool's worker count (>= 1, including the caller).
func (p *Pool) Workers() int { return p.workers }

// span returns worker w's half-open shard range [lo, hi). The static
// partition keeps shard-to-worker assignment deterministic (it never
// affects results — it only decides which OS thread runs which channel).
func (p *Pool) span(w int) (lo, hi int) {
	return w * p.shards / p.workers, (w + 1) * p.shards / p.workers
}

// Run executes one barrier round: fn(shard) runs exactly once for every
// shard, and Run returns only after all shards completed. The calling
// goroutine works through worker 0's span itself. Run must not be called
// concurrently with itself or after Close.
//
//burstmem:hotpath
func (p *Pool) Run() {
	if p.closed {
		panic("parsim: Run after Close")
	}
	g := p.gen.Add(1)
	for i := range p.slots {
		s := &p.slots[i]
		if s.parked.Swap(false) {
			s.wake <- struct{}{}
		}
	}
	lo, hi := p.span(0)
	for sh := lo; sh < hi; sh++ {
		//lint:ignore sharestate shard dispatch: the barrier round orders every shard's writes before Run returns; shard bodies are themselves hotpath-annotated and gated
		p.fn(sh)
	}
	for i := range p.slots {
		s := &p.slots[i]
		for s.done.Load() != g {
			runtime.Gosched()
		}
	}
}

// Close terminates the workers and makes further Run calls panic. It is
// idempotent. Shard state is quiescent once Close returns: every worker has
// observed the shutdown generation and stopped.
func (p *Pool) Close() {
	if p.closed || !p.started {
		return
	}
	p.closed = true
	p.gen.Store(closedGen)
	for i := range p.slots {
		s := &p.slots[i]
		if s.parked.Swap(false) {
			s.wake <- struct{}{}
		}
	}
	for i := range p.slots {
		s := &p.slots[i]
		for s.done.Load() != closedGen {
			runtime.Gosched()
		}
	}
}

// runWorker is one spawned worker's loop: wait for a generation, run the
// shard span, stamp the generation done.
func runWorker(p *Pool, s *workerSlot, lo, hi int) {
	last := uint64(0)
	for {
		g := waitGen(p, s, last)
		if g == closedGen {
			s.done.Store(closedGen)
			return
		}
		for sh := lo; sh < hi; sh++ {
			//lint:ignore sharestate shard dispatch on a worker: the pool's done-stamp release publishes every shard write back to the caller
			p.fn(sh)
		}
		s.done.Store(g)
		last = g
	}
}

// waitGen blocks until the published generation moves past last and returns
// it. The park path is a CAS handshake against Run's parked.Swap: whichever
// side wins the exchange owns the wake token, so a worker that raced with a
// publish either proceeds directly (CAS won: the publisher saw parked
// already false and sent nothing) or consumes the token in flight (CAS
// lost: the publisher committed to sending one).
func waitGen(p *Pool, s *workerSlot, last uint64) uint64 {
	for spins := 0; ; {
		if g := p.gen.Load(); g != last {
			return g
		}
		spins++
		if spins < spinBudget {
			runtime.Gosched()
			continue
		}
		s.parked.Store(true)
		if g := p.gen.Load(); g != last {
			if !s.parked.CompareAndSwap(true, false) {
				<-s.wake
			}
			return g
		}
		<-s.wake
		spins = 0
	}
}
