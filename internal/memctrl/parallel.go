package memctrl

// Deterministic parallel channel execution. One memory-controller Tick has
// four phases:
//
//	A. drain due completions (fires OnComplete callbacks into the CPU/cache
//	   domain) — controller goroutine;
//	B. per-channel device + mechanism tick — independent across channels
//	   (all state reached here is //burstmem:chanlocal per the sharestate
//	   gate), so it runs on the parsim worker pool, one shard per channel,
//	   inside one barrier round per memory cycle;
//	C. canonical merge — per-shard completion buffers flush into the shared
//	   heap and per-shard trace captures replay into the main tracer, both
//	   in ascending channel order, reproducing the serial loop's exact heap
//	   push order and trace stream;
//	D. per-cycle statistics sampling — controller goroutine.
//
// Everything a shard reads besides its own channel state (pool occupancy
// counters, configuration) is constant during phase B: submissions arrive
// only via FSB.Tick after Controller.Tick returns, and completions mutate
// the pool only in phase A. The pool barrier orders phase A writes before
// shard reads and shard writes before the phase C merge, so the parallel
// path is free of data races and produces bit-identical output — which the
// differential test tier in internal/sim asserts, byte for byte.

import (
	"burstmem/internal/parsim"
	"burstmem/internal/trace"
)

// parRun is the controller's channel-shard coordinator, present only while
// a worker pool is attached (SetWorkers >= 2 with >= 2 channels, or — rank
// mode — a single channel whose mechanism supports hint prewarming).
//
//burstmem:shared coordinator state: written only by the controller goroutine between barrier rounds; shards read now/to/caps inside a round, ordered by the pool's generation barrier
type parRun struct {
	pool *parsim.Pool
	// now/to bound the cycles of the in-flight barrier round, published to
	// shards by Pool.Run's generation release: a per-cycle round ticks just
	// `now` (to == now+1); a window round ticks [now, to).
	now uint64
	to  uint64
	// caps are the per-channel capture tracers shards emit into while the
	// main tracer is attached; replayed and cleared in phase C.
	caps []*trace.Tracer
	// rankMode marks the single-channel rank-sharded configuration: rounds
	// prewarm the engine's bank-hint cache per rank shard, and the channel
	// itself ticks serially on the controller goroutine afterwards.
	rankMode bool
	// rounds counts barrier crossings (Pool.Run calls) — the denominator
	// the skip-window batching shrinks; exported via BarrierRounds.
	rounds uint64
	// windows/windowCycles/skipCycles break the batched cycles down for
	// the idle-phase crossing metric: each TickWindow costs one round for
	// windowCycles/windows cycles on average, and AccountSkipped cycles
	// cost none at all. Exported via WindowStats.
	windows      uint64
	windowCycles uint64
	skipCycles   uint64
}

// RankPrewarmer is the optional Mechanism extension enabling rank-sharded
// parallelism on single-channel configurations: PrewarmRanks(lo, hi)
// refreshes any per-bank scheduling caches for ranks [lo, hi) without
// touching state outside that rank range, so disjoint ranges are safe to
// run concurrently. Engine.PrewarmRanks is the canonical implementation;
// mechanisms built on the engine just delegate.
type RankPrewarmer interface {
	PrewarmRanks(lo, hi int)
}

// SetWorkers attaches (n >= 2) or detaches (n <= 1) a parallel worker pool.
// With multiple channels the pool runs one shard per channel (n clamped to
// the channel count). With a single channel, rank sharding applies instead
// when the mechanism implements RankPrewarmer and the geometry has at least
// two ranks: shards prewarm per-rank scheduling caches and the channel
// ticks serially — so the paper's single-channel tables get parallelism at
// all. Otherwise the controller stays serial. Calling it again replaces the
// pool (workers of the old pool are released), so worker count may change
// between any two Ticks — output is bit-identical for every setting,
// including mid-run changes. Not safe to call from inside a Tick.
func (c *Controller) SetWorkers(n int) {
	if c.par != nil {
		c.par.pool.Close()
		c.par = nil
	}
	if n <= 1 {
		return
	}
	if len(c.channels) <= 1 {
		rp, ok := c.mechs[0].(RankPrewarmer)
		ranks := c.cfg.Geometry.Ranks
		if !ok || ranks < 2 {
			return
		}
		c.par = &parRun{
			pool: parsim.New(n, ranks, func(r int) {
				rp.PrewarmRanks(r, r+1)
			}),
			rankMode: true,
		}
		return
	}
	caps := make([]*trace.Tracer, len(c.channels))
	for i := range caps {
		caps[i] = trace.NewCapture()
	}
	c.par = &parRun{
		pool: parsim.New(n, len(c.channels), c.tickShard),
		caps: caps,
	}
}

// BarrierRounds returns how many worker-pool barrier rounds the parallel
// coordinator has crossed (0 on the serial path). Without windows every
// ticked cycle costs one round; TickWindow collapses a whole window into
// one, which is the ratio the barrier_crossings_per_kcycle benchmark
// metric tracks.
func (c *Controller) BarrierRounds() uint64 {
	if c.par == nil {
		return 0
	}
	return c.par.rounds
}

// WindowStats reports how the batched idle-phase cycles were covered:
// `windows` TickWindow batches spanning `windowCycles` memory cycles in
// total, plus `skipCycles` cycles fast-forwarded with no barrier at all
// (AccountSkipped). Per-cycle barrier rounds would have cost
// windowCycles+skipCycles crossings for the same span; the batched path
// costs `windows`. All zero on the serial path.
func (c *Controller) WindowStats() (windows, windowCycles, skipCycles uint64) {
	if c.par == nil {
		return 0, 0, 0
	}
	return c.par.windows, c.par.windowCycles, c.par.skipCycles
}

// Workers returns the effective parallel worker count (1 on the serial
// path).
func (c *Controller) Workers() int {
	if c.par == nil {
		return 1
	}
	return c.par.pool.Workers()
}

// tickShard advances one channel's device model and mechanism through the
// round's cycle span [par.now, par.to) — the parallel twin of the serial
// loop body in Tick (one cycle per round) and TickWindow (a whole window
// per round). It runs on a pool worker; everything it reaches is either
// channel-local or read-only for the duration of the barrier round.
//
//burstmem:hotpath
func (c *Controller) tickShard(i int) {
	ch, mech := c.channels[i], c.mechs[i]
	for cyc, to := c.par.now, c.par.to; cyc < to; cyc++ {
		ch.Tick(cyc)
		mech.Tick(cyc)
	}
}

// runShardRound swaps tracer/completion routing to the per-shard buffers,
// crosses one barrier round over the cycle span [from, to), and swaps the
// routing back. The caller merges the buffered effects afterwards.
//
//burstmem:hotpath
func (c *Controller) runShardRound(from, to uint64) (traced bool) {
	p := c.par
	traced = c.tracer != nil
	if traced {
		// Route shard-side emits (device commands, access starts,
		// scheduling marks) into per-channel captures for the round.
		for i, h := range c.hosts {
			h.tr = p.caps[i]
			c.channels[i].SetTracer(p.caps[i], i)
		}
	}
	for _, h := range c.hosts {
		h.buffered = true
	}
	p.now, p.to = from, to
	p.rounds++
	p.pool.Run()
	for _, h := range c.hosts {
		h.buffered = false
	}
	if traced {
		for i, h := range c.hosts {
			h.tr = c.tracer
			c.channels[i].SetTracer(c.tracer, i)
		}
	}
	return traced
}

// tickChannelsParallel runs phase B on the worker pool and then merges the
// per-shard effects in canonical channel order (phase C).
//
//burstmem:hotpath
func (c *Controller) tickChannelsParallel(now uint64) {
	p := c.par
	traced := c.runShardRound(now, now+1)
	// Canonical merge in ascending channel order — exactly the order the
	// serial loop produces trace events and heap pushes in.
	for i, h := range c.hosts {
		if traced {
			c.tracer.Adopt(p.caps[i])
		}
		for _, pc := range h.pending {
			c.completions.push(pc.completion)
		}
		h.pending = h.pending[:0]
		h.pendCur = 0
	}
}

// tickWindowParallel runs one barrier round over the whole window
// [from, to) and then merges the per-shard effects cycle-major: for each
// window cycle, every channel's trace events stamped at that cycle replay
// in channel order and its completions pushed at that cycle flush into the
// heap, followed by the cycle's statistics sample — the exact emission
// order of the serial per-cycle loop, so equal-time heap tie-breaks and
// interval metric folds are bit-identical. The caller (TickWindow)
// guarantees no completion fires and no submission arrives inside the
// window, which is what makes the once-per-window barrier exact: nothing a
// shard could observe mid-window ever changes mid-window.
//
//burstmem:hotpath
func (c *Controller) tickWindowParallel(from, to uint64) {
	p := c.par
	traced := c.runShardRound(from, to)
	for cyc := from; cyc < to; cyc++ {
		for i, h := range c.hosts {
			if traced {
				c.tracer.AdoptUpTo(p.caps[i], cyc)
			}
			for h.pendCur < len(h.pending) && h.pending[h.pendCur].pushed <= cyc {
				c.completions.push(h.pending[h.pendCur].completion)
				h.pendCur++
			}
		}
		c.samplePhase(cyc)
	}
	for _, h := range c.hosts {
		h.pending = h.pending[:0]
		h.pendCur = 0
	}
	c.now = to - 1
}
