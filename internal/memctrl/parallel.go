package memctrl

// Deterministic parallel channel execution. One memory-controller Tick has
// four phases:
//
//	A. drain due completions (fires OnComplete callbacks into the CPU/cache
//	   domain) — controller goroutine;
//	B. per-channel device + mechanism tick — independent across channels
//	   (all state reached here is //burstmem:chanlocal per the sharestate
//	   gate), so it runs on the parsim worker pool, one shard per channel,
//	   inside one barrier round per memory cycle;
//	C. canonical merge — per-shard completion buffers flush into the shared
//	   heap and per-shard trace captures replay into the main tracer, both
//	   in ascending channel order, reproducing the serial loop's exact heap
//	   push order and trace stream;
//	D. per-cycle statistics sampling — controller goroutine.
//
// Everything a shard reads besides its own channel state (pool occupancy
// counters, configuration) is constant during phase B: submissions arrive
// only via FSB.Tick after Controller.Tick returns, and completions mutate
// the pool only in phase A. The pool barrier orders phase A writes before
// shard reads and shard writes before the phase C merge, so the parallel
// path is free of data races and produces bit-identical output — which the
// differential test tier in internal/sim asserts, byte for byte.

import (
	"burstmem/internal/parsim"
	"burstmem/internal/trace"
)

// parRun is the controller's channel-shard coordinator, present only while
// a worker pool is attached (SetWorkers >= 2 with >= 2 channels).
//
//burstmem:shared coordinator state: written only by the controller goroutine between barrier rounds; shards read now/caps inside a round, ordered by the pool's generation barrier
type parRun struct {
	pool *parsim.Pool
	// now is the cycle of the in-flight barrier round, published to shards
	// by Pool.Run's generation release.
	now uint64
	// caps are the per-channel capture tracers shards emit into while the
	// main tracer is attached; replayed and cleared in phase C.
	caps []*trace.Tracer
}

// SetWorkers attaches (n >= 2) or detaches (n <= 1) a parallel worker pool
// for channel execution. n is clamped to the channel count; with fewer than
// two channels or workers the controller stays on the serial path. Calling
// it again replaces the pool (workers of the old pool are released), so
// worker count may change between any two Ticks — output is bit-identical
// for every setting, including mid-run changes. Not safe to call from
// inside a Tick.
func (c *Controller) SetWorkers(n int) {
	if c.par != nil {
		c.par.pool.Close()
		c.par = nil
	}
	if n <= 1 || len(c.channels) <= 1 {
		return
	}
	caps := make([]*trace.Tracer, len(c.channels))
	for i := range caps {
		caps[i] = trace.NewCapture()
	}
	c.par = &parRun{
		pool: parsim.New(n, len(c.channels), c.tickShard),
		caps: caps,
	}
}

// Workers returns the effective parallel worker count (1 on the serial
// path).
func (c *Controller) Workers() int {
	if c.par == nil {
		return 1
	}
	return c.par.pool.Workers()
}

// tickShard advances one channel's device model and mechanism for the
// cycle published in par.now — the parallel twin of the serial loop body
// in Tick. It runs on a pool worker; everything it reaches is either
// channel-local or read-only for the duration of the barrier round.
//
//burstmem:hotpath
func (c *Controller) tickShard(i int) {
	now := c.par.now
	c.channels[i].Tick(now)
	c.mechs[i].Tick(now)
}

// tickChannelsParallel runs phase B on the worker pool and then merges the
// per-shard effects in canonical channel order (phase C).
//
//burstmem:hotpath
func (c *Controller) tickChannelsParallel(now uint64) {
	p := c.par
	traced := c.tracer != nil
	if traced {
		// Route shard-side emits (device commands, access starts,
		// scheduling marks) into per-channel captures for the round.
		for i, h := range c.hosts {
			h.tr = p.caps[i]
			c.channels[i].SetTracer(p.caps[i], i)
		}
	}
	for _, h := range c.hosts {
		h.buffered = true
	}
	p.now = now
	p.pool.Run()
	for _, h := range c.hosts {
		h.buffered = false
	}
	if traced {
		for i, h := range c.hosts {
			h.tr = c.tracer
			c.channels[i].SetTracer(c.tracer, i)
		}
	}
	// Canonical merge in ascending channel order — exactly the order the
	// serial loop produces trace events and heap pushes in.
	for i, h := range c.hosts {
		if traced {
			c.tracer.Adopt(p.caps[i])
		}
		for _, pc := range h.pending {
			c.completions.push(pc)
		}
		h.pending = h.pending[:0]
	}
}
