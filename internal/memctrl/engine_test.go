package memctrl

import (
	"testing"

	"burstmem/internal/addrmap"
	"burstmem/internal/dram"
)

// engineHarness builds a single-channel controller with a do-nothing
// mechanism so tests can drive an Engine by hand.
type inertMech struct{ engine *Engine }

func (m *inertMech) Name() string                  { return "inert" }
func (m *inertMech) ForwardsWrites() bool          { return false }
func (m *inertMech) Pending() (int, int)           { return 0, 0 }
func (m *inertMech) Enqueue(a *Access, now uint64) {}
func (m *inertMech) Tick(now uint64)               {}

func newEngineHarness(t *testing.T) (*Controller, *inertMech) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Timing.TREFI = 0
	cfg.Geometry = addrmap.Geometry{
		Channels: 1, Ranks: 2, Banks: 2, Rows: 16, ColumnLines: 16, LineBytes: 64,
	}
	cfg.PoolSize = 16
	cfg.MaxWrites = 8
	var mech *inertMech
	c, err := New(cfg, func(h *Host) Mechanism {
		mech = &inertMech{}
		mech.engine = NewEngine(h, nil)
		return mech
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Tick(0)
	return c, mech
}

func TestEngineOngoingBookkeeping(t *testing.T) {
	c, m := newEngineHarness(t)
	a, ok := c.Submit(KindRead, c.Mapper().Encode(addrmap.Loc{Rank: 1, Bank: 1, Row: 3}), nil)
	if !ok {
		t.Fatal("submit failed")
	}
	if m.engine.Ongoing(1, 1) != nil {
		t.Fatal("fresh engine has an ongoing access")
	}
	m.engine.SetOngoing(1, 1, a)
	if m.engine.Ongoing(1, 1) != a {
		t.Fatal("ongoing not installed")
	}
	m.engine.ClearOngoing(1, 1)
	if m.engine.Ongoing(1, 1) != nil {
		t.Fatal("ongoing not cleared")
	}
}

func TestEngineCandidatesAndIssue(t *testing.T) {
	c, m := newEngineHarness(t)
	a, _ := c.Submit(KindRead, c.Mapper().Encode(addrmap.Loc{Rank: 0, Bank: 0, Row: 2}), nil)
	m.engine.SetOngoing(0, 0, a)

	// Closed bank: candidate must be an unblocked activate.
	cands := m.engine.Candidates()
	if len(cands) != 1 {
		t.Fatalf("%d candidates, want 1", len(cands))
	}
	if cands[0].Cmd != dram.CmdActivate || !cands[0].Unblocked || cands[0].IsColumn() {
		t.Fatalf("candidate %+v, want unblocked activate", cands[0])
	}
	m.engine.Issue(cands[0], 0)
	if !a.Started() {
		t.Fatal("access not marked started after first transaction")
	}
	if a.Outcome != dram.RowEmpty {
		t.Fatalf("outcome %v, want empty", a.Outcome)
	}

	// Step until the column is unblocked (tRCD), then issue it; the
	// ongoing slot must clear and a completion must be scheduled.
	cyc := uint64(0)
	for {
		cyc++
		c.Tick(cyc)
		cands = m.engine.Candidates()
		if len(cands) == 1 && cands[0].Cmd == dram.CmdRead && cands[0].Unblocked {
			m.engine.Issue(cands[0], cyc)
			break
		}
		if cyc > 100 {
			t.Fatal("column never unblocked")
		}
	}
	if m.engine.Ongoing(0, 0) != nil {
		t.Fatal("ongoing slot not cleared after column issue")
	}
	if a.DataEnd <= cyc {
		t.Fatalf("DataEnd %d not in the future of %d", a.DataEnd, cyc)
	}
	// Candidates must be empty now.
	if got := len(m.engine.Candidates()); got != 0 {
		t.Fatalf("%d candidates after completion, want 0", got)
	}
}

func TestEngineForEachBank(t *testing.T) {
	_, m := newEngineHarness(t)
	visited := map[[2]int]bool{}
	m.engine.ForEachBank(func(r, b int) { visited[[2]int{r, b}] = true })
	if len(visited) != 4 {
		t.Fatalf("visited %d banks, want 4 (2 ranks x 2 banks)", len(visited))
	}
}

func TestEngineOnColumnHook(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Timing.TREFI = 0
	cfg.Geometry = addrmap.Geometry{
		Channels: 1, Ranks: 1, Banks: 1, Rows: 8, ColumnLines: 8, LineBytes: 64,
	}
	cfg.PoolSize = 4
	cfg.MaxWrites = 2
	var hook []*Access
	var eng *Engine
	c, err := New(cfg, func(h *Host) Mechanism {
		m := &inertMech{}
		m.engine = NewEngine(h, func(a *Access, now uint64) { hook = append(hook, a) })
		eng = m.engine
		return m
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Tick(0)
	a, _ := c.Submit(KindWrite, 0, nil)
	eng.SetOngoing(0, 0, a)
	for cyc := uint64(1); cyc < 200 && len(hook) == 0; cyc++ {
		c.Tick(cyc)
		for _, cand := range eng.Candidates() {
			if cand.Unblocked {
				eng.Issue(cand, cyc)
			}
		}
	}
	if len(hook) != 1 || hook[0] != a {
		t.Fatalf("onColumn hook fired %d times", len(hook))
	}
}
