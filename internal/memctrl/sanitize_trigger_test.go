//go:build invariants

package memctrl

import (
	"fmt"
	"strings"
	"testing"
)

// These tests prove the -tags invariants access-pool sanitizer fires on
// lifecycle bugs: double release and handing a released access back into the
// scheduling machinery.

func mustPanicContaining(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not contain %q", msg, want)
		}
	}()
	f()
}

func TestPoolSanitizerTriggers(t *testing.T) {
	tests := []struct {
		name string
		want string
		run  func(c *Controller)
	}{
		{
			name: "double release",
			want: "double release of",
			run: func(c *Controller) {
				a := c.acquire()
				c.release(a)
				c.release(a)
			},
		},
		{
			name: "list link after release",
			want: "list link of",
			run: func(c *Controller) {
				a := c.acquire()
				c.release(a)
				var l AccessList
				l.PushBack(a)
			},
		},
		{
			name: "completion scheduling after release",
			want: "CompleteAt of",
			run: func(c *Controller) {
				a := c.acquire()
				c.release(a)
				h := &Host{ctrl: c}
				h.CompleteAt(a, 100)
			},
		},
		{
			name: "start bookkeeping after release",
			want: "StartAccess of",
			run: func(c *Controller) {
				a := c.acquire()
				c.release(a)
				h := &Host{ctrl: c}
				h.StartAccess(a, 100)
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c := &Controller{now: 42}
			mustPanicContaining(t, "sanitizer: ", func() { tc.run(c) })
			mustPanicContaining(t, tc.want, func() { tc.run(&Controller{}) })
		})
	}
}

// TestPoolSanitizerReuse checks the non-panicking lifecycle: release followed
// by a fresh acquire revives the same object, and directly constructed
// accesses (never pooled) pass every check.
func TestPoolSanitizerReuse(t *testing.T) {
	c := &Controller{}
	a := c.acquire()
	c.release(a)
	b := c.acquire()
	if a != b {
		t.Fatalf("pool did not recycle the released access")
	}
	c.release(b) // must not panic: the acquire revived it

	var l AccessList
	direct := &Access{}
	l.PushBack(direct) // never pooled: treated as live
	l.Remove(direct)
}
