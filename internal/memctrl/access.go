// Package memctrl provides the memory-controller chassis shared by every
// access reordering mechanism: the access abstraction, the shared access
// pool (paper Table 3: 256 entries, at most 64 writes), write-queue RAW
// forwarding, per-bank transaction stepping, completion scheduling and the
// controller statistics the paper's evaluation reports (latency, row
// outcome, outstanding-access distribution, write-queue saturation, bus
// utilization).
//
// A scheduling mechanism (package core implements the paper's burst
// scheduling; package sched the baselines) plugs in as a Mechanism: it owns
// the queues and decides, each memory cycle, which SDRAM transaction to
// issue on its channel.
package memctrl

import (
	"fmt"

	"burstmem/internal/addrmap"
	"burstmem/internal/dram"
)

// Kind distinguishes memory reads from writes.
type Kind int

// Access kinds. Reads return data to the CPU; writes complete immediately
// from the CPU's view once accepted (paper Section 3.1).
const (
	KindRead Kind = iota
	KindWrite
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == KindRead {
		return "read"
	}
	return "write"
}

// Access is one main-memory access (a lowest-level-cache miss or
// writeback). An access may require up to three SDRAM transactions —
// precharge, activate, column — depending on bank state.
//
//burstmem:shared accesses are pooled controller-wide; the pool (and the free-list links) will be arbitrated by the controller goroutine, and an in-flight access is owned by exactly one channel between enqueue and completion
type Access struct {
	ID   uint64
	Kind Kind
	Addr uint64
	Loc  addrmap.Loc

	// Arrival is the memory cycle the access was accepted into the
	// controller pool.
	Arrival uint64
	// Start is the cycle the access's first transaction issued.
	Start uint64
	// DataEnd is the cycle after the access's last data beat.
	DataEnd uint64
	// Outcome is the row outcome observed when the access started.
	Outcome dram.RowOutcome
	// Forwarded marks a read satisfied from the write queue.
	Forwarded bool

	// OnComplete, when set, runs when the access's data finishes (reads:
	// data returned; writes: drained to the device).
	OnComplete func(a *Access, now uint64)

	started bool

	// san is the build-tag-gated pool-lifecycle sanitizer (see
	// sanitize_on.go); zero-size with no-op methods unless built with
	// -tags invariants.
	san accessSan

	// next/prev link the access into one intrusive AccessList (a
	// mechanism's per-bank queue, or the controller's free list). An
	// access is on at most one list at a time.
	next, prev *Access
}

// Next returns the following access in the list this access is linked
// into, or nil at the tail. Iterate with:
//
//	for a := l.Front(); a != nil; a = a.Next() { ... }
func (a *Access) Next() *Access { return a.next }

// AccessList is an intrusive doubly-linked list of accesses. Push, pop and
// removal are O(1) and allocation-free; mechanisms use one per bank so
// arbitration never splices slices.
//
//burstmem:chanlocal
type AccessList struct {
	head, tail *Access
	n          int
}

// Len returns the number of linked accesses.
func (l *AccessList) Len() int { return l.n }

// Empty reports whether the list has no accesses.
func (l *AccessList) Empty() bool { return l.n == 0 }

// Front returns the head access, or nil when empty.
func (l *AccessList) Front() *Access { return l.head }

// PushBack appends a at the tail. a must not be on any list.
//
//burstmem:hotpath
func (l *AccessList) PushBack(a *Access) {
	a.san.checkLive(a, "list link")
	a.prev = l.tail
	a.next = nil
	if l.tail != nil {
		l.tail.next = a
	} else {
		l.head = a
	}
	l.tail = a
	l.n++
}

// PushFront prepends a at the head. a must not be on any list.
//
//burstmem:hotpath
func (l *AccessList) PushFront(a *Access) {
	a.san.checkLive(a, "list link")
	a.next = l.head
	a.prev = nil
	if l.head != nil {
		l.head.prev = a
	} else {
		l.tail = a
	}
	l.head = a
	l.n++
}

// Remove unlinks a, which must be on this list.
//
//burstmem:hotpath
func (l *AccessList) Remove(a *Access) {
	if a.prev != nil {
		a.prev.next = a.next
	} else {
		l.head = a.next
	}
	if a.next != nil {
		a.next.prev = a.prev
	} else {
		l.tail = a.prev
	}
	a.next, a.prev = nil, nil
	l.n--
}

// PopFront unlinks and returns the head access; nil when empty.
//
//burstmem:hotpath
func (l *AccessList) PopFront() *Access {
	a := l.head
	if a != nil {
		l.Remove(a)
	}
	return a
}

// Started reports whether the access has issued its first transaction.
func (a *Access) Started() bool { return a.started }

// Target returns the access's DRAM command target within its channel.
//
//burstmem:hotpath
func (a *Access) Target() dram.Target {
	return dram.Target{
		Rank: int(a.Loc.Rank),
		Bank: int(a.Loc.Bank),
		Row:  a.Loc.Row,
		Col:  a.Loc.Col,
	}
}

// LineAddr returns the cache-line-aligned address used for RAW forwarding.
//
//burstmem:hotpath
func (a *Access) LineAddr(lineBytes int) uint64 {
	return a.Addr &^ uint64(lineBytes-1)
}

// String renders the access for traces and error messages.
func (a *Access) String() string {
	return fmt.Sprintf("%s#%d@%s", a.Kind, a.ID, a.Loc)
}

// Mechanism is one access reordering policy driving one channel.
//
// The controller guarantees Enqueue is only called when the shared pool has
// space, and Tick is called once per memory cycle after the channel's
// refresh engine ran. A mechanism issues at most one transaction per Tick,
// and only when its channel's command slot is free.
type Mechanism interface {
	// Name returns the mechanism's table name (e.g. "Burst_TH").
	Name() string
	// Enqueue admits an access into the mechanism's queues.
	Enqueue(a *Access, now uint64)
	// Tick lets the mechanism refill bank arbiters and issue at most one
	// transaction.
	Tick(now uint64)
	// Pending returns the number of queued-or-ongoing reads and writes.
	Pending() (reads, writes int)
	// ForwardsWrites reports whether reads should be satisfied from the
	// pending-write pool (paper Fig. 4). In-order mechanisms that never
	// let reads pass writes return false.
	ForwardsWrites() bool
}

// Factory builds a Mechanism for one channel. The Host gives the mechanism
// access to its channel, configuration and completion plumbing.
type Factory func(h *Host) Mechanism
