package memctrl

// BankQueues is a per-bank set of intrusive access FIFOs with a
// nonempty-bank bitmap per rank, the queue structure shared by the
// scheduling mechanisms. Push/pop/remove are O(1); finding banks with
// queued work is a bitmap walk (bits.TrailingZeros64) instead of a scan
// over every rank×bank slot.
//
//burstmem:chanlocal
type BankQueues struct {
	banks int
	qs    []AccessList // flattened [rank*banks + bank]
	ne    []uint64     // per-rank nonempty-bank bitmaps
}

// NewBankQueues builds queues for a ranks×banks channel. Banks must be
// ≤ 64 (enforced by memctrl.Config.Validate).
func NewBankQueues(ranks, banks int) *BankQueues {
	return &BankQueues{
		banks: banks,
		qs:    make([]AccessList, ranks*banks),
		ne:    make([]uint64, ranks),
	}
}

// List returns the bank's queue.
func (q *BankQueues) List(r, b int) *AccessList { return &q.qs[r*q.banks+b] }

// Mask returns the rank's nonempty-bank bitmap.
func (q *BankQueues) Mask(r int) uint64 { return q.ne[r] }

// PushBack appends a to its bank's queue (keyed by a.Loc).
//
//burstmem:hotpath
func (q *BankQueues) PushBack(a *Access) {
	r, b := int(a.Loc.Rank), int(a.Loc.Bank)
	q.qs[r*q.banks+b].PushBack(a)
	q.ne[r] |= 1 << uint(b)
}

// PushFront prepends a to its bank's queue (e.g. a preempted write going
// back to the head).
//
//burstmem:hotpath
func (q *BankQueues) PushFront(a *Access) {
	r, b := int(a.Loc.Rank), int(a.Loc.Bank)
	q.qs[r*q.banks+b].PushFront(a)
	q.ne[r] |= 1 << uint(b)
}

// Remove unlinks a from its bank's queue.
//
//burstmem:hotpath
func (q *BankQueues) Remove(a *Access) {
	r, b := int(a.Loc.Rank), int(a.Loc.Bank)
	l := &q.qs[r*q.banks+b]
	l.Remove(a)
	if l.Empty() {
		q.ne[r] &^= 1 << uint(b)
	}
}

// PopFront unlinks and returns the bank's head access; nil when empty.
//
//burstmem:hotpath
func (q *BankQueues) PopFront(r, b int) *Access {
	l := &q.qs[r*q.banks+b]
	a := l.PopFront()
	if l.Empty() {
		q.ne[r] &^= 1 << uint(b)
	}
	return a
}
