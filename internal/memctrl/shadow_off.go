//go:build !invariants

package memctrl

// engineShadow is the disabled build of the next-event shadow checker: a
// zero-size field on Engine whose no-op method inlines away. Build with
// -tags invariants to enable the wheel-vs-linear-scan cross-check in
// shadow_on.go.
type engineShadow struct{}

func (engineShadow) checkNextEvent(e *Engine, now, fast uint64) {}
