//go:build !invariants

package memctrl

// accessSan is the disabled build of the access-pool lifecycle sanitizer: a
// zero-size field on Access whose no-op methods inline away. Build with
// -tags invariants to enable the poisoning checker in sanitize_on.go.
type accessSan struct{}

func (accessSan) acquired(a *Access, now uint64) {}
func (accessSan) released(a *Access, now uint64) {}
func (accessSan) checkLive(a *Access, op string) {}
