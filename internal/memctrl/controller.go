package memctrl

import (
	"fmt"

	"burstmem/internal/addrmap"
	"burstmem/internal/dram"
	"burstmem/internal/stats"
	"burstmem/internal/trace"
	"burstmem/internal/u64map"
)

// RowPolicy is the static controller page policy (paper Section 2).
type RowPolicy int

// Row policies: OpenPage leaves rows open after access; ClosePageAuto
// precharges automatically after every column access.
const (
	OpenPage RowPolicy = iota
	ClosePageAuto
)

// Config describes the memory controller (paper Table 3 defaults via
// DefaultConfig).
type Config struct {
	Timing    dram.Timing
	Geometry  addrmap.Geometry
	Mapping   string // addrmap mapping name; "" = page interleaving
	RowPolicy RowPolicy

	// PoolSize is the shared access pool capacity; MaxWrites caps the
	// write share of the pool (the write queue size).
	PoolSize  int
	MaxWrites int

	// ForwardLatency is the controller-internal latency, in memory
	// cycles, of returning write-queue data to a forwarded read.
	ForwardLatency int
	// NoForwarding disables write-queue RAW forwarding even for
	// mechanisms that request it (ablation).
	NoForwarding bool
}

// DefaultConfig returns the paper's Table 3 baseline: DDR2 PC2-6400 5-5-5,
// 4 GB in 2 channels x 4 ranks x 4 banks, open page, page interleaving,
// 256-entry pool with at most 64 writes.
func DefaultConfig() Config {
	return Config{
		Timing:         dram.DDR2_800(),
		Geometry:       addrmap.DefaultGeometry(),
		Mapping:        "page-interleave",
		RowPolicy:      OpenPage,
		PoolSize:       256,
		MaxWrites:      64,
		ForwardLatency: 1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if c.PoolSize < 1 {
		return fmt.Errorf("memctrl: pool size must be positive, got %d", c.PoolSize)
	}
	if c.MaxWrites < 1 || c.MaxWrites > c.PoolSize {
		return fmt.Errorf("memctrl: max writes %d must be in [1, pool size %d]", c.MaxWrites, c.PoolSize)
	}
	if c.Geometry.Banks > 64 {
		// Mechanism arbiters track bank occupancy in one uint64 per rank.
		return fmt.Errorf("memctrl: %d banks per rank exceeds the 64 supported", c.Geometry.Banks)
	}
	if _, err := addrmap.ByName(c.Mapping, c.Geometry); err != nil {
		return err
	}
	return nil
}

// latencyHistSize bounds the latency histograms (cycles; higher latencies
// clamp into the last bucket).
const latencyHistSize = 2048

// CtrlStats aggregates controller-level statistics across channels.
//
//burstmem:shared aggregated across every channel; updated only by the controller goroutine
type CtrlStats struct {
	ReadLatency  stats.Mean // arrival -> data returned, memory cycles
	WriteLatency stats.Mean // arrival -> data drained, memory cycles

	// ReadLatencyHist/WriteLatencyHist bucket latencies at cycle
	// granularity for percentile reporting (tail latency is where
	// scheduling fairness shows up).
	ReadLatencyHist  *stats.Histogram
	WriteLatencyHist *stats.Histogram

	OutstandingReads  *stats.Histogram // sampled every memory cycle
	OutstandingWrites *stats.Histogram

	Cycles           uint64
	WriteSatCycles   uint64 // cycles with the write queue at capacity
	PoolFullCycles   uint64 // cycles with the whole pool at capacity
	ForwardedReads   uint64
	AcceptedReads    uint64
	AcceptedWrites   uint64
	RejectedRequests uint64 // Submit calls refused for lack of pool space
	BytesTransferred uint64
}

// WriteSaturationRate returns the fraction of time the write queue was full
// (paper Section 5.1).
func (s *CtrlStats) WriteSaturationRate() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.WriteSatCycles) / float64(s.Cycles)
}

// completion is a pending access-finished event.
type completion struct {
	at     uint64
	access *Access
}

// completionHeap is a hand-rolled binary min-heap ordered by completion
// time. It sifts exactly like container/heap (so event order among equal
// times is unchanged) without the interface boxing that allocated on every
// Push/Pop.
//
//burstmem:shared completion events from every channel funnel through the one heap the controller goroutine drains
type completionHeap struct{ s []completion }

func (h *completionHeap) peek() *completion { return &h.s[0] }
func (h *completionHeap) empty() bool       { return len(h.s) == 0 }

//burstmem:hotpath
func (h *completionHeap) push(v completion) {
	//lint:ignore hotalloc heap slice capacity is bounded by in-flight accesses
	h.s = append(h.s, v)
	j := len(h.s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if h.s[i].at <= h.s[j].at {
			break
		}
		h.s[i], h.s[j] = h.s[j], h.s[i]
		j = i
	}
}

//burstmem:hotpath
func (h *completionHeap) pop() completion {
	n := len(h.s) - 1
	h.s[0], h.s[n] = h.s[n], h.s[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && h.s[j2].at < h.s[j].at {
			j = j2
		}
		if h.s[j].at >= h.s[i].at {
			break
		}
		h.s[i], h.s[j] = h.s[j], h.s[i]
		i = j
	}
	v := h.s[n]
	h.s[n] = completion{}
	h.s = h.s[:n]
	return v
}

// Controller is the full memory controller: one Mechanism instance per
// channel sharing a global access pool, plus statistics.
//
//burstmem:shared owns the cross-channel access pool, completion heap and aggregate statistics; stays on the controller goroutine in the parallel refactor
type Controller struct {
	cfg    Config
	mapper addrmap.Mapper

	channels []*dram.Channel
	hosts    []*Host
	mechs    []Mechanism

	poolReads  int
	poolWrites int

	// pendingWriteLines maps line address -> newest pending write, per
	// channel, for RAW forwarding.
	pendingWriteLines []*u64map.Map[*Access]

	completions completionHeap
	nextID      uint64
	now         uint64
	lastSubmit  uint64 // most recent successful Submit cycle, stored +1 (0 = never)

	// tracer observes the access lifecycle when attached (nil = tracing
	// off; every emit is then an inlined nil check).
	tracer *trace.Tracer

	// freeAccess heads the free list of recycled Access objects (linked
	// through next). Fields reset at acquire time, not release time, so a
	// pointer retained past completion keeps its final values until the
	// object is reused by a later Submit.
	freeAccess *Access

	// par is the channel-shard worker coordinator; nil on the serial path
	// (the default). See parallel.go and SetWorkers.
	par *parRun

	// minColLat is the smallest possible gap, in cycles, between a column
	// command issuing and its data finishing: min(TCL, TCWD) + the data
	// transfer. Any completion scheduled inside a tick window therefore
	// fires at least minColLat cycles after the window start, which is what
	// makes WindowBound's completion-free guarantee sound.
	minColLat uint64

	Stats CtrlStats
}

// acquire pops a recycled access (resetting it) or allocates a fresh one.
//
//burstmem:hotpath
func (c *Controller) acquire() *Access {
	a := c.freeAccess
	if a == nil {
		//lint:ignore hotalloc pool refill: allocates only until the access pool warms up
		a = &Access{}
	} else {
		c.freeAccess = a.next
		*a = Access{}
	}
	a.san.acquired(a, c.now)
	return a
}

// release pushes a completed access onto the free list. Callers must not
// hand out the pointer afterwards.
//
//burstmem:hotpath
func (c *Controller) release(a *Access) {
	a.san.released(a, c.now)
	a.next = c.freeAccess
	c.freeAccess = a
}

// New builds a controller whose channels each run a mechanism built by the
// factory.
func New(cfg Config, factory Factory) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mapper, err := addrmap.ByName(cfg.Mapping, cfg.Geometry)
	if err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg, mapper: mapper}
	colLat := cfg.Timing.TCL
	if cfg.Timing.TCWD < colLat {
		colLat = cfg.Timing.TCWD
	}
	c.minColLat = uint64(colLat + cfg.Timing.DataCycles())
	c.Stats.OutstandingReads = stats.NewHistogram(cfg.PoolSize + 1)
	c.Stats.OutstandingWrites = stats.NewHistogram(cfg.MaxWrites + 1)
	c.Stats.ReadLatencyHist = stats.NewHistogram(latencyHistSize)
	c.Stats.WriteLatencyHist = stats.NewHistogram(latencyHistSize)
	for i := 0; i < cfg.Geometry.Channels; i++ {
		ch, err := dram.NewChannel(cfg.Timing, cfg.Geometry.Ranks, cfg.Geometry.Banks)
		if err != nil {
			return nil, err
		}
		host := &Host{ctrl: c, chIdx: i, ch: ch}
		c.channels = append(c.channels, ch)
		c.hosts = append(c.hosts, host)
		c.mechs = append(c.mechs, factory(host))
		c.pendingWriteLines = append(c.pendingWriteLines, u64map.New[*Access](cfg.MaxWrites))
	}
	// Pre-link the whole access free list: pool admission caps live
	// accesses at PoolSize, so acquire never needs more and the hot loop
	// never pays the pool's warm-up allocations.
	backing := make([]Access, cfg.PoolSize)
	for i := range backing {
		backing[i].next = c.freeAccess
		c.freeAccess = &backing[i]
	}
	c.completions.s = make([]completion, 0, cfg.PoolSize)
	return c, nil
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// SetTracer attaches (or, with nil, detaches) an observability tracer to
// the controller and every channel. Tracing only observes — simulation
// results are bit-identical with or without it.
func (c *Controller) SetTracer(tr *trace.Tracer) {
	c.tracer = tr
	for i, ch := range c.channels {
		ch.SetTracer(tr, i)
		c.hosts[i].tr = tr
	}
}

// Tracer returns the attached tracer (nil when tracing is off). The nil
// tracer is safe to emit on, so call sites never need to check.
func (c *Controller) Tracer() *trace.Tracer { return c.tracer }

// Mapper returns the address mapper in use.
func (c *Controller) Mapper() addrmap.Mapper { return c.mapper }

// Channel returns channel i's device model (for inspecting bus statistics).
func (c *Controller) Channel(i int) *dram.Channel { return c.channels[i] }

// Channels returns the channel count.
func (c *Controller) Channels() int { return len(c.channels) }

// MechanismName returns the name reported by the channel mechanisms.
func (c *Controller) MechanismName() string { return c.mechs[0].Name() }

// Mechanism returns channel i's mechanism instance (for inspecting
// mechanism-specific statistics).
func (c *Controller) Mechanism(i int) Mechanism { return c.mechs[i] }

// CanAccept reports whether the pool can admit an access of the given kind.
func (c *Controller) CanAccept(kind Kind) bool {
	if c.poolReads+c.poolWrites >= c.cfg.PoolSize {
		return false
	}
	if kind == KindWrite && c.poolWrites >= c.cfg.MaxWrites {
		return false
	}
	return true
}

// OutstandingReads returns reads currently in the pool.
func (c *Controller) OutstandingReads() int { return c.poolReads }

// OutstandingWrites returns writes currently in the pool.
func (c *Controller) OutstandingWrites() int { return c.poolWrites }

// Submit admits an access. It returns the created access, or nil with
// ok=false when the pool is full (back-pressure: the caller must retry).
// Reads that hit a pending write are forwarded and complete after
// ForwardLatency cycles without touching the device.
//
//burstmem:hotpath
func (c *Controller) Submit(kind Kind, addr uint64, onComplete func(*Access, uint64)) (*Access, bool) {
	c.lastSubmit = c.now + 1
	loc := c.mapper.Decode(addr)
	chIdx := int(loc.Channel)
	mech := c.mechs[chIdx]
	line := addr &^ uint64(c.cfg.Geometry.LineBytes-1)

	if kind == KindRead && mech.ForwardsWrites() && !c.cfg.NoForwarding {
		if _, hit := c.pendingWriteLines[chIdx].Get(line); hit {
			// Paper Fig. 4: forward the latest write's data; the read
			// completes immediately and never enters the queues.
			a := c.acquire()
			a.ID = c.nextID
			c.nextID++
			a.Kind = kind
			a.Addr = addr
			a.Loc = loc
			a.Arrival = c.now
			a.OnComplete = onComplete
			a.Forwarded = true
			a.DataEnd = c.now + uint64(c.cfg.ForwardLatency)
			c.Stats.ForwardedReads++
			c.Stats.AcceptedReads++
			c.completions.push(completion{at: a.DataEnd, access: a})
			c.tracer.Enqueue(c.now, chIdx, int(loc.Rank), int(loc.Bank), loc.Row, a.ID, false)
			c.tracer.Forward(c.now, chIdx, a.ID)
			return a, true
		}
	}

	if !c.CanAccept(kind) {
		c.Stats.RejectedRequests++
		return nil, false
	}
	a := c.acquire()
	a.ID = c.nextID
	c.nextID++
	a.Kind = kind
	a.Addr = addr
	a.Loc = loc
	a.Arrival = c.now
	a.OnComplete = onComplete
	if kind == KindRead {
		c.poolReads++
		c.Stats.AcceptedReads++
	} else {
		c.poolWrites++
		c.Stats.AcceptedWrites++
		c.pendingWriteLines[chIdx].Put(line, a)
	}
	c.tracer.Enqueue(c.now, chIdx, int(loc.Rank), int(loc.Bank), loc.Row, a.ID, kind == KindWrite)
	mech.Enqueue(a, c.now)
	return a, true
}

// Tick advances the controller one memory cycle: completions fire, refresh
// engines run, each channel's mechanism schedules, and occupancy statistics
// sample.
//
//burstmem:hotpath
func (c *Controller) Tick(now uint64) {
	c.now = now
	c.drainCompletions(now)
	if c.par != nil && !c.par.rankMode {
		c.tickChannelsParallel(now)
	} else {
		if c.par != nil {
			// Rank-sharded mode: one prewarm barrier round refreshes the
			// single channel's bank-hint cache across the workers, then the
			// channel and mechanism tick serially on this goroutine.
			c.par.rounds++
			c.par.pool.Run()
		}
		for i, ch := range c.channels {
			ch.Tick(now)
			c.mechs[i].Tick(now)
		}
	}
	c.samplePhase(now)
}

// drainCompletions fires every completion due at or before now (phase A).
//
//burstmem:hotpath
func (c *Controller) drainCompletions(now uint64) {
	for !c.completions.empty() && c.completions.peek().at <= now {
		done := c.completions.pop()
		c.finish(done.access, done.at)
		c.release(done.access)
	}
}

// samplePhase rolls the per-cycle sampled statistics for one ticked cycle
// (phase D).
//
//burstmem:hotpath
func (c *Controller) samplePhase(now uint64) {
	c.Stats.Cycles++
	c.Stats.OutstandingReads.Add(c.poolReads)
	c.Stats.OutstandingWrites.Add(c.poolWrites)
	if c.poolWrites >= c.cfg.MaxWrites {
		c.Stats.WriteSatCycles++
	}
	if c.poolReads+c.poolWrites >= c.cfg.PoolSize {
		c.Stats.PoolFullCycles++
	}
	c.tracer.SampleOccupancy(now, c.poolReads, c.poolWrites, c.poolWrites >= c.cfg.MaxWrites)
}

// WindowBound returns the largest cycle `to` such that ticking cycles
// [from, to) as one window cannot fire a completion: completions already
// scheduled bound it from above, and any column command issued inside the
// window finishes its data no earlier than from + minColLat. Everything
// else a channel tick can observe besides completions — pool occupancy,
// the write queue — only changes on completions and submissions, so a
// caller that also guarantees no Submit before `to` may batch the whole
// window through TickWindow.
//
//burstmem:hotpath
func (c *Controller) WindowBound(from uint64) uint64 {
	to := from + c.minColLat
	if !c.completions.empty() {
		if at := c.completions.peek().at; at < to {
			to = at
		}
	}
	return to
}

// TickWindow advances the controller through cycles [from, to) in one
// batch. Caller contract: from is the cycle after the last ticked one,
// to <= WindowBound(from), and no Submit call happens for the whole
// window. Observable behaviour — statistics, trace stream, completion
// order — is bit-identical to calling Tick for each cycle; the parallel
// coordinator crosses its barrier once for the whole window instead of
// once per cycle.
//
//burstmem:hotpath
func (c *Controller) TickWindow(from, to uint64) {
	if to <= from {
		return
	}
	if c.par != nil {
		c.par.windows++
		c.par.windowCycles += to - from
	}
	if c.par != nil && !c.par.rankMode {
		c.tickWindowParallel(from, to)
		return
	}
	if c.par != nil {
		// Rank-sharded mode: one prewarm round covers the window start;
		// in-window hint invalidations re-sync serially as always.
		c.par.rounds++
		c.par.pool.Run()
	}
	for cyc := from; cyc < to; cyc++ {
		c.now = cyc
		c.drainCompletions(cyc)
		for i, ch := range c.channels {
			ch.Tick(cyc)
			c.mechs[i].Tick(cyc)
		}
		c.samplePhase(cyc)
	}
}

// NoEvent is the "no scheduled event" sentinel (== dram.NoEvent).
const NoEvent = ^uint64(0)

// EventHinter is the optional Mechanism extension enabling idle-cycle
// skipping. NextEventCycle returns the earliest future cycle at which the
// mechanism could take an action given frozen inputs (no submissions or
// completions in between): typically the engine's earliest-issue bound,
// plus any mechanism-internal timers. Mechanisms that cannot bound their
// next action must not implement it — the controller then never reports a
// skippable window.
type EventHinter interface {
	NextEventCycle(now uint64) uint64
}

// NextEventCycle returns the earliest cycle at which controller state can
// change, given no new submissions: the next completion, refresh event, or
// mechanism action. It returns now+1 (nothing skippable) whenever the
// current cycle is not settled — a command issued or an access was
// submitted this cycle, so mechanisms may act again immediately.
//
// Callers may safely fast-forward to the returned cycle (accounting the
// gap via AccountSkipped) when the rest of the machine is idle too.
//
//burstmem:hotpath
func (c *Controller) NextEventCycle(now uint64) uint64 {
	if c.lastSubmit > now {
		return now + 1
	}
	next := NoEvent
	for i, ch := range c.channels {
		if !ch.CommandSlotFree() {
			return now + 1
		}
		h, ok := c.mechs[i].(EventHinter)
		if !ok {
			return now + 1
		}
		if v := h.NextEventCycle(now); v < next {
			next = v
		}
		if v := ch.NextEventCycle(now); v < next {
			next = v
		}
	}
	if !c.completions.empty() {
		if at := c.completions.peek().at; at < next {
			next = at
		}
	}
	if next <= now {
		return now + 1
	}
	return next
}

// AccountSkipped attributes k skipped idle cycles to the controller's
// per-cycle sampled statistics, exactly as k no-op Ticks would have
// (occupancy cannot change during a skip).
//
//burstmem:hotpath
func (c *Controller) AccountSkipped(k uint64) {
	if k == 0 {
		return
	}
	if c.par != nil {
		c.par.skipCycles += k
	}
	c.Stats.Cycles += k
	c.Stats.OutstandingReads.AddN(c.poolReads, k)
	c.Stats.OutstandingWrites.AddN(c.poolWrites, k)
	if c.poolWrites >= c.cfg.MaxWrites {
		c.Stats.WriteSatCycles += k
	}
	if c.poolReads+c.poolWrites >= c.cfg.PoolSize {
		c.Stats.PoolFullCycles += k
	}
	for _, ch := range c.channels {
		ch.AccountSkipped(k)
	}
	// Skipped cycles are (now, now+k]; occupancy is constant across a skip.
	c.tracer.SampleOccupancySkipped(c.now, c.now+k, c.poolReads, c.poolWrites,
		c.poolWrites >= c.cfg.MaxWrites)
}

// finish retires a completed access: statistics, pool release, callback.
//
//burstmem:hotpath
func (c *Controller) finish(a *Access, at uint64) {
	latency := at - a.Arrival
	if a.Kind == KindRead {
		c.Stats.ReadLatency.Add(latency)
		c.Stats.ReadLatencyHist.Add(int(latency))
		if !a.Forwarded {
			c.poolReads--
		}
	} else {
		c.Stats.WriteLatency.Add(latency)
		c.Stats.WriteLatencyHist.Add(int(latency))
		c.poolWrites--
		chIdx := int(a.Loc.Channel)
		line := a.LineAddr(c.cfg.Geometry.LineBytes)
		if cur, ok := c.pendingWriteLines[chIdx].Get(line); ok && cur == a {
			c.pendingWriteLines[chIdx].Delete(line)
		}
	}
	if !a.Forwarded {
		c.Stats.BytesTransferred += uint64(c.cfg.Geometry.LineBytes)
	}
	if c.tracer != nil {
		var flags uint64
		if a.Kind == KindWrite {
			flags |= trace.FlagWrite
		}
		if a.Forwarded {
			flags |= trace.FlagForwarded
		}
		c.tracer.Complete(at, int(a.Loc.Channel), int(a.Loc.Rank), int(a.Loc.Bank),
			a.Loc.Row, a.ID, a.Start, flags)
	}
	if a.OnComplete != nil {
		//lint:ignore sharestate completion callback is the public API's wakeup hook; callers own what it writes (the core updates chanlocal bank state)
		a.OnComplete(a, at)
	}
}

// ResetStats zeroes all controller and channel statistics without touching
// queue or device state, opening a measurement window after warmup.
func (c *Controller) ResetStats() {
	reads := c.Stats.OutstandingReads
	writes := c.Stats.OutstandingWrites
	rl := c.Stats.ReadLatencyHist
	wl := c.Stats.WriteLatencyHist
	reads.Reset()
	writes.Reset()
	rl.Reset()
	wl.Reset()
	c.Stats = CtrlStats{
		OutstandingReads: reads, OutstandingWrites: writes,
		ReadLatencyHist: rl, WriteLatencyHist: wl,
	}
	for _, ch := range c.channels {
		ch.Stats = dram.Stats{}
	}
}

// Drained reports whether all queues and in-flight completions are empty.
func (c *Controller) Drained() bool {
	return c.poolReads == 0 && c.poolWrites == 0 && c.completions.empty()
}

// BusUtilization aggregates data/address bus utilization across channels.
func (c *Controller) BusUtilization() (data, address float64) {
	if c.Stats.Cycles == 0 {
		return 0, 0
	}
	for _, ch := range c.channels {
		data += ch.Stats.DataBusUtilization(c.Stats.Cycles)
		address += ch.Stats.AddressBusUtilization(c.Stats.Cycles)
	}
	n := float64(len(c.channels))
	return data / n, address / n
}

// RowOutcomeRates aggregates access-level row outcome fractions across
// channels.
func (c *Controller) RowOutcomeRates() (hit, empty, conflict float64) {
	var agg dram.Stats
	for _, ch := range c.channels {
		for i := range agg.Outcomes {
			agg.Outcomes[i] += ch.Stats.Outcomes[i]
		}
	}
	return agg.RowHitRate()
}

// EffectiveBandwidth returns achieved bandwidth in bytes per memory cycle.
// Multiply by the memory clock to get bytes/second (paper Section 5.2
// quotes GB/s at 400 MHz).
func (c *Controller) EffectiveBandwidth() float64 {
	if c.Stats.Cycles == 0 {
		return 0
	}
	return float64(c.Stats.BytesTransferred) / float64(c.Stats.Cycles)
}

// Host is a mechanism's view of the controller: its channel plus the
// shared-state queries and completion plumbing mechanisms need. Under
// parallel execution each Host belongs to exactly one channel shard, and
// its emit/complete plumbing is the seam where per-shard effects are
// buffered for the canonical post-barrier merge.
type Host struct {
	ctrl  *Controller
	chIdx int
	ch    *dram.Channel

	// tr is the tracer mechanisms emit through: the controller's tracer on
	// the serial path, this channel's capture tracer inside a parallel
	// barrier round (tickChannelsParallel swaps it at the round edges).
	//
	//burstmem:shared swapped only by the controller goroutine at barrier edges; a shard reads it only inside its own round, ordered by the pool barrier
	tr *trace.Tracer

	// buffered routes CompleteAt into pending instead of the controller's
	// completion heap while this host's shard may be running off-thread.
	//
	//burstmem:shared toggled only by the controller goroutine around the barrier; constant while shards run
	buffered bool

	// pending holds this shard's completion pushes during a barrier round;
	// the controller flushes it into the heap in channel order afterwards,
	// reproducing the serial path's exact heap push order. Each entry is
	// stamped with the channel cycle that pushed it, so a multi-cycle
	// window round can flush cycle-major across channels (the serial
	// order); pendCur is the window merge's flush cursor.
	//
	//burstmem:chanlocal
	pending []shardCompletion
	// pendCur is advanced only by the coordinator's serial merge, but it
	// belongs to this host's object graph like pending itself.
	//
	//burstmem:chanlocal
	pendCur int
}

// shardCompletion is one buffered completion push plus the channel cycle
// that produced it.
type shardCompletion struct {
	completion
	pushed uint64
}

// Channel returns the host channel device.
func (h *Host) Channel() *dram.Channel { return h.ch }

// ChannelIndex returns which channel this mechanism drives.
func (h *Host) ChannelIndex() int { return h.chIdx }

// Config returns the controller configuration.
func (h *Host) Config() Config { return h.ctrl.cfg }

// Tracer returns the tracer this host currently emits through (nil when
// tracing is off): the controller's tracer, or — inside a parallel barrier
// round — this channel's capture tracer. The nil tracer is safe to emit
// on, so mechanisms never check.
func (h *Host) Tracer() *trace.Tracer { return h.tr }

// GlobalWrites returns the controller-wide pending write count, the
// occupancy the paper's threshold compares against.
func (h *Host) GlobalWrites() int { return h.ctrl.poolWrites }

// GlobalReads returns the controller-wide pending read count.
func (h *Host) GlobalReads() int { return h.ctrl.poolReads }

// WriteQueueFull reports whether the write queue is at capacity.
func (h *Host) WriteQueueFull() bool { return h.ctrl.poolWrites >= h.ctrl.cfg.MaxWrites }

// AutoPrecharge reports whether column accesses should auto-precharge
// (Close Page Autoprecharge policy).
func (h *Host) AutoPrecharge() bool { return h.ctrl.cfg.RowPolicy == ClosePageAuto }

// StartAccess records that an access's first transaction is issuing now:
// its start time and the row outcome it encountered. Safe to call on every
// transaction; only the first records (so a preempted-then-restarted write
// keeps its original outcome).
//
//burstmem:hotpath
func (h *Host) StartAccess(a *Access, now uint64) {
	a.san.checkLive(a, "StartAccess")
	if a.started {
		return
	}
	a.started = true
	a.Start = now
	a.Outcome = h.ch.Classify(a.Target())
	h.ch.RecordOutcome(a.Outcome)
	h.tr.Start(now, h.chIdx, int(a.Loc.Rank), int(a.Loc.Bank), a.Loc.Row,
		a.ID, int(a.Outcome), a.Kind == KindWrite)
}

// CompleteAt schedules the access-finished event for the given cycle (the
// access's data end).
//
//burstmem:hotpath
func (h *Host) CompleteAt(a *Access, dataEnd uint64) {
	a.san.checkLive(a, "CompleteAt")
	a.DataEnd = dataEnd
	if h.buffered {
		// Parallel barrier round: defer the heap push. The controller
		// flushes pending in channel order after the barrier, so the heap
		// sees pushes in the exact order the serial loop would produce
		// (the heap's equal-time tie-break depends on push order).
		//lint:ignore hotalloc per-shard completion buffer; capacity is retained across cycles and bounded by in-flight accesses
		h.pending = append(h.pending,
			shardCompletion{completion{at: dataEnd, access: a}, h.ch.Now()})
		return
	}
	h.ctrl.completions.push(completion{at: dataEnd, access: a})
}
