//go:build invariants

package memctrl

import (
	"testing"

	"burstmem/internal/addrmap"
)

// TestEngineShadowTrigger proves the -tags invariants wheel-vs-linear-scan
// cross-check actually fires: it primes the engine's hint cache, then
// simulates a cache-invalidation bug by pushing the bank's cached issue
// bound (and its wheel deadline) far into the future without any channel
// state change, and asserts NextEventCycle panics cycle-stamped.
func TestEngineShadowTrigger(t *testing.T) {
	c, m := newEngineHarness(t)
	a, ok := c.Submit(KindRead, c.Mapper().Encode(addrmap.Loc{Rank: 0, Bank: 0, Row: 2}), nil)
	if !ok {
		t.Fatal("submit failed")
	}
	m.engine.SetOngoing(0, 0, a)

	// Prime: the activate is issuable immediately, so the hint cache and
	// wheel agree with the linear scan here.
	if next := m.engine.NextEventCycle(0); next != 1 {
		t.Fatalf("primed next event %d, want 1 (activate issuable next cycle)", next)
	}

	// Bug: the hint claims the bank cannot issue for thousands of cycles.
	// No channel counter moved, so sync() keeps the corrupt hint — exactly
	// the failure mode the shadow check exists to catch.
	flat := 0*m.engine.banks + 0
	m.engine.hints[flat].full = 50000
	m.engine.wheel.Schedule(flat, 50000)

	mustPanicContaining(t, "event wheel predicts next event", func() {
		m.engine.NextEventCycle(0)
	})
}

// TestEngineShadowCleanRun drives the engine through a normal
// submit/issue sequence under the shadow check to show agreement on the
// happy path (no panic).
func TestEngineShadowCleanRun(t *testing.T) {
	c, m := newEngineHarness(t)
	a, _ := c.Submit(KindRead, c.Mapper().Encode(addrmap.Loc{Rank: 0, Bank: 0, Row: 2}), nil)
	m.engine.SetOngoing(0, 0, a)
	for now := uint64(1); now < 64 && m.engine.Ongoing(0, 0) != nil; now++ {
		c.Tick(now)
		m.engine.NextEventCycle(now)
		for _, cand := range m.engine.Candidates() {
			if cand.Unblocked {
				m.engine.Issue(cand, now)
				break
			}
		}
		m.engine.NextEventCycle(now)
	}
	if m.engine.Ongoing(0, 0) != nil {
		t.Fatal("access never completed its transaction sequence")
	}
}
