//go:build invariants

package memctrl

import (
	"fmt"
	"math/bits"

	"burstmem/internal/dram"
)

// This file is the enabled build of the next-event shadow checker (build
// with -tags invariants). Every Engine.NextEventCycle answer derived from
// the hint cache and event wheel is cross-checked against the naive linear
// scan the wheel replaced: per occupied bank, recompute the next command
// and its EarliestIssue from primary channel state and take the minimum.
//
// The wheel is allowed to be conservative (early): a too-early hint only
// shortens an idle skip and the machine re-evaluates at the landing cycle.
// An answer LATER than the linear bound is a bug — TrySkip would jump over
// a cycle on which a transaction becomes issuable, silently changing
// simulation results — so that direction panics, cycle-stamped.

// engineShadow is the enabled next-event shadow checker.
type engineShadow struct{}

func (engineShadow) checkNextEvent(e *Engine, now, fast uint64) {
	ch := e.host.Channel()
	linear := dram.NoEvent
	for r := range e.occ {
		for mask := e.occ[r]; mask != 0; mask &= mask - 1 {
			b := bits.TrailingZeros64(mask)
			a := e.ongoing[r][b]
			cmd := ch.NextCommand(a.Target(), a.Kind == KindRead)
			if at := ch.EarliestIssue(cmd, a.Target()); at < linear {
				linear = at
			}
		}
	}
	if fast > linear {
		panic(fmt.Sprintf(
			"memctrl sanitizer: cycle %d: event wheel predicts next event at cycle %d but the linear scan bounds it at cycle %d (an idle skip would jump a live event)",
			now, fast, linear))
	}
}
