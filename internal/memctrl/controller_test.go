package memctrl

import (
	"testing"
	"testing/quick"

	"burstmem/internal/addrmap"
	"burstmem/internal/dram"
)

// fifoMech is a minimal mechanism used to exercise the chassis in
// isolation: a single FIFO, one bank ongoing at a time, oldest-first.
type fifoMech struct {
	host   *Host
	engine *Engine
	queue  []*Access
	reads  int
	writes int
}

func newFifo(h *Host) Mechanism {
	m := &fifoMech{host: h}
	m.engine = NewEngine(h, m.onColumn)
	return m
}

func (m *fifoMech) Name() string         { return "fifo" }
func (m *fifoMech) ForwardsWrites() bool { return true }
func (m *fifoMech) Pending() (int, int)  { return m.reads, m.writes }
func (m *fifoMech) Enqueue(a *Access, now uint64) {
	m.queue = append(m.queue, a)
	if a.Kind == KindRead {
		m.reads++
	} else {
		m.writes++
	}
}

func (m *fifoMech) onColumn(a *Access, now uint64) {
	if a.Kind == KindRead {
		m.reads--
	} else {
		m.writes--
	}
}

func (m *fifoMech) Tick(now uint64) {
	if len(m.queue) > 0 {
		a := m.queue[0]
		r, b := int(a.Loc.Rank), int(a.Loc.Bank)
		if m.engine.Ongoing(r, b) == nil {
			m.engine.SetOngoing(r, b, a)
			m.queue = m.queue[1:]
		}
	}
	if !m.host.Channel().CommandSlotFree() {
		return
	}
	for _, c := range m.engine.Candidates() {
		if c.Unblocked {
			m.engine.Issue(c, now)
			return
		}
	}
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Timing.TREFI = 0
	cfg.Geometry = addrmap.Geometry{
		Channels: 1, Ranks: 1, Banks: 4, Rows: 16, ColumnLines: 16, LineBytes: 64,
	}
	cfg.PoolSize = 8
	cfg.MaxWrites = 4
	return cfg
}

func mustNew(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg, newFifo)
	if err != nil {
		t.Fatal(err)
	}
	c.Tick(0)
	return c
}

func drain(t *testing.T, c *Controller, from uint64) uint64 {
	t.Helper()
	cyc := from
	for i := 0; i < 100000; i++ {
		if c.Drained() {
			return cyc
		}
		cyc++
		c.Tick(cyc)
	}
	t.Fatal("controller did not drain")
	return 0
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.PoolSize = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("pool size 0 accepted")
	}
	bad = DefaultConfig()
	bad.MaxWrites = bad.PoolSize + 1
	if err := bad.Validate(); err == nil {
		t.Fatal("max writes > pool accepted")
	}
	bad = DefaultConfig()
	bad.Mapping = "bogus"
	if err := bad.Validate(); err == nil {
		t.Fatal("bogus mapping accepted")
	}
	if _, err := New(bad, newFifo); err == nil {
		t.Fatal("New accepted invalid config")
	}
}

func TestPoolAdmission(t *testing.T) {
	c := mustNew(t, testConfig())
	// Fill the write share.
	for i := 0; i < 4; i++ {
		if _, ok := c.Submit(KindWrite, uint64(i)<<12, nil); !ok {
			t.Fatalf("write %d rejected early", i)
		}
	}
	if c.CanAccept(KindWrite) {
		t.Fatal("write accepted beyond MaxWrites")
	}
	if _, ok := c.Submit(KindWrite, 99<<12, nil); ok {
		t.Fatal("write admitted beyond MaxWrites")
	}
	if !c.CanAccept(KindRead) {
		t.Fatal("read rejected with pool space left")
	}
	// Fill the rest of the pool with reads.
	for i := 0; i < 4; i++ {
		if _, ok := c.Submit(KindRead, uint64(0x100+i)<<12, nil); !ok {
			t.Fatalf("read %d rejected early", i)
		}
	}
	if c.CanAccept(KindRead) {
		t.Fatal("read accepted beyond pool size")
	}
	if c.Stats.RejectedRequests != 1 {
		t.Fatalf("rejected = %d, want 1", c.Stats.RejectedRequests)
	}
	drain(t, c, 0)
	if c.OutstandingReads() != 0 || c.OutstandingWrites() != 0 {
		t.Fatal("pool not empty after drain")
	}
}

func TestCompletionCallbacksAndLatency(t *testing.T) {
	c := mustNew(t, testConfig())
	var doneAt uint64
	a, ok := c.Submit(KindRead, 0, func(a *Access, now uint64) { doneAt = now })
	if !ok {
		t.Fatal("submit failed")
	}
	end := drain(t, c, 0)
	if doneAt == 0 || doneAt > end {
		t.Fatalf("completion at %d, drained at %d", doneAt, end)
	}
	if a.DataEnd != doneAt {
		t.Fatalf("DataEnd %d != completion %d", a.DataEnd, doneAt)
	}
	// Row empty on an idle device: tRCD + tCL + data.
	tm := c.Config().Timing
	want := uint64(tm.TRCD+tm.TCL+tm.DataCycles()) + 1 // +1: first command issues at cycle 1
	if got := c.Stats.ReadLatency.Mean(); got != float64(want) {
		t.Fatalf("read latency %v, want %d", got, want)
	}
}

func TestWriteSaturationStat(t *testing.T) {
	c := mustNew(t, testConfig())
	for i := 0; i < 4; i++ {
		if _, ok := c.Submit(KindWrite, uint64(i*2)<<12, nil); !ok {
			t.Fatal("write rejected")
		}
	}
	drain(t, c, 0)
	if c.Stats.WriteSatCycles == 0 {
		t.Fatal("write saturation never recorded")
	}
	if rate := c.Stats.WriteSaturationRate(); rate <= 0 || rate > 1 {
		t.Fatalf("saturation rate %v out of range", rate)
	}
}

func TestOccupancySampling(t *testing.T) {
	c := mustNew(t, testConfig())
	c.Submit(KindRead, 0, nil)
	c.Submit(KindRead, 1<<12, nil)
	c.Tick(1)
	if c.Stats.OutstandingReads.Count(2) == 0 {
		t.Fatal("occupancy 2 not sampled")
	}
	drain(t, c, 1)
	if c.Stats.OutstandingReads.Total() != c.Stats.Cycles {
		t.Fatal("occupancy histogram total != cycles")
	}
}

func TestChannelRouting(t *testing.T) {
	cfg := testConfig()
	cfg.Geometry.Channels = 2
	c := mustNew(t, cfg)
	g := cfg.Geometry
	m := c.Mapper()
	a0, _ := c.Submit(KindRead, m.Encode(addrmap.Loc{Channel: 0, Row: 1}), nil)
	a1, _ := c.Submit(KindRead, m.Encode(addrmap.Loc{Channel: 1, Row: 1}), nil)
	if a0.Loc.Channel != 0 || a1.Loc.Channel != 1 {
		t.Fatalf("channel decode wrong: %v %v", a0.Loc, a1.Loc)
	}
	drain(t, c, 0)
	if c.Channel(0).Stats.Reads != 1 || c.Channel(1).Stats.Reads != 1 {
		t.Fatalf("per-channel reads: %d/%d, want 1/1",
			c.Channel(0).Stats.Reads, c.Channel(1).Stats.Reads)
	}
	_ = g
}

func TestBandwidthAndUtilization(t *testing.T) {
	c := mustNew(t, testConfig())
	for i := 0; i < 8; i++ {
		c.Submit(KindRead, uint64(i*64), nil)
	}
	drain(t, c, 0)
	if bw := c.EffectiveBandwidth(); bw <= 0 {
		t.Fatalf("bandwidth %v", bw)
	}
	data, addr := c.BusUtilization()
	if data <= 0 || data > 1 || addr <= 0 || addr > 1 {
		t.Fatalf("utilization data=%v addr=%v", data, addr)
	}
	hit, empty, conflict := c.RowOutcomeRates()
	if s := hit + empty + conflict; s < 0.999 || s > 1.001 {
		t.Fatalf("outcome rates sum to %v", s)
	}
}

// TestAccessLineAddr property: LineAddr aligns down to the line size.
func TestAccessLineAddr(t *testing.T) {
	f := func(addr uint64) bool {
		a := Access{Addr: addr}
		l := a.LineAddr(64)
		return l%64 == 0 && l <= addr && addr-l < 64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestEngineStepsThroughTransactions drives one conflicting access through
// precharge, activate and column explicitly.
func TestEngineStepsThroughTransactions(t *testing.T) {
	c := mustNew(t, testConfig())
	// Open row 0 first.
	c.Submit(KindRead, c.Mapper().Encode(addrmap.Loc{Row: 0}), nil)
	end := drain(t, c, 0)
	a, _ := c.Submit(KindRead, c.Mapper().Encode(addrmap.Loc{Row: 1}), nil)
	drain(t, c, end)
	if a.Outcome != dram.RowConflict {
		t.Fatalf("outcome %v, want conflict", a.Outcome)
	}
	ch := c.Channel(0)
	if ch.Stats.Precharges == 0 || ch.Stats.Activates < 2 {
		t.Fatalf("transaction counts: %+v", ch.Stats)
	}
}

func TestKindString(t *testing.T) {
	if KindRead.String() != "read" || KindWrite.String() != "write" {
		t.Fatal("Kind.String broken")
	}
}
