package memctrl

import (
	"math/bits"

	"burstmem/internal/dram"
)

// Engine tracks each bank's ongoing access — the access whose transactions
// are currently being scheduled (paper Section 3.2) — and steps accesses
// through their precharge/activate/column transaction sequences against the
// device state. Every mechanism reuses it; policies differ only in how they
// pick ongoing accesses and order candidate transactions.
//
// Occupied banks are tracked in one uint64 bitmap per rank, so candidate
// collection visits only banks that actually hold an ongoing access
// (bits.TrailingZeros64 per occupied bank) instead of scanning the whole
// rank×bank grid.
type Engine struct {
	host    *Host
	banks   int
	ongoing [][]*Access // [rank][bank]
	occ     []uint64    // per-rank occupied-bank bitmaps
	// onColumn runs after an access's column transaction issues, before
	// the bank's ongoing slot clears.
	onColumn func(a *Access, now uint64)
	scratch  []Candidate
}

// NewEngine builds an engine for the host's channel.
func NewEngine(host *Host, onColumn func(a *Access, now uint64)) *Engine {
	e := &Engine{host: host, onColumn: onColumn}
	ch := host.Channel()
	e.banks = ch.Banks()
	e.ongoing = make([][]*Access, ch.Ranks())
	e.occ = make([]uint64, ch.Ranks())
	for r := range e.ongoing {
		e.ongoing[r] = make([]*Access, ch.Banks())
	}
	return e
}

// Ongoing returns the bank's ongoing access, or nil.
func (e *Engine) Ongoing(rank, bank int) *Access { return e.ongoing[rank][bank] }

// SetOngoing installs the bank's ongoing access.
//
//burstmem:hotpath
func (e *Engine) SetOngoing(rank, bank int, a *Access) {
	e.ongoing[rank][bank] = a
	e.occ[rank] |= 1 << uint(bank)
}

// ClearOngoing resets the bank's ongoing access (e.g. read preemption).
//
//burstmem:hotpath
func (e *Engine) ClearOngoing(rank, bank int) {
	e.ongoing[rank][bank] = nil
	e.occ[rank] &^= 1 << uint(bank)
}

// OccupiedMask returns the rank's occupied-bank bitmap (bit b set means
// bank b has an ongoing access).
func (e *Engine) OccupiedMask(rank int) uint64 { return e.occ[rank] }

// ForEachBank visits every (rank, bank) pair in order.
func (e *Engine) ForEachBank(f func(rank, bank int)) {
	for r := range e.ongoing {
		for b := range e.ongoing[r] {
			f(r, b)
		}
	}
}

// Candidate is a bank's next transaction, with its unblocked status this
// cycle.
type Candidate struct {
	Rank, Bank int
	Access     *Access
	Cmd        dram.Cmd
	Unblocked  bool
}

// IsColumn reports whether the candidate transaction transfers data.
func (c Candidate) IsColumn() bool { return c.Cmd == dram.CmdRead || c.Cmd == dram.CmdWrite }

// Candidates returns the next transaction of every bank with an ongoing
// access. Blocked transactions are included (Unblocked=false) so policies
// that need "oldest access" context (paper Fig. 6 lines 14-15) can see
// them. The returned slice is reused across calls.
//
//burstmem:hotpath
func (e *Engine) Candidates() []Candidate {
	e.scratch = e.collectCandidates(e.scratch[:0])
	return e.scratch
}

// collectCandidates fills dst with the per-bank next transactions, walking
// the occupied bitmaps in (rank, bank) order.
//
//burstmem:hotpath
func (e *Engine) collectCandidates(dst []Candidate) []Candidate {
	ch := e.host.Channel()
	for r := range e.occ {
		for mask := e.occ[r]; mask != 0; mask &= mask - 1 {
			b := bits.TrailingZeros64(mask)
			a := e.ongoing[r][b]
			cmd := ch.NextCommand(a.Target(), a.Kind == KindRead)
			//lint:ignore hotalloc appends into the caller's scratch slice, whose capacity is retained
			dst = append(dst, Candidate{
				Rank:      r,
				Bank:      b,
				Access:    a,
				Cmd:       cmd,
				Unblocked: ch.CanIssue(cmd, a.Target()),
			})
		}
	}
	return dst
}

// NextEventCycle returns the earliest cycle any occupied bank's next
// transaction could become issuable (dram.NoEvent when no bank has an
// ongoing access). Mechanisms with no internal timers use this directly as
// their idle-skip hint: with no submissions, completions or refreshes in
// between, the channel state is frozen and nothing can happen earlier.
//
//burstmem:hotpath
func (e *Engine) NextEventCycle(now uint64) uint64 {
	ch := e.host.Channel()
	next := dram.NoEvent
	for r := range e.occ {
		for mask := e.occ[r]; mask != 0; mask &= mask - 1 {
			b := bits.TrailingZeros64(mask)
			a := e.ongoing[r][b]
			cmd := ch.NextCommand(a.Target(), a.Kind == KindRead)
			if at := ch.EarliestIssue(cmd, a.Target()); at < next {
				next = at
			}
		}
	}
	return next
}

// Issue executes the candidate's transaction. For a column transaction the
// access completes: the completion is scheduled at its data end, the
// onColumn hook runs, and the bank's ongoing slot clears. Issue records the
// access start/outcome on its first transaction.
//
//burstmem:hotpath
func (e *Engine) Issue(c Candidate, now uint64) {
	ch := e.host.Channel()
	a := c.Access
	e.host.StartAccess(a, now)
	res := ch.Issue(c.Cmd, a.Target(), c.IsColumn() && e.host.AutoPrecharge())
	if c.IsColumn() {
		e.host.CompleteAt(a, res.DataEnd)
		if e.onColumn != nil {
			e.onColumn(a, now)
		}
		e.ClearOngoing(c.Rank, c.Bank)
	}
}
