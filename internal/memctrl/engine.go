package memctrl

import (
	"math/bits"

	"burstmem/internal/dram"
	"burstmem/internal/eventq"
)

// Engine tracks each bank's ongoing access — the access whose transactions
// are currently being scheduled (paper Section 3.2) — and steps accesses
// through their precharge/activate/column transaction sequences against the
// device state. Every mechanism reuses it; policies differ only in how they
// pick ongoing accesses and order candidate transactions.
//
// Occupied banks are tracked in one uint64 bitmap per rank, so candidate
// collection visits only banks that actually hold an ongoing access
// (bits.TrailingZeros64 per occupied bank) instead of scanning the whole
// rank×bank grid.
//
// On top of the bitmaps sits a version-guarded hint cache: for every
// occupied bank the engine remembers the next transaction and the earliest
// cycle it can issue, stamped with the channel's bank/rank/bus mutation
// counters. The channel state a hint depends on is time-independent (the
// timers are absolute cycles; only comparisons against "now" move), so a
// hint stays exact until one of its counters advances — most cycles nothing
// does, and the whole candidate/next-event machinery reduces to a few
// version compares plus one peek of an eventq.Wheel keyed by the hints'
// issue cycles.
//
//burstmem:chanlocal
type Engine struct {
	host    *Host
	banks   int
	ongoing [][]*Access // [rank][bank]
	occ     []uint64    // per-rank occupied-bank bitmaps
	// onColumn runs after an access's column transaction issues, before
	// the bank's ongoing slot clears.
	onColumn func(a *Access, now uint64)
	scratch  []Candidate

	// hints holds one cached (command, earliest-issue) pair per flattened
	// bank; wheel mirrors every valid hint's issue cycle so the earliest
	// one is a single PeekMin away. The mirror is maintained lazily:
	// scheduling-path syncs only refresh hints (and mark the wheel
	// stale), and NextEventCycle — the only wheel consumer — pushes
	// changed deadlines right before peeking. Busy phases, where the
	// skip hint is never consulted, thus pay nothing for the wheel.
	hints      []bankHint
	wheel      *eventq.Wheel
	wheelStale bool
	// classes is the reused result of Unblocked (per-rank class masks).
	classes BankClasses
	// syncedVer/dirty short-circuit sync entirely: when the channel's
	// global mutation counter has not advanced and no ongoing slot
	// changed, every hint is still exact.
	syncedVer uint64
	dirty     bool
	// minFull is the minimum issue bound across occupied banks
	// (dram.NoEvent when none), refreshed by every dirty sync. While it
	// lies in the future no bank can issue, so Unblocked skips mask
	// construction outright on such cycles.
	minFull uint64
	// oldestRank/oldestBank/oldestOK cache OldestOngoing, invalidated
	// whenever an ongoing slot changes (arrival stamps are immutable).
	oldestRank  int
	oldestBank  int
	oldestOK    bool
	oldestValid bool
	shadow    engineShadow
}

// bankHint caches one occupied bank's next transaction and issue bound.
// cmd and ready depend only on bank+rank state (guarded by bankVer/rankVer);
// full folds in the data-bus availability term (guarded by busVer). All
// three are absolute cycles, so a hint with matching versions is exact
// regardless of how much time has passed.
//
//burstmem:chanlocal
type bankHint struct {
	cmd     dram.Cmd
	ready   uint64 // EarliestReady: bank+rank constraint bound
	full    uint64 // max(ready, ColumnBusReady): the issue bound
	wheeled uint64 // the deadline currently mirrored in the wheel
	bankVer uint32
	rankVer uint32
	busVer  uint32
	valid   bool
}

// BankClasses holds, per rank, masks of banks whose next transaction is
// unblocked this cycle, split by transaction type (column vs row) and
// access kind (read vs write) — the four groups the paper's Table 2
// priority ranks. Refresh never appears: it is channel-internal and is not
// a candidate transaction.
//
//burstmem:chanlocal
type BankClasses struct {
	ColRead  []uint64
	ColWrite []uint64
	RowRead  []uint64
	RowWrite []uint64
}

// Rank returns the union of the rank's four class masks (every unblocked
// bank of the rank).
//
//burstmem:hotpath
func (cl *BankClasses) Rank(r int) uint64 {
	return cl.ColRead[r] | cl.ColWrite[r] | cl.RowRead[r] | cl.RowWrite[r]
}

// NewEngine builds an engine for the host's channel.
func NewEngine(host *Host, onColumn func(a *Access, now uint64)) *Engine {
	e := &Engine{host: host, onColumn: onColumn}
	ch := host.Channel()
	e.banks = ch.Banks()
	e.ongoing = make([][]*Access, ch.Ranks())
	e.occ = make([]uint64, ch.Ranks())
	for r := range e.ongoing {
		e.ongoing[r] = make([]*Access, ch.Banks())
	}
	total := ch.Ranks() * ch.Banks()
	e.hints = make([]bankHint, total)
	for i := range e.hints {
		e.hints[i].wheeled = eventq.NoDeadline
	}
	e.wheel = eventq.NewWheel(total)
	e.classes = BankClasses{
		ColRead:  make([]uint64, ch.Ranks()),
		ColWrite: make([]uint64, ch.Ranks()),
		RowRead:  make([]uint64, ch.Ranks()),
		RowWrite: make([]uint64, ch.Ranks()),
	}
	e.dirty = true
	return e
}

// Ongoing returns the bank's ongoing access, or nil.
func (e *Engine) Ongoing(rank, bank int) *Access { return e.ongoing[rank][bank] }

// SetOngoing installs the bank's ongoing access.
//
//burstmem:hotpath
func (e *Engine) SetOngoing(rank, bank int, a *Access) {
	e.ongoing[rank][bank] = a
	e.occ[rank] |= 1 << uint(bank)
	e.hints[rank*e.banks+bank].valid = false
	e.dirty = true
	e.oldestValid = false
}

// ClearOngoing resets the bank's ongoing access (e.g. read preemption).
//
//burstmem:hotpath
func (e *Engine) ClearOngoing(rank, bank int) {
	e.ongoing[rank][bank] = nil
	e.occ[rank] &^= 1 << uint(bank)
	h := &e.hints[rank*e.banks+bank]
	h.valid = false
	if h.wheeled != eventq.NoDeadline {
		e.wheel.Cancel(rank*e.banks + bank)
		h.wheeled = eventq.NoDeadline
	}
	e.dirty = true
	e.oldestValid = false
}

// OccupiedMask returns the rank's occupied-bank bitmap (bit b set means
// bank b has an ongoing access).
func (e *Engine) OccupiedMask(rank int) uint64 { return e.occ[rank] }

// ForEachBank visits every (rank, bank) pair in order.
func (e *Engine) ForEachBank(f func(rank, bank int)) {
	for r := range e.ongoing {
		for b := range e.ongoing[r] {
			f(r, b)
		}
	}
}

// sync revalidates the hint of every occupied bank. The global version
// check makes the common case — nothing issued, nothing submitted — free;
// otherwise only banks whose own counters moved recompute anything.
//
//burstmem:hotpath
func (e *Engine) sync() {
	ch := e.host.Channel()
	sv := ch.StateVersion()
	if !e.dirty && sv == e.syncedVer {
		return
	}
	min := uint64(dram.NoEvent)
	for r := range e.occ {
		for mask := e.occ[r]; mask != 0; mask &= mask - 1 {
			b := bits.TrailingZeros64(mask)
			e.syncBank(ch, r, b)
			if f := e.hints[r*e.banks+b].full; f < min {
				min = f
			}
		}
	}
	e.minFull = min
	e.dirty = false
	e.syncedVer = sv
	e.wheelStale = true
}

// syncWheel mirrors every occupied bank's issue bound into the wheel.
// Called only from NextEventCycle, right before the peek; a fully idle
// machine runs this once and then short-circuits (sync no-ops, the wheel
// is clean, the answer is a single PeekMin).
//
//burstmem:hotpath
func (e *Engine) syncWheel() {
	if !e.wheelStale {
		return
	}
	for r := range e.occ {
		for mask := e.occ[r]; mask != 0; mask &= mask - 1 {
			b := bits.TrailingZeros64(mask)
			flat := r*e.banks + b
			if h := &e.hints[flat]; h.full != h.wheeled {
				e.wheel.Schedule(flat, h.full)
				h.wheeled = h.full
			}
		}
	}
	e.wheelStale = false
}

// syncBank refreshes one bank's hint and its wheel deadline.
//
//burstmem:hotpath
func (e *Engine) syncBank(ch *dram.Channel, r, b int) {
	flat := r*e.banks + b
	h := &e.hints[flat]
	bv, rv, xv := ch.BankVersion(r, b), ch.RankVersion(r), ch.BusVersion()
	if h.valid && h.bankVer == bv && h.rankVer == rv {
		if h.busVer != xv {
			// Only the data bus moved: the command and the bank/rank
			// constraint bound stand; fold in the new bus term.
			h.busVer = xv
			h.full = maxU64(h.ready, ch.ColumnBusReady(h.cmd, r))
		}
		return
	}
	a := e.ongoing[r][b]
	h.cmd = ch.NextCommand(a.Target(), a.Kind == KindRead)
	h.ready = ch.EarliestReady(h.cmd, a.Target())
	h.full = maxU64(h.ready, ch.ColumnBusReady(h.cmd, r))
	h.bankVer, h.rankVer, h.busVer = bv, rv, xv
	h.valid = true
}

// PrewarmRanks refreshes the hint cache for the occupied banks of ranks
// [lo, hi) without touching the engine's aggregate sync state (minFull,
// dirty, syncedVer): the next sync() then finds those hints version-clean
// and reduces to its aggregate fold. Writes are confined to the hint slots
// of the given ranks and every channel query used is read-only, so
// disjoint rank ranges are safe to refresh concurrently — the rank-sharded
// parallel mode runs one PrewarmRanks per rank shard inside a barrier
// round, before the channel ticks. Skipped entirely when no hint can be
// stale (the same version guard sync() uses), so idle rounds cost two
// compares.
//
//burstmem:hotpath
func (e *Engine) PrewarmRanks(lo, hi int) {
	ch := e.host.Channel()
	if !e.dirty && ch.StateVersion() == e.syncedVer {
		return
	}
	if hi > len(e.occ) {
		hi = len(e.occ)
	}
	for r := lo; r < hi; r++ {
		for mask := e.occ[r]; mask != 0; mask &= mask - 1 {
			b := bits.TrailingZeros64(mask)
			e.syncBank(ch, r, b)
		}
	}
}

// Candidate is a bank's next transaction, with its unblocked status this
// cycle.
type Candidate struct {
	Rank, Bank int
	Access     *Access
	Cmd        dram.Cmd
	Unblocked  bool
}

// IsColumn reports whether the candidate transaction transfers data.
func (c Candidate) IsColumn() bool { return c.Cmd == dram.CmdRead || c.Cmd == dram.CmdWrite }

// Candidates returns the next transaction of every bank with an ongoing
// access. Blocked transactions are included (Unblocked=false) so policies
// that need "oldest access" context (paper Fig. 6 lines 14-15) can see
// them. The returned slice is reused across calls.
//
//burstmem:hotpath
func (e *Engine) Candidates() []Candidate {
	e.scratch = e.collectCandidates(e.scratch[:0])
	return e.scratch
}

// collectCandidates fills dst with the per-bank next transactions, walking
// the occupied bitmaps in (rank, bank) order. Commands come from the hint
// cache; the full CanIssue re-check runs only for banks whose cached issue
// bound has arrived (CanIssue implies the bound has passed, so the filter
// loses nothing).
//
//burstmem:hotpath
func (e *Engine) collectCandidates(dst []Candidate) []Candidate {
	e.sync()
	ch := e.host.Channel()
	now := ch.Now()
	for r := range e.occ {
		for mask := e.occ[r]; mask != 0; mask &= mask - 1 {
			b := bits.TrailingZeros64(mask)
			a := e.ongoing[r][b]
			h := &e.hints[r*e.banks+b]
			//lint:ignore hotalloc appends into the caller's scratch slice, whose capacity is retained
			dst = append(dst, Candidate{
				Rank:      r,
				Bank:      b,
				Access:    a,
				Cmd:       h.cmd,
				Unblocked: h.full <= now && ch.CanIssue(h.cmd, a.Target()),
			})
		}
	}
	return dst
}

// Unblocked classifies every occupied bank whose next transaction can issue
// this cycle into the four Table 2 class masks, returning whether any bank
// qualified. The masks are reused across calls and valid until the next
// Unblocked or state change.
//
//burstmem:hotpath
func (e *Engine) Unblocked(now uint64) (*BankClasses, bool) {
	e.sync()
	if e.minFull > now {
		// Every issue bound lies in the future: no bank can qualify.
		// The stale masks are never read on the !any return.
		return &e.classes, false
	}
	ch := e.host.Channel()
	cl := &e.classes
	any := false
	for r := range e.occ {
		var colRead, colWrite, rowRead, rowWrite uint64
		for mask := e.occ[r]; mask != 0; mask &= mask - 1 {
			b := bits.TrailingZeros64(mask)
			h := &e.hints[r*e.banks+b]
			if h.full > now {
				continue
			}
			a := e.ongoing[r][b]
			if !ch.CanIssue(h.cmd, a.Target()) {
				continue
			}
			bit := uint64(1) << uint(b)
			col := h.cmd == dram.CmdRead || h.cmd == dram.CmdWrite
			read := a.Kind == KindRead
			switch {
			case col && read:
				colRead |= bit
			case col:
				colWrite |= bit
			case read:
				rowRead |= bit
			default:
				rowWrite |= bit
			}
			any = true
		}
		cl.ColRead[r], cl.ColWrite[r] = colRead, colWrite
		cl.RowRead[r], cl.RowWrite[r] = rowRead, rowWrite
	}
	return cl, any
}

// CandidateAt builds the candidate for an occupied bank from its hint. Only
// meaningful immediately after Unblocked (or Candidates) on a bank one of
// the class masks reported, so Unblocked is true by construction.
//
//burstmem:hotpath
func (e *Engine) CandidateAt(rank, bank int) Candidate {
	h := &e.hints[rank*e.banks+bank]
	return Candidate{Rank: rank, Bank: bank, Access: e.ongoing[rank][bank], Cmd: h.cmd, Unblocked: true}
}

// OldestOngoing returns the occupied bank holding the oldest ongoing access
// (rank-major scan order, strict comparison — ties go to the lowest
// rank/bank, matching the candidate-slice scan it replaces). Arrival stamps
// are immutable, so the answer only changes when a bank's ongoing slot
// does; the scan result is cached until then.
//
//burstmem:hotpath
func (e *Engine) OldestOngoing() (rank, bank int, ok bool) {
	if e.oldestValid {
		return e.oldestRank, e.oldestBank, e.oldestOK
	}
	var best *Access
	for r := range e.occ {
		for mask := e.occ[r]; mask != 0; mask &= mask - 1 {
			b := bits.TrailingZeros64(mask)
			a := e.ongoing[r][b]
			if best == nil || a.Arrival < best.Arrival {
				best, rank, bank, ok = a, r, b, true
			}
		}
	}
	e.oldestRank, e.oldestBank, e.oldestOK = rank, bank, ok
	e.oldestValid = true
	return rank, bank, ok
}

// NextEventCycle returns the earliest cycle any occupied bank's next
// transaction could become issuable (dram.NoEvent when no bank has an
// ongoing access). Mechanisms with no internal timers use this directly as
// their idle-skip hint: with no submissions, completions or refreshes in
// between, the channel state is frozen and nothing can happen earlier.
//
// The answer is one wheel peek after the version-guarded sync. The wheel
// may under-estimate (its far bucket is a conservative lower bound); an
// early hint only shortens a skip and cannot change simulation results.
// Over-estimating would: the invariants build cross-checks every answer
// against the linear scan (see shadow_on.go).
//
//burstmem:hotpath
func (e *Engine) NextEventCycle(now uint64) uint64 {
	e.sync()
	e.syncWheel()
	if e.wheel.NeedRebase(now) {
		e.wheel.Rebase(now)
	}
	next := dram.NoEvent
	if at, ok := e.wheel.PeekMin(); ok {
		next = maxU64(at, now+1)
	}
	e.shadow.checkNextEvent(e, now, next)
	return next
}

// Issue executes the candidate's transaction. For a column transaction the
// access completes: the completion is scheduled at its data end, the
// onColumn hook runs, and the bank's ongoing slot clears. Issue records the
// access start/outcome on its first transaction.
//
//burstmem:hotpath
func (e *Engine) Issue(c Candidate, now uint64) {
	ch := e.host.Channel()
	a := c.Access
	e.host.StartAccess(a, now)
	res := ch.Issue(c.Cmd, a.Target(), c.IsColumn() && e.host.AutoPrecharge())
	if c.IsColumn() {
		e.host.CompleteAt(a, res.DataEnd)
		if e.onColumn != nil {
			//lint:ignore sharestate mechanism-supplied issue hook fixed at engine construction; each mechanism owns one channel's state
			e.onColumn(a, now)
		}
		e.ClearOngoing(c.Rank, c.Bank)
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
