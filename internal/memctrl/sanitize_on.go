//go:build invariants

package memctrl

import "fmt"

// This file is the enabled build of the access-pool lifecycle sanitizer
// (build with -tags invariants). Every pooled Access carries a poison state:
// releasing an access twice, or linking/scheduling one after its release,
// panics with a cycle-stamped trace. Reading plain fields of a retained
// pointer stays allowed — the pool documents that values persist until the
// object is reused — but handing a released access back into the machinery
// (lists, completion heap, start bookkeeping) is always a bug.

// Access pool lifecycle states. The zero state covers accesses constructed
// directly (tests, tooling) that never went through the pool; they are
// treated as live.
const (
	sanFresh    uint8 = iota // never pooled
	sanLive                  // handed out by acquire
	sanReleased              // returned by release
)

// accessSan is the enabled lifecycle sanitizer state embedded in Access.
type accessSan struct {
	state      uint8
	releasedAt uint64
}

func (s *accessSan) acquired(a *Access, now uint64) {
	if s.state == sanLive {
		panic(fmt.Sprintf("memctrl sanitizer: cycle %d: pool handed out %s which is still live", now, a))
	}
	s.state = sanLive
	s.releasedAt = 0
}

func (s *accessSan) released(a *Access, now uint64) {
	if s.state == sanReleased {
		panic(fmt.Sprintf("memctrl sanitizer: cycle %d: double release of %s (first released at cycle %d)",
			now, a, s.releasedAt))
	}
	s.state = sanReleased
	s.releasedAt = now
}

func (s *accessSan) checkLive(a *Access, op string) {
	if s.state == sanReleased {
		panic(fmt.Sprintf("memctrl sanitizer: %s of %s after its release at cycle %d (use after release)",
			op, a, s.releasedAt))
	}
}
