package u64map

import (
	"math/rand"
	"testing"
)

// TestDifferential drives the table against a Go map with a random op mix,
// including key 0 (valid despite the bias encoding) and clustered keys that
// force long probe chains and backward-shift deletions.
func TestDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New[int](4) // deliberately small hint so growth happens
	ref := map[uint64]int{}
	keyFor := func() uint64 {
		switch rng.Intn(3) {
		case 0:
			return uint64(rng.Intn(8)) // dense cluster incl. 0
		case 1:
			return uint64(rng.Intn(64)) << 6 // line-address-like strides
		default:
			return rng.Uint64() >> uint(rng.Intn(60))
		}
	}
	for step := 0; step < 200000; step++ {
		k := keyFor()
		switch rng.Intn(4) {
		case 0, 1:
			v := rng.Int()
			m.Put(k, v)
			ref[k] = v
		case 2:
			m.Delete(k)
			delete(ref, k)
		default:
			got, ok := m.Get(k)
			want, wok := ref[k]
			if ok != wok || (ok && got != want) {
				t.Fatalf("step %d: Get(%d)=(%d,%v) want (%d,%v)", step, k, got, ok, want, wok)
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("step %d: Len=%d want %d", step, m.Len(), len(ref))
		}
	}
	for k, want := range ref {
		if got, ok := m.Get(k); !ok || got != want {
			t.Fatalf("final: Get(%d)=(%d,%v) want (%d,true)", k, got, ok, want)
		}
	}
}

func TestZeroKey(t *testing.T) {
	m := New[string](2)
	m.Put(0, "zero")
	if v, ok := m.Get(0); !ok || v != "zero" {
		t.Fatalf("Get(0)=(%q,%v)", v, ok)
	}
	m.Delete(0)
	if _, ok := m.Get(0); ok || m.Len() != 0 {
		t.Fatal("zero key not deleted")
	}
}

func TestDeleteCompaction(t *testing.T) {
	// Force a collision chain, delete its head, and check the tail is
	// still reachable (backward shift must close the gap).
	m := New[uint64](8)
	// Find three keys hashing to the same slot.
	base := uint64(1)
	s := m.slot(base)
	var chain []uint64
	for k := base; len(chain) < 3; k++ {
		if m.slot(k) == s {
			chain = append(chain, k)
		}
	}
	for _, k := range chain {
		m.Put(k, k*10)
	}
	m.Delete(chain[0])
	for _, k := range chain[1:] {
		if v, ok := m.Get(k); !ok || v != k*10 {
			t.Fatalf("chain key %d lost after head delete: (%d,%v)", k, v, ok)
		}
	}
}

func TestPutReplaces(t *testing.T) {
	m := New[int](4)
	m.Put(7, 1)
	m.Put(7, 2)
	if v, _ := m.Get(7); v != 2 || m.Len() != 1 {
		t.Fatalf("replace failed: v=%d len=%d", v, m.Len())
	}
}

func TestNoAllocSteadyState(t *testing.T) {
	m := New[int](32)
	for i := uint64(0); i < 32; i++ {
		m.Put(i, int(i))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		m.Put(5, 9)
		m.Get(17)
		m.Delete(5)
		m.Put(5, 9)
	})
	if allocs != 0 {
		t.Fatalf("steady-state allocs/op = %v, want 0", allocs)
	}
}
