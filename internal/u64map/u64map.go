// Package u64map provides a small open-addressed hash table from uint64
// keys to arbitrary values, replacing Go maps on simulator hot paths. The
// runtime map's hashed access (mapaccess/mapassign/mapdelete) dominated the
// cache MSHR, FSB in-flight, and write-forwarding lookups in profiles; this
// table does the same job with one multiply and a short linear probe, and
// never allocates once warmed to its working size.
//
// The table is deterministic: no per-process hash seed, no iteration order
// (iteration is deliberately not offered — detlint bans map iteration in
// simulation packages for the same reason).
package u64map

// Map is an open-addressed linear-probe table. Keys are stored biased by +1
// so the zero slot word means "empty" and key 0 remains usable. Deletion
// uses backward-shift compaction, so there are no tombstones and probe
// chains stay short. The zero value is not usable; call New.
type Map[V any] struct {
	keys []uint64 // key+1; 0 = empty
	vals []V
	mask uint64
	n    int
	zero V
}

// New returns a map pre-sized to hold hint entries without growing. The
// backing array is at least 4x the hint, keeping the load factor ≤ 25% for
// bounded working sets (MSHRs, pool slots) so probes stay ~1 slot long.
func New[V any](hint int) *Map[V] {
	size := 8
	for size < 4*hint {
		size <<= 1
	}
	return &Map[V]{
		keys: make([]uint64, size),
		vals: make([]V, size),
		mask: uint64(size - 1),
	}
}

// slot hashes k to its ideal slot with a Fibonacci multiply.
//
//burstmem:hotpath
func (m *Map[V]) slot(k uint64) uint64 {
	return ((k + 1) * 0x9E3779B97F4A7C15) >> 32 & m.mask
}

// Len returns the number of stored entries.
func (m *Map[V]) Len() int { return m.n }

// Get returns the value stored under k, and whether it was present.
//
//burstmem:hotpath
func (m *Map[V]) Get(k uint64) (V, bool) {
	for i := m.slot(k); ; i = (i + 1) & m.mask {
		kk := m.keys[i]
		if kk == k+1 {
			return m.vals[i], true
		}
		if kk == 0 {
			return m.zero, false
		}
	}
}

// Put stores v under k, replacing any existing entry.
//
//burstmem:hotpath
func (m *Map[V]) Put(k uint64, v V) {
	for i := m.slot(k); ; i = (i + 1) & m.mask {
		kk := m.keys[i]
		if kk == k+1 {
			m.vals[i] = v
			return
		}
		if kk == 0 {
			if 2*(m.n+1) > len(m.keys) {
				//lint:ignore hotalloc grow is the amortized slow path; New pre-sizes past it for bounded sets
				m.grow()
				m.Put(k, v)
				return
			}
			m.keys[i] = k + 1
			m.vals[i] = v
			m.n++
			return
		}
	}
}

// Delete removes k's entry if present, compacting the probe chain behind it
// (backward-shift deletion) so lookups never chase tombstones.
//
//burstmem:hotpath
func (m *Map[V]) Delete(k uint64) {
	i := m.slot(k)
	for ; ; i = (i + 1) & m.mask {
		kk := m.keys[i]
		if kk == 0 {
			return
		}
		if kk == k+1 {
			break
		}
	}
	m.n--
	// Shift later chain members back over the hole until a gap or an
	// entry already sitting in its ideal slot.
	hole := i
	for j := (i + 1) & m.mask; ; j = (j + 1) & m.mask {
		kk := m.keys[j]
		if kk == 0 {
			break
		}
		ideal := m.slot(kk - 1)
		// The entry at j may move back to the hole only if its ideal slot
		// does not lie strictly between the hole and j (cyclically).
		if (j-ideal)&m.mask >= (j-hole)&m.mask {
			m.keys[hole] = kk
			m.vals[hole] = m.vals[j]
			hole = j
		}
	}
	m.keys[hole] = 0
	m.vals[hole] = m.zero
}

// grow doubles the backing array and rehashes every entry.
func (m *Map[V]) grow() {
	oldKeys, oldVals := m.keys, m.vals
	m.keys = make([]uint64, 2*len(oldKeys))
	m.vals = make([]V, 2*len(oldVals))
	m.mask = uint64(len(m.keys) - 1)
	m.n = 0
	for i, kk := range oldKeys {
		if kk != 0 {
			m.Put(kk-1, oldVals[i])
		}
	}
}
