// Package cache implements the set-associative, write-back, write-allocate
// caches of the baseline machine (paper Table 3): 128 KB 2-way L1 I/D and a
// 2 MB 16-way L2, all with 64-byte lines, plus MSHRs with miss coalescing
// and a bounded dirty-writeback path.
//
// Caches are levels in a chain: each cache's backend is the next level
// (another cache, or the front-side-bus adapter to the memory controller).
// All interactions are non-blocking with explicit back-pressure: an access
// or writeback that cannot proceed returns a "blocked" result and the
// caller retries — which is precisely the path by which a saturated memory
// write queue stalls the CPU pipeline (paper Section 5.1).
package cache

import (
	"fmt"

	"burstmem/internal/deque"
	"burstmem/internal/u64map"
)

// Backend is the next level below a cache.
type Backend interface {
	// ReadLine requests a line fill. done runs when data arrives. A
	// false return means the backend cannot accept the request this
	// cycle (retry later).
	ReadLine(addr uint64, done func()) bool
	// WriteLine hands a dirty line down (writeback). A false return
	// means the backend is full (retry later).
	WriteLine(addr uint64) bool
}

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
	LineBytes int
	// MSHRs bounds outstanding misses (distinct lines).
	MSHRs int
	// WritebackBuf bounds queued dirty evictions awaiting the backend.
	// When full, fills (and therefore new misses) are blocked.
	WritebackBuf int
	// LatencyCycles is the hit/service latency in this cache's clock
	// domain, charged when this cache serves a request from the level
	// above.
	LatencyCycles int
	// WarmStart models a steady-state cache in finite simulations: a
	// fill that would land in a never-used way instead evicts a
	// synthesized resident line (same set, different tag), dirty with
	// probability WarmDirtyPercent/100. Large caches thus emit writeback
	// traffic from the first miss, as they would after billions of
	// warmup instructions, instead of only after the whole capacity has
	// been touched.
	WarmStart bool
	// WarmDirtyPercent is the dirty share of synthesized warm residents
	// (0..100). Callers should set it near the workload's store share.
	WarmDirtyPercent int
}

// L1Config returns the Table 3 L1 configuration (128 KB, 2-way, 64 B).
func L1Config(name string) Config {
	return Config{Name: name, SizeBytes: 128 << 10, Ways: 2, LineBytes: 64,
		MSHRs: 32, WritebackBuf: 8, LatencyCycles: 3}
}

// L2Config returns the Table 3 L2 configuration (2 MB, 16-way, 64 B).
func L2Config() Config {
	return Config{Name: "L2", SizeBytes: 2 << 20, Ways: 16, LineBytes: 64,
		MSHRs: 40, WritebackBuf: 16, LatencyCycles: 12, WarmStart: true, WarmDirtyPercent: 30}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache %s: size/ways/line must be positive", c.Name)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache %s: %d lines not divisible by %d ways", c.Name, lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: %d sets not a power of two", c.Name, sets)
	}
	if c.MSHRs <= 0 || c.WritebackBuf <= 0 {
		return fmt.Errorf("cache %s: MSHRs and writeback buffer must be positive", c.Name)
	}
	if c.LatencyCycles < 0 {
		return fmt.Errorf("cache %s: negative latency", c.Name)
	}
	if c.WarmDirtyPercent < 0 || c.WarmDirtyPercent > 100 {
		return fmt.Errorf("cache %s: WarmDirtyPercent %d out of [0,100]", c.Name, c.WarmDirtyPercent)
	}
	return nil
}

// Result is the outcome of a cache access attempt.
type Result int

// Access outcomes. Hit completes at the cache's latency; Miss means a new
// MSHR was allocated and a line fetch starts; MissMerged means the access
// joined an MSHR whose fetch was already in flight (both fire the done
// callback when the fill arrives); Blocked means nothing was done and the
// caller must retry next cycle; Parked (AccessLoad only) means the access
// would allocate a new line fetch but the caller forbade allocation — no
// state was touched and no statistic counted.
const (
	Hit Result = iota
	Miss
	MissMerged
	Blocked
	Parked
)

// String implements fmt.Stringer.
func (r Result) String() string {
	switch r {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case MissMerged:
		return "miss-merged"
	case Blocked:
		return "blocked"
	case Parked:
		return "parked"
	}
	return fmt.Sprintf("Result(%d)", int(r))
}

// IsMiss reports whether the result is a (primary or merged) miss.
func (r Result) IsMiss() bool { return r == Miss || r == MissMerged }

// Stats counts cache activity.
type Stats struct {
	Hits       uint64
	Misses     uint64 // primary misses (MSHR allocations)
	Coalesced  uint64 // secondary misses merged into an existing MSHR
	Blocked    uint64 // accesses refused for MSHR/writeback pressure
	Writebacks uint64
	Evictions  uint64
}

// MissRate returns misses / (hits + misses).
func (s Stats) MissRate() float64 {
	t := s.Hits + s.Misses + s.Coalesced
	if t == 0 {
		return 0
	}
	return float64(s.Misses+s.Coalesced) / float64(t)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // last-touch tick
}

type mshr struct {
	addr    uint64
	isWrite bool // whether any merged request was a store (fill dirty)
	waiters []func()
	issued  bool // request accepted by the backend
	// fillFn is the completion callback handed to the backend. It is built
	// once per pooled mshr object and reused across occupancies: at most
	// one fill per object is ever in flight (the object returns to the
	// pool only after its fill fires), so the binding stays unambiguous.
	fillFn func()
}

// Cache is one cache level.
type Cache struct {
	cfg     Config
	backend Backend

	// lines holds every set's ways contiguously (set s occupies
	// lines[s*ways : (s+1)*ways]): one flat allocation, no per-set
	// pointer chase on the probe path.
	lines   []line
	ways    int
	numSets int
	// mru remembers each set's most recently hit way. Temporal locality
	// makes it the overwhelmingly likely hit, so Access probes it before
	// scanning the set; purely an ordering shortcut over an equality
	// scan, invisible in results.
	mru     []uint8
	setMask uint64
	offBits uint

	mshrs    *u64map.Map[*mshr] // in-flight line fetches by line address
	mshrFree []*mshr            // recycled mshr objects
	mshrQ    deque.Deque[*mshr] // MSHRs not yet issued to the backend
	wbQ      deque.Deque[uint64]
	tick     uint64 // LRU touch counter

	now       uint64                // cycle counter, advanced by Tick
	delayQ    deque.Deque[deferred] // latency-deferred callbacks, FIFO (constant delay)
	fireBatch []func()              // scratch for Tick's batched completion delivery

	Stats Stats
}

// deferred is a callback scheduled for a future cycle.
type deferred struct {
	at uint64
	fn func()
}

// deferResponse schedules fn after the cache's service latency. With a constant
// delay the queue stays sorted, so a FIFO suffices.
func (c *Cache) deferResponse(fn func()) {
	if c.cfg.LatencyCycles == 0 {
		// The callbacks are closures built by this cache's own core; the
		// cache and everything they touch stay on one shard.
		//lint:ignore sharestate zero-latency fast path invokes the shard-confined completion callback directly
		fn()
		return
	}
	c.delayQ.PushBack(deferred{at: c.now + uint64(c.cfg.LatencyCycles), fn: fn})
}

// acquireMSHR pops a recycled mshr or builds a new one with its prebuilt
// fill callback.
func (c *Cache) acquireMSHR(la uint64, isWrite bool) *mshr {
	var m *mshr
	if n := len(c.mshrFree); n > 0 {
		m = c.mshrFree[n-1]
		c.mshrFree = c.mshrFree[:n-1]
	} else {
		m = &mshr{}
		m.fillFn = func() { c.fill(m) }
	}
	m.addr = la
	m.isWrite = isWrite
	m.issued = false
	return m
}

// New builds a cache over the given backend.
func New(cfg Config, backend Backend) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.SizeBytes / cfg.LineBytes / cfg.Ways
	c := &Cache{
		cfg:     cfg,
		backend: backend,
		lines:   make([]line, sets*cfg.Ways),
		ways:    cfg.Ways,
		numSets: sets,
		mru:     make([]uint8, sets),
		setMask: uint64(sets - 1),
		mshrs:   u64map.New[*mshr](cfg.MSHRs),
	}
	for v := cfg.LineBytes; v > 1; v >>= 1 {
		c.offBits++
	}
	// Pre-build the whole mshr pool (MSHRs bounds concurrent occupancy, so
	// acquireMSHR can never need more) with waiter-list slack, and give the
	// Tick fire batch its scratch up front: the steady-state loop then runs
	// allocation-free from the first cycle instead of ramping each pool to
	// its high-water mark mid-measurement.
	c.mshrFree = make([]*mshr, 0, cfg.MSHRs)
	for i := 0; i < cfg.MSHRs; i++ {
		m := &mshr{waiters: make([]func(), 0, 8)}
		m.fillFn = func() { c.fill(m) }
		c.mshrFree = append(c.mshrFree, m)
	}
	c.fireBatch = make([]func(), 0, 16)
	c.mshrQ.Reserve(cfg.MSHRs)
	c.wbQ.Reserve(2 * cfg.WritebackBuf)
	c.delayQ.Reserve(32)
	return c, nil
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// index returns the set and tag of an address. The tag is the full line
// number (set bits included), which keeps reconstruction of victim
// addresses trivial; equality implies same set regardless.
func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	lineAddr := addr >> c.offBits
	return lineAddr & c.setMask, lineAddr
}

func (c *Cache) lineAddr(addr uint64) uint64 {
	return addr &^ uint64(c.cfg.LineBytes-1)
}

// Access performs a load (isWrite=false) or store (isWrite=true) with
// write-allocate semantics. On Miss, done fires when the fill completes.
// done may be nil for callers that do not need notification.
func (c *Cache) Access(addr uint64, isWrite bool, done func()) Result {
	c.tick++
	set, tag := c.index(addr)
	ways := c.lines[int(set)*c.ways : int(set)*c.ways+c.ways]
	if ln := &ways[c.mru[set]]; ln.valid && ln.tag == tag {
		ln.lru = c.tick
		if isWrite {
			ln.dirty = true
		}
		c.Stats.Hits++
		return Hit
	}
	for i := range ways {
		ln := &ways[i]
		if ln.valid && ln.tag == tag {
			ln.lru = c.tick
			if isWrite {
				ln.dirty = true
			}
			c.mru[set] = uint8(i)
			c.Stats.Hits++
			return Hit
		}
	}
	// Miss. Coalesce into an existing MSHR if one covers the line.
	la := c.lineAddr(addr)
	if m, ok := c.mshrs.Get(la); ok {
		if done != nil {
			m.waiters = append(m.waiters, done)
		}
		m.isWrite = m.isWrite || isWrite
		c.Stats.Coalesced++
		return MissMerged
	}
	if c.mshrs.Len() >= c.cfg.MSHRs || c.wbQ.Len() >= c.cfg.WritebackBuf {
		// No MSHR, or fills might have nowhere to push victims.
		c.Stats.Blocked++
		return Blocked
	}
	m := c.acquireMSHR(la, isWrite)
	if done != nil {
		m.waiters = append(m.waiters, done)
	}
	c.mshrs.Put(la, m)
	c.mshrQ.PushBack(m)
	c.Stats.Misses++
	return Miss
}

// AccessLoad performs a load access whose LSQ-slot admission is decided by
// the cache in the same pass: with mayAllocate false, an access that would
// start a new line fetch returns Parked with zero side effects (the CPU
// parks the load on its LSQ queue and retries when a slot frees). This
// fuses the WouldAllocate probe and the subsequent Access into a single
// address decomposition and set probe — on an LSQ-saturated replay walk
// the old pair decomposed and probed every address twice.
//
// The outcome and every observable side effect (LRU/MRU touches, statistic
// counters, MSHR state) are identical to WouldAllocate+Access: hits and
// coalesced misses proceed regardless of mayAllocate, exactly as they did
// when WouldAllocate returned false.
//
//burstmem:hotpath
func (c *Cache) AccessLoad(addr uint64, mayAllocate bool, done func()) Result {
	set, tag := c.index(addr)
	base := int(set) * c.ways
	ways := c.lines[base : base+c.ways]
	if ln := &ways[c.mru[set]]; ln.valid && ln.tag == tag {
		c.tick++
		ln.lru = c.tick
		c.Stats.Hits++
		return Hit
	}
	for i := range ways {
		ln := &ways[i]
		if ln.valid && ln.tag == tag {
			c.tick++
			ln.lru = c.tick
			c.mru[set] = uint8(i)
			c.Stats.Hits++
			return Hit
		}
	}
	la := tag << c.offBits
	if m, ok := c.mshrs.Get(la); ok {
		if done != nil {
			//lint:ignore hotalloc waiter slice capacity is retained across MSHR pool reuse
			m.waiters = append(m.waiters, done)
		}
		c.Stats.Coalesced++
		return MissMerged
	}
	if !mayAllocate {
		return Parked
	}
	if c.mshrs.Len() >= c.cfg.MSHRs || c.wbQ.Len() >= c.cfg.WritebackBuf {
		// No MSHR, or fills might have nowhere to push victims.
		c.Stats.Blocked++
		return Blocked
	}
	m := c.acquireMSHR(la, false)
	if done != nil {
		//lint:ignore hotalloc waiter slice capacity is retained across MSHR pool reuse
		m.waiters = append(m.waiters, done)
	}
	c.mshrs.Put(la, m)
	c.mshrQ.PushBack(m)
	c.Stats.Misses++
	return Miss
}

// WouldAllocate reports whether an access to addr would start a new line
// fetch (neither present nor already in flight). The CPU uses this to
// charge LSQ slots only for distinct outstanding fetches. (The CPU's hot
// path uses AccessLoad, which answers the same question and performs the
// access in one probe; this remains for callers that only want the query.)
func (c *Cache) WouldAllocate(addr uint64) bool {
	if c.Probe(addr) {
		return false
	}
	_, inflight := c.mshrs.Get(c.lineAddr(addr))
	return !inflight
}

// Probe reports whether the line is present without touching LRU state.
// The MRU hint is checked first — same shortcut as Access, equally
// invisible in results (a pure ordering change over an equality scan).
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	ways := c.lines[int(set)*c.ways : int(set)*c.ways+c.ways]
	if ln := &ways[c.mru[set]]; ln.valid && ln.tag == tag {
		return true
	}
	for i := range ways {
		ln := &ways[i]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// Tick advances one cycle of the cache's clock domain: latency-deferred
// responses fire, pending miss requests issue to the backend, and the
// writeback queue drains.
//
// Due completions are drained in a batch before any fires: the callbacks
// never re-enter this cache's delay queue (they belong to the level above),
// so a burst of same-cycle fills pays the queue's boundary checks once
// instead of once per waiter.
//
//burstmem:hotpath
func (c *Cache) Tick() {
	c.now++
	if c.delayQ.Len() > 0 && c.delayQ.Front().at <= c.now {
		batch := c.fireBatch[:0]
		for c.delayQ.Len() > 0 && c.delayQ.Front().at <= c.now {
			//lint:ignore hotalloc fire-batch scratch keeps its capacity across ticks
			batch = append(batch, c.delayQ.PopFront().fn)
		}
		for i, fn := range batch {
			batch[i] = nil // release the closure; the scratch buffer persists
			fn()
		}
		c.fireBatch = batch[:0]
	}
	// Issue pending miss requests.
	for c.mshrQ.Len() > 0 {
		m := *c.mshrQ.Front()
		if !c.backend.ReadLine(m.addr, m.fillFn) {
			break
		}
		m.issued = true
		c.mshrQ.PopFront()
	}
	// Drain writebacks.
	for c.wbQ.Len() > 0 {
		if !c.backend.WriteLine(*c.wbQ.Front()) {
			break
		}
		c.wbQ.PopFront()
		c.Stats.Writebacks++
	}
}

// fill installs a returned line, evicting the LRU way (queueing the victim
// if dirty), and wakes all coalesced waiters. The mshr returns to the pool.
func (c *Cache) fill(m *mshr) {
	la := m.addr
	c.mshrs.Delete(la)
	set, tag := c.index(la)
	ways := c.lines[int(set)*c.ways : int(set)*c.ways+c.ways]
	victim := 0
	for i := range ways {
		ln := &ways[i]
		if !ln.valid {
			victim = i
			break
		}
		if ln.lru < ways[victim].lru {
			victim = i
		}
	}
	v := &ways[victim]
	if v.valid {
		c.Stats.Evictions++
		if v.dirty {
			c.wbQ.PushBack(v.tag << c.offBits)
		}
	} else if c.cfg.WarmStart {
		// Synthesize the steady-state resident this way would hold: the
		// line one cache-size away in the same set. A deterministic
		// address hash decides dirtiness at the configured rate.
		c.Stats.Evictions++
		resident := (tag ^ uint64(c.numSets*c.cfg.Ways)) << c.offBits
		if int((resident*0x9E3779B97F4A7C15)>>32%100) < c.cfg.WarmDirtyPercent {
			c.wbQ.PushBack(resident)
		}
	}
	c.tick++
	*v = line{tag: tag, valid: true, dirty: m.isWrite, lru: c.tick}
	c.mru[set] = uint8(victim)
	for _, w := range m.waiters {
		c.deferResponse(w)
	}
	m.waiters = m.waiters[:0]
	c.mshrFree = append(c.mshrFree, m)
}

// SkipEligible reports whether Tick is a guaranteed no-op until external
// input arrives: no latency-deferred responses, no unissued miss requests,
// no queued writebacks. MSHRs already issued to the backend don't block a
// skip — their fills arrive via the backend's callback, not via Tick.
func (c *Cache) SkipEligible() bool {
	return c.delayQ.Len() == 0 && c.mshrQ.Len() == 0 && c.wbQ.Len() == 0
}

// NoEvent is NextEventCycle's "no internally scheduled event" sentinel.
const NoEvent = ^uint64(0)

// NextEventCycle returns the next cycle (on this cache's own clock) at
// which Tick could do anything, or NoEvent when only external input can.
// Unissued miss requests and queued writebacks retry every cycle; failing
// those, the earliest deferred completion is the next event (the delay
// queue is a constant-latency FIFO, so the front is the minimum). Ticks
// strictly before the returned cycle are pure clock advances, exactly
// what SkipCycles accounts.
func (c *Cache) NextEventCycle() uint64 {
	if c.mshrQ.Len() > 0 || c.wbQ.Len() > 0 {
		return c.now + 1
	}
	if c.delayQ.Len() > 0 {
		return c.delayQ.Front().at
	}
	return NoEvent
}

// SkipCycles advances the cycle counter over n skipped no-op cycles.
func (c *Cache) SkipCycles(n uint64) { c.now += n }

// InertFor reports whether the next n Ticks are provably equivalent to
// SkipCycles(n): the NextEventCycle bound lies beyond them.
func (c *Cache) InertFor(n uint64) bool {
	next := c.NextEventCycle()
	return next == NoEvent || next > c.now+n
}

// OutstandingMisses returns the number of allocated MSHRs.
func (c *Cache) OutstandingMisses() int { return c.mshrs.Len() }

// PendingWritebacks returns queued dirty evictions.
func (c *Cache) PendingWritebacks() int { return c.wbQ.Len() }

// ResetStats zeroes the statistics counters.
func (c *Cache) ResetStats() { c.Stats = Stats{} }

// Busy reports whether the cache still has in-flight work.
func (c *Cache) Busy() bool {
	return c.mshrs.Len() > 0 || c.wbQ.Len() > 0 || c.mshrQ.Len() > 0 || c.delayQ.Len() > 0
}

// AsBackend adapts this cache as the backend of an upper level: upper-level
// fills become accesses here, upper-level writebacks become stores
// (write-allocate, marking lines dirty so they eventually write back to
// memory).
func (c *Cache) AsBackend() Backend { return (*levelBackend)(c) }

type levelBackend Cache

// ReadLine implements Backend for an upper cache level. Hits respond after
// this cache's service latency; misses respond after the fill returns plus
// the latency.
func (b *levelBackend) ReadLine(addr uint64, done func()) bool {
	c := (*Cache)(b)
	switch c.Access(addr, false, done) {
	case Hit:
		c.deferResponse(done)
		return true
	case Miss, MissMerged:
		return true
	default:
		return false
	}
}

// WriteLine implements Backend for an upper cache level.
func (b *levelBackend) WriteLine(addr uint64) bool {
	c := (*Cache)(b)
	switch c.Access(addr, true, nil) {
	case Hit, Miss, MissMerged:
		return true
	default:
		return false
	}
}
