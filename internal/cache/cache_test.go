package cache

import (
	"testing"
	"testing/quick"
)

// memStub is an immediate-response backend recording traffic.
type memStub struct {
	reads    []uint64
	writes   []uint64
	deferred []func()
	busy     bool // when true, refuse everything
}

func (m *memStub) ReadLine(addr uint64, done func()) bool {
	if m.busy {
		return false
	}
	m.reads = append(m.reads, addr)
	m.deferred = append(m.deferred, done)
	return true
}

func (m *memStub) WriteLine(addr uint64) bool {
	if m.busy {
		return false
	}
	m.writes = append(m.writes, addr)
	return true
}

// deliver completes all outstanding fills.
func (m *memStub) deliver() {
	d := m.deferred
	m.deferred = nil
	for _, fn := range d {
		fn()
	}
}

func smallConfig() Config {
	return Config{Name: "t", SizeBytes: 4096, Ways: 2, LineBytes: 64,
		MSHRs: 4, WritebackBuf: 4, LatencyCycles: 0}
}

func mustCache(t *testing.T, cfg Config, b Backend) *Cache {
	t.Helper()
	c, err := New(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := L1Config("L1D").Validate(); err != nil {
		t.Fatal(err)
	}
	if err := L2Config().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := smallConfig()
	bad.LineBytes = 48
	if err := bad.Validate(); err == nil {
		t.Fatal("non-power-of-two line accepted")
	}
	bad = smallConfig()
	bad.Ways = 3 // 64 lines / 3 ways not integral
	if err := bad.Validate(); err == nil {
		t.Fatal("non-divisible ways accepted")
	}
	bad = smallConfig()
	bad.MSHRs = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero MSHRs accepted")
	}
}

func TestMissThenHit(t *testing.T) {
	m := &memStub{}
	c := mustCache(t, smallConfig(), m)
	fired := false
	if r := c.Access(0x1000, false, func() { fired = true }); r != Miss {
		t.Fatalf("first access = %v, want miss", r)
	}
	c.Tick() // issue to backend
	if len(m.reads) != 1 || m.reads[0] != 0x1000 {
		t.Fatalf("backend reads: %#v", m.reads)
	}
	m.deliver()
	if !fired {
		t.Fatal("fill callback did not fire")
	}
	if r := c.Access(0x1000, false, nil); r != Hit {
		t.Fatalf("second access = %v, want hit", r)
	}
	if r := c.Access(0x1008, false, nil); r != Hit {
		t.Fatalf("same-line access = %v, want hit", r)
	}
}

func TestMissCoalescing(t *testing.T) {
	m := &memStub{}
	c := mustCache(t, smallConfig(), m)
	var fires int
	done := func() { fires++ }
	if r := c.Access(0x2000, false, done); r != Miss {
		t.Fatal("want primary miss")
	}
	for i := 0; i < 3; i++ {
		if r := c.Access(0x2000+uint64(i*8), false, done); r != MissMerged {
			t.Fatalf("access %d = %v, want merged miss", i, r)
		}
	}
	c.Tick()
	if len(m.reads) != 1 {
		t.Fatalf("%d backend reads, want 1 (coalesced)", len(m.reads))
	}
	m.deliver()
	if fires != 4 {
		t.Fatalf("%d callbacks, want 4", fires)
	}
	if c.Stats.Misses != 1 || c.Stats.Coalesced != 3 {
		t.Fatalf("stats %+v", c.Stats)
	}
}

func TestMSHRLimit(t *testing.T) {
	m := &memStub{}
	c := mustCache(t, smallConfig(), m)
	for i := 0; i < 4; i++ {
		if r := c.Access(uint64(i)<<12, false, nil); r != Miss {
			t.Fatalf("miss %d = %v", i, r)
		}
	}
	if r := c.Access(99<<12, false, nil); r != Blocked {
		t.Fatalf("5th distinct miss = %v, want blocked (4 MSHRs)", r)
	}
	if c.OutstandingMisses() != 4 {
		t.Fatalf("outstanding = %d", c.OutstandingMisses())
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	m := &memStub{}
	cfg := smallConfig() // 4 KB, 2-way, 64 B lines -> 32 sets
	c := mustCache(t, cfg, m)
	// Write-allocate a line, dirty it, then evict it with two more fills
	// to the same set (set = bits 6.. of the line address; stride 4 KB
	// maps to the same set).
	fill := func(addr uint64, write bool) {
		if r := c.Access(addr, write, nil); r == Blocked {
			t.Fatalf("unexpected block at %#x", addr)
		}
		c.Tick()
		m.deliver()
		c.Tick()
	}
	fill(0x0000, true) // dirty
	fill(0x1000, false)
	fill(0x2000, false) // evicts 0x0000
	c.Tick()
	found := false
	for _, w := range m.writes {
		if w == 0x0000 {
			found = true
		}
	}
	if !found {
		t.Fatalf("dirty victim not written back; writes=%#v evictions=%d", m.writes, c.Stats.Evictions)
	}
	if c.Stats.Writebacks == 0 {
		t.Fatal("writeback not counted")
	}
}

func TestCleanEvictionSilent(t *testing.T) {
	m := &memStub{}
	c := mustCache(t, smallConfig(), m)
	fill := func(addr uint64) {
		c.Access(addr, false, nil)
		c.Tick()
		m.deliver()
		c.Tick()
	}
	fill(0x0000)
	fill(0x1000)
	fill(0x2000)
	c.Tick()
	if len(m.writes) != 0 {
		t.Fatalf("clean eviction produced writebacks: %#v", m.writes)
	}
}

func TestLRUVictimSelection(t *testing.T) {
	m := &memStub{}
	c := mustCache(t, smallConfig(), m)
	fill := func(addr uint64) {
		c.Access(addr, false, nil)
		c.Tick()
		m.deliver()
		c.Tick()
	}
	fill(0x0000)
	fill(0x1000)
	// Touch 0x0000 so 0x1000 is LRU.
	if r := c.Access(0x0000, false, nil); r != Hit {
		t.Fatal("expected hit")
	}
	fill(0x2000) // should evict 0x1000
	if !c.Probe(0x0000) {
		t.Fatal("recently used line evicted")
	}
	if c.Probe(0x1000) {
		t.Fatal("LRU line survived")
	}
}

func TestWritebackBackpressure(t *testing.T) {
	m := &memStub{busy: true}
	cfg := smallConfig()
	cfg.WritebackBuf = 2
	c := mustCache(t, cfg, m)
	// Manually stuff the writeback queue via dirty evictions with a busy
	// backend: first allow fills, then make the backend busy.
	m.busy = false
	fill := func(addr uint64, write bool) {
		c.Access(addr, write, nil)
		c.Tick()
		m.deliver()
		c.Tick()
	}
	fill(0x0000, true)
	fill(0x1000, true)
	m.busy = true // backend refuses writebacks now
	// Evict both dirty lines: their writebacks queue up.
	c.Access(0x2000, false, nil)
	c.Access(0x3000, false, nil)
	c.Tick()
	m.busy = false
	c.Tick()
	m.deliver()
	c.Tick()
	m.busy = true
	// Force two more dirty evictions so the WB queue fills.
	c.Access(0x2000, true, nil)
	c.Access(0x3000, true, nil)
	c.Access(0x4000, false, nil)
	c.Access(0x5000, false, nil)
	c.Tick()
	m.deliver()
	c.Tick()
	if c.PendingWritebacks() == 0 {
		t.Skip("scenario did not fill the writeback queue; covered by integration tests")
	}
	// With the WB queue occupied and backend refusing, new misses must
	// eventually block.
	blocked := false
	for i := 0; i < 8 && !blocked; i++ {
		if c.Access(uint64(0x100000+i*0x1000), false, nil) == Blocked {
			blocked = true
		}
	}
	if !blocked && c.PendingWritebacks() >= cfg.WritebackBuf {
		t.Fatal("full writeback queue did not block new misses")
	}
}

func TestWouldAllocate(t *testing.T) {
	m := &memStub{}
	c := mustCache(t, smallConfig(), m)
	if !c.WouldAllocate(0x4000) {
		t.Fatal("cold line should allocate")
	}
	c.Access(0x4000, false, nil)
	if c.WouldAllocate(0x4000) {
		t.Fatal("in-flight line should not allocate")
	}
	c.Tick()
	m.deliver()
	if c.WouldAllocate(0x4000) {
		t.Fatal("present line should not allocate")
	}
}

func TestLatencyDefersResponses(t *testing.T) {
	m := &memStub{}
	cfg := smallConfig()
	cfg.LatencyCycles = 5
	c := mustCache(t, cfg, m)
	fired := false
	c.Access(0x1000, false, func() { fired = true })
	c.Tick()
	m.deliver() // data arrives; response still latency-deferred
	if fired {
		t.Fatal("response fired with zero latency")
	}
	for i := 0; i < 5; i++ {
		if fired {
			t.Fatalf("response fired after %d cycles, want 5", i)
		}
		c.Tick()
	}
	if !fired {
		t.Fatal("response never fired")
	}
}

func TestAsBackendChainsLevels(t *testing.T) {
	m := &memStub{}
	l2 := mustCache(t, smallConfig(), m)
	l1cfg := smallConfig()
	l1cfg.SizeBytes = 1024
	l1 := mustCache(t, l1cfg, l2.AsBackend())
	fired := false
	if r := l1.Access(0x8000, false, func() { fired = true }); r != Miss {
		t.Fatal("want L1 miss")
	}
	l1.Tick() // L1 miss -> L2 access (miss) -> MSHR
	l2.Tick() // L2 issues to memory
	m.deliver()
	l2.Tick()
	l1.Tick()
	if !fired {
		t.Fatal("two-level fill did not complete")
	}
	if r := l2.Access(0x8000, false, nil); r != Hit {
		t.Fatal("L2 did not keep the line")
	}
}

// TestLineAddrProperty: lineAddr is idempotent and aligned.
func TestLineAddrProperty(t *testing.T) {
	c := mustCache(t, smallConfig(), &memStub{})
	f := func(addr uint64) bool {
		la := c.lineAddr(addr)
		return la%64 == 0 && c.lineAddr(la) == la && la <= addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSetIndexProperty: same line -> same set; distinct sets partition
// lines.
func TestSetIndexProperty(t *testing.T) {
	c := mustCache(t, smallConfig(), &memStub{})
	f := func(addr uint64) bool {
		s1, t1 := c.index(addr)
		s2, t2 := c.index(addr ^ 0x3F) // same line, different offset
		return s1 == s2 && t1 == t2 && s1 < uint64(c.numSets)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMissRateStat(t *testing.T) {
	m := &memStub{}
	c := mustCache(t, smallConfig(), m)
	c.Access(0x0, false, nil)
	c.Tick()
	m.deliver()
	c.Access(0x0, false, nil)
	if got := c.Stats.MissRate(); got != 0.5 {
		t.Fatalf("miss rate %v, want 0.5", got)
	}
	c.ResetStats()
	if c.Stats.MissRate() != 0 {
		t.Fatal("reset did not clear stats")
	}
}
