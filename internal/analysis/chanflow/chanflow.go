// Package chanflow audits channel life cycles over the points-to
// solution: every channel allocation site gets its send, receive, and
// close sites collected program-wide (through fields, parameters, and
// goroutines — wherever the solver proves the channel flows), and the
// shape of that set is checked against the ownership discipline the
// parallel simulator relies on.
//
// Findings, per make(chan) site:
//
//   - sent on but never received from: once the buffer fills every sender
//     blocks forever — a silent deadlock parked on a goroutine;
//   - received from but never sent on or closed: every receiver blocks
//     forever (a close with no sends is fine — that is the done-channel
//     idiom);
//   - more than one close site: a second close panics at runtime;
//   - closed by a non-owner: close is the sender's privilege. A close in
//     a function that never sends on the channel, did not allocate it
//     (nor is a literal spawned by the allocator), and is not a method of
//     a type whose fields hold the channel, is a receiver reaching into
//     the protocol — a recipe for "send on closed channel" panics.
//
// Channels that escape to unknown code (EscapesUnknown) are exempt: the
// solver cannot see the counterpart sites. Suppress an acknowledged
// finding with //lint:ignore chanflow <reason>.
package chanflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"burstmem/internal/analysis"
	"burstmem/internal/analysis/callgraph"
	"burstmem/internal/analysis/pointsto"
)

// Analyzer is the chanflow pass.
var Analyzer = &analysis.Analyzer{
	Name:       "chanflow",
	Doc:        "channels must have live send/recv counterparts, a single close, and sender-side closing",
	RunProgram: run,
}

// site is one channel operation.
type site struct {
	fn  *callgraph.Func
	pos token.Pos
}

// chanSites are the program-wide operations on one abstract channel.
type chanSites struct {
	sends, recvs, closes []site
}

func run(pass *analysis.ProgramPass) {
	g := callgraph.Build(pass.Prog)
	res := pointsto.Of(pass.Prog)

	sites := map[pointsto.ObjID]*chanSites{}
	at := func(objs []*pointsto.Object) []*chanSites {
		var out []*chanSites
		for _, o := range objs {
			if o.Kind != pointsto.KindMake || !isChan(o.Type) {
				continue
			}
			s := sites[o.ID]
			if s == nil {
				s = &chanSites{}
				sites[o.ID] = s
			}
			out = append(out, s)
		}
		return out
	}

	for _, fn := range g.Source {
		body := fn.Body()
		if body == nil {
			continue
		}
		info := fn.Pkg.TypesInfo
		self := fn.Lit
		ast.Inspect(body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit != self {
				return false // its own graph node
			}
			switch n := n.(type) {
			case *ast.SendStmt:
				for _, s := range at(chanObjs(res, info, n.Chan)) {
					s.sends = append(s.sends, site{fn, n.Pos()})
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					for _, s := range at(chanObjs(res, info, n.X)) {
						s.recvs = append(s.recvs, site{fn, n.Pos()})
					}
				}
			case *ast.RangeStmt:
				if tv, ok := info.Types[n.X]; ok {
					if _, isCh := tv.Type.Underlying().(*types.Chan); isCh {
						for _, s := range at(chanObjs(res, info, n.X)) {
							s.recvs = append(s.recvs, site{fn, n.Pos()})
						}
					}
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && len(n.Args) == 1 {
					if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
						for _, s := range at(chanObjs(res, info, n.Args[0])) {
							s.closes = append(s.closes, site{fn, n.Pos()})
						}
					}
				}
			}
			return true
		})
	}

	holders := holderTypes(res, sites)

	// Objects in ID order keeps the report deterministic.
	for _, obj := range res.Objects {
		s := sites[obj.ID]
		if s == nil || obj.EscapesUnknown {
			continue
		}
		if len(s.sends) > 0 && len(s.recvs) == 0 {
			pass.Reportf(obj.Pos,
				"channel made here is sent on (%s) but never received from: once the buffer fills every send blocks forever",
				where(pass, s.sends[0]))
		}
		if len(s.recvs) > 0 && len(s.sends) == 0 && len(s.closes) == 0 {
			pass.Reportf(obj.Pos,
				"channel made here is received from (%s) but never sent on or closed: every receive blocks forever",
				where(pass, s.recvs[0]))
		}
		if len(s.closes) >= 2 {
			pass.Reportf(s.closes[len(s.closes)-1].pos,
				"channel made at %s may be closed more than once (%d close sites, first at %s): a second close panics",
				pos(pass, obj.Pos), len(s.closes), pos(pass, s.closes[0].pos))
		}
		for _, c := range s.closes {
			if ownsClose(c.fn, obj, s, holders) {
				continue
			}
			pass.Reportf(c.pos,
				"channel made at %s is closed by %s, which never sends on it and does not own it: closing is the sender-owner's job",
				pos(pass, obj.Pos), c.fn.Name)
		}
	}
}

// chanObjs resolves a channel expression to abstract objects, falling
// back to the variable's points-to set for identifiers the constraint
// generator did not record in expression position.
func chanObjs(res *pointsto.Result, info *types.Info, e ast.Expr) []*pointsto.Object {
	if objs := res.ExprObjects(e); len(objs) > 0 {
		return objs
	}
	if id, ok := e.(*ast.Ident); ok {
		if v, ok := info.ObjectOf(id).(*types.Var); ok {
			return res.PointsTo(v)
		}
	}
	return nil
}

// holderTypes maps each tracked channel object to the type keys of the
// objects holding it in a field — the types whose methods count as
// owners.
func holderTypes(res *pointsto.Result, sites map[pointsto.ObjID]*chanSites) map[pointsto.ObjID]map[string]bool {
	holders := map[pointsto.ObjID]map[string]bool{}
	for _, obj := range res.Objects {
		if obj.TypeKey == "" {
			continue
		}
		for _, path := range res.Fields(obj) {
			for _, p := range res.FieldPointees(obj, path) {
				if _, tracked := sites[p.ID]; !tracked {
					continue
				}
				h := holders[p.ID]
				if h == nil {
					h = map[string]bool{}
					holders[p.ID] = h
				}
				h[obj.TypeKey] = true
			}
		}
	}
	return holders
}

// ownsClose reports whether the closing function may legitimately close
// the channel: it sends on it, allocated it (or is a literal spawned
// inside the allocator), or is a method of a type holding the channel.
func ownsClose(fn *callgraph.Func, obj *pointsto.Object, s *chanSites, holders map[pointsto.ObjID]map[string]bool) bool {
	for _, snd := range s.sends {
		if snd.fn == fn {
			return true
		}
	}
	for f := fn; f != nil; f = f.Parent {
		if f.ID == obj.Fn {
			return true
		}
	}
	if rk := recvTypeKey(fn); rk != "" && holders[obj.ID][rk] {
		return true
	}
	return false
}

// recvTypeKey returns "pkgpath.Type" for a method's receiver type, or "".
func recvTypeKey(fn *callgraph.Func) string {
	if fn.Decl == nil || fn.Decl.Recv == nil || len(fn.Decl.Recv.List) == 0 {
		return ""
	}
	tv, ok := fn.Pkg.TypesInfo.Types[fn.Decl.Recv.List[0].Type]
	if !ok {
		return ""
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func where(pass *analysis.ProgramPass, s site) string {
	return "in " + s.fn.Name + " at " + pos(pass, s.pos)
}

func pos(pass *analysis.ProgramPass, p token.Pos) string {
	position := pass.Prog.Fset.Position(p)
	return position.Filename[strings.LastIndexByte(position.Filename, '/')+1:] +
		":" + strconv.Itoa(position.Line)
}
