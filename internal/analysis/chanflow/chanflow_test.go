package chanflow_test

import (
	"testing"

	"burstmem/internal/analysis/analysistest"
	"burstmem/internal/analysis/chanflow"
)

func TestChanflow(t *testing.T) {
	analysistest.Run(t, chanflow.Analyzer, "./testdata/src/chans")
}
