// Package chans is the chanflow corpus: channels with missing
// counterparts, double closes, receiver-side closes, and the idioms that
// must stay quiet.
package chans

// sendNoRecv: every send eventually blocks.
func sendNoRecv() {
	ch := make(chan int, 1) // want `channel made here is sent on \(in chans\.sendNoRecv at chans\.go:\d+\) but never received from`
	ch <- 1
}

// recvNoSend: the receive blocks forever.
func recvNoSend() {
	ch := make(chan int) // want `channel made here is received from \(in chans\.recvNoSend at chans\.go:\d+\) but never sent on or closed`
	<-ch
}

// balanced is clean.
func balanced() {
	ch := make(chan int, 1)
	ch <- 1
	<-ch
}

// doneChannel: close with no sends is the done idiom — clean, including
// the close from a literal spawned by the allocator.
func doneChannel() {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

// doubleClose: two close sites on one allocation.
func doubleClose(again bool) {
	ch := make(chan int, 1)
	ch <- 1
	<-ch
	close(ch)
	if again {
		close(ch) // want `may be closed more than once \(2 close sites, first at chans\.go:\d+\): a second close panics`
	}
}

// interprocedural: the consumer closing a channel it only receives from.
func pipeline() {
	ch := make(chan int)
	go produce(ch)
	consumeAndClose(ch)
}

func produce(ch chan int) {
	for i := 0; i < 4; i++ {
		ch <- i
	}
}

func consumeAndClose(ch chan int) {
	<-ch
	close(ch) // want `is closed by chans\.consumeAndClose, which never sends on it and does not own it: closing is the sender-owner's job`
}

// Worker holds its channel in a field: methods of the holder are owners,
// so Shutdown's close is clean even though it never sends.
type Worker struct {
	ch chan int
}

func NewWorker() *Worker {
	return &Worker{ch: make(chan int, 4)}
}

func (w *Worker) Run() {
	w.ch <- 1
}

func (w *Worker) Drain() int {
	return <-w.ch
}

func (w *Worker) Shutdown() {
	close(w.ch)
}

func driveWorker() {
	w := NewWorker()
	go w.Run()
	w.Drain()
	w.Shutdown()
}

// ranged: a range loop counts as receiving.
func ranged() {
	ch := make(chan int, 2)
	go produce(ch)
	for range ch {
	}
}

// suppressed: an acknowledged finding stays quiet (the report anchors at
// the make site).
func suppressed() {
	//lint:ignore chanflow corpus exercises suppression
	ch := make(chan int, 1)
	ch <- 1
}
