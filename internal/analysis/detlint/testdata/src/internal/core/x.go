// Package core is detlint test data: it sits under a directory whose
// import path ends in internal/core, so the analyzer treats it as
// simulation logic.
package core

import (
	"math/rand" // want `import of math/rand: process-seeded randomness breaks reproducibility`
	"sort"
	"time"
)

type sched struct {
	pending map[uint64]int
	order   []uint64
}

// pickNondeterministic iterates a map to choose work: flagged.
func (s *sched) pickNondeterministic() uint64 {
	for id := range s.pending { // want `range over map s\.pending: iteration order is nondeterministic`
		return id
	}
	return 0
}

// pickDeterministic iterates a slice: not flagged.
func (s *sched) pickDeterministic() uint64 {
	sort.Slice(s.order, func(i, j int) bool { return s.order[i] < s.order[j] })
	for _, id := range s.order {
		if _, ok := s.pending[id]; ok {
			return id
		}
	}
	return 0
}

// stamp reads the wall clock: flagged.
func stamp() int64 {
	t := time.Now() // want `call of time.Now: simulation state must depend on simulated cycles`
	return t.Unix()
}

// elapsed uses time.Since: flagged.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `call of time.Since`
}

// duration arithmetic on simulated values is fine: not flagged.
func toNanos(cycles uint64) time.Duration {
	return time.Duration(cycles) * 2500 * time.Nanosecond / 1000
}

// spawn starts a goroutine: flagged.
func spawn(f func()) {
	go f() // want `goroutine spawn in simulation logic`
}

// spawnAllowed carries a reasoned exemption: not flagged.
func spawnAllowed(f func()) {
	//detlint:allow goroutine per-channel worker joins before state is read
	go f()
}

// spawnAllowedSameLine puts the directive on the statement itself.
func spawnAllowedSameLine(f func()) {
	go f() //detlint:allow goroutine drained via the channel barrier below
}

// spawnBareAllow has no reason: the directive exempts nothing and the
// spawn diagnostic says why.
func spawnBareAllow(f func()) {
	//detlint:allow goroutine
	go f() // want `detlint:allow goroutine requires a reason`
}

// spawnWrongScope tries to exempt something other than a goroutine: the
// directive is inert and the ban stands.
func spawnWrongScope(m map[int]int) {
	//detlint:allow maprange order does not matter here
	for range m { // want `range over map m`
	}
}

// roll uses the global math/rand stream (the import is already flagged).
func roll() int {
	return rand.Intn(6)
}

// allowed demonstrates the suppression contract: an ignore with a reason
// silences the diagnostic on the next line.
func allowed(m map[int]int) int {
	sum := 0
	//lint:ignore detlint summing is order-independent
	for _, v := range m {
		sum += v
	}
	return sum
}
