// Package tooling is detlint test data for the scope rule: its import path
// is not one of the simulation packages, so nothing here is flagged even
// though every forbidden construct appears.
package tooling

import (
	"math/rand"
	"time"
)

func wallClock() int64 { return time.Now().Unix() }

func roll() int { return rand.Intn(6) }

func spawn(f func()) { go f() }

func anyKey(m map[int]int) int {
	for k := range m {
		return k
	}
	return 0
}
