package detlint_test

import (
	"testing"

	"burstmem/internal/analysis/analysistest"
	"burstmem/internal/analysis/detlint"
)

func TestDetlint(t *testing.T) {
	analysistest.Run(t, detlint.Analyzer, "./testdata/src/internal/core")
}

// TestOutOfScope verifies packages outside the simulation set are ignored
// even when they contain the forbidden constructs.
func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, detlint.Analyzer, "./testdata/src/tooling")
}
