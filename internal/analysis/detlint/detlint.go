// Package detlint forbids sources of nondeterminism in the simulation
// packages. The simulator's contract is bit-identical results for identical
// configurations (skip_test.go relies on it, and every reproduced paper
// table is only trustworthy because reruns reproduce it), so simulation
// logic must not:
//
//   - iterate over maps (`for range m`): Go randomizes map iteration order,
//     so any scheduling or accounting decision made inside such a loop can
//     differ between runs;
//   - read wall-clock time (time.Now / time.Since / time.Until): results
//     must depend on simulated cycles only;
//   - use math/rand or math/rand/v2: their global generators are seeded
//     per-process; deterministic streams come from internal/xrand;
//   - spawn goroutines: the cycle loop is single-threaded by design, and
//     scheduler interleaving is nondeterministic.
//
// The check applies to the simulation packages (internal/{core, memctrl,
// dram, sched, sim, bus, cache, cpu}); cmd/ front-ends may parallelize runs
// and time themselves freely.
//
// The goroutine ban has a scoped escape hatch for the parallel-sim work:
//
//	//detlint:allow goroutine <reason>
//
// on the `go` statement's line (or the line above) exempts that one spawn.
// The reason is mandatory — a bare directive exempts nothing, and the spawn
// diagnostic says so — and the exemption covers goroutines only; map
// iteration, wall clocks and global rand stay banned unconditionally
// because no parallelization scheme makes them deterministic, so a
// directive naming anything else is inert. (goroutcheck still applies to
// exempted spawns: the loop-capture, WaitGroup-balance and unguarded-write
// checks are what make an allowed goroutine safe.)
package detlint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"burstmem/internal/analysis"
)

// Analyzer is the detlint pass.
var Analyzer = &analysis.Analyzer{
	Name: "detlint",
	Doc:  "forbid nondeterminism sources (map iteration, wall-clock time, global rand, goroutines) in simulation packages",
	Run:  run,
}

// SimPackages are the import-path suffixes detlint applies to. detflow
// shares the list: its interprocedural reach checks start from exactly the
// packages whose direct nondeterminism detlint bans.
var SimPackages = []string{
	"internal/core", "internal/memctrl", "internal/dram", "internal/sched",
	"internal/sim", "internal/bus", "internal/cache", "internal/cpu",
	"internal/trace", "internal/parsim",
}

// InSimScope reports whether the package is simulation logic.
func InSimScope(path string) bool {
	for _, s := range SimPackages {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// allowDirective is the scoped goroutine exemption prefix.
const allowDirective = "//detlint:allow "

// allowState distinguishes a reasoned exemption from a bare one.
type allowState uint8

const (
	allowValid allowState = iota + 1 // goroutine + reason: exempts
	allowBare                        // goroutine, no reason: exempts nothing
)

// goroutineAllows scans a file for goroutine exemptions, returning the
// state per directive line. Directives naming anything other than
// "goroutine" are inert: only the spawn ban has an escape hatch.
func goroutineAllows(pass *analysis.Pass, file *ast.File) map[int]allowState {
	allowed := map[int]allowState{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, allowDirective)
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) == 0 || fields[0] != "goroutine" {
				continue
			}
			line := pass.Fset.Position(c.Pos()).Line
			if len(fields) < 2 {
				allowed[line] = allowBare
			} else {
				allowed[line] = allowValid
			}
		}
	}
	return allowed
}

func run(pass *analysis.Pass) {
	if !InSimScope(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		allowed := goroutineAllows(pass, file)
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s: process-seeded randomness breaks reproducibility; use internal/xrand", path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := pass.TypesInfo.Types[n.X].Type; t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(), "range over map %s: iteration order is nondeterministic in simulation logic", types.ExprString(n.X))
					}
				}
			case *ast.GoStmt:
				line := pass.Fset.Position(n.Pos()).Line
				switch max(allowed[line], allowed[line-1]) {
				case allowValid:
					// exempted
				case allowBare:
					pass.Reportf(n.Pos(), "detlint:allow goroutine requires a reason; the bare directive exempts nothing")
				default:
					pass.Reportf(n.Pos(), "goroutine spawn in simulation logic: the cycle loop must stay single-threaded (exempt with //detlint:allow goroutine <reason>)")
				}
			case *ast.SelectorExpr:
				if obj := wallClockFunc(pass, n); obj != "" {
					pass.Reportf(n.Pos(), "call of time.%s: simulation state must depend on simulated cycles, not wall-clock time", obj)
				}
			}
			return true
		})
	}
}

// wallClockFunc returns the name of the time-package wall-clock function
// the selector refers to, or "".
func wallClockFunc(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "time" {
		return ""
	}
	switch sel.Sel.Name {
	case "Now", "Since", "Until":
		return sel.Sel.Name
	}
	return ""
}
