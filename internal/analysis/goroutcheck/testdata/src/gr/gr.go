// Package gr is goroutcheck test data: worker-pool idioms done right and
// each of the three mistake classes done wrong.
package gr

import "sync"

var counter int

var gmu sync.Mutex

// cleanPool is the idiomatic fan-out: per-iteration arguments, deferred
// Done, map writes under the mutex, slice slots partitioned by a local
// index. Nothing is flagged.
func cleanPool(jobs []string) map[string]int {
	out := make(map[string]int)
	results := make([]int, len(jobs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j string) {
			defer wg.Done()
			r := len(j)
			results[i] = r
			mu.Lock()
			out[j] = r
			mu.Unlock()
		}(i, j)
	}
	wg.Wait()
	return out
}

// loopCapture reads a variable the loop reassigns from inside the spawned
// goroutine.
func loopCapture(jobs []string) {
	var wg sync.WaitGroup
	var cur string
	for _, j := range jobs {
		cur = j
		wg.Add(1)
		go func() { // want `goroutine captures cur, which the enclosing loop writes`
			defer wg.Done()
			_ = len(cur)
		}()
	}
	wg.Wait()
}

// loop122 uses Go 1.22 per-iteration loop variables directly: safe, not
// flagged.
func loop122(jobs []string) {
	var wg sync.WaitGroup
	for i := 0; i < len(jobs); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = jobs[i]
		}()
	}
	wg.Wait()
}

// addInside moves the Add into the goroutine, racing with Wait.
func addInside() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want `wg.Add inside the spawned goroutine races with Wait`
		wg.Done()
	}()
	wg.Wait()
}

// missingDone Adds but the goroutine never calls Done: Wait hangs.
func missingDone(f func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `wg.Add before this go statement has no matching wg.Done`
		_ = wg
		f()
	}()
	wg.Wait()
}

// conditionalDone skips Done on the early-return path.
func conditionalDone(jobs []string) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `wg.Done may be skipped on some path`
		if len(jobs) == 0 {
			return
		}
		wg.Done()
	}()
	wg.Wait()
}

// unguardedMap writes a captured map with no lock: crashes under
// concurrency.
func unguardedMap(out map[string]int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		out["k"] = 1 // want `map write to out in a goroutine without holding a lock`
	}()
	wg.Wait()
}

// unguardedCaptured writes a captured variable with no lock.
func unguardedCaptured() int {
	total := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		total++ // want `write to captured variable total in a goroutine without holding a lock`
	}()
	wg.Wait()
	return total
}

// unguardedGlobal writes a package variable with no lock.
func unguardedGlobal() {
	done := make(chan struct{})
	go func() {
		counter++ // want `write to package variable counter in a goroutine without holding a lock`
		close(done)
	}()
	<-done
}

// guardedGlobal holds the package mutex: clean.
func guardedGlobal() {
	done := make(chan struct{})
	go func() {
		gmu.Lock()
		counter++
		gmu.Unlock()
		close(done)
	}()
	<-done
}

// lockSkippedOnPath holds the lock on one path only: the merged state is
// "maybe unlocked", so the write is flagged.
func lockSkippedOnPath(hot bool) {
	done := make(chan struct{})
	go func() {
		if hot {
			gmu.Lock()
		}
		counter++ // want `write to package variable counter in a goroutine without holding a lock`
		if hot {
			gmu.Unlock()
		}
		close(done)
	}()
	<-done
}

// bumpCounter is the effectful helper the interprocedural check sees
// through.
func bumpCounter() { counter++ }

// callEffectful calls a global-writing function from an unlocked
// goroutine.
func callEffectful() {
	done := make(chan struct{})
	go func() {
		bumpCounter() // want `call of bumpCounter from a goroutine writes gr.counter without holding a lock`
		close(done)
	}()
	<-done
}

// callEffectfulLocked makes the same call under the lock: clean.
func callEffectfulLocked() {
	done := make(chan struct{})
	go func() {
		gmu.Lock()
		bumpCounter()
		gmu.Unlock()
		close(done)
	}()
	<-done
}

// spawnNamed spawns a named function that writes a global with no locking
// of its own.
func spawnNamed() {
	go bumpCounter() // want `spawned function gr.bumpCounter writes gr.counter with no locking`
}

// lockedBump synchronizes itself, so spawning it is clean.
func lockedBump() {
	gmu.Lock()
	counter++
	gmu.Unlock()
}

// spawnNamedLocked spawns the self-locking variant: clean.
func spawnNamedLocked() {
	go lockedBump()
}
