// Package goroutcheck polices the goroutines the repository is allowed to
// have — the experiment harness's worker pools today, detlint-exempted
// per-channel workers tomorrow — for the three mistakes that make a
// correct-looking fan-out silently wrong:
//
//   - Loop-variable capture: a spawned closure reading a variable that the
//     enclosing loop reassigns sees whatever iteration the scheduler lands
//     on. Go 1.22 made `:=`-declared loop variables per-iteration, so only
//     variables declared *outside* the loop and written by it are flagged;
//     the fix is to pass the value as an argument.
//   - WaitGroup imbalance: wg.Add must precede the spawn (an Add inside
//     the goroutine races with Wait), and wg.Done must be reached on every
//     control-flow path through the goroutine body — checked on the CFG,
//     where the defer chain makes `defer wg.Done()` cover all paths by
//     construction.
//   - Unguarded shared writes: a store to a captured variable or package
//     variable from a spawned goroutine must happen while a mutex is held.
//     Held locks are tracked with a must-hold forward dataflow over the
//     goroutine's CFG (Lock/RLock acquire, Unlock/RUnlock release), so
//     `mu.Lock(); m[k] = v; mu.Unlock()` is clean and the same store on an
//     early-return path that skipped the Lock is not. Writes to distinct
//     elements of a captured slice indexed by a goroutine-local value are
//     exempt — the worker-pool idiom `results[i] = r` partitions, rather
//     than shares, the slice — but map writes always need the lock:
//     concurrent map writes crash regardless of key disjointness.
//
// The analyzer is interprocedural where it pays: a call from an unguarded
// goroutine to a function whose effect summary (internal/analysis/summary)
// writes package-level state is flagged at the call, and `go f()` of a
// named function that writes globals without any locking of its own is
// flagged at the spawn.
//
// Suppression uses the standard `//lint:ignore goroutcheck <reason>`.
package goroutcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"burstmem/internal/analysis"
	"burstmem/internal/analysis/astx"
	"burstmem/internal/analysis/callgraph"
	"burstmem/internal/analysis/cfg"
	"burstmem/internal/analysis/dataflow"
	"burstmem/internal/analysis/summary"
)

// Analyzer is the goroutcheck pass.
var Analyzer = &analysis.Analyzer{
	Name:       "goroutcheck",
	Doc:        "spawned goroutines must not capture loop-written variables, must balance WaitGroup Add/Done on all paths, and must hold a lock when writing shared state",
	RunProgram: run,
}

func run(pass *analysis.ProgramPass) {
	set := summary.Of(pass.Prog)
	for _, fn := range set.Graph.Source {
		if fn.Body() == nil {
			continue
		}
		checkLoopCapture(pass, fn)
		checkWaitGroups(pass, fn)
		for _, e := range fn.Out {
			if e.Kind != callgraph.Spawn || e.Callee == nil {
				continue
			}
			switch {
			case e.Callee.Lit != nil && e.Callee.Parent == fn:
				checkSpawnedLit(pass, set, fn, e.Callee)
			case e.Callee.Decl != nil:
				checkSpawnedNamed(pass, set, e)
			}
		}
	}
}

// ---- loop-variable capture ----

func checkLoopCapture(pass *analysis.ProgramPass, fn *callgraph.Func) {
	info := fn.Pkg.TypesInfo
	var loops []ast.Node
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Its own node spawns are its own loop contexts.
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			saved := loops
			loops = append(loops, n)
			for _, c := range children(n) {
				ast.Inspect(c, walk)
			}
			loops = saved
			return false
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok && len(loops) > 0 {
				reportLoopCaptures(pass, info, loops, n, lit)
			}
		}
		return true
	}
	ast.Inspect(fn.Body(), walk)
}

// children returns the non-nil sub-nodes of a loop to walk with the loop
// pushed.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	switch n := n.(type) {
	case *ast.ForStmt:
		if n.Init != nil {
			out = append(out, n.Init)
		}
		if n.Cond != nil {
			out = append(out, n.Cond)
		}
		if n.Post != nil {
			out = append(out, n.Post)
		}
		out = append(out, n.Body)
	case *ast.RangeStmt:
		if n.Key != nil {
			out = append(out, n.Key)
		}
		if n.Value != nil {
			out = append(out, n.Value)
		}
		out = append(out, n.X, n.Body)
	}
	return out
}

// reportLoopCaptures flags free variables of the spawned literal that some
// enclosing loop writes while being declared outside that loop.
func reportLoopCaptures(pass *analysis.ProgramPass, info *types.Info, loops []ast.Node, g *ast.GoStmt, lit *ast.FuncLit) {
	seen := map[*types.Var]bool{}
	var flagged []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || seen[v] {
			return true
		}
		seen[v] = true
		if within(v.Pos(), lit) {
			return true // goroutine-local
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package variable: the unguarded-write check's beat
		}
		for _, loop := range loops {
			if !within(v.Pos(), loop) && assignedIn(info, loop, v) {
				flagged = append(flagged, v.Name())
				break
			}
		}
		return true
	})
	sort.Strings(flagged)
	for _, name := range flagged {
		pass.Reportf(g.Pos(), "goroutine captures %s, which the enclosing loop writes on every iteration; pass it as an argument instead", name)
	}
}

func within(pos token.Pos, n ast.Node) bool {
	return n.Pos() <= pos && pos <= n.End()
}

// assignedIn reports whether the loop's subtree writes v (plain
// assignment, inc/dec, or a range clause reusing it).
func assignedIn(info *types.Info, loop ast.Node, v *types.Var) bool {
	found := false
	isV := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && info.Uses[id] == v
	}
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if isV(lhs) {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if isV(n.X) {
				found = true
			}
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN && (n.Key != nil && isV(n.Key) || n.Value != nil && isV(n.Value)) {
				found = true
			}
		}
		return true
	})
	return found
}

// ---- WaitGroup balance ----

// checkWaitGroups verifies, for every goroutine literal spawned by fn,
// that Add happens outside the goroutine and Done is reached on all paths.
func checkWaitGroups(pass *analysis.ProgramPass, fn *callgraph.Func) {
	info := fn.Pkg.TypesInfo
	// WaitGroup paths fn itself calls Add on, outside any literal.
	adds := map[string]bool{}
	ast.Inspect(fn.Body(), func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if path, method := wgCall(info, n); method == "Add" {
			adds[path] = true
		}
		return true
	})

	ast.Inspect(fn.Body(), func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		checkSpawnedWaitGroup(pass, info, adds, g, lit)
		return true
	})
}

func checkSpawnedWaitGroup(pass *analysis.ProgramPass, info *types.Info, adds map[string]bool, g *ast.GoStmt, lit *ast.FuncLit) {
	// Add inside the goroutine races with the enclosing Wait.
	dones := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false
		}
		path, method := wgCall(info, n)
		switch method {
		case "Add":
			pass.Reportf(n.Pos(), "wg.Add inside the spawned goroutine races with Wait; call %s.Add before the go statement", path)
		case "Done":
			dones[path] = true
		}
		return true
	})

	// Every WaitGroup the encloser Adds on and the goroutine captures must
	// be Done'd on all paths; a captured-but-never-Done'd one is the
	// classic hang.
	paths := make([]string, 0, len(adds))
	for p := range adds {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var g2 *cfg.CFG
	for _, p := range paths {
		if !dones[p] {
			if capturesPath(info, lit, p) {
				pass.Reportf(g.Pos(), "%s.Add before this go statement has no matching %s.Done in the goroutine", p, p)
			}
			continue
		}
		if g2 == nil {
			g2 = cfg.New(lit)
		}
		if exitReachableWithoutDone(g2, info, p) {
			pass.Reportf(g.Pos(), "%s.Done may be skipped on some path through this goroutine; use `defer %s.Done()`", p, p)
		}
	}
}

// capturesPath reports whether the literal references the access path at
// all (so a goroutine that never touches the WaitGroup — joined some other
// way — is not flagged).
func capturesPath(info *types.Info, lit *ast.FuncLit, path string) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && astx.PathString(e) == path {
			found = true
		}
		return !found
	})
	return found
}

// exitReachableWithoutDone walks the CFG from entry, refusing to cross
// blocks that call path.Done, and reports whether exit is reachable — i.e.
// whether some orderly return skips the Done.
func exitReachableWithoutDone(g *cfg.CFG, info *types.Info, path string) bool {
	blocked := func(b *cfg.Block) bool {
		for _, n := range b.Nodes {
			done := false
			ast.Inspect(n, func(x ast.Node) bool {
				switch x.(type) {
				case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
					return false
				}
				if p, m := wgCall(info, x); m == "Done" && p == path {
					done = true
				}
				return !done
			})
			if done {
				return true
			}
		}
		return false
	}
	seen := make([]bool, len(g.Blocks))
	var stack []*cfg.Block
	push := func(b *cfg.Block) {
		if !seen[b.Index] && !blocked(b) {
			seen[b.Index] = true
			stack = append(stack, b)
		}
	}
	push(g.Entry)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == g.Exit {
			return true
		}
		for _, s := range b.Succs {
			push(s)
		}
	}
	return false
}

// wgCall classifies a node as a sync.WaitGroup method call, returning the
// receiver's access path and the method name ("" when it is not one).
func wgCall(info *types.Info, n ast.Node) (path, method string) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Add", "Done", "Wait":
	default:
		return "", ""
	}
	if tv, ok := info.Types[sel.X]; !ok || !astx.IsNamed(tv.Type, "sync", "WaitGroup") {
		return "", ""
	}
	p := astx.PathString(sel.X)
	if p == "" {
		return "", ""
	}
	return p, sel.Sel.Name
}

// ---- unguarded shared writes ----

// lockFact is the set of mutex access paths certainly held (must
// analysis); nil is bottom (unreachable).
type lockFact map[string]bool

type lockProblem struct {
	info *types.Info
}

func (p *lockProblem) Direction() dataflow.Direction { return dataflow.Forward }
func (p *lockProblem) Boundary() lockFact            { return lockFact{} }
func (p *lockProblem) Bottom() lockFact              { return nil }

func (p *lockProblem) Join(a, b lockFact) lockFact {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := lockFact{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func (p *lockProblem) Equal(a, b lockFact) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func (p *lockProblem) Transfer(b *cfg.Block, in lockFact) lockFact {
	if in == nil {
		return nil
	}
	out := lockFact{}
	for k := range in {
		out[k] = true
	}
	for _, n := range b.Nodes {
		p.apply(n, out)
	}
	return out
}

// apply folds one node's lock transitions into the fact. Deferred and
// spawned calls do not execute at their textual position; the CFG's defer
// chain re-presents deferred calls as bare CallExprs at exit.
func (p *lockProblem) apply(n ast.Node, f lockFact) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if path, acquire, ok := p.mutexOp(x); ok {
				if acquire {
					f[path] = true
				} else {
					delete(f, path)
				}
			}
		}
		return true
	})
}

// mutexOp classifies a call as a mutex acquire/release on an access path.
func (p *lockProblem) mutexOp(call *ast.CallExpr) (path string, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	tv, found := p.info.Types[sel.X]
	if !found || !(astx.IsNamed(tv.Type, "sync", "Mutex") || astx.IsNamed(tv.Type, "sync", "RWMutex")) {
		return "", false, false
	}
	path = astx.PathString(sel.X)
	if path == "" {
		return "", false, false
	}
	return path, acquire, true
}

// checkSpawnedLit verifies every shared write in a spawned literal happens
// under a held lock.
func checkSpawnedLit(pass *analysis.ProgramPass, set *summary.Set, fn *callgraph.Func, lit *callgraph.Func) {
	info := lit.Pkg.TypesInfo
	g := cfg.New(lit.Lit)
	prob := &lockProblem{info: info}
	res := dataflow.Solve[lockFact](g, prob)

	c := &litChecker{pass: pass, set: set, info: info, lit: lit.Lit}
	for _, b := range g.Blocks {
		in := res.In[b]
		if in == nil {
			continue // unreachable
		}
		f := lockFact{}
		for k := range in {
			f[k] = true
		}
		for _, n := range b.Nodes {
			c.checkNode(n, f)
			prob.apply(n, f)
		}
	}
}

// litChecker replays a spawned literal's blocks, diagnosing shared writes
// and globally-effectful calls made with no lock held.
type litChecker struct {
	pass *analysis.ProgramPass
	set  *summary.Set
	info *types.Info
	lit  *ast.FuncLit
}

func (c *litChecker) checkNode(n ast.Node, held lockFact) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if x != c.lit {
				return false
			}
		case *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range x.Lhs {
				c.checkWrite(lhs, held)
			}
		case *ast.IncDecStmt:
			c.checkWrite(x.X, held)
		case *ast.RangeStmt:
			if x.Tok == token.ASSIGN {
				if x.Key != nil {
					c.checkWrite(x.Key, held)
				}
				if x.Value != nil {
					c.checkWrite(x.Value, held)
				}
			}
		case *ast.CallExpr:
			c.checkCall(x, held)
		}
		return true
	})
}

// checkWrite flags a store whose destination escapes the goroutine when no
// lock is held.
func (c *litChecker) checkWrite(lhs ast.Expr, held lockFact) {
	if len(held) > 0 {
		return
	}
	base, shape := c.classify(lhs)
	if base == nil {
		return
	}
	global := base.Pkg() != nil && base.Parent() == base.Pkg().Scope()
	captured := !global && !within(base.Pos(), c.lit)
	if !global && !captured {
		return // goroutine-local
	}
	switch shape {
	case writeMapElem:
		c.pass.Reportf(lhs.Pos(), "map write to %s in a goroutine without holding a lock: concurrent map writes crash the process", base.Name())
	case writeSliceElemLocalIndex:
		// The partitioned worker-pool idiom: each goroutine owns its slot.
	default:
		what := "captured variable"
		if global {
			what = "package variable"
		}
		c.pass.Reportf(lhs.Pos(), "write to %s %s in a goroutine without holding a lock", what, base.Name())
	}
}

// writeShape classifies the destination expression.
type writeShape uint8

const (
	writeDirect writeShape = iota
	writeMapElem
	writeSliceElemLocalIndex
	writeSliceElemSharedIndex
)

// classify walks the destination down to its base variable, noting whether
// the store goes through a map element or a slice element with a
// goroutine-local index.
func (c *litChecker) classify(lhs ast.Expr) (*types.Var, writeShape) {
	shape := writeDirect
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.IndexExpr:
			if tv, ok := c.info.Types[e.X]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					shape = writeMapElem
				case *types.Slice, *types.Array, *types.Pointer:
					if shape == writeDirect {
						if c.localExpr(e.Index) {
							shape = writeSliceElemLocalIndex
						} else {
							shape = writeSliceElemSharedIndex
						}
					}
				}
			}
			lhs = e.X
		case *ast.Ident:
			if e.Name == "_" {
				return nil, shape
			}
			v, _ := c.info.Uses[e].(*types.Var)
			return v, shape
		default:
			return nil, shape
		}
	}
}

// localExpr reports whether every variable the expression reads is
// declared inside the goroutine.
func (c *litChecker) localExpr(e ast.Expr) bool {
	local := true
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := c.info.Uses[id].(*types.Var); ok && !within(v.Pos(), c.lit) {
			local = false
		}
		return local
	})
	return local
}

// checkCall flags lock-free calls to statically known functions whose
// summaries write package-level state.
func (c *litChecker) checkCall(call *ast.CallExpr, held lockFact) {
	if len(held) > 0 {
		return
	}
	var obj *types.Func
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj, _ = c.info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		obj, _ = c.info.Uses[fun.Sel].(*types.Func)
	}
	if obj == nil {
		return
	}
	sum := c.set.Funcs[callgraph.FuncID(obj)]
	if sum == nil {
		return
	}
	for _, eff := range sum.Sorted() {
		if eff.Kind == summary.GlobalWrite {
			c.pass.Reportf(call.Pos(), "call of %s from a goroutine writes %s without holding a lock", obj.Name(), shortTarget(eff.Target))
			return
		}
	}
}

// checkSpawnedNamed flags `go f()` of a named function that writes
// package-level state with no locking anywhere in its body.
func checkSpawnedNamed(pass *analysis.ProgramPass, set *summary.Set, e callgraph.Edge) {
	sum := set.Funcs[e.Callee.ID]
	if sum == nil || e.Callee.Body() == nil {
		return
	}
	for _, eff := range sum.Sorted() {
		if eff.Kind != summary.GlobalWrite {
			continue
		}
		if bodyLocks(e.Callee) {
			return
		}
		pass.Reportf(e.Pos, "spawned function %s writes %s with no locking", e.Callee.Name, shortTarget(eff.Target))
		return
	}
}

// bodyLocks reports whether the function's own body acquires any mutex —
// the cheap proxy for "it synchronizes its writes itself".
func bodyLocks(fn *callgraph.Func) bool {
	info := fn.Pkg.TypesInfo
	found := false
	ast.Inspect(fn.Body(), func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
				if tv, ok := info.Types[sel.X]; ok &&
					(astx.IsNamed(tv.Type, "sync", "Mutex") || astx.IsNamed(tv.Type, "sync", "RWMutex")) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// shortTarget strips the directory part of an effect target.
func shortTarget(target string) string {
	for i := len(target) - 1; i >= 0; i-- {
		if target[i] == '/' {
			return target[i+1:]
		}
	}
	return target
}
