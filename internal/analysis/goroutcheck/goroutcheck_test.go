package goroutcheck_test

import (
	"testing"

	"burstmem/internal/analysis/analysistest"
	"burstmem/internal/analysis/goroutcheck"
)

func TestGoroutcheck(t *testing.T) {
	analysistest.Run(t, goroutcheck.Analyzer, "./testdata/src/gr")
}
