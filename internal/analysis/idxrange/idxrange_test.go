package idxrange_test

import (
	"testing"

	"burstmem/internal/analysis/analysistest"
	"burstmem/internal/analysis/idxrange"
)

func TestIdxrange(t *testing.T) {
	analysistest.Run(t, idxrange.Analyzer, "./testdata/src/ix")
}
