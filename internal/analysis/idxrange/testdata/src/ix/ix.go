// Package ix is idxrange test data: DRAM coordinates indexing matching
// and mismatching containers.
package ix

import "burstmem/internal/addrmap"

type bankState struct {
	open bool
	row  uint32
}

type rankState struct {
	banks []bankState
}

type channelState struct {
	ranks []rankState
}

// txn mirrors a dram transaction: dimension-named integer fields on a
// struct other than addrmap.Loc are sources too.
type txn struct {
	Rank int
	Bank int
}

// direct: a Loc field indexing the wrong container.
func direct(banks []bankState, loc addrmap.Loc) bankState {
	return banks[loc.Rank] // want `rank value indexes banks \(bank dimension\)`
}

// matching: same code, right coordinate.
func matching(banks []bankState, loc addrmap.Loc) bankState {
	return banks[loc.Bank]
}

// throughVariable: taint survives a conversion and a copy.
func throughVariable(ranks []rankState, loc addrmap.Loc) rankState {
	b := int(loc.Bank)
	i := b
	return ranks[i] // want `bank value indexes ranks \(rank dimension\)`
}

// jagged: only the leaf index is checked against the container name;
// here both coordinates are swapped and the leaf one is caught.
func jagged(c *channelState, loc addrmap.Loc) bankState {
	return c.ranks[int(loc.Rank)].banks[int(loc.Row)] // want `row value indexes c\.ranks\.banks \(bank dimension\)`
}

// txnFields: transaction coordinates are sources like Loc fields.
func txnFields(c *channelState, t txn) *bankState {
	rk := &c.ranks[t.Rank]
	return &rk.banks[t.Rank] // want `rank value indexes rk\.banks \(bank dimension\)`
}

// arithmeticKills: the permutation mapper's XOR deliberately mixes
// dimensions, so operator results are dimensionless.
func arithmeticKills(banks []bankState, loc addrmap.Loc) bankState {
	permuted := loc.Bank ^ uint8(loc.Row&3)
	return banks[permuted]
}

// reassignClears: overwriting the variable drops its old dimension.
func reassignClears(banks []bankState, loc addrmap.Loc, n int) bankState {
	i := int(loc.Rank)
	i = n % len(banks)
	return banks[i]
}

// joinLoses: a variable holding different dimensions on different paths
// is treated as dimensionless after the merge.
func joinLoses(banks []bankState, loc addrmap.Loc, c bool) bankState {
	var i int
	if c {
		i = int(loc.Bank)
	} else {
		i = int(loc.Rank)
	}
	return banks[i]
}

// loopVars: range variables are fresh counters, not coordinates.
func loopVars(c *channelState) int {
	open := 0
	for r := range c.ranks {
		for b := range c.ranks[r].banks {
			if c.ranks[r].banks[b].open {
				open++
			}
		}
	}
	return open
}

// unnamedContainer: a container whose name resolves to no dimension is
// never checked.
func unnamedContainer(scratch []int, loc addrmap.Loc) int {
	return scratch[loc.Rank]
}

// suppressed: a deliberate cross-dimension index documents itself.
func suppressed(banks []bankState, loc addrmap.Loc) bankState {
	//lint:ignore idxrange fault-injection experiment aliases rank onto bank
	return banks[loc.Rank]
}

// summaryWrongDim: per-rank summary bitmaps (one word of bank bits per
// rank, the occupied-bank idiom) are rank-indexed containers even though
// their elements are words, not structs.
func summaryWrongDim(occByRank []uint64, loc addrmap.Loc) uint64 {
	return occByRank[loc.Bank] // want `bank value indexes occByRank \(rank dimension\)`
}

// summaryMatching: the same bitmap read with the right coordinate.
func summaryMatching(occByRank []uint64, loc addrmap.Loc) uint64 {
	return occByRank[loc.Rank] & 0x3
}

// flattenedHints: rank*banks+bank flattening is arithmetic, so the index
// is dimensionless and flat per-bank hint tables stay quiet — the
// flattening itself is the dimension conversion.
func flattenedHints(hintByBank []uint32, loc addrmap.Loc, banks int) uint32 {
	return hintByBank[int(loc.Rank)*banks+int(loc.Bank)]
}

// summaryBitWrongDim: selecting a bank bit out of the rank word with a
// row coordinate is still caught at the (non-jagged) shift... but shifts
// are operators, so the bit position is dimensionless; only the container
// index is checked. The mistake that IS caught is indexing the per-bank
// expansion with the row.
func summaryBitWrongDim(perBank []bool, loc addrmap.Loc) bool {
	return perBank[loc.Row] // want `row value indexes perBank \(bank dimension\)`
}
