// Package idxrange checks that DRAM coordinate values index
// matching-dimension containers. An address decomposed by
// internal/addrmap yields five coordinates — Channel, Rank, Bank, Row,
// Col — that are all small integers, so `c.ranks[t.Bank]` compiles,
// stays in bounds for most geometries, and silently simulates the wrong
// machine. This is the classic units bug of memory-controller code and
// the reason the paper's permutation mapper exists at all (bank bits are
// deliberately scrambled; rank bits are not).
//
// The analysis runs forward dimension-taint over the CFG:
//
//   - sources: reads of a struct field named after a dimension (the
//     addrmap.Loc fields, dram transaction coordinates, trace events) —
//     the value is tainted with that dimension;
//   - propagation: plain copies and numeric conversions
//     (`int(loc.Bank)`) keep the taint;
//   - kills: any arithmetic. `base.Bank ^ (base.Row & mask)` is how the
//     permutation mapper deliberately mixes dimensions, so the result of
//     an operator is dimensionless;
//   - sinks: index expressions `xs[i]` where the container's name
//     resolves to a dimension (`ranks`, `banks`, `perBank`, `rowState`)
//     and i carries a different dimension's taint.
//
// Only the innermost index of a jagged container is checked against the
// container's name: in `banks[r][b]` the name describes what one leaf
// element is, not the outer dimension.
package idxrange

import (
	"go/ast"
	"go/types"
	"strings"

	"burstmem/internal/analysis"
	"burstmem/internal/analysis/astx"
	"burstmem/internal/analysis/cfg"
	"burstmem/internal/analysis/dataflow"
)

// Analyzer is the idxrange pass.
var Analyzer = &analysis.Analyzer{
	Name: "idxrange",
	Doc:  "DRAM coordinate values (channel/rank/bank/row/col) must index containers of the same dimension",
	Run:  run,
}

// dim is a DRAM coordinate dimension.
type dim uint8

const (
	dimNone dim = iota
	dimChannel
	dimRank
	dimBank
	dimRow
	dimCol
)

func (d dim) String() string {
	switch d {
	case dimChannel:
		return "channel"
	case dimRank:
		return "rank"
	case dimBank:
		return "bank"
	case dimRow:
		return "row"
	case dimCol:
		return "col"
	}
	return "none"
}

// dimWords maps name fragments to dimensions. A container or field name
// matches if, lowercased and with a trailing plural stripped, it equals
// or ends with one of the words.
var dimWords = []struct {
	word string
	d    dim
}{
	{"channel", dimChannel},
	{"chan", dimChannel},
	{"rank", dimRank},
	{"bank", dimBank},
	{"row", dimRow},
	{"column", dimCol},
	{"col", dimCol},
}

// dimOfName resolves an identifier to the dimension it names, or dimNone.
func dimOfName(name string) dim {
	lower := strings.ToLower(name)
	lower = strings.TrimSuffix(lower, "es")
	lower = strings.TrimSuffix(lower, "s")
	for _, w := range dimWords {
		if lower == w.word || strings.HasSuffix(lower, w.word) {
			return w.d
		}
	}
	return dimNone
}

// fact maps access paths of integer variables to the dimension they
// carry. Absent paths are dimensionless.
type fact map[string]dim

func run(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, fi := range astx.Funcs(file) {
			if fi.Body() == nil {
				continue
			}
			checkFunc(pass, fi.Node)
		}
	}
}

func checkFunc(pass *analysis.Pass, fn ast.Node) {
	g := cfg.New(fn)
	p := &problem{pass: pass}
	res := dataflow.Solve[fact](g, p)

	for _, b := range g.Blocks {
		f := clone(res.In[b])
		for _, n := range b.Nodes {
			p.checkNode(n, f)
			p.step(n, f)
		}
	}
}

type problem struct {
	pass *analysis.Pass
}

func (p *problem) Direction() dataflow.Direction { return dataflow.Forward }
func (p *problem) Boundary() fact                { return fact{} }
func (p *problem) Bottom() fact                  { return nil }

func (p *problem) Join(a, b fact) fact {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := fact{}
	for k, v := range a {
		if b[k] == v {
			out[k] = v
		}
	}
	return out
}

func (p *problem) Equal(a, b fact) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func (p *problem) Transfer(b *cfg.Block, in fact) fact {
	out := clone(in)
	for _, n := range b.Nodes {
		p.step(n, out)
	}
	return out
}

func clone(f fact) fact {
	out := fact{}
	for k, v := range f {
		out[k] = v
	}
	return out
}

// step applies one statement's taint effect in place.
func (p *problem) step(n ast.Node, f fact) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) != len(n.Rhs) {
			for _, l := range n.Lhs {
				if path := astx.PathString(l); path != "" {
					delete(f, path)
				}
			}
			return
		}
		for i := range n.Lhs {
			path := astx.PathString(n.Lhs[i])
			if path == "" {
				continue
			}
			delete(f, path)
			if d := p.taintOf(n.Rhs[i], f); d != dimNone {
				f[path] = d
			}
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				delete(f, name.Name)
				if i < len(vs.Values) {
					if d := p.taintOf(vs.Values[i], f); d != dimNone {
						f[name.Name] = d
					}
				}
			}
		}
	case *ast.RangeStmt:
		// Loop variables are fresh each iteration and dimensionless.
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if e != nil {
				if path := astx.PathString(e); path != "" {
					delete(f, path)
				}
			}
		}
	}
}

// taintOf computes the dimension carried by an expression.
func (p *problem) taintOf(e ast.Expr, f fact) dim {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return p.taintOf(e.X, f)
	case *ast.Ident:
		return f[e.Name]
	case *ast.SelectorExpr:
		if path := astx.PathString(e); path != "" {
			if d, ok := f[path]; ok {
				return d
			}
		}
		if p.isDimField(e) {
			return dimOfName(e.Sel.Name)
		}
	case *ast.CallExpr:
		// A conversion keeps the taint; any other call produces a fresh
		// dimensionless value.
		if len(e.Args) == 1 {
			if tv, ok := p.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
				return p.taintOf(e.Args[0], f)
			}
		}
	}
	// Operators (binary, unary, shifts) deliberately mix dimensions —
	// the permutation mapper's bank XOR — so their results carry none.
	return dimNone
}

// isDimField reports whether the selector reads an integer struct field
// named after a dimension.
func (p *problem) isDimField(sel *ast.SelectorExpr) bool {
	s, ok := p.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	b, ok := s.Obj().Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0 && dimOfName(sel.Sel.Name) != dimNone
}

// checkNode reports mismatched-dimension indexing in one node, given the
// taint state right before it.
func (p *problem) checkNode(n ast.Node, f fact) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		ix, ok := x.(*ast.IndexExpr)
		if !ok {
			return true
		}
		p.checkIndex(ix, f)
		return true
	})
}

func (p *problem) checkIndex(ix *ast.IndexExpr, f fact) {
	xt := p.pass.TypesInfo.Types[ix.X].Type
	if xt == nil || !isSliceOrArray(xt) {
		return // map/generic instantiation/string indexing
	}
	if rt := p.pass.TypesInfo.Types[ix].Type; rt != nil && isSliceOrArray(rt) {
		return // outer index of a jagged container: the name describes the leaf
	}
	base := indexBase(ix.X)
	if base == "" {
		return
	}
	want := dimOfName(lastSegment(base))
	if want == dimNone {
		return
	}
	got := p.taintOf(ix.Index, f)
	if got == dimNone || got == want {
		return
	}
	p.pass.Reportf(ix.Index.Pos(), "%s value indexes %s (%s dimension); decode the address into the right coordinate",
		got, base, want)
}

// indexBase renders the container's access path with interior index
// expressions elided: banks[r][b] → "banks", c.ranks[r].banks[b] →
// "c.ranks.banks". The last segment names the leaf dimension.
func indexBase(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return indexBase(x.X)
	case *ast.IndexExpr:
		return indexBase(x.X)
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := indexBase(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	}
	return ""
}

func lastSegment(path string) string {
	if i := strings.LastIndex(path, "."); i >= 0 {
		return path[i+1:]
	}
	return path
}

func isSliceOrArray(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		// &rk.banks style pointers-to-array are rare here; indexing
		// through them auto-derefs.
		pt := t.Underlying().(*types.Pointer).Elem().Underlying()
		_, ok := pt.(*types.Array)
		return ok
	}
	return false
}
