// Package exhaustive requires switches over the memory-protocol enums to
// handle every variant. The enums it guards — dram.Cmd, dram.RowOutcome,
// memctrl.Kind and memctrl.RowPolicy — encode the DDR2 command set and the
// controller's access/policy vocabulary; a switch that silently ignores a
// variant is exactly how adding (say) a power-down command or a new row
// policy would corrupt scheduling without failing a single test.
//
// A switch over a guarded enum is accepted when either
//
//   - every package-level constant of the enum type appears among its case
//     expressions, or
//   - it has a default case that panics (a loud guard for can't-happen
//     variants: new constants then fail fast instead of being misscheduled).
//
// A default case that does anything else is silent fallthrough and does not
// count.
package exhaustive

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"burstmem/internal/analysis"
)

// Analyzer is the exhaustive pass.
var Analyzer = &analysis.Analyzer{
	Name: "exhaustive",
	Doc:  "require switches over protocol enums (dram.Cmd, dram.RowOutcome, memctrl.Kind, memctrl.RowPolicy) to cover every constant or panic by default",
	Run:  run,
}

// guarded maps enum-defining package paths to the guarded type names.
var guarded = map[string][]string{
	"burstmem/internal/dram":    {"Cmd", "RowOutcome"},
	"burstmem/internal/memctrl": {"Kind", "RowPolicy"},
}

// isGuarded reports whether the named type is one of the protocol enums.
func isGuarded(named *types.Named) bool {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	names, ok := guarded[obj.Pkg().Path()]
	if !ok {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagType := pass.TypesInfo.Types[sw.Tag].Type
			if tagType == nil {
				return true
			}
			named, ok := tagType.(*types.Named)
			if !ok || !isGuarded(named) {
				return true
			}
			checkSwitch(pass, sw, named)
			return true
		})
	}
}

// checkSwitch verifies one switch over a guarded enum.
func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt, named *types.Named) {
	members := enumMembers(named)
	covered := map[string]bool{}
	hasPanicDefault := false
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			if panics(pass, clause.Body) {
				hasPanicDefault = true
			}
			continue
		}
		for _, expr := range clause.List {
			tv := pass.TypesInfo.Types[expr]
			if tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}
	if hasPanicDefault {
		return
	}
	var missing []string
	for _, m := range members {
		if !covered[m.val] {
			missing = append(missing, m.name)
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(), "switch over %s.%s is not exhaustive: missing %s (add the cases or a panicking default)",
			named.Obj().Pkg().Name(), named.Obj().Name(), strings.Join(missing, ", "))
	}
}

type member struct {
	name string
	val  string
	ord  int64
}

// enumMembers lists the package-level constants of the enum type in value
// order, deduplicated by constant value.
func enumMembers(named *types.Named) []member {
	scope := named.Obj().Pkg().Scope()
	seen := map[string]bool{}
	var out []member
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		v := c.Val().ExactString()
		if seen[v] {
			continue
		}
		seen[v] = true
		ord, _ := constant.Int64Val(c.Val())
		out = append(out, member{name: name, val: v, ord: ord})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ord < out[j].ord })
	return out
}

// panics reports whether a default clause body guards loudly: its last
// statement is a call of the predeclared panic.
func panics(pass *analysis.Pass, body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	expr, ok := body[len(body)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := expr.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}
