// Package exh is exhaustive test data. It switches over the real protocol
// enums so the test exercises the exact contract cmd/burstlint enforces on
// the tree.
package exh

import (
	"burstmem/internal/dram"
	"burstmem/internal/memctrl"
)

// full covers every dram.Cmd constant: accepted.
func full(c dram.Cmd) int {
	switch c {
	case dram.CmdPrecharge:
		return 0
	case dram.CmdActivate:
		return 1
	case dram.CmdRead, dram.CmdWrite:
		return 2
	case dram.CmdRefresh:
		return 3
	}
	return -1
}

// missing omits CmdRefresh with no default: flagged.
func missing(c dram.Cmd) int {
	switch c { // want `switch over dram.Cmd is not exhaustive: missing CmdRefresh`
	case dram.CmdPrecharge, dram.CmdActivate:
		return 0
	case dram.CmdRead:
		return 1
	case dram.CmdWrite:
		return 2
	}
	return -1
}

// silentDefault hides two variants behind a non-panicking default: flagged.
func silentDefault(o dram.RowOutcome) bool {
	switch o { // want `switch over dram.RowOutcome is not exhaustive: missing RowEmpty, RowConflict`
	case dram.RowHit:
		return true
	default:
		return false
	}
}

// panicDefault guards loudly: accepted even though variants are missing.
func panicDefault(o dram.RowOutcome) bool {
	switch o {
	case dram.RowHit:
		return true
	default:
		panic("exh: unhandled row outcome")
	}
}

// kinds omits KindWrite: flagged.
func kinds(k memctrl.Kind) string {
	switch k { // want `switch over memctrl.Kind is not exhaustive: missing KindWrite`
	case memctrl.KindRead:
		return "r"
	}
	return "?"
}

// policies covers memctrl.RowPolicy fully: accepted.
func policies(p memctrl.RowPolicy) bool {
	switch p {
	case memctrl.OpenPage:
		return false
	case memctrl.ClosePageAuto:
		return true
	}
	return false
}

// unguarded enums outside the protocol set are never flagged.
type localEnum int

const (
	lA localEnum = iota
	lB
)

func local(e localEnum) bool {
	switch e {
	case lA:
		return true
	}
	return false
}

// ignored demonstrates suppression for a deliberate partial switch.
func ignored(c dram.Cmd) bool {
	//lint:ignore exhaustive only column commands reach this helper
	switch c {
	case dram.CmdRead, dram.CmdWrite:
		return true
	}
	return false
}

// classMask mirrors the scheduler's class-mask build: each command routes
// a bank bit into one of the per-rank summary words. Omitting CmdRefresh
// with no loud default is flagged — a classifier feeding the priority
// bitmaps must acknowledge every command, or a future variant would be
// silently dropped from scheduling.
func classMask(c dram.Cmd, rankWord uint64, bank int) uint64 {
	switch c { // want `switch over dram.Cmd is not exhaustive: missing CmdRefresh`
	case dram.CmdRead, dram.CmdWrite:
		return rankWord | 1<<uint(bank)
	case dram.CmdActivate, dram.CmdPrecharge:
		return rankWord
	}
	return rankWord
}

// classMaskGuarded is the accepted form of the same classifier: refresh is
// channel-internal and can't-happen here, and the panic default keeps that
// assumption loud.
func classMaskGuarded(c dram.Cmd, rankWord uint64, bank int) uint64 {
	switch c {
	case dram.CmdRead, dram.CmdWrite:
		return rankWord | 1<<uint(bank)
	case dram.CmdActivate, dram.CmdPrecharge:
		return rankWord
	default:
		panic("exh: refresh is not a candidate transaction")
	}
}
