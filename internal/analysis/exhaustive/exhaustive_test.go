package exhaustive_test

import (
	"testing"

	"burstmem/internal/analysis/analysistest"
	"burstmem/internal/analysis/exhaustive"
)

func TestExhaustive(t *testing.T) {
	analysistest.Run(t, exhaustive.Analyzer, "./testdata/src/exh")
}
