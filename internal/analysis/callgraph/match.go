// Cross-universe type matching for CHA.
//
// Every loaded package is type-checked from source against compiler export
// data, so a named type has one *types.Named object in its own package's
// universe and another in each importer's. Object-identity based APIs
// (types.Implements, types.Identical) say "different" for the same type
// seen from two universes; the comparator here instead treats named types
// as equal when their (package path, name) and type arguments match, and
// compares everything else structurally.
package callgraph

import (
	"go/types"
	"sort"

	"burstmem/internal/analysis"
)

// candidate is one named, non-interface type declared in the program,
// with its pointer method set indexed by method name.
type candidate struct {
	named   *types.Named
	methods map[string]*types.Func
}

// typeIndex inventories the program's named types for interface dispatch.
type typeIndex struct {
	graph      *Graph
	candidates []*candidate

	// memo caches CHA results per (interface identity in some universe,
	// method name). Interfaces recur at many call sites of the same
	// package, so this collapses the quadratic re-scan.
	memo map[ifaceMethodKey][]*Func
}

type ifaceMethodKey struct {
	iface  *types.Interface
	method string
}

func newTypeIndex(prog *analysis.Program) *typeIndex {
	ix := &typeIndex{memo: map[ifaceMethodKey][]*Func{}}
	for _, pkg := range prog.Pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			if named.TypeParams().Len() > 0 {
				// A generic type only implements an interface once
				// instantiated; CHA over uninstantiated generics would
				// compare unbound type parameters. Out of scope (the
				// simulator's interfaces are all non-generic).
				continue
			}
			c := &candidate{named: named, methods: map[string]*types.Func{}}
			ms := types.NewMethodSet(types.NewPointer(named))
			for i := 0; i < ms.Len(); i++ {
				if m, ok := ms.At(i).Obj().(*types.Func); ok {
					c.methods[m.Name()] = m
				}
			}
			ix.candidates = append(ix.candidates, c)
		}
	}
	return ix
}

// implementations returns the nodes of method `name` on every candidate
// type whose pointer method set satisfies the whole interface, sorted by
// ID for deterministic edge order.
func (ix *typeIndex) implementations(iface *types.Interface, name string) []*Func {
	key := ifaceMethodKey{iface, name}
	if out, ok := ix.memo[key]; ok {
		return out
	}
	var out []*Func
	for _, c := range ix.candidates {
		if !ix.satisfies(c, iface) {
			continue
		}
		m := c.methods[name]
		if m == nil {
			continue
		}
		out = append(out, ix.graph.declared(m))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	ix.memo[key] = out
	return out
}

// satisfies reports whether the candidate's pointer method set covers
// every method of the interface with a structurally matching signature.
func (ix *typeIndex) satisfies(c *candidate, iface *types.Interface) bool {
	for i := 0; i < iface.NumMethods(); i++ {
		im := iface.Method(i)
		m := c.methods[im.Name()]
		if m == nil {
			return false
		}
		if !sameSignature(m.Type().(*types.Signature), im.Type().(*types.Signature)) {
			return false
		}
	}
	return iface.NumMethods() > 0
}

// sameSignature compares two signatures ignoring receivers.
func sameSignature(a, b *types.Signature) bool {
	if a.Variadic() != b.Variadic() {
		return false
	}
	return sameTuple(a.Params(), b.Params(), nil) && sameTuple(a.Results(), b.Results(), nil)
}

func sameTuple(a, b *types.Tuple, seen map[typePair]bool) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if !sameType(a.At(i).Type(), b.At(i).Type(), seen) {
			return false
		}
	}
	return true
}

// typePair guards against cycles through recursive types.
type typePair struct{ a, b types.Type }

// sameType is structural type equality with named types compared by
// (package path, name, type arguments) rather than object identity.
func sameType(a, b types.Type, seen map[typePair]bool) bool {
	a, b = types.Unalias(a), types.Unalias(b)
	if a == b {
		return true
	}
	if seen == nil {
		seen = map[typePair]bool{}
	}
	pair := typePair{a, b}
	if seen[pair] {
		return true // already comparing this pair higher in the stack
	}
	seen[pair] = true

	switch a := a.(type) {
	case *types.Named:
		bn, ok := b.(*types.Named)
		if !ok || !sameTypeName(a.Obj(), bn.Obj()) {
			return false
		}
		aa, ba := a.TypeArgs(), bn.TypeArgs()
		if aa.Len() != ba.Len() {
			return false
		}
		for i := 0; i < aa.Len(); i++ {
			if !sameType(aa.At(i), ba.At(i), seen) {
				return false
			}
		}
		return true
	case *types.Basic:
		bb, ok := b.(*types.Basic)
		return ok && a.Kind() == bb.Kind()
	case *types.Pointer:
		bp, ok := b.(*types.Pointer)
		return ok && sameType(a.Elem(), bp.Elem(), seen)
	case *types.Slice:
		bs, ok := b.(*types.Slice)
		return ok && sameType(a.Elem(), bs.Elem(), seen)
	case *types.Array:
		ba, ok := b.(*types.Array)
		return ok && a.Len() == ba.Len() && sameType(a.Elem(), ba.Elem(), seen)
	case *types.Map:
		bm, ok := b.(*types.Map)
		return ok && sameType(a.Key(), bm.Key(), seen) && sameType(a.Elem(), bm.Elem(), seen)
	case *types.Chan:
		bc, ok := b.(*types.Chan)
		return ok && a.Dir() == bc.Dir() && sameType(a.Elem(), bc.Elem(), seen)
	case *types.Signature:
		bs, ok := b.(*types.Signature)
		return ok && a.Variadic() == bs.Variadic() &&
			sameTuple(a.Params(), bs.Params(), seen) && sameTuple(a.Results(), bs.Results(), seen)
	case *types.Struct:
		bs, ok := b.(*types.Struct)
		if !ok || a.NumFields() != bs.NumFields() {
			return false
		}
		for i := 0; i < a.NumFields(); i++ {
			af, bf := a.Field(i), bs.Field(i)
			if af.Name() != bf.Name() || af.Embedded() != bf.Embedded() ||
				a.Tag(i) != bs.Tag(i) || !sameType(af.Type(), bf.Type(), seen) {
				return false
			}
		}
		return true
	case *types.Interface:
		bi, ok := b.(*types.Interface)
		if !ok || a.NumMethods() != bi.NumMethods() {
			return false
		}
		for i := 0; i < a.NumMethods(); i++ {
			am, bm := a.Method(i), bi.Method(i) // both sorted by go/types
			if am.Name() != bm.Name() ||
				!sameType(am.Type(), bm.Type(), seen) {
				return false
			}
		}
		return true
	case *types.TypeParam:
		bt, ok := b.(*types.TypeParam)
		return ok && a.Index() == bt.Index()
	}
	// Tuple and anything exotic: fall back to printed form.
	return a.String() == b.String()
}

// sameTypeName compares two type-name objects by package path and name.
func sameTypeName(a, b *types.TypeName) bool {
	if a.Name() != b.Name() {
		return false
	}
	ap, bp := a.Pkg(), b.Pkg()
	if (ap == nil) != (bp == nil) {
		return false
	}
	return ap == nil || ap.Path() == bp.Path()
}
