// Package callgraph builds a CHA-style call graph over a loaded program
// (internal/analysis.Program): one node per function body — declarations
// and function literals — plus leaf nodes for external callees, with edges
// for static calls, interface dispatch, go-spawns and unresolved dynamic
// calls.
//
// Resolution rules:
//
//   - Direct calls (pkg.F(), method calls on concrete receivers, calls of
//     a function literal written at the call site) produce one Static edge.
//   - Interface method calls dispatch by class hierarchy analysis: the
//     callee set is every named type declared in the loaded program whose
//     method set contains a method with the called name and a matching
//     signature, and whose method set covers the whole interface. This
//     over-approximates (any implementor anywhere counts, whether or not a
//     value of that type can flow to the call site), which is the safe
//     direction for the ownership and determinism gates built on top.
//   - Generic calls resolve to the generic declaration (types.Func.Origin);
//     one summary of the generic body stands for every instantiation, and
//     the loader's Instances map is consulted so an instantiated identifier
//     still reaches its origin. Method calls on a type-parameter receiver
//     are unresolved (no concrete callee exists until instantiation) and
//     become Dynamic edges.
//   - Calls through function values (variables, fields, parameters) cannot
//     be resolved by CHA and produce a calleeless Dynamic edge; effect
//     summaries treat such a call as "may do anything we cannot see" and
//     the sharestate gate refuses them on the hot path.
//   - A function literal that is not called where it is written gets a Lit
//     edge from its enclosing function: defining a closure is conservatively
//     treated as running it, so its effects surface in the encloser's
//     summary even when the actual invocation happens through a func value
//     the graph cannot track.
//
// Cross-package identity: every package is type-checked separately against
// compiler export data, so a *types.Func for dram.(*Channel).Tick seen from
// memctrl is a different object than the one in dram's own source-checked
// universe. The graph therefore keys functions by a stable string ID —
// `pkgpath.Func`, `pkgpath.(*Recv).Method`, literals as `parentID$n` — and
// interface satisfaction uses a structural comparator that treats named
// types as equal when their (package path, name) match (see match.go).
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"burstmem/internal/analysis"
	"burstmem/internal/analysis/astx"
)

// ID is the stable, universe-independent identity of a function.
type ID string

// EdgeKind classifies how a call site reaches its callee.
type EdgeKind uint8

// Edge kinds.
const (
	// Static is a direct call with one known callee.
	Static EdgeKind = iota
	// Interface is one CHA-resolved candidate of an interface method call.
	Interface
	// Spawn is a `go` statement's call (static or CHA-resolved).
	Spawn
	// Lit marks the conservative encloser -> literal edge for closures not
	// called where they are written.
	Lit
	// Dynamic is a call through a function value; Callee is nil.
	Dynamic
)

func (k EdgeKind) String() string {
	switch k {
	case Static:
		return "static"
	case Interface:
		return "interface"
	case Spawn:
		return "spawn"
	case Lit:
		return "lit"
	case Dynamic:
		return "dynamic"
	}
	return "?"
}

// Edge is one caller -> callee link.
type Edge struct {
	Kind EdgeKind
	// Callee is nil exactly when Kind is Dynamic.
	Callee *Func
	// Pos is the call (or go statement) position in the caller.
	Pos token.Pos
}

// Func is one node: a function with a body in the loaded program, or an
// external callee (export-data only — stdlib and friends), which has no
// body, no package and no outgoing edges.
type Func struct {
	ID   ID
	Name string // short form for messages: "dram.(*Channel).Tick"

	// Pkg/Decl/Lit locate the body; all nil for external functions.
	Pkg    *analysis.Package
	Decl   *ast.FuncDecl
	Lit    *ast.FuncLit
	Parent *Func // enclosing function, for literals

	// Hotpath records the //burstmem:hotpath directive on the declaration
	// (literals inherit it from their encloser: a closure written on the
	// hot path runs on the hot path).
	Hotpath bool

	Out []Edge
}

// Body returns the function body, nil for externals.
func (f *Func) Body() *ast.BlockStmt {
	switch {
	case f.Decl != nil:
		return f.Decl.Body
	case f.Lit != nil:
		return f.Lit.Body
	}
	return nil
}

// Pos returns the declaration position (NoPos for externals).
func (f *Func) Pos() token.Pos {
	switch {
	case f.Decl != nil:
		return f.Decl.Pos()
	case f.Lit != nil:
		return f.Lit.Pos()
	}
	return token.NoPos
}

// Graph is the call graph of one program.
type Graph struct {
	// Funcs indexes every node, including externals.
	Funcs map[ID]*Func
	// Source lists the nodes with bodies in deterministic order (package
	// load order, then file position) — the iteration order every
	// downstream consumer uses, so diagnostics never depend on map order.
	Source []*Func

	types *typeIndex
}

// Build constructs the call graph; cached per program under "callgraph".
func Build(prog *analysis.Program) *Graph {
	return prog.Cached("callgraph", func() any {
		return build(prog)
	}).(*Graph)
}

func build(prog *analysis.Program) *Graph {
	g := &Graph{Funcs: map[ID]*Func{}}
	g.types = newTypeIndex(prog)
	g.types.graph = g

	// Pass 1: create nodes for every declared function and every literal,
	// so call resolution always finds its target node.
	type fnScope struct {
		fn  *Func
		pkg *analysis.Package
	}
	var scopes []fnScope
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				obj, _ := pkg.TypesInfo.Defs[decl.Name].(*types.Func)
				if obj == nil {
					continue
				}
				fn := &Func{
					ID:      FuncID(obj),
					Name:    shortName(obj),
					Pkg:     pkg,
					Decl:    decl,
					Hotpath: astx.IsHotpath(decl),
				}
				g.Funcs[fn.ID] = fn
				g.Source = append(g.Source, fn)
				scopes = append(scopes, fnScope{fn, pkg})
				// Literals nested in this declaration, in lexical order;
				// each literal's Parent is its nearest enclosing function
				// (the declaration, or an outer literal).
				n := 0
				var lits []*Func
				ast.Inspect(decl.Body, func(node ast.Node) bool {
					lit, ok := node.(*ast.FuncLit)
					if !ok {
						return true
					}
					n++
					parent := fn
					for i := len(lits) - 1; i >= 0; i-- {
						if lits[i].Lit.Pos() <= lit.Pos() && lit.End() <= lits[i].Lit.End() {
							parent = lits[i]
							break
						}
					}
					lf := &Func{
						ID:      ID(fmt.Sprintf("%s$%d", fn.ID, n)),
						Name:    fmt.Sprintf("%s$%d", fn.Name, n),
						Pkg:     pkg,
						Lit:     lit,
						Parent:  parent,
						Hotpath: fn.Hotpath,
					}
					lits = append(lits, lf)
					g.Funcs[lf.ID] = lf
					g.Source = append(g.Source, lf)
					scopes = append(scopes, fnScope{lf, pkg})
					return true
				})
			}
		}
	}

	// Pass 2: resolve calls.
	for _, s := range scopes {
		g.resolveCalls(s.fn, s.pkg)
	}
	return g
}

// external interns a bodyless node for a callee only known from export
// data.
func (g *Graph) external(obj *types.Func) *Func {
	id := FuncID(obj)
	if f := g.Funcs[id]; f != nil {
		return f
	}
	f := &Func{ID: id, Name: shortName(obj)}
	g.Funcs[id] = f
	return f
}

// FuncID derives the stable ID of a function object, normalizing generic
// instantiations to their origin declaration.
func FuncID(obj *types.Func) ID {
	obj = obj.Origin()
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	if recv := recvString(obj); recv != "" {
		return ID(pkg + ".(" + recv + ")." + obj.Name())
	}
	return ID(pkg + "." + obj.Name())
}

// shortName renders the message-friendly form: last package path element
// plus receiver and name.
func shortName(obj *types.Func) string {
	obj = obj.Origin()
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
		if i := strings.LastIndexByte(pkg, '/'); i >= 0 {
			pkg = pkg[i+1:]
		}
	}
	if recv := recvString(obj); recv != "" {
		return pkg + ".(" + recv + ")." + obj.Name()
	}
	if pkg == "" {
		return obj.Name()
	}
	return pkg + "." + obj.Name()
}

// recvString renders a method's receiver as "*T" or "T" (type parameters
// of generic receivers are dropped), or "" for plain functions.
func recvString(obj *types.Func) string {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	ptr := ""
	if p, ok := t.(*types.Pointer); ok {
		ptr = "*"
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return ptr + t.Obj().Name()
	case *types.TypeParam:
		// Interface-constraint method on a type parameter: no stable
		// receiver type exists. Callers treat these as unresolvable.
		return ptr + "<typeparam>"
	}
	return ptr + t.String()
}

// resolveCalls walks one function's own statements (literal bodies are
// their own nodes) and appends edges.
func (g *Graph) resolveCalls(fn *Func, pkg *analysis.Package) {
	body := fn.Body()
	if body == nil {
		return
	}
	// calledLits marks literals invoked or spawned exactly where they are
	// written; every other literal gets the conservative Lit edge.
	calledLits := map[*ast.FuncLit]bool{}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if !calledLits[n] {
				if lf := g.litNode(fn, n); lf != nil {
					fn.Out = append(fn.Out, Edge{Kind: Lit, Callee: lf, Pos: n.Pos()})
				}
			}
			return false
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				calledLits[lit] = true
				if lf := g.litNode(fn, lit); lf != nil {
					fn.Out = append(fn.Out, Edge{Kind: Spawn, Callee: lf, Pos: n.Pos()})
				}
				// Arguments and the literal body still walk normally.
				for _, a := range n.Call.Args {
					ast.Inspect(a, walk)
				}
				ast.Inspect(lit.Body, walk)
				return false
			}
			g.callEdges(fn, pkg, n.Call, Spawn)
			// Walk the call's subexpressions directly: descending into the
			// CallExpr itself would resolve it a second time as Static.
			ast.Inspect(n.Call.Fun, walk)
			for _, a := range n.Call.Args {
				ast.Inspect(a, walk)
			}
			return false
		case *ast.CallExpr:
			if lit, ok := unparen(n.Fun).(*ast.FuncLit); ok {
				calledLits[lit] = true
				if lf := g.litNode(fn, lit); lf != nil {
					fn.Out = append(fn.Out, Edge{Kind: Static, Callee: lf, Pos: n.Pos()})
				}
				return true
			}
			g.callEdges(fn, pkg, n, Static)
			return true
		}
		return true
	}
	if fn.Lit != nil {
		ast.Inspect(fn.Lit.Body, walk)
	} else {
		ast.Inspect(fn.Decl.Body, walk)
	}
}

// litNode finds the node of a literal lexically inside fn (fn's direct
// literals only — nested ones belong to their own encloser).
func (g *Graph) litNode(fn *Func, lit *ast.FuncLit) *Func {
	for _, f := range g.Source {
		if f.Lit == lit && f.Parent == fn {
			return f
		}
	}
	// lit is nested inside another literal; its encloser owns it.
	for _, f := range g.Source {
		if f.Lit == lit {
			return f
		}
	}
	return nil
}

// callEdges resolves one call expression into edges on fn. kind is Static
// for ordinary calls and Spawn for `go` statements.
func (g *Graph) callEdges(fn *Func, pkg *analysis.Package, call *ast.CallExpr, kind EdgeKind) {
	fun := unparen(call.Fun)
	// Unwrap explicit instantiation: F[int](...) / m[K, V](...).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		if isFuncExpr(pkg, ix.X) {
			fun = unparen(ix.X)
		}
	case *ast.IndexListExpr:
		fun = unparen(ix.X)
	}

	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := pkg.TypesInfo.Uses[fun].(type) {
		case *types.Func:
			fn.Out = append(fn.Out, Edge{Kind: kind, Callee: g.declared(obj), Pos: call.Pos()})
		case *types.Builtin:
			// no edge
		case *types.TypeName:
			// conversion, no edge
		case *types.Var:
			fn.Out = append(fn.Out, Edge{Kind: Dynamic, Pos: call.Pos()})
		default:
			if _, isType := pkg.TypesInfo.Types[fun]; isType && pkg.TypesInfo.Types[fun].IsType() {
				return
			}
			fn.Out = append(fn.Out, Edge{Kind: Dynamic, Pos: call.Pos()})
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.TypesInfo.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				g.methodEdges(fn, pkg, fun, sel, call.Pos(), kind)
			case types.FieldVal:
				fn.Out = append(fn.Out, Edge{Kind: Dynamic, Pos: call.Pos()})
			}
			return
		}
		// Qualified identifier pkg.F or conversion pkg.T(x).
		switch obj := pkg.TypesInfo.Uses[fun.Sel].(type) {
		case *types.Func:
			fn.Out = append(fn.Out, Edge{Kind: kind, Callee: g.declared(obj), Pos: call.Pos()})
		case *types.TypeName:
			// conversion
		case *types.Var:
			fn.Out = append(fn.Out, Edge{Kind: Dynamic, Pos: call.Pos()})
		}
	default:
		// Call of an arbitrary expression's result, conversions to func
		// types, etc.
		if tv, ok := pkg.TypesInfo.Types[fun]; ok && tv.IsType() {
			return
		}
		fn.Out = append(fn.Out, Edge{Kind: Dynamic, Pos: call.Pos()})
	}
}

// methodEdges resolves a method call: static for concrete receivers, CHA
// for interface receivers, Dynamic for type-parameter receivers.
func (g *Graph) methodEdges(fn *Func, pkg *analysis.Package, sel *ast.SelectorExpr, selection *types.Selection, pos token.Pos, kind EdgeKind) {
	obj, ok := selection.Obj().(*types.Func)
	if !ok {
		fn.Out = append(fn.Out, Edge{Kind: Dynamic, Pos: pos})
		return
	}
	recv := selection.Recv()
	if _, isParam := recv.(*types.TypeParam); isParam {
		fn.Out = append(fn.Out, Edge{Kind: Dynamic, Pos: pos})
		return
	}
	if types.IsInterface(recv) {
		iface, _ := recv.Underlying().(*types.Interface)
		if iface == nil {
			fn.Out = append(fn.Out, Edge{Kind: Dynamic, Pos: pos})
			return
		}
		ekind := Interface
		if kind == Spawn {
			ekind = Spawn
		}
		for _, impl := range g.types.implementations(iface, obj.Name()) {
			fn.Out = append(fn.Out, Edge{Kind: ekind, Callee: impl, Pos: pos})
		}
		return
	}
	fn.Out = append(fn.Out, Edge{Kind: kind, Callee: g.declared(obj), Pos: pos})
}

// declared maps a callee object to its node: the source node when the
// function is declared in a loaded package, an interned external node
// otherwise. Objects from a dependency's export data carry the same ID as
// the source-checked declaration, so the lookup unifies the universes.
func (g *Graph) declared(obj *types.Func) *Func {
	id := FuncID(obj)
	if f := g.Funcs[id]; f != nil {
		return f
	}
	return g.external(obj)
}

// Callees returns the distinct callee IDs of fn's resolved edges, sorted —
// a test and debugging convenience.
func (g *Graph) Callees(id ID) []ID {
	fn := g.Funcs[id]
	if fn == nil {
		return nil
	}
	seen := map[ID]bool{}
	var out []ID
	for _, e := range fn.Out {
		if e.Callee != nil && !seen[e.Callee.ID] {
			seen[e.Callee.ID] = true
			out = append(out, e.Callee.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SCCs returns the strongly connected components of the source nodes in
// bottom-up order: every component is listed after all components it
// calls into (externals excluded — they have no edges and no effects of
// their own). Tarjan's algorithm, iterative over an explicit stack so deep
// call chains cannot overflow the goroutine stack.
func (g *Graph) SCCs() [][]*Func {
	index := map[*Func]int{}
	low := map[*Func]int{}
	onStack := map[*Func]bool{}
	var stack []*Func
	var out [][]*Func
	next := 0

	type frame struct {
		fn   *Func
		edge int
	}
	for _, root := range g.Source {
		if _, seen := index[root]; seen {
			continue
		}
		frames := []frame{{fn: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			advanced := false
			for f.edge < len(f.fn.Out) {
				e := f.fn.Out[f.edge]
				f.edge++
				w := e.Callee
				if w == nil || w.Body() == nil {
					continue
				}
				if _, seen := index[w]; !seen {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{fn: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[f.fn] {
					low[f.fn] = index[w]
				}
			}
			if advanced {
				continue
			}
			// f.fn finished.
			if low[f.fn] == index[f.fn] {
				var comp []*Func
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == f.fn {
						break
					}
				}
				out = append(out, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].fn
				if low[f.fn] < low[parent] {
					low[parent] = low[f.fn]
				}
			}
		}
	}
	return out
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// isFuncExpr reports whether the expression denotes a function (so an
// IndexExpr around it is a generic instantiation, not slice indexing).
func isFuncExpr(pkg *analysis.Package, e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		_, ok := pkg.TypesInfo.Uses[e].(*types.Func)
		return ok
	case *ast.SelectorExpr:
		_, ok := pkg.TypesInfo.Uses[e.Sel].(*types.Func)
		return ok
	}
	return false
}
