// Package cgdep is the dependency half of the callgraph corpus: it
// declares an implementor of cg.Iface so interface dispatch must unify
// type identities across separately type-checked packages.
package cgdep

// Impl implements cg.Iface from another package.
type Impl struct{ N int }

// M is the dispatched method.
func (i *Impl) M(x int) int { return x + i.N }

// Helper is a plain cross-package static callee.
func Helper() int { return 1 }
