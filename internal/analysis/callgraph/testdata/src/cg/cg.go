// Package cg is the callgraph corpus: interface dispatch (same-package and
// cross-package implementors), generics, mutual recursion, go-spawns,
// closures and dynamic calls.
package cg

import (
	"strings"

	"burstmem/internal/analysis/callgraph/testdata/src/cgdep"
)

// Iface is dispatched through CHA.
type Iface interface{ M(int) int }

// Local implements Iface in the calling package.
type Local struct{}

// M is the local implementation.
func (Local) M(x int) int { return x }

// CallIface dispatches: CHA must resolve both Local.M and cgdep.Impl.M.
func CallIface(v Iface) int { return v.M(1) }

// Static calls across packages and into the stdlib (an external node).
func Static() string { return strings.ToUpper(name()) }

func name() string { return "x" }

// CrossPkg is a plain static cross-package call.
func CrossPkg() int { return cgdep.Helper() }

// Rec and Mutual form one SCC.
func Rec(n int) int {
	if n == 0 {
		return 0
	}
	return Mutual(n - 1)
}

// Mutual closes the recursion cycle.
func Mutual(n int) int { return Rec(n - 1) }

// Generic is resolved to its origin for every instantiation.
func Generic[T any](v T) T { return v }

// CallsGeneric uses explicit instantiation.
func CallsGeneric() int { return Generic[int](3) }

// CallsGenericInferred uses inferred instantiation.
func CallsGenericInferred() string { return Generic("x") }

// Dyn calls through a function value: a calleeless dynamic edge.
func Dyn(f func() int) int { return f() }

// Spawner launches a named function: a spawn edge.
func Spawner() { go worker() }

func worker() {}

// Closures: f is not called where written (Lit edge); the immediate
// invocation is a static edge to its literal; g() is a dynamic call
// through a variable.
func Closures() func() int {
	f := func() int { return cgdep.Helper() }
	n := func() int { return 2 }()
	g := f
	_ = g()
	return func() func() int { // nested literals get their own nodes
		inner := func() int { return n }
		return inner
	}()
}

// Hot carries the hot-path directive; literals inside inherit it.
//
//burstmem:hotpath
func Hot() {
	f := func() {}
	_ = f
}
