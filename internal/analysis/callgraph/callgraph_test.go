package callgraph

import (
	"testing"

	"burstmem/internal/analysis"
)

const (
	cgPath  = "burstmem/internal/analysis/callgraph/testdata/src/cg"
	depPath = "burstmem/internal/analysis/callgraph/testdata/src/cgdep"
)

func loadGraph(t *testing.T) *Graph {
	t.Helper()
	pkgs, err := analysis.Load("./testdata/src/cg", "./testdata/src/cgdep")
	if err != nil {
		t.Fatal(err)
	}
	prog := analysis.NewProgram(pkgs)
	if len(prog.Broken) > 0 {
		t.Fatalf("corpus has load errors: %v", prog.Broken[0].Errors)
	}
	return Build(prog)
}

func ids(list []ID) []string {
	out := make([]string, len(list))
	for i, id := range list {
		out[i] = string(id)
	}
	return out
}

func wantCallees(t *testing.T, g *Graph, caller string, want ...string) {
	t.Helper()
	got := ids(g.Callees(ID(caller)))
	if len(got) != len(want) {
		t.Fatalf("%s callees = %v, want %v", caller, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s callees = %v, want %v", caller, got, want)
		}
	}
}

func TestInterfaceDispatchCHA(t *testing.T) {
	g := loadGraph(t)
	// Both implementors, including the one in the separately type-checked
	// dependency package, must resolve.
	wantCallees(t, g, cgPath+".CallIface",
		cgPath+".(Local).M",
		depPath+".(*Impl).M",
	)
	fn := g.Funcs[ID(cgPath+".CallIface")]
	for _, e := range fn.Out {
		if e.Kind != Interface {
			t.Errorf("CallIface edge kind = %v, want interface", e.Kind)
		}
	}
}

func TestStaticAndExternalCalls(t *testing.T) {
	g := loadGraph(t)
	wantCallees(t, g, cgPath+".Static", cgPath+".name", "strings.ToUpper")
	wantCallees(t, g, cgPath+".CrossPkg", depPath+".Helper")
	if ext := g.Funcs["strings.ToUpper"]; ext == nil || ext.Body() != nil || ext.Pkg != nil {
		t.Errorf("strings.ToUpper should be an external bodyless node, got %+v", ext)
	}
}

func TestGenericsResolveToOrigin(t *testing.T) {
	g := loadGraph(t)
	wantCallees(t, g, cgPath+".CallsGeneric", cgPath+".Generic")
	wantCallees(t, g, cgPath+".CallsGenericInferred", cgPath+".Generic")
}

func TestDynamicCall(t *testing.T) {
	g := loadGraph(t)
	fn := g.Funcs[ID(cgPath+".Dyn")]
	if len(fn.Out) != 1 || fn.Out[0].Kind != Dynamic || fn.Out[0].Callee != nil {
		t.Fatalf("Dyn edges = %+v, want one calleeless dynamic edge", fn.Out)
	}
}

func TestSpawnEdge(t *testing.T) {
	g := loadGraph(t)
	fn := g.Funcs[ID(cgPath+".Spawner")]
	if len(fn.Out) != 1 || fn.Out[0].Kind != Spawn || fn.Out[0].Callee.ID != ID(cgPath+".worker") {
		t.Fatalf("Spawner edges = %+v, want one spawn edge to worker", fn.Out)
	}
}

func TestClosureEdges(t *testing.T) {
	g := loadGraph(t)
	fn := g.Funcs[ID(cgPath+".Closures")]
	kinds := map[ID]EdgeKind{}
	dynamics := 0
	for _, e := range fn.Out {
		if e.Callee == nil {
			dynamics++
			continue
		}
		kinds[e.Callee.ID] = e.Kind
	}
	if k := kinds[ID(cgPath+".Closures$1")]; k != Lit {
		t.Errorf("edge to $1 (stored closure) = %v, want lit", k)
	}
	if k := kinds[ID(cgPath+".Closures$2")]; k != Static {
		t.Errorf("edge to $2 (immediately invoked) = %v, want static", k)
	}
	if k := kinds[ID(cgPath+".Closures$3")]; k != Static {
		t.Errorf("edge to $3 (immediately invoked) = %v, want static", k)
	}
	if dynamics != 1 {
		t.Errorf("dynamic edges = %d, want 1 (the g() call)", dynamics)
	}
	// The nested literal belongs to $3, not to Closures.
	inner := g.Funcs[ID(cgPath+".Closures$4")]
	if inner == nil || inner.Parent == nil || inner.Parent.ID != ID(cgPath+".Closures$3") {
		t.Fatalf("nested literal parent = %+v, want Closures$3", inner)
	}
	wantCallees(t, g, cgPath+".Closures$3", cgPath+".Closures$4")
	// $1's own body calls cgdep.Helper.
	wantCallees(t, g, cgPath+".Closures$1", depPath+".Helper")
}

func TestHotpathInheritance(t *testing.T) {
	g := loadGraph(t)
	if !g.Funcs[ID(cgPath+".Hot")].Hotpath {
		t.Error("Hot not marked hotpath")
	}
	if !g.Funcs[ID(cgPath+".Hot$1")].Hotpath {
		t.Error("literal inside hotpath function did not inherit the directive")
	}
	if g.Funcs[ID(cgPath+".Static")].Hotpath {
		t.Error("Static wrongly marked hotpath")
	}
}

func TestSCCsBottomUp(t *testing.T) {
	g := loadGraph(t)
	sccs := g.SCCs()
	pos := map[ID]int{}
	size := map[ID]int{}
	for i, comp := range sccs {
		for _, fn := range comp {
			pos[fn.ID] = i
			size[fn.ID] = len(comp)
		}
	}
	rec, mut := ID(cgPath+".Rec"), ID(cgPath+".Mutual")
	if pos[rec] != pos[mut] || size[rec] != 2 {
		t.Fatalf("Rec/Mutual not in one SCC of size 2 (pos %d/%d size %d)", pos[rec], pos[mut], size[rec])
	}
	// Bottom-up: every callee's component comes no later than its caller's.
	for _, fn := range g.Source {
		for _, e := range fn.Out {
			if e.Callee == nil || e.Callee.Body() == nil {
				continue
			}
			if pos[e.Callee.ID] > pos[fn.ID] {
				t.Errorf("SCC order not bottom-up: %s (comp %d) calls %s (comp %d)",
					fn.ID, pos[fn.ID], e.Callee.ID, pos[e.Callee.ID])
			}
		}
	}
}
