// Package hot is hotalloc test data.
package hot

import "fmt"

type access struct {
	id   uint64
	next *access
}

type candidate struct {
	rank, bank int
}

type sink interface{ accept(v any) }

type engine struct {
	scratch []candidate
	free    *access
	out     sink
}

// tick is annotated: every allocation construct inside is flagged.
//
//burstmem:hotpath
func (e *engine) tick(now uint64) {
	a := &access{id: now} // want `address of composite literal escapes`
	_ = a
	b := new(access) // want `new\(\.\.\.\) allocates in hot path`
	_ = b
	m := make(map[int]int) // want `make\(\.\.\.\) allocates in hot path`
	_ = m
	e.scratch = append(e.scratch, candidate{0, 1}) // want `append may grow its backing array`
	f := func() {}                                 // want `closure allocates in hot path`
	f()
	e.out.accept(now) // want `interface argument boxes uint64`
}

// box is annotated: interface boxing via assignment, declaration,
// conversion and return are flagged; pointer-shaped values are not.
//
//burstmem:hotpath
func (e *engine) box(c candidate) any { // return below is flagged
	var v any = c // want `interface declaration boxes`
	v = c.rank    // want `interface assignment boxes int`
	v = e.free    // pointer-shaped: not flagged
	v = nil       // nil: not flagged
	_ = any(c)    // want `interface conversion boxes`
	_ = v
	return c // want `interface return boxes`
}

// crash is annotated: allocations inside panic arguments are not flagged
// (the simulator is already dead).
//
//burstmem:hotpath
func crash(cyc uint64) {
	if cyc == 0 {
		panic(fmt.Sprintf("illegal cycle %d", cyc))
	}
}

// pooled is annotated and demonstrates the suppression contract for
// intentional slow paths.
//
//burstmem:hotpath
func (e *engine) pooled() *access {
	if e.free == nil {
		//lint:ignore hotalloc pool refill is the amortized slow path
		return &access{}
	}
	a := e.free
	e.free = a.next
	return a
}

// cold is NOT annotated: identical constructs pass without diagnostics.
func (e *engine) cold() *access {
	e.scratch = append(e.scratch, candidate{})
	var v any = candidate{}
	_ = v
	return &access{}
}
