package hotalloc_test

import (
	"testing"

	"burstmem/internal/analysis/analysistest"
	"burstmem/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "./testdata/src/hot")
}
