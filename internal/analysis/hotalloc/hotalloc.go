// Package hotalloc flags potential heap allocations inside functions
// annotated with the `//burstmem:hotpath` directive. The simulator's
// per-cycle scheduling path is allocation-free by design (PR 1; see
// alloc_test.go and DESIGN.md §7), and this analyzer keeps it that way
// under refactoring by reporting the constructs that escape to the heap or
// grow storage:
//
//   - address-of composite literals (&T{...}) and new(T): the value escapes
//     through the pointer unless the compiler proves otherwise;
//   - make(...) and append(...): slice/map growth in steady state;
//   - function literals: closures capture by reference and usually allocate;
//   - interface boxing: storing a non-pointer-shaped concrete value into an
//     interface allocates the boxed copy.
//
// The analysis is intentionally conservative (it does not run escape
// analysis); intentional slow paths — pool refills, capacity-retained
// scratch appends — carry `//lint:ignore hotalloc <reason>` annotations.
// Arguments of panic(...) calls are not inspected: a panicking simulator is
// already broken, so allocation on the way out is irrelevant.
//
// The annotation contract: the directive comment must be part of the
// function's doc comment block. Annotate the functions executed every
// memory cycle (Tick, CanIssue/Issue, arbiters, transaction schedulers),
// not their constructors.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"burstmem/internal/analysis"
)

// Directive marks a function as part of the allocation-free hot path.
const Directive = "//burstmem:hotpath"

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flag heap allocations (escaping literals, append growth, closures, interface boxing) in //burstmem:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotpath(fn) {
				continue
			}
			checkBody(pass, fn)
		}
	}
}

// isHotpath reports whether the function's doc block carries the directive.
func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, Directive) {
			return true
		}
	}
	return false
}

// checkBody walks one hot function, skipping panic(...) subtrees.
func checkBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(pass, n.Fun, "panic") {
				return false // allocation on a panic path is irrelevant
			}
			switch {
			case isBuiltin(pass, n.Fun, "new"):
				pass.Reportf(n.Pos(), "new(...) allocates in hot path")
			case isBuiltin(pass, n.Fun, "make"):
				pass.Reportf(n.Pos(), "make(...) allocates in hot path")
			case isBuiltin(pass, n.Fun, "append"):
				pass.Reportf(n.Pos(), "append may grow its backing array in hot path")
			default:
				checkCallBoxing(pass, n)
			}
		case *ast.UnaryExpr:
			if _, lit := n.X.(*ast.CompositeLit); lit && n.Op.String() == "&" {
				pass.Reportf(n.Pos(), "address of composite literal escapes to the heap in hot path")
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocates in hot path")
			return false // a closure's own body is not the annotated path
		case *ast.AssignStmt:
			checkAssignBoxing(pass, n)
		case *ast.ValueSpec:
			checkValueSpecBoxing(pass, n)
		case *ast.ReturnStmt:
			checkReturnBoxing(pass, fn, n)
		}
		return true
	})
}

// isBuiltin reports whether the call target is the named predeclared
// function.
func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// checkCallBoxing flags concrete values passed to interface parameters.
func checkCallBoxing(pass *analysis.Pass, call *ast.CallExpr) {
	sig, ok := pass.TypesInfo.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		// A type conversion T(x): boxing only if T is an interface.
		if tv, isConv := pass.TypesInfo.Types[call.Fun]; isConv && tv.IsType() && len(call.Args) == 1 {
			reportIfBoxed(pass, call.Args[0], tv.Type, "conversion")
		}
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		reportIfBoxed(pass, arg, pt, "argument")
	}
}

// checkAssignBoxing flags concrete right-hand sides assigned into interface
// left-hand sides.
func checkAssignBoxing(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := pass.TypesInfo.Types[lhs].Type
		if lt == nil {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					lt = obj.Type()
				}
			}
		}
		if lt != nil {
			reportIfBoxed(pass, as.Rhs[i], lt, "assignment")
		}
	}
}

// checkValueSpecBoxing flags `var x I = concrete` declarations.
func checkValueSpecBoxing(pass *analysis.Pass, spec *ast.ValueSpec) {
	if spec.Type == nil {
		return
	}
	dt := pass.TypesInfo.Types[spec.Type].Type
	for _, v := range spec.Values {
		reportIfBoxed(pass, v, dt, "declaration")
	}
}

// checkReturnBoxing flags concrete values returned as interface results.
func checkReturnBoxing(pass *analysis.Pass, fn *ast.FuncDecl, ret *ast.ReturnStmt) {
	obj := pass.TypesInfo.Defs[fn.Name]
	if obj == nil {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, r := range ret.Results {
		reportIfBoxed(pass, r, sig.Results().At(i).Type(), "return")
	}
}

// reportIfBoxed reports when a concrete, non-pointer-shaped value is stored
// into an interface-typed destination. Pointer-shaped values (*T, chan,
// map, func, unsafe.Pointer) fit in the interface data word and do not
// allocate; nil is not a value.
func reportIfBoxed(pass *analysis.Pass, expr ast.Expr, dst types.Type, what string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	src := tv.Type
	if types.IsInterface(src) || pointerShaped(src) {
		return
	}
	pass.Reportf(expr.Pos(), "interface %s boxes %s and may allocate in hot path", what, src.String())
}

// pointerShaped reports whether values of the type occupy exactly one
// pointer word, making interface storage allocation-free.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}
