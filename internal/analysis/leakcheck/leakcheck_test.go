package leakcheck_test

import (
	"testing"

	"burstmem/internal/analysis/analysistest"
	"burstmem/internal/analysis/leakcheck"
)

func TestLeakcheck(t *testing.T) {
	analysistest.Run(t, leakcheck.Analyzer, "./testdata/src/leak")
}
