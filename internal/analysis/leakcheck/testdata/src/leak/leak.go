// Package leak is the leakcheck corpus: acquisitions that escape without
// a release on some path, the hand-off shapes that transfer ownership,
// and exits that discard pending deferred cleanups.
package leak

import (
	"os"
	"time"
)

// leaks: acquired, used, never released.
func leaks() {
	f, err := os.Create("x") // want `os\.Create acquired here is not released on every path: defer f\.Close\(\)`
	if err != nil {
		return
	}
	f.Name()
}

// deferred: the canonical shape is clean.
func deferred() {
	f, err := os.Create("x")
	if err != nil {
		return
	}
	defer f.Close()
	f.Name()
}

// oneBranch: released on one branch only — the other path leaks.
func oneBranch(keep bool) {
	f, err := os.Create("x") // want `os\.Create acquired here is not released on every path`
	if err != nil {
		return
	}
	if !keep {
		f.Close()
	}
}

// returned: ownership moves to the caller.
func returned() (*os.File, error) {
	f, err := os.Open("x")
	if err != nil {
		return nil, err
	}
	return f, nil
}

// viaHelper: returned() is a fresh acquirer, so its caller inherits the
// obligation.
func viaHelper() {
	f, err := returned() // want `leak\.returned acquired here is not released on every path`
	if err != nil {
		return
	}
	f.Name()
}

// handedOff: passing the resource to a callee transfers ownership.
func handedOff() {
	f, err := os.Open("x")
	if err != nil {
		return
	}
	consume(f)
}

func consume(f *os.File) { f.Close() }

// stored: assigning the resource away transfers ownership.
var held *os.File

func stored() {
	f, err := os.Open("x")
	if err != nil {
		return
	}
	held = f
}

// ticker: Stop-released resources are checked the same way.
func ticker() {
	t := time.NewTicker(time.Second) // want `time\.NewTicker acquired here is not released on every path: defer t\.Stop\(\)`
	<-t.C
}

// tickerStopped is clean.
func tickerStopped() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	<-t.C
}

// exitsEarly: dying on the error path is rule 2's business, not a leak —
// the process takes the resource with it.
func exitsEarly() {
	f, err := os.Create("x")
	if err != nil {
		return
	}
	defer f.Close()
	if f.Name() == "" {
		panic("empty")
	}
}

// exitWhilePending: die() reaches os.Exit with the ticker's Stop still
// deferred.
func exitWhilePending() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	die() // want `call to leak\.die can exit the process while the cleanup deferred at line \d+ \(t\.Stop\(\)\) is pending`
	t.Reset(time.Second)
}

func die() {
	os.Exit(2)
}

// dieClean runs the cleanup by hand before exiting — the early-exit
// helper shape is exempt.
func dieClean(t *time.Ticker) {
	t.Stop()
	os.Exit(2)
}

// exitAfterCleanup: the callee finalizes for itself, so the pending defer
// is not silently lost.
func exitAfterCleanup() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	dieClean(t)
}

// suppressed: an acknowledged leak stays quiet under //lint:ignore.
func suppressed() {
	//lint:ignore leakcheck corpus exercises suppression
	f, _ := os.Create("x")
	f.Name()
}
