// Package leakcheck finds resources that escape their acquiring function
// without being released, and process exits that skip a pending deferred
// cleanup.
//
// Two rules:
//
//  1. Must-release: a value obtained from a known acquirer (os.Create,
//     time.NewTicker, net.Listen, ... — or any in-repo function that
//     returns one of those fresh) must, on every control-flow path from
//     the acquisition to the function's exit, either be released
//     (Close/Stop, directly or deferred) or handed off — returned,
//     stored, sent, passed as an argument, or captured by a closure —
//     which transfers ownership to someone the intraprocedural analysis
//     cannot see. The check runs over the function's CFG
//     (internal/analysis/cfg), so a release on one branch does not excuse
//     the other, paths ending in panic/os.Exit are vacuously fine (the
//     process dies anyway — rule 2 owns that case), and the standard
//     `f, err := os.Open(p); if err != nil { return err }` shape is
//     understood: the error path holds no resource.
//
//  2. Exit-while-pending: deferred calls do not run across os.Exit. A
//     call whose effect summary (internal/analysis/summary) reaches
//     ProcExit — os.Exit or a fatal logger, any number of calls deep —
//     made after a cleanup has been deferred (`defer f.Close()`,
//     `defer profiling.Start(...)()`) silently discards that cleanup:
//     truncated CPU profiles, unflushed files. The call is flagged with
//     the call chain to the exit as evidence, unless the callee itself
//     reaches a release (Close/Stop/StopCPUProfile/...) before dying —
//     the early-exit helper that runs the cleanup by hand is the fix,
//     not a violation.
//
// Both rules approximate in the quiet direction: any hand-off counts as
// an ownership transfer (rule 1 never second-guesses the new owner), and
// a conditional defer is treated as always executed (the cfg package's
// convention). Suppress an acknowledged finding with
// //lint:ignore leakcheck <reason>.
package leakcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"burstmem/internal/analysis"
	"burstmem/internal/analysis/callgraph"
	"burstmem/internal/analysis/cfg"
	"burstmem/internal/analysis/summary"
)

// Analyzer is the leakcheck pass.
var Analyzer = &analysis.Analyzer{
	Name:       "leakcheck",
	Doc:        "acquired resources must be released or handed off on every path, and process exits must not skip pending deferred cleanups",
	RunProgram: run,
}

// acquirers maps external callee IDs to the method that releases their
// result.
var acquirers = map[callgraph.ID]string{
	"os.Create":      "Close",
	"os.Open":        "Close",
	"os.OpenFile":    "Close",
	"os.CreateTemp":  "Close",
	"net.Listen":     "Close",
	"net.Dial":       "Close",
	"time.NewTicker": "Stop",
	"time.NewTimer":  "Stop",
}

// releasers are the method names that count as running a cleanup, for the
// exit-while-pending exemption.
var releasers = map[string]bool{
	"Close": true, "Stop": true, "StopCPUProfile": true,
	"Sync": true, "Flush": true,
}

func run(pass *analysis.ProgramPass) {
	g := callgraph.Build(pass.Prog)
	set := summary.Of(pass.Prog)
	fresh := freshAcquirers(g)
	cleans := cleaners(g)
	for _, fn := range g.Source {
		checkFunc(pass, fn, set, fresh, cleans)
	}
}

// edgeIndex maps call positions to resolved callees. Lit edges are
// bookkeeping for uninvoked literals and share positions with real calls,
// so they are skipped.
func edgeIndex(fn *callgraph.Func) map[token.Pos][]*callgraph.Func {
	idx := map[token.Pos][]*callgraph.Func{}
	for _, e := range fn.Out {
		if e.Callee == nil || e.Kind == callgraph.Lit {
			continue
		}
		idx[e.Pos] = append(idx[e.Pos], e.Callee)
	}
	return idx
}

// acquiringCall resolves e to an acquiring call and returns the acquirer's
// display name and releaser method.
func acquiringCall(e ast.Expr, idx map[token.Pos][]*callgraph.Func, fresh map[callgraph.ID]string) (string, string, bool) {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return "", "", false
	}
	for _, callee := range idx[call.Pos()] {
		if rel, ok := acquirers[callee.ID]; ok {
			return callee.Name, rel, true
		}
		if rel, ok := fresh[callee.ID]; ok {
			return callee.Name, rel, true
		}
	}
	return "", "", false
}

// freshAcquirers finds in-repo functions that return a freshly acquired
// resource (directly, or through a local, or via another fresh acquirer),
// mapped to the releaser method of the underlying acquisition. Callers of
// such a function inherit the release obligation.
func freshAcquirers(g *callgraph.Graph) map[callgraph.ID]string {
	fresh := map[callgraph.ID]string{}
	for changed := true; changed; {
		changed = false
		for _, fn := range g.Source {
			if _, ok := fresh[fn.ID]; ok {
				continue
			}
			body := fn.Body()
			if body == nil {
				continue
			}
			idx := edgeIndex(fn)
			info := fn.Pkg.TypesInfo
			acquired := map[types.Object]string{} // local -> releaser
			rel := ""
			ast.Inspect(body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if len(n.Rhs) != 1 {
						return true
					}
					_, r, ok := acquiringCall(n.Rhs[0], idx, fresh)
					if !ok {
						return true
					}
					if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
						if o := info.ObjectOf(id); o != nil {
							acquired[o] = r
						}
					}
				case *ast.ReturnStmt:
					for _, res := range n.Results {
						if _, r, ok := acquiringCall(res, idx, fresh); ok {
							rel = r
						}
						if id, ok := unparen(res).(*ast.Ident); ok {
							if r := acquired[info.ObjectOf(id)]; r != "" {
								rel = r
							}
						}
					}
				}
				return true
			})
			if rel != "" {
				fresh[fn.ID] = rel
				changed = true
			}
		}
	}
	return fresh
}

// cleaners computes the functions that (transitively) run a release —
// anything calling a method named Close/Stop/StopCPUProfile/Sync/Flush.
// A ProcExit callee in this set is an early-exit helper that finalizes by
// hand, not an exit-while-pending violation.
func cleaners(g *callgraph.Graph) map[callgraph.ID]bool {
	cleans := map[callgraph.ID]bool{}
	for _, fn := range g.Source {
		body := fn.Body()
		if body == nil {
			continue
		}
		ast.Inspect(body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && releasers[sel.Sel.Name] {
					cleans[fn.ID] = true
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range g.Source {
			if cleans[fn.ID] {
				continue
			}
			for _, e := range fn.Out {
				if e.Callee != nil && cleans[e.Callee.ID] {
					cleans[fn.ID] = true
					changed = true
					break
				}
			}
		}
	}
	return cleans
}

// acq is one resource acquisition in a function.
type acq struct {
	stmt ast.Node     // the acquiring assignment
	v    types.Object // the variable holding the resource
	errv types.Object // the error result, when assigned (nil otherwise)
	name string       // acquirer display name ("os.Create")
	rel  string       // releasing method ("Close")
}

// checker is the per-function analysis state.
type checker struct {
	pass *analysis.ProgramPass
	fn   *callgraph.Func
	info *types.Info
	g    *cfg.CFG
	acqs []acq
}

func checkFunc(pass *analysis.ProgramPass, fn *callgraph.Func, set *summary.Set, fresh map[callgraph.ID]string, cleans map[callgraph.ID]bool) {
	body := fn.Body()
	if body == nil {
		return
	}
	var node ast.Node
	if fn.Decl != nil {
		node = fn.Decl
	} else {
		node = fn.Lit
	}
	c := &checker{pass: pass, fn: fn, info: fn.Pkg.TypesInfo, g: cfg.New(node)}
	idx := edgeIndex(fn)

	// Rule 1: collect acquisitions, then ask the CFG whether a path
	// reaches Exit with the resource still pending.
	for _, b := range c.g.Blocks {
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				continue
			}
			name, rel, ok := acquiringCall(as.Rhs[0], idx, fresh)
			if !ok {
				continue
			}
			id0, ok := as.Lhs[0].(*ast.Ident)
			if !ok || id0.Name == "_" {
				continue
			}
			v := c.info.ObjectOf(id0)
			if v == nil {
				continue
			}
			var errv types.Object
			if len(as.Lhs) == 2 {
				if id1, ok := as.Lhs[1].(*ast.Ident); ok && id1.Name != "_" {
					errv = c.info.ObjectOf(id1)
				}
			}
			c.acqs = append(c.acqs, acq{stmt: n, v: v, errv: errv, name: name, rel: rel})
		}
	}
	if len(c.acqs) > 64 {
		c.acqs = c.acqs[:64] // dataflow facts are a bitmask
	}
	if len(c.acqs) > 0 {
		for _, i := range c.leaks() {
			a := c.acqs[i]
			pass.Reportf(a.stmt.Pos(),
				"%s acquired here is not released on every path: defer %s.%s() (or hand the value off) before returning",
				a.name, a.v.Name(), a.rel)
		}
	}

	// Rule 2: calls that can exit the process after a cleanup was
	// deferred. Lexical order approximates control flow: a call before
	// the defer statement cannot discard it.
	fins := deferredCleanups(body, fn.Lit)
	if len(fins) == 0 {
		return
	}
	first := fins[0]
	for _, e := range fn.Out {
		if e.Callee == nil || e.Kind == callgraph.Lit || e.Pos <= first.pos {
			continue
		}
		id := e.Callee.ID
		if !exits(set, id) || cleans[id] {
			continue
		}
		chain := []string{e.Callee.Name}
		chain = append(chain, set.Path(id, summary.Key{Kind: summary.ProcExit})...)
		pass.ReportChainf(e.Pos, chain,
			"call to %s can exit the process while the cleanup deferred at line %d (%s) is pending: deferred calls do not run across os.Exit; run the cleanup before exiting",
			e.Callee.Name, pass.Prog.Fset.Position(first.pos).Line, first.desc)
	}
}

// fin is one deferred cleanup.
type fin struct {
	pos  token.Pos
	desc string
}

// deferredCleanups collects the deferred release calls of one function
// body: `defer x.Close()` / `defer x.Stop()`, and the
// `defer acquire(...)()` shape whose inner call returned the finalizer.
// Nested literals keep their own defers.
func deferredCleanups(body ast.Node, self *ast.FuncLit) []fin {
	var fins []fin
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != self {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		switch f := d.Call.Fun.(type) {
		case *ast.SelectorExpr:
			if releasers[f.Sel.Name] {
				fins = append(fins, fin{pos: d.Pos(), desc: exprName(f) + "()"})
			}
		case *ast.CallExpr:
			fins = append(fins, fin{pos: d.Pos(), desc: exprName(f.Fun) + "(…)()"})
		}
		return true
	})
	return fins
}

// exits reports whether calling id can terminate the process: os.Exit and
// the fatal loggers directly, or any function whose summary reaches
// ProcExit.
func exits(set *summary.Set, id callgraph.ID) bool {
	switch id {
	case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln":
		return true
	}
	sum := set.Funcs[id]
	if sum == nil {
		return false
	}
	_, ok := sum.Effects[summary.Key{Kind: summary.ProcExit}]
	return ok
}

// leaks runs the forward may-leak dataflow and returns the indices of
// acquisitions still pending at Exit.
func (c *checker) leaks() []int {
	blocks := c.g.Blocks
	out := make([]uint64, len(blocks))
	rpo := c.g.RPO()
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			var in uint64
			for _, p := range b.Preds {
				in |= out[p.Index] &^ c.edgeKills(p, b)
			}
			o := c.transfer(b, in)
			if o != out[b.Index] {
				out[b.Index] = o
				changed = true
			}
		}
	}
	var in uint64
	for _, p := range c.g.Exit.Preds {
		in |= out[p.Index] &^ c.edgeKills(p, c.g.Exit)
	}
	var idxs []int
	for i := range c.acqs {
		if in&(1<<uint(i)) != 0 {
			idxs = append(idxs, i)
		}
	}
	return idxs
}

// transfer scans a block's nodes in order, setting an acquisition's bit at
// its statement and clearing it at a release or hand-off.
func (c *checker) transfer(b *cfg.Block, in uint64) uint64 {
	f := in
	for _, n := range b.Nodes {
		for i := range c.acqs {
			a := &c.acqs[i]
			if n == a.stmt {
				f |= 1 << uint(i)
				continue
			}
			if f&(1<<uint(i)) == 0 {
				continue
			}
			if c.releases(n, a) || c.hands(n, a) {
				f &^= 1 << uint(i)
			}
		}
	}
	return f
}

// edgeKills returns the acquisition bits killed on the p->b edge: the
// branch where the acquisition's error is non-nil (it failed — there is
// nothing to release) or the resource itself is nil.
func (c *checker) edgeKills(p, b *cfg.Block) uint64 {
	if p.Kind != cfg.KindCond || p.Cond == nil {
		return 0
	}
	be, ok := p.Cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return 0
	}
	var x ast.Expr
	switch {
	case isNil(be.Y):
		x = be.X
	case isNil(be.X):
		x = be.Y
	default:
		return 0
	}
	id, ok := unparen(x).(*ast.Ident)
	if !ok {
		return 0
	}
	o := c.info.ObjectOf(id)
	if o == nil {
		return 0
	}
	// Succs[0] is the true edge. Same-target edges stay conservative.
	onTrue := b == p.Succs[0]
	var kills uint64
	for i := range c.acqs {
		a := &c.acqs[i]
		dead := false
		switch {
		case a.errv != nil && o == a.errv:
			dead = (be.Op == token.NEQ) == onTrue // err != nil: failed
		case o == a.v:
			dead = (be.Op == token.EQL) == onTrue // v == nil: nothing held
		}
		if dead {
			kills |= 1 << uint(i)
		}
	}
	return kills
}

// releases reports whether n runs the acquisition's releaser on its
// variable, directly or deferred. (A `defer v.Close()` counts at the
// defer statement: the cfg defer chain guarantees it runs on every
// orderly exit.)
func (c *checker) releases(n ast.Node, a *acq) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != a.rel {
			return !found
		}
		if id, ok := unparen(sel.X).(*ast.Ident); ok && c.info.ObjectOf(id) == a.v {
			found = true
		}
		return !found
	})
	return found
}

// hands reports whether n transfers ownership of the resource: returned,
// assigned away (or over), passed as a call argument, sent, aggregated,
// address-taken, or captured by a function literal.
func (c *checker) hands(n ast.Node, a *acq) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.AssignStmt:
			for _, e := range append(append([]ast.Expr{}, m.Lhs...), m.Rhs...) {
				if c.mentions(e, a.v) {
					found = true
				}
			}
		case *ast.ReturnStmt, *ast.SendStmt, *ast.CompositeLit:
			if c.mentions(m, a.v) {
				found = true
			}
			return false
		case *ast.CallExpr:
			for _, arg := range m.Args {
				if c.mentions(arg, a.v) {
					found = true
				}
			}
			if lit, ok := m.Fun.(*ast.FuncLit); ok && c.mentions(lit, a.v) {
				found = true
			}
			// A method call on the resource itself (v.Read(...)) is a
			// neutral receiver use, not a transfer.
		case *ast.UnaryExpr:
			if m.Op == token.AND && c.mentions(m.X, a.v) {
				found = true
			}
		case *ast.FuncLit:
			if c.mentions(m, a.v) {
				found = true
			}
			return false
		}
		return !found
	})
	return found
}

// mentions reports whether the subtree uses the variable.
func (c *checker) mentions(n ast.Node, v types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && c.info.ObjectOf(id) == v {
			found = true
		}
		return !found
	})
	return found
}

// exprName renders a selector/ident chain for messages ("profiling.Start",
// "f.Close"); anything more exotic collapses to "…".
func exprName(e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	}
	return "…"
}

func isNil(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
