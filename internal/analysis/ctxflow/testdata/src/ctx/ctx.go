// Package ctx is the ctxflow library corpus: root contexts minted outside
// main, discarded caller contexts, and cancel functions that do not run
// on every path.
package ctx

import (
	"context"
	"time"
)

// rootInLibrary mints its own root context.
func rootInLibrary() context.Context {
	return context.Background() // want `context\.Background in non-main code cuts this call tree off from the caller's cancellation`
}

// todoInLibrary is the same mistake with a different name.
func todoInLibrary() context.Context {
	return context.TODO() // want `context\.TODO in non-main code cuts this call tree off`
}

// discardsCaller has a perfectly good ctx and ignores it.
func discardsCaller(ctx context.Context) error {
	return work(context.Background()) // want `context\.Background discards the caller-provided context: derive from the ctx parameter`
}

// flowsCaller passes the caller's context down — clean.
func flowsCaller(ctx context.Context) error {
	return work(ctx)
}

// derivesCaller derives from the caller's context — clean, and the cancel
// is deferred.
func derivesCaller(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return work(ctx)
}

// closureSeesParam: a literal inside a ctx-taking function inherits the
// parameter's scope.
func closureSeesParam(ctx context.Context) func() error {
	return func() error {
		return work(context.Background()) // want `context\.Background discards the caller-provided context`
	}
}

// droppedCancel throws the CancelFunc away outright.
func droppedCancel(ctx context.Context) error {
	c, _ := context.WithCancel(ctx) // want `the CancelFunc of context\.WithCancel is discarded`
	return work(c)
}

// cancelOneBranch calls cancel on one path only.
func cancelOneBranch(ctx context.Context, fast bool) error {
	c, cancel := context.WithCancel(ctx) // want `context\.WithCancel's CancelFunc cancel is not called on every path: defer cancel\(\)`
	if fast {
		cancel()
		return nil
	}
	return work(c)
}

// cancelHandedOff transfers the obligation to the caller — clean.
func cancelHandedOff(ctx context.Context) (context.Context, context.CancelFunc) {
	c, cancel := context.WithCancel(ctx)
	return c, cancel
}

// suppressed: acknowledged root context.
func suppressed() context.Context {
	//lint:ignore ctxflow corpus exercises suppression
	return context.Background()
}

func work(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}
