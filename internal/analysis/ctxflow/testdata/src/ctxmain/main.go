// The process edge: package main may mint root contexts — but a function
// that already holds one must still flow it.
package main

import "context"

func main() {
	ctx := context.Background() // fine: main owns the process edge
	serve(ctx)
}

func serve(ctx context.Context) {
	step(context.Background()) // want `context\.Background discards the caller-provided context`
	step(ctx)
}

func step(ctx context.Context) { <-ctx.Done() }
