package ctxflow_test

import (
	"testing"

	"burstmem/internal/analysis/analysistest"
	"burstmem/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "./testdata/src/ctx", "./testdata/src/ctxmain")
}
