// Package ctxflow checks context.Context discipline: contexts are created
// at the process edge and flow down the call tree, and every cancel
// function is eventually called.
//
// Three rules:
//
//  1. Root contexts belong in package main. context.Background() (or
//     context.TODO()) in any other package cuts the function off from the
//     caller's deadline and cancellation — a library that makes its own
//     root context cannot be shut down. Accept a ctx parameter instead.
//
//  2. A function that already receives a context must pass that context
//     (or one derived from it) to its callees — reaching for
//     context.Background() with a caller-provided ctx in scope discards
//     the caller's cancellation mid-tree. Checked in every package, main
//     included.
//
//  3. A CancelFunc must be called on every path. `ctx, cancel :=
//     context.WithCancel(...)` leaks the child context's resources (and,
//     for WithTimeout, its timer) until the parent dies if cancel is
//     dropped. The check runs over the CFG like leakcheck's: a deferred
//     cancel or a cancel call on every path is fine, handing the cancel
//     func away (stored, passed, returned) transfers the obligation, and
//     assigning it to _ is reported outright.
//
// Suppress an acknowledged finding with //lint:ignore ctxflow <reason>.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"burstmem/internal/analysis"
	"burstmem/internal/analysis/callgraph"
	"burstmem/internal/analysis/cfg"
)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name:       "ctxflow",
	Doc:        "contexts must flow from caller to callee (no context.Background() outside main, no dropped CancelFuncs)",
	RunProgram: run,
}

func run(pass *analysis.ProgramPass) {
	g := callgraph.Build(pass.Prog)
	for _, fn := range g.Source {
		check(pass, fn)
	}
}

func check(pass *analysis.ProgramPass, fn *callgraph.Func) {
	body := fn.Body()
	if body == nil {
		return
	}
	info := fn.Pkg.TypesInfo

	// hasCtx: the function (or an enclosing literal's function) receives a
	// context parameter.
	hasCtx := ctxParam(fn, info)

	// Rules 1 and 2: root-context creation sites. Nested literals are
	// separate graph nodes; skip them here.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != fn.Lit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := rootCtxCall(call, info)
		if !ok {
			return true
		}
		switch {
		case hasCtx:
			pass.Reportf(call.Pos(),
				"%s discards the caller-provided context: derive from the ctx parameter instead", name)
		case fn.Pkg.Types.Name() != "main":
			pass.Reportf(call.Pos(),
				"%s in non-main code cuts this call tree off from the caller's cancellation: accept a context.Context parameter and pass it down", name)
		}
		return true
	})

	// Rule 3: cancel functions must run on every path.
	checkCancels(pass, fn, info)
}

// ctxParam reports whether fn — or, for a literal, any enclosing function
// — has a context.Context parameter in scope.
func ctxParam(fn *callgraph.Func, info *types.Info) bool {
	for f := fn; f != nil; f = f.Parent {
		var ft *ast.FuncType
		switch {
		case f.Decl != nil:
			ft = f.Decl.Type
		case f.Lit != nil:
			ft = f.Lit.Type
		}
		if ft == nil || ft.Params == nil {
			continue
		}
		for _, field := range ft.Params.List {
			if tv, ok := info.Types[field.Type]; ok && isContext(tv.Type) {
				return true
			}
		}
	}
	return false
}

// rootCtxCall matches context.Background() / context.TODO().
func rootCtxCall(call *ast.CallExpr, info *types.Info) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return "", false
	}
	if f, ok := info.Uses[sel.Sel].(*types.Func); ok && f.Pkg() != nil && f.Pkg().Path() == "context" {
		return "context." + sel.Sel.Name, true
	}
	return "", false
}

// cancelCall matches context.WithCancel/WithTimeout/WithDeadline and
// returns the constructor name.
func cancelCall(e ast.Expr, info *types.Info) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "WithCancel", "WithTimeout", "WithDeadline", "WithTimeoutCause", "WithDeadlineCause":
	default:
		return "", false
	}
	if f, ok := info.Uses[sel.Sel].(*types.Func); ok && f.Pkg() != nil && f.Pkg().Path() == "context" {
		return "context." + sel.Sel.Name, true
	}
	return "", false
}

// cancelAcq is one CancelFunc obligation.
type cancelAcq struct {
	stmt ast.Node
	v    types.Object // the cancel variable
	name string       // constructor display name
}

func checkCancels(pass *analysis.ProgramPass, fn *callgraph.Func, info *types.Info) {
	var node ast.Node
	if fn.Decl != nil {
		node = fn.Decl
	} else {
		node = fn.Lit
	}
	g := cfg.New(node)

	var acqs []cancelAcq
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
				continue
			}
			name, ok := cancelCall(as.Rhs[0], info)
			if !ok {
				continue
			}
			id, ok := as.Lhs[1].(*ast.Ident)
			if !ok {
				continue
			}
			if id.Name == "_" {
				pass.Reportf(as.Pos(),
					"the CancelFunc of %s is discarded: the derived context (and its timer) lives until the parent is cancelled; keep it and call it", name)
				continue
			}
			if v := info.ObjectOf(id); v != nil {
				acqs = append(acqs, cancelAcq{stmt: n, v: v, name: name})
			}
		}
	}
	if len(acqs) == 0 {
		return
	}
	if len(acqs) > 64 {
		acqs = acqs[:64]
	}

	// Forward may-drop dataflow, mirroring leakcheck: the bit is set at
	// the derivation and cleared by a cancel call (direct or deferred) or
	// a hand-off.
	out := make([]uint64, len(g.Blocks))
	transfer := func(b *cfg.Block, in uint64) uint64 {
		f := in
		for _, n := range b.Nodes {
			for i := range acqs {
				a := &acqs[i]
				if n == a.stmt {
					f |= 1 << uint(i)
					continue
				}
				if f&(1<<uint(i)) == 0 {
					continue
				}
				if cancels(n, a.v, info) || handsOff(n, a.v, a.stmt, info) {
					f &^= 1 << uint(i)
				}
			}
		}
		return f
	}
	rpo := g.RPO()
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			var in uint64
			for _, p := range b.Preds {
				in |= out[p.Index]
			}
			o := transfer(b, in)
			if o != out[b.Index] {
				out[b.Index] = o
				changed = true
			}
		}
	}
	var at uint64
	for _, p := range g.Exit.Preds {
		at |= out[p.Index]
	}
	for i := range acqs {
		if at&(1<<uint(i)) != 0 {
			a := acqs[i]
			pass.Reportf(a.stmt.Pos(),
				"%s's CancelFunc %s is not called on every path: defer %s() right after deriving the context",
				a.name, a.v.Name(), a.v.Name())
		}
	}
}

// cancels reports whether n calls the cancel function (directly or
// deferred — the cfg defer chain covers every orderly exit).
func cancels(n ast.Node, v types.Object, info *types.Info) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && info.ObjectOf(id) == v {
				found = true
			}
		}
		return !found
	})
	return found
}

// handsOff reports whether n transfers the cancel obligation: the func
// value is returned, assigned away, passed as an argument, aggregated, or
// captured by a literal that is not merely calling it.
func handsOff(n ast.Node, v types.Object, acqStmt ast.Node, info *types.Info) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.AssignStmt:
			if m == acqStmt {
				return true
			}
			for _, e := range append(append([]ast.Expr{}, m.Lhs...), m.Rhs...) {
				if mentions(e, v, info) {
					found = true
				}
			}
		case *ast.ReturnStmt, *ast.SendStmt, *ast.CompositeLit:
			if mentions(m, v, info) {
				found = true
			}
			return false
		case *ast.CallExpr:
			for _, arg := range m.Args {
				if mentions(arg, v, info) {
					found = true
				}
			}
		case *ast.FuncLit:
			// A literal that calls cancel keeps the obligation visible (a
			// deferred closure is the common shape); one that stores or
			// forwards it hands it off. Either way the literal's own
			// mention decides.
			if mentions(m, v, info) {
				found = true
			}
			return false
		}
		return !found
	})
	return found
}

func mentions(n ast.Node, v types.Object, info *types.Info) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && info.ObjectOf(id) == v {
			found = true
		}
		return !found
	})
	return found
}

// isContext matches context.Context (including named aliases resolving to
// it).
func isContext(t types.Type) bool {
	if t == nil {
		return false
	}
	return strings.HasSuffix(t.String(), "context.Context") &&
		types.IsInterface(t)
}
