package analysis

import (
	"go/types"
	"path/filepath"
	"slices"
	"strings"
	"testing"
)

// TestLoadTypeChecksAgainstExportData loads a real package of this module
// and verifies full type information is available, including types imported
// from compiler export data (the dram dependency of memctrl).
func TestLoadTypeChecksAgainstExportData(t *testing.T) {
	pkgs, err := Load("burstmem/internal/memctrl")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.PkgPath != "burstmem/internal/memctrl" {
		t.Fatalf("unexpected package path %q", pkg.PkgPath)
	}
	obj := pkg.Types.Scope().Lookup("Access")
	if obj == nil {
		t.Fatal("Access not found in memctrl scope")
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		t.Fatalf("Access is %T, want struct", obj.Type().Underlying())
	}
	// The Outcome field's type comes from the dram export data.
	found := false
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "Outcome" {
			continue
		}
		found = true
		named, ok := f.Type().(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			t.Fatalf("Outcome type = %v, want named type from dram", f.Type())
		}
		if got := named.Obj().Pkg().Path(); got != "burstmem/internal/dram" {
			t.Fatalf("Outcome type package = %q, want burstmem/internal/dram", got)
		}
	}
	if !found {
		t.Fatal("Access.Outcome field not found")
	}
	if len(pkg.TypesInfo.Uses) == 0 || len(pkg.TypesInfo.Types) == 0 {
		t.Fatal("TypesInfo not populated")
	}
}

// TestLoadPatterns verifies wildcard patterns resolve to multiple packages
// and skip dependency-only entries.
func TestLoadPatterns(t *testing.T) {
	pkgs, err := Load("burstmem/internal/dram", "burstmem/internal/addrmap")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
}

// TestLoadGenerics verifies type-parameterized code loads cleanly and its
// instantiations are recorded in TypesInfo.Instances — the map analyzers
// need to see through Ring[uint64]-style uses.
func TestLoadGenerics(t *testing.T) {
	pkgs, err := Load("./testdata/src/generics")
	if err != nil {
		t.Fatal(err)
	}
	pkg := pkgs[0]
	if len(pkg.Errors) > 0 {
		t.Fatalf("unexpected load errors: %v", pkg.Errors)
	}
	if len(pkg.TypesInfo.Instances) == 0 {
		t.Fatal("no generic instantiations recorded in TypesInfo.Instances")
	}
	// Note the receiver Ring[T] of Push records an instance too; look
	// for the concrete one from use().
	foundRing := false
	for id, inst := range pkg.TypesInfo.Instances {
		if id.Name == "Ring" && inst.TypeArgs.Len() == 1 && inst.TypeArgs.At(0).String() == "uint64" {
			foundRing = true
		}
	}
	if !foundRing {
		t.Error("Ring[uint64] instantiation not recorded")
	}
}

// TestLoadBuildTagExcluded verifies files behind an off-by-default build
// tag stay out of the loaded file set: internal/dram's invariants
// sanitizer must not be analyzed in a default build.
func TestLoadBuildTagExcluded(t *testing.T) {
	pkgs, err := Load("burstmem/internal/dram")
	if err != nil {
		t.Fatal(err)
	}
	pkg := pkgs[0]
	var names []string
	for _, f := range pkg.Files {
		names = append(names, filepath.Base(pkg.Fset.Position(f.Pos()).Filename))
	}
	if slices.Contains(names, "sanitize_on.go") {
		t.Errorf("sanitize_on.go (//go:build invariants) loaded in default build: %v", names)
	}
	if !slices.Contains(names, "sanitize_off.go") {
		t.Errorf("sanitize_off.go missing from default build: %v", names)
	}
}

// TestLoadBrokenPackage verifies a type-check failure becomes per-package
// diagnostics, not an aborted load, and that Run reports them instead of
// analyzing the partial package.
func TestLoadBrokenPackage(t *testing.T) {
	pkgs, err := Load("./testdata/src/broken")
	if err != nil {
		t.Fatalf("Load returned a hard error for a broken package: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.Errors) < 2 {
		t.Fatalf("got %d load errors, want at least the two type errors: %v", len(pkg.Errors), pkg.Errors)
	}
	for _, d := range pkg.Errors {
		if d.Analyzer != "load" {
			t.Errorf("load error stamped %q, want load: %v", d.Analyzer, d)
		}
		if !strings.HasSuffix(d.Pos.Filename, "broken.go") || d.Pos.Line == 0 {
			t.Errorf("load error lacks a usable position: %v", d)
		}
	}

	// Run must report the load errors and skip analyzers: a panicking
	// analyzer proves it was never invoked on the broken package.
	boom := &Analyzer{
		Name: "boom",
		Doc:  "panics if run",
		Run:  func(*Pass) { panic("analyzer ran on a broken package") },
	}
	diags := Run(pkgs, []*Analyzer{boom})
	if len(diags) != len(pkg.Errors) {
		t.Fatalf("Run returned %d diagnostics, want the %d load errors", len(diags), len(pkg.Errors))
	}
}
