package analysis

import (
	"go/types"
	"testing"
)

// TestLoadTypeChecksAgainstExportData loads a real package of this module
// and verifies full type information is available, including types imported
// from compiler export data (the dram dependency of memctrl).
func TestLoadTypeChecksAgainstExportData(t *testing.T) {
	pkgs, err := Load("burstmem/internal/memctrl")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.PkgPath != "burstmem/internal/memctrl" {
		t.Fatalf("unexpected package path %q", pkg.PkgPath)
	}
	obj := pkg.Types.Scope().Lookup("Access")
	if obj == nil {
		t.Fatal("Access not found in memctrl scope")
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		t.Fatalf("Access is %T, want struct", obj.Type().Underlying())
	}
	// The Outcome field's type comes from the dram export data.
	found := false
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "Outcome" {
			continue
		}
		found = true
		named, ok := f.Type().(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			t.Fatalf("Outcome type = %v, want named type from dram", f.Type())
		}
		if got := named.Obj().Pkg().Path(); got != "burstmem/internal/dram" {
			t.Fatalf("Outcome type package = %q, want burstmem/internal/dram", got)
		}
	}
	if !found {
		t.Fatal("Access.Outcome field not found")
	}
	if len(pkg.TypesInfo.Uses) == 0 || len(pkg.TypesInfo.Types) == 0 {
		t.Fatal("TypesInfo not populated")
	}
}

// TestLoadPatterns verifies wildcard patterns resolve to multiple packages
// and skip dependency-only entries.
func TestLoadPatterns(t *testing.T) {
	pkgs, err := Load("burstmem/internal/dram", "burstmem/internal/addrmap")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
}
