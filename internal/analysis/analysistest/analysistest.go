// Package analysistest runs an analyzer over a testdata package and checks
// its diagnostics against expectations written in the source, mirroring
// golang.org/x/tools/go/analysis/analysistest:
//
//	x := timeNow() // want `nondeterminism`
//
// Every line carrying a `// want "regexp"` comment must receive at least
// one diagnostic matching the regexp, and every diagnostic must be matched
// by a want comment on its line.
package analysistest

import (
	"regexp"
	"strings"
	"testing"

	"burstmem/internal/analysis"
)

var wantRe = regexp.MustCompile("// want [\"`](.+)[\"`]")

// Run loads the packages at dirs (paths relative to the analyzer's package
// directory, e.g. "./testdata/src/internal/core"), applies the analyzer and
// compares diagnostics with // want comments. Multi-package corpora list
// every directory explicitly: go list patterns never descend into testdata.
func Run(t *testing.T, a *analysis.Analyzer, dirs ...string) {
	t.Helper()
	pkgs, err := analysis.Load(dirs...)
	if err != nil {
		t.Fatal(err)
	}
	diags := analysis.Run(pkgs, []*analysis.Analyzer{a})

	type key struct {
		file string
		line int
	}
	wants := map[key]*wantExpect{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					wants[key{pos.Filename, pos.Line}] = &wantExpect{re: re, raw: m[1]}
				}
			}
		}
	}

	for _, d := range diags {
		w := wants[key{d.Pos.Filename, d.Pos.Line}]
		if w == nil {
			t.Errorf("unexpected diagnostic %v", d)
			continue
		}
		if !w.re.MatchString(d.Message) {
			t.Errorf("diagnostic %v does not match want %q", d, w.raw)
			continue
		}
		w.matched = true
	}
	for k, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", shortFile(k.file), k.line, w.raw)
		}
	}
}

type wantExpect struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

func shortFile(name string) string {
	if i := strings.LastIndex(name, "/testdata/"); i >= 0 {
		return name[i+1:]
	}
	return name
}
