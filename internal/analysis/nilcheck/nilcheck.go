// Package nilcheck verifies the nil-receiver Tracer contract from the
// observability layer (internal/trace, PR 3): a `*trace.Tracer` obtained
// from a constructor call, an accessor like `Host.Tracer()`, or a struct
// field may be nil — nil is the *disabled* tracer — so outside the
// annotated hot path every dereference of such a value must be dominated
// by a nil test.
//
// The hot path is exempt by contract: functions carrying the
// `//burstmem:hotpath` directive emit through the Tracer's exported
// wrappers, whose inlined `if t == nil { return }` guard is the whole
// point of the nil-receiver design. Everywhere else (export-time helpers,
// oracles, command front-ends) the analyzer demands an explicit guard,
// because there is no inlining contract protecting arbitrary field reads
// or future non-nil-safe methods.
//
// What counts:
//
//   - dereference: selecting through the pointer — a field access or a
//     method call `x.M(...)` on a tracer-typed x — or an explicit `*x`;
//   - possibly nil: the value came from a call returning *trace.Tracer or
//     from a struct field; ordinary parameters are trusted (the caller
//     guards);
//   - dominated: on every CFG path from the source to the dereference a
//     test `x != nil` (or an early return under `x == nil`) intervenes.
//     Short-circuit conditions refine per conjunct, so
//     `if tr != nil && tr.Len() > 0` is a guarded dereference.
//
// Calling `x.Enabled()` is not a dereference — it is the documented
// nil-safe way to test a tracer — and its result refines like `x != nil`.
//
// The analysis is path-sensitive over access paths ("tr", "c.tracer"):
// a guard on c.tracer covers later uses of c.tracer until either the
// path or one of its prefixes is reassigned. Calls are assumed not to
// detach a guarded tracer mid-function (SetTracer between guard and use
// would be a bug this analyzer misses — and a strange one to write).
package nilcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"burstmem/internal/analysis"
	"burstmem/internal/analysis/astx"
	"burstmem/internal/analysis/cfg"
	"burstmem/internal/analysis/dataflow"
)

// Analyzer is the nilcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "nilcheck",
	Doc:  "dereferences of possibly-nil *trace.Tracer values must be dominated by a nil test outside //burstmem:hotpath functions",
	Run:  run,
}

// nilness is the per-path lattice value.
type nilness uint8

const (
	nnUnknown nilness = iota // untracked / bottom
	nnNil
	nnNonNil
	nnMaybe
)

func (n nilness) String() string {
	switch n {
	case nnNil:
		return "nil"
	case nnNonNil:
		return "non-nil"
	case nnMaybe:
		return "possibly-nil"
	}
	return "unknown"
}

func joinNilness(a, b nilness) nilness {
	switch {
	case a == b:
		return a
	case a == nnUnknown || b == nnUnknown:
		return nnUnknown // one side untracked: stay quiet
	}
	return nnMaybe
}

// fact maps tracer access paths to nil-ness. Paths not present are
// untracked (trusted).
type fact map[string]nilness

func run(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, fi := range astx.Funcs(file) {
			if astx.IsHotpath(fi.Decl) {
				continue // hot-path contract: nil-safe wrappers
			}
			if fi.Body() == nil {
				continue
			}
			checkFunc(pass, fi.Node)
		}
	}
}

func checkFunc(pass *analysis.Pass, fn ast.Node) {
	g := cfg.New(fn)
	p := &problem{pass: pass}
	res := dataflow.Solve[fact](g, p)

	// Reporting pass: replay each block's transfer node by node so every
	// dereference sees the fact state at its own program point.
	for _, b := range g.Blocks {
		f := clone(res.In[b])
		for _, n := range b.Nodes {
			p.checkNode(n, f)
			p.step(n, f)
		}
	}
}

type problem struct {
	pass *analysis.Pass
}

func (p *problem) Direction() dataflow.Direction { return dataflow.Forward }
func (p *problem) Boundary() fact                { return fact{} }
func (p *problem) Bottom() fact                  { return nil }

func (p *problem) Join(a, b fact) fact {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := fact{}
	for k, v := range a {
		if w, ok := b[k]; ok {
			if j := joinNilness(v, w); j != nnUnknown {
				out[k] = j
			}
		}
		// Paths tracked on one side only stay untracked after a join:
		// some predecessor knows nothing about them.
	}
	return out
}

func (p *problem) Equal(a, b fact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func (p *problem) Transfer(b *cfg.Block, in fact) fact {
	out := clone(in)
	for _, n := range b.Nodes {
		p.step(n, out)
	}
	return out
}

func clone(f fact) fact {
	out := fact{}
	for k, v := range f {
		out[k] = v
	}
	return out
}

// step applies one statement's effect on the fact in place.
func (p *problem) step(n ast.Node, f fact) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Lhs {
				p.assign(n.Lhs[i], n.Rhs[i], f)
			}
			return
		}
		// Multi-value: every tracer-typed lhs becomes possibly-nil
		// (a call or comma-ok produced it).
		for _, l := range n.Lhs {
			if path := astx.PathString(l); path != "" {
				invalidate(f, path)
				if p.isTracerExpr(l) {
					f[path] = nnMaybe
				}
			}
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if !p.isTracerExpr(name) {
					continue
				}
				if i < len(vs.Values) {
					p.assign(name, vs.Values[i], f)
				} else {
					f[name.Name] = nnNil // var tr *trace.Tracer — zero value
				}
			}
		}
	}
}

// assign records the nil-ness of one lhs = rhs pair.
func (p *problem) assign(lhs, rhs ast.Expr, f fact) {
	path := astx.PathString(lhs)
	if path == "" {
		return
	}
	invalidate(f, path)
	if !p.isTracerExpr(lhs) {
		return
	}
	f[path] = p.classify(rhs, f)
}

// invalidate drops facts about path and every extension of it (assigning
// c rewrites c.tracer too).
func invalidate(f fact, path string) {
	for k := range f {
		if astx.HasPrefixPath(k, path) {
			delete(f, k)
		}
	}
}

// classify computes the nil-ness of a tracer-typed rhs.
func (p *problem) classify(rhs ast.Expr, f fact) nilness {
	switch e := rhs.(type) {
	case *ast.ParenExpr:
		return p.classify(e.X, f)
	case *ast.Ident:
		if e.Name == "nil" && p.pass.TypesInfo.Types[e].IsNil() {
			return nnNil
		}
		if v, ok := f[e.Name]; ok {
			return v
		}
		return nnUnknown
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return nnNonNil
		}
	case *ast.CallExpr:
		return nnMaybe // constructor/accessor results may be nil
	case *ast.SelectorExpr:
		// Copying another tracked path copies its fact; a raw struct
		// field read is a possibly-nil source.
		if path := astx.PathString(e); path != "" {
			if v, ok := f[path]; ok {
				return v
			}
			if p.isField(e) {
				return nnMaybe
			}
		}
	}
	return nnUnknown
}

// Refine implements dataflow.BranchRefiner: nil comparisons and
// Enabled() calls sharpen the fact along the taken edge.
func (p *problem) Refine(cond ast.Expr, branch bool, out fact) fact {
	switch e := cond.(type) {
	case *ast.BinaryExpr:
		if e.Op != token.EQL && e.Op != token.NEQ {
			return out
		}
		var x ast.Expr
		switch {
		case p.pass.TypesInfo.Types[e.Y].IsNil():
			x = e.X
		case p.pass.TypesInfo.Types[e.X].IsNil():
			x = e.Y
		default:
			return out
		}
		path := astx.PathString(x)
		if path == "" || !p.isTracerExpr(x) {
			return out
		}
		isNil := (e.Op == token.EQL) == branch
		ref := clone(out)
		if isNil {
			ref[path] = nnNil
		} else {
			ref[path] = nnNonNil
		}
		return ref
	case *ast.CallExpr:
		// if x.Enabled() { ... } — the nil-safe test method.
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Enabled" || !p.isTracerExpr(sel.X) {
			return out
		}
		path := astx.PathString(sel.X)
		if path == "" {
			return out
		}
		ref := clone(out)
		if branch {
			ref[path] = nnNonNil
		} else {
			ref[path] = nnNil
		}
		return ref
	}
	return out
}

// checkNode reports unguarded dereferences inside one CFG node, given the
// fact state right before it. Function literals are analyzed separately.
// Short-circuit operators outside control-flow conditions (the CFG only
// decomposes the latter) get local refinement: in `x != nil && x.M()` the
// right operand is checked under the left's true-branch fact.
func (p *problem) checkNode(n ast.Node, f fact) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BinaryExpr:
			if x.Op == token.LAND || x.Op == token.LOR {
				p.checkNode(x.X, f)
				p.checkNode(x.Y, p.Refine(x.X, x.Op == token.LAND, f))
				return false
			}
		case *ast.StarExpr:
			p.checkDeref(x.X, f)
		case *ast.SelectorExpr:
			if x.Sel.Name == "Enabled" {
				return true // the nil-safe test, not a dereference
			}
			p.checkDeref(x.X, f)
		}
		return true
	})
}

// checkDeref reports if base — the expression being dereferenced — is a
// possibly-nil tracer at this point.
func (p *problem) checkDeref(base ast.Expr, f fact) {
	if !p.isTracerExpr(base) {
		return
	}
	if path := astx.PathString(base); path != "" {
		switch f[path] {
		case nnNil, nnMaybe:
			p.pass.Reportf(base.Pos(), "%s dereferences a %s *trace.Tracer; guard with a nil test (or annotate the function %s)",
				path, f[path], astx.HotpathDirective)
		}
		return
	}
	// Expression sources: a call result dereferenced in place
	// (h.Tracer().Mark(...)) can never be guarded — bind it first.
	if _, ok := skipParens(base).(*ast.CallExpr); ok {
		p.pass.Reportf(base.Pos(), "dereference of unbound *trace.Tracer call result; assign it and guard with a nil test (or annotate the function %s)",
			astx.HotpathDirective)
	}
}

func skipParens(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// isTracerExpr reports whether the expression's static type is
// *trace.Tracer (or trace.Tracer).
func (p *problem) isTracerExpr(e ast.Expr) bool {
	var t types.Type
	if tv, ok := p.pass.TypesInfo.Types[e]; ok {
		t = tv.Type
	} else if id, ok := e.(*ast.Ident); ok {
		if obj := p.pass.TypesInfo.Defs[id]; obj != nil {
			t = obj.Type()
		} else if obj := p.pass.TypesInfo.Uses[id]; obj != nil {
			t = obj.Type()
		}
	}
	return astx.IsNamed(t, "internal/trace", "Tracer")
}

// isField reports whether the selector resolves to a struct field.
func (p *problem) isField(sel *ast.SelectorExpr) bool {
	s, ok := p.pass.TypesInfo.Selections[sel]
	return ok && s.Kind() == types.FieldVal
}
