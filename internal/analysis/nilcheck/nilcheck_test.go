package nilcheck_test

import (
	"testing"

	"burstmem/internal/analysis/analysistest"
	"burstmem/internal/analysis/nilcheck"
)

func TestNilcheck(t *testing.T) {
	analysistest.Run(t, nilcheck.Analyzer, "./testdata/src/nc")
}
