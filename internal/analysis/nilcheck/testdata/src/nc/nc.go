// Package nc is nilcheck test data: dereferences of possibly-nil
// *trace.Tracer values with and without dominating nil tests.
package nc

import "burstmem/internal/trace"

type host struct {
	tracer *trace.Tracer
}

func (h *host) Tracer() *trace.Tracer { return h.tracer }

// unguardedCall dereferences a constructor result without a guard.
func unguardedCall(events int) {
	tr := trace.New(events, 0)
	_ = tr.Len() // want `tr dereferences a possibly-nil \*trace\.Tracer`
}

// guardedCall is the canonical pattern: nil test dominates the use.
func guardedCall(events int) int {
	tr := trace.New(events, 0)
	if tr != nil {
		return tr.Len()
	}
	return 0
}

// earlyReturn guards by returning on the nil branch.
func earlyReturn(h *host) {
	tr := h.Tracer()
	if tr == nil {
		return
	}
	tr.Mark(0, trace.EvBurstForm, 0, 0, 0, 0, 0, 0)
}

// enabledGuard uses the documented nil-safe test method; the call itself
// is not a dereference and refines like `tr != nil`.
func enabledGuard(h *host) int {
	tr := h.Tracer()
	if tr.Enabled() {
		return tr.Len()
	}
	return 0
}

// shortCircuit guards inside a compound condition.
func shortCircuit(h *host) bool {
	tr := h.Tracer()
	return tr != nil && tr.Len() > 0
}

// fieldRead dereferences a struct field without a guard.
func fieldRead(h *host) {
	tr := h.tracer
	_ = tr.Dropped() // want `tr dereferences a possibly-nil \*trace\.Tracer`
}

// unbound dereferences a call result in place: can never be guarded.
func unbound(h *host) {
	h.Tracer().Forward(0, 0, 0) // want `dereference of unbound \*trace\.Tracer call result`
}

// hotEmit is exempt: hot-path functions rely on the nil-safe wrappers.
//
//burstmem:hotpath
func hotEmit(h *host, cycle uint64) {
	h.Tracer().Mark(cycle, trace.EvBurstForm, 0, 0, 0, 0, 0, 0)
}

// param is quiet: parameters are trusted — the caller guards.
func param(tr *trace.Tracer) int {
	return tr.Len()
}

// wrongBranch tests nil but dereferences on the nil edge.
func wrongBranch(h *host) {
	tr := h.Tracer()
	if tr == nil {
		_ = tr.Len() // want `tr dereferences a nil \*trace\.Tracer`
	}
}

// joinLoses: only one branch establishes non-nil, so after the join the
// tracer is possibly nil again.
func joinLoses(h *host, c bool) {
	tr := h.Tracer()
	if c {
		if tr == nil {
			tr = trace.New(4, 0)
		}
	}
	_ = tr.Len() // want `tr dereferences a possibly-nil \*trace\.Tracer`
}

// reassignClears: a guard stops covering the path once it is reassigned.
func reassignClears(h *host) {
	tr := h.Tracer()
	if tr == nil {
		return
	}
	_ = tr.Len() // guarded
	tr = h.Tracer()
	_ = tr.Len() // want `tr dereferences a possibly-nil \*trace\.Tracer`
}

// zeroValue: an uninitialised tracer variable is nil.
func zeroValue() {
	var tr *trace.Tracer
	_ = tr.Events() // want `tr dereferences a nil \*trace\.Tracer`
}

// nonNilLiteral: taking the address of a value is always non-nil.
func nonNilLiteral() int {
	var v trace.Tracer
	tr := &v
	return tr.Len()
}

// fieldPath: guards work on multi-segment access paths too.
func fieldPath(h *host) {
	if h.tracer != nil {
		_ = h.tracer.Len()
	}
	_ = h.tracer.Dropped() // want `h\.tracer dereferences a possibly-nil \*trace\.Tracer`
}

// loopGuardPersists: a guard before a loop covers uses inside it as long
// as nothing in the loop reassigns the path.
func loopGuardPersists(h *host, n int) int {
	tr := h.Tracer()
	if tr == nil {
		return 0
	}
	total := 0
	for i := 0; i < n; i++ {
		total += tr.Len()
	}
	return total
}

// suppressed documents an intentional unguarded use.
func suppressed(h *host) {
	tr := h.Tracer()
	//lint:ignore nilcheck exercised only in tests with a live tracer
	_ = tr.Len()
}
