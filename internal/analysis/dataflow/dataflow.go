// Package dataflow is a generic forward/backward dataflow solver over the
// control-flow graphs of internal/analysis/cfg.
//
// An analysis supplies a Problem: the lattice (Bottom, Join, Equal), the
// boundary fact at the entry (forward) or exit (backward) block, and a
// Transfer function mapping a block's input fact to its output fact. Solve
// iterates transfer functions to a fixed point with a worklist scheduled in
// reverse postorder (forward) or postorder (backward) — the orders that
// make reducible graphs converge in near-linear passes.
//
// A forward Problem may additionally implement BranchRefiner to sharpen
// the fact flowing along the true/false edges of a condition block —
// nilcheck uses this to model `if t != nil` dominance, and the cfg
// package's short-circuit decomposition guarantees every refined condition
// is atomic.
//
// Facts must be immutable values from the solver's point of view: Transfer
// and Refine return fresh (or unchanged) facts and never mutate their
// input in place, because a block's output fact is joined into several
// successors.
package dataflow

import (
	"go/ast"

	"burstmem/internal/analysis/cfg"
)

// Direction of a dataflow problem.
type Direction int

// Problem directions.
const (
	Forward Direction = iota
	Backward
)

// Problem describes one dataflow analysis over facts of type F.
type Problem[F any] interface {
	// Direction returns Forward or Backward.
	Direction() Direction
	// Boundary is the fact entering the graph: at Entry for forward
	// problems, at Exit for backward ones.
	Boundary() F
	// Bottom is the identity of Join: the initial fact of every other
	// block, and the fact unreachable blocks keep.
	Bottom() F
	// Join combines facts where paths merge. It must be commutative,
	// associative, idempotent, and satisfy Join(x, Bottom) = x.
	Join(a, b F) F
	// Equal reports whether two facts are equal; the fixed point is
	// reached when no block's input fact changes under Join.
	Equal(a, b F) bool
	// Transfer maps the fact at a block's start (forward: before the
	// first node; backward: after the last) across the whole block.
	Transfer(b *cfg.Block, in F) F
}

// BranchRefiner is an optional extension for forward problems: the fact
// leaving a KindCond block may be sharpened per edge. branch is true on
// the Succs[0] (condition holds) edge and false on Succs[1].
type BranchRefiner[F any] interface {
	Refine(cond ast.Expr, branch bool, out F) F
}

// Result holds the fixed-point facts per block. For forward problems In is
// the fact before the block and Out after it; for backward problems In is
// the fact after the block (flowing in from successors) and Out before it.
type Result[F any] struct {
	In, Out map[*cfg.Block]F
}

// Solve runs the worklist iteration to a fixed point and returns the facts.
func Solve[F any](g *cfg.CFG, p Problem[F]) Result[F] {
	res := Result[F]{
		In:  make(map[*cfg.Block]F, len(g.Blocks)),
		Out: make(map[*cfg.Block]F, len(g.Blocks)),
	}
	forward := p.Direction() == Forward
	refiner, _ := p.(BranchRefiner[F])

	// Iteration order: reverse postorder over the direction's edges.
	// For backward problems the postorder of the forward RPO works as the
	// analogous schedule.
	order := g.RPO()
	if !forward {
		rev := make([]*cfg.Block, len(order))
		for i, b := range order {
			rev[len(order)-1-i] = b
		}
		order = rev
	}
	prio := make(map[*cfg.Block]int, len(order))
	for i, b := range order {
		prio[b] = i
	}

	boundary := g.Entry
	if !forward {
		boundary = g.Exit
	}
	for _, b := range g.Blocks {
		res.In[b] = p.Bottom()
		res.Out[b] = p.Bottom()
	}
	res.In[boundary] = p.Boundary()

	// Worklist keyed by iteration-order priority.
	inList := make([]bool, len(g.Blocks))
	list := &prioQueue{prio: prio}
	push := func(b *cfg.Block) {
		if !inList[b.Index] {
			inList[b.Index] = true
			list.push(b)
		}
	}
	for _, b := range order {
		push(b)
	}

	preds := func(b *cfg.Block) []*cfg.Block {
		if forward {
			return b.Preds
		}
		return b.Succs
	}

	for list.len() > 0 {
		b := list.pop()
		inList[b.Index] = false

		// Recompute the input fact from the producing neighbours.
		in := p.Bottom()
		if b == boundary {
			in = p.Boundary()
		}
		for _, pr := range preds(b) {
			f := res.Out[pr]
			if forward && refiner != nil && pr.Cond != nil {
				// pr may list b in several successor slots (degenerate
				// conditions); join the refinement of each edge taken.
				for slot, s := range pr.Succs {
					if s == b {
						in = p.Join(in, refiner.Refine(pr.Cond, slot == 0, f))
					}
				}
				continue
			}
			in = p.Join(in, f)
		}
		out := p.Transfer(b, in)

		changed := !p.Equal(in, res.In[b]) || !p.Equal(out, res.Out[b])
		res.In[b] = in
		res.Out[b] = out
		if changed {
			if forward {
				for _, s := range b.Succs {
					push(s)
				}
			} else {
				for _, s := range b.Preds {
					push(s)
				}
			}
		}
	}
	return res
}

// prioQueue pops the block with the lowest iteration-order priority first.
// Sizes here are tens of blocks, so an ordered insert into a slice beats
// heap bookkeeping.
type prioQueue struct {
	prio map[*cfg.Block]int
	q    []*cfg.Block
}

func (pq *prioQueue) len() int { return len(pq.q) }

func (pq *prioQueue) push(b *cfg.Block) {
	p := pq.prio[b]
	i := 0
	for i < len(pq.q) && pq.prio[pq.q[i]] < p {
		i++
	}
	pq.q = append(pq.q, nil)
	copy(pq.q[i+1:], pq.q[i:])
	pq.q[i] = b
}

func (pq *prioQueue) pop() *cfg.Block {
	b := pq.q[0]
	pq.q = pq.q[1:]
	return b
}
