package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"burstmem/internal/analysis/cfg"
)

func buildCFG(t *testing.T, src, fn string) *cfg.CFG {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return cfg.New(fd)
		}
	}
	t.Fatalf("function %s not found", fn)
	return nil
}

// blockCalling finds the block containing a call of the named function.
func blockCalling(t *testing.T, g *cfg.CFG, name string) *cfg.Block {
	t.Helper()
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			found := false
			ast.Inspect(n, func(x ast.Node) bool {
				if c, ok := x.(*ast.CallExpr); ok {
					if id, ok := c.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
				return true
			})
			if found {
				return b
			}
		}
	}
	t.Fatalf("no block calls %s:\n%s", name, g)
	return nil
}

// --- fixture 1: forward nil-ness with branch refinement ------------------

type nilness uint8

const (
	nilUnknown nilness = iota // bottom / untracked
	nilYes
	nilNo
	nilMaybe
)

func joinNil(a, b nilness) nilness {
	switch {
	case a == nilUnknown:
		return b
	case b == nilUnknown:
		return a
	case a == b:
		return a
	}
	return nilMaybe
}

// nilFact maps variable names to nil-ness. nil maps mean "nothing known".
type nilFact map[string]nilness

type nilProblem struct{}

func (nilProblem) Direction() Direction { return Forward }
func (nilProblem) Boundary() nilFact    { return nilFact{} }
func (nilProblem) Bottom() nilFact      { return nil }

func (nilProblem) Join(a, b nilFact) nilFact {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := nilFact{}
	for k, v := range a {
		out[k] = joinNil(v, b[k])
	}
	for k, v := range b {
		if _, ok := a[k]; !ok {
			out[k] = joinNil(v, nilUnknown)
		}
	}
	return out
}

func (nilProblem) Equal(a, b nilFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func (nilProblem) Transfer(b *cfg.Block, in nilFact) nilFact {
	out := nilFact{}
	for k, v := range in {
		out[k] = v
	}
	for _, n := range b.Nodes {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			continue
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			continue
		}
		switch rhs := as.Rhs[0].(type) {
		case *ast.Ident:
			if rhs.Name == "nil" {
				out[id.Name] = nilYes
			} else {
				out[id.Name] = nilMaybe
			}
		case *ast.UnaryExpr:
			if rhs.Op == token.AND {
				out[id.Name] = nilNo
			}
		default:
			out[id.Name] = nilMaybe
		}
	}
	return out
}

// Refine implements BranchRefiner for `x != nil` / `x == nil` conditions.
func (nilProblem) Refine(cond ast.Expr, branch bool, out nilFact) nilFact {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return out
	}
	id, ok := be.X.(*ast.Ident)
	if !ok {
		return out
	}
	rhs, ok := be.Y.(*ast.Ident)
	if !ok || rhs.Name != "nil" {
		return out
	}
	isNil := (be.Op == token.EQL) == branch
	ref := nilFact{}
	for k, v := range out {
		ref[k] = v
	}
	if isNil {
		ref[id.Name] = nilYes
	} else {
		ref[id.Name] = nilNo
	}
	return ref
}

// TestSolverShortCircuitRefinement checks that the refinement of a
// decomposed `a != nil && b != nil` condition reaches the guarded block
// with both operands known non-nil.
func TestSolverShortCircuitRefinement(t *testing.T) {
	g := buildCFG(t, `
func f(x, y int) {
	p = nil
	q = nil
	if c {
		p = &x
	}
	if c2 {
		q = &y
	}
	if p != nil && q != nil {
		use(p, q)
	}
	after(p)
}`, "f")
	res := Solve[nilFact](g, nilProblem{})

	useB := blockCalling(t, g, "use")
	in := res.In[useB]
	if in["p"] != nilNo || in["q"] != nilNo {
		t.Errorf("guarded block sees p=%v q=%v, want both non-nil (refined)", in["p"], in["q"])
	}
	afterB := blockCalling(t, g, "after")
	if got := res.In[afterB]["p"]; got != nilMaybe {
		t.Errorf("after join p=%v, want maybe-nil", got)
	}
}

// --- fixture 2: may/must call-reachability ------------------------------

// callFact is a set of called function names. For the must-variant, the
// nil map is the lattice identity ("universe": every call assumed, as on an
// unreached path).
type callFact map[string]bool

type callProblem struct {
	must bool // join by intersection instead of union
}

func (callProblem) Direction() Direction { return Forward }
func (callProblem) Boundary() callFact   { return callFact{} }
func (p callProblem) Bottom() callFact {
	if p.must {
		return nil // universe: identity of intersection
	}
	return callFact{}
}

func (p callProblem) Join(a, b callFact) callFact {
	if p.must {
		if a == nil {
			return b
		}
		if b == nil {
			return a
		}
		out := callFact{}
		for k := range a {
			if b[k] {
				out[k] = true
			}
		}
		return out
	}
	out := callFact{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func (callProblem) Equal(a, b callFact) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func (callProblem) Transfer(b *cfg.Block, in callFact) callFact {
	if in == nil {
		return nil // unreachable stays unreachable
	}
	out := callFact{}
	for k := range in {
		out[k] = true
	}
	for _, n := range b.Nodes {
		ast.Inspect(n, func(x ast.Node) bool {
			if c, ok := x.(*ast.CallExpr); ok {
				out[types.ExprString(c.Fun)] = true
			}
			return true
		})
	}
	return out
}

// TestSolverDeferEdges checks that facts from every return flow through
// the deferred-call chain into Exit: must-analysis sees the deferred call
// on all paths.
func TestSolverDeferEdges(t *testing.T) {
	g := buildCFG(t, `
func f(c bool) {
	lock()
	defer unlock()
	if c {
		return
	}
	work()
}`, "f")
	res := Solve[callFact](g, callProblem{must: true})
	exit := res.In[g.Exit]
	if !exit["lock"] || !exit["unlock"] {
		t.Errorf("exit must-calls = %v, want lock and unlock on every path", exit)
	}
	if exit["work"] {
		t.Errorf("work() is on the early-return path yet appears in the must set")
	}
}

// TestSolverSelectJoin checks the join over select-clause successors: only
// calls common to every clause survive a must-join.
func TestSolverSelectJoin(t *testing.T) {
	g := buildCFG(t, `
func f(a, b chan int) {
	select {
	case <-a:
		both()
		onlyA()
	case <-b:
		both()
	}
	done()
}`, "f")
	res := Solve[callFact](g, callProblem{must: true})
	at := res.In[blockCalling(t, g, "done")]
	if !at["both"] {
		t.Errorf("call on every select clause missing from must set: %v", at)
	}
	if at["onlyA"] {
		t.Errorf("single-clause call survived the must join: %v", at)
	}
}

// TestSolverRangeFixpoint checks convergence over the range back edge and
// that may-facts generated in the loop body reach the loop exit.
func TestSolverRangeFixpoint(t *testing.T) {
	g := buildCFG(t, `
func f(xs []int) {
	pre()
	for range xs {
		inLoop()
	}
	post()
}`, "f")
	res := Solve[callFact](g, callProblem{must: false})
	at := res.In[blockCalling(t, g, "post")]
	if !at["pre"] || !at["inLoop"] {
		t.Errorf("may-set after range loop = %v, want pre and inLoop", at)
	}
	// Must-variant: the zero-iteration path skips the body.
	resM := Solve[callFact](g, callProblem{must: true})
	atM := resM.In[blockCalling(t, g, "post")]
	if atM["inLoop"] {
		t.Errorf("loop body call in must-set despite zero-iteration path: %v", atM)
	}
	if !atM["pre"] {
		t.Errorf("straight-line call missing from must-set: %v", atM)
	}
}

// --- fixture 3: backward liveness ---------------------------------------

type liveFact map[string]bool

type liveProblem struct{}

func (liveProblem) Direction() Direction { return Backward }
func (liveProblem) Boundary() liveFact   { return liveFact{} }
func (liveProblem) Bottom() liveFact     { return liveFact{} }

func (liveProblem) Join(a, b liveFact) liveFact {
	out := liveFact{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func (liveProblem) Equal(a, b liveFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// Transfer walks the block backward: assignments kill, uses gen.
func (liveProblem) Transfer(b *cfg.Block, in liveFact) liveFact {
	out := liveFact{}
	for k := range in {
		out[k] = true
	}
	for i := len(b.Nodes) - 1; i >= 0; i-- {
		switch n := b.Nodes[i].(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					delete(out, id.Name)
				}
			}
			for _, r := range n.Rhs {
				genUses(r, out)
			}
		default:
			genUses(n, out)
		}
	}
	return out
}

func genUses(n ast.Node, out liveFact) {
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && id.Obj == nil {
			out[id.Name] = true
		}
		return true
	})
}

func TestSolverBackwardLiveness(t *testing.T) {
	g := buildCFG(t, `
func f() {
	x = compute()
	if c {
		sink(x)
	}
	x = other()
	if c2 {
		sink2(x)
	}
}`, "f")
	res := Solve[liveFact](g, liveProblem{})
	// x is live right after its first assignment (the sink(x) branch) —
	// for a backward problem In[b] is the fact at the block's end.
	first := blockCalling(t, g, "compute")
	if !res.In[first]["x"] {
		t.Errorf("x not live after first assignment: %v", res.In[first])
	}
	// The first assignment kills x, so before its block x is dead.
	if res.Out[first]["x"] {
		t.Errorf("x live before its first assignment: %v", res.Out[first])
	}
	// The second assignment's x is kept live by the sink2 branch.
	second := blockCalling(t, g, "other")
	if !res.In[second]["x"] {
		t.Errorf("x not live after second assignment: %v", res.In[second])
	}
}
