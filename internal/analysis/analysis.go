// Package analysis is a dependency-free reimplementation of the core of
// golang.org/x/tools/go/analysis, sized for this repository's needs: an
// Analyzer runs over one type-checked package at a time and reports
// position-stamped diagnostics.
//
// The framework exists because the simulator's performance and correctness
// properties — deterministic iteration, an allocation-free scheduling hot
// path, exhaustive handling of protocol enums — are invariants of the code
// itself, not of any one test input. cmd/burstlint wires the analyzers in
// this tree (detlint, hotalloc, exhaustive) into one multichecker; see
// DESIGN.md "Verification & static analysis".
//
// Suppression: a diagnostic is suppressed by a comment of the form
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line immediately above it. The reason is
// mandatory — an ignore without one does not suppress.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Analyzer describes one static check. Exactly one of Run and RunProgram
// is set: Run analyzers see one package at a time, RunProgram analyzers
// see the whole loaded program at once (the interprocedural tier —
// callgraph-backed passes like sharestate and detflow need every function
// body before they can say anything about any of them).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:ignore
	// comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run executes the check over one package, reporting findings through
	// pass.Report.
	Run func(pass *Pass)
	// RunProgram executes the check once over all loaded packages.
	RunProgram func(pass *ProgramPass)
}

// Pass is the interface between one Analyzer run and one loaded package.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Chain is the evidence trail behind interprocedural findings — a
	// call path, an alias chain — one hop per element, outermost first.
	// The text renderer leaves it to the message; burstlint -json carries
	// it as a structured field.
	Chain []string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Program is the whole loaded program: every analyzable package plus a
// keyed result cache shared by the interprocedural analyzers, so the call
// graph and effect summaries are built once per process no matter how many
// passes consume them.
type Program struct {
	Fset *token.FileSet
	// Pkgs are the cleanly loaded packages, in load order.
	Pkgs []*Package
	// Broken are the packages with load errors; they are excluded from
	// analysis (their ASTs and type info may be partial) and their errors
	// are reported instead.
	Broken []*Package

	cache map[string]any
	// Timings records, per cache key, how long the build function took —
	// scripts/bench.sh charts the interprocedural share of burstlint's
	// wall time from this.
	Timings map[string]time.Duration
}

// NewProgram partitions loaded packages into analyzable and broken. All
// packages from one Load share one FileSet; a Program from zero packages
// has a nil Fset.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{cache: map[string]any{}, Timings: map[string]time.Duration{}}
	for _, pkg := range pkgs {
		p.Fset = pkg.Fset
		if len(pkg.Errors) > 0 {
			p.Broken = append(p.Broken, pkg)
			continue
		}
		p.Pkgs = append(p.Pkgs, pkg)
	}
	return p
}

// Cached returns the value under key, invoking build at most once per
// Program. This is the summary-cache: callgraph + summary construction is
// the expensive half of the interprocedural tier, and sharestate, detflow
// and goroutcheck all read the same build through this choke point.
func (p *Program) Cached(key string, build func() any) any {
	if v, ok := p.cache[key]; ok {
		return v
	}
	start := time.Now()
	v := build()
	p.Timings[key] = time.Since(start)
	p.cache[key] = v
	return v
}

// ProgramPass is the interface between one RunProgram analyzer and the
// whole program.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportChainf records a diagnostic carrying an evidence chain.
func (p *ProgramPass) ReportChainf(pos token.Pos, chain []string, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// Run executes the analyzers over the loaded packages and returns the
// surviving (non-suppressed) diagnostics sorted by position. A package
// that failed to load contributes its load errors as diagnostics and is
// not analyzed — its ASTs and type information may be partial, and every
// analyzer here assumes both are whole.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return NewProgram(pkgs).Run(analyzers)
}

// Run executes the analyzers — the per-package tier first, then the
// whole-program tier — and returns surviving diagnostics sorted by
// position. Callers that need the Program afterwards (burstlint's -timing
// flag reads Timings) construct it explicitly via NewProgram.
func (prog *Program) Run(analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range prog.Broken {
		out = append(out, pkg.Errors...)
	}
	ign := ignoreSet{}
	for _, pkg := range prog.Pkgs {
		collectIgnores(pkg, ign)
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			a.Run(pass)
			for _, d := range pass.diags {
				if !ign.suppressed(a.Name, d.Pos) {
					out = append(out, d)
				}
			}
		}
	}
	if len(prog.Pkgs) > 0 {
		for _, a := range analyzers {
			if a.RunProgram == nil {
				continue
			}
			pass := &ProgramPass{Analyzer: a, Prog: prog}
			a.RunProgram(pass)
			for _, d := range pass.diags {
				if !ign.suppressed(a.Name, d.Pos) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// ignoreKey locates one //lint:ignore directive: which analyzer it silences
// and the line it sits on (it covers that line and the next).
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

type ignoreSet map[ignoreKey]bool

// collectIgnores scans a package's comments for //lint:ignore directives,
// adding them to set (one merged set serves both analyzer tiers: a program
// analyzer's diagnostic may land in any package).
func collectIgnores(pkg *Package, set ignoreSet) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					continue // reason is mandatory
				}
				pos := pkg.Fset.Position(c.Pos())
				set[ignoreKey{pos.Filename, pos.Line, fields[0]}] = true
			}
		}
	}
}

// suppressed reports whether a directive on the diagnostic's line or the
// line above covers it.
func (s ignoreSet) suppressed(analyzer string, pos token.Position) bool {
	return s[ignoreKey{pos.Filename, pos.Line, analyzer}] ||
		s[ignoreKey{pos.Filename, pos.Line - 1, analyzer}]
}
