// Package analysis is a dependency-free reimplementation of the core of
// golang.org/x/tools/go/analysis, sized for this repository's needs: an
// Analyzer runs over one type-checked package at a time and reports
// position-stamped diagnostics.
//
// The framework exists because the simulator's performance and correctness
// properties — deterministic iteration, an allocation-free scheduling hot
// path, exhaustive handling of protocol enums — are invariants of the code
// itself, not of any one test input. cmd/burstlint wires the analyzers in
// this tree (detlint, hotalloc, exhaustive) into one multichecker; see
// DESIGN.md "Verification & static analysis".
//
// Suppression: a diagnostic is suppressed by a comment of the form
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line immediately above it. The reason is
// mandatory — an ignore without one does not suppress.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:ignore
	// comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run executes the check over one package, reporting findings through
	// pass.Report.
	Run func(pass *Pass)
}

// Pass is the interface between one Analyzer run and one loaded package.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over the loaded packages and returns the
// surviving (non-suppressed) diagnostics sorted by position. A package
// that failed to load contributes its load errors as diagnostics and is
// not analyzed — its ASTs and type information may be partial, and every
// analyzer here assumes both are whole.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			out = append(out, pkg.Errors...)
			continue
		}
		ign := collectIgnores(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			a.Run(pass)
			for _, d := range pass.diags {
				if !ign.suppressed(a.Name, d.Pos) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// ignoreKey locates one //lint:ignore directive: which analyzer it silences
// and the line it sits on (it covers that line and the next).
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

type ignoreSet map[ignoreKey]bool

// collectIgnores scans a package's comments for //lint:ignore directives.
func collectIgnores(pkg *Package) ignoreSet {
	set := ignoreSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					continue // reason is mandatory
				}
				pos := pkg.Fset.Position(c.Pos())
				set[ignoreKey{pos.Filename, pos.Line, fields[0]}] = true
			}
		}
	}
	return set
}

// suppressed reports whether a directive on the diagnostic's line or the
// line above covers it.
func (s ignoreSet) suppressed(analyzer string, pos token.Position) bool {
	return s[ignoreKey{pos.Filename, pos.Line, analyzer}] ||
		s[ignoreKey{pos.Filename, pos.Line - 1, analyzer}]
}
