// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies, sized for this repository's dataflow analyzers
// (internal/analysis/dataflow and the nilcheck/errflow/idxrange/lockcheck
// passes built on it).
//
// The graph is a set of basic blocks. Each block holds the statements and
// expressions evaluated in order; a block that ends in a branch carries the
// *atomic* branch condition in Cond, with Succs[0] the true edge and
// Succs[1] the false edge. Compound conditions are decomposed: `if a && b`
// produces one block testing a and a second testing b, so a path-sensitive
// analysis (nilcheck's nil-test refinement) sees every short-circuit edge
// individually. `!x` swaps the outgoing edges rather than producing a
// synthetic condition.
//
// Modeled control constructs: if/else (with short-circuit decomposition),
// for (all three clauses), range, switch (expression and type switches,
// including fallthrough), select, labeled break/continue, goto, return,
// and panic/os.Exit terminators.
//
// Deferred calls get explicit edges: every defer statement's call is
// appended to a chain of KindDefer blocks that runs — in LIFO order —
// between each return (or the body's fall-off-the-end) and the Exit block.
// The chain deliberately has no bypass edges: a conditional defer is
// treated as always executed, which is the useful convention for lockcheck
// (`if locked { defer mu.Unlock() }` patterns are out of scope). Panic
// terminators get no successor edges at all: facts on a panicking path
// never reach Exit, so exit-state analyses only see orderly returns.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Kind classifies a block for analyses and tests.
type Kind uint8

// Block kinds.
const (
	KindBody   Kind = iota // plain straight-line code
	KindEntry              // function entry (always Blocks[0])
	KindExit               // function exit (always Blocks[1])
	KindCond               // ends in an atomic branch condition
	KindRange              // range-loop head: Succs[0] iterates, Succs[1] exits
	KindSwitch             // switch head: one successor per case clause
	KindSelect             // select head: one successor per comm clause
	KindDefer              // one deferred call, on the exit chain
	KindPanic              // ends in panic/os.Exit: no successors
)

func (k Kind) String() string {
	switch k {
	case KindBody:
		return "body"
	case KindEntry:
		return "entry"
	case KindExit:
		return "exit"
	case KindCond:
		return "cond"
	case KindRange:
		return "range"
	case KindSwitch:
		return "switch"
	case KindSelect:
		return "select"
	case KindDefer:
		return "defer"
	case KindPanic:
		return "panic"
	}
	return "?"
}

// Block is one basic block.
type Block struct {
	Index int
	Kind  Kind

	// Nodes are the statements/expressions evaluated in this block, in
	// order. Branch conditions appear both as the last Node and in Cond;
	// a KindDefer block's single node is the deferred *ast.CallExpr.
	Nodes []ast.Node

	// Cond is the atomic branch condition of a KindCond block (never an
	// &&, || or ! expression — those are decomposed into separate blocks
	// and edge swaps). Succs[0] is taken when Cond holds, Succs[1] when
	// it does not.
	Cond ast.Expr

	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function.
type CFG struct {
	// Fn is the analyzed *ast.FuncDecl or *ast.FuncLit.
	Fn ast.Node
	// Blocks in creation order; Blocks[0] is Entry, Blocks[1] is Exit.
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// New builds the CFG for fn's body. fn must be an *ast.FuncDecl or
// *ast.FuncLit with a non-nil body.
func New(fn ast.Node) *CFG {
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	default:
		panic(fmt.Sprintf("cfg.New: not a function: %T", fn))
	}
	if body == nil {
		panic("cfg.New: function has no body")
	}
	b := &builder{g: &CFG{Fn: fn}, labels: map[string]*labelInfo{}}
	b.g.Entry = b.newBlock(KindEntry)
	b.g.Exit = b.newBlock(KindExit)
	b.cur = b.newBlock(KindBody)
	b.edge(b.g.Entry, b.cur)
	b.stmtList(body.List)
	// Fall off the end of the body: an implicit return.
	b.exitEdge(b.cur)
	b.buildDeferChain()
	b.prune()
	return b.g
}

// RPO returns the blocks in reverse postorder from Entry over Succs edges:
// the classic iteration order for forward dataflow problems. Unreachable
// blocks (dead code after return) are appended at the end in index order so
// every block receives a position.
func (g *CFG) RPO() []*Block {
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var dfs func(*Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	out := make([]*Block, 0, len(g.Blocks))
	for i := len(post) - 1; i >= 0; i-- {
		out = append(out, post[i])
	}
	for _, b := range g.Blocks {
		if !seen[b.Index] {
			out = append(out, b)
		}
	}
	return out
}

// String renders the graph compactly for tests and debugging:
// one line per block, "i kind -> succ,succ".
func (g *CFG) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "%d %s ->", b.Index, b.Kind)
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " %d", s.Index)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// labelInfo tracks the targets a label can be branched to.
type labelInfo struct {
	breakTo    *Block // after the labeled loop/switch/select
	continueTo *Block // loop head/post of the labeled loop
	gotoTo     *Block // start of the labeled statement
	pendingGo  []*Block
}

type builder struct {
	g   *CFG
	cur *Block

	// break/continue target stacks (innermost last).
	breaks    []*Block
	continues []*Block
	labels    map[string]*labelInfo

	// defers, in lexical encounter order.
	defers []*ast.CallExpr

	// fallthrough target for the switch clause being built.
	fallTo *Block

	// pendingExit collects blocks that exit the function (returns and
	// the body's fall-off end); they are wired through the defer chain
	// once the whole body is built.
	pendingExit []*Block

	// labeledStmt names the label attached to the next loop/switch
	// statement, so `L: for { break L }` resolves.
	labeledStmt string
}

func (b *builder) newBlock(k Kind) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: k}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// exitEdge marks a block as exiting the function; buildDeferChain later
// wires it through the deferred calls to Exit.
func (b *builder) exitEdge(from *Block) {
	if from == nil {
		return
	}
	b.pendingExit = append(b.pendingExit, from)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// terminated reports whether the current block already branched away.
func (b *builder) startNew(k Kind) *Block {
	nb := b.newBlock(k)
	b.cur = nb
	return nb
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		thenB := b.newBlock(KindBody)
		elseB := b.newBlock(KindBody)
		after := b.newBlock(KindBody)
		b.cond(s.Cond, thenB, elseB)
		b.cur = thenB
		b.stmt(s.Body)
		b.edge(b.cur, after)
		b.cur = elseB
		if s.Else != nil {
			b.stmt(s.Else)
		}
		b.edge(b.cur, after)
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock(KindBody)
		body := b.newBlock(KindBody)
		post := b.newBlock(KindBody)
		after := b.newBlock(KindBody)
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.cond(s.Cond, body, after)
		} else {
			b.edge(b.cur, body)
		}
		b.pushLoop(after, post, s)
		b.cur = body
		b.stmt(s.Body)
		b.popLoop()
		b.edge(b.cur, post)
		b.cur = post
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.edge(b.cur, head)
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock(KindRange)
		body := b.newBlock(KindBody)
		after := b.newBlock(KindBody)
		// Carry the range clause without its body: analyses walking
		// head.Nodes must not see the loop body's statements (those live
		// in the body block).
		head.Nodes = append(head.Nodes, &ast.RangeStmt{
			For: s.For, Key: s.Key, Value: s.Value, TokPos: s.TokPos,
			Tok: s.Tok, Range: s.Range, X: s.X,
			Body: &ast.BlockStmt{Lbrace: s.Body.Lbrace, Rbrace: s.Body.Lbrace},
		})
		b.edge(b.cur, head)
		b.edge(head, body)  // Succs[0]: iterate
		b.edge(head, after) // Succs[1]: done
		b.pushLoop(after, head, s)
		b.cur = body
		b.stmt(s.Body)
		b.popLoop()
		b.edge(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Tag)
		}
		b.switchClauses(s.Body.List, s.Tag == nil, s)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Assign)
		b.switchClauses(s.Body.List, false, s)

	case *ast.SelectStmt:
		head := b.cur
		head.Kind = KindSelect
		after := b.newBlock(KindBody)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			clause := b.newBlock(KindBody)
			b.edge(head, clause)
			b.cur = clause
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, after)
		}
		// A select without a default blocks until a comm fires: every
		// successor is a clause. (With zero clauses it blocks forever.)
		b.cur = after

	case *ast.LabeledStmt:
		li := b.label(s.Label.Name)
		start := b.newBlock(KindBody)
		b.edge(b.cur, start)
		li.gotoTo = start
		for _, p := range li.pendingGo {
			b.edge(p, start)
		}
		li.pendingGo = nil
		b.cur = start
		b.labeledStmt = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.BranchStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				b.edge(b.cur, b.label(s.Label.Name).breakTo)
			} else if n := len(b.breaks); n > 0 {
				b.edge(b.cur, b.breaks[n-1])
			}
			b.startNew(KindBody)
		case token.CONTINUE:
			if s.Label != nil {
				b.edge(b.cur, b.label(s.Label.Name).continueTo)
			} else if n := len(b.continues); n > 0 {
				b.edge(b.cur, b.continues[n-1])
			}
			b.startNew(KindBody)
		case token.GOTO:
			li := b.label(s.Label.Name)
			if li.gotoTo != nil {
				b.edge(b.cur, li.gotoTo)
			} else {
				li.pendingGo = append(li.pendingGo, b.cur)
			}
			b.startNew(KindBody)
		case token.FALLTHROUGH:
			b.edge(b.cur, b.fallTo)
			b.startNew(KindBody)
		}

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.exitEdge(b.cur)
		b.startNew(KindBody)

	case *ast.DeferStmt:
		// Argument expressions evaluate here; the call itself runs on
		// the exit chain.
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.defers = append(b.defers, s.Call)

	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if isTerminalCall(s.X) {
			b.cur.Kind = KindPanic
			b.startNew(KindBody)
		}

	default:
		// Assignments, declarations, go/send/inc-dec statements and
		// anything else without intraprocedural control flow.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// switchClauses builds the clause blocks of a switch or type switch.
// When condChain is true (an untagged switch), single-expression case
// clauses become KindCond blocks chained by their guard expressions, so
// `switch { case x != nil: ... }` refines like an if/else ladder.
func (b *builder) switchClauses(clauses []ast.Stmt, condChain bool, sw ast.Stmt) {
	after := b.newBlock(KindBody)
	head := b.cur
	if !condChain {
		head.Kind = KindSwitch
	}

	// First pass: create a body block per clause so fallthrough can
	// target the following clause.
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		bodies[i] = b.newBlock(KindBody)
		if len(c.(*ast.CaseClause).List) == 0 {
			hasDefault = true
		}
	}

	if condChain {
		// Chain of guard tests; default (or fall-off) goes to after.
		cur := head
		for i, c := range clauses {
			cc := c.(*ast.CaseClause)
			if len(cc.List) == 0 {
				continue // default: wired below
			}
			next := b.newBlock(KindBody)
			b.cur = cur
			if len(cc.List) == 1 {
				b.cond(cc.List[0], bodies[i], next)
			} else {
				// `case a, b:` — either guard may fire.
				for _, e := range cc.List {
					mid := b.newBlock(KindBody)
					b.cond(e, bodies[i], mid)
					b.cur = mid
				}
				b.edge(b.cur, next)
			}
			cur = next
		}
		// The chain's fall-through end: default clause or after.
		target := after
		for i, c := range clauses {
			if len(c.(*ast.CaseClause).List) == 0 {
				target = bodies[i]
			}
		}
		b.edge(cur, target)
	} else {
		for i, c := range clauses {
			cc := c.(*ast.CaseClause)
			// Case guard expressions only — the clause body statements
			// are added by the fill pass below.
			for _, e := range cc.List {
				bodies[i].Nodes = append(bodies[i].Nodes, e)
			}
			b.edge(head, bodies[i])
		}
		if !hasDefault {
			b.edge(head, after)
		}
	}

	// Second pass: fill clause bodies.
	b.pushBreak(after, sw)
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.cur = bodies[i]
		if i+1 < len(clauses) {
			b.fallTo = bodies[i+1]
		} else {
			b.fallTo = after
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.fallTo = nil
	b.popBreak()
	b.cur = after
}

// cond terminates the current block(s) with the decomposed condition e:
// control reaches t when e holds and f when it does not. Each atomic
// (non-&&/||/!) subexpression gets its own KindCond block.
func (b *builder) cond(e ast.Expr, t, f *Block) {
	switch ex := e.(type) {
	case *ast.ParenExpr:
		b.cond(ex.X, t, f)
		return
	case *ast.UnaryExpr:
		if ex.Op == token.NOT {
			b.cond(ex.X, f, t)
			return
		}
	case *ast.BinaryExpr:
		switch ex.Op {
		case token.LAND:
			mid := b.newBlock(KindBody)
			b.cond(ex.X, mid, f)
			b.cur = mid
			b.cond(ex.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock(KindBody)
			b.cond(ex.X, t, mid)
			b.cur = mid
			b.cond(ex.Y, t, f)
			return
		}
	}
	b.cur.Kind = KindCond
	b.cur.Cond = e
	b.cur.Nodes = append(b.cur.Nodes, e)
	b.edge(b.cur, t) // Succs[0]: condition holds
	b.edge(b.cur, f) // Succs[1]: condition fails
}

// --- label / loop-stack plumbing ----------------------------------------

func (b *builder) label(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	return li
}

// labeledStmt is the label naming the next loop/switch statement, if any.
func (b *builder) pushLoop(brk, cont *Block, s ast.Stmt) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	if b.labeledStmt != "" {
		li := b.label(b.labeledStmt)
		li.breakTo = brk
		li.continueTo = cont
		b.labeledStmt = ""
	}
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *builder) pushBreak(brk *Block, s ast.Stmt) {
	b.breaks = append(b.breaks, brk)
	if b.labeledStmt != "" {
		b.label(b.labeledStmt).breakTo = brk
		b.labeledStmt = ""
	}
}

func (b *builder) popBreak() {
	b.breaks = b.breaks[:len(b.breaks)-1]
}

// buildDeferChain wires every pending exit block through the deferred
// calls (LIFO) to Exit.
func (b *builder) buildDeferChain() {
	target := b.g.Exit
	for _, call := range b.defers { // chain built exit-backwards => LIFO
		d := b.newBlock(KindDefer)
		d.Nodes = append(d.Nodes, call)
		b.edge(d, target)
		target = d
	}
	for _, from := range b.pendingExit {
		b.edge(from, target)
	}
}

// prune drops empty unreachable scratch blocks (created after returns and
// branches) from the block list, renumbering the rest. Entry/Exit stay.
func (b *builder) prune() {
	keep := b.g.Blocks[:0]
	for _, blk := range b.g.Blocks {
		if blk != b.g.Entry && blk != b.g.Exit &&
			len(blk.Preds) == 0 && len(blk.Nodes) == 0 && len(blk.Succs) <= 1 {
			// Disconnect from any successor's pred list.
			for _, s := range blk.Succs {
				s.Preds = removeBlock(s.Preds, blk)
			}
			continue
		}
		keep = append(keep, blk)
	}
	for i, blk := range keep {
		blk.Index = i
	}
	b.g.Blocks = keep
}

func removeBlock(list []*Block, b *Block) []*Block {
	out := list[:0]
	for _, x := range list {
		if x != b {
			out = append(out, x)
		}
	}
	return out
}

// isTerminalCall reports whether the expression is a call that never
// returns: panic(...), os.Exit(...), or a method named Fatal/Fatalf.
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok && id.Name == "os" && fun.Sel.Name == "Exit" {
			return true
		}
		return fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf"
	}
	return false
}
