package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// build parses src (the body of `func f(...)` declarations) and returns the
// CFG of the named function.
func build(t *testing.T, src, fn string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return New(fd)
		}
	}
	t.Fatalf("function %s not found", fn)
	return nil
}

// byKind collects the blocks of one kind.
func byKind(g *CFG, k Kind) []*Block {
	var out []*Block
	for _, b := range g.Blocks {
		if b.Kind == k {
			out = append(out, b)
		}
	}
	return out
}

// condOf finds the KindCond block whose condition renders as s.
func condOf(t *testing.T, g *CFG, s string) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		if b.Kind == KindCond && b.Cond != nil && types.ExprString(b.Cond) == s {
			return b
		}
	}
	t.Fatalf("no cond block %q in\n%s", s, g)
	return nil
}

func hasEdge(from, to *Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

// reaches reports whether to is reachable from from over Succs edges.
func reaches(from, to *Block) bool {
	seen := map[*Block]bool{}
	var dfs func(*Block) bool
	dfs = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}

func TestCFGShortCircuitAnd(t *testing.T) {
	g := build(t, `
func f(a, b bool) int {
	if a && b {
		return 1
	}
	return 0
}`, "f")
	ca := condOf(t, g, "a")
	cb := condOf(t, g, "b")
	// a's true edge must lead (possibly via an empty block) to testing b;
	// a's false edge must skip b entirely.
	if !reaches(ca.Succs[0], cb) {
		t.Errorf("true edge of a does not reach cond b:\n%s", g)
	}
	if reaches(ca.Succs[1], cb) {
		t.Errorf("false edge of a short-circuits through b:\n%s", g)
	}
	// Both false edges land on the same join (the `return 0` path).
	if !reaches(cb.Succs[1], g.Exit) || !reaches(ca.Succs[1], g.Exit) {
		t.Errorf("false edges do not reach exit:\n%s", g)
	}
}

func TestCFGShortCircuitOrNot(t *testing.T) {
	g := build(t, `
func f(a, b bool) int {
	if !a || b {
		return 1
	}
	return 0
}`, "f")
	ca := condOf(t, g, "a")
	cb := condOf(t, g, "b")
	// `!a` swaps edges: the *false* edge of a (i.e. !a true) must reach
	// the then-branch without testing b; the true edge tests b.
	if reaches(ca.Succs[1], cb) {
		t.Errorf("!a true edge still tests b:\n%s", g)
	}
	if !reaches(ca.Succs[0], cb) {
		t.Errorf("!a false edge does not test b:\n%s", g)
	}
}

func TestCFGForLoop(t *testing.T) {
	g := build(t, `
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if s > 10 {
			break
		}
		if i == 3 {
			continue
		}
		s += i
	}
	return s
}`, "f")
	head := condOf(t, g, "i < n")
	// Body must loop back to the head (via the post block) and break must
	// bypass it.
	if !reaches(head.Succs[0], head) {
		t.Errorf("loop body has no back edge:\n%s", g)
	}
	brk := condOf(t, g, "s > 10")
	if !reaches(brk.Succs[0], g.Exit) {
		t.Errorf("break does not reach exit:\n%s", g)
	}
	cont := condOf(t, g, "i == 3")
	if !reaches(cont.Succs[0], head) {
		t.Errorf("continue does not return to the loop head:\n%s", g)
	}
}

func TestCFGRange(t *testing.T) {
	g := build(t, `
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}`, "f")
	heads := byKind(g, KindRange)
	if len(heads) != 1 {
		t.Fatalf("got %d range blocks, want 1:\n%s", len(heads), g)
	}
	h := heads[0]
	if len(h.Succs) != 2 {
		t.Fatalf("range head has %d succs, want 2 (iterate, done):\n%s", len(h.Succs), g)
	}
	body, done := h.Succs[0], h.Succs[1]
	if !hasEdge(body, h) {
		t.Errorf("range body lacks the back edge:\n%s", g)
	}
	if !reaches(done, g.Exit) || reaches(done, h) {
		t.Errorf("range done edge wrong:\n%s", g)
	}
	// The RangeStmt itself must be visible to transfer functions.
	found := false
	for _, n := range h.Nodes {
		if _, ok := n.(*ast.RangeStmt); ok {
			found = true
		}
	}
	if !found {
		t.Errorf("range head does not carry the RangeStmt node")
	}
}

func TestCFGSelect(t *testing.T) {
	g := build(t, `
func f(a, b chan int) int {
	select {
	case x := <-a:
		return x
	case <-b:
		return 1
	}
}`, "f")
	heads := byKind(g, KindSelect)
	if len(heads) != 1 {
		t.Fatalf("got %d select blocks, want 1:\n%s", len(heads), g)
	}
	if n := len(heads[0].Succs); n != 2 {
		t.Fatalf("select head has %d succs, want 2 (one per clause):\n%s", n, g)
	}

	// With a default clause the head gains a third successor and no
	// direct edge to the join: control always enters some clause.
	g2 := build(t, `
func g(a chan int) int {
	n := 0
	select {
	case <-a:
		n = 1
	default:
		n = 2
	}
	return n
}`, "g")
	h2 := byKind(g2, KindSelect)[0]
	if n := len(h2.Succs); n != 2 {
		t.Fatalf("select-with-default head has %d succs, want 2:\n%s", n, g2)
	}
}

func TestCFGDeferEdges(t *testing.T) {
	g := build(t, `
func f(c bool) int {
	defer first()
	if c {
		return 1
	}
	defer second()
	return 0
}`, "f")
	defers := byKind(g, KindDefer)
	if len(defers) != 2 {
		t.Fatalf("got %d defer blocks, want 2:\n%s", len(defers), g)
	}
	// LIFO: the block adjacent to Exit runs the lexically-first defer.
	var exitSide *Block
	for _, d := range defers {
		if hasEdge(d, g.Exit) {
			exitSide = d
		}
	}
	if exitSide == nil {
		t.Fatalf("no defer block feeds exit:\n%s", g)
	}
	call := exitSide.Nodes[0].(*ast.CallExpr)
	if name := types.ExprString(call.Fun); name != "first" {
		t.Errorf("defer adjacent to exit runs %s, want first (LIFO)", name)
	}
	// Every return must pass through the defer chain, not jump straight
	// to Exit.
	for _, p := range g.Exit.Preds {
		if p.Kind != KindDefer {
			t.Errorf("exit has non-defer predecessor (kind %s):\n%s", p.Kind, g)
		}
	}
}

func TestCFGSwitchTagAndFallthrough(t *testing.T) {
	g := build(t, `
func f(x int) int {
	n := 0
	switch x {
	case 1:
		n = 1
		fallthrough
	case 2:
		n = 2
	default:
		n = 3
	}
	return n
}`, "f")
	heads := byKind(g, KindSwitch)
	if len(heads) != 1 {
		t.Fatalf("got %d switch heads, want 1:\n%s", len(heads), g)
	}
	if n := len(heads[0].Succs); n != 3 {
		t.Fatalf("switch head has %d succs, want 3 (with default, no bypass):\n%s", n, g)
	}
	// Fallthrough: clause 1's body must have an edge into clause 2's body.
	c1, c2 := heads[0].Succs[0], heads[0].Succs[1]
	if !hasEdge(c1, c2) {
		t.Errorf("fallthrough edge missing:\n%s", g)
	}
}

func TestCFGUntaggedSwitchRefines(t *testing.T) {
	// An untagged switch is an if/else ladder: case guards become cond
	// blocks usable for nil-test refinement.
	g := build(t, `
func f(p *int) int {
	switch {
	case p == nil:
		return 0
	case *p > 3:
		return 1
	}
	return 2
}`, "f")
	condOf(t, g, "p == nil")
	condOf(t, g, "*p > 3")
}

func TestCFGPanicTerminates(t *testing.T) {
	g := build(t, `
func f(c bool) int {
	if c {
		panic("boom")
	}
	return 1
}`, "f")
	panics := byKind(g, KindPanic)
	if len(panics) != 1 {
		t.Fatalf("got %d panic blocks, want 1:\n%s", len(panics), g)
	}
	if len(panics[0].Succs) != 0 {
		t.Errorf("panic block has successors:\n%s", g)
	}
}

func TestCFGGoto(t *testing.T) {
	g := build(t, `
func f(n int) int {
	i := 0
loop:
	i++
	if i < n {
		goto loop
	}
	return i
}`, "f")
	c := condOf(t, g, "i < n")
	if !reaches(c.Succs[0], c) {
		t.Errorf("goto back edge missing:\n%s", g)
	}
}

func TestCFGRPO(t *testing.T) {
	g := build(t, `
func f(a, b bool) int {
	x := 0
	if a {
		x = 1
	} else if b {
		x = 2
	}
	return x
}`, "f")
	order := g.RPO()
	if order[0] != g.Entry {
		t.Fatalf("RPO does not start at entry")
	}
	pos := make(map[*Block]int, len(order))
	for i, b := range order {
		pos[b] = i
	}
	if len(pos) != len(g.Blocks) {
		t.Fatalf("RPO covers %d blocks, want %d", len(pos), len(g.Blocks))
	}
	// In an acyclic graph every edge goes forward in RPO.
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if pos[s] <= pos[b] {
				t.Errorf("edge %d->%d goes backward in RPO of acyclic graph:\n%s", b.Index, s.Index, g)
			}
		}
	}
}

func TestCFGString(t *testing.T) {
	g := build(t, `func f() {}`, "f")
	if s := g.String(); !strings.Contains(s, "entry") || !strings.Contains(s, "exit") {
		t.Errorf("String() = %q, want entry and exit lines", s)
	}
}
