package detflow_test

import (
	"testing"

	"burstmem/internal/analysis/analysistest"
	"burstmem/internal/analysis/detflow"
)

func TestDetflow(t *testing.T) {
	analysistest.Run(t, detflow.Analyzer,
		"./testdata/src/internal/sim", "./testdata/src/helpers")
}
