// Package detflow extends detlint across call boundaries: it flags calls
// from simulation packages to functions *outside* the simulation scope
// whose effect summaries transitively reach a nondeterminism source —
// wall-clock time, map iteration, process-seeded rand, or a goroutine
// spawn.
//
// detlint sees one package at a time, so a sim-scoped function that calls
// a helper in internal/stats (or anywhere else out of scope) which quietly
// does `for range m` is invisible to it: the range is legal where it
// lives, and the call looks like any other. detflow closes that hole with
// the interprocedural tier: it walks every function in a detlint-scoped
// package (detlint.SimPackages) and reports each call edge into an
// out-of-scope callee whose summary (internal/analysis/summary) carries a
// nondeterminism effect, with the call chain to the ultimate source in the
// message.
//
// The division of labour keeps every source reported exactly once:
//
//   - nondeterminism *inside* a scoped package — detlint, at the source;
//   - direct calls of time.Now / math/rand from scoped code — detlint, at
//     the call (edges to external callees are skipped here);
//   - nondeterminism *behind* an out-of-scope callee — detflow, at the
//     scope-boundary call site.
//
// Suppression uses the standard `//lint:ignore detflow <reason>` comment.
package detflow

import (
	"strings"

	"burstmem/internal/analysis"
	"burstmem/internal/analysis/callgraph"
	"burstmem/internal/analysis/detlint"
	"burstmem/internal/analysis/summary"
)

// Analyzer is the detflow pass.
var Analyzer = &analysis.Analyzer{
	Name:       "detflow",
	Doc:        "forbid calls from simulation packages that transitively reach nondeterminism sources",
	RunProgram: run,
}

// reached are the summary effect kinds detflow polices — the
// interprocedural mirror of detlint's four bans.
var reached = []summary.Kind{
	summary.WallClock, summary.MapRange, summary.GlobalRand, summary.Spawn,
}

func run(pass *analysis.ProgramPass) {
	set := summary.Of(pass.Prog)
	for _, fn := range set.Graph.Source {
		if !detlint.InSimScope(fn.Pkg.PkgPath) {
			continue
		}
		for _, e := range fn.Out {
			if e.Callee == nil || e.Callee.Body() == nil {
				// Dynamic calls are sharestate's problem; external callees
				// (time.Now itself, rand.Intn itself) are detlint's.
				continue
			}
			if detlint.InSimScope(e.Callee.Pkg.PkgPath) {
				// In-scope callees are checked at their own sources (detlint)
				// and their own boundary calls (this loop, when it reaches
				// them) — reporting here would flag every frame of the chain.
				continue
			}
			csum := set.Funcs[e.Callee.ID]
			if csum == nil {
				continue
			}
			for _, kind := range reached {
				eff, ok := csum.Effects[summary.Key{Kind: kind}]
				if !ok {
					continue
				}
				pass.Reportf(e.Pos, "call of %s reaches %s (%s): simulation logic must stay deterministic and single-threaded",
					e.Callee.Name, kind, chain(set, e.Callee, eff.Key))
			}
		}
	}
}

// chain renders the call path from the callee to the effect's ultimate
// source, e.g. "stats.Snapshot -> stats.keys".
func chain(set *summary.Set, callee *callgraph.Func, k summary.Key) string {
	parts := append([]string{callee.Name}, set.Path(callee.ID, k)...)
	return strings.Join(parts, " -> ")
}
