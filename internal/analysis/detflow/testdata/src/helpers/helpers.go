// Package helpers is detflow test data: an out-of-scope utility package
// whose functions hide nondeterminism behind ordinary-looking calls.
package helpers

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock directly.
func Stamp() int64 { return time.Now().UnixNano() }

// DeepClock hides the clock one call deeper.
func DeepClock() int64 { return Stamp() }

// Pick iterates a map.
func Pick(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}

// Roll uses the process-seeded generator.
func Roll() int { return rand.Intn(6) }

// Fire spawns a goroutine.
func Fire(f func()) { go f() }

// Pure is deterministic: calls of it are never flagged.
func Pure(x int) int { return 2 * x }
