// Package sim is detflow test data: its import path ends in internal/sim,
// so it is simulation scope, and it calls into the out-of-scope helpers
// package.
package sim

import "burstmem/internal/analysis/detflow/testdata/src/helpers"

var m = map[string]int{"a": 1}

// tick crosses the scope boundary in every forbidden way.
func tick() int64 {
	t := helpers.Stamp()       // want `call of helpers.Stamp reaches wall-clock time`
	_ = helpers.Pick(m)        // want `call of helpers.Pick reaches map iteration`
	_ = helpers.Roll()         // want `call of helpers.Roll reaches process-seeded rand`
	helpers.Fire(func() {})    // want `call of helpers.Fire reaches goroutine spawn`
	t += helpers.DeepClock()   // want `call of helpers.DeepClock reaches wall-clock time \(helpers.DeepClock -> helpers.Stamp\)`
	return t + int64(helpers.Pure(3))
}

// inScopeHelper is simulation code itself: calls of it are not flagged
// (its own boundary call is), so the chain is reported exactly once.
func inScopeHelper() int64 { return helpers.Stamp() } // want `call of helpers.Stamp reaches wall-clock time`

// indirect calls a scoped helper: not flagged here.
func indirect() int64 { return inScopeHelper() }

// allowed demonstrates suppression at the boundary call.
func allowed() int64 {
	//lint:ignore detflow startup banner, outside the measured region
	return helpers.Stamp()
}
