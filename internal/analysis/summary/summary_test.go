package summary

import (
	"strings"
	"testing"

	"burstmem/internal/analysis"
	"burstmem/internal/analysis/callgraph"
)

const pkg = "burstmem/internal/analysis/summary/testdata/src/sum"

func loadSet(t *testing.T) *Set {
	t.Helper()
	pkgs, err := analysis.Load("./testdata/src/sum")
	if err != nil {
		t.Fatal(err)
	}
	prog := analysis.NewProgram(pkgs)
	if len(prog.Broken) > 0 {
		t.Fatalf("corpus has load errors: %v", prog.Broken[0].Errors)
	}
	return Of(prog)
}

func has(t *testing.T, set *Set, fn string, k Kind, target string) Effect {
	t.Helper()
	sum := set.Funcs[callgraph.ID(pkg+"."+fn)]
	if sum == nil {
		t.Fatalf("no summary for %s", fn)
	}
	e, ok := sum.Effects[Key{Kind: k, Target: target}]
	if !ok {
		t.Fatalf("%s missing effect %v %q; has %v", fn, k, target, sum.Sorted())
	}
	return e
}

func hasNot(t *testing.T, set *Set, fn string, k Kind, target string) {
	t.Helper()
	sum := set.Funcs[callgraph.ID(pkg+"."+fn)]
	if sum == nil {
		t.Fatalf("no summary for %s", fn)
	}
	if _, ok := sum.Effects[Key{Kind: k, Target: target}]; ok {
		t.Fatalf("%s unexpectedly has effect %v %q", fn, k, target)
	}
}

func TestDirectEffects(t *testing.T) {
	set := loadSet(t)
	if e := has(t, set, "WriteG", GlobalWrite, pkg+".G"); e.Via != "" {
		t.Errorf("direct write has Via %q", e.Via)
	}
	has(t, set, "(*S).Set", FieldWrite, pkg+".S.X")
	has(t, set, "(*S).SetMap", FieldWrite, pkg+".S.M")
	has(t, set, "Blank", FieldWrite, pkg+".S.*")
	has(t, set, "Clock", WallClock, "")
	has(t, set, "Dy", DynamicCall, "")
	has(t, set, "Esc", GlobalWrite, pkg+".Sink")
	has(t, set, "Esc", GlobalEscape, pkg+".Sink")
}

func TestLocalityFilter(t *testing.T) {
	set := loadSet(t)
	hasNot(t, set, "LocalOnly", FieldWrite, pkg+".S.X")
	hasNot(t, set, "(S).ValueRecv", FieldWrite, pkg+".S.X")
}

func TestInheritedEffects(t *testing.T) {
	set := loadSet(t)
	e := has(t, set, "WriteViaHelper", GlobalWrite, pkg+".G")
	if e.Via != callgraph.ID(pkg+".WriteG") {
		t.Errorf("inherited write Via = %q, want WriteG", e.Via)
	}
	has(t, set, "CallsClock", WallClock, "")
	has(t, set, "CallsIter", MapRange, "")
	// Spawned callee effects surface in the spawner.
	has(t, set, "Sp", Spawn, "")
	has(t, set, "Sp", GlobalWrite, pkg+".G")
}

func TestRecursiveFixedPoint(t *testing.T) {
	set := loadSet(t)
	// B writes directly; A only through the cycle — both converge.
	has(t, set, "B", FieldWrite, pkg+".S.X")
	has(t, set, "A", FieldWrite, pkg+".S.X")
}

func TestPath(t *testing.T) {
	set := loadSet(t)
	path := set.Path(callgraph.ID(pkg+".Deep"), Key{Kind: GlobalWrite, Target: pkg + ".G"})
	joined := strings.Join(path, " -> ")
	if joined != "sum.WriteViaHelper -> sum.WriteG" {
		t.Errorf("path = %q, want sum.WriteViaHelper -> sum.WriteG", joined)
	}
}
