// Package summary computes per-function effect summaries over the call
// graph: what package-level state a function writes (directly or through
// anything it calls), which struct fields it mutates through pointers,
// whether it transitively reaches a nondeterminism source (wall-clock
// time, map iteration, process-seeded rand), spawns goroutines, lets
// caller-supplied pointers escape into globals, or calls through function
// values the graph cannot resolve.
//
// Summaries are computed bottom-up over the strongly connected components
// of the call graph: a function's summary is its direct effects joined
// with the summaries of everything it calls, and mutually recursive
// components iterate to a fixed point. The lattice is a map from effect
// key (kind + target) to a provenance record; join is set union with a
// deterministic tie-break (smallest source position wins), so the fixed
// point is unique and diagnostics built on it never depend on iteration
// order.
//
// What counts as a write: assignments, inc/dec and range-clause
// assignments whose destination is a package-level variable (GlobalWrite)
// or a struct field reached through a pointer (FieldWrite, keyed
// "pkgpath.Type.field"; a whole-value store through a pointer dereference
// is keyed "pkgpath.Type.*"). Writes that provably stay inside the
// function — fields of a non-pointer local reached without crossing a
// pointer, slice or map — are not effects. Writes into the elements of a
// local slice/map variable are a known blind spot (the backing store may
// alias anything); the sharestate gate closes it by refusing unresolved
// dynamic calls on the hot path rather than by tracking aliases.
//
// External callees (export data only — the stdlib) are assumed effect-free
// except for the explicit nondeterminism table: time.Now/Since/Until and
// anything in math/rand or math/rand/v2. This matches detlint's source
// list; the rest of the stdlib the simulator uses (fmt, sort, strings...)
// is deterministic and writes no simulator state.
package summary

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"burstmem/internal/analysis"
	"burstmem/internal/analysis/callgraph"
)

// Kind classifies one effect.
type Kind uint8

// Effect kinds.
const (
	// GlobalWrite: a package-level variable is written. Target is
	// "pkgpath.varname".
	GlobalWrite Kind = iota
	// FieldWrite: a struct field is written through a pointer. Target is
	// "pkgpath.Type.field" ("pkgpath.Type.*" for whole-value stores).
	FieldWrite
	// GlobalEscape: a parameter- or receiver-derived pointer is stored
	// into a package-level variable. Target is the variable's ID.
	GlobalEscape
	// WallClock: time.Now/Since/Until is reached.
	WallClock
	// MapRange: a `for range` over a map is reached.
	MapRange
	// GlobalRand: math/rand or math/rand/v2 is reached.
	GlobalRand
	// Spawn: a goroutine is launched.
	Spawn
	// DynamicCall: a call through a function value the call graph cannot
	// resolve.
	DynamicCall
	// ProcExit: os.Exit or a fatal logger is reached — the process may
	// terminate without running the pending defers of calling frames.
	ProcExit
)

func (k Kind) String() string {
	switch k {
	case GlobalWrite:
		return "global write"
	case FieldWrite:
		return "field write"
	case GlobalEscape:
		return "escape to global"
	case WallClock:
		return "wall-clock time"
	case MapRange:
		return "map iteration"
	case GlobalRand:
		return "process-seeded rand"
	case Spawn:
		return "goroutine spawn"
	case DynamicCall:
		return "unresolved dynamic call"
	case ProcExit:
		return "process exit"
	}
	return "?"
}

// Key identifies one effect within a summary.
type Key struct {
	Kind   Kind
	Target string // "" for kinds without a target
}

// Effect is one summarized fact with provenance.
type Effect struct {
	Key
	// Pos is the ultimate source site (the assignment, the range clause,
	// the time.Now call), wherever in the call tree it lives.
	Pos token.Pos
	// Via is the immediate callee the effect was inherited from (""
	// when the effect is direct), CallPos the inheriting call site.
	Via     callgraph.ID
	CallPos token.Pos
}

// Summary is one function's fixed-point effect set.
type Summary struct {
	Fn      *callgraph.Func
	Effects map[Key]Effect
}

// Sorted returns the effects ordered by (kind, target) — the iteration
// order for reporting.
func (s *Summary) Sorted() []Effect {
	out := make([]Effect, 0, len(s.Effects))
	for _, e := range s.Effects {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Target < out[j].Target
	})
	return out
}

// Set holds every function's summary plus the graph it was computed over.
type Set struct {
	Graph *callgraph.Graph
	Funcs map[callgraph.ID]*Summary
}

// Of returns the program's summaries, computing them once per Program
// (the summary-cache: sharestate, detflow and goroutcheck all share this
// build, which also keeps burstlint's wall time flat as analyzers stack).
func Of(prog *analysis.Program) *Set {
	return prog.Cached("summary", func() any {
		return build(prog)
	}).(*Set)
}

func build(prog *analysis.Program) *Set {
	g := callgraph.Build(prog)
	set := &Set{Graph: g, Funcs: map[callgraph.ID]*Summary{}}
	for _, fn := range g.Source {
		set.Funcs[fn.ID] = &Summary{Fn: fn, Effects: direct(fn)}
	}
	// Bottom-up over SCCs; iterate each component to its fixed point.
	for _, comp := range g.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, fn := range comp {
				if set.propagate(fn) {
					changed = true
				}
			}
		}
	}
	return set
}

// propagate joins callee summaries into fn's; reports whether fn changed.
func (set *Set) propagate(fn *callgraph.Func) bool {
	sum := set.Funcs[fn.ID]
	changed := false
	for _, e := range fn.Out {
		if e.Callee == nil {
			continue
		}
		csum := set.Funcs[e.Callee.ID]
		if csum == nil {
			continue // external: effect-free beyond the nondet table
		}
		for k, ce := range csum.Effects {
			cand := Effect{Key: k, Pos: ce.Pos, Via: e.Callee.ID, CallPos: e.Pos}
			if merge(sum.Effects, cand) {
				changed = true
			}
		}
	}
	return changed
}

// merge inserts cand unless an equal-or-smaller record already holds the
// key. Ordering by (Pos, CallPos, Via) makes the fixed point independent
// of map iteration order.
func merge(effects map[Key]Effect, cand Effect) bool {
	cur, ok := effects[cand.Key]
	if ok && !less(cand, cur) {
		return false
	}
	effects[cand.Key] = cand
	return true
}

func less(a, b Effect) bool {
	if a.Pos != b.Pos {
		return a.Pos < b.Pos
	}
	if a.CallPos != b.CallPos {
		return a.CallPos < b.CallPos
	}
	return a.Via < b.Via
}

// Path renders the call chain from fn to the ultimate source of the
// keyed effect: the short names of the Via links, in call order. Empty
// for direct effects.
func (set *Set) Path(id callgraph.ID, k Key) []string {
	var out []string
	seen := map[callgraph.ID]bool{}
	for {
		sum := set.Funcs[id]
		if sum == nil {
			return out
		}
		e, ok := sum.Effects[k]
		if !ok || e.Via == "" || seen[e.Via] {
			return out
		}
		seen[e.Via] = true
		if via := set.Funcs[e.Via]; via != nil {
			out = append(out, via.Fn.Name)
		} else {
			out = append(out, string(e.Via))
		}
		id = e.Via
	}
}

// nondetExternals maps external callee IDs (and ID prefixes) to effects.
func externalEffect(id callgraph.ID) (Kind, bool) {
	switch id {
	case "time.Now", "time.Since", "time.Until":
		return WallClock, true
	case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln":
		return ProcExit, true
	}
	s := string(id)
	if strings.HasPrefix(s, "math/rand.") || strings.HasPrefix(s, "math/rand/v2.") {
		return GlobalRand, true
	}
	return 0, false
}

// direct extracts one function's own effects: writes and ranges from its
// AST (nested literal bodies excluded — literals are separate nodes whose
// effects arrive through Lit/Static/Spawn edges), nondeterminism and
// dynamic calls from its resolved edges.
func direct(fn *callgraph.Func) map[Key]Effect {
	effects := map[Key]Effect{}
	for _, e := range fn.Out {
		if e.Callee == nil {
			merge(effects, Effect{Key: Key{Kind: DynamicCall}, Pos: e.Pos})
			continue
		}
		if k, ok := externalEffect(e.Callee.ID); ok {
			merge(effects, Effect{Key: Key{Kind: k}, Pos: e.Pos})
		}
	}
	body := fn.Body()
	if body == nil {
		return effects
	}
	info := fn.Pkg.TypesInfo
	pkgScope := fn.Pkg.Types.Scope()
	w := &walker{effects: effects, info: info, pkgScope: pkgScope, pkgPath: fn.Pkg.PkgPath}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its own node
		case *ast.GoStmt:
			merge(effects, Effect{Key: Key{Kind: Spawn}, Pos: n.Pos()})
			return true
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				// New variables; RHS may still contain writes via calls,
				// which edges cover.
				return true
			}
			for i, lhs := range n.Lhs {
				if t, ok := w.writeTarget(lhs); ok {
					merge(effects, Effect{Key: t, Pos: lhs.Pos()})
					if t.Kind == GlobalWrite && i < len(n.Rhs) && w.escapes(n.Rhs[i], fn) {
						merge(effects, Effect{Key: Key{Kind: GlobalEscape, Target: t.Target}, Pos: lhs.Pos()})
					}
				}
			}
			return true
		case *ast.IncDecStmt:
			if t, ok := w.writeTarget(n.X); ok {
				merge(effects, Effect{Key: t, Pos: n.X.Pos()})
			}
			return true
		case *ast.RangeStmt:
			if tv := info.Types[n.X]; tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					merge(effects, Effect{Key: Key{Kind: MapRange}, Pos: n.Pos()})
				}
			}
			if n.Tok == token.ASSIGN {
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if e == nil {
						continue
					}
					if t, ok := w.writeTarget(e); ok {
						merge(effects, Effect{Key: t, Pos: e.Pos()})
					}
				}
			}
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
	return effects
}

// walker classifies write destinations against one package's type info.
type walker struct {
	effects  map[Key]Effect
	info     *types.Info
	pkgScope *types.Scope
	pkgPath  string
}

// writeTarget classifies an assignment destination. ok is false for
// blank identifiers, locals, and local-value field chains.
func (w *walker) writeTarget(lhs ast.Expr) (Key, bool) {
	switch lhs := unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return Key{}, false
		}
		if v := w.globalVar(lhs); v != nil {
			return Key{Kind: GlobalWrite, Target: varID(v)}, true
		}
		return Key{}, false
	case *ast.SelectorExpr:
		// Qualified global: pkg.Var = ...
		if id, ok := lhs.X.(*ast.Ident); ok {
			if _, isPkg := w.info.Uses[id].(*types.PkgName); isPkg {
				if v, ok := w.info.Uses[lhs.Sel].(*types.Var); ok {
					return Key{Kind: GlobalWrite, Target: varID(v)}, true
				}
				return Key{}, false
			}
		}
		sel, ok := w.info.Selections[lhs]
		if !ok || sel.Kind() != types.FieldVal {
			return Key{}, false
		}
		field, _ := sel.Obj().(*types.Var)
		if field == nil {
			return Key{}, false
		}
		if w.localValueChain(lhs.X) {
			return Key{}, false
		}
		owner := namedOf(fieldOwner(sel))
		if owner == "" {
			return Key{}, false
		}
		return Key{Kind: FieldWrite, Target: owner + "." + field.Name()}, true
	case *ast.StarExpr:
		// *p = v: a whole-value store through a pointer.
		t := w.info.Types[lhs.X].Type
		if t == nil {
			return Key{}, false
		}
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			return Key{}, false
		}
		owner := namedOf(p.Elem())
		if owner == "" {
			return Key{}, false
		}
		return Key{Kind: FieldWrite, Target: owner + ".*"}, true
	case *ast.IndexExpr:
		// x[i] = v: attribute the write to x's own target (the container
		// field or global being filled).
		return w.writeTarget(lhs.X)
	}
	return Key{}, false
}

// globalVar returns the package-level variable an identifier denotes.
func (w *walker) globalVar(id *ast.Ident) *types.Var {
	obj := w.info.Uses[id]
	if obj == nil {
		obj = w.info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}

// localValueChain reports whether the base expression provably stays on
// this function's stack: an unqualified chain of value-struct selections
// rooted at a non-pointer local variable. Anything crossing a pointer,
// slice, map, call or index is reachable memory and counts as an effect.
func (w *walker) localValueChain(base ast.Expr) bool {
	for {
		base = unparen(base)
		switch b := base.(type) {
		case *ast.Ident:
			v, ok := w.info.Uses[b].(*types.Var)
			if !ok {
				return false
			}
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return false // global root
			}
			if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
				return false
			}
			return true
		case *ast.SelectorExpr:
			sel, ok := w.info.Selections[b]
			if !ok || sel.Kind() != types.FieldVal {
				return false
			}
			if _, isPtr := sel.Recv().Underlying().(*types.Pointer); isPtr {
				return false
			}
			base = b.X
		default:
			return false
		}
	}
}

// escapes reports whether the expression may carry a pointer derived from
// one of fn's parameters or its receiver into the destination.
func (w *walker) escapes(rhs ast.Expr, fn *callgraph.Func) bool {
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := w.info.Uses[id].(*types.Var)
		if ok && isParamOf(v, fn) && pointerish(v.Type()) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isParamOf reports whether v is a parameter or receiver of fn.
func isParamOf(v *types.Var, fn *callgraph.Func) bool {
	var ft *ast.FuncType
	var recv *ast.FieldList
	switch {
	case fn.Decl != nil:
		ft, recv = fn.Decl.Type, fn.Decl.Recv
	case fn.Lit != nil:
		ft = fn.Lit.Type
	default:
		return false
	}
	pos := v.Pos()
	in := func(fl *ast.FieldList) bool {
		return fl != nil && fl.Pos() <= pos && pos <= fl.End()
	}
	return in(ft.Params) || in(recv)
}

// pointerish reports whether values of the type carry references.
func pointerish(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	}
	return false
}

// fieldOwner returns the type that owns the selected field: the named
// struct the selection path lands on (for embedded fields, the embedded
// struct, not the outer one).
func fieldOwner(sel *types.Selection) types.Type {
	t := sel.Recv()
	// Walk the embedding path: all but the last index step cross embedded
	// fields.
	idx := sel.Index()
	for _, i := range idx[:len(idx)-1] {
		t = deref(t)
		s, ok := t.Underlying().(*types.Struct)
		if !ok {
			return t
		}
		t = s.Field(i).Type()
	}
	return deref(t)
}

func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedOf renders the stable "pkgpath.TypeName" ID of a (possibly
// pointer-wrapped, possibly instantiated) named type, "" otherwise.
func namedOf(t types.Type) string {
	t = deref(types.Unalias(t))
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	n = n.Origin()
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// varID is the stable ID of a package-level variable.
func varID(v *types.Var) string {
	if v.Pkg() == nil {
		return v.Name()
	}
	return v.Pkg().Path() + "." + v.Name()
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
