// Package sum is the summary corpus: direct and inherited effects,
// recursion, generics, locality filtering and escapes.
package sum

import "time"

// G is a written global.
var G int

// Sink receives escaping pointers.
var Sink *S

// S is the mutated struct.
type S struct {
	X int
	M map[string]int
}

// WriteG writes a global directly.
func WriteG() { G = 1 }

// WriteViaHelper inherits WriteG's effect.
func WriteViaHelper() { WriteG() }

// Set writes a field through its pointer receiver.
func (s *S) Set() { s.X = 1 }

// SetMap writes the element of a field-held map: attributed to the field.
func (s *S) SetMap(k string) { s.M[k] = 2 }

// LocalOnly writes a field of a non-pointer local: not an effect.
func LocalOnly() int {
	var s S
	s.X = 3
	return s.X
}

// ValueRecv writes its by-value receiver: not an effect either.
func (s S) ValueRecv() { s.X = 4 }

// Blank stores through a pointer parameter's dereference.
func Blank(p *S) { *p = S{} }

// A and B recurse mutually; B's field write must reach A's summary.
func A(n int, s *S) {
	if n > 0 {
		B(n-1, s)
	}
}

// B closes the cycle.
func B(n int, s *S) {
	s.X = n
	A(n-1, s)
}

// Iter ranges over a map inside a generic body.
func Iter[T any](m map[string]T) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// CallsIter inherits the map-range effect through the generic origin.
func CallsIter() int { return Iter(map[string]int{"a": 1}) }

// Clock reads the wall clock.
func Clock() int64 { return time.Now().UnixNano() }

// CallsClock inherits it.
func CallsClock() int64 { return Clock() }

// Esc lets its pointer parameter escape into a global.
func Esc(p *S) { Sink = p }

// Sp spawns a goroutine and inherits the spawned function's effects.
func Sp() { go WriteG() }

// Dy calls through a function value.
func Dy(f func()) { f() }

// Deep chains three hops so path reconstruction has something to walk.
func Deep() { WriteViaHelper() }
