package pointsto

// Call handling: conversions, builtins with pointer semantics (make, new,
// append, copy), and real calls. Real calls bind arguments to parameters
// and results to destinations along the call graph's resolved edges;
// arguments of external or dynamic callees are marked as escaping to
// unknown code, and their tracked results become opaque external objects.

import (
	"go/ast"
	"go/token"
	"go/types"

	"burstmem/internal/analysis/callgraph"
)

// call generates constraints for one call expression and returns its
// result nodes. posOverride carries the go/defer statement position,
// where the call graph recorded spawn edges.
func (g *generator) call(e *ast.CallExpr, posOverride token.Pos) []NodeID {
	fun := unparen(e.Fun)
	// Unwrap explicit generic instantiation.
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		if tv, ok := g.info.Types[ix.X]; ok {
			if _, isSig := tv.Type.Underlying().(*types.Signature); isSig {
				fun = unparen(ix.X)
			}
		}
	case *ast.IndexListExpr:
		fun = unparen(ix.X)
	}

	// Type conversion: T(x) passes the value through.
	if tv, ok := g.info.Types[fun]; ok && tv.IsType() {
		if len(e.Args) == 1 {
			return []NodeID{g.expr(e.Args[0])}
		}
		return nil
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := g.info.ObjectOf(id).(*types.Builtin); ok {
			return []NodeID{g.builtin(b.Name(), e)}
		}
	}

	// Receiver of a method call, evaluated once for every candidate.
	var recvNode = untracked
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if selection, ok := g.info.Selections[sel]; ok && selection.Kind() == types.MethodVal {
			recvNode = g.expr(sel.X)
		} else {
			g.expr(sel.X)
		}
	} else {
		g.expr(fun)
	}

	args := make([]NodeID, len(e.Args))
	for i, a := range e.Args {
		args[i] = g.expr(a)
	}

	callees, opaque := g.resolve(e, posOverride)

	nres := 0
	if tv, ok := g.info.Types[e]; ok {
		if tup, ok := tv.Type.(*types.Tuple); ok {
			nres = tup.Len()
		} else if tv.Type != nil && tv.Type != types.Typ[types.Invalid] {
			if _, isVoid := tv.Type.(*types.Tuple); !isVoid {
				nres = 1
			}
		}
	}
	results := make([]NodeID, nres)
	for i := range results {
		results[i] = untracked
	}

	for _, callee := range callees {
		g.bind(callee, e, recvNode, args, results)
	}
	if opaque {
		g.opaqueCall(e, recvNode, args, results)
	}
	return results
}

// resolve finds the call's in-program callees via the caller's edge index,
// falling back to direct type-info resolution (package-level initializers
// have no call-graph node). The second result reports whether the call
// also reaches code the analysis cannot see: an external callee, a
// dynamic edge, or no resolution at all.
func (g *generator) resolve(e *ast.CallExpr, posOverride token.Pos) ([]*callgraph.Func, bool) {
	var edges []*callgraph.Edge
	if g.edges != nil {
		edges = g.edges[e.Pos()]
		if len(edges) == 0 && posOverride != token.NoPos {
			edges = g.edges[posOverride]
		}
	}
	if len(edges) > 0 {
		var callees []*callgraph.Func
		opaque := false
		for _, edge := range edges {
			switch {
			case edge.Kind == callgraph.Lit:
				// Not this call: a conservative encloser->literal edge
				// that happens to share the position.
			case edge.Callee == nil || edge.Callee.Body() == nil:
				opaque = true
			default:
				callees = append(callees, edge.Callee)
			}
		}
		return callees, opaque
	}
	// Fallback: static resolution only.
	var obj *types.Func
	switch fun := unparen(e.Fun).(type) {
	case *ast.Ident:
		obj, _ = g.info.ObjectOf(fun).(*types.Func)
	case *ast.SelectorExpr:
		obj, _ = g.info.ObjectOf(fun.Sel).(*types.Func)
	}
	if obj == nil {
		return nil, true
	}
	if fn := g.r.Graph.Funcs[callgraph.FuncID(obj)]; fn != nil && fn.Body() != nil {
		return []*callgraph.Func{fn}, false
	}
	return nil, true
}

// bind connects one call site to one callee: receiver and arguments copy
// into parameters, return nodes copy into the call's results.
func (g *generator) bind(callee *callgraph.Func, e *ast.CallExpr, recvNode NodeID, args, results []NodeID) {
	sig := signatureOf(callee)
	if sig == nil {
		return
	}
	if recv := sig.Recv(); recv != nil && recvNode != untracked {
		g.r.addCopy(recvNode, g.r.varNode(recv))
	}
	np := sig.Params().Len()
	for i := 0; i < np; i++ {
		param := sig.Params().At(i)
		pn := g.r.varNode(param)
		if sig.Variadic() && i == np-1 && !e.Ellipsis.IsValid() {
			// Pack extra arguments into one synthetic slice per callee.
			pack := g.r.variadic(callee, i)
			g.r.addCopy(pack, pn)
			for j := i; j < len(args); j++ {
				if args[j] != untracked {
					g.r.addStore(pack, "$elem", args[j])
				}
			}
			break
		}
		if i < len(args) && args[i] != untracked {
			g.r.addCopy(args[i], pn)
		}
	}
	for i, ret := range g.r.returns(callee) {
		if i >= len(results) {
			break
		}
		if results[i] == untracked {
			results[i] = g.r.newNode()
		}
		g.r.addCopy(ret, results[i])
	}
}

// opaqueCall models a call into code the analysis cannot see: every
// tracked operand escapes, and tracked results are opaque external
// objects.
func (g *generator) opaqueCall(e *ast.CallExpr, recvNode NodeID, args, results []NodeID) {
	if recvNode != untracked {
		g.r.escapeSeeds = append(g.r.escapeSeeds, recvNode)
	}
	for _, a := range args {
		if a != untracked {
			g.r.escapeSeeds = append(g.r.escapeSeeds, a)
		}
	}
	var types_ []types.Type
	if tv, ok := g.info.Types[e]; ok {
		if tup, ok := tv.Type.(*types.Tuple); ok {
			for i := 0; i < tup.Len(); i++ {
				types_ = append(types_, tup.At(i).Type())
			}
		} else {
			types_ = append(types_, tv.Type)
		}
	}
	for i := range results {
		var t types.Type
		if i < len(types_) {
			t = types_[i]
		}
		if t == nil || !tracked(t) {
			continue
		}
		obj := g.r.newObject(KindExternal, t, e.Pos(), g.fnID())
		obj.EscapesUnknown = true
		if results[i] == untracked {
			results[i] = g.r.newNode()
		}
		g.r.addPts(results[i], obj.ID)
	}
}

// builtin models the builtins with pointer semantics; the rest just walk
// their arguments.
func (g *generator) builtin(name string, e *ast.CallExpr) NodeID {
	switch name {
	case "make":
		obj := g.r.newObject(KindMake, g.info.TypeOf(e), e.Pos(), g.fnID())
		n := g.r.newNode()
		g.r.addPts(n, obj.ID)
		for _, a := range e.Args[1:] {
			g.expr(a)
		}
		return n
	case "new":
		var t types.Type
		if len(e.Args) == 1 {
			t = g.info.TypeOf(e.Args[0])
		}
		obj := g.r.newObject(KindAlloc, t, e.Pos(), g.fnID())
		n := g.r.newNode()
		g.r.addPts(n, obj.ID)
		return n
	case "append":
		n := g.r.newNode()
		if len(e.Args) == 0 {
			return n
		}
		if base := g.expr(e.Args[0]); base != untracked {
			g.r.addCopy(base, n)
		}
		if e.Ellipsis.IsValid() && len(e.Args) == 2 {
			if more := g.expr(e.Args[1]); more != untracked {
				g.r.addCopy(more, n)
			}
			return n
		}
		for _, a := range e.Args[1:] {
			if v := g.expr(a); v != untracked {
				g.r.addStore(n, "$elem", v)
			}
		}
		return n
	case "copy":
		if len(e.Args) == 2 {
			dst, src := g.expr(e.Args[0]), g.expr(e.Args[1])
			if dst != untracked && src != untracked {
				tmp := g.r.newNode()
				g.r.addLoad(src, "$elem", tmp)
				g.r.addStore(dst, "$elem", tmp)
			}
		}
		return untracked
	case "panic":
		// The argument may surface anywhere via recover.
		if len(e.Args) == 1 {
			if v := g.expr(e.Args[0]); v != untracked {
				g.r.escapeSeeds = append(g.r.escapeSeeds, v)
			}
		}
		return untracked
	default:
		for _, a := range e.Args {
			g.expr(a)
		}
		return untracked
	}
}

// variadic interns the synthetic pack slice of a variadic parameter.
func (r *Result) variadic(callee *callgraph.Func, param int) NodeID {
	key := subKey{ObjID(param), string(callee.ID)}
	if o, ok := r.variadics[key]; ok {
		return o
	}
	obj := r.newObject(KindMake, nil, callee.Pos(), callee.ID)
	obj.label = string(callee.ID) + "$variadic"
	n := r.newNode()
	r.addPts(n, obj.ID)
	r.variadics[key] = n
	return n
}
