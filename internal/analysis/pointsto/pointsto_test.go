package pointsto_test

import (
	"go/ast"
	"sort"
	"strings"
	"testing"

	"burstmem/internal/analysis"
	"burstmem/internal/analysis/analysistest"
	"burstmem/internal/analysis/pointsto"
)

// probeAnalyzer renders the solver's object set at every probe(x) call in
// the corpus, so // want comments can pin aliasing facts. Objects print
// as their named type's short key; "!" marks escape to unknown code.
var probeAnalyzer = &analysis.Analyzer{
	Name: "ptsprobe",
	Doc:  "test-only: report points-to sets at probe() calls",
	RunProgram: func(pass *analysis.ProgramPass) {
		res := pointsto.Of(pass.Prog)
		for _, pkg := range pass.Prog.Pkgs {
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "probe" || len(call.Args) != 1 {
						return true
					}
					pass.Reportf(call.Pos(), "pts = [%s]", render(res.ExprObjects(call.Args[0])))
					return true
				})
			}
		}
	},
}

func render(objs []*pointsto.Object) string {
	seen := map[string]bool{}
	var parts []string
	for _, o := range objs {
		s := o.String()
		if o.EscapesUnknown {
			s += "!"
		}
		if !seen[s] {
			seen[s] = true
			parts = append(parts, s)
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

func TestPointsTo(t *testing.T) {
	analysistest.Run(t, probeAnalyzer, "./testdata/src/ptr")
}

// TestDeterminism solves the corpus twice from independent loads and
// requires identical rendered solutions; TestCollapse requires the cycle
// collapser to actually fire on the corpus's recursive constraints.
func TestDeterminism(t *testing.T) {
	a, statsA := solveCorpus(t)
	b, statsB := solveCorpus(t)
	if a != b {
		t.Fatalf("solutions differ between runs:\n%s\n----\n%s", a, b)
	}
	if statsA != statsB {
		t.Fatalf("stats differ between runs: %+v vs %+v", statsA, statsB)
	}
}

func TestCollapse(t *testing.T) {
	_, stats := solveCorpus(t)
	if stats.Collapsed == 0 {
		t.Fatal("expected the cycle collapser to merge at least one SCC on the recursive corpus")
	}
	if stats.Objects == 0 || stats.Copies == 0 {
		t.Fatalf("implausible stats: %+v", stats)
	}
}

func solveCorpus(t *testing.T) (string, pointsto.Stats) {
	t.Helper()
	pkgs, err := analysis.Load("./testdata/src/ptr")
	if err != nil {
		t.Fatal(err)
	}
	prog := analysis.NewProgram(pkgs)
	res := pointsto.Of(prog)
	var sb strings.Builder
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "probe" || len(call.Args) != 1 {
					return true
				}
				pos := prog.Fset.Position(call.Pos())
				sb.WriteString(pos.String() + " [" + render(res.ExprObjects(call.Args[0])) + "]\n")
				return true
			})
		}
	}
	return sb.String(), res.Stats
}
