package pointsto

// Constraint generation: one generator pass per function body (plus one
// per package for package-level variable initializers), translating Go
// statements and expressions into the four constraint kinds. Calls bind
// arguments to parameters along the call graph's resolved edges, so the
// whole program becomes one constraint system.

import (
	"go/ast"
	"go/token"
	"go/types"

	"burstmem/internal/analysis"
	"burstmem/internal/analysis/callgraph"
)

const untracked = NodeID(-1)

type generator struct {
	r    *Result
	fn   *callgraph.Func // nil for package-level initializers
	pkg  *analysis.Package
	info *types.Info
	// edges indexes the function's resolved call edges by call position.
	edges map[token.Pos][]*callgraph.Edge
}

func (g *generator) fnID() callgraph.ID {
	if g.fn == nil {
		return ""
	}
	return g.fn.ID
}

// function generates constraints for one call-graph node's body.
func (g *generator) function() {
	body := g.fn.Body()
	if body == nil {
		return
	}
	g.edges = map[token.Pos][]*callgraph.Edge{}
	for i := range g.fn.Out {
		e := &g.fn.Out[i]
		g.edges[e.Pos] = append(g.edges[e.Pos], e)
	}
	if sig := signatureOf(g.fn); sig != nil {
		if recv := sig.Recv(); recv != nil {
			g.r.varNode(recv)
		}
		for i := 0; i < sig.Params().Len(); i++ {
			g.r.varNode(sig.Params().At(i))
		}
		// Named results feed the return nodes directly, so naked returns
		// need no special handling.
		rets := g.r.returns(g.fn)
		for i := 0; i < sig.Results().Len(); i++ {
			res := sig.Results().At(i)
			if res.Name() != "" && tracked(res.Type()) {
				g.r.addCopy(g.r.varNode(res), rets[i])
			}
		}
	}
	g.stmt(body)
}

// pkgInit generates constraints for one package's variable initializers.
// These run outside any call-graph node, so call resolution falls back to
// direct type-info lookup.
func (g *generator) pkgInit() {
	for _, file := range g.pkg.Files {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				g.assignSpec(vs.Names, vs.Values)
			}
		}
	}
}

// ---- statements ----

func (g *generator) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			g.stmt(st)
		}
	case *ast.ExprStmt:
		g.expr(s.X)
	case *ast.AssignStmt:
		g.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					g.assignSpec(vs.Names, vs.Values)
				}
			}
		}
	case *ast.ReturnStmt:
		g.returnStmt(s)
	case *ast.SendStmt:
		ch := g.expr(s.Chan)
		v := g.expr(s.Value)
		if ch != untracked && v != untracked {
			g.r.addStore(ch, "$elem", v)
		}
	case *ast.GoStmt:
		g.call(s.Call, s.Pos())
	case *ast.DeferStmt:
		g.call(s.Call, s.Pos())
	case *ast.IfStmt:
		g.stmt(s.Init)
		g.expr(s.Cond)
		g.stmt(s.Body)
		g.stmt(s.Else)
	case *ast.ForStmt:
		g.stmt(s.Init)
		if s.Cond != nil {
			g.expr(s.Cond)
		}
		g.stmt(s.Post)
		g.stmt(s.Body)
	case *ast.RangeStmt:
		g.rangeStmt(s)
	case *ast.SwitchStmt:
		g.stmt(s.Init)
		if s.Tag != nil {
			g.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				g.expr(e)
			}
			for _, st := range cc.Body {
				g.stmt(st)
			}
		}
	case *ast.TypeSwitchStmt:
		g.typeSwitch(s)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			g.stmt(cc.Comm)
			for _, st := range cc.Body {
				g.stmt(st)
			}
		}
	case *ast.LabeledStmt:
		g.stmt(s.Stmt)
	case *ast.IncDecStmt:
		g.expr(s.X)
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

// assign handles =, :=, and op-assigns.
func (g *generator) assign(s *ast.AssignStmt) {
	if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
		// Tuple: multi-result call, comma-ok, or comma-ok-free forms.
		results := g.tuple(s.Rhs[0], len(s.Lhs))
		for i, lhs := range s.Lhs {
			g.assignTo(lhs, results[i])
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i < len(s.Rhs) {
			g.assignTo(lhs, g.expr(s.Rhs[i]))
		}
	}
}

// tuple evaluates a multi-value expression into n result nodes.
func (g *generator) tuple(e ast.Expr, n int) []NodeID {
	out := make([]NodeID, n)
	for i := range out {
		out[i] = untracked
	}
	switch e := unparen(e).(type) {
	case *ast.CallExpr:
		res := g.call(e, token.NoPos)
		copy(out, res)
	case *ast.TypeAssertExpr:
		out[0] = g.expr(e.X)
	case *ast.IndexExpr: // v, ok := m[k]
		out[0] = g.expr(e)
	case *ast.UnaryExpr: // v, ok := <-ch
		if e.Op == token.ARROW {
			out[0] = g.expr(e)
		}
	}
	return out
}

// assignTo stores a value node into an lvalue.
func (g *generator) assignTo(lhs ast.Expr, rhs NodeID) {
	lhs = unparen(lhs)
	switch l := lhs.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		if v, ok := g.info.ObjectOf(l).(*types.Var); ok {
			// Declaring a variable materializes its node even when the
			// initializer is untracked, so consumers can query it.
			n := g.r.varNode(v)
			if rhs != untracked {
				g.r.addCopy(rhs, n)
			}
		}
	case *ast.SelectorExpr:
		g.assignSelector(l, rhs)
	case *ast.IndexExpr:
		base := g.expr(l.X)
		if base != untracked && rhs != untracked {
			g.r.addStore(base, "$elem", rhs)
		}
	case *ast.StarExpr:
		p := g.expr(l.X)
		if p == untracked || rhs == untracked {
			return
		}
		if isStructy(deref(g.info.TypeOf(l.X))) {
			// Whole-struct store: the pointees of p absorb the fields of
			// the stored value (closed over at wave boundaries).
			g.r.addStoreAll(p, rhs)
		} else {
			g.r.addStore(p, "$val", rhs)
		}
	}
}

// assignSelector stores into x.f — a field store when the selector is a
// field selection, a copy when it is a qualified package variable.
func (g *generator) assignSelector(l *ast.SelectorExpr, rhs NodeID) {
	if sel, ok := g.info.Selections[l]; ok && sel.Kind() == types.FieldVal {
		base, path, ok := g.selectPrefix(l, sel)
		if !ok || rhs == untracked {
			return
		}
		g.r.addStore(base, path, rhs)
		return
	}
	if v, ok := g.info.ObjectOf(l.Sel).(*types.Var); ok && rhs != untracked {
		g.r.addCopy(rhs, g.r.varNode(v))
	}
}

// selectPrefix evaluates all but the last step of a field selection,
// returning the base node and the final field name. Promotion through
// embedded fields (including pointer embeds) becomes intermediate loads.
func (g *generator) selectPrefix(l *ast.SelectorExpr, sel *types.Selection) (NodeID, string, bool) {
	base := g.expr(l.X)
	if base == untracked {
		return untracked, "", false
	}
	t := sel.Recv()
	idx := sel.Index()
	for _, i := range idx[:len(idx)-1] {
		st, ok := types.Unalias(deref(t)).Underlying().(*types.Struct)
		if !ok {
			return untracked, "", false
		}
		f := st.Field(i)
		next := g.r.newNode()
		g.r.addLoad(base, f.Name(), next)
		base, t = next, f.Type()
	}
	st, ok := types.Unalias(deref(t)).Underlying().(*types.Struct)
	if !ok {
		return untracked, "", false
	}
	return base, st.Field(idx[len(idx)-1]).Name(), true
}

func (g *generator) assignSpec(names []*ast.Ident, values []ast.Expr) {
	if len(names) > 1 && len(values) == 1 {
		results := g.tuple(values[0], len(names))
		for i, name := range names {
			g.assignTo(name, results[i])
		}
		return
	}
	for i, name := range names {
		var rhs NodeID = untracked
		if i < len(values) {
			rhs = g.expr(values[i])
		}
		g.assignTo(name, rhs)
	}
}

func (g *generator) returnStmt(s *ast.ReturnStmt) {
	if g.fn == nil {
		return
	}
	rets := g.r.returns(g.fn)
	if len(s.Results) == 1 && len(rets) > 1 {
		results := g.tuple(s.Results[0], len(rets))
		for i, res := range results {
			if res != untracked {
				g.r.addCopy(res, rets[i])
			}
		}
		return
	}
	for i, e := range s.Results {
		if i >= len(rets) {
			break
		}
		if n := g.expr(e); n != untracked {
			g.r.addCopy(n, rets[i])
		}
	}
}

func (g *generator) rangeStmt(s *ast.RangeStmt) {
	x := g.expr(s.X)
	t := g.info.TypeOf(s.X)
	if x != untracked && t != nil {
		switch types.Unalias(t).Underlying().(type) {
		case *types.Slice, *types.Array, *types.Map, *types.Chan, *types.Pointer:
			if s.Value != nil {
				v := g.r.newNode()
				g.r.addLoad(x, "$elem", v)
				g.assignTo(s.Value, v)
			}
		}
	}
	g.stmt(s.Body)
}

func (g *generator) typeSwitch(s *ast.TypeSwitchStmt) {
	g.stmt(s.Init)
	var src NodeID = untracked
	switch a := s.Assign.(type) {
	case *ast.AssignStmt:
		if ta, ok := unparen(a.Rhs[0]).(*ast.TypeAssertExpr); ok {
			src = g.expr(ta.X)
		}
	case *ast.ExprStmt:
		if ta, ok := unparen(a.X).(*ast.TypeAssertExpr); ok {
			src = g.expr(ta.X)
		}
	}
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		// The per-clause implicit variable aliases the switched value.
		if v, ok := g.info.Implicits[cc].(*types.Var); ok && src != untracked {
			g.r.addCopy(src, g.r.varNode(v))
		}
		for _, st := range cc.Body {
			g.stmt(st)
		}
	}
}

// ---- expressions ----

// expr generates constraints for an expression and returns the node
// holding its value (untracked for scalars and func values). Tracked
// results are recorded for ExprObjects lookups.
func (g *generator) expr(e ast.Expr) NodeID {
	n := g.exprInner(e)
	if n != untracked {
		g.r.exprNodes[e] = n
	}
	return n
}

func (g *generator) exprInner(e ast.Expr) NodeID {
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := g.info.ObjectOf(e).(*types.Var); ok && tracked(v.Type()) {
			return g.r.varNode(v)
		}
		return untracked
	case *ast.ParenExpr:
		return g.expr(e.X)
	case *ast.SelectorExpr:
		return g.selector(e)
	case *ast.StarExpr:
		p := g.expr(e.X)
		if p == untracked {
			return untracked
		}
		if isStructy(g.info.TypeOf(e)) {
			return p // value structs conflate with references
		}
		n := g.r.newNode()
		g.r.addLoad(p, "$val", n)
		return n
	case *ast.UnaryExpr:
		return g.unary(e)
	case *ast.CompositeLit:
		return g.composite(e)
	case *ast.CallExpr:
		res := g.call(e, token.NoPos)
		if len(res) > 0 {
			return res[0]
		}
		return untracked
	case *ast.IndexExpr:
		return g.index(e)
	case *ast.IndexListExpr:
		g.expr(e.X)
		return untracked
	case *ast.SliceExpr:
		return g.expr(e.X)
	case *ast.TypeAssertExpr:
		return g.expr(e.X)
	case *ast.BinaryExpr:
		g.expr(e.X)
		g.expr(e.Y)
		return untracked
	case *ast.FuncLit:
		// Literals are their own call-graph nodes; captures share the
		// outer variables' nodes, so nothing flows through the value.
		return untracked
	case *ast.KeyValueExpr:
		return g.expr(e.Value)
	}
	return untracked
}

func (g *generator) selector(e *ast.SelectorExpr) NodeID {
	if sel, ok := g.info.Selections[e]; ok {
		switch sel.Kind() {
		case types.FieldVal:
			base, path, ok := g.selectPrefix(e, sel)
			if !ok || !tracked(g.info.TypeOf(e)) {
				return untracked
			}
			n := g.r.newNode()
			g.r.addLoad(base, path, n)
			return n
		default: // method value/expr: a func value, untracked
			g.expr(e.X)
			return untracked
		}
	}
	// Qualified identifier pkg.X.
	if v, ok := g.info.ObjectOf(e.Sel).(*types.Var); ok && tracked(v.Type()) {
		return g.r.varNode(v)
	}
	return untracked
}

func (g *generator) unary(e *ast.UnaryExpr) NodeID {
	switch e.Op {
	case token.AND:
		return g.addressOf(e.X)
	case token.ARROW:
		ch := g.expr(e.X)
		if ch == untracked {
			return untracked
		}
		n := g.r.newNode()
		g.r.addLoad(ch, "$elem", n)
		return n
	default:
		g.expr(e.X)
		return untracked
	}
}

// addressOf evaluates &x. For aggregates the pointer conflates with the
// value's object set; for a scalar variable it points at the variable's
// storage object. &scalarField is not tracked (no per-instance storage
// object exists for scalar fields), a documented imprecision.
func (g *generator) addressOf(x ast.Expr) NodeID {
	x = unparen(x)
	if isStructy(g.info.TypeOf(x)) {
		return g.expr(x)
	}
	if id, ok := x.(*ast.Ident); ok {
		if v, ok := g.info.ObjectOf(id).(*types.Var); ok {
			g.r.varNode(v)
			n := g.r.newNode()
			g.r.addPts(n, g.r.varObject(v))
			return n
		}
	}
	g.expr(x)
	return untracked
}

func (g *generator) composite(e *ast.CompositeLit) NodeID {
	t := g.info.TypeOf(e)
	obj := g.r.newObject(KindAlloc, t, e.Pos(), g.fnID())
	n := g.r.newNode()
	g.r.addPts(n, obj.ID)
	switch ut := types.Unalias(t).Underlying().(type) {
	case *types.Struct:
		for i, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if key, ok := kv.Key.(*ast.Ident); ok {
					if v := g.expr(kv.Value); v != untracked {
						g.r.addStore(n, key.Name, v)
					}
				}
				continue
			}
			if v := g.expr(elt); v != untracked && i < ut.NumFields() {
				g.r.addStore(n, ut.Field(i).Name(), v)
			}
		}
	case *types.Slice, *types.Array, *types.Map:
		for _, elt := range e.Elts {
			val := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				val = kv.Value
			}
			if v := g.expr(val); v != untracked {
				g.r.addStore(n, "$elem", v)
			}
		}
	}
	return n
}

func (g *generator) index(e *ast.IndexExpr) NodeID {
	// Generic instantiation F[T] rather than container indexing.
	if tv, ok := g.info.Types[e.X]; ok {
		if _, isSig := tv.Type.Underlying().(*types.Signature); isSig || tv.IsType() {
			return untracked
		}
	}
	base := g.expr(e.X)
	g.expr(e.Index)
	if base == untracked || !tracked(g.info.TypeOf(e)) {
		return untracked
	}
	n := g.r.newNode()
	g.r.addLoad(base, "$elem", n)
	return n
}

// ---- helpers shared with the solver ----

func signatureOf(fn *callgraph.Func) *types.Signature {
	switch {
	case fn.Decl != nil:
		if obj, ok := fn.Pkg.TypesInfo.Defs[fn.Decl.Name].(*types.Func); ok {
			return obj.Type().(*types.Signature)
		}
	case fn.Lit != nil:
		if tv, ok := fn.Pkg.TypesInfo.Types[fn.Lit]; ok {
			if sig, ok := tv.Type.(*types.Signature); ok {
				return sig
			}
		}
	}
	return nil
}

// returns interns the result nodes of a function.
func (r *Result) returns(fn *callgraph.Func) []NodeID {
	if ns, ok := r.retNodes[fn.ID]; ok {
		return ns
	}
	sig := signatureOf(fn)
	n := 0
	if sig != nil {
		n = sig.Results().Len()
	}
	ns := make([]NodeID, n)
	for i := range ns {
		ns[i] = r.newNode()
	}
	r.retNodes[fn.ID] = ns
	return ns
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
