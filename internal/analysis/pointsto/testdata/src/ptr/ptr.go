// Package ptr is the points-to corpus: probe(x) calls are annotated with
// the object set the solver must compute for x. Distinct named types mark
// distinct allocation sites, so the expectations read as type names.
package ptr

func probe(v any) {}

type B1 struct{ n int }
type B2 struct{ n int }

// Box exercises field sensitivity: x and y must not merge.
type Box struct {
	x *B1
	y *B2
}

func fields() {
	b := Box{x: &B1{}, y: &B2{}}
	probe(b.x) // want `pts = \[ptr\.B1\]`
	probe(b.y) // want `pts = \[ptr\.B2\]`
	probe(b)   // want `pts = \[b ptr\.Box\]`
}

func ret1() *B1             { return &B1{} }
func passthrough(p *B1) *B1 { return p }

func inter() {
	v := passthrough(ret1())
	probe(v) // want `pts = \[ptr\.B1\]`
}

func containers() {
	s := make([]*B1, 0)
	s = append(s, &B1{})
	m := map[string]*B2{"k": {}}
	ch := make(chan *B1, 1)
	ch <- s[0]
	probe(s[0])   // want `pts = \[ptr\.B1\]`
	probe(m["k"]) // want `pts = \[ptr\.B2\]`
	probe(<-ch)   // want `pts = \[ptr\.B1\]`
}

// Inner/Outer exercise sub-objects: a value-struct field is its own
// abstract object, keyed by its own named type.
type Inner struct{ p *B2 }

type Outer struct {
	in Inner
	p  *B1
}

func sub() {
	o := &Outer{}
	o.in.p = &B2{}
	probe(o.in)   // want `pts = \[ptr\.Inner\]`
	probe(o.in.p) // want `pts = \[ptr\.B2\]`
}

func valcopy() {
	var o Outer
	o.p = &B1{}
	o2 := o
	probe(o2.p) // want `pts = \[ptr\.B1\]`
}

// Node exercises recursive structures and the solver's cycle collapsing
// (walk's return constraint is a self-loop).
type Node struct{ next *Node }

var g *Node

func cycle() {
	n1 := &Node{}
	n1.next = n1
	g = n1
	probe(g.next) // want `pts = \[ptr\.Node\]`
}

func walk(n *Node) *Node {
	if n.next != nil {
		return walk(n.next)
	}
	return n
}

func runWalk() {
	probe(walk(g)) // want `pts = \[ptr\.Node\]`
}

// Animal exercises CHA-bound interface dispatch.
type Animal interface{ Who() *B1 }

type Dog struct{ b *B1 }

func (d *Dog) Who() *B1 { return d.b }

func iface() {
	var a Animal = &Dog{b: &B1{}}
	probe(a.Who()) // want `pts = \[ptr\.B1\]`
}

// escape exercises the unknown-code marker: a dynamic call hands x to
// code the analysis cannot see.
func escape(f func(*B2)) {
	x := &B2{}
	f(x)
	probe(x) // want `pts = \[ptr\.B2!\]`
}

func spawn() {
	ch := make(chan *B1, 1)
	go func(c chan *B1) { c <- &B1{} }(ch)
	probe(<-ch) // want `pts = \[ptr\.B1\]`
}
