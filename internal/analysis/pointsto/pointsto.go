// Package pointsto computes a flow-insensitive, field-sensitive,
// context-insensitive Andersen-style points-to analysis over the loaded
// program (internal/analysis.Program). It is the aliasing substrate under
// the concurrency-hygiene tier: sharestate's ownership *inference* (which
// objects reachable from hot-path entries are confined to one channel
// shard vs. aliased across shards) and chanflow's channel-peer reasoning
// both read this solution, cached per program under "pointsto" alongside
// the PR 7 call graph and effect summaries.
//
// # Abstraction
//
// Abstract objects are allocation sites: composite literals, new/make
// calls, and — so that value structs and address-taken locals fit the same
// lattice — one identity object per struct-typed variable and one storage
// object per scalar variable whose address is taken. Struct values are
// conflated with references to them (a value copy aliases rather than
// clones), which over-approximates aliasing: the safe direction for every
// checker built on top. Nested value-struct fields become sub-objects
// keyed by their field path ("stats", "stats.hits"), so a chanlocal
// annotation on an inner type is checked against the inner object, not
// its container. Slices, arrays, maps and channels carry one "$elem"
// pseudo-field (array-insensitive; map keys untracked); pointers to
// scalars carry "$val".
//
// # Constraints
//
//	p = &x      AddrOf   pts(p) ∋ obj(x)
//	p = q       Copy     pts(p) ⊇ pts(q)
//	p = q.f     Load     ∀ o ∈ pts(q): pts(p) ⊇ pts(fld(o,f))
//	p.f = q     Store    ∀ o ∈ pts(p): pts(fld(o,f)) ⊇ pts(q)
//
// Calls bind arguments to parameters and results to destinations with
// Copy edges along the CHA call graph's resolved edges (static, interface
// candidates, spawns), so one summary-free pass covers the whole program;
// unresolved dynamic calls and calls into external code instead mark
// their argument objects as escaping to unknown code, which consumers
// treat as "may alias anything" (chanflow exempts such channels, the
// sharestate gate already refuses dynamic calls on the hot path).
// Every function body in the program generates constraints whether or not
// anything calls it — an object allocated in an uncalled exported
// constructor still exists, which is what lets the inference see the sim
// object graph through cmd/ and examples/ alike.
//
// # Solver
//
// A monotone worklist solver over the constraint graph: difference
// propagation along Copy edges, with Load/Store constraints materializing
// new edges as their base sets grow. Copy-edge cycles are collapsed with
// a union-find over Tarjan SCCs — once after constraint generation and
// again whenever a drained worklist added edges since the last collapse —
// so recursive data-structure constraints cost one representative node
// instead of quadratic re-propagation. The solution is the unique least
// fixed point, so processing order never shows in results; node and
// object IDs are assigned in (package, file, position) order so rendered
// chains and test output are deterministic too.
package pointsto

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"math/bits"
	"sort"
	"strings"

	"burstmem/internal/analysis"
	"burstmem/internal/analysis/callgraph"
)

// NodeID indexes one pointer-valued slot (a variable, a field of an
// abstract object, or an expression temporary).
type NodeID int32

// ObjID indexes one abstract object.
type ObjID int32

// ObjKind classifies how an abstract object came to be.
type ObjKind uint8

// Object kinds.
const (
	// KindAlloc is a composite literal or new(T) site.
	KindAlloc ObjKind = iota
	// KindMake is a make(slice/map/chan) site.
	KindMake
	// KindVar is the identity object of a struct-typed variable or the
	// storage object of an address-taken scalar variable.
	KindVar
	// KindSub is a nested value-struct field of another object.
	KindSub
	// KindExternal stands for whatever an unresolved or external call
	// returned: contents unknown.
	KindExternal
)

func (k ObjKind) String() string {
	switch k {
	case KindAlloc:
		return "alloc"
	case KindMake:
		return "make"
	case KindVar:
		return "var"
	case KindSub:
		return "sub"
	case KindExternal:
		return "external"
	}
	return "?"
}

// Object is one abstract object.
type Object struct {
	ID   ObjID
	Kind ObjKind
	// Type is the object's Go type (the struct type for an identity
	// object, the element-carrying type for makes); nil for externals.
	Type types.Type
	// TypeKey is the stable "pkgpath.TypeName" of a named object type
	// ("" when the type is unnamed or unknown) — the key the ownership
	// annotations use.
	TypeKey string
	// Pos is the allocation site (the declaration for var objects).
	Pos token.Pos
	// Fn is the allocating function ("" for package-level objects).
	Fn callgraph.ID
	// Var is set for KindVar objects.
	Var *types.Var
	// Parent/Path locate a KindSub object inside its root object.
	Parent ObjID
	Path   string
	// Global marks objects rooted at package-level storage (the identity
	// object of a package var).
	Global bool
	// EscapesUnknown is set after solving when the object flowed into an
	// unresolved dynamic call or an external (no-body) callee.
	EscapesUnknown bool

	label string
	// fields maps field path -> node holding that field's pointees.
	fields map[string]NodeID
}

// String renders the object for diagnostics: its type when named, else
// its kind and position.
func (o *Object) String() string {
	if o.label != "" {
		return o.label
	}
	if o.TypeKey != "" {
		return shortKey(o.TypeKey)
	}
	return o.Kind.String()
}

// fieldCons is one Load or Store constraint hanging off a base node.
type fieldCons struct {
	path string
	node NodeID // Load: destination; Store: source
}

// node is one solver node.
type node struct {
	rep NodeID // union-find parent; == own index when representative

	pts  *bitset
	prev *bitset // portion already propagated (difference propagation)

	copies []NodeID // outgoing copy edges (dst ⊇ this)
	loads  []fieldCons
	stores []fieldCons
}

// Stats summarizes one solve, for tests and the -timing trajectory.
type Stats struct {
	Nodes, Objects        int
	Copies, Loads, Stores int
	Collapsed             int // nodes merged away by cycle collapsing
	Waves                 int // collapse-and-drain rounds
}

// Result is the program's points-to solution.
type Result struct {
	Prog  *analysis.Program
	Graph *callgraph.Graph

	Objects []*Object
	Stats   Stats

	nodes     []*node
	varNodes  map[*types.Var]NodeID
	exprNodes map[ast.Expr]NodeID
	varObjs   map[*types.Var]ObjID
	subObjs   map[subKey]ObjID
	retNodes  map[callgraph.ID][]NodeID
	variadics map[subKey]NodeID

	escapeSeeds []NodeID       // nodes whose pointees leak to unknown code
	storeAlls   []storeAllCons // whole-struct stores, closed at wave ends
	worklist    []NodeID
	edgesDirty  bool // copy edges added since the last cycle collapse
}

// storeAllCons is one whole-struct store *p = v: every field of v's
// objects flows into the same field of p's pointees.
type storeAllCons struct {
	base, src NodeID
}

type subKey struct {
	parent ObjID
	path   string
}

// Of returns the program's points-to solution, computing it once per
// Program under the "pointsto" cache key (so burstlint -timing reports
// the solver's wall time and every consumer shares one solve).
func Of(prog *analysis.Program) *Result {
	return prog.Cached("pointsto", func() any {
		return solve(prog)
	}).(*Result)
}

// PointsTo returns the abstract objects a variable may point to (or, for
// a struct-typed variable, be), sorted by ID.
func (r *Result) PointsTo(v *types.Var) []*Object {
	n, ok := r.varNodes[v]
	if !ok {
		return nil
	}
	return r.objectsOf(n)
}

// ExprObjects returns the abstract objects an analyzed expression may
// evaluate to. Only expressions the constraint generator visited resolve;
// others return nil.
func (r *Result) ExprObjects(e ast.Expr) []*Object {
	n, ok := r.exprNodes[e]
	if !ok {
		return nil
	}
	return r.objectsOf(n)
}

// FieldPointees returns the objects held by one field path of obj,
// sorted by ID; nil when the path was never materialized.
func (r *Result) FieldPointees(obj *Object, path string) []*Object {
	n, ok := obj.fields[path]
	if !ok {
		return nil
	}
	return r.objectsOf(n)
}

// Fields returns obj's materialized field paths in sorted order.
func (r *Result) Fields(obj *Object) []string {
	out := make([]string, 0, len(obj.fields))
	for p := range obj.fields {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// GlobalRoots returns the package-level variables the solution tracks,
// in deterministic (position) order.
func (r *Result) GlobalRoots() []*types.Var {
	var out []*types.Var
	for v := range r.varNodes {
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

func (r *Result) objectsOf(n NodeID) []*Object {
	n = r.find(n)
	var out []*Object
	r.nodes[n].pts.forEach(func(o int) {
		out = append(out, r.Objects[o])
	})
	return out
}

// ---- construction ----

func solve(prog *analysis.Program) *Result {
	r := &Result{
		Prog:      prog,
		Graph:     callgraph.Build(prog),
		varNodes:  map[*types.Var]NodeID{},
		exprNodes: map[ast.Expr]NodeID{},
		varObjs:   map[*types.Var]ObjID{},
		subObjs:   map[subKey]ObjID{},
		retNodes:  map[callgraph.ID][]NodeID{},
		variadics: map[subKey]NodeID{},
	}
	// Package-level variables first, in load order, so global object IDs
	// are stable and dense.
	for _, pkg := range prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if v, ok := scope.Lookup(name).(*types.Var); ok {
				r.varNode(v)
			}
		}
	}
	for _, pkg := range prog.Pkgs {
		gen := &generator{r: r, pkg: pkg, info: pkg.TypesInfo}
		gen.pkgInit()
	}
	for _, fn := range r.Graph.Source {
		gen := &generator{r: r, fn: fn, info: fn.Pkg.TypesInfo, pkg: fn.Pkg}
		gen.function()
	}
	r.run()
	r.markEscapes()
	r.Stats.Nodes = len(r.nodes)
	r.Stats.Objects = len(r.Objects)
	return r
}

func (r *Result) newNode() NodeID {
	id := NodeID(len(r.nodes))
	r.nodes = append(r.nodes, &node{rep: id, pts: newBitset(), prev: newBitset()})
	return id
}

func (r *Result) newObject(kind ObjKind, t types.Type, pos token.Pos, fn callgraph.ID) *Object {
	o := &Object{
		ID:      ObjID(len(r.Objects)),
		Kind:    kind,
		Type:    t,
		TypeKey: namedKey(t),
		Pos:     pos,
		Fn:      fn,
		Parent:  -1,
		fields:  map[string]NodeID{},
	}
	r.Objects = append(r.Objects, o)
	return o
}

// varNode interns the node of a variable. Struct-typed variables are
// seeded with their identity object (value structs conflate with
// references); package-level identity objects are marked Global.
func (r *Result) varNode(v *types.Var) NodeID {
	if n, ok := r.varNodes[v]; ok {
		return n
	}
	n := r.newNode()
	r.varNodes[v] = n
	if isStructy(v.Type()) {
		o := r.varObject(v)
		r.addPts(n, o)
	}
	return n
}

// varObject interns the identity/storage object of a variable.
func (r *Result) varObject(v *types.Var) ObjID {
	if o, ok := r.varObjs[v]; ok {
		return o
	}
	o := r.newObject(KindVar, v.Type(), v.Pos(), "")
	o.Var = v
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		o.Global = true
		o.label = v.Pkg().Path() + "." + v.Name()
	} else {
		o.label = v.Name()
	}
	r.varObjs[v] = o.ID
	// The storage object of a scalar/pointer variable forwards "$val"
	// to the variable's own node, so *(&v) reads and writes v.
	if !isStructy(v.Type()) {
		r.Objects[o.ID].fields["$val"] = r.varNode(v)
	}
	return o.ID
}

// fieldNode interns the node for one field path of an object, seeding
// value-struct fields with their sub-object so nested ownership keys
// resolve to their own abstract object.
func (r *Result) fieldNode(o ObjID, path string) NodeID {
	obj := r.Objects[o]
	if n, ok := obj.fields[path]; ok {
		return n
	}
	n := r.newNode()
	obj.fields[path] = n
	if ft := fieldTypeOf(obj.Type, path); ft != nil && isStructy(ft) && !strings.HasPrefix(path, "$") {
		sub := r.subObject(o, path, ft)
		r.addPts(n, sub)
	}
	return n
}

// subObject interns the sub-object for a value-struct field path.
// Sub-object fields forward to the root object under the extended path,
// so (o,"stats") and (o,"stats.hits") stay one coherent object graph.
func (r *Result) subObject(parent ObjID, path string, t types.Type) ObjID {
	key := subKey{parent, path}
	if o, ok := r.subObjs[key]; ok {
		return o
	}
	root := r.Objects[parent]
	o := r.newObject(KindSub, t, root.Pos, root.Fn)
	o.Parent = parent
	o.Path = path
	o.Global = root.Global
	r.subObjs[key] = o.ID
	return o.ID
}

// subFieldNode resolves a field access on a sub-object to the root
// object's extended path.
func (r *Result) subFieldNode(o ObjID, path string) NodeID {
	obj := r.Objects[o]
	if obj.Kind == KindSub {
		return r.subFieldNode(obj.Parent, obj.Path+"."+path)
	}
	return r.fieldNode(o, path)
}

// ---- solver ----

func (r *Result) find(n NodeID) NodeID {
	for r.nodes[n].rep != n {
		r.nodes[n].rep = r.nodes[r.nodes[n].rep].rep
		n = r.nodes[n].rep
	}
	return n
}

func (r *Result) addPts(n NodeID, o ObjID) {
	n = r.find(n)
	if r.nodes[n].pts.add(int(o)) {
		r.push(n)
	}
}

func (r *Result) addCopy(src, dst NodeID) {
	src, dst = r.find(src), r.find(dst)
	if src == dst {
		return
	}
	ns := r.nodes[src]
	for _, d := range ns.copies {
		if r.find(d) == dst {
			return
		}
	}
	ns.copies = append(ns.copies, dst)
	r.Stats.Copies++
	r.edgesDirty = true
	if r.nodes[dst].pts.orWith(ns.pts) {
		r.push(dst)
	}
}

func (r *Result) addLoad(base NodeID, path string, dst NodeID) {
	base = r.find(base)
	r.nodes[base].loads = append(r.nodes[base].loads, fieldCons{path, dst})
	r.Stats.Loads++
	r.applyField(base, r.nodes[base].pts, fieldCons{path, dst}, true)
}

func (r *Result) addStore(base NodeID, path string, src NodeID) {
	base = r.find(base)
	r.nodes[base].stores = append(r.nodes[base].stores, fieldCons{path, src})
	r.Stats.Stores++
	r.applyField(base, r.nodes[base].pts, fieldCons{path, src}, false)
}

func (r *Result) applyField(base NodeID, over *bitset, c fieldCons, isLoad bool) {
	over.forEach(func(oi int) {
		fn := r.subFieldNode(ObjID(oi), c.path)
		if isLoad {
			r.addCopy(fn, c.node)
		} else {
			r.addCopy(c.node, fn)
		}
	})
}

func (r *Result) addStoreAll(base, src NodeID) {
	r.storeAlls = append(r.storeAlls, storeAllCons{base, src})
}

// applyStoreAlls links corresponding fields of whole-struct stores over
// the fields known so far; run() re-applies it each wave, so the closure
// converges even as new field nodes appear.
func (r *Result) applyStoreAlls() {
	for _, c := range r.storeAlls {
		srcObjs := r.nodes[r.find(c.src)].pts
		r.nodes[r.find(c.base)].pts.forEach(func(oi int) {
			srcObjs.forEach(func(si int) {
				if si == oi {
					return
				}
				for _, f := range r.fieldsOf(ObjID(si)) {
					r.addCopy(f.node, r.subFieldNode(ObjID(oi), f.path))
				}
			})
		})
	}
}

type fieldEntry struct {
	path string
	node NodeID
}

// fieldsOf enumerates an object's materialized fields in sorted order,
// resolving sub-objects against their root's path-prefixed entries.
func (r *Result) fieldsOf(o ObjID) []fieldEntry {
	obj := r.Objects[o]
	prefix := ""
	for obj.Kind == KindSub {
		prefix = obj.Path + "."
		obj = r.Objects[obj.Parent]
	}
	var out []fieldEntry
	for p, n := range obj.fields {
		if prefix == "" {
			out = append(out, fieldEntry{p, n})
		} else if strings.HasPrefix(p, prefix) {
			out = append(out, fieldEntry{strings.TrimPrefix(p, prefix), n})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].path < out[j].path })
	return out
}

func (r *Result) push(n NodeID) {
	r.worklist = append(r.worklist, n)
}

// run drains the worklist to the least fixed point, collapsing copy-edge
// cycles between waves.
func (r *Result) run() {
	r.collapse()
	for {
		r.Stats.Waves++
		for len(r.worklist) > 0 {
			n := r.find(r.worklist[len(r.worklist)-1])
			r.worklist = r.worklist[:len(r.worklist)-1]
			nd := r.nodes[n]
			delta := nd.pts.diff(nd.prev)
			if delta.empty() {
				continue
			}
			nd.prev.orWith(nd.pts)
			// New pointees activate the node's field constraints...
			for _, c := range nd.loads {
				r.applyField(n, delta, c, true)
			}
			for _, c := range nd.stores {
				r.applyField(n, delta, c, false)
			}
			// ...and flow along its copy edges.
			for _, d := range nd.copies {
				d = r.find(d)
				if d != n && r.nodes[d].pts.orWith(nd.pts) {
					r.push(d)
				}
			}
		}
		r.applyStoreAlls()
		if len(r.worklist) == 0 && !r.edgesDirty {
			return
		}
		if r.edgesDirty {
			r.collapse()
		}
	}
}

// collapse merges copy-edge SCCs into their representative node
// (iterative Tarjan, mirroring callgraph.SCCs), then re-seeds the
// worklist with every representative whose set outruns its propagated
// portion.
func (r *Result) collapse() {
	r.edgesDirty = false
	n := len(r.nodes)
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []NodeID
	next := int32(0)

	type frame struct {
		n    NodeID
		edge int
	}
	for root := 0; root < n; root++ {
		rt := r.find(NodeID(root))
		if index[rt] >= 0 {
			continue
		}
		frames := []frame{{n: rt}}
		index[rt], low[rt] = next, next
		next++
		stack = append(stack, rt)
		onStack[rt] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			nd := r.nodes[f.n]
			advanced := false
			for f.edge < len(nd.copies) {
				w := r.find(nd.copies[f.edge])
				f.edge++
				if w == f.n {
					continue
				}
				if index[w] < 0 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{n: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[f.n] {
					low[f.n] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[f.n] == index[f.n] {
				var comp []NodeID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == f.n {
						break
					}
				}
				if len(comp) > 1 {
					r.merge(comp)
				}
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].n
				if low[f.n] < low[p] {
					low[p] = low[f.n]
				}
			}
		}
	}
	for i := range r.nodes {
		ni := NodeID(i)
		if r.find(ni) == ni && !r.nodes[i].pts.diff(r.nodes[i].prev).empty() {
			r.push(ni)
		}
	}
}

// merge unions one SCC into its lowest-ID member.
func (r *Result) merge(comp []NodeID) {
	rep := comp[0]
	for _, c := range comp[1:] {
		if c < rep {
			rep = c
		}
	}
	rnd := r.nodes[rep]
	for _, c := range comp {
		if c == rep {
			continue
		}
		cn := r.nodes[c]
		cn.rep = rep
		rnd.pts.orWith(cn.pts)
		rnd.copies = append(rnd.copies, cn.copies...)
		rnd.loads = append(rnd.loads, cn.loads...)
		rnd.stores = append(rnd.stores, cn.stores...)
		cn.copies, cn.loads, cn.stores = nil, nil, nil
		r.Stats.Collapsed++
	}
	// Drop self and duplicate edges picked up in the union.
	var out []NodeID
	seen := map[NodeID]bool{rep: true}
	for _, d := range rnd.copies {
		d = r.find(d)
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	rnd.copies = out
}

// markEscapes floods EscapesUnknown from every node whose pointees were
// handed to code the analysis cannot see, then closes it over fields:
// whatever an escaped object's fields hold escaped with it.
func (r *Result) markEscapes() {
	seen := map[ObjID]bool{}
	var stack []ObjID
	add := func(o ObjID) {
		if !seen[o] {
			seen[o] = true
			stack = append(stack, o)
		}
	}
	for _, n := range r.escapeSeeds {
		r.nodes[r.find(n)].pts.forEach(func(o int) { add(ObjID(o)) })
	}
	for len(stack) > 0 {
		o := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		obj := r.Objects[o]
		obj.EscapesUnknown = true
		for _, fn := range obj.fields {
			r.nodes[r.find(fn)].pts.forEach(func(p int) { add(ObjID(p)) })
		}
	}
}

// ---- type helpers ----

// isStructy reports whether values of t get identity objects (structs and
// arrays — both are value aggregates whose fields/elements need a home).
func isStructy(t types.Type) bool {
	if t == nil {
		return false
	}
	switch types.Unalias(t).Underlying().(type) {
	case *types.Struct, *types.Array:
		return true
	}
	return false
}

// tracked reports whether expressions of t carry anything the analysis
// follows (pointers, aggregates, reference types, interfaces).
func tracked(t types.Type) bool {
	if t == nil {
		return false
	}
	switch types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
		*types.Interface, *types.Struct, *types.Array, *types.TypeParam:
		return true
	}
	return false
}

// namedKey renders the stable "pkgpath.TypeName" annotation key of a
// (possibly pointer-wrapped) named type, "" otherwise.
func namedKey(t types.Type) string {
	if t == nil {
		return ""
	}
	t = types.Unalias(t)
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	n = n.Origin()
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// fieldTypeOf resolves a (possibly dotted) field path against an object
// type, nil when it cannot be resolved ($-pseudo paths, unknown types).
func fieldTypeOf(t types.Type, path string) types.Type {
	if t == nil || strings.HasPrefix(path, "$") {
		return nil
	}
	for _, seg := range strings.Split(path, ".") {
		if strings.HasPrefix(seg, "$") {
			return nil
		}
		t = deref(t)
		st, ok := types.Unalias(t).Underlying().(*types.Struct)
		if !ok {
			return nil
		}
		found := false
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == seg {
				t = st.Field(i).Type()
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	return t
}

func deref(t types.Type) types.Type {
	if p, ok := types.Unalias(t).Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func shortKey(key string) string {
	if i := strings.LastIndexByte(key, '/'); i >= 0 {
		return key[i+1:]
	}
	return key
}

// ---- bitset ----

// bitset is a dense bitset over object IDs.
type bitset struct {
	words []uint64
}

func newBitset() *bitset { return &bitset{} }

func (b *bitset) add(i int) bool {
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	for len(b.words) <= w {
		b.words = append(b.words, 0)
	}
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	return true
}

func (b *bitset) orWith(o *bitset) bool {
	changed := false
	for len(b.words) < len(o.words) {
		b.words = append(b.words, 0)
	}
	for i, w := range o.words {
		if nw := b.words[i] | w; nw != b.words[i] {
			b.words[i] = nw
			changed = true
		}
	}
	return changed
}

// diff returns b minus o as a fresh bitset.
func (b *bitset) diff(o *bitset) *bitset {
	out := newBitset()
	for i, w := range b.words {
		if i < len(o.words) {
			w &^= o.words[i]
		}
		if w != 0 {
			for len(out.words) <= i {
				out.words = append(out.words, 0)
			}
			out.words[i] = w
		}
	}
	return out
}

func (b *bitset) empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// forEach visits set bits in ascending order.
func (b *bitset) forEach(f func(int)) {
	for i, w := range b.words {
		for w != 0 {
			f(i<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// DebugString renders a variable's solution for tests.
func (r *Result) DebugString(v *types.Var) string {
	objs := r.PointsTo(v)
	parts := make([]string, len(objs))
	for i, o := range objs {
		parts[i] = o.String()
	}
	return fmt.Sprintf("%s -> {%s}", v.Name(), strings.Join(parts, ", "))
}
