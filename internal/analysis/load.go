package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg mirrors the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves the package patterns with the go tool, parses each matched
// (non-dependency) package from source and type-checks it. Dependencies —
// including other matched packages — are imported from compiler export data
// produced by `go list -export`, so no transitive source type-checking is
// needed and the loaded type information is exactly what the compiler saw.
//
// Test files are not loaded: the analyzers in this tree check simulation
// and scheduling logic, not test scaffolding.
func Load(patterns ...string) ([]*Package, error) {
	listed, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Implicits:  map[ast.Node]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
		}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   lp.ImportPath,
			Dir:       lp.Dir,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("analysis: no packages matched %v", patterns)
	}
	return pkgs, nil
}

// goList shells out to `go list -export -deps -json` for the patterns.
func goList(patterns []string) ([]*listedPkg, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPkg
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		out = append(out, &p)
	}
	return out, nil
}
