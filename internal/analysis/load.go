package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	// Errors holds the package's parse and type-check failures as
	// position-stamped diagnostics (Analyzer "load"). A package with
	// errors is still returned — possibly with partial ASTs and type
	// information — but Run reports its errors instead of running
	// analyzers over it.
	Errors []Diagnostic
}

// listedPkg mirrors the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct {
		Pos string
		Err string
	}
}

// Load resolves the package patterns with the go tool, parses each matched
// (non-dependency) package from source and type-checks it. Dependencies —
// including other matched packages — are imported from compiler export data
// produced by `go list -export`, so no transitive source type-checking is
// needed and the loaded type information is exactly what the compiler saw.
//
// Test files are not loaded: the analyzers in this tree check simulation
// and scheduling logic, not test scaffolding.
//
// A package that fails to parse or type-check does not abort the load:
// its failures land in Package.Errors as "load" diagnostics (go list runs
// with -e for the same reason). Only pattern-level failures — nothing
// matched, go list itself broken — return an error.
func Load(patterns ...string) ([]*Package, error) {
	listed, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard || (len(lp.GoFiles) == 0 && lp.Error == nil) {
			continue
		}
		if lp.Error != nil && len(lp.GoFiles) == 0 {
			// No files at all: under a wildcard a tag-emptied directory
			// is just not a package here; an explicitly named pattern
			// that resolves to nothing is an operator error, not a
			// finding.
			if strings.Contains(lp.Error.Err, "build constraints exclude all Go files") {
				continue
			}
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		var loadErrs []Diagnostic
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				loadErrs = append(loadErrs, parseDiagnostics(err, lp.Dir, name)...)
			}
			if f != nil {
				files = append(files, f) // partial AST: positions still resolve
			}
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Instances:  map[*ast.Ident]types.Instance{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Implicits:  map[ast.Node]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
			// Collect every type error rather than stopping at the first;
			// the returned error from Check is redundant with these.
			Error: func(err error) {
				if te, ok := err.(types.Error); ok {
					loadErrs = append(loadErrs, Diagnostic{
						Analyzer: loadAnalyzerName,
						Pos:      te.Fset.Position(te.Pos),
						Message:  te.Msg,
					})
					return
				}
				loadErrs = append(loadErrs, Diagnostic{
					Analyzer: loadAnalyzerName,
					Pos:      token.Position{Filename: lp.Dir},
					Message:  err.Error(),
				})
			},
		}
		tpkg, _ := conf.Check(lp.ImportPath, fset, files, info)
		pkgs = append(pkgs, &Package{
			PkgPath:   lp.ImportPath,
			Dir:       lp.Dir,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
			Errors:    loadErrs,
		})
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("analysis: no packages matched %v", patterns)
	}
	return pkgs, nil
}

// loadAnalyzerName stamps loader failures so they sort and print like any
// other diagnostic.
const loadAnalyzerName = "load"

// parseDiagnostics converts a parser failure (usually a scanner.ErrorList)
// into load diagnostics.
func parseDiagnostics(err error, dir, name string) []Diagnostic {
	if list, ok := err.(scanner.ErrorList); ok {
		out := make([]Diagnostic, len(list))
		for i, e := range list {
			out[i] = Diagnostic{Analyzer: loadAnalyzerName, Pos: e.Pos, Message: e.Msg}
		}
		return out
	}
	return []Diagnostic{{
		Analyzer: loadAnalyzerName,
		Pos:      token.Position{Filename: filepath.Join(dir, name)},
		Message:  err.Error(),
	}}
}

// goList shells out to `go list -e -export -deps -json` for the patterns.
// The -e keeps broken packages in the listing (with their Error field set)
// instead of failing the whole walk.
func goList(patterns []string) ([]*listedPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPkg
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		out = append(out, &p)
	}
	return out, nil
}
