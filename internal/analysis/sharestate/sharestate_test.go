package sharestate_test

import (
	"testing"

	"burstmem/internal/analysis/analysistest"
	"burstmem/internal/analysis/sharestate"
)

func TestSharestate(t *testing.T) {
	analysistest.Run(t, sharestate.Analyzer, "./testdata/src/internal/dram")
}
