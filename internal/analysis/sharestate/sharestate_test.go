package sharestate_test

import (
	"testing"

	"burstmem/internal/analysis/analysistest"
	"burstmem/internal/analysis/sharestate"
)

func TestSharestate(t *testing.T) {
	analysistest.Run(t, sharestate.Analyzer, "./testdata/src/internal/dram")
}

// TestStaleAnnotations exercises inference mode: chanlocal claims the
// points-to solver falsifies (reported with the alias chain), the exempt
// aliasing shapes (partition containers, delegated slots), and inline
// suppression of an acknowledged violation.
func TestStaleAnnotations(t *testing.T) {
	analysistest.Run(t, sharestate.Analyzer, "./testdata/src/stale/internal/dram")
}
