// Package dram is sharestate test data: its import path ends in
// internal/dram, so the ownership gate covers its state.
package dram

// Channel is per-channel state: the type-level directive covers every
// field.
//
//burstmem:chanlocal
type Channel struct {
	cycle uint64
	stats Stats
}

// Stats is nested per-channel accounting, reached through Channel.
//
//burstmem:chanlocal
type Stats struct {
	hits uint64
}

// Pool arbitrates free slots across channels.
//
//burstmem:shared guarded by the controller, which ticks channels serially
type Pool struct {
	free int
}

// Bare has no annotation: writing it from the hot path is flagged at the
// field.
type Bare struct {
	n int // want `dram.Bare.n is written from hot-path entry dram.Tick`
}

// Mixed demonstrates a field-level override: only hot is annotated.
type Mixed struct {
	//burstmem:shared lock-free counter, reconciled at drain
	hot uint64
	cold int // want `dram.Mixed.cold is written from hot-path entry dram.Tick`
}

// Reasonless claims shared without saying how.
//
//burstmem:shared
type Reasonless struct { // want `burstmem:shared on dram.Reasonless requires a reason`
	x int
}

// Counter is cross-channel accounting.
//
//burstmem:shared single writer: the controller drain loop
var Counter uint64

// Wrong claims a package variable is channel-local.
//
//burstmem:chanlocal
var Wrong uint64 // want `package-level variable dram.Wrong cannot be channel-local`

// Tick is the hot-path entry point.
//
//burstmem:hotpath
func Tick(c *Channel, p *Pool, b *Bare, m *Mixed) {
	c.cycle++
	p.free--
	b.n = 1
	m.hot++
	m.cold = 2
	Counter++
	bump(c)
}

// bump writes nested per-channel state: covered by the Stats annotation,
// even though the write is one call below the entry.
func bump(c *Channel) { c.stats.hits++ }

// Dy calls through a function value on the hot path.
//
//burstmem:hotpath
func Dy(f func() int) int {
	return f() // want `call through a function value on the hot path \(reached from dram.Dy\)`
}

// cold writes unannotated state from outside any hot path: no annotation
// needed.
func cold(r *Reasonless) { r.x = 3 }

// DeepDy reaches a dynamic call two frames down; reported at the call
// itself, once.
//
//burstmem:hotpath
func DeepDy(f func() int) int { return mid(f) }

func mid(f func() int) int {
	return f() // want `call through a function value on the hot path \(reached from dram.DeepDy\)`
}
