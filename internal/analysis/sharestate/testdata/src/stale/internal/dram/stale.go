// Package dram is the stale-annotation corpus: chanlocal claims the
// points-to solver must falsify (with the alias chain as evidence), next
// to the aliasing shapes that are legitimately exempt.
package dram

// Registry is deliberately shared; its chans slice is the legitimate
// partition idiom, its cur field is a cross-shard alias.
//
//burstmem:shared registry of every shard, read under the barrier
type Registry struct {
	chans []*Channel
	cur   *Channel
	//burstmem:chanlocal
	scratch *Stats
}

// Channel claims shard confinement, but Registry.cur aliases it across
// shards — the claim is stale.
//
//burstmem:chanlocal
type Channel struct { // want `Channel is annotated //burstmem:chanlocal but the points-to solver proves it cross-shard-reachable via dram\.Registry -> dram\.Registry\.cur`
	cycle uint64
}

// Stats is cross-shard only through the delegated scratch slot and the
// partition container below — both exempt, so the claim survives.
//
//burstmem:chanlocal
type Stats struct {
	hits uint64
}

// Local is aliased by a package variable — nothing is more cross-shard
// than that.
//
//burstmem:chanlocal
type Local struct { // want `Local is annotated //burstmem:chanlocal but the points-to solver proves it cross-shard-reachable via var dram\.hot`
	n uint64
}

var hot *Local

var perShard = make([]*Stats, 0)

func setup() {
	r := &Registry{chans: make([]*Channel, 0, 4)}
	c := &Channel{}
	s := &Stats{}
	wire(r, c, s)
	keep(&Local{})
	retain(&Suppressed{})
}

func wire(r *Registry, c *Channel, s *Stats) {
	r.chans = append(r.chans, c)
	r.cur = c
	r.scratch = s
	perShard = append(perShard, s)
}

func keep(l *Local) {
	hot = l
}

// Suppressed is cross-shard the same way Local is, but the report is
// acknowledged inline.
//
//burstmem:chanlocal
//lint:ignore sharestate transitional alias audited by hand
type Suppressed struct {
	n uint64
}

var held *Suppressed

func retain(s *Suppressed) {
	held = s
}
