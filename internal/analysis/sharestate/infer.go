package sharestate

// Ownership inference: the points-to upgrade that turns the gate from
// annotation-trust into annotation-check.
//
// A //burstmem:chanlocal annotation on a type claims every object of that
// type is confined to one channel shard. The solver audits the claim by
// reachability over the points-to object graph: an object is cross-shard
// when a path from cross-shard roots — package-level variables (every
// shard sees them) and objects of //burstmem:shared types (cross-shard by
// declaration) — reaches it. Two edge shapes legitimately hand a
// chanlocal object to shard-crossing context and are exempt:
//
//   - a container element edge ("$elem"): a slice/array/map of chanlocal
//     objects under a shared owner is the shard-partition idiom itself
//     (Controller.channels holding one *Channel per shard);
//   - a field that is itself annotated //burstmem:chanlocal: a chanlocal
//     slot inside a shared type (the memctrl.Access pattern) declares
//     "this slot belongs to whichever shard owns the value".
//
// Any other path — a bare scalar field of a shared-reachable object, a
// package variable pointing straight at a chanlocal object — falsifies
// the annotation, and the gate reports the full alias chain from root to
// object. Traversal stops at chanlocal-typed objects, so a shard's
// internal object graph is never itself treated as shared context.
//
// The same reachability classifies unannotated state: a written target
// whose objects are shared-reachable gets //burstmem:shared suggested,
// anything else //burstmem:chanlocal — so missing-annotation diagnostics
// now say which annotation the solver believes is true.

import (
	"sort"
	"strings"

	"burstmem/internal/analysis"
	"burstmem/internal/analysis/pointsto"
)

// inference is the reachability classification of one program.
type inference struct {
	res *pointsto.Result
	own *ownership

	// sharedTypes records the in-scope type keys with shared-reachable
	// objects, for annotation suggestions on unannotated targets.
	sharedTypes map[string]bool

	// violations are chanlocal-typed objects proven cross-shard-reachable.
	violations []violation

	chain   map[pointsto.ObjID]*step
	visited map[pointsto.ObjID]bool
}

// step is one BFS tree edge, for rendering alias chains.
type step struct {
	from  pointsto.ObjID // -1 when the parent is a root
	label string         // rendered hop: "dram.Registry.cur", "var dram.hot"
}

// violation is one falsified chanlocal claim.
type violation struct {
	typeKey string   // the chanlocal-annotated type
	chain   []string // alias chain from a cross-shard root to the object
}

// infer runs the reachability classification.
func infer(prog *analysis.Program, own *ownership) *inference {
	in := &inference{
		res:         pointsto.Of(prog),
		own:         own,
		sharedTypes: map[string]bool{},
		chain:       map[pointsto.ObjID]*step{},
		visited:     map[pointsto.ObjID]bool{},
	}
	in.run()
	return in
}

func (in *inference) run() {
	var queue []pointsto.ObjID

	enter := func(o *pointsto.Object, s *step) {
		if in.visited[o.ID] {
			return
		}
		in.visited[o.ID] = true
		in.chain[o.ID] = s
		if o.TypeKey != "" && in.own.inScopeTarget(o.TypeKey) {
			in.sharedTypes[o.TypeKey] = true
		}
		queue = append(queue, o.ID)
	}

	// Roots: package-level variables (their identity objects and
	// pointees) ...
	for _, v := range in.res.GlobalRoots() {
		label := "var " + short(v.Pkg().Path()+"."+v.Name())
		for _, o := range in.res.PointsTo(v) {
			in.edge(o, &step{from: -1, label: label}, "", enter)
		}
	}
	// ... and every object of a //burstmem:shared type, reachable or not:
	// shared is a cross-shard claim by declaration.
	for _, o := range in.res.Objects {
		if in.kindOf(o.TypeKey) == shared {
			enter(o, &step{from: -1, label: short(o.TypeKey)})
		}
	}

	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		obj := in.res.Objects[id]
		for _, path := range in.res.Fields(obj) {
			// Dotted paths mirror a sub-object's own single-segment
			// edges; traversing both would double every hop.
			if strings.Contains(path, ".") {
				continue
			}
			label := in.edgeLabel(obj, path)
			fieldKey := ""
			if obj.TypeKey != "" && !strings.HasPrefix(path, "$") {
				fieldKey = obj.TypeKey + "." + path
			}
			for _, o2 := range in.res.FieldPointees(obj, path) {
				in.fieldEdge(obj, o2, path, fieldKey, label, enter)
			}
		}
	}
}

// fieldEdge classifies one traversal hop from shared-reachable context.
func (in *inference) fieldEdge(from, to *pointsto.Object, path, fieldKey, label string, enter func(*pointsto.Object, *step)) {
	if to.Kind == pointsto.KindExternal {
		return
	}
	s := &step{from: from.ID, label: label}
	if in.kindOf(to.TypeKey) == chanlocal {
		// Boundary: entering a shard's claimed-private object graph.
		switch {
		case path == "$elem":
			// Partition container — the legitimate way shards hang off
			// shared owners.
		case fieldKey != "" && in.fieldKind(fieldKey) == chanlocal:
			// Delegated slot inside a shared type.
		default:
			in.violations = append(in.violations, violation{
				typeKey: to.TypeKey,
				chain:   in.renderChain(s),
			})
		}
		return
	}
	in.edge(to, s, path, enter)
}

// edge enters an ordinary (non-boundary) object, respecting the chanlocal
// stop rule for root seeding too.
func (in *inference) edge(o *pointsto.Object, s *step, path string, enter func(*pointsto.Object, *step)) {
	if o.Kind == pointsto.KindExternal {
		return
	}
	if in.kindOf(o.TypeKey) == chanlocal {
		// A root pointing straight at a chanlocal object: only package
		// variables do this (shared-type roots go through fieldEdge),
		// and a package variable seeing a shard's private state is never
		// legitimate.
		if path == "" {
			in.violations = append(in.violations, violation{
				typeKey: o.TypeKey,
				chain:   in.renderChain(s),
			})
		}
		return
	}
	enter(o, s)
}

// kindOf returns the type-level annotation of a type key (0 when none).
func (in *inference) kindOf(typeKey string) annotKind {
	if typeKey == "" {
		return 0
	}
	if a, ok := in.own.ann[typeKey]; ok && in.own.typeKeys[typeKey] {
		return a.kind
	}
	return 0
}

// fieldKind returns the field-level annotation of "pkg.Type.field".
func (in *inference) fieldKind(fieldKey string) annotKind {
	if a, ok := in.own.ann[fieldKey]; ok {
		return a.kind
	}
	return 0
}

// edgeLabel renders one hop for alias chains.
func (in *inference) edgeLabel(obj *pointsto.Object, path string) string {
	owner := obj.TypeKey
	if owner == "" {
		owner = obj.String()
	}
	owner = short(owner)
	if path == "$elem" {
		return owner + "[…]"
	}
	if path == "$val" {
		return "*" + owner
	}
	return owner + "." + path
}

// renderChain walks BFS parent steps back to a root, outermost first.
func (in *inference) renderChain(last *step) []string {
	var rev []string
	for s := last; s != nil; {
		rev = append(rev, s.label)
		if s.from < 0 {
			break
		}
		s = in.chain[s.from]
	}
	out := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// suggest returns the annotation the inference believes fits an
// unannotated written target.
func (in *inference) suggest(target string) string {
	if in.own.isVar(target) {
		return sharedDirective + " <reason>"
	}
	typeKey := target
	if i := strings.LastIndexByte(target, '.'); i >= 0 && in.own.typeKeys[target[:i]] {
		typeKey = target[:i]
	}
	if in.sharedTypes[typeKey] {
		return sharedDirective + " <reason>"
	}
	return chanlocalDirective
}

// report emits one diagnostic per falsified chanlocal type, at the
// annotated declaration, with the shortest alias chain as evidence.
func (in *inference) report(pass *analysis.ProgramPass) {
	byType := map[string]violation{}
	for _, v := range in.violations {
		if prev, ok := byType[v.typeKey]; !ok || len(v.chain) < len(prev.chain) {
			byType[v.typeKey] = v
		}
	}
	keys := make([]string, 0, len(byType))
	for k := range byType {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := byType[k]
		pos := in.own.ann[k].pos
		if dp, ok := in.own.decl[k]; ok {
			pos = dp
		}
		pass.ReportChainf(pos, v.chain,
			"%s is annotated //burstmem:chanlocal but the points-to solver proves it cross-shard-reachable via %s: move the reference behind a per-shard container, annotate the referencing field //burstmem:chanlocal, or mark the type //burstmem:shared <reason>",
			short(k), strings.Join(v.chain, " -> "))
	}
}
