// Package sharestate is the shared-state ownership gate for the
// parallel-sim refactor: every piece of mutable state the per-cycle hot
// path can reach must declare who owns it.
//
// The planned parallelization runs each memory channel on its own
// goroutine, so every struct field and package variable written from a
// `//burstmem:hotpath` entry point in the simulation core (internal/{dram,
// memctrl, core, sched, sim, trace}) must carry one of two ownership
// annotations:
//
//	//burstmem:chanlocal
//	//burstmem:shared <reason>
//
// chanlocal asserts the state is reached only through one channel's object
// graph — safe to mutate without synchronization once channels run
// concurrently. shared admits cross-channel access and must say how it
// will be arbitrated (the reason is mandatory). The directive goes on the
// type declaration (covering every field), on an individual field
// (overriding the type), or on a package variable — which can only ever be
// shared: every channel in the process sees a package variable, so
// chanlocal on one is flagged as a contradiction.
//
// The gate is interprocedural: effect summaries
// (internal/analysis/summary) over the CHA call graph give the transitive
// write set of each hot-path entry, so state mutated five calls deep in
// another package is held to the same standard as a direct store. And
// since PR 10 it is annotation-CHECKING, not annotation-trusting: the
// points-to solver (internal/analysis/pointsto) audits every chanlocal
// claim by reachability over the abstract object graph — see infer.go for
// the root set and the two exempt edge shapes (partition containers,
// delegated chanlocal slots). Four things are reported:
//
//   - a written field/variable in scope with no annotation (at its
//     declaration, naming one reaching entry point and the annotation the
//     inference suggests);
//   - an annotation that cannot be honoured (shared without a reason,
//     chanlocal on a package variable);
//   - a //burstmem:chanlocal type the solver proves cross-shard-reachable
//     — a stale or wrong claim — with the alias chain from a cross-shard
//     root as the diagnostic;
//   - an unresolved dynamic call reached from a hot-path entry: a call
//     through a function value defeats the whole analysis, so the hot path
//     refuses them (resolve it, or suppress with //lint:ignore sharestate
//     and a reason).
//
// Writes reached only from cold code need no annotation: the gate protects
// exactly the code that will run concurrently.
package sharestate

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"burstmem/internal/analysis"
	"burstmem/internal/analysis/callgraph"
	"burstmem/internal/analysis/summary"
)

// Analyzer is the sharestate pass.
var Analyzer = &analysis.Analyzer{
	Name:       "sharestate",
	Doc:        "hot-path-reachable mutable state must carry a //burstmem:chanlocal or //burstmem:shared ownership annotation",
	RunProgram: run,
}

// Ownership directives.
const (
	chanlocalDirective = "//burstmem:chanlocal"
	sharedDirective    = "//burstmem:shared"
)

// scoped are the import-path suffixes whose state the gate covers — the
// packages the parallel-sim refactor will split across goroutines.
var scoped = []string{
	"internal/dram", "internal/memctrl", "internal/core",
	"internal/sched", "internal/sim", "internal/trace",
	"internal/parsim", "internal/cpu",
}

func inScope(path string) bool {
	for _, s := range scoped {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// annotKind is the ownership claim of one directive.
type annotKind uint8

const (
	chanlocal annotKind = iota + 1
	shared
)

// annot is one parsed ownership directive.
type annot struct {
	kind   annotKind
	reason string
	pos    token.Pos
}

// ownership indexes the annotations and declaration sites of the in-scope
// packages, keyed by the same target strings the effect summaries use:
// "pkgpath.Type", "pkgpath.Type.field", "pkgpath.var".
type ownership struct {
	ann      map[string]annot
	decl     map[string]token.Pos
	typeKeys map[string]bool // keys recorded from TypeSpecs
	pkgs     map[string]bool // in-scope package paths seen in the load
}

func run(pass *analysis.ProgramPass) {
	set := summary.Of(pass.Prog)
	own := collect(pass)

	// Validation applies to every annotation, reachable or not: a wrong
	// claim is wrong even before anything writes through it.
	validate(pass, own)

	// Inference audits the surviving claims against the points-to
	// solution and classifies unannotated state for the suggestions
	// below.
	inf := infer(pass.Prog, own)
	inf.report(pass)

	type reach struct {
		key   summary.Key
		entry *callgraph.Func
	}
	unannotated := map[string]reach{}
	dynamic := map[token.Pos]*callgraph.Func{}
	for _, fn := range set.Graph.Source {
		if !fn.Hotpath || !inScope(fn.Pkg.PkgPath) {
			continue
		}
		sum := set.Funcs[fn.ID]
		if sum == nil {
			continue
		}
		for _, eff := range sum.Sorted() {
			switch eff.Kind {
			case summary.GlobalWrite, summary.FieldWrite:
				if !own.inScopeTarget(eff.Target) || own.annotated(eff.Target) {
					continue
				}
				if _, seen := unannotated[eff.Target]; !seen {
					unannotated[eff.Target] = reach{key: eff.Key, entry: fn}
				}
			case summary.DynamicCall:
				if _, seen := dynamic[eff.Pos]; !seen {
					dynamic[eff.Pos] = fn
				}
			}
		}
	}

	targets := make([]string, 0, len(unannotated))
	for t := range unannotated {
		targets = append(targets, t)
	}
	sort.Strings(targets)
	for _, t := range targets {
		r := unannotated[t]
		pos, ok := own.decl[t]
		if !ok {
			pos = r.entry.Pos()
		}
		pass.Reportf(pos, "%s is written from hot-path entry %s%s but has no ownership annotation: inference suggests %s",
			short(t), r.entry.Name, via(set, r.entry.ID, r.key), inf.suggest(t))
	}

	dynPos := make([]token.Pos, 0, len(dynamic))
	for p := range dynamic {
		dynPos = append(dynPos, p)
	}
	sort.Slice(dynPos, func(i, j int) bool { return dynPos[i] < dynPos[j] })
	for _, p := range dynPos {
		pass.Reportf(p, "call through a function value on the hot path (reached from %s): the ownership gate cannot see what it writes; call the function directly",
			dynamic[p].Name)
	}
}

// via renders the inheritance chain of an effect, or "".
func via(set *summary.Set, id callgraph.ID, k summary.Key) string {
	path := set.Path(id, k)
	if len(path) == 0 {
		return ""
	}
	return " (via " + strings.Join(path, " -> ") + ")"
}

// short strips the directory part of a target's package path:
// "burstmem/internal/dram.Channel.cycle" -> "dram.Channel.cycle".
func short(target string) string {
	if i := strings.LastIndexByte(target, '/'); i >= 0 {
		return target[i+1:]
	}
	return target
}

// inScopeTarget reports whether the effect target belongs to one of the
// gate's packages as loaded.
func (o *ownership) inScopeTarget(target string) bool {
	for p := range o.pkgs {
		if strings.HasPrefix(target, p+".") {
			return true
		}
	}
	return false
}

// annotated reports whether the target carries a directive, directly or —
// for fields — on its type.
func (o *ownership) annotated(target string) bool {
	if _, ok := o.ann[target]; ok {
		return true
	}
	if i := strings.LastIndexByte(target, '.'); i >= 0 {
		if _, ok := o.ann[target[:i]]; ok {
			return true
		}
	}
	return false
}

// collect parses the ownership directives and declaration sites of every
// in-scope package.
func collect(pass *analysis.ProgramPass) *ownership {
	own := &ownership{
		ann:      map[string]annot{},
		decl:     map[string]token.Pos{},
		typeKeys: map[string]bool{},
		pkgs:     map[string]bool{},
	}
	for _, pkg := range pass.Prog.Pkgs {
		if !inScope(pkg.PkgPath) {
			continue
		}
		own.pkgs[pkg.PkgPath] = true
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				switch gd.Tok {
				case token.TYPE:
					for _, spec := range gd.Specs {
						ts := spec.(*ast.TypeSpec)
						key := pkg.PkgPath + "." + ts.Name.Name
						own.decl[key] = ts.Pos()
						own.typeKeys[key] = true
						own.add(key, gd.Doc, ts.Doc, ts.Comment)
						if st, ok := ts.Type.(*ast.StructType); ok {
							for _, f := range st.Fields.List {
								for _, name := range f.Names {
									fkey := key + "." + name.Name
									own.decl[fkey] = name.Pos()
									own.add(fkey, f.Doc, f.Comment)
								}
							}
						}
					}
				case token.VAR:
					for _, spec := range gd.Specs {
						vs := spec.(*ast.ValueSpec)
						for _, name := range vs.Names {
							key := pkg.PkgPath + "." + name.Name
							own.decl[key] = name.Pos()
							own.add(key, gd.Doc, vs.Doc, vs.Comment)
						}
					}
				}
			}
		}
	}
	return own
}

// add parses the first ownership directive found in the comment groups.
func (o *ownership) add(key string, groups ...*ast.CommentGroup) {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			switch {
			case c.Text == chanlocalDirective || strings.HasPrefix(c.Text, chanlocalDirective+" "):
				o.ann[key] = annot{kind: chanlocal, pos: c.Pos()}
				return
			case c.Text == sharedDirective || strings.HasPrefix(c.Text, sharedDirective+" "):
				reason := strings.TrimSpace(strings.TrimPrefix(c.Text, sharedDirective))
				o.ann[key] = annot{kind: shared, reason: reason, pos: c.Pos()}
				return
			}
		}
	}
}

// validate reports annotations whose claim cannot hold.
func validate(pass *analysis.ProgramPass, own *ownership) {
	keys := make([]string, 0, len(own.ann))
	for k := range own.ann {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		a := own.ann[k]
		// Report at the annotated declaration, not the directive: the
		// declaration is what the annotation mis-describes.
		pos := a.pos
		if dp, ok := own.decl[k]; ok {
			pos = dp
		}
		if a.kind == shared && a.reason == "" {
			pass.Reportf(pos, "burstmem:shared on %s requires a reason: say how cross-channel access is arbitrated", short(k))
		}
		if a.kind == chanlocal && own.isVar(k) {
			pass.Reportf(pos, "package-level variable %s cannot be channel-local: every channel sees it; use //burstmem:shared <reason>", short(k))
		}
	}
}

// isVar reports whether the key names a package variable: declared, not
// recorded from a TypeSpec, and not a field of a recorded type. Var and
// type keys share a namespace ("pkg.Name"); Go forbids a var and a type of
// the same name in one package, so the AST origin disambiguates.
func (o *ownership) isVar(key string) bool {
	if _, ok := o.decl[key]; !ok || o.typeKeys[key] {
		return false
	}
	if i := strings.LastIndexByte(key, '.'); i >= 0 && o.typeKeys[key[:i]] {
		return false // field of a recorded type
	}
	return true
}
