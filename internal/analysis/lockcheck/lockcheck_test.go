package lockcheck_test

import (
	"testing"

	"burstmem/internal/analysis/analysistest"
	"burstmem/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, lockcheck.Analyzer, "./testdata/src/lk")
}
