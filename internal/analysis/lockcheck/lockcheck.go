// Package lockcheck verifies lock discipline on sync.Mutex and
// sync.RWMutex values: every Lock must reach its matching Unlock on all
// paths to return. The experiment harness aggregates results from worker
// goroutines under small mutexes, and an early return between Lock and
// Unlock deadlocks the sweep only when a particular workload/geometry
// combination takes that branch — precisely the kind of bug a -race CI
// stage cannot see (no data race, just a stuck run).
//
// The analysis is a forward may-state bitset over the CFG, one state per
// mutex access path and mode (write Lock/Unlock, read RLock/RUnlock
// tracked independently):
//
//   - Lock while possibly held (same goroutine) — report;
//   - Unlock while possibly not held — report;
//   - possibly held at function exit — report at the acquiring Lock.
//
// Deferred unlocks are handled by construction: the CFG routes every
// return through the deferred-call chain, so `mu.Lock(); defer
// mu.Unlock()` reaches Exit in the released state without special cases.
// Calls inside `go` statements and function literals run on other
// goroutines or at another time and are excluded from the block effect;
// paths ending in panic/os.Exit never reach Exit and are not required to
// release (the process is gone).
//
// Double-RLock is deliberately not reported: read locks are shared and
// re-acquisition by the same goroutine, while inadvisable, is the
// documented behaviour the repo relies on nowhere — flagging it would
// only generate noise on reader helpers calling reader helpers.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"burstmem/internal/analysis"
	"burstmem/internal/analysis/astx"
	"burstmem/internal/analysis/cfg"
	"burstmem/internal/analysis/dataflow"
)

// Analyzer is the lockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "every sync.Mutex/RWMutex Lock must reach its matching Unlock on all paths to return",
	Run:  run,
}

// State bits: a mutex may be in either or both states where paths merge.
const (
	mayUnlocked uint8 = 1 << iota
	mayLocked
)

// lockState is one mutex's may-state plus the position of the earliest
// Lock that could have acquired it (for exit reports).
type lockState struct {
	bits uint8
	pos  token.Pos
}

// fact maps "path/mode" keys ("h.mu/w", "s.cache.mu/r") to states. An
// absent key means the function has not touched that mutex: implicitly
// unlocked.
type fact map[string]lockState

func run(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, fi := range astx.Funcs(file) {
			if fi.Body() == nil {
				continue
			}
			checkFunc(pass, fi.Node)
		}
	}
}

func checkFunc(pass *analysis.Pass, fn ast.Node) {
	g := cfg.New(fn)
	p := &problem{pass: pass}
	res := dataflow.Solve[fact](g, p)

	// Replay for call-site reports: each Lock/Unlock sees the state the
	// solver computed just before it.
	for _, b := range g.Blocks {
		f := clone(res.In[b])
		for _, n := range b.Nodes {
			p.apply(n, f, true)
		}
	}

	// Exit report: anything possibly held when the function returns.
	exit := res.In[g.Exit]
	keys := make([]string, 0, len(exit))
	for k := range exit {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st := exit[k]
		if st.bits&mayLocked == 0 || !st.pos.IsValid() {
			continue
		}
		path, mode, _ := strings.Cut(k, "/")
		p.pass.Reportf(st.pos, "%s.%s may still be held at return; missing %s on some path",
			path, lockName(mode), unlockName(mode))
	}
}

func lockName(mode string) string {
	if mode == "r" {
		return "RLock()"
	}
	return "Lock()"
}

func unlockName(mode string) string {
	if mode == "r" {
		return "RUnlock()"
	}
	return "Unlock()"
}

type problem struct {
	pass *analysis.Pass
}

func (p *problem) Direction() dataflow.Direction { return dataflow.Forward }
func (p *problem) Boundary() fact                { return fact{} }
func (p *problem) Bottom() fact                  { return nil }

func (p *problem) Join(a, b fact) fact {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := fact{}
	merge := func(x, y fact) {
		for k, v := range x {
			w, ok := y[k]
			if !ok {
				w = lockState{bits: mayUnlocked} // untouched on the other path
			}
			s := lockState{bits: v.bits | w.bits, pos: v.pos}
			if !s.pos.IsValid() || (w.pos.IsValid() && w.pos < s.pos) {
				s.pos = w.pos
			}
			out[k] = s
		}
	}
	merge(a, b)
	merge(b, a)
	return out
}

func (p *problem) Equal(a, b fact) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func (p *problem) Transfer(b *cfg.Block, in fact) fact {
	if in == nil {
		return nil // unreachable
	}
	out := clone(in)
	for _, n := range b.Nodes {
		p.apply(n, out, false)
	}
	return out
}

func clone(f fact) fact {
	out := fact{}
	for k, v := range f {
		out[k] = v
	}
	return out
}

// apply folds one node's lock operations into the fact. With report set
// it also diagnoses double-Lock and Unlock-of-unlocked at each site.
// Deferred and go'd calls do not execute here: the former reach the
// CFG's defer-chain blocks as bare CallExprs, the latter run on another
// goroutine whose locking this function-local analysis cannot order.
func (p *problem) apply(n ast.Node, f fact, report bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			p.applyCall(x, f, report)
		}
		return true
	})
}

func (p *problem) applyCall(call *ast.CallExpr, f fact, report bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	mode, acquire, ok := lockMethod(sel.Sel.Name)
	if !ok || !p.isMutexMethod(sel) {
		return
	}
	path := astx.PathString(sel.X)
	if path == "" {
		return
	}
	key := path + "/" + mode
	st := f[key]
	if st.bits == 0 {
		st.bits = mayUnlocked // first touch: function entered with it free
	}
	if acquire {
		if report && mode == "w" && st.bits&mayLocked != 0 {
			p.pass.Reportf(call.Pos(), "%s.Lock() may be called with %s already held", path, path)
		}
		f[key] = lockState{bits: mayLocked, pos: call.Pos()}
		return
	}
	if report && st.bits&mayUnlocked != 0 {
		p.pass.Reportf(call.Pos(), "%s.%s may be called with %s not held", path, sel.Sel.Name+"()", path)
	}
	f[key] = lockState{bits: mayUnlocked}
}

// lockMethod classifies a method name: mode "w" or "r", acquire or
// release.
func lockMethod(name string) (mode string, acquire, ok bool) {
	switch name {
	case "Lock":
		return "w", true, true
	case "Unlock":
		return "w", false, true
	case "RLock":
		return "r", true, true
	case "RUnlock":
		return "r", false, true
	}
	return "", false, false
}

// isMutexMethod reports whether the selected method belongs to
// sync.Mutex or sync.RWMutex, including promotion through embedding.
func (p *problem) isMutexMethod(sel *ast.SelectorExpr) bool {
	if s, ok := p.pass.TypesInfo.Selections[sel]; ok {
		if fn, ok := s.Obj().(*types.Func); ok {
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
				return isMutex(recv.Type())
			}
		}
		return false
	}
	// Package-qualified or untyped fallback: look at the receiver
	// expression's type directly.
	if tv, ok := p.pass.TypesInfo.Types[sel.X]; ok {
		return isMutex(tv.Type)
	}
	return false
}

func isMutex(t types.Type) bool {
	return astx.IsNamed(t, "sync", "Mutex") || astx.IsNamed(t, "sync", "RWMutex")
}
