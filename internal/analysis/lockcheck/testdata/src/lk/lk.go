// Package lk is lockcheck test data: lock/unlock pairing across
// branches, defers and early returns.
package lk

import (
	"os"
	"sync"
)

type harness struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	cache map[string]int
}

// straightLine pairs Lock with Unlock: clean.
func (h *harness) straightLine(k string, v int) {
	h.mu.Lock()
	h.cache[k] = v
	h.mu.Unlock()
}

// deferred releases through the defer chain on every return: clean.
func (h *harness) deferred(k string) (int, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	v, ok := h.cache[k]
	if !ok {
		return 0, false
	}
	return v, true
}

// earlyReturn leaks the lock on the miss path.
func (h *harness) earlyReturn(k string) int {
	h.mu.Lock() // want `h\.mu\.Lock\(\) may still be held at return; missing Unlock\(\) on some path`
	v, ok := h.cache[k]
	if !ok {
		return 0
	}
	h.mu.Unlock()
	return v
}

// doubleLock re-acquires a mutex the same goroutine already holds:
// guaranteed deadlock.
func (h *harness) doubleLock(k string, v int) {
	h.mu.Lock()
	h.cache[k] = v
	h.mu.Lock() // want `h\.mu\.Lock\(\) may be called with h\.mu already held`
	h.mu.Unlock()
}

// unlockUnlocked releases on a path where no Lock happened.
func (h *harness) unlockUnlocked(c bool) {
	if c {
		h.mu.Lock()
	}
	h.mu.Unlock() // want `h\.mu\.Unlock\(\) may be called with h\.mu not held`
}

// readLock pairs RLock with RUnlock; the modes are independent, so the
// write Unlock below does not satisfy the read acquisition.
func (h *harness) readLock(k string) int {
	h.rw.RLock()
	v := h.cache[k]
	h.rw.RUnlock()
	return v
}

// modeMismatch releases the wrong side of an RWMutex.
func (h *harness) modeMismatch(k string) int {
	h.rw.RLock() // want `h\.rw\.RLock\(\) may still be held at return; missing RUnlock\(\) on some path`
	v := h.cache[k]
	h.rw.Unlock() // want `h\.rw\.Unlock\(\) may be called with h\.rw not held`
	return v
}

// branches release on every path: the join sees only the unlocked state.
func (h *harness) branches(k string, c bool) int {
	h.mu.Lock()
	if c {
		v := h.cache[k]
		h.mu.Unlock()
		return v
	}
	h.mu.Unlock()
	return 0
}

// fatalPath: a path that kills the process need not release.
func (h *harness) fatalPath(k string) int {
	h.mu.Lock()
	v, ok := h.cache[k]
	if !ok {
		os.Exit(2)
	}
	h.mu.Unlock()
	return v
}

// otherGoroutine: locking inside a go statement or literal is that
// goroutine's business, analyzed in the literal's own CFG.
func (h *harness) otherGoroutine(k string, v int) {
	go func() {
		h.mu.Lock()
		h.cache[k] = v
		h.mu.Unlock()
	}()
}

// embedded mutexes promote their methods; the guard is still tracked.
type counter struct {
	sync.Mutex
	n int
}

func (c *counter) bump() {
	c.Lock()
	c.n++
	c.Unlock()
}

func (c *counter) leak() {
	c.Lock() // want `c\.Lock\(\) may still be held at return; missing Unlock\(\) on some path`
	c.n++
}

// lockHelper intentionally returns holding the mutex; the suppression
// names the analyzer and the reason.
func (h *harness) lockHelper() {
	//lint:ignore lockcheck pairs with unlockHelper by contract
	h.mu.Lock()
}

func (h *harness) unlockHelper() {
	//lint:ignore lockcheck pairs with lockHelper by contract
	h.mu.Unlock()
}
