// Package generics is loader test data: type-parameterized functions and
// types whose instantiations must land in types.Info.Instances.
package generics

// Ring is a generic fixed-capacity buffer.
type Ring[T any] struct {
	buf  []T
	head int
}

// Push appends, overwriting the oldest element when full.
func (r *Ring[T]) Push(v T) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, v)
		return
	}
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
}

// Map applies f to every element.
func Map[T, U any](xs []T, f func(T) U) []U {
	out := make([]U, len(xs))
	for i, x := range xs {
		out[i] = f(x)
	}
	return out
}

// use instantiates both so the package itself exercises Instances.
func use() []string {
	r := Ring[uint64]{buf: make([]uint64, 0, 4)}
	r.Push(42)
	return Map([]int{1, 2}, func(v int) string { return string(rune('a' + v)) })
}

var _ = use
