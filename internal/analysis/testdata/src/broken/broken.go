// Package broken is loader test data: it parses but does not type-check.
// Load must surface the failures as diagnostics, not abort or panic.
package broken

func addressOf(x int) *int {
	return &undefinedIdent
}

func mismatch() string {
	return 42
}
