// Package tooling is errflow test data for the out-of-scope case: its
// import path matches none of internal/sim, internal/workload, cmd/*.
package tooling

import "os"

// drop would be flagged in a scoped package; here the analyzer is silent.
func drop(f *os.File) {
	f.Close()
}
