// Package main is errflow test data; its import path contains a cmd
// element, putting it in the analyzer's scope.
package main

import (
	"fmt"
	"os"
)

func open() (*os.File, error)  { return nil, nil }
func flush() error             { return nil }
func parse(f *os.File) error   { return nil }
func count() (int, error)      { return 0, nil }
func sink(err error)           { _ = err }
func fatal(err error)          { os.Exit(1) }

// dropped: bare statement call with an error result.
func dropped(f *os.File) {
	f.Close() // want `error result of f\.Close is dropped`
}

// blankDiscard: `_ =` is the same drop and needs a lint:ignore.
func blankDiscard() {
	_ = flush() // want `error discarded into _`
}

func blankTuple() int {
	n, _ := count() // want `error discarded into _`
	return n
}

// checked: the canonical if-err pattern.
func checked(f *os.File) {
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

// returned: passing the error up is a use.
func returned(f *os.File) error {
	return parse(f)
}

// oneLivePathSuffices: only one branch reads err, but that is a path.
func oneLivePathSuffices(verbose bool) {
	err := flush()
	if verbose {
		sink(err)
	}
}

// deadFirstWrite: err is overwritten on every path before being read.
func deadFirstWrite(f *os.File) {
	err := parse(f) // want `err assigned here is dead`
	err = flush()
	sink(err)
}

// deadLastWrite: err is read before but never after the second
// assignment, so the function returns with the flush error unexamined.
// (A fully unread `:=` is already a compile error; the dataflow variant
// the compiler cannot see is exactly this one.)
func deadLastWrite() {
	var err error
	sink(err)
	err = flush() // want `err assigned here is dead`
}

// closureKeepsAlive: a deferred closure reading err is a use.
func closureKeepsAlive(f *os.File) {
	var err error
	defer func() { sink(err) }()
	err = parse(f)
}

// namedResultLive: writes to a named error result reach the caller.
func namedResultLive(f *os.File) (err error) {
	err = parse(f)
	return
}

// deferredClose: deferring a Close on a read-only file is idiomatic.
func deferredClose() error {
	f, err := open()
	if err != nil {
		return err
	}
	defer f.Close()
	return parse(f)
}

// bestEffortDiagnostics: the fmt print family is excluded.
func bestEffortDiagnostics(err error) {
	fmt.Fprintln(os.Stderr, "ef:", err)
	fmt.Println("done")
}

// suppressed: an intentional drop carries a lint:ignore with a reason.
func suppressed(f *os.File) {
	//lint:ignore errflow close error on read path is unactionable
	f.Close()
}
