// Package errflow checks that error values in the simulation and command
// packages flow into a check before dying. Burst-scheduling experiments
// are only as trustworthy as their I/O: a sweep that silently fails to
// flush BENCH_sim.json or a trace parser that drops a close error
// produces plausible-looking garbage, so in internal/sim,
// internal/workload and cmd/* every error must reach a use — a
// comparison, a return, an argument — on some path, or carry an explicit
// `//lint:ignore errflow <reason>`.
//
// Two failure shapes are reported:
//
//   - a call with an error result used as a bare statement
//     (`f.Close()`): the error is dropped at birth. Writing `_ = f.Close()`
//     is the same drop with makeup on and is flagged identically;
//   - an error assigned to a variable that is dead at that point: no
//     path from the assignment reaches a read of the variable before it
//     is overwritten or goes out of scope. This is classic backward
//     liveness over the CFG, so `err := f(); if c { return }; check(err)`
//     is fine (one live path suffices) while `err := f(); err = g(...)`
//     flags the first assignment.
//
// Deliberate exclusions: deferred calls (`defer f.Close()` on read-only
// files is idiomatic), the fmt.Print/Fprint family (best-effort
// diagnostics to stderr), and named error results, which are live at
// every return by construction.
package errflow

import (
	"go/ast"
	"go/types"
	"strings"

	"burstmem/internal/analysis"
	"burstmem/internal/analysis/astx"
	"burstmem/internal/analysis/cfg"
	"burstmem/internal/analysis/dataflow"
)

// Analyzer is the errflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "errflow",
	Doc:  "error values in internal/sim, internal/workload and cmd/* must reach a check before going dead",
	Run:  run,
}

// scope lists the package-path patterns the analyzer applies to.
var scope = []string{"internal/sim", "internal/workload", "cmd/*"}

func run(pass *analysis.Pass) {
	if !astx.InScope(pass.Pkg.Path(), scope) {
		return
	}
	for _, file := range pass.Files {
		for _, fi := range astx.Funcs(file) {
			if fi.Body() == nil {
				continue
			}
			checkFunc(pass, fi.Node)
		}
	}
}

func checkFunc(pass *analysis.Pass, fn ast.Node) {
	g := cfg.New(fn)
	p := &problem{pass: pass, results: namedErrorResults(pass, fn)}
	res := dataflow.Solve[liveSet](g, p)

	// Replay each block backward: before undoing a node's transfer the
	// current set is the liveness just after that node — the state that
	// decides whether an error assigned there is ever read.
	for _, b := range g.Blocks {
		live := p.cloneSet(res.In[b]) // backward: In is the fact at block end
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			n := b.Nodes[i]
			p.checkNode(n, live)
			p.stepBack(n, live)
		}
	}
}

// liveSet is the set of error-typed variables live at a program point.
type liveSet map[*types.Var]bool

type problem struct {
	pass    *analysis.Pass
	results liveSet // named error results of the function under analysis
}

func (p *problem) Direction() dataflow.Direction { return dataflow.Backward }
func (p *problem) Bottom() liveSet               { return liveSet{} }

// Boundary: named error results are live at exit — a bare return reads
// them, and the caller receives whatever they hold.
func (p *problem) Boundary() liveSet { return p.cloneSet(p.results) }

// namedErrorResults resolves the function's named error-typed result
// variables.
func namedErrorResults(pass *analysis.Pass, fn ast.Node) liveSet {
	out := liveSet{}
	var ft *ast.FuncType
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		ft = fn.Type
	case *ast.FuncLit:
		ft = fn.Type
	}
	if ft == nil || ft.Results == nil {
		return out
	}
	for _, field := range ft.Results.List {
		for _, name := range field.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok && isErrorType(v.Type()) {
				out[v] = true
			}
		}
	}
	return out
}

func (p *problem) Join(a, b liveSet) liveSet {
	out := liveSet{}
	for v := range a {
		out[v] = true
	}
	for v := range b {
		out[v] = true
	}
	return out
}

func (p *problem) Equal(a, b liveSet) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

func (p *problem) Transfer(b *cfg.Block, in liveSet) liveSet {
	out := p.cloneSet(in)
	for i := len(b.Nodes) - 1; i >= 0; i-- {
		p.stepBack(b.Nodes[i], out)
	}
	return out
}

func (p *problem) cloneSet(s liveSet) liveSet {
	out := liveSet{}
	for v := range s {
		out[v] = true
	}
	return out
}

// stepBack undoes one node: kill assignment targets, then gen reads.
func (p *problem) stepBack(n ast.Node, live liveSet) {
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, l := range as.Lhs {
			if v := p.errVar(l); v != nil {
				delete(live, v)
			}
		}
		for _, r := range as.Rhs {
			p.genReads(r, live)
		}
		return
	}
	p.genReads(n, live)
}

// genReads adds every error variable read inside the subtree. Reads
// inside nested function literals count — a closure capturing err keeps
// it alive — and assignments inside literals are conservatively treated
// as reads too (the closure may run zero or many times).
func (p *problem) genReads(n ast.Node, live liveSet) {
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			if v := p.errVar(id); v != nil {
				live[v] = true
			}
		}
		return true
	})
}

// checkNode reports dead error births in one node, given liveness just
// after it. Function literals have their own CFG and replay.
func (p *problem) checkNode(n ast.Node, live liveSet) {
	switch n := n.(type) {
	case *ast.ExprStmt:
		call, ok := n.X.(*ast.CallExpr)
		if ok && p.returnsError(call) && !p.excluded(call) {
			p.pass.Reportf(call.Pos(), "error result of %s is dropped; check it, return it, or //lint:ignore errflow", callName(call))
		}
	case *ast.AssignStmt:
		for _, l := range n.Lhs {
			if id, ok := l.(*ast.Ident); ok && id.Name == "_" && p.lhsIsError(n, l) {
				p.pass.Reportf(id.Pos(), "error discarded into _; check it, return it, or //lint:ignore errflow")
				continue
			}
			v := p.errVar(l)
			if v == nil || live[v] {
				continue
			}
			p.pass.Reportf(l.Pos(), "%s assigned here is dead: no path reads it before reassignment or return", v.Name())
		}
	}
}

// errVar resolves an expression to the *types.Var of a local error
// variable, or nil.
func (p *problem) errVar(e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := p.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = p.pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || !isErrorType(v.Type()) {
		return nil
	}
	return v
}

// lhsIsError reports whether the value flowing into this lhs position is
// a fresh error from a call (for blank-identifier discards, where the
// ident itself has no object). Only call results count: `_ = err` on an
// already-bound variable is a deliberate no-op, not a drop.
func (p *problem) lhsIsError(as *ast.AssignStmt, lhs ast.Expr) bool {
	idx := -1
	for i, l := range as.Lhs {
		if l == lhs {
			idx = i
		}
	}
	if idx < 0 {
		return false
	}
	if len(as.Rhs) == len(as.Lhs) {
		if _, ok := as.Rhs[idx].(*ast.CallExpr); !ok {
			return false
		}
		return isErrorType(p.pass.TypesInfo.Types[as.Rhs[idx]].Type)
	}
	tuple, ok := p.pass.TypesInfo.Types[as.Rhs[0]].Type.(*types.Tuple)
	if !ok || idx >= tuple.Len() {
		return false
	}
	return isErrorType(tuple.At(idx).Type())
}

// returnsError reports whether any result of the call is error-typed.
func (p *problem) returnsError(call *ast.CallExpr) bool {
	t := p.pass.TypesInfo.Types[call].Type
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

var errIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errIface)
}

// excluded reports whether the dropped error is idiomatically ignorable:
// the fmt print family writing best-effort diagnostics.
func (p *problem) excluded(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "fmt" {
		return false
	}
	n := sel.Sel.Name
	return strings.HasPrefix(n, "Print") || strings.HasPrefix(n, "Fprint")
}

func callName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if base := astx.PathString(f.X); base != "" {
			return base + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "call"
}
