package errflow_test

import (
	"testing"

	"burstmem/internal/analysis/analysistest"
	"burstmem/internal/analysis/errflow"
)

func TestErrflow(t *testing.T) {
	analysistest.Run(t, errflow.Analyzer, "./testdata/src/cmd/ef")
}

// TestOutOfScope verifies packages outside the simulation/command set are
// ignored even when they drop errors.
func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, errflow.Analyzer, "./testdata/src/tooling")
}
