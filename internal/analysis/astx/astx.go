// Package astx holds the small AST/type utilities shared by the dataflow
// analyzers (nilcheck, errflow, idxrange, lockcheck): access-path
// printing, function enumeration, hot-path directive detection, and named
// type matching.
package astx

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotpathDirective marks a function as part of the allocation-free
// per-cycle path (see internal/analysis/hotalloc). nilcheck exempts such
// functions: their tracer emits go through the nil-safe inlined wrappers.
const HotpathDirective = "//burstmem:hotpath"

// IsHotpath reports whether the function declaration's doc block carries
// the hot-path directive.
func IsHotpath(fn *ast.FuncDecl) bool {
	if fn == nil || fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, HotpathDirective) {
			return true
		}
	}
	return false
}

// FuncInfo is one analyzable function: a declaration or a function
// literal, with the declaration it is lexically inside (nil for top-level
// literals in var initializers).
type FuncInfo struct {
	Node ast.Node // *ast.FuncDecl or *ast.FuncLit
	Decl *ast.FuncDecl
}

// Body returns the function's body (nil for bodyless declarations).
func (fi FuncInfo) Body() *ast.BlockStmt {
	switch fn := fi.Node.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// Funcs returns every function with a body in the file: declarations and
// all function literals nested inside them, each reported once. Analyzers
// build one CFG per entry, so a literal's statements are analyzed in the
// literal's own graph, not its enclosing function's.
func Funcs(file *ast.File) []FuncInfo {
	var out []FuncInfo
	for _, d := range file.Decls {
		decl, _ := d.(*ast.FuncDecl)
		if decl != nil && decl.Body == nil {
			continue
		}
		root := ast.Node(d)
		if decl != nil {
			out = append(out, FuncInfo{Node: decl, Decl: decl})
			root = decl.Body
		}
		ast.Inspect(root, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, FuncInfo{Node: lit, Decl: decl})
			}
			return true
		})
	}
	return out
}

// PathString renders a stable access-path key for an expression of the
// form ident(.field)* — "tr", "c.tracer", "s.host.mu" — or "" when the
// expression is anything else (calls, indexing, literals). Parens are
// looked through.
func PathString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return PathString(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := PathString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// HasPrefixPath reports whether path is equal to or an extension of
// prefix ("c.tracer" has prefix "c" and "c.tracer", not "c.tr").
func HasPrefixPath(path, prefix string) bool {
	if !strings.HasPrefix(path, prefix) {
		return false
	}
	return len(path) == len(prefix) || path[len(prefix)] == '.'
}

// NamedType returns the named type behind t, unwrapping one level of
// pointer, or nil.
func NamedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// IsNamed reports whether t (or the pointee of a pointer t) is the named
// type with the given name declared in a package whose import path ends
// with pkgSuffix.
func IsNamed(t types.Type, pkgSuffix, name string) bool {
	n := NamedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Name() != name {
		return false
	}
	p := n.Obj().Pkg().Path()
	return p == pkgSuffix || strings.HasSuffix(p, "/"+pkgSuffix)
}

// InScope reports whether the package import path matches one of the
// suffix patterns ("internal/sim") or, for the special pattern "cmd/*",
// contains a cmd path element.
func InScope(pkgPath string, patterns []string) bool {
	for _, pat := range patterns {
		if pat == "cmd/*" {
			if strings.HasPrefix(pkgPath, "cmd/") || strings.Contains(pkgPath, "/cmd/") {
				return true
			}
			continue
		}
		if pkgPath == pat || strings.HasSuffix(pkgPath, "/"+pat) {
			return true
		}
	}
	return false
}
