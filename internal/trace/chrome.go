// Chrome trace_event export: renders a recorded run as the JSON Array
// Format understood by Perfetto (ui.perfetto.dev) and chrome://tracing.
//
// Track layout: one process per memory channel; within it, thread 0 is the
// data bus (column transfers render as duration slices) and thread
// 1+rank*banks+bank is one bank (accesses render as slices from first
// transaction to data end, commands and scheduler marks as instant
// events). Pool occupancy and per-interval metrics render as counter
// tracks on process 0. Timestamps are simulated memory cycles written as
// microseconds — Perfetto's units are cosmetic, relative durations are
// what matter.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one trace_event record. Optional fields use omitempty;
// Dur is a pointer so a genuine zero-cycle duration still serializes.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  *uint64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level JSON Object Format document.
type chromeFile struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// outcomeNames mirrors dram.RowOutcome without importing dram (the
// dependency runs the other way).
var outcomeNames = [3]string{"hit", "empty", "conflict"}

// WriteChrome renders the tracer's ring and interval metrics as Chrome
// trace JSON. label annotates the document (e.g. "swim/Burst_TH").
func WriteChrome(w io.Writer, t *Tracer, label string) error {
	if t == nil {
		return fmt.Errorf("trace: cannot export a nil tracer")
	}
	events := t.Events()
	doc := chromeFile{DisplayTimeUnit: "ns"}
	if label != "" {
		doc.OtherData = map[string]string{"label": label}
	}
	doc.TraceEvents = make([]chromeEvent, 0, 2*len(events)+64)

	// Track naming metadata for every (chan, rank, bank) and data bus
	// that actually appears in the stream.
	type track struct{ pid, tid int }
	var maxChan int
	seen := make(map[track]string)
	note := func(pid, tid int, name string) track {
		k := track{pid, tid}
		if _, ok := seen[k]; !ok {
			seen[k] = name
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": name},
			})
		}
		return k
	}
	busTrack := func(ch int) track { return note(ch, 0, "data bus") }
	bankTrack := func(ch, rank, bank int) track {
		return note(ch, 1+rank*64+bank, fmt.Sprintf("rank %d bank %d", rank, bank))
	}

	instant := func(tk track, cycle uint64, name string, args map[string]any) {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: name, Ph: "i", Ts: cycle, Pid: tk.pid, Tid: tk.tid, S: "t", Args: args,
		})
	}
	slice := func(tk track, start, end uint64, name string, args map[string]any) {
		d := end - start
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: name, Ph: "X", Ts: start, Dur: &d, Pid: tk.pid, Tid: tk.tid, Args: args,
		})
	}

	for _, e := range events {
		ch, r, b := int(e.Chan), int(e.Rank), int(e.Bank)
		if ch > maxChan {
			maxChan = ch
		}
		switch e.Kind {
		case EvRead, EvWrite:
			slice(busTrack(ch), e.Arg0, e.Arg1, e.Kind.String(), map[string]any{
				"rank": r, "bank": b, "row": e.Row, "cmd_cycle": e.Cycle,
			})
			instant(bankTrack(ch, r, b), e.Cycle, e.Kind.String(), nil)
		case EvPrecharge, EvActivate, EvAutoPrecharge:
			instant(bankTrack(ch, r, b), e.Cycle, e.Kind.String(), map[string]any{"row": e.Row})
		case EvRefresh:
			instant(bankTrack(ch, r, 0), e.Cycle, fmt.Sprintf("REF rank %d", r), nil)
		case EvEnqueue:
			name := "enq read"
			if e.Arg1 != 0 {
				name = "enq write"
			}
			instant(bankTrack(ch, r, b), e.Cycle, name, map[string]any{"id": e.Arg0, "row": e.Row})
		case EvForward:
			instant(busTrack(ch), e.Cycle, "forward", map[string]any{"id": e.Arg0})
		case EvStart:
			oc := "?"
			if e.Arg1 < 3 {
				oc = outcomeNames[e.Arg1]
			}
			instant(bankTrack(ch, r, b), e.Cycle, "start "+oc, map[string]any{"id": e.Arg0})
		case EvComplete:
			name := fmt.Sprintf("read#%d", e.Arg0)
			if e.Arg2&FlagWrite != 0 {
				name = fmt.Sprintf("write#%d", e.Arg0)
			}
			if e.Arg2&FlagForwarded != 0 {
				instant(busTrack(ch), e.Cycle, "forwarded "+name, nil)
				break
			}
			slice(bankTrack(ch, r, b), e.Arg1, e.Cycle, name, map[string]any{"row": e.Row})
		case EvPreempt, EvPiggyback, EvForcedWrite, EvIdleWrite, EvBurstForm, EvBurstJoin:
			instant(bankTrack(ch, r, b), e.Cycle, e.Kind.String(), map[string]any{
				"id": e.Arg0, "row": e.Row,
			})
		case EvSchedPick:
			instant(busTrack(ch), e.Cycle, "pick", map[string]any{
				"id": e.Arg0, "priority": e.Arg1, "cmd": Kind(e.Arg2).String(),
			})
		}
	}

	// Interval metrics as counter tracks on process 0 (counters sit on
	// their own timeline; one sample per interval boundary).
	for _, iv := range t.Intervals() {
		doc.TraceEvents = append(doc.TraceEvents,
			chromeEvent{Name: "pool occupancy", Ph: "C", Ts: iv.Start, Pid: 0, Tid: 0,
				Args: map[string]any{
					"reads":  iv.MeanOutstandingReads(),
					"writes": iv.MeanOutstandingWrites(),
				}},
			chromeEvent{Name: "row hit rate", Ph: "C", Ts: iv.Start, Pid: 0, Tid: 0,
				Args: map[string]any{"hit": iv.RowHitRate()}},
			chromeEvent{Name: "data bus util", Ph: "C", Ts: iv.Start, Pid: 0, Tid: 0,
				Args: map[string]any{"util": iv.DataBusUtil()}},
		)
	}

	for ch := 0; ch <= maxChan; ch++ {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: ch, Tid: 0,
			Args: map[string]any{"name": fmt.Sprintf("channel %d", ch)},
		})
	}

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(doc); err != nil {
		return err
	}
	return bw.Flush()
}
