// Package trace is the simulator's cycle-accurate observability layer: a
// ring-buffered, allocation-free event tracer over the DRAM command
// stream, the controller's access lifecycle and the scheduling mechanisms'
// decisions, plus per-interval derived metrics (row-hit rate, bus
// utilization, queue occupancy time series).
//
// The tracer is attached at runtime (memctrl.Controller.SetTracer); when
// no tracer is attached every emit call is a nil-receiver check that the
// compiler inlines, so the `//burstmem:hotpath` contract (no allocation,
// near-zero overhead) holds with tracing disabled and simulation results
// are bit-identical either way — instrumentation only observes, it never
// steers.
//
// With tracing enabled the stream is deterministic: events are emitted in
// simulated-cycle order from single-threaded simulation code, carry only
// simulated state, and two runs of the same configuration produce
// byte-identical exports (the package is under detlint's scope to keep it
// that way). A run renders as Chrome trace_event JSON for Perfetto via
// WriteChrome, or as an interval metrics time series via Intervals.
package trace

// Kind discriminates trace events.
type Kind uint8

// Event kinds. The first group mirrors the DRAM command stream as issued
// on the channel's command bus (EvAutoPrecharge is the implicit precharge
// of the Close Page Autoprecharge policy — no bus slot, but bank state
// changes). The second group tracks the access lifecycle through the
// controller. The third marks mechanism-level scheduling decisions.
const (
	EvPrecharge Kind = iota
	EvActivate
	EvRead
	EvWrite
	EvRefresh
	EvAutoPrecharge

	EvEnqueue  // access admitted to the pool (Arg0=ID, Arg1=1 for writes)
	EvForward  // read satisfied from the write queue (Arg0=ID)
	EvStart    // first transaction issued (Arg0=ID, Arg1=RowOutcome)
	EvComplete // data finished (Arg0=ID, Arg1=start cycle, Arg2=flags)

	EvPreempt     // ongoing write interrupted by a read (Arg0=write ID)
	EvPiggyback   // write appended at end of burst (Arg0=ID)
	EvForcedWrite // write drained because the write queue is full (Arg0=ID)
	EvIdleWrite   // write drained because no reads are pending (Arg0=ID)
	EvBurstForm   // new burst opened (Arg0=first read's ID)
	EvBurstJoin   // read joined an existing burst (Arg0=ID, Arg1=burst len)
	EvSchedPick   // transaction scheduler pick (Arg0=ID, Arg1=priority, Arg2=command Kind)

	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case EvPrecharge:
		return "PRE"
	case EvActivate:
		return "ACT"
	case EvRead:
		return "READ"
	case EvWrite:
		return "WRITE"
	case EvRefresh:
		return "REF"
	case EvAutoPrecharge:
		return "AUTOPRE"
	case EvEnqueue:
		return "enqueue"
	case EvForward:
		return "forward"
	case EvStart:
		return "start"
	case EvComplete:
		return "complete"
	case EvPreempt:
		return "preempt"
	case EvPiggyback:
		return "piggyback"
	case EvForcedWrite:
		return "forced-write"
	case EvIdleWrite:
		return "idle-write"
	case EvBurstForm:
		return "burst-form"
	case EvBurstJoin:
		return "burst-join"
	case EvSchedPick:
		return "sched-pick"
	}
	return "unknown"
}

// Flags for EvComplete's Arg2.
const (
	FlagWrite     uint64 = 1 << 0
	FlagForwarded uint64 = 1 << 1
)

// Event is one fixed-size trace record. Field meaning varies by Kind (see
// the Kind constants); Chan/Rank/Bank locate the event on the channel
// topology and Row carries the DRAM row where one applies. Events hold no
// pointers, so the ring is GC-inert.
type Event struct {
	Cycle uint64
	Arg0  uint64 // access ID or data-start cycle (column commands)
	Arg1  uint64 // kind-specific (see Kind constants)
	Arg2  uint64 // kind-specific
	Row   uint32
	Kind  Kind
	Chan  uint8
	Rank  uint8
	Bank  uint8
}

// Tracer records events into a fixed-capacity ring (oldest overwritten
// first) and folds the stream into per-interval metrics as it goes. The
// zero Tracer is not usable; construct with New. A nil *Tracer is the
// disabled tracer: every method is a no-op.
//
//burstmem:shared one tracer ring receives events from every channel; the parallel refactor will shard or funnel it through the controller goroutine
type Tracer struct {
	ring    []Event
	head    int // next write slot
	n       int // live events (<= len(ring))
	dropped uint64

	interval  uint64 // metrics interval length in cycles (0 = no metrics)
	cur       Interval
	curOpen   bool
	intervals []Interval

	counts [numKinds]uint64

	// Capture mode (NewCapture): events append to capture instead of the
	// ring, and no metrics fold — everything is deferred to the Adopt
	// replay into a real tracer. Used by the parallel controller to give
	// each channel shard a private emission buffer for one barrier round.
	// adopted is the AdoptUpTo cursor: events before it have already been
	// replayed into the adopting tracer mid-window.
	capturing bool
	capture   []Event
	adopted   int
}

// New builds a tracer with capacity for events ring entries and, when
// intervalCycles > 0, a metrics time series with one Interval per
// intervalCycles simulated cycles. events is clamped to at least 1.
func New(events int, intervalCycles uint64) *Tracer {
	if events < 1 {
		events = 1
	}
	return &Tracer{ring: make([]Event, events), interval: intervalCycles}
}

// NewCapture builds a shard-capture tracer: every emit is appended to a
// growable buffer verbatim (no ring, no metrics) until Adopt replays the
// buffer into a real tracer and clears it. Exported accessors (Events,
// Intervals, Count) see nothing — a capture is a transport, not a sink.
func NewCapture() *Tracer {
	return &Tracer{capturing: true, capture: make([]Event, 0, 64)}
}

// Adopt replays src's captured events into t exactly as if each had been
// emitted on t directly — ring placement, per-kind counts and interval
// metrics all roll identically — then clears src for the next round. The
// parallel controller calls it once per channel per barrier round, in
// channel order, which makes the merged stream byte-identical to the
// serial path's.
//
//burstmem:hotpath
func (t *Tracer) Adopt(src *Tracer) {
	if t == nil || src == nil {
		return
	}
	for i := src.adopted; i < len(src.capture); i++ {
		t.replay(src.capture[i])
	}
	src.capture = src.capture[:0]
	src.adopted = 0
}

// AdoptUpTo replays src's captured events stamped at or before cycle into
// t, leaving later events buffered (a cursor remembers progress). Captures
// are emitted in nondecreasing cycle order per shard, so the window merge
// can interleave per-cycle replays across channels with the controller's
// per-cycle sampling — reproducing the serial path's exact interval folds.
// Once every buffered event is consumed the capture resets for the next
// round; a window merge that reaches its last cycle therefore leaves the
// capture in the same state plain Adopt would.
//
//burstmem:hotpath
func (t *Tracer) AdoptUpTo(src *Tracer, cycle uint64) {
	if t == nil || src == nil {
		return
	}
	i := src.adopted
	for i < len(src.capture) && src.capture[i].Cycle <= cycle {
		t.replay(src.capture[i])
		i++
	}
	src.adopted = i
	if i == len(src.capture) {
		src.capture = src.capture[:0]
		src.adopted = 0
	}
}

// replay re-dispatches one captured event through the same ring append and
// metric updates its original emit wrapper would have performed. The
// per-kind cases mirror Command/Enqueue/Forward/Start/Complete/Mark/
// SchedPick exactly; keep them in sync.
//
//burstmem:hotpath
func (t *Tracer) replay(e Event) {
	t.emit(e)
	switch e.Kind {
	case EvPrecharge, EvActivate, EvRead, EvWrite, EvRefresh, EvAutoPrecharge:
		if t.interval > 0 {
			switch e.Kind {
			case EvRead:
				t.cur.Reads++
				t.cur.DataBusCycles += e.Arg1 - e.Arg0
			case EvWrite:
				t.cur.Writes++
				t.cur.DataBusCycles += e.Arg1 - e.Arg0
			case EvActivate:
				t.cur.Activates++
			case EvPrecharge, EvAutoPrecharge:
				t.cur.Precharges++
			case EvRefresh:
				t.cur.Refreshes++
			}
		}
	case EvEnqueue:
		t.cur.Enqueued++
	case EvForward:
		t.cur.Forwarded++
	case EvStart:
		if t.interval > 0 && e.Arg1 < 3 {
			t.cur.Outcomes[e.Arg1]++
		}
	case EvComplete:
		t.cur.Completed++
	case EvPreempt, EvPiggyback, EvForcedWrite, EvIdleWrite, EvBurstForm, EvBurstJoin:
		if t.interval > 0 {
			switch e.Kind {
			case EvPreempt:
				t.cur.Preemptions++
			case EvPiggyback:
				t.cur.Piggybacks++
			}
		}
	case EvSchedPick:
		// No metrics beyond the count emit already rolled.
	}
}

// Enabled reports whether the tracer records anything (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Dropped returns how many events were overwritten because the ring was
// full. Oracles that need the complete stream (conservation checks) must
// see zero here.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Count returns how many events of the kind were emitted over the whole
// run, including any that have since been overwritten in the ring.
func (t *Tracer) Count(k Kind) uint64 {
	if t == nil || k >= numKinds {
		return 0
	}
	return t.counts[k]
}

// Len returns the number of events currently held in the ring.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Events returns the ring's events in emission order (oldest first). The
// returned slice is freshly allocated; call at export time, not per cycle.
func (t *Tracer) Events() []Event {
	if t == nil || t.n == 0 {
		return nil
	}
	out := make([]Event, t.n)
	start := t.head - t.n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.n; i++ {
		out[i] = t.ring[(start+i)%len(t.ring)]
	}
	return out
}

// emit appends one event to the ring and rolls metrics. Callers are the
// inlinable exported wrappers, which have already checked t != nil.
func (t *Tracer) emit(e Event) {
	if t.capturing {
		// Shard capture: buffer verbatim; counts, ring and metrics all
		// roll at Adopt-replay time on the adopting tracer.
		//lint:ignore hotalloc capture buffer growth is amortized; capacity is retained across barrier rounds
		t.capture = append(t.capture, e)
		return
	}
	t.counts[e.Kind]++
	t.ring[t.head] = e
	t.head++
	if t.head == len(t.ring) {
		t.head = 0
	}
	if t.n < len(t.ring) {
		t.n++
	} else {
		t.dropped++
	}
	t.rollTo(e.Cycle)
}

// --- emit wrappers -------------------------------------------------------
//
// Each wrapper is a nil check plus a call, so the disabled path inlines to
// a compare-and-branch at every instrumentation site.

// Command records a DRAM command issued on the channel (k one of
// EvPrecharge..EvAutoPrecharge). For column commands dataStart/dataEnd
// bound the data-bus transfer; other commands pass zeros.
func (t *Tracer) Command(cycle uint64, k Kind, ch, rank, bank int, row uint32, dataStart, dataEnd uint64) {
	if t == nil {
		return
	}
	t.command(cycle, k, ch, rank, bank, row, dataStart, dataEnd)
}

func (t *Tracer) command(cycle uint64, k Kind, ch, rank, bank int, row uint32, dataStart, dataEnd uint64) {
	t.emit(Event{
		Cycle: cycle, Kind: k, Chan: uint8(ch), Rank: uint8(rank), Bank: uint8(bank),
		Row: row, Arg0: dataStart, Arg1: dataEnd,
	})
	if t.interval > 0 {
		switch k {
		case EvRead:
			t.cur.Reads++
			t.cur.DataBusCycles += dataEnd - dataStart
		case EvWrite:
			t.cur.Writes++
			t.cur.DataBusCycles += dataEnd - dataStart
		case EvActivate:
			t.cur.Activates++
		case EvPrecharge, EvAutoPrecharge:
			t.cur.Precharges++
		case EvRefresh:
			t.cur.Refreshes++
		}
	}
}

// Enqueue records an access admitted into the controller pool.
func (t *Tracer) Enqueue(cycle uint64, ch, rank, bank int, row uint32, id uint64, write bool) {
	if t == nil {
		return
	}
	var w uint64
	if write {
		w = 1
	}
	t.emit(Event{Cycle: cycle, Kind: EvEnqueue, Chan: uint8(ch), Rank: uint8(rank),
		Bank: uint8(bank), Row: row, Arg0: id, Arg1: w})
	t.cur.Enqueued++
}

// Forward records a read satisfied from the write queue (never reaches the
// device).
func (t *Tracer) Forward(cycle uint64, ch int, id uint64) {
	if t == nil {
		return
	}
	t.emit(Event{Cycle: cycle, Kind: EvForward, Chan: uint8(ch), Arg0: id})
	t.cur.Forwarded++
}

// Start records an access's first transaction issuing, with the row
// outcome it observed (the value of dram.RowOutcome, opaque here).
func (t *Tracer) Start(cycle uint64, ch, rank, bank int, row uint32, id uint64, outcome int, write bool) {
	if t == nil {
		return
	}
	t.start(cycle, ch, rank, bank, row, id, outcome, write)
}

func (t *Tracer) start(cycle uint64, ch, rank, bank int, row uint32, id uint64, outcome int, write bool) {
	var w uint64
	if write {
		w = 1
	}
	t.emit(Event{Cycle: cycle, Kind: EvStart, Chan: uint8(ch), Rank: uint8(rank),
		Bank: uint8(bank), Row: row, Arg0: id, Arg1: uint64(outcome), Arg2: w})
	if t.interval > 0 && outcome >= 0 && outcome < 3 {
		t.cur.Outcomes[outcome]++
	}
}

// Complete records an access's data finishing (reads: data returned;
// writes: drained to the device). start is the cycle its first transaction
// issued (0 for forwarded reads, which never start).
func (t *Tracer) Complete(cycle uint64, ch, rank, bank int, row uint32, id, start uint64, flags uint64) {
	if t == nil {
		return
	}
	t.emit(Event{Cycle: cycle, Kind: EvComplete, Chan: uint8(ch), Rank: uint8(rank),
		Bank: uint8(bank), Row: row, Arg0: id, Arg1: start, Arg2: flags})
	t.cur.Completed++
}

// Mark records a mechanism-level scheduling event: preemption, piggyback,
// forced/idle write, burst formation or join. arg1 is kind-specific (e.g.
// burst length for EvBurstJoin).
func (t *Tracer) Mark(cycle uint64, k Kind, ch, rank, bank int, row uint32, id, arg1 uint64) {
	if t == nil {
		return
	}
	t.mark(cycle, k, ch, rank, bank, row, id, arg1)
}

func (t *Tracer) mark(cycle uint64, k Kind, ch, rank, bank int, row uint32, id, arg1 uint64) {
	t.emit(Event{Cycle: cycle, Kind: k, Chan: uint8(ch), Rank: uint8(rank),
		Bank: uint8(bank), Row: row, Arg0: id, Arg1: arg1})
	if t.interval > 0 {
		switch k {
		case EvPreempt:
			t.cur.Preemptions++
		case EvPiggyback:
			t.cur.Piggybacks++
		}
	}
}

// SchedPick records a transaction-scheduler decision: the chosen access,
// the priority class that won (paper Table 2; 0 for policies without a
// priority table) and the command kind about to issue.
func (t *Tracer) SchedPick(cycle uint64, ch, rank, bank int, id uint64, priority int, cmd Kind) {
	if t == nil {
		return
	}
	t.emit(Event{Cycle: cycle, Kind: EvSchedPick, Chan: uint8(ch), Rank: uint8(rank),
		Bank: uint8(bank), Arg0: id, Arg1: uint64(priority), Arg2: uint64(cmd)})
}

// SampleOccupancy attributes the controller pool occupancy (reads, writes
// outstanding, plus whether the write queue is saturated) to the single
// cycle `cycle`. The controller calls it once per ticked cycle; it feeds
// the interval time series only, not the event ring.
func (t *Tracer) SampleOccupancy(cycle uint64, reads, writes int, writeSat bool) {
	if t == nil || t.interval == 0 {
		return
	}
	t.sampleRange(cycle, cycle, reads, writes, writeSat)
}

// SampleOccupancySkipped attributes a constant occupancy to the skipped
// cycle range (from, to] — the bulk-accounting twin of SampleOccupancy, so
// interval metrics are bit-identical between stepped and skipping runs
// even when a skip straddles an interval boundary.
func (t *Tracer) SampleOccupancySkipped(from, to uint64, reads, writes int, writeSat bool) {
	if t == nil || t.interval == 0 || to <= from {
		return
	}
	t.sampleRange(from+1, to, reads, writes, writeSat)
}

// sampleRange splits the inclusive cycle range across interval boundaries.
func (t *Tracer) sampleRange(from, to uint64, reads, writes int, writeSat bool) {
	for from <= to {
		t.rollTo(from)
		upTo := t.cur.End - 1
		if to < upTo {
			upTo = to
		}
		w := upTo - from + 1
		t.cur.OccCycles += w
		t.cur.OccReadSum += uint64(reads) * w
		t.cur.OccWriteSum += uint64(writes) * w
		if writeSat {
			t.cur.WriteSatCycles += w
		}
		if upTo == to {
			return
		}
		from = upTo + 1
	}
}

// rollTo ensures the current interval contains cycle, closing finished
// intervals. Intervals are aligned to multiples of the interval length;
// stretches with no events and no samples produce no interval at all.
func (t *Tracer) rollTo(cycle uint64) {
	if t.interval == 0 {
		return
	}
	if t.curOpen && cycle < t.cur.End {
		return
	}
	if t.curOpen {
		//lint:ignore hotalloc enabled-tracing interval roll; disabled path never reaches here
		t.intervals = append(t.intervals, t.cur)
	}
	start := cycle - cycle%t.interval
	t.cur = Interval{Start: start, End: start + t.interval}
	t.curOpen = true
}

// Intervals returns the closed metrics intervals plus the currently open
// one, in cycle order. Empty when the tracer was built without metrics.
func (t *Tracer) Intervals() []Interval {
	if t == nil || !t.curOpen {
		return nil
	}
	out := make([]Interval, 0, len(t.intervals)+1)
	out = append(out, t.intervals...)
	out = append(out, t.cur)
	return out
}

// Interval aggregates one metrics window [Start, End) of the run.
//
//burstmem:shared intervals belong to the tracer ring, which all channels feed
type Interval struct {
	Start, End uint64

	Reads, Writes                    uint64 // column commands issued
	Activates, Precharges, Refreshes uint64
	DataBusCycles                    uint64
	Outcomes                         [3]uint64 // indexed by dram.RowOutcome

	Enqueued, Completed, Forwarded uint64
	Preemptions, Piggybacks        uint64

	// Occupancy integrals over the sampled cycles of the window.
	OccCycles      uint64
	OccReadSum     uint64
	OccWriteSum    uint64
	WriteSatCycles uint64
}

// Cycles returns the window length.
func (iv Interval) Cycles() uint64 { return iv.End - iv.Start }

// RowHitRate returns the fraction of started accesses that were row hits
// (0 when none started).
func (iv Interval) RowHitRate() float64 {
	total := iv.Outcomes[0] + iv.Outcomes[1] + iv.Outcomes[2]
	if total == 0 {
		return 0
	}
	return float64(iv.Outcomes[0]) / float64(total)
}

// DataBusUtil returns data-bus busy cycles as a fraction of the window.
// Busy cycles sum over all traced channels, so with N channels the value
// ranges up to N; divide by the channel count for a per-bus fraction.
func (iv Interval) DataBusUtil() float64 {
	if iv.Cycles() == 0 {
		return 0
	}
	return float64(iv.DataBusCycles) / float64(iv.Cycles())
}

// MeanOutstandingReads returns the mean sampled read-pool occupancy.
func (iv Interval) MeanOutstandingReads() float64 {
	if iv.OccCycles == 0 {
		return 0
	}
	return float64(iv.OccReadSum) / float64(iv.OccCycles)
}

// MeanOutstandingWrites returns the mean sampled write-queue occupancy.
func (iv Interval) MeanOutstandingWrites() float64 {
	if iv.OccCycles == 0 {
		return 0
	}
	return float64(iv.OccWriteSum) / float64(iv.OccCycles)
}

// WriteSaturation returns the fraction of sampled cycles with the write
// queue at capacity.
func (iv Interval) WriteSaturation() float64 {
	if iv.OccCycles == 0 {
		return 0
	}
	return float64(iv.WriteSatCycles) / float64(iv.OccCycles)
}
