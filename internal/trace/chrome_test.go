package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// validPh is the set of trace_event phases this exporter may emit, all of
// which Perfetto's JSON importer accepts.
var validPh = map[string]bool{"X": true, "i": true, "C": true, "M": true}

// sampleTracer records a small but representative stream: commands, a full
// access lifecycle, scheduler marks and occupancy samples across two
// metric intervals.
func sampleTracer() *Tracer {
	tr := New(256, 50)
	tr.Enqueue(1, 0, 0, 2, 7, 10, false)
	tr.Mark(1, EvBurstForm, 0, 0, 2, 7, 10, 0)
	tr.SchedPick(2, 0, 0, 2, 10, 1, EvActivate)
	tr.Command(2, EvActivate, 0, 0, 2, 7, 0, 0)
	tr.Start(2, 0, 0, 2, 7, 10, 1, false)
	tr.Command(5, EvRead, 0, 0, 2, 7, 10, 14)
	tr.Complete(14, 0, 0, 2, 7, 10, 2, 0)
	tr.Enqueue(20, 1, 1, 0, 3, 11, true)
	tr.Command(25, EvPrecharge, 1, 1, 0, 3, 0, 0)
	tr.Command(60, EvRefresh, 1, 0, 0, 0, 0, 0)
	tr.Mark(62, EvPreempt, 1, 1, 0, 3, 11, 0)
	tr.Forward(70, 1, 12)
	tr.Complete(71, 1, 0, 0, 0, 12, 0, FlagForwarded)
	for c := uint64(0); c < 100; c++ {
		tr.SampleOccupancy(c, 1, 1, false)
	}
	return tr
}

// TestWriteChromeSchema validates the exporter output against the Chrome
// trace_event JSON schema subset Perfetto accepts: a traceEvents array
// whose entries carry name/ph/pid/tid, duration slices carry ts+dur, and
// instants carry a scope.
func TestWriteChromeSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, sampleTracer(), "unit/test"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]string
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&struct {
		TraceEvents     []json.RawMessage `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
	}{}); err != nil {
		t.Fatalf("output is not a trace_event document: %v", err)
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no traceEvents emitted")
	}
	if doc.OtherData["label"] != "unit/test" {
		t.Fatalf("label missing: %v", doc.OtherData)
	}
	var slices, instants, counters, metas int
	for i, e := range doc.TraceEvents {
		name, ok := e["name"].(string)
		if !ok || name == "" {
			t.Fatalf("event %d: missing name: %v", i, e)
		}
		ph, ok := e["ph"].(string)
		if !ok || !validPh[ph] {
			t.Fatalf("event %d: bad ph %v", i, e["ph"])
		}
		if _, ok := e["pid"].(float64); !ok {
			t.Fatalf("event %d: missing pid", i)
		}
		if _, ok := e["tid"].(float64); !ok {
			t.Fatalf("event %d: missing tid", i)
		}
		switch ph {
		case "X":
			slices++
			if _, ok := e["dur"].(float64); !ok {
				t.Fatalf("event %d: duration slice without dur: %v", i, e)
			}
			if _, ok := e["ts"].(float64); !ok {
				t.Fatalf("event %d: slice without ts", i)
			}
		case "i":
			instants++
			if e["s"] != "t" {
				t.Fatalf("event %d: instant without thread scope: %v", i, e)
			}
		case "C":
			counters++
			if _, ok := e["args"].(map[string]any); !ok {
				t.Fatalf("event %d: counter without args", i)
			}
		case "M":
			metas++
		}
	}
	if slices == 0 || instants == 0 || counters == 0 || metas == 0 {
		t.Fatalf("missing event classes: X=%d i=%d C=%d M=%d", slices, instants, counters, metas)
	}
	// The read's data transfer and the access slice must both be present.
	out := buf.String()
	for _, want := range []string{"read#10", "\"READ\"", "data bus", "rank 0 bank 2", "pool occupancy", "row hit rate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %q", want)
		}
	}
}

// TestWriteChromeDeterministic requires byte-identical exports across
// runs of the same stream (map keys are sorted by encoding/json; nothing
// else may introduce ordering noise).
func TestWriteChromeDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChrome(&a, sampleTracer(), "x"); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, sampleTracer(), "x"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("exports differ between identical runs")
	}
}

// TestWriteChromeNil rejects a nil tracer instead of writing an empty doc.
func TestWriteChromeNil(t *testing.T) {
	if err := WriteChrome(&bytes.Buffer{}, nil, ""); err == nil {
		t.Fatal("want error for nil tracer")
	}
}
