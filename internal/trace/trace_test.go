package trace

import (
	"testing"
)

// TestNilTracerNoOps exercises every emit path on a nil tracer: the
// disabled path must be safe to call from instrumentation sites that never
// check for attachment.
func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	tr.Command(1, EvRead, 0, 0, 0, 7, 5, 9)
	tr.Enqueue(1, 0, 0, 0, 7, 42, false)
	tr.Forward(1, 0, 42)
	tr.Start(1, 0, 0, 0, 7, 42, 0, false)
	tr.Complete(9, 0, 0, 0, 7, 42, 1, 0)
	tr.Mark(1, EvPreempt, 0, 0, 0, 7, 42, 0)
	tr.SchedPick(1, 0, 0, 0, 42, 1, EvRead)
	tr.SampleOccupancy(1, 3, 2, false)
	tr.SampleOccupancySkipped(1, 100, 3, 2, false)
	if tr.Enabled() || tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil ||
		tr.Intervals() != nil || tr.Count(EvRead) != 0 {
		t.Fatal("nil tracer must observe nothing")
	}
}

// TestRingOrderAndWrap checks chronological drain order and
// oldest-overwritten semantics when the ring fills.
func TestRingOrderAndWrap(t *testing.T) {
	tr := New(4, 0)
	for i := uint64(1); i <= 6; i++ {
		tr.Enqueue(i, 0, 0, 0, 0, i, false)
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("len = %d, want 4", len(ev))
	}
	for i, e := range ev {
		if want := uint64(3 + i); e.Cycle != want {
			t.Fatalf("event %d at cycle %d, want %d (oldest must be overwritten first)", i, e.Cycle, want)
		}
	}
	if tr.Count(EvEnqueue) != 6 {
		t.Fatalf("Count(EvEnqueue) = %d, want 6 (counts survive overwrites)", tr.Count(EvEnqueue))
	}
}

// TestIntervalMetrics folds a synthetic stream into intervals and checks
// the derived rates.
func TestIntervalMetrics(t *testing.T) {
	tr := New(64, 100)
	// Cycle-ordered stream, as the controller emits it. Interval [0,100):
	// one read transferring 4 bus cycles, one hit. Interval [100,200): one
	// activate, one conflict start, one write.
	for c := uint64(0); c < 200; c++ {
		switch c {
		case 10:
			tr.Command(10, EvRead, 0, 0, 0, 1, 15, 19)
			tr.Start(10, 0, 0, 0, 1, 1, 0, false)
		case 150:
			tr.Command(150, EvActivate, 0, 0, 1, 2, 0, 0)
		case 160:
			tr.Start(160, 0, 0, 1, 2, 2, 2, true)
		case 170:
			tr.Command(170, EvWrite, 0, 0, 1, 2, 175, 179)
		}
		tr.SampleOccupancy(c, 2, 1, c >= 100)
	}
	ivs := tr.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("intervals = %d, want 2", len(ivs))
	}
	iv0, iv1 := ivs[0], ivs[1]
	if iv0.Start != 0 || iv0.End != 100 || iv1.Start != 100 || iv1.End != 200 {
		t.Fatalf("bad interval bounds: %+v %+v", iv0, iv1)
	}
	if iv0.Reads != 1 || iv0.DataBusCycles != 4 || iv0.RowHitRate() != 1.0 {
		t.Fatalf("interval 0 metrics wrong: %+v", iv0)
	}
	if iv1.Writes != 1 || iv1.Activates != 1 || iv1.Outcomes[2] != 1 || iv1.RowHitRate() != 0 {
		t.Fatalf("interval 1 metrics wrong: %+v", iv1)
	}
	if iv0.MeanOutstandingReads() != 2 || iv0.MeanOutstandingWrites() != 1 {
		t.Fatalf("interval 0 occupancy wrong: %+v", iv0)
	}
	if iv0.WriteSaturation() != 0 || iv1.WriteSaturation() != 1 {
		t.Fatalf("saturation wrong: %v %v", iv0.WriteSaturation(), iv1.WriteSaturation())
	}
	if iv0.DataBusUtil() != 0.04 {
		t.Fatalf("bus util = %v, want 0.04", iv0.DataBusUtil())
	}
}

// TestSkippedSampleSplitsAtBoundary is the bit-identity guarantee for
// cycle skipping: a bulk occupancy sample spanning interval boundaries
// must attribute exactly the same per-interval weights as per-cycle
// sampling would.
func TestSkippedSampleSplitsAtBoundary(t *testing.T) {
	bulk := New(1, 100)
	// Skip from cycle 50 to cycle 250: covers cycles 51..250.
	bulk.SampleOccupancySkipped(50, 250, 4, 3, true)

	stepped := New(1, 100)
	for c := uint64(51); c <= 250; c++ {
		stepped.SampleOccupancy(c, 4, 3, true)
	}

	b, s := bulk.Intervals(), stepped.Intervals()
	if len(b) != len(s) {
		t.Fatalf("interval counts differ: %d vs %d", len(b), len(s))
	}
	for i := range b {
		if b[i] != s[i] {
			t.Fatalf("interval %d differs:\nbulk    %+v\nstepped %+v", i, b[i], s[i])
		}
	}
	if n := len(b); n != 3 || b[0].OccCycles != 49 || b[1].OccCycles != 100 || b[2].OccCycles != 51 {
		t.Fatalf("bad split: %+v", b)
	}
}

// TestDeterministicStream re-runs the same emission sequence and requires
// identical Events and Intervals — the diffability contract.
func TestDeterministicStream(t *testing.T) {
	run := func() *Tracer {
		tr := New(128, 50)
		for i := uint64(0); i < 300; i++ {
			switch i % 4 {
			case 0:
				tr.Enqueue(i, int(i%2), 0, int(i%4), uint32(i%8), i, i%3 == 0)
			case 1:
				tr.Command(i, EvActivate, int(i%2), 0, int(i%4), uint32(i%8), 0, 0)
			case 2:
				tr.Command(i, EvRead, int(i%2), 0, int(i%4), uint32(i%8), i+5, i+9)
			case 3:
				tr.Complete(i, int(i%2), 0, int(i%4), uint32(i%8), i, i-3, 0)
			}
			tr.SampleOccupancy(i, int(i%7), int(i%5), false)
		}
		return tr
	}
	a, b := run(), run()
	ea, eb := a.Events(), b.Events()
	if len(ea) != len(eb) {
		t.Fatalf("event counts differ")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	ia, ib := a.Intervals(), b.Intervals()
	if len(ia) != len(ib) {
		t.Fatalf("interval counts differ")
	}
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatalf("interval %d differs", i)
		}
	}
}
