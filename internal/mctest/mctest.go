// Package mctest provides shared helpers for controller-level tests: small
// configurations, cycle-stepping runners and deterministic random streams.
// It is used by the memctrl, core and sched test suites.
package mctest

import (
	"fmt"

	"burstmem/internal/addrmap"
	"burstmem/internal/dram"
	"burstmem/internal/memctrl"
	"burstmem/internal/xrand"
)

// SmallGeometry is a compact organization for fast directed tests:
// 1 channel, 1 rank, 4 banks, 64 rows, 32 lines per row.
func SmallGeometry() addrmap.Geometry {
	return addrmap.Geometry{
		Channels:    1,
		Ranks:       1,
		Banks:       4,
		Rows:        64,
		ColumnLines: 32,
		LineBytes:   64,
	}
}

// SmallConfig returns a controller config using the given timing over the
// small geometry, with a 64-entry pool capped at 16 writes.
func SmallConfig(t dram.Timing) memctrl.Config {
	cfg := memctrl.DefaultConfig()
	cfg.Timing = t
	cfg.Geometry = SmallGeometry()
	cfg.PoolSize = 64
	cfg.MaxWrites = 16
	return cfg
}

// Runner steps a controller cycle by cycle and records completions.
//
// The controller recycles Access objects through a free list once they
// complete, so Submit returns a stable snapshot record instead of the live
// (pool-owned) access: the record's fields are copied at submit time and
// again at completion, after which they never change.
type Runner struct {
	Ctrl *memctrl.Controller
	Cyc  uint64

	Completed []*memctrl.Access // snapshot records, in completion order
	DoneAt    map[uint64]uint64 // access ID -> completion cycle
}

// NewRunner builds a controller from cfg and factory and wraps it.
func NewRunner(cfg memctrl.Config, factory memctrl.Factory) (*Runner, error) {
	ctrl, err := memctrl.New(cfg, factory)
	if err != nil {
		return nil, err
	}
	r := &Runner{Ctrl: ctrl, DoneAt: make(map[uint64]uint64)}
	ctrl.Tick(0)
	return r, nil
}

// Submit issues an access at the current cycle. It fails the run (returns
// error) if the pool rejects it.
func (r *Runner) Submit(kind memctrl.Kind, addr uint64) (*memctrl.Access, error) {
	rec := &memctrl.Access{}
	a, ok := r.Ctrl.Submit(kind, addr, func(a *memctrl.Access, now uint64) {
		*rec = *a
		r.Completed = append(r.Completed, rec)
		r.DoneAt[a.ID] = now
	})
	if !ok {
		return nil, fmt.Errorf("mctest: pool rejected %v access at cycle %d", kind, r.Cyc)
	}
	*rec = *a
	return rec, nil
}

// SubmitLoc issues an access to a DRAM coordinate.
func (r *Runner) SubmitLoc(kind memctrl.Kind, loc addrmap.Loc) (*memctrl.Access, error) {
	return r.Submit(kind, r.Ctrl.Mapper().Encode(loc))
}

// Step advances n cycles.
func (r *Runner) Step(n int) {
	for i := 0; i < n; i++ {
		r.Cyc++
		r.Ctrl.Tick(r.Cyc)
	}
}

// RunUntilDrained steps until the controller is empty or maxCycles elapse.
// It returns the cycle the last access completed, or an error on timeout.
func (r *Runner) RunUntilDrained(maxCycles int) (uint64, error) {
	for i := 0; i < maxCycles; i++ {
		if r.Ctrl.Drained() {
			var last uint64
			for _, at := range r.DoneAt {
				if at > last {
					last = at
				}
			}
			return last, nil
		}
		r.Step(1)
	}
	return 0, fmt.Errorf("mctest: controller not drained after %d cycles", maxCycles)
}

// NewRNG returns a deterministic generator (see package xrand) so
// controller-level tests are reproducible.
func NewRNG(seed uint64) *xrand.RNG { return xrand.New(seed) }
