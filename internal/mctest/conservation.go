package mctest

import (
	"fmt"

	"burstmem/internal/memctrl"
	"burstmem/internal/trace"
)

// CheckConservation validates a drained controller run against its recorded
// trace stream, mechanism-independently:
//
//   - the stream is complete (no ring overwrites) and cycle-monotone;
//   - every enqueued access completes exactly once, with matching kind,
//     and nothing completes that was never enqueued;
//   - pool occupancy reconstructed from the stream never exceeds the pool
//     size, and write occupancy never exceeds the write-queue capacity —
//     globally and per channel (per-channel occupancy can never go
//     negative or exceed the global capacities either);
//   - every access stays on the channel it was enqueued to: starts and
//     completions carry the same channel index as the enqueue;
//   - the controller's aggregate statistics agree with the stream, and the
//     per-channel device statistics sum to the stream's command counts.
//
// The controller must be drained and its stats must cover the whole traced
// run (no ResetStats in between). The oracle applies unchanged to streams
// merged from parallel channel-shard execution (Controller.SetWorkers):
// the merge must preserve all of the above, so a green check on a parallel
// run certifies the merged stream, not just the serial one.
func CheckConservation(tr *trace.Tracer, ctrl *memctrl.Controller) error {
	if tr == nil {
		return fmt.Errorf("conservation: no tracer attached")
	}
	if tr.Dropped() != 0 {
		return fmt.Errorf("conservation: ring overwrote %d events; the oracle needs the complete stream", tr.Dropped())
	}
	if !ctrl.Drained() {
		return fmt.Errorf("conservation: controller not drained")
	}
	cfg := ctrl.Config()

	type lifecycle struct {
		ch        uint8
		write     bool
		forwarded bool
		completed bool
	}
	live := make(map[uint64]*lifecycle)
	type chanOcc struct{ reads, writes int }
	var (
		lastCycle    uint64
		lastComplete uint64
		poolReads    int
		poolWrites   int
		completes    uint64
		perChan      = make([]chanOcc, cfg.Geometry.Channels)
	)
	events := tr.Events()
	for i, e := range events {
		if e.Cycle < lastCycle {
			return fmt.Errorf("conservation: event %d (%v) at cycle %d after cycle %d — stream not monotone",
				i, e.Kind, e.Cycle, lastCycle)
		}
		lastCycle = e.Cycle
		switch e.Kind {
		case trace.EvEnqueue:
			id, write := e.Arg0, e.Arg1 != 0
			if _, dup := live[id]; dup {
				return fmt.Errorf("conservation: access %d enqueued twice", id)
			}
			if int(e.Chan) >= len(perChan) {
				return fmt.Errorf("conservation: access %d enqueued on channel %d of %d",
					id, e.Chan, len(perChan))
			}
			lc := &lifecycle{ch: e.Chan, write: write}
			live[id] = lc
			// A forwarded read (its EvForward directly follows) bypasses
			// the pool entirely, so it never counts toward occupancy.
			if i+1 < len(events) && events[i+1].Kind == trace.EvForward && events[i+1].Arg0 == id {
				lc.forwarded = true
			} else if write {
				poolWrites++
				perChan[e.Chan].writes++
			} else {
				poolReads++
				perChan[e.Chan].reads++
			}
		case trace.EvForward:
			lc, ok := live[e.Arg0]
			if !ok || lc.write || !lc.forwarded {
				return fmt.Errorf("conservation: forward of %d does not follow its enqueue", e.Arg0)
			}
			if e.Chan != lc.ch {
				return fmt.Errorf("conservation: access %d forwarded on channel %d but enqueued on %d",
					e.Arg0, e.Chan, lc.ch)
			}
		case trace.EvStart:
			lc, ok := live[e.Arg0]
			if !ok {
				return fmt.Errorf("conservation: access %d started but never enqueued", e.Arg0)
			}
			if lc.completed {
				return fmt.Errorf("conservation: access %d started after completing", e.Arg0)
			}
			if lc.forwarded {
				return fmt.Errorf("conservation: forwarded read %d reached the device", e.Arg0)
			}
			if e.Chan != lc.ch {
				return fmt.Errorf("conservation: access %d started on channel %d but enqueued on %d",
					e.Arg0, e.Chan, lc.ch)
			}
		case trace.EvComplete:
			lc, ok := live[e.Arg0]
			if !ok {
				return fmt.Errorf("conservation: access %d completed but never enqueued", e.Arg0)
			}
			if lc.completed {
				return fmt.Errorf("conservation: access %d completed twice", e.Arg0)
			}
			lc.completed = true
			if gotWrite := e.Arg2&trace.FlagWrite != 0; gotWrite != lc.write {
				return fmt.Errorf("conservation: access %d kind flipped between enqueue and complete", e.Arg0)
			}
			if (e.Arg2&trace.FlagForwarded != 0) != lc.forwarded {
				return fmt.Errorf("conservation: access %d forwarding flag mismatch", e.Arg0)
			}
			if e.Chan != lc.ch {
				return fmt.Errorf("conservation: access %d completed on channel %d but enqueued on %d",
					e.Arg0, e.Chan, lc.ch)
			}
			if e.Cycle < lastComplete {
				return fmt.Errorf("conservation: completion of %d at cycle %d before cycle %d",
					e.Arg0, e.Cycle, lastComplete)
			}
			lastComplete = e.Cycle
			completes++
			switch {
			case lc.forwarded:
				// Never occupied the pool.
			case lc.write:
				poolWrites--
				perChan[lc.ch].writes--
			default:
				poolReads--
				perChan[lc.ch].reads--
			}
		}
		if poolWrites > cfg.MaxWrites {
			return fmt.Errorf("conservation: write occupancy %d exceeds capacity %d at cycle %d",
				poolWrites, cfg.MaxWrites, e.Cycle)
		}
		if poolReads+poolWrites > cfg.PoolSize {
			return fmt.Errorf("conservation: pool occupancy %d exceeds size %d at cycle %d",
				poolReads+poolWrites, cfg.PoolSize, e.Cycle)
		}
		if poolReads < 0 || poolWrites < 0 {
			return fmt.Errorf("conservation: negative occupancy (r=%d w=%d) at cycle %d",
				poolReads, poolWrites, e.Cycle)
		}
		for ch := range perChan {
			co := perChan[ch]
			if co.reads < 0 || co.writes < 0 {
				return fmt.Errorf("conservation: negative channel %d occupancy (r=%d w=%d) at cycle %d",
					ch, co.reads, co.writes, e.Cycle)
			}
			if co.writes > cfg.MaxWrites || co.reads+co.writes > cfg.PoolSize {
				return fmt.Errorf("conservation: channel %d occupancy (r=%d w=%d) exceeds capacity at cycle %d",
					ch, co.reads, co.writes, e.Cycle)
			}
		}
	}
	for ch := range perChan {
		if co := perChan[ch]; co.reads != 0 || co.writes != 0 {
			return fmt.Errorf("conservation: channel %d drained with residual occupancy (r=%d w=%d)",
				ch, co.reads, co.writes)
		}
	}
	for id, lc := range live {
		if !lc.completed {
			return fmt.Errorf("conservation: access %d enqueued but never completed", id)
		}
	}
	if uint64(len(live)) != completes {
		return fmt.Errorf("conservation: %d enqueues vs %d completions", len(live), completes)
	}

	// Aggregate stats must agree with the stream...
	st := &ctrl.Stats
	if want := st.AcceptedReads + st.AcceptedWrites; tr.Count(trace.EvEnqueue) != want {
		return fmt.Errorf("conservation: %d enqueue events vs %d accepted accesses",
			tr.Count(trace.EvEnqueue), want)
	}
	if tr.Count(trace.EvForward) != st.ForwardedReads {
		return fmt.Errorf("conservation: %d forward events vs %d forwarded reads",
			tr.Count(trace.EvForward), st.ForwardedReads)
	}
	// ...and the per-channel device stats must sum to the stream's command
	// counts: each non-forwarded access issues exactly one column command.
	var devReads, devWrites uint64
	for i := 0; i < ctrl.Channels(); i++ {
		devReads += ctrl.Channel(i).Stats.Reads
		devWrites += ctrl.Channel(i).Stats.Writes
	}
	if devReads != tr.Count(trace.EvRead) || devWrites != tr.Count(trace.EvWrite) {
		return fmt.Errorf("conservation: channel stats (%d reads, %d writes) vs stream (%d, %d)",
			devReads, devWrites, tr.Count(trace.EvRead), tr.Count(trace.EvWrite))
	}
	if want := st.AcceptedReads - st.ForwardedReads; devReads != want {
		return fmt.Errorf("conservation: %d device reads vs %d pool reads", devReads, want)
	}
	if devWrites != st.AcceptedWrites {
		return fmt.Errorf("conservation: %d device writes vs %d pool writes", devWrites, st.AcceptedWrites)
	}
	return nil
}
