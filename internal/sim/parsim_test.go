package sim

import (
	"reflect"
	"runtime"
	"testing"

	"burstmem/internal/trace"
	"burstmem/internal/workload"
)

// diffConfig is the differential-suite machine: small enough that the full
// mechanism x workload x workers matrix stays fast, large enough that every
// mechanism schedules real bursts, preemptions, forwards and refreshes
// inside the window.
func diffConfig() Config {
	cfg := DefaultConfig()
	cfg.WarmupInstructions = 3_000
	cfg.Instructions = 10_000
	return cfg
}

// diffWorkerCounts is the sweep the differential suite runs against the
// serial reference: the issue's 1/2/4/NumCPU ladder, deduplicated.
func diffWorkerCounts() []int {
	counts := []int{1, 2, 4}
	n := runtime.NumCPU()
	for _, c := range counts {
		if c == n {
			return counts
		}
	}
	return append(counts, n)
}

// runTraced runs one full warmup+measurement simulation with a tracer and
// interval metrics attached, returning both the Result and the tracer.
func runTraced(t *testing.T, cfg Config, bench, mech string, workers int) (Result, *trace.Tracer) {
	t.Helper()
	prof, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	factory, err := MechanismByName(mech)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = workers
	sys, err := NewSystem(cfg, prof, factory)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(1<<19, 256)
	sys.AttachTracer(tr)
	res, err := runSystem(cfg, sys, bench)
	if err != nil {
		t.Fatal(err)
	}
	return res, tr
}

// requireIdentical asserts two runs are byte-identical: the full Result
// (stats, histograms, power, substructure counters), the complete trace
// event stream, and the interval metrics time series.
func requireIdentical(t *testing.T, label string, refRes, gotRes Result, refTr, gotTr *trace.Tracer) {
	t.Helper()
	if !reflect.DeepEqual(refRes, gotRes) {
		t.Errorf("%s: Result diverged from serial reference:\nserial:   %+v\nparallel: %+v", label, refRes, gotRes)
	}
	re, ge := refTr.Events(), gotTr.Events()
	if len(re) != len(ge) {
		t.Fatalf("%s: event counts differ: serial %d vs parallel %d", label, len(re), len(ge))
	}
	for i := range re {
		if re[i] != ge[i] {
			t.Fatalf("%s: event %d differs:\nserial   %+v\nparallel %+v", label, i, re[i], ge[i])
		}
	}
	for k := trace.Kind(0); k < trace.EvSchedPick+1; k++ {
		if refTr.Count(k) != gotTr.Count(k) {
			t.Errorf("%s: lifetime count of %v differs: serial %d vs parallel %d",
				label, k, refTr.Count(k), gotTr.Count(k))
		}
	}
	ri, gi := refTr.Intervals(), gotTr.Intervals()
	if len(ri) != len(gi) {
		t.Fatalf("%s: interval counts differ: serial %d vs parallel %d", label, len(ri), len(gi))
	}
	for i := range ri {
		if ri[i] != gi[i] {
			t.Fatalf("%s: interval %d differs:\nserial   %+v\nparallel %+v", label, i, ri[i], gi[i])
		}
	}
}

// TestParallelEquivalence is the headline differential suite: every one of
// the eleven mechanisms, across SPEC trace workloads, at workers
// 1/2/4/NumCPU, must produce output byte-identical to the serial engine —
// the full Result (latency histograms included), the complete trace event
// stream, and the interval metrics. Any scheduling divergence, heap
// tie-break reorder, or trace merge slip fails here.
func TestParallelEquivalence(t *testing.T) {
	workloads := []string{"swim", "mcf"}
	if testing.Short() {
		workloads = workloads[:1]
	}
	for _, bench := range workloads {
		for _, mech := range conservationMechanisms() {
			bench, mech := bench, mech
			t.Run(bench+"/"+mech, func(t *testing.T) {
				cfg := diffConfig()
				refRes, refTr := runTraced(t, cfg, bench, mech, 0)
				for _, w := range diffWorkerCounts() {
					gotRes, gotTr := runTraced(t, cfg, bench, mech, w)
					requireIdentical(t, mech+"/workers="+itoa(w), refRes, gotRes, refTr, gotTr)
				}
			})
		}
	}
}

// TestParallelEquivalenceFourChannels exercises more shards than the
// default two-channel geometry allows: a 4-channel machine at 2, 3 and 4
// workers (3 gives an uneven static partition) against serial.
func TestParallelEquivalenceFourChannels(t *testing.T) {
	cfg := diffConfig()
	cfg.Mem.Geometry.Channels = 4
	cfg.Mem.Geometry.Ranks = 2 // keep total capacity; spread it over channels
	for _, tc := range []struct{ bench, mech string }{
		{"swim", "Burst_TH"},
		{"mcf", "Intel_RP"},
	} {
		tc := tc
		t.Run(tc.bench+"/"+tc.mech, func(t *testing.T) {
			refRes, refTr := runTraced(t, cfg, tc.bench, tc.mech, 0)
			for _, w := range []int{2, 3, 4} {
				gotRes, gotTr := runTraced(t, cfg, tc.bench, tc.mech, w)
				requireIdentical(t, tc.mech+"/4ch/workers="+itoa(w), refRes, gotRes, refTr, gotTr)
			}
		})
	}
}

// TestParallelEquivalenceMetamorphic permutes the worker count mid-run —
// at skip-window boundaries, i.e. between full memory cycles — cycling
// serial/2/4/3 every few hundred steps, and still demands byte-identical
// output. Worker count is an execution detail, never a model input; this
// is the metamorphic relation that pins it.
func TestParallelEquivalenceMetamorphic(t *testing.T) {
	const bench, mech = "swim", "Burst_TH"
	cfg := diffConfig()
	cfg.Mem.Geometry.Channels = 4
	cfg.Mem.Geometry.Ranks = 2
	refRes, refTr := runTraced(t, cfg, bench, mech, 0)

	perm := []int{2, 0, 4, 3, 1}
	prof, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	factory, err := MechanismByName(mech)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(cfg, prof, factory)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	tr := trace.New(1<<19, 256)
	sys.AttachTracer(tr)

	// The runSystem protocol, with a worker-count switch spliced in after
	// TrySkip — always at a skip-window boundary, never inside a cycle.
	maxCycles := (cfg.WarmupInstructions+cfg.Instructions)*40 + 1_000_000
	target := cfg.WarmupInstructions + cfg.Instructions
	warmed := false
	steps, pi := 0, 0
	for sys.MinRetired() < target {
		if sys.MemCycle() >= maxCycles {
			t.Fatalf("metamorphic run exceeded %d cycles", maxCycles)
		}
		if !warmed && sys.MinRetired() >= cfg.WarmupInstructions {
			sys.ResetStats()
			target = sys.MinRetired() + cfg.Instructions
			warmed = true
		}
		sys.StepMemCycle()
		if r := sys.MinRetired(); r < target && (warmed || r < cfg.WarmupInstructions) {
			sys.TrySkip()
		}
		steps++
		if steps%257 == 0 {
			sys.SetWorkers(perm[pi%len(perm)])
			pi++
		}
	}
	if pi < 3 {
		t.Fatalf("only %d worker-count switches happened; the metamorphic run is vacuous", pi)
	}
	gotRes := sys.Collect(bench)
	requireIdentical(t, "metamorphic", refRes, gotRes, refTr, tr)
}

// itoa avoids pulling strconv into the test just for labels.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
