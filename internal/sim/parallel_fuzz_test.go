package sim

import (
	"testing"

	"burstmem/internal/addrmap"
	"burstmem/internal/mctest"
	"burstmem/internal/memctrl"
	"burstmem/internal/trace"
	"burstmem/internal/xrand"
)

// completionRec is one OnComplete callback observation: the order, identity
// and timing of callbacks is part of the parallel path's bit-identical
// contract (the CPU/cache domain wakes up on them).
type completionRec struct {
	id    uint64
	cycle uint64
}

// fuzzBarrierRun drives one controller — serial for workers <= 1 — through
// a deterministic randomized schedule of submission bursts,
// horizon-computed skip jumps and randomized TickWindow batches, then
// drains it. It returns the OnComplete sequence, the tracer, and the
// controller for stats/conservation checks.
func fuzzBarrierRun(t *testing.T, workers, channels int, seed uint64, subs int, skipMask, winMask uint8) ([]completionRec, *trace.Tracer, *memctrl.Controller) {
	t.Helper()
	factory, err := MechanismByName("Burst_TH")
	if err != nil {
		t.Fatal(err)
	}
	cfg := memctrl.DefaultConfig()
	cfg.Geometry = addrmap.Geometry{
		Channels: channels, Ranks: 2, Banks: 4, Rows: 64, ColumnLines: 32, LineBytes: 64,
	}
	cfg.PoolSize = 32
	cfg.MaxWrites = 8
	ctrl, err := memctrl.New(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.SetWorkers(workers)
	defer ctrl.SetWorkers(0)
	tr := trace.New(1<<18, 64)
	ctrl.SetTracer(tr)

	var recs []completionRec
	onComplete := func(a *memctrl.Access, at uint64) {
		recs = append(recs, completionRec{id: a.ID, cycle: at})
	}

	rng := xrand.New(seed)
	cyc := uint64(0)
	ctrl.Tick(cyc)
	for submitted := 0; submitted < subs; {
		cyc++
		ctrl.Tick(cyc)
		for b := rng.Intn(4); b > 0; b-- {
			kind := memctrl.KindRead
			if rng.Intn(3) == 0 {
				kind = memctrl.KindWrite
			}
			if !ctrl.CanAccept(kind) {
				continue
			}
			addr := uint64(rng.Intn(1<<13)) * 64
			if _, ok := ctrl.Submit(kind, addr, onComplete); ok {
				submitted++
			}
		}
		// Fuzz-selected cycles take a skip window: jump to one cycle
		// before the controller's own event horizon, exactly as the skip
		// engine does. An off-by-one in the horizon under parallelism
		// shows up as a divergent stream here.
		if skipMask>>(cyc%8)&1 == 1 {
			if next := ctrl.NextEventCycle(cyc); next > cyc+1 && next != memctrl.NoEvent {
				k := next - 1 - cyc
				ctrl.AccountSkipped(k)
				cyc += k
			}
		}
		// Fuzz-selected cycles batch a skip window: a randomized end
		// anywhere inside the controller's completion-free guarantee,
		// exercising TickWindow (and its once-per-window merge) with
		// adversarial bounds — including 1-cycle stubs — that the
		// production tryWindow path would never pick.
		if winMask>>(cyc%8)&1 == 1 {
			from := cyc + 1
			if to := ctrl.WindowBound(from); to > from {
				wTo := from + 1 + uint64(rng.Intn(int(to-from)))
				ctrl.TickWindow(from, wTo)
				cyc = wTo - 1
			}
		}
	}
	for i := 0; !ctrl.Drained(); i++ {
		if i > 200_000 {
			t.Fatalf("workers=%d: controller not drained after 200k cycles", workers)
		}
		cyc++
		ctrl.Tick(cyc)
	}
	return recs, tr, ctrl
}

// FuzzParallelBarrier differentially fuzzes the barrier coordinator against
// the serial reference: randomized channel counts, worker counts,
// completion burst shapes, skip-jump placement and TickWindow batches with
// randomized window bounds must never change the OnComplete sequence, the
// trace stream, the interval metrics, or the aggregate statistics — and
// the parallel stream must independently satisfy the conservation oracle.
func FuzzParallelBarrier(f *testing.F) {
	f.Add(uint64(1), uint8(1), uint8(2), uint16(300), uint8(0x5a), uint8(0xff))
	f.Add(uint64(7), uint8(2), uint8(4), uint16(800), uint8(0xff), uint8(0x33))
	f.Add(uint64(42), uint8(0), uint8(3), uint16(120), uint8(0x00), uint8(0xaa))
	f.Add(uint64(0xdead), uint8(2), uint8(2), uint16(1500), uint8(0x11), uint8(0x00))
	f.Fuzz(func(t *testing.T, seed uint64, chExp, workers uint8, subs uint16, skipMask, winMask uint8) {
		channels := 1 << (chExp % 3) // 1, 2 or 4 channels
		w := int(workers%4) + 1      // 1..4 workers
		n := 50 + int(subs%1200)

		refRecs, refTr, refCtrl := fuzzBarrierRun(t, 0, channels, seed, n, skipMask, winMask)
		gotRecs, gotTr, gotCtrl := fuzzBarrierRun(t, w, channels, seed, n, skipMask, winMask)

		if len(refRecs) != len(gotRecs) {
			t.Fatalf("completion counts differ: serial %d vs workers=%d %d", len(refRecs), w, len(gotRecs))
		}
		for i := range refRecs {
			if refRecs[i] != gotRecs[i] {
				t.Fatalf("completion %d differs: serial %+v vs workers=%d %+v", i, refRecs[i], w, gotRecs[i])
			}
		}
		re, ge := refTr.Events(), gotTr.Events()
		if len(re) != len(ge) {
			t.Fatalf("event counts differ: serial %d vs workers=%d %d", len(re), w, len(ge))
		}
		for i := range re {
			if re[i] != ge[i] {
				t.Fatalf("event %d differs:\nserial   %+v\nparallel %+v", i, re[i], ge[i])
			}
		}
		ri, gi := refTr.Intervals(), gotTr.Intervals()
		if len(ri) != len(gi) {
			t.Fatalf("interval counts differ: serial %d vs workers=%d %d", len(ri), w, len(gi))
		}
		for i := range ri {
			if ri[i] != gi[i] {
				t.Fatalf("interval %d differs:\nserial   %+v\nparallel %+v", i, ri[i], gi[i])
			}
		}
		rs, gs := refCtrl.Stats, gotCtrl.Stats
		if rs.Cycles != gs.Cycles || rs.WriteSatCycles != gs.WriteSatCycles ||
			rs.PoolFullCycles != gs.PoolFullCycles || rs.ForwardedReads != gs.ForwardedReads ||
			rs.AcceptedReads != gs.AcceptedReads || rs.AcceptedWrites != gs.AcceptedWrites ||
			rs.RejectedRequests != gs.RejectedRequests || rs.BytesTransferred != gs.BytesTransferred ||
			rs.ReadLatency != gs.ReadLatency || rs.WriteLatency != gs.WriteLatency {
			t.Fatalf("aggregate stats differ:\nserial   %+v\nparallel %+v", rs, gs)
		}
		if err := mctest.CheckConservation(gotTr, gotCtrl); err != nil {
			t.Fatalf("parallel stream fails conservation: %v", err)
		}
	})
}
