package sim

import (
	"testing"

	"burstmem/internal/addrmap"
	"burstmem/internal/dram"
	"burstmem/internal/mctest"
	"burstmem/internal/memctrl"
	"burstmem/internal/trace"
	"burstmem/internal/workload"
	"burstmem/internal/xrand"
)

// conservationMechanisms is every Table 4 mechanism plus the serial
// reference: the conservation laws are mechanism-independent, so all of
// them must satisfy the same oracle on the same workload.
func conservationMechanisms() []string {
	return append(MechanismNames(), "InOrder", "Burst_DYN", "Burst_SZ")
}

// TestAccessConservation drives every mechanism over one shared
// deterministic request stream on a multi-channel controller with a tracer
// attached, then validates the trace stream with the mctest oracle: every
// enqueued access completes exactly once, completion timestamps are
// monotone, reconstructed pool/write-queue occupancy stays within
// capacity, and controller totals agree with per-channel device counts.
func TestAccessConservation(t *testing.T) {
	for _, workers := range []int{0, 2} {
		for _, mech := range conservationMechanisms() {
			workers, mech := workers, mech
			t.Run(mech+"/workers"+itoa(workers), func(t *testing.T) {
				factory, err := MechanismByName(mech)
				if err != nil {
					t.Fatal(err)
				}
				cfg := memctrl.DefaultConfig()
				cfg.Geometry = addrmap.Geometry{
					Channels: 2, Ranks: 2, Banks: 4, Rows: 64, ColumnLines: 32, LineBytes: 64,
				}
				cfg.PoolSize = 48
				cfg.MaxWrites = 12
				ctrl, err := memctrl.New(cfg, factory)
				if err != nil {
					t.Fatal(err)
				}
				ctrl.SetWorkers(workers)
				defer ctrl.SetWorkers(0)
				tr := trace.New(1<<18, 0)
				ctrl.SetTracer(tr)

				// Closed loop: submit a skewed read/write mix over a small
				// footprint (heavy row reuse exercises bursts, forwarding and
				// piggybacking; pool pressure exercises forced writes and
				// preemption), respecting back-pressure.
				rng := xrand.New(7)
				cyc := uint64(0)
				ctrl.Tick(cyc)
				submitted := 0
				for submitted < 4000 {
					cyc++
					ctrl.Tick(cyc)
					for b := rng.Intn(3); b > 0; b-- {
						kind := memctrl.KindRead
						if rng.Intn(3) == 0 {
							kind = memctrl.KindWrite
						}
						if !ctrl.CanAccept(kind) {
							continue
						}
						addr := uint64(rng.Intn(1<<13)) * 64
						if _, ok := ctrl.Submit(kind, addr, nil); ok {
							submitted++
						}
					}
				}
				for i := 0; !ctrl.Drained(); i++ {
					if i > 200_000 {
						t.Fatalf("%s: controller not drained after 200k cycles", mech)
					}
					cyc++
					ctrl.Tick(cyc)
				}
				if err := mctest.CheckConservation(tr, ctrl); err != nil {
					t.Fatal(err)
				}
				if tr.Count(trace.EvEnqueue) != uint64(submitted) {
					t.Fatalf("%s: %d submitted but %d enqueue events",
						mech, submitted, tr.Count(trace.EvEnqueue))
				}
			})
		}
	}
}

// TestConservationCatchesViolations guards the oracle itself: a stream
// with a duplicated completion (or a lost access) must be rejected, so a
// green conservation run means the laws were actually checked.
func TestConservationCatchesViolations(t *testing.T) {
	cfg := mctest.SmallConfig(dram.DDR2_800())
	// A complete, valid run first.
	r, err := mctest.NewRunner(cfg, MechanismNamesFactoryForTest(t, "Burst_TH"))
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(1<<12, 0)
	r.Ctrl.SetTracer(tr)
	for i := 0; i < 20; i++ {
		if _, err := r.Submit(memctrl.KindRead, uint64(i)*64); err != nil {
			t.Fatal(err)
		}
		r.Step(2)
	}
	if _, err := r.RunUntilDrained(100_000); err != nil {
		t.Fatal(err)
	}
	if err := mctest.CheckConservation(tr, r.Ctrl); err != nil {
		t.Fatalf("valid run rejected: %v", err)
	}
	// Now a tracer that saw an orphan completion.
	bad := trace.New(16, 0)
	bad.Complete(10, 0, 0, 0, 0, 99, 5, 0)
	if err := mctest.CheckConservation(bad, r.Ctrl); err == nil {
		t.Fatal("orphan completion not detected")
	}
	// And one that lost a completion.
	lost := trace.New(16, 0)
	lost.Enqueue(1, 0, 0, 0, 0, 1, false)
	if err := mctest.CheckConservation(lost, r.Ctrl); err == nil {
		t.Fatal("lost access not detected")
	}
}

// MechanismNamesFactoryForTest resolves a mechanism factory, failing the
// test on unknown names.
func MechanismNamesFactoryForTest(t *testing.T, name string) memctrl.Factory {
	t.Helper()
	f, err := MechanismByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestTraceSkipEquivalence: with a tracer attached, the event stream and
// the interval metrics of a cycle-skipping run must be bit-identical to
// the cycle-by-cycle reference — bulk occupancy attribution
// (SampleOccupancySkipped) must split across interval boundaries exactly
// as per-cycle sampling would, and skipping must never reorder or drop an
// event. Parameterized over front-end behavior: swim keeps the front end
// busy (skips rare, windows short), while mcf's pointer chase and apsi's
// 6% memory intensity produce the long front-end-idle stretches where the
// precise CPU.NextEventCycle bound lets skips and TickWindow batches run
// longest — the paths most likely to misattribute a bulk-accounted cycle.
func TestTraceSkipEquivalence(t *testing.T) {
	for _, bench := range []string{"swim", "mcf", "apsi"} {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			run := func(disableSkip bool, workers int) *trace.Tracer {
				prof, err := workload.ByName(bench)
				if err != nil {
					t.Fatal(err)
				}
				factory, err := MechanismByName("Burst_TH")
				if err != nil {
					t.Fatal(err)
				}
				cfg := DefaultConfig()
				cfg.WarmupInstructions = 5_000
				cfg.Instructions = 20_000
				cfg.Workers = workers
				sys, err := NewSystem(cfg, prof, factory)
				if err != nil {
					t.Fatal(err)
				}
				sys.DisableSkip = disableSkip
				tr := trace.New(1<<20, 512)
				sys.AttachTracer(tr)
				if _, err := runSystem(cfg, sys, bench); err != nil {
					t.Fatal(err)
				}
				return tr
			}
			ref := run(true, 0)
			compare := func(label string, got *trace.Tracer) {
				t.Helper()
				re, se := ref.Events(), got.Events()
				if len(re) != len(se) {
					t.Fatalf("%s: event counts differ: stepped %d vs %d", label, len(re), len(se))
				}
				for i := range re {
					if re[i] != se[i] {
						t.Fatalf("%s: event %d differs:\nstepped %+v\ngot     %+v", label, i, re[i], se[i])
					}
				}
				ri, si := ref.Intervals(), got.Intervals()
				if len(ri) != len(si) {
					t.Fatalf("%s: interval counts differ: stepped %d vs %d", label, len(ri), len(si))
				}
				for i := range ri {
					if ri[i] != si[i] {
						t.Fatalf("%s: interval %d differs:\nstepped %+v\ngot     %+v", label, i, ri[i], si[i])
					}
				}
			}
			compare("skipping", run(false, 0))
			// The skip engine and the worker pool compose: a skipping
			// parallel run must still match the stepped serial reference
			// event for event.
			compare("workers=2 stepped", run(true, 2))
			compare("workers=2 skipping", run(false, 2))
		})
	}
}
