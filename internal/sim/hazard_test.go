package sim

import (
	"testing"

	"burstmem/internal/addrmap"
	"burstmem/internal/memctrl"
	"burstmem/internal/xrand"
)

// TestOrderingInvariants drives every mechanism with colliding read/write
// traffic over a tiny footprint and asserts the memory-ordering rules the
// paper's Section 3.4 claims (extended with the forced-write WAR guard):
//
//   - WAR: a read completes before any same-line write that arrived after
//     it drains (forwarded reads exempt — they never reach the device);
//   - WAW: same-line writes drain in arrival order;
//   - RAW: a read arriving while a same-line write is pending is forwarded
//     (for forwarding mechanisms) or completes after that write drains
//     (for in-order ones).
func TestOrderingInvariants(t *testing.T) {
	for _, mech := range append(MechanismNames(), "InOrder", "Burst_DYN", "Burst_SZ") {
		mech := mech
		t.Run(mech, func(t *testing.T) {
			factory, err := MechanismByName(mech)
			if err != nil {
				t.Fatal(err)
			}
			cfg := memctrl.DefaultConfig()
			cfg.Geometry = addrmap.Geometry{
				Channels: 1, Ranks: 1, Banks: 2, Rows: 4, ColumnLines: 8, LineBytes: 64,
			}
			cfg.PoolSize = 24
			cfg.MaxWrites = 6
			ctrl, err := memctrl.New(cfg, factory)
			if err != nil {
				t.Fatal(err)
			}
			// The controller recycles Access objects after completion, so
			// keep stable snapshot records (copied at submit and again at
			// completion) rather than live pool-owned pointers.
			var completed int
			rng := xrand.New(7)
			var submitted []*memctrl.Access
			ctrl.Tick(0)
			for cyc := uint64(1); cyc < 30000; cyc++ {
				ctrl.Tick(cyc)
				if rng.Intn(3) != 0 {
					continue
				}
				kind := memctrl.KindRead
				if rng.Intn(3) == 0 {
					kind = memctrl.KindWrite
				}
				if !ctrl.CanAccept(kind) {
					continue
				}
				// Tiny footprint: 16 lines over 2 banks, heavy collisions.
				addr := uint64(rng.Intn(16)) * 64 * 4
				rec := &memctrl.Access{}
				a, ok := ctrl.Submit(kind, addr, func(a *memctrl.Access, now uint64) {
					*rec = *a
					completed++
				})
				if !ok {
					continue
				}
				*rec = *a
				submitted = append(submitted, rec)
			}
			for cyc := uint64(30000); !ctrl.Drained(); cyc++ {
				if cyc > 300000 {
					t.Fatalf("controller wedged: %d reads %d writes outstanding",
						ctrl.OutstandingReads(), ctrl.OutstandingWrites())
				}
				ctrl.Tick(cyc)
			}
			if completed != len(submitted) {
				t.Fatalf("completed %d of %d", completed, len(submitted))
			}
			// Group by line; check orderings via device data times.
			byLine := map[uint64][]*memctrl.Access{}
			for _, a := range submitted {
				byLine[a.LineAddr(64)] = append(byLine[a.LineAddr(64)], a)
			}
			for line, accs := range byLine {
				for i, a := range accs {
					for _, b := range accs[i+1:] {
						// a arrived before b (submission order).
						switch {
						case a.Kind == memctrl.KindWrite && b.Kind == memctrl.KindWrite:
							if a.DataEnd >= b.DataEnd {
								t.Fatalf("%s line %#x: WAW violated: write#%d (drain %d) vs later write#%d (drain %d)",
									mech, line, a.ID, a.DataEnd, b.ID, b.DataEnd)
							}
						case a.Kind == memctrl.KindRead && b.Kind == memctrl.KindWrite:
							if !a.Forwarded && a.DataEnd >= b.DataEnd {
								t.Fatalf("%s line %#x: WAR violated: read#%d (data %d) vs later write#%d (drain %d)",
									mech, line, a.ID, a.DataEnd, b.ID, b.DataEnd)
							}
						case a.Kind == memctrl.KindWrite && b.Kind == memctrl.KindRead:
							// RAW: the read must be forwarded or wait
							// for the write's data.
							if !b.Forwarded && b.DataEnd <= a.DataEnd {
								t.Fatalf("%s line %#x: RAW violated: write#%d (drain %d) vs later read#%d (data %d)",
									mech, line, a.ID, a.DataEnd, b.ID, b.DataEnd)
							}
						}
					}
				}
			}
		})
	}
}
