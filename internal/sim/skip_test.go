package sim

import (
	"reflect"
	"testing"

	"burstmem/internal/workload"
)

// runWith drives a fresh system through the real runSystem protocol, with
// cycle skipping on or off.
func runWith(t *testing.T, cfg Config, bench, mech string, disableSkip bool) Result {
	t.Helper()
	prof, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	factory, err := MechanismByName(mech)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(cfg, prof, factory)
	if err != nil {
		t.Fatal(err)
	}
	sys.DisableSkip = disableSkip
	res, err := runSystem(cfg, sys, bench)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFastForwardBitIdentical: event-driven cycle skipping must not change
// ANY measurement. Every skipped cycle is one where no state transition can
// occur, so the skipped run and the cycle-by-cycle run are the same
// simulation; the full Result (latency histograms, stall counters,
// occupancy distributions, power, everything) must match exactly.
func TestFastForwardBitIdentical(t *testing.T) {
	cases := []struct {
		bench string
		mech  string
		cores int
	}{
		// mcf is latency-bound (pointer chasing): long all-stalled
		// stretches make skips frequent, the strongest stress on the
		// eligibility classifiers.
		{"mcf", "BkInOrder", 0},
		{"mcf", "Burst_TH", 0},
		{"swim", "RowHit", 0},
		{"swim", "Intel_RP", 0},
		{"swim", "Burst_RP", 0},
		{"gcc", "Burst_DYN", 0},
		// gzip once exposed a boundary bug: a skip straddling the
		// warmup-crossing cycle moved stall cycles out of the window.
		{"gzip", "Burst_TH", 0},
		{"gzip", "Burst_DYN", 0},
		{"mcf", "Burst_TH", 2}, // CMP: every core's classifier must agree
	}
	for _, tc := range cases {
		tc := tc
		name := tc.bench + "/" + tc.mech
		if tc.cores > 1 {
			name += "/cmp"
		}
		t.Run(name, func(t *testing.T) {
			cfg := quickConfig()
			cfg.Cores = tc.cores
			stepped := runWith(t, cfg, tc.bench, tc.mech, true)
			skipped := runWith(t, cfg, tc.bench, tc.mech, false)
			if !reflect.DeepEqual(stepped, skipped) {
				t.Errorf("FastForward diverged from StepMemCycle:\n stepped: %+v\n skipped: %+v",
					stepped, skipped)
			}
			// The same invariant must hold with channel execution sharded
			// across the worker pool: skipping, stepping, serial and
			// parallel are four routes to one bit-identical simulation.
			cfg.Workers = 2
			for _, disableSkip := range []bool{true, false} {
				par := runWith(t, cfg, tc.bench, tc.mech, disableSkip)
				if !reflect.DeepEqual(stepped, par) {
					t.Errorf("workers=2 (disableSkip=%v) diverged from serial reference:\n serial:   %+v\n parallel: %+v",
						disableSkip, stepped, par)
				}
			}
		})
	}
}

// TestFastForwardActuallySkips: on a latency-bound benchmark the skip path
// must fire — otherwise TestFastForwardBitIdentical is vacuous.
func TestFastForwardActuallySkips(t *testing.T) {
	prof, _ := workload.ByName("mcf")
	factory, _ := MechanismByName("Burst_TH")
	cfg := quickConfig()
	sys, err := NewSystem(cfg, prof, factory)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for sys.MinRetired() < cfg.Instructions {
		sys.FastForward()
		steps++
	}
	if uint64(steps) >= sys.MemCycle() {
		t.Fatalf("no cycles skipped: %d steps for %d memory cycles", steps, sys.MemCycle())
	}
	t.Logf("stepped %d of %d memory cycles (%.1f%% skipped)",
		steps, sys.MemCycle(), 100*(1-float64(steps)/float64(sys.MemCycle())))
}

// TestRunDeterministic: repeated identical runs must produce bit-identical
// Results across every mechanism family — the reproducibility contract all
// paper-figure experiments rely on.
func TestRunDeterministic(t *testing.T) {
	for _, mech := range []string{"BkInOrder", "RowHit", "Intel_RP", "Burst_TH"} {
		mech := mech
		t.Run(mech, func(t *testing.T) {
			a := runQuick(t, "swim", mech)
			b := runQuick(t, "swim", mech)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("two identical runs differ:\n first: %+v\nsecond: %+v", a, b)
			}
			// Parallel runs must be just as repeatable: scheduler
			// interleaving across the worker pool never reaches results.
			cfg := quickConfig()
			cfg.Workers = 2
			pa := runWith(t, cfg, "swim", mech, false)
			pb := runWith(t, cfg, "swim", mech, false)
			if !reflect.DeepEqual(pa, pb) {
				t.Errorf("two identical workers=2 runs differ:\n first: %+v\nsecond: %+v", pa, pb)
			}
		})
	}
}
