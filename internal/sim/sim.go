// Package sim wires the full baseline machine together — out-of-order CPU,
// L1/L2 caches, front-side bus, memory controller and DDR2 devices — and
// runs benchmark simulations, producing the measurements the paper's
// evaluation reports (execution time, access latencies, row outcome rates,
// bus utilization, outstanding-access distributions, write-queue
// saturation).
//
// Clocking: the master loop advances one memory cycle (400 MHz) at a time;
// the FSB logic runs in the memory domain and the CPU and caches tick
// CPUCyclesPerMemCycle times (10, for the 4 GHz core) per memory cycle.
package sim

import (
	"fmt"
	"strconv"
	"strings"

	"burstmem/internal/bus"
	"burstmem/internal/cache"
	"burstmem/internal/core"
	"burstmem/internal/cpu"
	"burstmem/internal/dram"
	"burstmem/internal/eventq"
	"burstmem/internal/memctrl"
	"burstmem/internal/sched"
	"burstmem/internal/stats"
	"burstmem/internal/trace"
	"burstmem/internal/workload"
)

// Config assembles the machine (Table 3 defaults via DefaultConfig).
type Config struct {
	CPU cpu.Config
	L1D cache.Config
	L2  cache.Config
	FSB bus.Config
	Mem memctrl.Config

	// CPUCyclesPerMemCycle is the CPU:memory clock ratio (4 GHz : 400 MHz
	// = 10).
	CPUCyclesPerMemCycle int

	// Cores instantiates a chip multiprocessor: each core gets its own
	// CPU and L1D (running the same benchmark profile with a different
	// seed) and all cores share the L2 and the memory system. The
	// paper's Section 6 predicts access reordering grows more important
	// as CMPs multiply outstanding accesses; cmd/experiments -exp cmp
	// measures that. 0 or 1 means a single core.
	Cores int

	// Workers shards memory-channel execution across a bounded worker
	// pool, one shard per channel, with a barrier per memory cycle
	// (internal/parsim via memctrl.Controller.SetWorkers). 0 or 1 keeps
	// the serial path; higher values clamp to the channel count. Output
	// is bit-identical for every setting — the parallel differential
	// suite (parsim_test.go) asserts it byte for byte.
	Workers int

	// WarmupInstructions run before the measurement window opens (caches
	// fill, writeback traffic reaches steady state); statistics are then
	// reset and Instructions more are measured.
	WarmupInstructions uint64
	// Instructions is the measured retirement target per run.
	Instructions uint64
	// MaxMemCycles aborts runaway simulations; 0 derives a generous
	// bound from Instructions.
	MaxMemCycles uint64
}

// DefaultConfig returns the paper's Table 3 baseline machine.
func DefaultConfig() Config {
	return Config{
		CPU:                  cpu.DefaultConfig(),
		L1D:                  cache.L1Config("L1D"),
		L2:                   cache.L2Config(),
		FSB:                  bus.DefaultConfig(),
		Mem:                  memctrl.DefaultConfig(),
		CPUCyclesPerMemCycle: 10,
		WarmupInstructions:   300_000,
		Instructions:         1_000_000,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.CPU.Validate(); err != nil {
		return err
	}
	if err := c.L1D.Validate(); err != nil {
		return err
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if err := c.FSB.Validate(); err != nil {
		return err
	}
	if err := c.Mem.Validate(); err != nil {
		return err
	}
	if c.CPUCyclesPerMemCycle < 1 {
		return fmt.Errorf("sim: CPU:mem clock ratio must be >= 1")
	}
	if c.Cores < 0 || c.Cores > 64 {
		return fmt.Errorf("sim: cores %d out of [0, 64]", c.Cores)
	}
	if c.Workers < 0 || c.Workers > 1024 {
		return fmt.Errorf("sim: workers %d out of [0, 1024]", c.Workers)
	}
	if c.Instructions == 0 {
		return fmt.Errorf("sim: zero instruction target")
	}
	return nil
}

// Result is one simulation's measurements.
type Result struct {
	Mechanism string
	Benchmark string
	Cores     int

	Instructions uint64 // total retired across cores in the window
	CPUCycles    uint64
	MemCycles    uint64
	IPC          float64

	ReadLatency  float64 // mean, memory cycles
	WriteLatency float64
	// Latency percentiles in memory cycles (tail behaviour).
	ReadLatencyP50 int
	ReadLatencyP95 int
	ReadLatencyP99 int

	RowHit, RowEmpty, RowConflict float64

	DataBusUtil float64
	AddrBusUtil float64

	WriteSaturation float64 // fraction of time the write queue was full
	ForwardedReads  uint64
	MemReads        uint64
	MemWrites       uint64

	// BandwidthGBps is effective bandwidth at the 400 MHz memory clock.
	BandwidthGBps float64

	// EnergyPerAccessNJ and AvgMemPowerW come from the Micron-style DRAM
	// power model (internal/dram): command energies plus background
	// power, summed over channels for the measurement window.
	EnergyPerAccessNJ float64
	AvgMemPowerW      float64

	// OutstandingReads/Writes are the per-cycle occupancy distributions
	// (paper Figure 8).
	OutstandingReads  *stats.Histogram
	OutstandingWrites *stats.Histogram

	// Substructure statistics for deeper analysis.
	CPUStats cpu.Stats
	L1DStats cache.Stats
	L2Stats  cache.Stats
	FSBStats bus.Stats
}

// System is an assembled machine, steppable for fine-grained tests.
// Single-core systems (the default) expose their core as CPU/L1D; CMP
// configurations populate CPUs/L1Ds with CPU/L1D aliasing core 0.
type System struct {
	Cfg  Config
	CPU  *cpu.CPU
	L1D  *cache.Cache
	CPUs []*cpu.CPU
	L1Ds []*cache.Cache
	L2   *cache.Cache
	FSB  *bus.FSB
	Ctrl *memctrl.Controller

	// DisableSkip forces FastForward/TrySkip to step every cycle
	// (reference mode for equivalence testing).
	DisableSkip bool

	// skipWheel aggregates the machine's next-event sources — the memory
	// controller (mechanism timers, refresh, completions) and the FSB —
	// into one event wheel, so TrySkip's bound is a single PeekMin. The
	// wheel's far-bucket answer is a conservative lower bound: a skip can
	// only come up short, never jump an event, and the next iteration
	// resumes skipping from the landing cycle.
	skipWheel *eventq.Wheel

	// memCycle is the machine clock, advanced only by the coordinating
	// goroutine between barrier rounds (StepMemCycle / TrySkip /
	// tryWindow); shards never touch it.
	//
	//burstmem:shared machine clock: written only by the coordinator between barrier rounds
	memCycle     uint64
	measureStart uint64 // memCycle when the measurement window opened
}

// skipWheel handles: one per machine-level next-event source.
const (
	skipSrcCtrl = iota
	skipSrcFSB
	numSkipSrcs
)

// minWindowCycles is the shortest span tryWindow batches into a TickWindow
// call. Below this a window saves no barrier rounds over per-cycle ticking
// (a 1-cycle window is one round either way), so short spans stay on the
// plain path and windows only open where they amortize.
const minWindowCycles = 4

// TrySkip passes controller/FSB hints straight into Wheel.Schedule, which
// treats NoDeadline as "unschedule"; the sentinels must therefore agree
// (compile error here if they ever drift).
var _ = [1]struct{}{}[memctrl.NoEvent-eventq.NoDeadline]

// NewSystem builds the machine for one benchmark profile and mechanism.
func NewSystem(cfg Config, prof workload.Profile, factory memctrl.Factory) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	gens := make([]workload.Generator, maxInt(1, cfg.Cores))
	for i := range gens {
		coreProf := prof
		if i > 0 {
			// Same benchmark, decorrelated stream per core.
			coreProf.Seed = prof.Seed + uint64(i)*0x9E37
		}
		g, err := workload.New(coreProf)
		if err != nil {
			return nil, err
		}
		gens[i] = g
	}
	// Warm-start dirtiness tracks the workload's store share, so the
	// steady-state writeback rate matches what a long run would reach.
	if cfg.L2.WarmStart {
		cfg.L2.WarmDirtyPercent = int(prof.StoreFraction * 100)
	}
	return newSystem(cfg, gens, factory)
}

// NewSystemWithGenerators builds the machine over caller-supplied
// instruction generators (e.g. parsed trace files), one per core. Use this
// to run recorded program traces instead of the synthetic profiles.
func NewSystemWithGenerators(cfg Config, gens []workload.Generator, factory memctrl.Factory) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if want := maxInt(1, cfg.Cores); len(gens) != want {
		return nil, fmt.Errorf("sim: %d generators for %d cores", len(gens), want)
	}
	return newSystem(cfg, gens, factory)
}

// newSystem wires the machine once generators are resolved.
func newSystem(cfg Config, gens []workload.Generator, factory memctrl.Factory) (*System, error) {
	ctrl, err := memctrl.New(cfg.Mem, factory)
	if err != nil {
		return nil, err
	}
	fsb, err := bus.New(cfg.FSB, ctrl)
	if err != nil {
		return nil, err
	}
	l2, err := cache.New(cfg.L2, fsb)
	if err != nil {
		return nil, err
	}
	sys := &System{Cfg: cfg, L2: l2, FSB: fsb, Ctrl: ctrl,
		skipWheel: eventq.NewWheel(numSkipSrcs)}
	for _, gen := range gens {
		l1d, err := cache.New(cfg.L1D, l2.AsBackend())
		if err != nil {
			return nil, err
		}
		cpuCore, err := cpu.New(cfg.CPU, gen, l1d)
		if err != nil {
			return nil, err
		}
		sys.CPUs = append(sys.CPUs, cpuCore)
		sys.L1Ds = append(sys.L1Ds, l1d)
	}
	sys.CPU = sys.CPUs[0]
	sys.L1D = sys.L1Ds[0]
	sys.SetWorkers(cfg.Workers)
	return sys, nil
}

// SetWorkers attaches (n >= 2) or detaches (n <= 1) the parallel channel
// worker pool. Safe to call between any two memory cycles — including at
// skip-window boundaries mid-run — without perturbing results; the
// metamorphic equivalence test flips it mid-measurement and still demands
// byte-identical output.
func (s *System) SetWorkers(n int) { s.Ctrl.SetWorkers(n) }

// Workers returns the effective parallel worker count (1 when serial).
func (s *System) Workers() int { return s.Ctrl.Workers() }

// Close releases the parallel worker pool, if any. The system stays usable
// afterwards on the serial path (and SetWorkers can re-arm it). Run,
// RunGenerator and RunSystem close the system when they return.
func (s *System) Close() { s.Ctrl.SetWorkers(0) }

// StepMemCycle advances the machine one memory cycle. When every CPU-clock
// component reports (via its NextEventCycle bound) that all R subcycles of
// this memory cycle are inert — pure clock/stall accounting — the R-step
// Tick loop collapses into one SkipCycles(R) per component. This is a
// memory-cycle-local skip: unlike TrySkip it applies even while the memory
// system is busy, which is exactly where FSB-bound phases spend their time.
func (s *System) StepMemCycle() {
	s.memCycle++
	s.Ctrl.Tick(s.memCycle)
	s.FSB.Tick(s.memCycle)
	r := uint64(s.Cfg.CPUCyclesPerMemCycle)
	if !s.DisableSkip && s.cpuDomainInertFor(r) {
		s.L2.SkipCycles(r)
		for c := range s.CPUs {
			s.L1Ds[c].SkipCycles(r)
			s.CPUs[c].SkipCycles(r)
		}
		return
	}
	for i := 0; i < s.Cfg.CPUCyclesPerMemCycle; i++ {
		s.L2.Tick()
		for c := range s.CPUs {
			s.L1Ds[c].Tick()
			s.CPUs[c].Tick()
		}
	}
}

// cpuDomainInertFor reports whether every CPU-clock component's next n
// Ticks are provably equivalent to SkipCycles(n).
func (s *System) cpuDomainInertFor(n uint64) bool {
	if !s.L2.InertFor(n) {
		return false
	}
	for c := range s.CPUs {
		if !s.L1Ds[c].InertFor(n) || !s.CPUs[c].InertFor(n) {
			return false
		}
	}
	return true
}

// FastForward advances one memory cycle like StepMemCycle, then — when the
// whole machine is provably stalled waiting on the memory system — jumps
// the clock to just before the next cycle at which any component can act.
// Machine state evolution is bit-identical to stepping every cycle: a skip
// happens only when every skipped Tick would have been a no-op apart from
// cycle/stall counters, which are applied in bulk.
//
// Callers that open a measurement window mid-run (ResetStats) or stop at a
// retirement target must not let a skip straddle the boundary cycle — the
// bulk-accounted stall cycles would land on the wrong side of the window.
// Drive StepMemCycle and TrySkip separately there, as runSystem does.
func (s *System) FastForward() {
	s.StepMemCycle()
	s.TrySkip()
}

// TrySkip jumps the clock over cycles on which provably nothing can happen
// and returns how many memory cycles were skipped (0 when any component is
// active or the next event is imminent).
func (s *System) TrySkip() uint64 {
	if s.DisableSkip {
		return 0
	}
	// Every CPU-domain component must be provably idle until external
	// input arrives; otherwise step normally.
	if !s.L2.SkipEligible() {
		return 0
	}
	for c := range s.CPUs {
		if !s.L1Ds[c].SkipEligible() || !s.CPUs[c].SkipEligible() {
			return 0
		}
	}
	// Memory-domain components bound the next state transition. Each
	// source's bound lands in the wheel (NoEvent == eventq.NoDeadline
	// unschedules it) and one peek yields the machine-wide minimum.
	if s.skipWheel.NeedRebase(s.memCycle) {
		s.skipWheel.Rebase(s.memCycle)
	}
	s.skipWheel.Schedule(skipSrcCtrl, s.Ctrl.NextEventCycle(s.memCycle))
	s.skipWheel.Schedule(skipSrcFSB, s.FSB.NextEventCycle(s.memCycle))
	next, ok := s.skipWheel.PeekMin()
	if !ok || next <= s.memCycle+1 {
		return s.tryWindow()
	}
	// Land one cycle before the event so the event cycle itself is
	// stepped in full.
	k := next - 1 - s.memCycle
	s.Ctrl.AccountSkipped(k)
	s.FSB.AccountSkipped(k)
	n := k * uint64(s.Cfg.CPUCyclesPerMemCycle)
	s.L2.SkipCycles(n)
	for c := range s.CPUs {
		s.L1Ds[c].SkipCycles(n)
		s.CPUs[c].SkipCycles(n)
	}
	s.memCycle += k
	return k
}

// tryWindow is TrySkip's fallback when the memory controller itself is
// busy (so a pure skip is impossible) but the CPU domain is asleep and the
// FSB quiet: the controller ticks through a completion-free window
// [memCycle+1, B) in one TickWindow batch — one barrier crossing on the
// parallel path instead of one per cycle — while the FSB and CPU domain
// bulk-account the same cycles exactly as a pure skip would. B is bounded
// by the controller's window guarantee (no completion can fire before it)
// and the FSB's own next-event cycle (no response delivery or submission
// before it), so no cross-domain interaction is jumped: the cycle B itself
// is stepped in full by the next StepMemCycle.
//
//burstmem:hotpath
func (s *System) tryWindow() uint64 {
	from := s.memCycle + 1
	to := s.Ctrl.WindowBound(from)
	if fsbNext := s.FSB.NextEventCycle(s.memCycle); fsbNext < to {
		to = fsbNext
	}
	if to < from+minWindowCycles {
		// A short window amortizes nothing: a 1-cycle TickWindow costs
		// exactly one barrier round, the same as a plain Tick. Let the
		// normal per-cycle path handle it.
		return 0
	}
	s.Ctrl.TickWindow(from, to)
	k := to - from
	s.FSB.AccountSkipped(k)
	n := k * uint64(s.Cfg.CPUCyclesPerMemCycle)
	s.L2.SkipCycles(n)
	for c := range s.CPUs {
		s.L1Ds[c].SkipCycles(n)
		s.CPUs[c].SkipCycles(n)
	}
	s.memCycle = to - 1
	return k
}

// MinRetired returns the lowest lifetime retirement count across cores
// (the run target for CMP simulations, so every core completes its share).
func (s *System) MinRetired() uint64 {
	min := s.CPUs[0].Retired()
	for _, c := range s.CPUs[1:] {
		if r := c.Retired(); r < min {
			min = r
		}
	}
	return min
}

// MemCycle returns the current memory cycle.
func (s *System) MemCycle() uint64 { return s.memCycle }

// AttachTracer attaches an observability tracer to the memory system (see
// internal/trace). Attach before running; tracing observes only and leaves
// simulation results bit-identical.
func (s *System) AttachTracer(tr *trace.Tracer) { s.Ctrl.SetTracer(tr) }

// Run executes one simulation to the instruction target and collects the
// result.
func Run(cfg Config, prof workload.Profile, factory memctrl.Factory) (Result, error) {
	sys, err := NewSystem(cfg, prof, factory)
	if err != nil {
		return Result{}, err
	}
	return runSystem(cfg, sys, prof.Name)
}

// RunSystem drives a caller-assembled machine (e.g. one with a tracer
// attached) through warmup and the measurement window.
func RunSystem(cfg Config, sys *System, name string) (Result, error) {
	return runSystem(cfg, sys, name)
}

// runSystem drives an assembled machine through warmup and the measurement
// window, releasing any parallel worker pool when it returns.
func runSystem(cfg Config, sys *System, name string) (Result, error) {
	defer sys.Close()
	maxCycles := cfg.MaxMemCycles
	if maxCycles == 0 {
		cores := uint64(1)
		if cfg.Cores > 1 {
			cores = uint64(cfg.Cores)
		}
		maxCycles = (cfg.WarmupInstructions+cfg.Instructions)*40*cores + 1_000_000
	}
	// The measurement window is anchored where warmup actually ended
	// (retirement may overshoot the warmup target by up to one dispatch
	// group), so the window always covers >= Instructions retirements.
	target := cfg.WarmupInstructions + cfg.Instructions
	warmed := cfg.WarmupInstructions == 0
	for sys.MinRetired() < target {
		if sys.memCycle >= maxCycles {
			return Result{}, fmt.Errorf("sim: %s/%s exceeded %d memory cycles with %d/%d instructions retired",
				sys.Ctrl.MechanismName(), name, maxCycles, sys.MinRetired(), target)
		}
		if !warmed && sys.MinRetired() >= cfg.WarmupInstructions {
			sys.ResetStats()
			target = sys.MinRetired() + cfg.Instructions
			warmed = true
		}
		sys.StepMemCycle()
		// Skip idle stretches, but never across a window boundary: the
		// cycle that crosses the warmup threshold must ResetStats before
		// any bulk stall accounting, and the cycle that reaches the
		// target must end the run exactly there.
		if r := sys.MinRetired(); r < target && (warmed || r < cfg.WarmupInstructions) {
			sys.TrySkip()
		}
	}
	return sys.Collect(name), nil
}

// ResetStats opens the measurement window: all statistics reset while
// architectural and timing state (cache contents, queues, bank states)
// carry over.
func (s *System) ResetStats() {
	s.measureStart = s.memCycle
	s.Ctrl.ResetStats()
	s.FSB.ResetStats()
	s.L2.ResetStats()
	for c := range s.CPUs {
		s.L1Ds[c].ResetStats()
		s.CPUs[c].ResetStats()
	}
}

// memClockHz is the DDR2-800 command clock.
const memClockHz = 400e6

// Collect snapshots the current measurements.
func (s *System) Collect(benchmark string) Result {
	ctrl := s.Ctrl
	hit, empty, conflict := ctrl.RowOutcomeRates()
	data, addr := ctrl.BusUtilization()
	var totalEnergy, totalPower, accesses float64
	for i := 0; i < ctrl.Channels(); i++ {
		ch := ctrl.Channel(i)
		rep, perr := ch.PowerReport(dram.DefaultPowerParams(), ctrl.Stats.Cycles, memClockHz)
		if perr == nil {
			totalEnergy += rep.TotalEnergyNJ
			totalPower += rep.AveragePowerW
			accesses += float64(ch.Stats.Reads + ch.Stats.Writes)
		}
	}
	var energyPerAccess float64
	if accesses > 0 {
		energyPerAccess = totalEnergy / accesses
	}
	var retired uint64
	for _, c := range s.CPUs {
		retired += c.Stats.Retired
	}
	res := Result{
		Mechanism:    ctrl.MechanismName(),
		Benchmark:    benchmark,
		Cores:        len(s.CPUs),
		Instructions: retired,
		CPUCycles:    s.CPU.Cycles(),
		MemCycles:    s.memCycle - s.measureStart,
		IPC:          float64(retired) / float64(maxU64(1, s.CPU.Stats.Cycles)),

		ReadLatency:    ctrl.Stats.ReadLatency.Mean(),
		WriteLatency:   ctrl.Stats.WriteLatency.Mean(),
		ReadLatencyP50: ctrl.Stats.ReadLatencyHist.Percentile(0.50),
		ReadLatencyP95: ctrl.Stats.ReadLatencyHist.Percentile(0.95),
		ReadLatencyP99: ctrl.Stats.ReadLatencyHist.Percentile(0.99),

		RowHit:      hit,
		RowEmpty:    empty,
		RowConflict: conflict,

		DataBusUtil: data,
		AddrBusUtil: addr,

		WriteSaturation: ctrl.Stats.WriteSaturationRate(),
		ForwardedReads:  ctrl.Stats.ForwardedReads,
		MemReads:        ctrl.Stats.AcceptedReads,
		MemWrites:       ctrl.Stats.AcceptedWrites,

		// bytes/memcycle * 400e6 cycles/s / 1e9 = GB/s
		BandwidthGBps: ctrl.EffectiveBandwidth() * 0.4,

		EnergyPerAccessNJ: energyPerAccess,
		AvgMemPowerW:      totalPower,

		OutstandingReads:  ctrl.Stats.OutstandingReads,
		OutstandingWrites: ctrl.Stats.OutstandingWrites,

		CPUStats: s.CPU.Stats,
		L1DStats: s.L1D.Stats,
		L2Stats:  s.L2.Stats,
		FSBStats: s.FSB.Stats,
	}
	return res
}

// RunGenerator executes a simulation over a caller-supplied generator
// (e.g. a parsed trace), single- or multi-core (one generator per core).
func RunGenerator(cfg Config, name string, gens []workload.Generator, factory memctrl.Factory) (Result, error) {
	sys, err := NewSystemWithGenerators(cfg, gens, factory)
	if err != nil {
		return Result{}, err
	}
	return runSystem(cfg, sys, name)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// MechanismNames lists the mechanisms of paper Table 4 in its order.
// "Burst_TH" uses the paper's best static threshold of 52.
func MechanismNames() []string {
	return []string{"BkInOrder", "RowHit", "Intel", "Intel_RP", "Burst", "Burst_RP", "Burst_WP", "Burst_TH"}
}

// BestThreshold is the paper's experimentally determined optimum (of a
// 64-entry write queue).
const BestThreshold = 52

// MechanismByName resolves a Table 4 mechanism name to its factory.
// "Burst_TH" takes the paper's default threshold 52; "Burst_TH<n>" selects
// threshold n.
func MechanismByName(name string) (memctrl.Factory, error) {
	switch name {
	case "BkInOrder":
		return sched.BkInOrder(), nil
	case "InOrder":
		return sched.InOrder(), nil
	case "RowHit":
		return sched.RowHit(), nil
	case "Intel":
		return sched.Intel(), nil
	case "Intel_RP":
		return sched.IntelRP(), nil
	case "Burst":
		return core.Burst(), nil
	case "Burst_RP":
		return core.BurstRP(), nil
	case "Burst_WP":
		return core.BurstWP(), nil
	case "Burst_Naive":
		return core.BurstNaive(), nil
	case "Burst_DYN":
		return core.BurstDynTH(), nil
	case "Burst_SZ":
		return core.BurstSized(), nil
	case "Burst_TH":
		return core.BurstTH(BestThreshold), nil
	}
	if rest, ok := strings.CutPrefix(name, "Burst_TH"); ok {
		th, err := strconv.Atoi(rest)
		if err != nil || th < 0 {
			return nil, fmt.Errorf("sim: bad burst threshold in %q", name)
		}
		return core.BurstTH(th), nil
	}
	return nil, fmt.Errorf("sim: unknown mechanism %q (known: %v)", name, MechanismNames())
}
