package sim

import (
	"testing"

	"burstmem/internal/workload"
)

// quickConfig keeps integration tests fast.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.WarmupInstructions = 20_000
	cfg.Instructions = 40_000
	return cfg
}

func runQuick(t *testing.T, bench, mech string) Result {
	t.Helper()
	prof, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	factory, err := MechanismByName(mech)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(quickConfig(), prof, factory)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Instructions = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero instructions accepted")
	}
	bad = DefaultConfig()
	bad.CPUCyclesPerMemCycle = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero clock ratio accepted")
	}
}

func TestMechanismByName(t *testing.T) {
	for _, name := range MechanismNames() {
		if _, err := MechanismByName(name); err != nil {
			t.Errorf("MechanismByName(%q): %v", name, err)
		}
	}
	if _, err := MechanismByName("InOrder"); err != nil {
		t.Errorf("InOrder: %v", err)
	}
	if _, err := MechanismByName("Burst_TH17"); err != nil {
		t.Errorf("parameterized threshold: %v", err)
	}
	if _, err := MechanismByName("Burst_THx"); err == nil {
		t.Error("bad threshold accepted")
	}
	if _, err := MechanismByName("FRFCFS"); err == nil {
		t.Error("unknown mechanism accepted")
	}
}

// TestEndToEndRun: a full-system simulation completes and produces
// internally consistent measurements.
func TestEndToEndRun(t *testing.T) {
	res := runQuick(t, "gcc", "Burst_TH")
	if res.Instructions < 40_000 {
		t.Fatalf("measured window retired %d instructions, want >= 40k", res.Instructions)
	}
	if res.IPC <= 0 || res.IPC > 8 {
		t.Fatalf("IPC %v out of range", res.IPC)
	}
	if res.MemReads == 0 || res.MemWrites == 0 {
		t.Fatalf("no memory traffic: %d reads, %d writes", res.MemReads, res.MemWrites)
	}
	if res.ReadLatency <= 0 {
		t.Fatal("zero read latency")
	}
	if s := res.RowHit + res.RowEmpty + res.RowConflict; s < 0.99 || s > 1.01 {
		t.Fatalf("row outcome rates sum to %v", s)
	}
	if res.DataBusUtil <= 0 || res.DataBusUtil > 1 {
		t.Fatalf("data bus utilization %v", res.DataBusUtil)
	}
	if res.CPUCycles != res.MemCycles*10 {
		t.Fatalf("clock domains inconsistent: %d CPU vs %d mem cycles", res.CPUCycles, res.MemCycles)
	}
	if res.Mechanism != "Burst_TH52" || res.Benchmark != "gcc" {
		t.Fatalf("labels: %s/%s", res.Mechanism, res.Benchmark)
	}
}

// TestDeterminism: identical runs produce identical results.
func TestDeterminism(t *testing.T) {
	a := runQuick(t, "swim", "Burst_TH")
	b := runQuick(t, "swim", "Burst_TH")
	if a.CPUCycles != b.CPUCycles || a.MemReads != b.MemReads || a.ReadLatency != b.ReadLatency {
		t.Fatalf("nondeterministic: %+v vs %+v", a.CPUCycles, b.CPUCycles)
	}
}

// TestBurstBeatsInOrder: the headline result at smoke scale — burst
// scheduling with the threshold beats the in-order baseline on a
// memory-intensive benchmark, via higher row hits and bus utilization.
func TestBurstBeatsInOrder(t *testing.T) {
	base := runQuick(t, "swim", "BkInOrder")
	burst := runQuick(t, "swim", "Burst_TH")
	if burst.CPUCycles >= base.CPUCycles {
		t.Fatalf("Burst_TH (%d cycles) did not beat BkInOrder (%d cycles)",
			burst.CPUCycles, base.CPUCycles)
	}
	if burst.RowHit <= base.RowHit {
		t.Errorf("row hit rate did not improve: %.3f vs %.3f", burst.RowHit, base.RowHit)
	}
	if burst.DataBusUtil <= base.DataBusUtil {
		t.Errorf("data bus utilization did not improve: %.3f vs %.3f",
			burst.DataBusUtil, base.DataBusUtil)
	}
}

// TestReadPreemptionLowersReadLatency on a latency-bound benchmark.
func TestReadPreemptionLowersReadLatency(t *testing.T) {
	plain := runQuick(t, "mcf", "Burst")
	rp := runQuick(t, "mcf", "Burst_RP")
	if rp.ReadLatency >= plain.ReadLatency {
		t.Fatalf("read preemption did not reduce read latency: %.1f vs %.1f",
			rp.ReadLatency, plain.ReadLatency)
	}
	if rp.WriteLatency <= plain.WriteLatency {
		t.Errorf("read preemption should lengthen write latency: %.1f vs %.1f",
			rp.WriteLatency, plain.WriteLatency)
	}
}

// TestPiggybackingControlsSaturation: on the write-heavy streaming
// benchmark, Burst_RP saturates the write queue far more than Burst_WP
// (paper Section 5.1).
func TestPiggybackingControlsSaturation(t *testing.T) {
	rp := runQuick(t, "swim", "Burst_RP")
	wp := runQuick(t, "swim", "Burst_WP")
	if rp.WriteSaturation <= wp.WriteSaturation {
		t.Fatalf("saturation: RP %.3f should exceed WP %.3f",
			rp.WriteSaturation, wp.WriteSaturation)
	}
	if wp.RowHit <= rp.RowHit {
		t.Errorf("WP row hits %.3f should exceed RP %.3f (write row locality)",
			wp.RowHit, rp.RowHit)
	}
}

// TestInOrderIsWorstCase: the serial Figure 1(a) scheduler is slower than
// the pipelined baseline.
func TestInOrderIsWorstCase(t *testing.T) {
	serial := runQuick(t, "swim", "InOrder")
	pipelined := runQuick(t, "swim", "BkInOrder")
	if serial.CPUCycles <= pipelined.CPUCycles {
		t.Fatalf("serial in-order (%d) should be slower than pipelined (%d)",
			serial.CPUCycles, pipelined.CPUCycles)
	}
}

// TestStepSystem: the steppable API advances and collects.
func TestStepSystem(t *testing.T) {
	prof, _ := workload.ByName("gzip")
	factory, _ := MechanismByName("Burst")
	sys, err := NewSystem(quickConfig(), prof, factory)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		sys.StepMemCycle()
	}
	if sys.MemCycle() != 1000 {
		t.Fatalf("mem cycle %d", sys.MemCycle())
	}
	res := sys.Collect("gzip")
	if res.MemCycles != 1000 || res.CPUCycles != 10_000 {
		t.Fatalf("collected %d/%d cycles", res.MemCycles, res.CPUCycles)
	}
}

// TestWarmupReducesColdStart: with warmup, the measured window no longer
// sees the cold-cache ramp (fewer reads per instruction than a cold run).
func TestWarmupReducesColdStart(t *testing.T) {
	prof, _ := workload.ByName("gzip")
	factory, _ := MechanismByName("Burst")
	cold := quickConfig()
	cold.WarmupInstructions = 0
	coldRes, err := Run(cold, prof, factory)
	if err != nil {
		t.Fatal(err)
	}
	warmRes := runQuick(t, "gzip", "Burst")
	coldRate := float64(coldRes.MemReads) / float64(coldRes.Instructions)
	warmRate := float64(warmRes.MemReads) / float64(warmRes.Instructions+20_000)
	if warmRate >= coldRate*1.5 {
		t.Fatalf("warm read rate %.4f not below cold %.4f", warmRate, coldRate)
	}
}

// TestAllMechanismsAllProfilesSmoke runs every mechanism on a subset of
// profiles at tiny scale: everything must complete without error.
func TestAllMechanismsAllProfilesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix smoke test skipped in -short mode")
	}
	cfg := DefaultConfig()
	cfg.WarmupInstructions = 5_000
	cfg.Instructions = 10_000
	for _, bench := range []string{"swim", "mcf", "gcc", "lucas"} {
		prof, err := workload.ByName(bench)
		if err != nil {
			t.Fatal(err)
		}
		for _, mech := range append(MechanismNames(), "InOrder") {
			factory, err := MechanismByName(mech)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Run(cfg, prof, factory); err != nil {
				t.Errorf("%s/%s: %v", bench, mech, err)
			}
		}
	}
}

// TestCMPMultiCore: a 2-core system runs both cores to the target and
// aggregates retirement; memory pressure rises vs a single core.
func TestCMPMultiCore(t *testing.T) {
	cfg := quickConfig()
	cfg.Cores = 2
	prof, _ := workload.ByName("gcc")
	factory, _ := MechanismByName("Burst_TH")
	res, err := Run(cfg, prof, factory)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cores != 2 {
		t.Fatalf("cores = %d", res.Cores)
	}
	if res.Instructions < 2*cfg.Instructions {
		t.Fatalf("aggregate instructions %d, want >= %d", res.Instructions, 2*cfg.Instructions)
	}
	single := quickConfig()
	sres, err := Run(single, prof, factory)
	if err != nil {
		t.Fatal(err)
	}
	perCore1 := float64(sres.Instructions) / float64(sres.CPUCycles)
	perCore2 := float64(res.Instructions) / 2 / float64(res.CPUCycles)
	if perCore2 >= perCore1 {
		t.Fatalf("per-core throughput did not drop under sharing: %.3f vs %.3f", perCore2, perCore1)
	}
	if res.MemReads <= sres.MemReads {
		t.Fatalf("2-core memory traffic %d not above 1-core %d", res.MemReads, sres.MemReads)
	}
}

// TestCMPValidation rejects absurd core counts.
func TestCMPValidation(t *testing.T) {
	cfg := quickConfig()
	cfg.Cores = 100
	if err := cfg.Validate(); err == nil {
		t.Fatal("100 cores accepted")
	}
}
