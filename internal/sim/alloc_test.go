package sim

import (
	"testing"

	"burstmem/internal/addrmap"
	"burstmem/internal/memctrl"
	"burstmem/internal/workload"
	"burstmem/internal/xrand"
)

// TestSchedulerSteadyStateAllocs asserts that the controller + mechanism
// hot path — Submit, bank arbitration, transaction scheduling, completion
// — performs zero heap allocations once warm. The access pool, intrusive
// per-bank lists and reused candidate scratch exist precisely for this;
// a regression here silently costs ~1M allocs/s of simulation throughput.
func TestSchedulerSteadyStateAllocs(t *testing.T) {
	for _, mech := range []string{"BkInOrder", "RowHit", "Intel", "Intel_RP", "Burst", "Burst_TH"} {
		mech := mech
		t.Run(mech, func(t *testing.T) {
			factory, err := MechanismByName(mech)
			if err != nil {
				t.Fatal(err)
			}
			cfg := memctrl.DefaultConfig()
			cfg.Geometry = addrmap.Geometry{
				Channels: 1, Ranks: 2, Banks: 8, Rows: 64, ColumnLines: 32, LineBytes: 64,
			}
			ctrl, err := memctrl.New(cfg, factory)
			if err != nil {
				t.Fatal(err)
			}
			rng := xrand.New(11)
			cyc := uint64(0)
			ctrl.Tick(cyc)
			// Closed-loop driver over a bounded footprint so every map,
			// slice and pool reaches its steady-state capacity during
			// warmup. OnComplete is nil: callback plumbing is the memory
			// hierarchy's concern, not the scheduler path under test.
			step := func(n int) {
				for i := 0; i < n; i++ {
					cyc++
					ctrl.Tick(cyc)
					if rng.Intn(2) == 0 {
						kind := memctrl.KindRead
						if rng.Intn(4) == 0 {
							kind = memctrl.KindWrite
						}
						if ctrl.CanAccept(kind) {
							addr := uint64(rng.Intn(1 << 14))
							ctrl.Submit(kind, addr*64, nil)
						}
					}
				}
			}
			step(50000) // warmup: grow pools, heaps, scratch to high-water marks
			allocs := testing.AllocsPerRun(10, func() { step(2000) })
			if allocs != 0 {
				t.Fatalf("%s steady-state scheduler path allocates: %.1f allocs per 2000 cycles", mech, allocs)
			}
		})
	}
}

// TestSystemSteadyStateAllocs pins the full machine — CPU front end, L1D,
// L2, FSB, controller, mechanism, skip engine and window batching — at
// zero steady-state heap allocations. Every pool, ring and heap is
// prewarmed to its admission-bounded high-water mark at construction, so
// after a short warm run nothing on the simulation loop allocates. swim
// exercises the streaming/MLP path, mcf the pointer-chase path whose row
// spread stresses the burst-group pool.
func TestSystemSteadyStateAllocs(t *testing.T) {
	for _, bench := range []string{"swim", "mcf"} {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			prof, err := workload.ByName(bench)
			if err != nil {
				t.Fatal(err)
			}
			factory, err := MechanismByName("Burst_TH")
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.WarmupInstructions = 10_000
			cfg.Instructions = 10_000
			sys, err := NewSystem(cfg, prof, factory)
			if err != nil {
				t.Fatal(err)
			}
			for sys.MinRetired() < cfg.WarmupInstructions {
				sys.FastForward()
			}
			allocs := testing.AllocsPerRun(10, func() {
				for i := 0; i < 2000; i++ {
					sys.FastForward()
				}
			})
			if allocs != 0 {
				t.Fatalf("%s steady-state simulation loop allocates: %.1f allocs per 2000 steps", bench, allocs)
			}
		})
	}
}
