package burstmem

import (
	"bytes"
	"testing"

	"burstmem/internal/workload"
)

// workloadNew builds a generator from a profile (test helper bridging the
// internal constructor).
func workloadNew(p Profile) (Generator, error) { return workload.New(p) }

// TestPublicSurface exercises the re-exported API end to end, the way the
// examples and a downstream user would.
func TestPublicSurface(t *testing.T) {
	if len(BenchmarkNames()) != 16 {
		t.Fatalf("want the paper's 16 benchmarks, got %d", len(BenchmarkNames()))
	}
	if len(Benchmarks()) != 16 {
		t.Fatal("Benchmarks() disagrees with BenchmarkNames()")
	}
	for _, name := range MechanismNames() {
		if _, err := MechanismByName(name); err != nil {
			t.Errorf("MechanismByName(%q): %v", name, err)
		}
	}
	if BestThreshold != 52 {
		t.Fatalf("BestThreshold = %d, paper says 52", BestThreshold)
	}
	tm := DDR2Timing()
	if tm.TCL != 5 || tm.TRCD != 5 || tm.TRP != 5 {
		t.Fatalf("DDR2 timing not 5-5-5: %+v", tm)
	}

	cfg := DefaultConfig()
	cfg.WarmupInstructions = 5_000
	cfg.Instructions = 10_000
	prof, err := BenchmarkByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	mech, err := MechanismByName("Burst_TH")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, prof, mech)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Fatalf("IPC %v", res.IPC)
	}
}

// TestCustomMechanismViaPublicAPI builds a minimal mechanism with the
// exported types only (mirrors examples/custom_mechanism).
func TestCustomMechanismViaPublicAPI(t *testing.T) {
	newFifo := MechanismFactory(func(h *Host) Mechanism {
		m := &fifoMech{host: h}
		m.engine = NewEngine(h, func(a *Access, now uint64) {
			if a.Kind == KindRead {
				m.r--
			} else {
				m.w--
			}
		})
		return m
	})
	ctrl, err := NewController(DefaultControllerConfig(), newFifo)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Tick(0)
	completed := 0
	for i := 0; i < 8; i++ {
		if _, ok := ctrl.Submit(KindRead, uint64(i)*4096, func(a *Access, now uint64) {
			completed++
		}); !ok {
			t.Fatal("submit rejected")
		}
	}
	for cyc := uint64(1); !ctrl.Drained() && cyc < 100000; cyc++ {
		ctrl.Tick(cyc)
	}
	if completed != 8 {
		t.Fatalf("completed %d of 8", completed)
	}
}

// fifoMech is the custom mechanism used by TestCustomMechanismViaPublicAPI.
type fifoMech struct {
	host   *Host
	engine *Engine
	q      []*Access
	r, w   int
}

func (m *fifoMech) Name() string         { return "fifo" }
func (m *fifoMech) ForwardsWrites() bool { return true }
func (m *fifoMech) Pending() (int, int)  { return m.r, m.w }

func (m *fifoMech) Enqueue(a *Access, now uint64) {
	m.q = append(m.q, a)
	if a.Kind == KindRead {
		m.r++
	} else {
		m.w++
	}
}

func (m *fifoMech) Tick(now uint64) {
	if len(m.q) > 0 {
		a := m.q[0]
		if m.engine.Ongoing(int(a.Loc.Rank), int(a.Loc.Bank)) == nil {
			m.engine.SetOngoing(int(a.Loc.Rank), int(a.Loc.Bank), a)
			m.q = m.q[1:]
		}
	}
	if !m.host.Channel().CommandSlotFree() {
		return
	}
	for _, c := range m.engine.Candidates() {
		if c.Unblocked {
			m.engine.Issue(c, now)
			return
		}
	}
}

// TestTraceRoundTripViaPublicAPI records a trace and replays it through a
// full simulation.
func TestTraceRoundTripViaPublicAPI(t *testing.T) {
	prof, err := BenchmarkByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workloadNew(prof)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, gen, 50_000); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTrace("recorded", &buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.WarmupInstructions = 5_000
	cfg.Instructions = 10_000
	mech, err := MechanismByName("Burst_TH")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunGenerator(cfg, "recorded", []Generator{parsed}, mech)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.Benchmark != "recorded" {
		t.Fatalf("trace run result: %+v", res.IPC)
	}
}

// TestPowerInResult: simulations report DRAM energy.
func TestPowerInResult(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupInstructions = 5_000
	cfg.Instructions = 10_000
	prof, _ := BenchmarkByName("swim")
	mech, _ := MechanismByName("Burst_TH")
	res, err := Run(cfg, prof, mech)
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyPerAccessNJ <= 0 || res.AvgMemPowerW <= 0 {
		t.Fatalf("power results missing: %v nJ, %v W", res.EnergyPerAccessNJ, res.AvgMemPowerW)
	}
}
