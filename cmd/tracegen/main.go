// Command tracegen inspects the synthetic workload generators that stand
// in for SPEC CPU2000 traces: it can dump raw ops, summarize a profile's
// instruction mix, or characterize the post-cache main-memory access
// stream (row locality, bank spread, read/write mix) a profile produces.
//
// Usage:
//
//	tracegen -bench swim -summary
//	tracegen -bench mcf -dump -n 50
//	tracegen -bench lucas -memstream -n 200000
package main

import (
	"flag"
	"fmt"
	"os"

	"burstmem/internal/addrmap"
	"burstmem/internal/stats"
	"burstmem/internal/workload"
)

func main() {
	var (
		bench     = flag.String("bench", "swim", "benchmark profile")
		n         = flag.Int("n", 100_000, "ops to generate")
		dump      = flag.Bool("dump", false, "dump raw ops")
		memstream = flag.Bool("memstream", false, "characterize the DRAM-coordinate stream of memory ops")
		summary   = flag.Bool("summary", true, "print the instruction-mix summary")
		list      = flag.Bool("list", false, "list profiles and exit")
		record    = flag.String("record", "", "write n ops of the profile to a trace file (see workload trace format)")
	)
	flag.Parse()

	if *list {
		for _, p := range workload.Profiles() {
			fmt.Printf("%-8s mem %.2f stores %.2f stride %dB streams %d ws %dMB burstiness %.2f\n",
				p.Name, p.MemFraction, p.StoreFraction, strideOf(p), p.Streams,
				p.WorkingSet>>20, p.Burstiness)
		}
		return
	}

	prof, err := workload.ByName(*bench)
	fatal(err)
	gen, err := workload.New(prof)
	fatal(err)

	if *record != "" {
		f, err := os.Create(*record)
		fatal(err)
		fatal(workload.WriteTrace(f, gen, *n))
		fatal(f.Close())
		fmt.Printf("recorded %d ops of %s to %s\n", *n, prof.Name, *record)
		return
	}

	if *dump {
		for i := 0; i < *n; i++ {
			op := gen.Next()
			switch op.Type {
			case workload.OpNonMem:
				fmt.Printf("%7d  nonmem\n", i)
			default:
				dep := ""
				if op.DepOnPrevLoad {
					dep = "  (dep on prev load)"
				}
				fmt.Printf("%7d  %-5s %#012x%s\n", i, op.Type, op.Addr, dep)
			}
		}
		return
	}

	if *memstream {
		characterize(gen, *n)
		return
	}

	if *summary {
		summarize(prof, gen, *n)
	}
}

func strideOf(p workload.Profile) int {
	if p.StrideBytes == 0 {
		return 8
	}
	return p.StrideBytes
}

func summarize(prof workload.Profile, gen workload.Generator, n int) {
	var loads, stores, nonmem, deps int
	lines := map[uint64]struct{}{}
	for i := 0; i < n; i++ {
		op := gen.Next()
		switch op.Type {
		case workload.OpNonMem:
			nonmem++
		case workload.OpLoad:
			loads++
			lines[op.Addr>>6] = struct{}{}
		case workload.OpStore:
			stores++
			lines[op.Addr>>6] = struct{}{}
		}
		if op.DepOnPrevLoad {
			deps++
		}
	}
	mem := loads + stores
	fmt.Printf("profile %s over %d ops\n", prof.Name, n)
	t := stats.NewTable("metric", "value")
	t.AddRow("memory ops", fmt.Sprintf("%d (%.1f%%)", mem, pct(mem, n)))
	t.AddRow("loads", fmt.Sprintf("%d (%.1f%% of mem)", loads, pct(loads, mem)))
	t.AddRow("stores", fmt.Sprintf("%d (%.1f%% of mem)", stores, pct(stores, mem)))
	t.AddRow("dependent loads", fmt.Sprintf("%d (%.1f%% of loads)", deps, pct(deps, loads)))
	t.AddRow("distinct lines", fmt.Sprintf("%d", len(lines)))
	t.AddRow("ops per distinct line", fmt.Sprintf("%.2f", float64(mem)/float64(maxInt(1, len(lines)))))
	fmt.Print(t.String())
}

// characterize decodes the memory ops through the baseline address mapping
// and reports the row locality and bank spread the memory controller will
// see (ignoring cache filtering).
func characterize(gen workload.Generator, n int) {
	mapper := addrmap.NewPageInterleave(addrmap.DefaultGeometry())
	type bankKey struct{ ch, rank, bank uint8 }
	lastRow := map[bankKey]uint32{}
	var sameRow, total int
	bankCount := map[bankKey]int{}
	for i := 0; i < n; i++ {
		op := gen.Next()
		if op.Type == workload.OpNonMem {
			continue
		}
		loc := mapper.Decode(op.Addr)
		k := bankKey{loc.Channel, loc.Rank, loc.Bank}
		if row, seen := lastRow[k]; seen && row == loc.Row {
			sameRow++
		}
		lastRow[k] = loc.Row
		bankCount[k]++
		total++
	}
	fmt.Printf("raw stream row locality (same row as previous access to the bank): %.1f%%\n",
		pct(sameRow, total))
	fmt.Printf("banks touched: %d of %d\n", len(bankCount), addrmap.DefaultGeometry().TotalBanks())
	min, max := -1, 0
	for _, c := range bankCount {
		if min < 0 || c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	fmt.Printf("accesses per bank: min %d, max %d (spread %.2fx)\n", min, max,
		float64(max)/float64(maxInt(1, min)))
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
