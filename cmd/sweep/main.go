// Command sweep explores the burst scheduling design space: the static
// threshold that switches between read preemption and write piggybacking
// (paper Section 5.4, Figures 11 and 12).
//
// For each threshold in the sweep it simulates the chosen benchmarks and
// prints execution time (normalized to plain Burst), read/write latency,
// outstanding-access statistics and write-queue saturation, then reports
// the threshold with the lowest execution time.
//
// Usage:
//
//	sweep -bench swim                 # Figure 11 style, one benchmark
//	sweep -all -n 300000              # Figure 12 style, all benchmarks
//	sweep -thresholds 0,16,32,48,64
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"burstmem/internal/profiling"
	"burstmem/internal/sim"
	"burstmem/internal/stats"
	"burstmem/internal/workload"
)

func main() {
	var (
		benchFlag  = flag.String("bench", "swim", "comma-separated benchmarks")
		all        = flag.Bool("all", false, "sweep across all 16 benchmarks")
		n          = flag.Uint64("n", 200_000, "measured instructions per run")
		warmup     = flag.Uint64("warmup", 200_000, "warmup instructions per run")
		parallel   = flag.Int("parallel", runtime.NumCPU(), "concurrent simulations")
		thresholds = flag.String("thresholds", "0,8,16,24,32,40,48,52,56,60,64",
			"comma-separated thresholds (0 = Burst_WP, write-queue size = Burst_RP)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	defer profiling.Start(*cpuprofile, *memprofile)()

	benches := strings.Split(*benchFlag, ",")
	if *all {
		benches = workload.Names()
	}
	var ths []int
	for _, s := range strings.Split(*thresholds, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 0 {
			fatal(fmt.Errorf("bad threshold %q", s))
		}
		ths = append(ths, v)
	}

	cfg := sim.DefaultConfig()
	cfg.Instructions = *n
	cfg.WarmupInstructions = *warmup

	mechs := []string{"Burst"}
	for _, th := range ths {
		mechs = append(mechs, fmt.Sprintf("Burst_TH%d", th))
	}

	type key struct{ bench, mech string }
	results := make(map[key]sim.Result)
	var mu sync.Mutex
	sem := make(chan struct{}, maxInt(1, *parallel))
	var wg sync.WaitGroup
	for _, b := range benches {
		for _, m := range mechs {
			wg.Add(1)
			go func(b, m string) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				prof, err := workload.ByName(b)
				fatal(err)
				factory, err := sim.MechanismByName(m)
				fatal(err)
				res, err := sim.Run(cfg, prof, factory)
				fatal(err)
				mu.Lock()
				results[key{b, m}] = res
				mu.Unlock()
			}(b, m)
		}
	}
	wg.Wait()

	agg := func(m string) (exec, rd, wr, outR, outW, sat float64) {
		for _, b := range benches {
			r := results[key{b, m}]
			exec += float64(r.CPUCycles)
			rd += r.ReadLatency
			wr += r.WriteLatency
			outR += r.OutstandingReads.Mean()
			outW += r.OutstandingWrites.Mean()
			sat += r.WriteSaturation
		}
		nb := float64(len(benches))
		return exec / nb, rd / nb, wr / nb, outR / nb, outW / nb, sat / nb
	}

	baseExec, _, _, _, _, _ := agg("Burst")
	fmt.Printf("threshold sweep over %v (%d instructions each, write queue size %d)\n\n",
		benches, *n, cfg.Mem.MaxWrites)
	t := stats.NewTable("threshold", "exec/Burst", "read lat", "write lat",
		"avg out reads", "avg out writes", "wq sat %")
	best, bestExec := -1, 0.0
	for _, th := range ths {
		m := fmt.Sprintf("Burst_TH%d", th)
		exec, rd, wr, outR, outW, sat := agg(m)
		if best < 0 || exec < bestExec {
			best, bestExec = th, exec
		}
		t.AddRow(fmt.Sprintf("%d", th), fmt.Sprintf("%.3f", exec/baseExec),
			rd, wr, outR, outW, fmt.Sprintf("%.1f", sat*100))
	}
	fmt.Print(t.String())
	fmt.Printf("\nbest threshold: %d (paper: 52 of a 64-entry write queue)\n", best)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		// Deferred cleanups do not run across os.Exit; finalize any
		// in-flight profile so -cpuprofile is not truncated by a fatal
		// error.
		profiling.Stop()
		os.Exit(1)
	}
}
