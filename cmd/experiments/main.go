// Command experiments regenerates every table and figure of the paper's
// evaluation (Sections 4-5) on the synthetic-workload reproduction:
//
//	table1 — possible SDRAM access latencies (Table 1)
//	fig1   — in-order vs out-of-order scheduling example (Figure 1)
//	fig7   — average read/write latency per mechanism (Figure 7)
//	fig8   — outstanding-access distribution for swim (Figure 8)
//	fig9   — row hit/conflict/empty rates and bus utilization (Figure 9)
//	fig10  — normalized execution time per benchmark (Figure 10)
//	fig11  — outstanding accesses under thresholds, swim (Figure 11)
//	fig12  — latency and execution time vs threshold (Figure 12)
//
// Each experiment prints a text table whose rows correspond to the paper's
// series. Absolute values differ from the paper (different substrate), but
// the orderings and rough factors should match; EXPERIMENTS.md records both.
//
// Usage:
//
//	experiments -exp all -n 300000
//	experiments -exp fig10 -n 1000000 -parallel 8
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"burstmem/internal/addrmap"
	"burstmem/internal/dram"
	"burstmem/internal/memctrl"
	"burstmem/internal/profiling"
	"burstmem/internal/sim"
	"burstmem/internal/stats"
	"burstmem/internal/workload"
)

var (
	flagExp      = flag.String("exp", "all", "experiment: all, table1, fig1, fig7, fig8, fig9, fig10, fig11, fig12")
	flagN        = flag.Uint64("n", 300_000, "measured instructions per run")
	flagWarmup   = flag.Uint64("warmup", 300_000, "warmup instructions per run")
	flagParallel = flag.Int("parallel", runtime.NumCPU(), "concurrent simulations")
	flagWorkers  = flag.Int("workers", 0, "parallel workers per simulation (0 or 1 = serial; results are bit-identical at any setting). Multi-channel configs shard by channel with the count clamped to the channel count; single-channel configs with >= 2 ranks shard scheduler prewarming by rank instead")
	flagBench    = flag.String("bench", "", "comma-separated benchmark subset (default: all 16)")
	flagCSV      = flag.String("csv", "", "directory to also write each experiment's tables as CSV")
	flagCPUProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
	flagMemProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
)

func main() {
	flag.Parse()
	defer profiling.Start(*flagCPUProf, *flagMemProf)()
	benches := workload.Names()
	if *flagBench != "" {
		benches = strings.Split(*flagBench, ",")
	}
	h := &harness{benches: benches}

	exps := map[string]func(){
		"table1":  h.table1,
		"fig1":    h.fig1,
		"fig7":    h.fig7,
		"fig8":    h.fig8,
		"fig9":    h.fig9,
		"fig10":   h.fig10,
		"fig11":   h.fig11,
		"fig12":   h.fig12,
		"scaling": h.scaling,
		"cmp":     h.cmp,
		"dynth":   h.dynth,
		"power":   h.power,
	}
	if *flagExp == "all" {
		for _, name := range []string{"table1", "fig1", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "scaling", "cmp", "dynth", "power"} {
			exps[name]()
		}
		return
	}
	run, ok := exps[*flagExp]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q", *flagExp))
	}
	run()
}

// harness caches simulation results so experiments sharing runs (fig7, 9,
// 10) simulate each (benchmark, mechanism) pair once.
type harness struct {
	benches []string

	mu    sync.Mutex
	cache map[string]sim.Result
}

func simConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Instructions = *flagN
	cfg.WarmupInstructions = *flagWarmup
	cfg.Workers = *flagWorkers
	return cfg
}

type job struct{ bench, mech string }

// matrix runs all (bench, mech) pairs, memoized, in parallel.
func (h *harness) matrix(benches, mechs []string) map[job]sim.Result {
	h.mu.Lock()
	if h.cache == nil {
		h.cache = make(map[string]sim.Result)
	}
	var todo []job
	for _, b := range benches {
		for _, m := range mechs {
			if _, done := h.cache[b+"/"+m]; !done {
				todo = append(todo, job{b, m})
			}
		}
	}
	h.mu.Unlock()

	sem := make(chan struct{}, max(1, *flagParallel))
	var wg sync.WaitGroup
	for _, j := range todo {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res := h.runOne(j.bench, j.mech)
			h.mu.Lock()
			h.cache[j.bench+"/"+j.mech] = res
			h.mu.Unlock()
		}(j)
	}
	wg.Wait()

	out := make(map[job]sim.Result)
	h.mu.Lock()
	for _, b := range benches {
		for _, m := range mechs {
			out[job{b, m}] = h.cache[b+"/"+m]
		}
	}
	h.mu.Unlock()
	return out
}

// parallelDo runs f(0..n-1) across a worker pool bounded by -parallel.
// Each job writes its own result slot, so callers aggregate and print in
// deterministic order regardless of completion order.
func parallelDo(n int, f func(i int)) {
	sem := make(chan struct{}, max(1, *flagParallel))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			f(i)
		}(i)
	}
	wg.Wait()
}

func (h *harness) runOne(bench, mech string) sim.Result {
	prof, err := workload.ByName(bench)
	fatal(err)
	factory, err := sim.MechanismByName(mech)
	fatal(err)
	res, err := sim.Run(simConfig(), prof, factory)
	fatal(err)
	return res
}

func header(title string) {
	fmt.Printf("\n======== %s ========\n\n", title)
}

// emit prints a table and, when -csv is set, writes it to
// <dir>/<name>.csv as well.
func emit(name string, t *stats.Table) {
	fmt.Print(t.String())
	if *flagCSV == "" {
		return
	}
	if err := os.MkdirAll(*flagCSV, 0o755); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(filepath.Join(*flagCSV, name+".csv"), []byte(t.CSV()), 0o644); err != nil {
		fatal(err)
	}
}

// table1 reproduces paper Table 1 from the DDR2-800 timing model.
func (h *harness) table1() {
	header("Table 1: possible SDRAM access latencies (memory cycles, idle busses)")
	tm := dram.DDR2_800()
	t := stats.NewTable("controller policy", "row hit", "row empty", "row conflict")
	t.AddRow("Open Page", tm.TCL, tm.TRCD+tm.TCL, tm.TRP+tm.TRCD+tm.TCL)
	t.AddRow("Close Page Autoprecharge", "N/A", tm.TRCD+tm.TCL, "N/A")
	emit("table1", t)
}

// fig1 reproduces the Figure 1 scheduling example: four reads on the
// 2-2-2/BL4 device, in order without interleaving vs burst scheduling.
func (h *harness) fig1() {
	header("Figure 1: memory access scheduling example (2-2-2 device, BL4)")
	inOrder := fig1InOrder()
	outOfOrder := fig1Burst()
	t := stats.NewTable("schedule", "completion (cycles)")
	t.AddRow("(a) in order, no interleaving", inOrder)
	t.AddRow("(b) burst scheduling (out of order)", outOfOrder)
	emit("fig1", t)
	fmt.Printf("\npaper: 28 vs 16 cycles; access3 reordered before access2 and turned into a row hit\n")
}

// fig1InOrder replays Figure 1(a): strictly sequential accesses.
func fig1InOrder() uint64 {
	ch, err := dram.NewChannel(dram.Figure1Timing(), 1, 2)
	fatal(err)
	seq := []dram.Target{
		{Bank: 0, Row: 0}, {Bank: 1, Row: 0}, {Bank: 0, Row: 1}, {Bank: 0, Row: 0},
	}
	var cyc, end uint64
	ch.Tick(0)
	for _, tg := range seq {
		for cyc < end {
			cyc++
			ch.Tick(cyc)
		}
		for {
			cmd := ch.NextCommand(tg, true)
			for !ch.CanIssue(cmd, tg) {
				cyc++
				ch.Tick(cyc)
			}
			res := ch.Issue(cmd, tg, false)
			cyc++
			ch.Tick(cyc)
			if cmd == dram.CmdRead {
				end = res.DataEnd
				break
			}
		}
	}
	return end
}

// fig1Burst runs the same four accesses through the burst scheduling
// mechanism.
func fig1Burst() uint64 {
	cfg := memctrl.DefaultConfig()
	cfg.Timing = dram.Figure1Timing()
	cfg.Geometry = addrmap.Geometry{Channels: 1, Ranks: 1, Banks: 2, Rows: 16, ColumnLines: 16, LineBytes: 64}
	cfg.PoolSize = 16
	cfg.MaxWrites = 8
	factory, err := sim.MechanismByName("Burst")
	fatal(err)
	ctrl, err := memctrl.New(cfg, factory)
	fatal(err)
	var end uint64
	done := func(a *memctrl.Access, now uint64) {
		if now > end {
			end = now
		}
	}
	ctrl.Tick(0)
	for _, loc := range []addrmap.Loc{
		{Bank: 0, Row: 0}, {Bank: 1, Row: 0}, {Bank: 0, Row: 1}, {Bank: 0, Row: 0},
	} {
		if _, ok := ctrl.Submit(memctrl.KindRead, ctrl.Mapper().Encode(loc), done); !ok {
			fatal(fmt.Errorf("fig1: submit rejected"))
		}
	}
	for cyc := uint64(1); !ctrl.Drained(); cyc++ {
		ctrl.Tick(cyc)
	}
	return end
}

// fig7 prints average read and write latency per mechanism.
func (h *harness) fig7() {
	header("Figure 7: access latency in memory cycles (average over benchmarks)")
	mechs := sim.MechanismNames()
	results := h.matrix(h.benches, mechs)
	t := stats.NewTable("mechanism", "read latency", "write latency", "read vs BkInOrder")
	var baseRead float64
	for _, m := range mechs {
		var rd, wr float64
		for _, b := range h.benches {
			r := results[job{b, m}]
			rd += r.ReadLatency
			wr += r.WriteLatency
		}
		rd /= float64(len(h.benches))
		wr /= float64(len(h.benches))
		if m == "BkInOrder" {
			baseRead = rd
		}
		t.AddRow(m, rd, wr, fmt.Sprintf("%+.0f%%", (rd/baseRead-1)*100))
	}
	emit("fig7", t)
	fmt.Printf("\npaper: out-of-order mechanisms reduce read latency 26-47%%; RowHit has the lowest\n")
	fmt.Printf("write latency; read preemption lengthens write latency; piggybacking shortens it\n")
}

// fig8 prints the outstanding-access distribution for swim.
func (h *harness) fig8() {
	header("Figure 8: distribution of outstanding accesses, benchmark swim")
	mechs := []string{"BkInOrder", "RowHit", "Intel", "Burst", "Burst_RP", "Burst_WP", "Burst_TH"}
	results := h.matrix([]string{"swim"}, mechs)
	t := stats.NewTable("mechanism", "mean reads", "peak reads", "mean writes", "peak writes", "write sat %")
	for _, m := range mechs {
		r := results[job{"swim", m}]
		pr, _ := r.OutstandingReads.Peak()
		pw, _ := r.OutstandingWrites.Peak()
		t.AddRow(m, r.OutstandingReads.Mean(), pr, r.OutstandingWrites.Mean(), pw,
			fmt.Sprintf("%.1f", r.WriteSaturation*100))
	}
	emit("fig8", t)
	fmt.Println("\noutstanding writes, fraction of time per occupancy bucket (0,8,16,...,64):")
	bt := stats.NewTable(append([]string{"mechanism"}, bucketLabels(64, 8)...)...)
	for _, m := range mechs {
		r := results[job{"swim", m}]
		bt.AddRow(bucketRow(m, r.OutstandingWrites, 64, 8)...)
	}
	emit("fig8_writes", bt)
	fmt.Printf("\npaper: Intel and Burst saturate the write queue 24%% / 46%% of time; Burst_RP 70%%,\n")
	fmt.Printf("Burst_WP 2%%, Burst_TH 9%%. Read preemption lowers outstanding reads.\n")
}

func bucketLabels(maxV, step int) []string {
	var out []string
	for v := 0; v <= maxV; v += step {
		out = append(out, fmt.Sprintf("%d", v))
	}
	return out
}

// bucketRow coarsens a histogram into step-wide buckets for display.
func bucketRow(name string, hist *stats.Histogram, maxV, step int) []any {
	out := []any{name}
	for v := 0; v <= maxV; v += step {
		var f float64
		for i := v; i < v+step && i <= maxV; i++ {
			f += hist.Fraction(i)
		}
		out = append(out, fmt.Sprintf("%.3f", f))
	}
	return out
}

// fig9 prints row outcome rates and bus utilization per mechanism.
func (h *harness) fig9() {
	header("Figure 9: row hit/conflict/empty rates and SDRAM bus utilization (averages)")
	mechs := sim.MechanismNames()
	results := h.matrix(h.benches, mechs)
	t := stats.NewTable("mechanism", "row hit", "row empty", "row conflict", "data bus", "addr bus", "GB/s")
	for _, m := range mechs {
		var hit, empty, conf, data, addr, bw float64
		for _, b := range h.benches {
			r := results[job{b, m}]
			hit += r.RowHit
			empty += r.RowEmpty
			conf += r.RowConflict
			data += r.DataBusUtil
			addr += r.AddrBusUtil
			bw += r.BandwidthGBps
		}
		n := float64(len(h.benches))
		t.AddRow(m, hit/n, empty/n, conf/n, data/n, addr/n, bw/n)
	}
	emit("fig9", t)
	fmt.Printf("\npaper: RowHit/Burst_WP/Burst_TH have the highest row hit rates; read preemption\n")
	fmt.Printf("raises row empties; Burst_TH has the highest data bus utilization (2.0 -> 2.7 GB/s\n")
	fmt.Printf("effective bandwidth over BkInOrder, +35%%); address bus varies little\n")
}

// fig10 prints execution time per benchmark, normalized to BkInOrder.
func (h *harness) fig10() {
	header("Figure 10: execution time normalized to BkInOrder")
	mechs := []string{"RowHit", "Intel", "Intel_RP", "Burst", "Burst_RP", "Burst_WP", "Burst_TH"}
	results := h.matrix(h.benches, append([]string{"BkInOrder"}, mechs...))
	t := stats.NewTable(append([]string{"benchmark"}, mechs...)...)
	sums := make([]float64, len(mechs))
	for _, b := range h.benches {
		base := float64(results[job{b, "BkInOrder"}].CPUCycles)
		row := []any{b}
		for i, m := range mechs {
			norm := float64(results[job{b, m}].CPUCycles) / base
			sums[i] += norm
			row = append(row, fmt.Sprintf("%.3f", norm))
		}
		t.AddRow(row...)
	}
	avg := []any{"average"}
	for _, s := range sums {
		avg = append(avg, fmt.Sprintf("%.3f", s/float64(len(h.benches))))
	}
	t.AddRow(avg...)
	emit("fig10", t)
	fmt.Printf("\npaper averages: RowHit 0.83, Intel 0.88, Intel_RP 0.85, Burst 0.86, Burst_RP 0.83,\n")
	fmt.Printf("Burst_WP 0.81, Burst_TH 0.79 (21%% reduction; best of all mechanisms)\n")
}

// thresholds used by the Figure 11/12 sweeps. 0 is Burst_WP and 64 is
// Burst_RP (paper Section 5.4).
var sweepThresholds = []int{0, 8, 16, 24, 32, 40, 48, 52, 56, 60, 64}

func thName(th int) string { return fmt.Sprintf("Burst_TH%d", th) }

// fig11 prints outstanding-access distributions for swim across thresholds.
func (h *harness) fig11() {
	header("Figure 11: outstanding accesses for swim under various thresholds")
	var mechs []string
	for _, th := range sweepThresholds {
		mechs = append(mechs, thName(th))
	}
	results := h.matrix([]string{"swim"}, mechs)
	t := stats.NewTable("threshold", "mean reads", "mean writes", "peak writes", "write sat %")
	for _, th := range sweepThresholds {
		r := results[job{"swim", thName(th)}]
		pw, _ := r.OutstandingWrites.Peak()
		t.AddRow(fmt.Sprintf("TH%d", th), r.OutstandingReads.Mean(), r.OutstandingWrites.Mean(),
			pw, fmt.Sprintf("%.1f", r.WriteSaturation*100))
	}
	emit("fig11", t)
	fmt.Printf("\npaper: the peak outstanding-write occupancy grows with the threshold; saturation\n")
	fmt.Printf("stays below 7%% for thresholds < 48, reaches 14%% at 56 and 70%% at 64 (Burst_RP)\n")
}

// fig12 prints read/write latency and execution time versus threshold,
// averaged over all benchmarks, normalized to plain Burst.
func (h *harness) fig12() {
	header("Figure 12: access latency and execution time under various thresholds")
	mechs := []string{"Burst"}
	for _, th := range sweepThresholds {
		mechs = append(mechs, thName(th))
	}
	results := h.matrix(h.benches, mechs)
	agg := func(m string) (exec, rd, wr float64) {
		for _, b := range h.benches {
			r := results[job{b, m}]
			exec += float64(r.CPUCycles)
			rd += r.ReadLatency
			wr += r.WriteLatency
		}
		n := float64(len(h.benches))
		return exec / n, rd / n, wr / n
	}
	baseExec, _, _ := agg("Burst")
	t := stats.NewTable("threshold", "exec time (norm to Burst)", "read latency", "write latency")
	for _, th := range sweepThresholds {
		exec, rd, wr := agg(thName(th))
		t.AddRow(fmt.Sprintf("TH%d", th), fmt.Sprintf("%.3f", exec/baseExec), rd, wr)
	}
	emit("fig12", t)
	best, bestExec := 0, 1e18
	for _, th := range sweepThresholds {
		exec, _, _ := agg(thName(th))
		if exec < bestExec {
			best, bestExec = th, exec
		}
	}
	fmt.Printf("\nbest threshold on this substrate: %d (paper: 52 of 64)\n", best)
	fmt.Printf("paper: read latency falls then rises (write-queue saturation stalls) as the\n")
	fmt.Printf("threshold grows; write latency rises monotonically; an interior threshold wins\n")
}

// power reports the DRAM energy impact of each mechanism: row-hit
// clustering saves activate energy, so energy per access tracks the row
// hit rate (a dimension the paper does not evaluate, added here via the
// Micron-style power model in internal/dram).
func (h *harness) power() {
	header("Extension: DRAM energy per mechanism (Micron-style power model)")
	mechs := sim.MechanismNames()
	results := h.matrix(h.benches, mechs)
	t := stats.NewTable("mechanism", "energy/access (nJ)", "avg DRAM power (W)", "row hit")
	for _, m := range mechs {
		var e, p, hit float64
		for _, b := range h.benches {
			r := results[job{b, m}]
			e += r.EnergyPerAccessNJ
			p += r.AvgMemPowerW
			hit += r.RowHit
		}
		n := float64(len(h.benches))
		t.AddRow(m, e/n, p/n, hit/n)
	}
	emit("power", t)
	fmt.Println()
	fmt.Println("row-hit-seeking mechanisms amortize activate energy over more column accesses")
}

// scaling checks the paper's Section 6 prediction: as device timing
// parameters grow in bus cycles across DRAM generations (DDR 2-2-2 ->
// DDR2 5-5-5 -> DDR3 8-8-8), the benefit of access reordering widens.
func (h *harness) scaling() {
	header("Section 6: scheduling benefit across DRAM generations")
	gens := []struct {
		name   string
		timing dram.Timing
	}{
		{"DDR-400 (2-2-2)", dram.DDR_400()},
		{"DDR2-800 (5-5-5)", dram.DDR2_800()},
		{"DDR3-1600 (8-8-8)", dram.DDR3_1600()},
	}
	benches := []string{"swim", "gcc", "mcf"}
	mechs := []string{"BkInOrder", "Burst_TH"}
	// Run the whole generation×benchmark×mechanism grid in parallel, one
	// slot per job, then aggregate in order.
	results := make([]sim.Result, len(gens)*len(benches)*len(mechs))
	parallelDo(len(results), func(i int) {
		g := gens[i/(len(benches)*len(mechs))]
		bench := benches[i/len(mechs)%len(benches)]
		mech := mechs[i%len(mechs)]
		prof, err := workload.ByName(bench)
		fatal(err)
		cfg := simConfig()
		cfg.Mem.Timing = g.timing
		factory, err := sim.MechanismByName(mech)
		fatal(err)
		res, err := sim.Run(cfg, prof, factory)
		fatal(err)
		results[i] = res
	})
	t := stats.NewTable("generation", "BkInOrder IPC", "Burst_TH IPC", "Burst_TH/BkInOrder exec")
	for gi, g := range gens {
		var baseCycles, burstCycles, baseIPC, burstIPC float64
		for bi := range benches {
			base := results[(gi*len(benches)+bi)*len(mechs)]
			burst := results[(gi*len(benches)+bi)*len(mechs)+1]
			baseCycles += float64(base.CPUCycles)
			baseIPC += base.IPC
			burstCycles += float64(burst.CPUCycles)
			burstIPC += burst.IPC
		}
		n := float64(len(benches))
		t.AddRow(g.name, baseIPC/n, burstIPC/n, fmt.Sprintf("%.3f", burstCycles/baseCycles))
	}
	emit("scaling", t)
	fmt.Printf("\npaper Section 6: timing parameters shrink ~17%% in ns while frequency grows 200%%\n")
	fmt.Printf("per generation, so latency in cycles grows and reordering gains widen\n")
}

// cmp checks the other Section 6 prediction: chip multiprocessors put more
// outstanding accesses in front of the controller, making reordering more
// valuable.
func (h *harness) cmp() {
	header("Section 6: scheduling benefit vs core count (CMP)")
	coreCounts := []int{1, 2, 4}
	mechs := []string{"BkInOrder", "Burst_TH"}
	results := make([]sim.Result, len(coreCounts)*len(mechs))
	parallelDo(len(results), func(i int) {
		cores := coreCounts[i/len(mechs)]
		mech := mechs[i%len(mechs)]
		prof, err := workload.ByName("gcc")
		fatal(err)
		cfg := simConfig()
		cfg.Cores = cores
		// Keep total simulated work roughly constant.
		cfg.Instructions = *flagN / uint64(cores)
		cfg.WarmupInstructions = *flagWarmup / uint64(cores)
		// A CMP scales its on-chip interconnect with cores; without
		// this the shared FSB saturates and hides the memory
		// controller entirely.
		cfg.FSB.DataCycles = maxInt(1, cfg.FSB.DataCycles/cores)
		cfg.FSB.QueueDepth *= cores
		factory, err := sim.MechanismByName(mech)
		fatal(err)
		res, err := sim.Run(cfg, prof, factory)
		fatal(err)
		results[i] = res
	})
	t := stats.NewTable("cores", "BkInOrder IPC", "Burst_TH IPC", "Burst_TH/BkInOrder exec", "mean out reads (Burst_TH)")
	for ci, cores := range coreCounts {
		base := results[ci*len(mechs)]
		burst := results[ci*len(mechs)+1]
		t.AddRow(fmt.Sprintf("%d", cores), base.IPC, burst.IPC,
			fmt.Sprintf("%.3f", float64(burst.CPUCycles)/float64(base.CPUCycles)),
			burst.OutstandingReads.Mean())
	}
	emit("cmp", t)
	fmt.Printf("\npaper Section 6 predicts more cores -> more outstanding accesses -> larger\n")
	fmt.Printf("reordering gains. Outstanding reads do scale with cores here, but once the\n")
	fmt.Printf("aggregate stream saturates the DRAM data bus the *relative* gain compresses:\n")
	fmt.Printf("reordering still adds effective bandwidth, while independent per-core streams\n")
	fmt.Printf("hand the in-order baseline free bank parallelism. See EXPERIMENTS.md.\n")
}

// dynth evaluates the paper's future-work dynamic threshold against the
// best static threshold.
func (h *harness) dynth() {
	header("Section 7 (future work): dynamic threshold vs static 52")
	results := h.matrix(h.benches, []string{"Burst_TH", "Burst_DYN"})
	t := stats.NewTable("benchmark", "Burst_TH52 cycles", "Burst_DYN cycles", "DYN/TH52")
	var sum float64
	for _, b := range h.benches {
		th := results[job{b, "Burst_TH"}]
		dyn := results[job{b, "Burst_DYN"}]
		ratio := float64(dyn.CPUCycles) / float64(th.CPUCycles)
		sum += ratio
		t.AddRow(b, th.CPUCycles, dyn.CPUCycles, fmt.Sprintf("%.3f", ratio))
	}
	t.AddRow("average", "", "", fmt.Sprintf("%.3f", sum/float64(len(h.benches))))
	emit("dynth", t)
	fmt.Printf("\npaper Section 7: a per-workload threshold should match or beat the single\n")
	fmt.Printf("static value tuned across all benchmarks (<1.0 means the adaptive wins)\n")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxInt(a, b int) int { return max(a, b) }

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		// Deferred cleanups do not run across os.Exit; finalize any
		// in-flight profile so -cpuprofile is not truncated by a fatal
		// error.
		profiling.Stop()
		os.Exit(1)
	}
}
