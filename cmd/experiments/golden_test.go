package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden experiment output")

// TestGoldenSmallSlice re-runs a small slice of the experiment suite and
// diffs the output byte-for-byte against a committed golden file, so
// bit-identity of the harness no longer depends on manually eyeballing
// experiments_output.txt. The slice covers the pure timing-model tables
// (table1, fig1) and a real simulation matrix (fig10 over two benchmarks),
// which exercises every mechanism end to end.
//
// Regenerate after an intentional model change with:
//
//	go test ./cmd/experiments -run TestGoldenSmallSlice -update
func TestGoldenSmallSlice(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation matrix is too slow for -short")
	}
	// The harness reads its parameters from the package-level flags; pin
	// them to the small deterministic slice regardless of defaults.
	oldN, oldWarmup, oldPar, oldCSV := *flagN, *flagWarmup, *flagParallel, *flagCSV
	defer func() {
		*flagN, *flagWarmup, *flagParallel, *flagCSV = oldN, oldWarmup, oldPar, oldCSV
	}()
	*flagN = 30_000
	*flagWarmup = 30_000
	*flagParallel = runtime.NumCPU()
	*flagCSV = ""

	h := &harness{benches: []string{"swim", "mcf"}}
	got := captureStdout(t, func() {
		h.table1()
		h.fig1()
		h.fig10()
	})

	golden := filepath.Join("testdata", "golden_small.txt")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w []byte
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if !bytes.Equal(g, w) {
			t.Fatalf("output diverges from %s at line %d:\n got: %q\nwant: %q\n(run with -update after an intentional model change)",
				golden, i+1, g, w)
		}
	}
	t.Fatalf("output differs from %s only in trailing bytes (%d vs %d)", golden, len(got), len(want))
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// everything it printed.
func captureStdout(t *testing.T, f func()) []byte {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		b, _ := io.ReadAll(r)
		done <- b
	}()
	defer func() {
		os.Stdout = old
	}()
	f()
	os.Stdout = old
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return <-done
}
