package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden file from current output")

// TestGoldenDirty pins the CLI contract on a tree with findings: one
// diagnostic per line, sorted by file then line then analyzer, paths
// relative to the working directory, exit status 1. The dram corpus
// package sits under a testdata/src/internal/dram path so the
// interprocedural analyzers treat it as simulation scope; helpers is the
// out-of-scope package its detflow finding crosses into (go list never
// descends into testdata, so each directory is passed explicitly).
func TestGoldenDirty(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"./testdata/src/dirty",
		"./testdata/src/helpers",
		"./testdata/src/internal/dram",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d on a dirty tree, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "issue(s)") {
		t.Errorf("stderr missing the issue count: %q", stderr.String())
	}

	goldenPath := filepath.Join("testdata", "golden.txt")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got, want := stdout.String(), string(golden); got != want {
		t.Errorf("output differs from %s (re-run with -update after intended changes)\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}

	// Structural assertions independent of the golden bytes, so a stale
	// -update cannot weaken the format contract.
	lines := strings.Split(strings.TrimSuffix(stdout.String(), "\n"), "\n")
	type pos struct {
		file string
		line int
	}
	var prev pos
	seen := map[string]bool{}
	for _, l := range lines {
		parts := strings.SplitN(l, ":", 5)
		if len(parts) != 5 {
			t.Fatalf("line %q is not file:line:col: analyzer: message", l)
		}
		if filepath.IsAbs(parts[0]) {
			t.Errorf("path %q not relativized", parts[0])
		}
		seen[strings.TrimSpace(parts[3])] = true
		cur := pos{parts[0], atoi(t, parts[1])}
		if prev.file != "" && (cur.file < prev.file || (cur.file == prev.file && cur.line < prev.line)) {
			t.Errorf("diagnostics out of order: %v after %v", cur, prev)
		}
		prev = cur
	}
	for _, a := range []string{
		"hotalloc", "nilcheck", "errflow", "idxrange", "lockcheck",
		"sharestate", "detflow", "goroutcheck", "leakcheck", "ctxflow",
		"chanflow",
	} {
		if !seen[a] {
			t.Errorf("no %s diagnostic in golden output (analyzers seen: %v)", a, seen)
		}
	}
}

// TestGoldenClean pins the other half of the contract: a clean tree
// produces no output and exit status 0.
func TestGoldenClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"./testdata/src/clean"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d on a clean tree, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean tree produced output: %s", stdout.String())
	}
}

// TestExitCodeLoadFailure: an unresolvable pattern is an operator error,
// distinct from findings.
func TestExitCodeLoadFailure(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"./no/such/dir"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code %d for a bad pattern, want 2 (stderr: %s)", code, stderr.String())
	}
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			t.Fatalf("non-numeric line field %q", s)
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// TestGoldenJSON pins the -json machine contract against the same dirty
// corpus: the array carries exactly the text-mode findings (same order,
// same positions, relativized paths) as {file, line, col, analyzer,
// message, chain} objects and nothing else — DisallowUnknownFields makes
// a silently added field a test failure, so the schema scripts parse
// cannot drift without showing up here. Chain must be populated on the
// interprocedural exit-past-defer finding and omitted elsewhere.
func TestGoldenJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-json",
		"./testdata/src/dirty",
		"./testdata/src/helpers",
		"./testdata/src/internal/dram",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d on a dirty tree, want 1 (stderr: %s)", code, stderr.String())
	}

	dec := json.NewDecoder(bytes.NewReader(stdout.Bytes()))
	dec.DisallowUnknownFields()
	var got []jsonDiag
	if err := dec.Decode(&got); err != nil {
		t.Fatalf("output is not a jsonDiag array: %v\n%s", err, stdout.String())
	}

	golden, err := os.ReadFile(filepath.Join("testdata", "golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(golden), "\n"), "\n")
	if len(got) != len(lines) {
		t.Fatalf("%d JSON findings, want %d (one per golden text line)", len(got), len(lines))
	}

	chains := 0
	for i, d := range got {
		if filepath.IsAbs(d.File) {
			t.Errorf("finding %d: path %q not relativized", i, d.File)
		}
		if d.Line <= 0 || d.Col <= 0 {
			t.Errorf("finding %d: non-positive position %d:%d", i, d.Line, d.Col)
		}
		rendered := fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		if rendered != lines[i] {
			t.Errorf("finding %d diverges from text mode:\n json: %s\n text: %s", i, rendered, lines[i])
		}
		if len(d.Chain) > 0 {
			chains++
			if d.Analyzer != "leakcheck" {
				t.Errorf("finding %d: unexpected chain on %s: %v", i, d.Analyzer, d.Chain)
			}
			if d.Chain[0] != "os.Exit" {
				t.Errorf("finding %d: chain should start at the exiting callee, got %v", i, d.Chain)
			}
		}
	}
	if chains == 0 {
		t.Error("no finding carried a chain; the exit-past-defer corpus case should")
	}
}
