package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden file from current output")

// TestGoldenDirty pins the CLI contract on a tree with findings: one
// diagnostic per line, sorted by file then line then analyzer, paths
// relative to the working directory, exit status 1. The dram corpus
// package sits under a testdata/src/internal/dram path so the
// interprocedural analyzers treat it as simulation scope; helpers is the
// out-of-scope package its detflow finding crosses into (go list never
// descends into testdata, so each directory is passed explicitly).
func TestGoldenDirty(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"./testdata/src/dirty",
		"./testdata/src/helpers",
		"./testdata/src/internal/dram",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d on a dirty tree, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "issue(s)") {
		t.Errorf("stderr missing the issue count: %q", stderr.String())
	}

	goldenPath := filepath.Join("testdata", "golden.txt")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got, want := stdout.String(), string(golden); got != want {
		t.Errorf("output differs from %s (re-run with -update after intended changes)\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}

	// Structural assertions independent of the golden bytes, so a stale
	// -update cannot weaken the format contract.
	lines := strings.Split(strings.TrimSuffix(stdout.String(), "\n"), "\n")
	type pos struct {
		file string
		line int
	}
	var prev pos
	seen := map[string]bool{}
	for _, l := range lines {
		parts := strings.SplitN(l, ":", 5)
		if len(parts) != 5 {
			t.Fatalf("line %q is not file:line:col: analyzer: message", l)
		}
		if filepath.IsAbs(parts[0]) {
			t.Errorf("path %q not relativized", parts[0])
		}
		seen[strings.TrimSpace(parts[3])] = true
		cur := pos{parts[0], atoi(t, parts[1])}
		if prev.file != "" && (cur.file < prev.file || (cur.file == prev.file && cur.line < prev.line)) {
			t.Errorf("diagnostics out of order: %v after %v", cur, prev)
		}
		prev = cur
	}
	for _, a := range []string{
		"hotalloc", "nilcheck", "errflow", "idxrange", "lockcheck",
		"sharestate", "detflow", "goroutcheck",
	} {
		if !seen[a] {
			t.Errorf("no %s diagnostic in golden output (analyzers seen: %v)", a, seen)
		}
	}
}

// TestGoldenClean pins the other half of the contract: a clean tree
// produces no output and exit status 0.
func TestGoldenClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"./testdata/src/clean"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d on a clean tree, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean tree produced output: %s", stdout.String())
	}
}

// TestExitCodeLoadFailure: an unresolvable pattern is an operator error,
// distinct from findings.
func TestExitCodeLoadFailure(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"./no/such/dir"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code %d for a bad pattern, want 2 (stderr: %s)", code, stderr.String())
	}
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			t.Fatalf("non-numeric line field %q", s)
		}
		n = n*10 + int(c-'0')
	}
	return n
}
