// Command burstlint is the repository's multichecker: it runs the custom
// correctness analyzers over the given package patterns and exits non-zero
// when any diagnostic survives.
//
// Usage:
//
//	go run ./cmd/burstlint ./...
//
// Analyzers (see each package's doc for the exact contract):
//
//	detlint      nondeterminism sources in simulation packages
//	hotalloc     heap allocations in //burstmem:hotpath functions
//	exhaustive   non-exhaustive switches over protocol enums
//	nilcheck     unguarded dereferences of possibly-nil *trace.Tracer values
//	errflow      error values dropped before reaching a check
//	idxrange     DRAM coordinates indexing mismatched-dimension containers
//	lockcheck    Lock without matching Unlock on some path to return
//	sharestate   hot-path-reachable state must carry ownership annotations
//	detflow      nondeterminism reached through out-of-scope callees
//	goroutcheck  loop capture, WaitGroup balance, unguarded shared writes
//	leakcheck    resources released on every path; no exit past a pending defer
//	ctxflow      contexts flow caller to callee; CancelFuncs always run
//	chanflow     channel send/recv/close protocol over the points-to solution
//
// nilcheck/errflow/idxrange/lockcheck run a worklist dataflow solver over
// per-function control flow graphs (internal/analysis/cfg,
// internal/analysis/dataflow); detlint/hotalloc/exhaustive are single-pass
// AST walks. The rest are the interprocedural tier: they run once over
// the whole loaded program on top of a CHA call graph
// (internal/analysis/callgraph), per-function effect summaries
// (internal/analysis/summary), and — for sharestate's ownership audit and
// chanflow — an Andersen points-to solution (internal/analysis/pointsto),
// each built once and shared through the program's result cache —
// `-timing` prints how long those shared builds took.
//
// Output is one diagnostic per line, `file:line:col: analyzer: message`,
// sorted by file, line, then analyzer name; paths are shown relative to
// the working directory when possible. `-json` emits the same findings as
// a JSON array of {file, line, col, analyzer, message, chain} objects —
// chain being the evidence trail (call path, alias chain) of
// interprocedural findings. Exit status is 1 when diagnostics survive, 2
// on load errors, 0 on a clean tree.
//
// Intentional exceptions are annotated in the source as
// `//lint:ignore <analyzer> <reason>` on (or directly above) the flagged
// line. scripts/ci.sh runs burstlint as a required stage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"burstmem/internal/analysis"
	"burstmem/internal/analysis/chanflow"
	"burstmem/internal/analysis/ctxflow"
	"burstmem/internal/analysis/detflow"
	"burstmem/internal/analysis/detlint"
	"burstmem/internal/analysis/errflow"
	"burstmem/internal/analysis/exhaustive"
	"burstmem/internal/analysis/goroutcheck"
	"burstmem/internal/analysis/hotalloc"
	"burstmem/internal/analysis/idxrange"
	"burstmem/internal/analysis/leakcheck"
	"burstmem/internal/analysis/lockcheck"
	"burstmem/internal/analysis/nilcheck"
	"burstmem/internal/analysis/sharestate"
)

// analyzers is the full suite, in registration order (output order is by
// position, not by analyzer).
var analyzers = []*analysis.Analyzer{
	detlint.Analyzer,
	hotalloc.Analyzer,
	exhaustive.Analyzer,
	nilcheck.Analyzer,
	errflow.Analyzer,
	idxrange.Analyzer,
	lockcheck.Analyzer,
	sharestate.Analyzer,
	detflow.Analyzer,
	goroutcheck.Analyzer,
	leakcheck.Analyzer,
	ctxflow.Analyzer,
	chanflow.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its process effects injected, so the golden test can
// assert on the exact output and exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("burstlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	timing := fs.Bool("timing", false, "print interprocedural build times (callgraph, summary, pointsto) to stderr")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array of {file, line, col, analyzer, message, chain} objects")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: burstlint [-timing] [-json] [packages]\n\nruns the burstmem analyzers (detlint, hotalloc, exhaustive, nilcheck,\nerrflow, idxrange, lockcheck, sharestate, detflow, goroutcheck,\nleakcheck, ctxflow, chanflow) over the package patterns (default ./...)\n")
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "burstlint:", err)
		return 2
	}
	prog := analysis.NewProgram(pkgs)
	diags := prog.Run(analyzers)
	if *timing {
		keys := make([]string, 0, len(prog.Timings))
		for k := range prog.Timings {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(stderr, "timing %s %dms\n", k, prog.Timings[k].Milliseconds())
		}
	}
	cwd, err := os.Getwd()
	if err != nil {
		cwd = "" // keep absolute paths rather than guess
	}
	if *jsonOut {
		if err := writeJSON(stdout, cwd, diags); err != nil {
			fmt.Fprintln(stderr, "burstlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, relativize(cwd, d.String()))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "burstlint: %d issue(s)\n", len(diags))
		return 1
	}
	return 0
}

// jsonDiag is the -json wire form of one finding. The field set is the
// machine contract scripts build on; the golden schema test pins it.
type jsonDiag struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Chain    []string `json:"chain,omitempty"`
}

// writeJSON renders the diagnostics as one indented JSON array (an empty
// run prints []), with file paths relativized like the text form.
func writeJSON(w io.Writer, cwd string, diags []analysis.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     relativize(cwd, d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Chain:    d.Chain,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// relativize rewrites a leading absolute file path to be relative to the
// working directory, keeping output stable across checkouts (and golden
// tests honest).
func relativize(cwd, diag string) string {
	if cwd == "" || !strings.HasPrefix(diag, cwd+string(filepath.Separator)) {
		return diag
	}
	return diag[len(cwd)+1:]
}
