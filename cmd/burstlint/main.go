// Command burstlint is the repository's multichecker: it runs the custom
// correctness analyzers over the given package patterns and exits non-zero
// when any diagnostic survives.
//
// Usage:
//
//	go run ./cmd/burstlint ./...
//
// Analyzers (see each package's doc for the exact contract):
//
//	detlint     nondeterminism sources in simulation packages
//	hotalloc    heap allocations in //burstmem:hotpath functions
//	exhaustive  non-exhaustive switches over protocol enums
//
// Intentional exceptions are annotated in the source as
// `//lint:ignore <analyzer> <reason>` on (or directly above) the flagged
// line. scripts/ci.sh runs burstlint as a required stage.
package main

import (
	"flag"
	"fmt"
	"os"

	"burstmem/internal/analysis"
	"burstmem/internal/analysis/detlint"
	"burstmem/internal/analysis/exhaustive"
	"burstmem/internal/analysis/hotalloc"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: burstlint [packages]\n\nruns the burstmem analyzers (detlint, hotalloc, exhaustive)\nover the package patterns (default ./...)\n")
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "burstlint:", err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, []*analysis.Analyzer{
		detlint.Analyzer,
		hotalloc.Analyzer,
		exhaustive.Analyzer,
	})
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "burstlint: %d issue(s)\n", len(diags))
		os.Exit(1)
	}
}
