// Command burstlint is the repository's multichecker: it runs the custom
// correctness analyzers over the given package patterns and exits non-zero
// when any diagnostic survives.
//
// Usage:
//
//	go run ./cmd/burstlint ./...
//
// Analyzers (see each package's doc for the exact contract):
//
//	detlint      nondeterminism sources in simulation packages
//	hotalloc     heap allocations in //burstmem:hotpath functions
//	exhaustive   non-exhaustive switches over protocol enums
//	nilcheck     unguarded dereferences of possibly-nil *trace.Tracer values
//	errflow      error values dropped before reaching a check
//	idxrange     DRAM coordinates indexing mismatched-dimension containers
//	lockcheck    Lock without matching Unlock on some path to return
//	sharestate   hot-path-reachable state must carry ownership annotations
//	detflow      nondeterminism reached through out-of-scope callees
//	goroutcheck  loop capture, WaitGroup balance, unguarded shared writes
//
// nilcheck/errflow/idxrange/lockcheck run a worklist dataflow solver over
// per-function control flow graphs (internal/analysis/cfg,
// internal/analysis/dataflow); detlint/hotalloc/exhaustive are single-pass
// AST walks. The last three are the interprocedural tier: they run once
// over the whole loaded program on top of a CHA call graph
// (internal/analysis/callgraph) and per-function effect summaries
// (internal/analysis/summary), built once and shared through the program's
// result cache — `-timing` prints how long that shared build took.
//
// Output is one diagnostic per line, `file:line:col: analyzer: message`,
// sorted by file, line, then analyzer name; paths are shown relative to
// the working directory when possible. Exit status is 1 when diagnostics
// survive, 2 on load errors, 0 on a clean tree.
//
// Intentional exceptions are annotated in the source as
// `//lint:ignore <analyzer> <reason>` on (or directly above) the flagged
// line. scripts/ci.sh runs burstlint as a required stage.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"burstmem/internal/analysis"
	"burstmem/internal/analysis/detflow"
	"burstmem/internal/analysis/detlint"
	"burstmem/internal/analysis/errflow"
	"burstmem/internal/analysis/exhaustive"
	"burstmem/internal/analysis/goroutcheck"
	"burstmem/internal/analysis/hotalloc"
	"burstmem/internal/analysis/idxrange"
	"burstmem/internal/analysis/lockcheck"
	"burstmem/internal/analysis/nilcheck"
	"burstmem/internal/analysis/sharestate"
)

// analyzers is the full suite, in registration order (output order is by
// position, not by analyzer).
var analyzers = []*analysis.Analyzer{
	detlint.Analyzer,
	hotalloc.Analyzer,
	exhaustive.Analyzer,
	nilcheck.Analyzer,
	errflow.Analyzer,
	idxrange.Analyzer,
	lockcheck.Analyzer,
	sharestate.Analyzer,
	detflow.Analyzer,
	goroutcheck.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its process effects injected, so the golden test can
// assert on the exact output and exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("burstlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	timing := fs.Bool("timing", false, "print interprocedural build times (callgraph, summary) to stderr")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: burstlint [-timing] [packages]\n\nruns the burstmem analyzers (detlint, hotalloc, exhaustive, nilcheck,\nerrflow, idxrange, lockcheck, sharestate, detflow, goroutcheck) over the\npackage patterns (default ./...)\n")
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "burstlint:", err)
		return 2
	}
	prog := analysis.NewProgram(pkgs)
	diags := prog.Run(analyzers)
	if *timing {
		keys := make([]string, 0, len(prog.Timings))
		for k := range prog.Timings {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(stderr, "timing %s %dms\n", k, prog.Timings[k].Milliseconds())
		}
	}
	cwd, err := os.Getwd()
	if err != nil {
		cwd = "" // keep absolute paths rather than guess
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, relativize(cwd, d.String()))
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "burstlint: %d issue(s)\n", len(diags))
		return 1
	}
	return 0
}

// relativize rewrites a leading absolute file path to be relative to the
// working directory, keeping output stable across checkouts (and golden
// tests honest).
func relativize(cwd, diag string) string {
	if cwd == "" || !strings.HasPrefix(diag, cwd+string(filepath.Separator)) {
		return diag
	}
	return diag[len(cwd)+1:]
}
