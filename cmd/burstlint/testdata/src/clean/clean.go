// Package clean is burstlint golden-test data: the same shapes as the
// dirty package, written correctly, so the CLI exits 0 with no output.
package clean

import (
	"os"
	"sync"

	"burstmem/internal/addrmap"
	"burstmem/internal/trace"
)

type state struct {
	mu    sync.Mutex
	banks []uint32
	n     int
}

func checkedClose(f *os.File) error {
	return f.Close()
}

func guardedTracer() int {
	tr := trace.New(16, 0)
	if tr == nil {
		return 0
	}
	return tr.Len()
}

func matchedDimension(s *state, loc addrmap.Loc) uint32 {
	return s.banks[loc.Bank]
}

func pairedLock(s *state) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
