// Package dram is burstlint golden-test data for the interprocedural
// tier: its import path ends in internal/dram, putting it in both the
// sharestate ownership scope and the detflow simulation scope.
package dram

import "burstmem/cmd/burstlint/testdata/src/helpers"

// channel carries hot-path state with no ownership annotation
// (sharestate).
type channel struct {
	cycle uint64
}

// pool claims to be shared but gives no arbitration story (sharestate
// validation).
//
//burstmem:shared
type pool struct {
	free int
}

// Tick is the hot-path entry the ownership gate walks.
//
//burstmem:hotpath
func Tick(c *channel, now uint64) {
	c.cycle = now
}

// boundary crosses into the out-of-scope helpers package, which reaches
// the wall clock (detflow).
func boundary() int64 {
	return helpers.Stamp()
}
