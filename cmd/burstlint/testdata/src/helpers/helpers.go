// Package helpers is burstlint golden-test data: an out-of-scope utility
// package hiding nondeterminism behind an ordinary-looking call, for the
// detflow boundary finding in the dram corpus package.
package helpers

import "time"

// Stamp reads the wall clock.
func Stamp() int64 { return time.Now().UnixNano() }
