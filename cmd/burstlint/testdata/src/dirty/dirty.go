// Package dirty is burstlint golden-test data: one known finding for
// each dataflow analyzer plus a hot-path allocation, spread over two
// files to pin the file-then-line output ordering.
package dirty

import (
	"context"
	"os"
	"sync"
	"time"

	"burstmem/internal/addrmap"
	"burstmem/internal/trace"
)

type state struct {
	mu    sync.Mutex
	banks []uint32
	n     int
}

// dropClose discards a Close error (errflow; this package's import path
// contains a cmd element, so it is in scope).
func dropClose(f *os.File) {
	f.Close()
}

// unguardedTracer dereferences a maybe-nil constructor result (nilcheck).
func unguardedTracer() int {
	tr := trace.New(16, 0)
	return tr.Len()
}

// crossDimension indexes the bank table with a rank coordinate (idxrange).
func crossDimension(s *state, loc addrmap.Loc) uint32 {
	return s.banks[loc.Rank]
}

// spawnAll reads a variable the loop reassigns from inside the spawned
// goroutine (goroutcheck).
func spawnAll(jobs []string) {
	var cur string
	for _, j := range jobs {
		cur = j
		go func() { _ = len(cur) }()
	}
}

// leakyLock returns holding the mutex on the early path (lockcheck).
func leakyLock(s *state) int {
	s.mu.Lock()
	if s.n == 0 {
		return 0
	}
	n := s.n
	s.mu.Unlock()
	return n
}

// forgottenTicker stops the ticker on only one path; the early return
// leaks it (leakcheck).
func forgottenTicker(s *state) {
	t := time.NewTicker(time.Second)
	if s.n == 0 {
		return
	}
	t.Stop()
}

// rootedCtx mints a root context in library code instead of accepting
// one from the caller (ctxflow).
func rootedCtx() context.Context {
	return context.Background()
}

// deadSends makes a channel nothing ever receives from: once the buffer
// fills, every send blocks forever (chanflow).
func deadSends(n int) {
	ch := make(chan int, 1)
	for i := 0; i < n; i++ {
		ch <- i
	}
}

// exitPastDefer calls os.Exit while a cleanup is still deferred; the
// finding carries the call chain as structured evidence (leakcheck).
func exitPastDefer() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	os.Exit(1)
}
