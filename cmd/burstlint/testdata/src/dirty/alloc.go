package dirty

// record is sized like a pooled simulation object.
type record struct {
	id   uint64
	next *record
}

// tick allocates inside an annotated hot path (hotalloc).
//
//burstmem:hotpath
func tick(now uint64) *record {
	return &record{id: now}
}
