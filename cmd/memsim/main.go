// Command memsim runs one memory-system simulation: a synthetic benchmark
// profile on the Table 3 baseline machine under a chosen access reordering
// mechanism, printing the measurements the paper's evaluation reports.
//
// Usage:
//
//	memsim -bench swim -mech Burst_TH -n 1000000
//	memsim -bench mcf -mech BkInOrder -mapping bit-reversal -row-policy cpa
//	memsim -bench swim -mech Burst_TH -trace out.json   # Perfetto timeline
package main

import (
	"flag"
	"fmt"
	"os"

	"burstmem/internal/memctrl"
	"burstmem/internal/sim"
	"burstmem/internal/stats"
	"burstmem/internal/trace"
	"burstmem/internal/workload"
)

func main() {
	var (
		bench     = flag.String("bench", "swim", "benchmark profile (see -list)")
		mech      = flag.String("mech", "Burst_TH", "mechanism: BkInOrder, RowHit, Intel, Intel_RP, Burst, Burst_RP, Burst_WP, Burst_TH[n]")
		n         = flag.Uint64("n", 1_000_000, "instructions to simulate")
		mapping   = flag.String("mapping", "page-interleave", "address mapping: page-interleave, line-interleave, bit-reversal, permutation")
		rowPolicy = flag.String("row-policy", "op", "row policy: op (open page) or cpa (close page autoprecharge)")
		list      = flag.Bool("list", false, "list benchmarks and mechanisms, then exit")
		seed      = flag.Uint64("seed", 0, "override the profile's workload seed (0 = default)")
		memfrac   = flag.Float64("memfrac", 0, "override the profile's memory fraction (0 = default)")
		warmup    = flag.Uint64("warmup", 300_000, "warmup instructions")
		replay    = flag.String("replay", "", "replay a recorded trace file instead of a synthetic profile")
		workers   = flag.Int("workers", 0, "parallel channel-shard workers (0 or 1 = serial; clamped to the channel count; output is bit-identical at any setting)")

		traceOut      = flag.String("trace", "", "write a Chrome trace_event JSON timeline (open in ui.perfetto.dev)")
		traceEvents   = flag.Int("trace-events", 1<<20, "event ring capacity for -trace (oldest events overwritten)")
		traceInterval = flag.Uint64("trace-interval", 1000, "metrics interval for -trace, in memory cycles")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:", workload.Names())
		fmt.Println("mechanisms:", sim.MechanismNames())
		return
	}

	prof, err := workload.ByName(*bench)
	fatal(err)
	if *seed != 0 {
		prof.Seed = *seed
	}
	if *memfrac > 0 {
		prof.MemFraction = *memfrac
	}
	factory, err := sim.MechanismByName(*mech)
	fatal(err)

	cfg := sim.DefaultConfig()
	cfg.Instructions = *n
	cfg.WarmupInstructions = *warmup
	cfg.Workers = *workers
	cfg.Mem.Mapping = *mapping
	switch *rowPolicy {
	case "op":
		cfg.Mem.RowPolicy = memctrl.OpenPage
	case "cpa":
		cfg.Mem.RowPolicy = memctrl.ClosePageAuto
	default:
		fatal(fmt.Errorf("unknown row policy %q", *rowPolicy))
	}

	var sys *sim.System
	name := prof.Name
	if *replay != "" {
		f, err := os.Open(*replay)
		fatal(err)
		gen, err := workload.ParseTrace(*replay, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		fatal(err)
		name = *replay
		sys, err = sim.NewSystemWithGenerators(cfg, []workload.Generator{gen}, factory)
		fatal(err)
	} else {
		sys, err = sim.NewSystem(cfg, prof, factory)
		fatal(err)
	}

	var tr *trace.Tracer
	if *traceOut != "" {
		tr = trace.New(*traceEvents, *traceInterval)
		sys.AttachTracer(tr)
	}

	res, err := sim.RunSystem(cfg, sys, name)
	fatal(err)
	printResult(res)

	if tr != nil {
		f, err := os.Create(*traceOut)
		fatal(err)
		label := fmt.Sprintf("%s/%s", name, res.Mechanism)
		err = trace.WriteChrome(f, tr, label)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		fatal(err)
		fmt.Printf("trace             %s (%d events held, %d overwritten, %d metric intervals)\n",
			*traceOut, tr.Len(), tr.Dropped(), len(tr.Intervals()))
		printTraceLatency(tr)
	}
}

// printTraceLatency reconstructs the enqueue-to-completion read-latency
// distribution from the trace stream: the per-access data behind the mean
// and percentiles above, limited to the window the ring still holds.
// Forwarded reads are excluded (they never reach the device), as are
// completions whose enqueue event was overwritten in the ring.
func printTraceLatency(tr *trace.Tracer) {
	const bin = 16
	h := stats.NewHistogram(64)
	enq := make(map[uint64]uint64)
	for _, e := range tr.Events() {
		switch e.Kind {
		case trace.EvEnqueue:
			if e.Arg1 == 0 { // read
				enq[e.Arg0] = e.Cycle
			}
		case trace.EvComplete:
			if e.Arg2&(trace.FlagWrite|trace.FlagForwarded) != 0 {
				continue
			}
			start, ok := enq[e.Arg0]
			if !ok {
				continue
			}
			delete(enq, e.Arg0)
			h.Add(int((e.Cycle - start) / bin))
		}
	}
	if h.Total() == 0 {
		return
	}
	fmt.Printf("traced read latency distribution (%d reads, %d-cycle bins):\n", h.Total(), bin)
	for b := 0; b <= h.NonzeroMax(); b++ {
		if c := h.Count(b); c > 0 {
			fmt.Printf("  [%4d,%4d)  %8d  %5.1f%%\n", b*bin, (b+1)*bin, c, h.Fraction(b)*100)
		}
	}
}

func printResult(r sim.Result) {
	fmt.Printf("benchmark         %s\n", r.Benchmark)
	fmt.Printf("mechanism         %s\n", r.Mechanism)
	fmt.Printf("instructions      %d\n", r.Instructions)
	fmt.Printf("cpu cycles        %d  (IPC %.3f)\n", r.CPUCycles, r.IPC)
	fmt.Printf("memory cycles     %d\n", r.MemCycles)
	fmt.Printf("mem reads/writes  %d / %d  (forwarded reads %d)\n", r.MemReads, r.MemWrites, r.ForwardedReads)
	fmt.Printf("read latency      %.1f memory cycles (p50 %d, p95 %d, p99 %d)\n",
		r.ReadLatency, r.ReadLatencyP50, r.ReadLatencyP95, r.ReadLatencyP99)
	fmt.Printf("write latency     %.1f memory cycles\n", r.WriteLatency)
	fmt.Printf("row outcomes      hit %.3f  empty %.3f  conflict %.3f\n", r.RowHit, r.RowEmpty, r.RowConflict)
	fmt.Printf("bus utilization   data %.3f  address %.3f\n", r.DataBusUtil, r.AddrBusUtil)
	fmt.Printf("write queue sat   %.3f of time\n", r.WriteSaturation)
	fmt.Printf("bandwidth         %.2f GB/s\n", r.BandwidthGBps)
	fmt.Printf("DRAM energy       %.1f nJ/access  (avg power %.2f W)\n", r.EnergyPerAccessNJ, r.AvgMemPowerW)
	fmt.Printf("L1D miss rate     %.4f   L2 miss rate %.4f\n", r.L1DStats.MissRate(), r.L2Stats.MissRate())
	fmt.Printf("cpu stalls        head-load %d  store-buf %d  rob-full %d\n",
		r.CPUStats.HeadLoadStalls, r.CPUStats.StoreBufFullStalls, r.CPUStats.ROBFullCycles)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "memsim:", err)
		os.Exit(1)
	}
}
