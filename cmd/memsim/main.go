// Command memsim runs one memory-system simulation: a synthetic benchmark
// profile on the Table 3 baseline machine under a chosen access reordering
// mechanism, printing the measurements the paper's evaluation reports.
//
// Usage:
//
//	memsim -bench swim -mech Burst_TH -n 1000000
//	memsim -bench mcf -mech BkInOrder -mapping bit-reversal -row-policy cpa
package main

import (
	"flag"
	"fmt"
	"os"

	"burstmem/internal/memctrl"
	"burstmem/internal/sim"
	"burstmem/internal/workload"
)

func main() {
	var (
		bench     = flag.String("bench", "swim", "benchmark profile (see -list)")
		mech      = flag.String("mech", "Burst_TH", "mechanism: BkInOrder, RowHit, Intel, Intel_RP, Burst, Burst_RP, Burst_WP, Burst_TH[n]")
		n         = flag.Uint64("n", 1_000_000, "instructions to simulate")
		mapping   = flag.String("mapping", "page-interleave", "address mapping: page-interleave, line-interleave, bit-reversal, permutation")
		rowPolicy = flag.String("row-policy", "op", "row policy: op (open page) or cpa (close page autoprecharge)")
		list      = flag.Bool("list", false, "list benchmarks and mechanisms, then exit")
		seed      = flag.Uint64("seed", 0, "override the profile's workload seed (0 = default)")
		memfrac   = flag.Float64("memfrac", 0, "override the profile's memory fraction (0 = default)")
		warmup    = flag.Uint64("warmup", 300_000, "warmup instructions")
		traceFile = flag.String("trace", "", "replay a recorded trace file instead of a synthetic profile")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:", workload.Names())
		fmt.Println("mechanisms:", sim.MechanismNames())
		return
	}

	prof, err := workload.ByName(*bench)
	fatal(err)
	if *seed != 0 {
		prof.Seed = *seed
	}
	if *memfrac > 0 {
		prof.MemFraction = *memfrac
	}
	factory, err := sim.MechanismByName(*mech)
	fatal(err)

	cfg := sim.DefaultConfig()
	cfg.Instructions = *n
	cfg.WarmupInstructions = *warmup
	cfg.Mem.Mapping = *mapping
	switch *rowPolicy {
	case "op":
		cfg.Mem.RowPolicy = memctrl.OpenPage
	case "cpa":
		cfg.Mem.RowPolicy = memctrl.ClosePageAuto
	default:
		fatal(fmt.Errorf("unknown row policy %q", *rowPolicy))
	}

	var res sim.Result
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		fatal(err)
		gen, err := workload.ParseTrace(*traceFile, f)
		f.Close()
		fatal(err)
		res, err = sim.RunGenerator(cfg, *traceFile, []workload.Generator{gen}, factory)
		fatal(err)
	} else {
		res, err = sim.Run(cfg, prof, factory)
		fatal(err)
	}
	printResult(res)
}

func printResult(r sim.Result) {
	fmt.Printf("benchmark         %s\n", r.Benchmark)
	fmt.Printf("mechanism         %s\n", r.Mechanism)
	fmt.Printf("instructions      %d\n", r.Instructions)
	fmt.Printf("cpu cycles        %d  (IPC %.3f)\n", r.CPUCycles, r.IPC)
	fmt.Printf("memory cycles     %d\n", r.MemCycles)
	fmt.Printf("mem reads/writes  %d / %d  (forwarded reads %d)\n", r.MemReads, r.MemWrites, r.ForwardedReads)
	fmt.Printf("read latency      %.1f memory cycles (p50 %d, p95 %d, p99 %d)\n",
		r.ReadLatency, r.ReadLatencyP50, r.ReadLatencyP95, r.ReadLatencyP99)
	fmt.Printf("write latency     %.1f memory cycles\n", r.WriteLatency)
	fmt.Printf("row outcomes      hit %.3f  empty %.3f  conflict %.3f\n", r.RowHit, r.RowEmpty, r.RowConflict)
	fmt.Printf("bus utilization   data %.3f  address %.3f\n", r.DataBusUtil, r.AddrBusUtil)
	fmt.Printf("write queue sat   %.3f of time\n", r.WriteSaturation)
	fmt.Printf("bandwidth         %.2f GB/s\n", r.BandwidthGBps)
	fmt.Printf("DRAM energy       %.1f nJ/access  (avg power %.2f W)\n", r.EnergyPerAccessNJ, r.AvgMemPowerW)
	fmt.Printf("L1D miss rate     %.4f   L2 miss rate %.4f\n", r.L1DStats.MissRate(), r.L2Stats.MissRate())
	fmt.Printf("cpu stalls        head-load %d  store-buf %d  rob-full %d\n",
		r.CPUStats.HeadLoadStalls, r.CPUStats.StoreBufFullStalls, r.CPUStats.ROBFullCycles)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "memsim:", err)
		os.Exit(1)
	}
}
