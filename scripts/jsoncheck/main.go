// jsoncheck validates an exported Chrome trace file from CI: the file must
// be well-formed JSON with a non-empty traceEvents array where every entry
// carries the mandatory trace_event fields. It is a build-free stand-in for
// loading the file in ui.perfetto.dev.
//
//	go run ./scripts/jsoncheck trace.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: jsoncheck <trace.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	fatal(err)
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	fatal(json.Unmarshal(data, &doc))
	if len(doc.TraceEvents) == 0 {
		fatal(fmt.Errorf("%s: empty traceEvents", os.Args[1]))
	}
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph == "" {
			fatal(fmt.Errorf("%s: event %d missing ph", os.Args[1], i))
		}
		if _, ok := ev["pid"]; !ok {
			fatal(fmt.Errorf("%s: event %d missing pid", os.Args[1], i))
		}
		if _, ok := ev["ts"]; ph != "M" && !ok {
			fatal(fmt.Errorf("%s: event %d (ph %q) missing ts", os.Args[1], i, ph))
		}
	}
	fmt.Printf("%s: %d trace events OK\n", os.Args[1], len(doc.TraceEvents))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "jsoncheck:", err)
		os.Exit(1)
	}
}
