// jsoncheck validates JSON artifacts exported from CI.
//
// The default mode checks an exported Chrome trace file: the file must be
// well-formed JSON with a non-empty traceEvents array where every entry
// carries the mandatory trace_event fields. It is a build-free stand-in
// for loading the file in ui.perfetto.dev.
//
// With -bench the file is instead checked against the BENCH_sim.json
// shape: a non-empty JSON array of objects, each carrying a non-empty
// "case" string (the key every consumer joins on). Files that record lint
// timings (a "burstlint" entry is present) must carry the full family —
// burstlint, burstlint_interproc, burstlint_pointsto — each with a
// numeric wall_ms.
//
//	go run ./scripts/jsoncheck trace.json
//	go run ./scripts/jsoncheck -bench BENCH_sim.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	args := os.Args[1:]
	bench := false
	if len(args) > 0 && args[0] == "-bench" {
		bench = true
		args = args[1:]
	}
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: jsoncheck [-bench] <file.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(args[0])
	fatal(err)
	if bench {
		checkBench(args[0], data)
		return
	}
	checkTrace(args[0], data)
}

func checkTrace(path string, data []byte) {
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	fatal(json.Unmarshal(data, &doc))
	if len(doc.TraceEvents) == 0 {
		fatal(fmt.Errorf("%s: empty traceEvents", path))
	}
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph == "" {
			fatal(fmt.Errorf("%s: event %d missing ph", path, i))
		}
		if _, ok := ev["pid"]; !ok {
			fatal(fmt.Errorf("%s: event %d missing pid", path, i))
		}
		if _, ok := ev["ts"]; ph != "M" && !ok {
			fatal(fmt.Errorf("%s: event %d (ph %q) missing ts", path, i, ph))
		}
	}
	fmt.Printf("%s: %d trace events OK\n", path, len(doc.TraceEvents))
}

func checkBench(path string, data []byte) {
	var entries []map[string]any
	fatal(json.Unmarshal(data, &entries))
	if len(entries) == 0 {
		fatal(fmt.Errorf("%s: empty benchmark entry array", path))
	}
	cases := map[string]map[string]any{}
	for i, e := range entries {
		name, _ := e["case"].(string)
		if name == "" {
			fatal(fmt.Errorf("%s: entry %d missing case", path, i))
		}
		cases[name] = e
	}
	// Files carrying lint timings (full bench.sh output, as opposed to the
	// one-entry CI perf gate) must carry the whole family, each with a
	// numeric wall_ms: a bench.sh edit that drops one silently would
	// otherwise erase its trajectory.
	if _, ok := cases["burstlint"]; ok {
		for _, name := range []string{"burstlint", "burstlint_interproc", "burstlint_pointsto"} {
			e, ok := cases[name]
			if !ok {
				fatal(fmt.Errorf("%s: %q entry present but %q missing", path, "burstlint", name))
			}
			if _, ok := e["wall_ms"].(float64); !ok {
				fatal(fmt.Errorf("%s: %q entry has no numeric wall_ms", path, name))
			}
		}
	}
	fmt.Printf("%s: %d benchmark entries OK\n", path, len(entries))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "jsoncheck:", err)
		os.Exit(1)
	}
}
