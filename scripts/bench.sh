#!/usr/bin/env bash
# bench.sh — run the simulator throughput benchmark and record the results
# as BENCH_sim.json, so the perf trajectory is visible across PRs.
#
# Usage:
#   scripts/bench.sh            # full run (benchtime 3x, written to BENCH_sim.json)
#   scripts/bench.sh -short     # quick smoke run (1 iteration, no file written)
#
# Each JSON entry records the benchmark case, simulated memory cycles per
# wall-clock second, ns per run, bytes and allocations per run, and the
# steady-state allocation count (heap allocations inside the simulation
# loop, excluding system construction — a few hundred pool warm-up
# allocations per run when the allocation-free hot path holds, so growth
# here means a per-cycle allocation crept in).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME=3x
OUT=BENCH_sim.json
if [[ "${1:-}" == "-short" ]]; then
    BENCHTIME=1x
    OUT=""
fi

RAW=$(go test -run '^$' -bench 'BenchmarkSimThroughput' -benchmem -benchtime "$BENCHTIME" .)
echo "$RAW"

[[ -z "$OUT" ]] && exit 0

echo "$RAW" | awk '
BEGIN { print "["; first = 1 }
/^BenchmarkSimThroughput\// {
    name = $1
    sub(/^BenchmarkSimThroughput\//, "", name)
    sub(/-[0-9]+$/, "", name)
    nsop = ""; cyc = ""; bop = ""; aop = ""; hot = ""
    for (i = 2; i <= NF; i++) {
        if ($(i+1) == "ns/op") nsop = $i
        if ($(i+1) == "simcycles/s") cyc = $i
        if ($(i+1) == "B/op") bop = $i
        if ($(i+1) == "allocs/op") aop = $i
        if ($(i+1) == "hotallocs/op") hot = $i
    }
    if (!first) print ","
    first = 0
    printf "  {\"case\": \"%s\", \"simcycles_per_sec\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"steady_state_allocs_per_op\": %s}", name, cyc, nsop, bop, aop, hot
}
END { print "\n]" }
' > "$OUT"

echo "wrote $OUT"
